package router

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/repl"
	"repro/internal/repl/mm"
)

// twoGroups builds a router over n in-process mm clusters with two
// replicas each and one loaded table.
func groupsOf(t *testing.T, n, rows int) (*Router, []*mm.Cluster) {
	t.Helper()
	var clusters []*mm.Cluster
	var gs []Group
	for i := 0; i < n; i++ {
		c, err := mm.New(mm.Options{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		clusters = append(clusters, c)
		gs = append(gs, c)
	}
	r, err := New(1, gs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateTable("item"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("item", rows, func(row int64) string {
		return fmt.Sprintf("load-%d", row)
	}); err != nil {
		t.Fatal(err)
	}
	return r, clusters
}

// rowsOwnedBy returns rows of table item owned by each group, enough
// for the cross-shard tests to aim transactions precisely.
func rowsOwnedBy(r *Router, rows int) map[int][]int64 {
	out := make(map[int][]int64)
	for row := int64(0); row < int64(rows); row++ {
		g := r.Map().Locate("item", row)
		out[g] = append(out[g], row)
	}
	return out
}

func TestLocateDeterministicAndSpread(t *testing.T) {
	m := Map{Version: 1, Shards: 4}
	counts := make([]int, 4)
	for row := int64(0); row < 4000; row++ {
		g := m.Locate("item", row)
		if g2 := m.Locate("item", row); g2 != g {
			t.Fatalf("Locate not deterministic: %d vs %d", g, g2)
		}
		counts[g]++
	}
	for g, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("group %d owns %d of 4000 rows — hash badly skewed: %v", g, c, counts)
		}
	}
	// Different tables spread the same row differently (table-aware).
	same := 0
	for row := int64(0); row < 100; row++ {
		if m.Locate("item", row) == m.Locate("stock", row) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("hash ignores the table name")
	}
	if (Map{Shards: 1}).Locate("item", 123) != 0 {
		t.Fatal("single shard must own everything")
	}
}

// TestSingleShardFastPath: a transaction whose keys live in one group
// begins exactly one sub-transaction and commits through that group's
// ordinary path.
func TestSingleShardFastPath(t *testing.T) {
	r, clusters := groupsOf(t, 2, 64)
	owned := rowsOwnedBy(r, 64)
	row := owned[0][0]

	txn, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", row, "updated"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Group 0 certified one commit, group 1 saw nothing.
	if v := clusters[0].Certifier().Version(); v != 1 {
		t.Fatalf("group 0 version %d, want 1", v)
	}
	if v := clusters[1].Certifier().Version(); v != 0 {
		t.Fatalf("group 1 version %d, want 0 (fast path leaked)", v)
	}

	rt, err := r.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := rt.Read("item", row)
	if err != nil || !ok || got != "updated" {
		t.Fatalf("read back: %q ok=%v err=%v", got, ok, err)
	}
	rt.Abort()
}

// TestCrossShardCommit: a transaction spanning both groups commits
// atomically — both fragments become visible, each in its owning
// group's record log.
func TestCrossShardCommit(t *testing.T) {
	r, clusters := groupsOf(t, 2, 64)
	owned := rowsOwnedBy(r, 64)
	r0, r1 := owned[0][0], owned[1][0]

	txn, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r0, "x0"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r1, "x1"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}
	r.Sync()
	for gi, want := range map[int]struct {
		row int64
		val string
	}{0: {r0, "x0"}, 1: {r1, "x1"}} {
		dump, err := clusters[gi].TableDump(0, "item")
		if err != nil {
			t.Fatal(err)
		}
		if dump[want.row] != want.val {
			t.Fatalf("group %d row %d = %q, want %q", gi, want.row, dump[want.row], want.val)
		}
	}
	// The 2PC bookkeeping is fully retired.
	for gi, c := range clusters {
		if n := len(c.Certifier().InDoubt()); n != 0 {
			t.Fatalf("group %d left %d txns in doubt", gi, n)
		}
	}
	// Convergence through the router's ownership-filtered dump.
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardConflictAborts: a cross-shard transaction that loses
// certification at one group aborts at EVERY group — no half-applied
// state.
func TestCrossShardConflictAborts(t *testing.T) {
	r, clusters := groupsOf(t, 2, 64)
	owned := rowsOwnedBy(r, 64)
	r0, r1 := owned[0][0], owned[1][0]

	// Open the doomed transaction first so its snapshot predates the
	// conflicting commit.
	txn, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r0, "doomed-0"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r1, "doomed-1"); err != nil {
		t.Fatal(err)
	}

	// A competing single-shard commit on group 1's row.
	w, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("item", r1, "winner"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	err = txn.Commit()
	if !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("cross-shard commit = %v, want abort", err)
	}
	r.Sync()
	// Group 0's fragment must not have applied.
	dump, err := clusters[0].TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	if dump[r0] != fmt.Sprintf("load-%d", r0) {
		t.Fatalf("aborted fragment leaked into group 0: row %d = %q", r0, dump[r0])
	}
	if v := clusters[0].Certifier().Version(); v != 0 {
		t.Fatalf("group 0 version %d, want 0", v)
	}
	for gi, c := range clusters {
		if n := len(c.Certifier().InDoubt()); n != 0 {
			t.Fatalf("group %d left %d txns in doubt after abort", gi, n)
		}
	}
}

// TestCrossShardLockBlocksBystander: between prepare and decide, a
// third transaction touching a prepared key must abort rather than
// certify past the binding vote. Exercised indirectly: two cross-shard
// transactions over the same keys, serialized by the router, both
// succeed (the locks release at decide time).
func TestCrossShardSequential(t *testing.T) {
	r, _ := groupsOf(t, 2, 64)
	owned := rowsOwnedBy(r, 64)
	r0, r1 := owned[0][0], owned[1][0]
	for i := 0; i < 5; i++ {
		txn, err := r.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write("item", r0, fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Write("item", r1, fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	rt, err := r.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := rt.Read("item", r0)
	if got != "a4" {
		t.Fatalf("row %d = %q, want a4", r0, got)
	}
	rt.Abort()
}

// TestReadOnlySpansShards: a read-only transaction may touch any
// group; commit is free (no certification anywhere).
func TestReadOnlySpansShards(t *testing.T) {
	r, _ := groupsOf(t, 4, 128)
	rt, err := r.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for row := int64(0); row < 128; row++ {
		v, ok, err := rt.Read("item", row)
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", row, ok, err)
		}
		if v == fmt.Sprintf("load-%d", row) {
			seen++
		}
	}
	if seen != 128 {
		t.Fatalf("read %d/128 rows", seen)
	}
	if err := rt.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFourGroupConvergence drives disjoint single-shard traffic at
// four groups and verifies the union dump converges row-for-row.
func TestFourGroupConvergence(t *testing.T) {
	r, _ := groupsOf(t, 4, 128)
	for row := int64(0); row < 128; row++ {
		txn, err := r.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write("item", row, fmt.Sprintf("v-%d", row)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
	}
	r.Sync()
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		t.Fatal(err)
	}
	dump, err := r.TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	for row := int64(0); row < 128; row++ {
		if dump[row] != fmt.Sprintf("v-%d", row) {
			t.Fatalf("row %d = %q", row, dump[row])
		}
	}
}
