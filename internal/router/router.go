// Package router partitions the keyspace across independent shard
// groups, each running the full replicated stack (certifier + Paxos +
// WAL + parallel apply), and routes transactions to the groups that
// own their keys. Single-shard transactions — the common case a sane
// partitioning makes overwhelming — take the owning group's ordinary
// commit path with zero extra hops, so aggregate write throughput
// scales with the number of groups instead of flatlining at one
// certifier's apply rate. Transactions that touch several groups run
// two-phase commit over certification: every group PREPAREs its
// fragment (conflict-check + durable in-doubt journal + key locks),
// the coordinator group's durable decision is the commit point, and
// participants that crash in doubt resolve against the coordinator on
// recovery (docs/SHARDING.md).
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/repl"
)

// Map is the versioned shard map: how many groups partition the
// keyspace. Clients receive it on JoinOK/MembersOK (wire v6) and use
// Locate to resolve (table, row) to the owning group. The hash is
// table-aware so a table's rows spread independently of its name's
// neighbors; it must be identical in every process of the deployment.
type Map struct {
	Version int64
	Shards  int
}

// Locate returns the shard group that owns (table, row).
func (m Map) Locate(table string, row int64) int {
	if m.Shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(table))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(row) >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(m.Shards))
}

// Group is one shard group as the router sees it: the full replicated
// system and loader surface plus the participant-side 2PC calls. Both
// the in-process mm.Cluster and the networked client satisfy it.
type Group interface {
	repl.System
	repl.Loader
	// TableDump with the repl.System signature dumps the group's own
	// replica state; the router filters it by ownership.

	// DecideTxn applies a coordinator decision at this group.
	DecideTxn(id string, commit bool) (version int64, err error)
	// ResolveTxn answers an in-doubt inquiry (coordinator side).
	ResolveTxn(id string) (commit bool, err error)
	// ForgetTxn retires an acknowledged decision.
	ForgetTxn(id string) error
}

// Preparer is the 2PC vote a group's transaction must expose: extract
// the staged writeset and run the first phase at the group's
// certifier. HasWrites distinguishes real participants from read-side
// bystanders — a group a cross-shard transaction only read from never
// joins the 2PC. mm.Txn and the networked client transaction
// implement it.
type Preparer interface {
	Prepare(id string, coord int64) (vote bool, conflictWith int64, err error)
	HasWrites() bool
}

// UnknownOutcomeError reports a cross-shard commit whose decision
// could not be confirmed: the coordinator group failed between
// receiving the decide and acknowledging it, so the transaction may
// be either committed or aborted. Callers must not retry blindly —
// they resolve against the recovered coordinator instead.
type UnknownOutcomeError struct {
	TxnID string
	Err   error
}

func (e *UnknownOutcomeError) Error() string {
	return fmt.Sprintf("router: txn %s outcome unknown: %v", e.TxnID, e.Err)
}
func (e *UnknownOutcomeError) Unwrap() error { return e.Err }

// Router fronts the shard groups with the repl.System/repl.Loader
// surface the drivers and benchmarks already speak, so a partitioned
// deployment drops in wherever a single cluster did.
type Router struct {
	m      Map
	groups []Group
	// seq numbers cross-shard transactions; with the epoch (wall clock
	// at construction) it makes ids unique across restarts, which the
	// presumed-abort protocol requires — a recycled id could collide
	// with a forgotten decision.
	epoch int64
	seq   atomic.Int64
}

// New builds a router over the given groups. The shard map's group
// count always equals len(groups).
func New(version int64, groups []Group) (*Router, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("router: no shard groups")
	}
	return &Router{
		m:      Map{Version: version, Shards: len(groups)},
		groups: groups,
		epoch:  time.Now().UnixNano(),
	}, nil
}

// Map returns the shard map clients route by.
func (r *Router) Map() Map { return r.m }

// Group returns shard group i (status tooling and tests).
func (r *Router) Group(i int) Group { return r.groups[i] }

// Groups returns the number of shard groups.
func (r *Router) Groups() int { return len(r.groups) }

// nextTxnID mints a globally unique cross-shard transaction id.
func (r *Router) nextTxnID() string {
	return fmt.Sprintf("x%x-%d", r.epoch, r.seq.Add(1))
}

// CreateTable implements repl.Loader: every group carries every
// table's schema.
func (r *Router) CreateTable(name string) error {
	for i, g := range r.groups {
		if err := g.CreateTable(name); err != nil {
			return fmt.Errorf("router: create %s at group %d: %w", name, i, err)
		}
	}
	return nil
}

// Load implements repl.Loader. The initial load goes to EVERY group in
// full: load bypasses concurrency control, rows a group does not own
// are simply never written there again, and the convergence dump
// filters by ownership — so routing alone governs which copy is live,
// and the loader surface stays byte-compatible with the unsharded
// stack.
func (r *Router) Load(table string, rows int, value func(int64) string) error {
	for i, g := range r.groups {
		if err := g.Load(table, rows, value); err != nil {
			return fmt.Errorf("router: load %s at group %d: %w", table, i, err)
		}
	}
	return nil
}

// Sync implements repl.System: every group drains its apply queues.
func (r *Router) Sync() {
	for _, g := range r.groups {
		g.Sync()
	}
}

// Replicas implements repl.System: the per-group replica count (the
// minimum across groups), so convergence checks compare that many
// copies of every row within its owning group.
func (r *Router) Replicas() int {
	min := r.groups[0].Replicas()
	for _, g := range r.groups[1:] {
		if n := g.Replicas(); n < min {
			min = n
		}
	}
	return min
}

// TableDump implements repl.System: replica i's view of a table is
// the union, across groups, of the rows each group OWNS — the copy
// routing keeps live. A row's value must come from its owner; the
// other groups' copies are load-time fossils.
func (r *Router) TableDump(replica int, table string) (map[int64]string, error) {
	out := make(map[int64]string)
	for gi, g := range r.groups {
		dump, err := g.TableDump(replica, table)
		if err != nil {
			return nil, fmt.Errorf("router: dump %s at group %d: %w", table, gi, err)
		}
		for row, v := range dump {
			if r.m.Locate(table, row) == gi {
				out[row] = v
			}
		}
	}
	return out, nil
}

// BeginRead implements repl.System.
func (r *Router) BeginRead() (repl.Txn, error) { return r.begin(true) }

// BeginUpdate implements repl.System.
func (r *Router) BeginUpdate() (repl.Txn, error) { return r.begin(false) }

func (r *Router) begin(readOnly bool) (repl.Txn, error) {
	return &rtxn{r: r, readOnly: readOnly, subs: make(map[int]repl.Txn)}, nil
}

// rtxn is one routed transaction: per-group sub-transactions are begun
// lazily on first touch, so a single-shard transaction pays for
// exactly one — and commits through that group's ordinary path with no
// coordinator in sight.
type rtxn struct {
	r        *Router
	readOnly bool
	subs     map[int]repl.Txn
	order    []int // groups in first-touch order
	done     bool
}

// sub returns (beginning if needed) the sub-transaction at the group
// owning (table, row).
func (t *rtxn) sub(table string, row int64) (repl.Txn, error) {
	gi := t.r.m.Locate(table, row)
	if s, ok := t.subs[gi]; ok {
		return s, nil
	}
	var s repl.Txn
	var err error
	if t.readOnly {
		s, err = t.r.groups[gi].BeginRead()
	} else {
		s, err = t.r.groups[gi].BeginUpdate()
	}
	if err != nil {
		return nil, err
	}
	t.subs[gi] = s
	t.order = append(t.order, gi)
	return s, nil
}

func (t *rtxn) Read(table string, row int64) (string, bool, error) {
	s, err := t.sub(table, row)
	if err != nil {
		return "", false, err
	}
	return s.Read(table, row)
}

func (t *rtxn) Write(table string, row int64, value string) error {
	s, err := t.sub(table, row)
	if err != nil {
		return err
	}
	return s.Write(table, row, value)
}

func (t *rtxn) Delete(table string, row int64) error {
	s, err := t.sub(table, row)
	if err != nil {
		return err
	}
	return s.Delete(table, row)
}

// Abort implements repl.Txn.
func (t *rtxn) Abort() {
	if t.done {
		return
	}
	t.done = true
	for _, s := range t.subs {
		s.Abort()
	}
}

// Commit implements repl.Txn. Zero or one WRITING group is the fast
// path: that group's own commit (certification, journal, propagation)
// IS the transaction's commit, no coordination anywhere — groups that
// were only read from commit locally for free. Two or more writing
// groups run 2PC over certification.
func (t *rtxn) Commit() error {
	if t.done {
		return fmt.Errorf("router: transaction already finished")
	}
	t.done = true
	var writers []int
	for _, gi := range t.order {
		if p, ok := t.subs[gi].(Preparer); !ok || p.HasWrites() {
			writers = append(writers, gi)
		}
	}
	if len(writers) >= 2 {
		return t.commit2PC(writers)
	}
	// Fast path: commit the read-only bystanders (free), then the
	// single writer — whose commit outcome is the transaction's.
	var err error
	for _, gi := range t.order {
		if len(writers) == 1 && gi == writers[0] {
			continue
		}
		if cerr := t.subs[gi].Commit(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if len(writers) == 1 {
		return t.subs[writers[0]].Commit()
	}
	return err
}

// commit2PC coordinates the cross-shard commit. The coordinator is the
// lowest participating group id — a deterministic choice every
// participant can re-derive from the prepare record's Coord field.
//
// Phase 1: every participant votes via Prepare (certify + durable
// in-doubt journal + key locks). Any no-vote aborts everywhere.
// Phase 2: the COORDINATOR group's durable decision is the commit
// point; after it lands, the remaining participants are decided (each
// journals the decision and routes its fragment through its ordinary
// record log), and the decision is retired everywhere once all have
// acknowledged. A decide failure after the commit point leaves that
// participant in doubt — its recovery resolves against the
// coordinator, which still holds the decision (Forget only runs after
// every participant acknowledged).
func (t *rtxn) commit2PC(writers []int) error {
	groups := append([]int(nil), writers...)
	sort.Ints(groups)
	coord := groups[0]
	id := t.r.nextTxnID()

	// Read-only bystander groups commit locally for free; only the
	// writing groups coordinate.
	for _, gi := range t.order {
		if !contains(groups, gi) {
			_ = t.subs[gi].Commit()
		}
	}

	voted := true
	var conflictWith int64
	for _, gi := range groups {
		p, ok := t.subs[gi].(Preparer)
		if !ok {
			t.abortPrepared(id, groups, gi)
			return fmt.Errorf("router: group %d transaction %T cannot prepare", gi, t.subs[gi])
		}
		vote, with, err := p.Prepare(id, int64(coord))
		if err != nil {
			// The vote's durability is unknown — the group may hold the
			// lock. An explicit abort decision releases it either way
			// (no coordinator decision exists yet, so abort is safe).
			_, _ = t.r.groups[gi].DecideTxn(id, false)
			_ = t.r.groups[gi].ForgetTxn(id)
			t.abortPrepared(id, groups, gi)
			return fmt.Errorf("router: prepare at group %d: %w", gi, err)
		}
		if !vote {
			voted, conflictWith = false, with
			// This group journaled no vote; the earlier ones did and
			// must be aborted durably.
			t.abortPrepared(id, groups, gi)
			break
		}
	}
	if !voted {
		return &repl.AbortedError{ConflictWith: conflictWith}
	}

	// Commit point: the coordinator group's durable decision.
	if _, err := t.r.groups[coord].DecideTxn(id, true); err != nil {
		// The decide may or may not have reached the coordinator's
		// journal/quorum before the failure. Only the recovered
		// coordinator knows; surface that honestly.
		return &UnknownOutcomeError{TxnID: id, Err: err}
	}
	for _, gi := range groups[1:] {
		if _, err := t.r.groups[gi].DecideTxn(id, true); err != nil {
			// Committed (the coordinator decided) but this participant
			// could not be told; it is in doubt and will resolve on
			// recovery. The commit ack stands. Keep the coordinator's
			// decision available for that resolution — skip Forget.
			return nil
		}
	}
	// Every participant applied the decision; retire it, coordinator
	// last so Resolve keeps working until nobody needs it. Forget
	// failures are harmless (the decision is retried-forgotten or
	// compacted later), so errors are not propagated.
	for i := len(groups) - 1; i >= 1; i-- {
		_ = t.r.groups[groups[i]].ForgetTxn(id)
	}
	_ = t.r.groups[coord].ForgetTxn(id)
	return nil
}

// abortPrepared durably aborts txn id at every group before stop
// (exclusive) and locally aborts the rest of the sub-transactions.
// Called when a vote fails partway: the groups that voted yes hold
// binding locks that only a decision releases.
func (t *rtxn) abortPrepared(id string, groups []int, stop int) {
	for _, gi := range groups {
		if gi >= stop {
			break
		}
		_, _ = t.r.groups[gi].DecideTxn(id, false)
		// Presumed abort: nobody ever needs to resolve an abort, so the
		// decision record can be retired immediately.
		_ = t.r.groups[gi].ForgetTxn(id)
	}
	for _, gi := range groups {
		if gi >= stop {
			t.subs[gi].Abort()
		}
	}
}

// contains reports whether sorted slice s holds v.
func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

var (
	_ repl.System = (*Router)(nil)
	_ repl.Loader = (*Router)(nil)
	_ repl.Txn    = (*rtxn)(nil)
)
