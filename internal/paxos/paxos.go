// Package paxos implements single-leader multi-decree Paxos over
// in-process transports. The paper's certifier is "replicated using
// Paxos [Lamport 1998] for fault-tolerance" with a leader and two
// backups (§5.1, §6.1); this package provides that replication: a
// sequence of slots is agreed upon by a majority of acceptors, a
// stable leader skips the prepare phase (classic multi-Paxos), and a
// new leader's first action is to re-learn and close any slots the old
// leader left open.
//
// The implementation favours clarity over throughput: calls are
// synchronous method invocations through a Transport that tests use to
// sever nodes, which is exactly what the repository needs to show the
// certifier survives the failure of its leader.
package paxos

import (
	"errors"
	"fmt"
	"sync"
)

// Value is the payload agreed on for one slot.
type Value string

// Ballot orders proposal rounds; ties break by proposer id.
type Ballot struct {
	Round    int
	Proposer int
}

// Less orders ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Proposer < o.Proposer
}

// String renders "round.proposer".
func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Round, b.Proposer) }

// accepted is an acceptor's record for one slot.
type accepted struct {
	ballot Ballot
	value  Value
	has    bool
}

// AcceptedSlot is one slot's restored voting record, as a durable
// acceptor store hands it back on recovery.
type AcceptedSlot struct {
	Ballot Ballot
	Value  Value
}

// Persister durably records an acceptor's promises and votes BEFORE
// the acceptor replies — the Paxos safety requirement that lets a
// power-cycled acceptor rejoin without violating a promise it already
// let a proposer act on. A persist failure aborts the reply: the
// caller sees a transport-style error and the acceptor's in-memory
// state is unchanged.
type Persister interface {
	// SavePromise persists a raised promise.
	SavePromise(b Ballot) error
	// SaveAccept persists a vote: the slot, its ballot and its value.
	// The ballot doubles as a promise (accepting at b implies
	// promising b), so recovery takes the max over both record kinds.
	SaveAccept(slot int, b Ballot, v Value) error
}

// Acceptor is the persistent voting state of one node.
type Acceptor struct {
	mu       sync.Mutex
	id       int
	promised Ballot
	slots    map[int]accepted
	persist  Persister // nil: volatile (in-process tests)
}

// NewAcceptor creates a volatile acceptor with the given id.
func NewAcceptor(id int) *Acceptor {
	return &Acceptor{id: id, slots: make(map[int]accepted)}
}

// RestoreAcceptor rebuilds a durable acceptor from its persisted
// state: the highest promise and the per-slot votes a store replayed.
// Subsequent promises and votes are written through p before any
// reply leaves this node.
func RestoreAcceptor(id int, p Persister, promised Ballot, slots map[int]AcceptedSlot) *Acceptor {
	a := &Acceptor{id: id, promised: promised, slots: make(map[int]accepted, len(slots)), persist: p}
	for s, rec := range slots {
		a.slots[s] = accepted{ballot: rec.Ballot, value: rec.Value, has: true}
		if a.promised.Less(rec.Ballot) {
			a.promised = rec.Ballot
		}
	}
	return a
}

// PrepareReply answers a prepare request.
type PrepareReply struct {
	OK bool
	// Promised is the acceptor's promise after the call (its current
	// promise if the request was rejected).
	Promised Ballot
	// Accepted reports any value this acceptor already accepted for
	// the slot, which the proposer must adopt.
	AcceptedBallot Ballot
	AcceptedValue  Value
	HasAccepted    bool
}

// Prepare handles phase 1a for one slot. A raised promise is persisted
// before the reply; a persist failure surfaces as an error the caller
// treats like an unreachable node (nothing was promised).
func (a *Acceptor) Prepare(b Ballot, slot int) (PrepareReply, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b.Less(a.promised) {
		return PrepareReply{OK: false, Promised: a.promised}, nil
	}
	if a.persist != nil && a.promised.Less(b) {
		if err := a.persist.SavePromise(b); err != nil {
			return PrepareReply{}, fmt.Errorf("paxos: acceptor %d persist promise: %w", a.id, err)
		}
	}
	a.promised = b
	acc := a.slots[slot]
	return PrepareReply{
		OK:             true,
		Promised:       a.promised,
		AcceptedBallot: acc.ballot,
		AcceptedValue:  acc.value,
		HasAccepted:    acc.has,
	}, nil
}

// AcceptReply answers an accept request.
type AcceptReply struct {
	OK       bool
	Promised Ballot
}

// Accept handles phase 2a for one slot. The vote is persisted before
// the reply (and doubles as the promise record); a persist failure
// surfaces as an error and leaves the in-memory state unchanged.
func (a *Acceptor) Accept(b Ballot, slot int, v Value) (AcceptReply, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b.Less(a.promised) {
		return AcceptReply{OK: false, Promised: a.promised}, nil
	}
	if a.persist != nil {
		if err := a.persist.SaveAccept(slot, b, v); err != nil {
			return AcceptReply{}, fmt.Errorf("paxos: acceptor %d persist accept: %w", a.id, err)
		}
	}
	a.promised = b
	a.slots[slot] = accepted{ballot: b, value: v, has: true}
	return AcceptReply{OK: true, Promised: b}, nil
}

// MaxSlot returns the highest slot this acceptor has voted on, or -1.
func (a *Acceptor) MaxSlot() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := -1
	for s := range a.slots {
		if s > max {
			max = s
		}
	}
	return max
}

// Status reports the acceptor's highest voted slot and current
// promise — what a campaigning proposer learns before picking a
// ballot that outbids every live promise.
func (a *Acceptor) Status() (maxSlot int, promised Ballot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	maxSlot = -1
	for s := range a.slots {
		if s > maxSlot {
			maxSlot = s
		}
	}
	return maxSlot, a.promised
}

// LearnReply answers a learn (status) request during an election.
type LearnReply struct {
	// MaxSlot is the highest slot the acceptor voted on, or -1.
	MaxSlot int
	// Promised is the acceptor's current promise.
	Promised Ballot
}

// Transport delivers acceptor calls, allowing tests to sever links.
// The production implementation speaks the wire protocol's protocol-v3
// Paxos frames to acceptors embedded in each replica server.
type Transport interface {
	// Prepare sends a prepare to the acceptor with the given id.
	Prepare(to int, b Ballot, slot int) (PrepareReply, error)
	// Accept sends an accept to the acceptor with the given id.
	Accept(to int, b Ballot, slot int, v Value) (AcceptReply, error)
	// Learn asks the acceptor with the given id for its status (highest
	// voted slot, current promise) — the first step of an election.
	Learn(to int) (LearnReply, error)
}

// ErrUnreachable reports a severed link.
var ErrUnreachable = errors.New("paxos: node unreachable")

// LocalTransport connects acceptors in-process with per-node
// reachability switches.
type LocalTransport struct {
	mu        sync.Mutex
	acceptors map[int]*Acceptor
	down      map[int]bool
}

// NewLocalTransport wires the given acceptors together.
func NewLocalTransport(acceptors ...*Acceptor) *LocalTransport {
	t := &LocalTransport{acceptors: make(map[int]*Acceptor), down: make(map[int]bool)}
	for _, a := range acceptors {
		t.acceptors[a.id] = a
	}
	return t
}

// SetDown severs or restores a node.
func (t *LocalTransport) SetDown(id int, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[id] = down
}

func (t *LocalTransport) get(id int) (*Acceptor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[id] {
		return nil, fmt.Errorf("%w: %d", ErrUnreachable, id)
	}
	a, ok := t.acceptors[id]
	if !ok {
		return nil, fmt.Errorf("%w: unknown node %d", ErrUnreachable, id)
	}
	return a, nil
}

// Prepare implements Transport.
func (t *LocalTransport) Prepare(to int, b Ballot, slot int) (PrepareReply, error) {
	a, err := t.get(to)
	if err != nil {
		return PrepareReply{}, err
	}
	return a.Prepare(b, slot)
}

// Accept implements Transport.
func (t *LocalTransport) Accept(to int, b Ballot, slot int, v Value) (AcceptReply, error) {
	a, err := t.get(to)
	if err != nil {
		return AcceptReply{}, err
	}
	return a.Accept(b, slot, v)
}

// Learn implements Transport.
func (t *LocalTransport) Learn(to int) (LearnReply, error) {
	a, err := t.get(to)
	if err != nil {
		return LearnReply{}, err
	}
	maxSlot, promised := a.Status()
	return LearnReply{MaxSlot: maxSlot, Promised: promised}, nil
}
