package paxos

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoMajority reports that a quorum could not be assembled.
var ErrNoMajority = errors.New("paxos: no majority")

// ErrSlotTaken reports that the slot was already decided with a
// different value (a competing proposer won it); the caller should
// retry its value in a later slot.
var ErrSlotTaken = errors.New("paxos: slot decided with another value")

// DeposedError reports that a fenced proposer saw a higher ballot: a
// new leader has been elected and this proposer must stop acking
// commits. The ballot that deposed it identifies the usurper's epoch.
type DeposedError struct {
	By Ballot
}

func (e DeposedError) Error() string {
	return fmt.Sprintf("paxos: proposer deposed by ballot %s", e.By)
}

// Proposer drives consensus for a replicated log from one node. A
// stable proposer that has completed a prepare round for its ballot
// may run phase 2 directly for subsequent slots (multi-Paxos); when it
// is preempted by a higher ballot it re-prepares with a higher round —
// unless it is fenced, in which case preemption deposes it permanently
// (until the next Campaign) so a stale leader can never ack a commit a
// newer leader did not learn.
type Proposer struct {
	mu        sync.Mutex
	id        int
	peers     []int // acceptor ids, including self
	transport Transport

	ballot    Ballot
	prepared  map[int]bool // slots prepared under the current ballot
	stable    bool         // ballot has majority promises (leadership)
	fenced    bool         // preemption deposes instead of outbidding
	deposed   bool
	deposedBy Ballot

	chosen   map[int]Value
	nextSlot int
}

// NewProposer creates a proposer for the given membership.
func NewProposer(id int, peers []int, tr Transport) *Proposer {
	return &Proposer{
		id:        id,
		peers:     append([]int(nil), peers...),
		transport: tr,
		ballot:    Ballot{Round: 1, Proposer: id},
		prepared:  make(map[int]bool),
		chosen:    make(map[int]Value),
	}
}

// majority returns the quorum size.
func (p *Proposer) majority() int { return len(p.peers)/2 + 1 }

// SetFenced switches the proposer between outbidding on preemption
// (false, the in-process default) and deposing itself (true, what a
// replicated certifier leader needs for epoch fencing).
func (p *Proposer) SetFenced(fenced bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fenced = fenced
}

// CurrentBallot returns the proposer's current ballot — its epoch once
// it leads.
func (p *Proposer) CurrentBallot() Ballot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ballot
}

// Deposed reports whether a fenced proposer has been preempted, and by
// which ballot. A deposed proposer refuses every propose until the
// next Campaign.
func (p *Proposer) Deposed() (Ballot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposedBy, p.deposed
}

// Campaign elects this proposer leader: it learns the acceptors' state
// from a majority, picks a ballot that outbids every promise it saw,
// and recovers all slots up to the highest voted one (closing holes
// with noop). It returns the winning ballot — the new epoch — and the
// recovered log. Campaign clears a deposed state: it is the only way a
// fenced, deposed proposer comes back.
func (p *Proposer) Campaign(noop Value) (Ballot, map[int]Value, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	learned := 0
	maxSlot := -1
	var maxPromised Ballot
	for _, peer := range p.peers {
		rep, err := p.transport.Learn(peer)
		if err != nil {
			continue
		}
		learned++
		if rep.MaxSlot > maxSlot {
			maxSlot = rep.MaxSlot
		}
		if maxPromised.Less(rep.Promised) {
			maxPromised = rep.Promised
		}
	}
	if learned < p.majority() {
		return Ballot{}, nil, fmt.Errorf("%w: %d/%d acceptors answered learn", ErrNoMajority, learned, len(p.peers))
	}
	// Outbid every promise a majority reported. Learn replies can be
	// stale by the time we prepare, so preemption during recovery still
	// bumps the round further (campaigns may outbid even when fenced).
	round := maxPromised.Round + 1
	if round <= p.ballot.Round {
		round = p.ballot.Round + 1
	}
	p.ballot = Ballot{Round: round, Proposer: p.id}
	p.stable = false
	p.prepared = make(map[int]bool)
	p.deposed = false
	for slot := 0; slot <= maxSlot; slot++ {
		if _, ok := p.chosen[slot]; ok {
			continue
		}
		v, err := p.decideLocked(slot, noop, true)
		if err != nil {
			return Ballot{}, nil, err
		}
		p.chosen[slot] = v
	}
	if p.nextSlot <= maxSlot {
		p.nextSlot = maxSlot + 1
	}
	// Make leadership stable even when the log is empty (cold cluster):
	// prepare slot nextSlot so the first Propose runs phase 2 only and
	// the ballot is known to hold majority promises.
	if !p.stable {
		if _, err := p.prepareLocked(p.nextSlot, true); err != nil {
			return Ballot{}, nil, err
		}
	}
	out := make(map[int]Value, len(p.chosen))
	for s, v := range p.chosen {
		out[s] = v
	}
	return p.ballot, out, nil
}

// Chosen returns the value decided for slot, if known locally.
func (p *Proposer) Chosen(slot int) (Value, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.chosen[slot]
	return v, ok
}

// ChosenCount returns the number of slots this proposer knows to be
// decided.
func (p *Proposer) ChosenCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.chosen)
}

// Propose reaches consensus on v in the next free slot and returns the
// slot it was chosen in. If a competing value already owns the slot,
// the proposer adopts it, records it, and retries v in the next slot.
func (p *Proposer) Propose(v Value) (int, error) {
	for attempts := 0; attempts < 1000; attempts++ {
		slot, chosen, err := p.ProposeNext(v)
		if err != nil {
			return 0, err
		}
		if chosen == v {
			return slot, nil
		}
		// Slot held a competing value; try the next slot for ours.
	}
	return 0, fmt.Errorf("paxos: proposer %d starved", p.id)
}

// ProposeNext runs one slot's worth of Propose: it offers v at the
// next unused slot and returns the value actually chosen there, which
// is v itself or a competing value the prepare phase was obliged to
// adopt — typically a deposed leader's in-flight proposal that reached
// only a minority of acceptors and is resurrected by our phase 1.
// Callers replicating a state machine must fold an adopted value into
// their state before retrying, exactly as they would a recovered log
// entry: it is a chosen log entry from the moment this method returns.
func (p *Proposer) ProposeNext(v Value) (int, Value, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot := p.nextSlot
	chosen, err := p.decideLocked(slot, v, false)
	if err != nil {
		return 0, "", err
	}
	p.chosen[slot] = chosen
	p.nextSlot = slot + 1
	return slot, chosen, nil
}

// Recover closes all slots up to and including maxSlot by proposing
// no-op values where nothing was accepted, returning the recovered
// log. New leaders call it to learn the previous leader's decisions.
func (p *Proposer) Recover(maxSlot int, noop Value) (map[int]Value, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for slot := 0; slot <= maxSlot; slot++ {
		if _, ok := p.chosen[slot]; ok {
			continue
		}
		v, err := p.decideLocked(slot, noop, false)
		if err != nil {
			return nil, err
		}
		p.chosen[slot] = v
	}
	if p.nextSlot <= maxSlot {
		p.nextSlot = maxSlot + 1
	}
	out := make(map[int]Value, len(p.chosen))
	for s, v := range p.chosen {
		out[s] = v
	}
	return out, nil
}

// depose records that a higher ballot preempted a fenced proposer.
func (p *Proposer) deposeLocked(by Ballot) error {
	p.stable = false
	p.deposed = true
	if p.deposedBy.Less(by) {
		p.deposedBy = by
	}
	return DeposedError{By: p.deposedBy}
}

// decideLocked runs full Paxos for one slot and returns the value
// actually chosen (ours, or one adopted from a previous round). With
// campaigning true, preemption always outbids; otherwise a fenced
// proposer is deposed instead.
func (p *Proposer) decideLocked(slot int, v Value, campaigning bool) (Value, error) {
	if p.deposed && !campaigning {
		return "", DeposedError{By: p.deposedBy}
	}
	for round := 0; round < 100; round++ {
		// Phase 1: skippable while the ballot is stable and the slot
		// has not been prepared under it.
		if !p.stable || !p.prepared[slot] {
			adopted, err := p.prepareLocked(slot, campaigning)
			if err != nil {
				return "", err
			}
			if adopted != nil {
				v = *adopted
			}
		}
		// Phase 2.
		acks := 0
		preempted := false
		var higher Ballot
		for _, peer := range p.peers {
			rep, err := p.transport.Accept(peer, p.ballot, slot, v)
			if err != nil {
				continue
			}
			if rep.OK {
				acks++
			} else if p.ballot.Less(rep.Promised) {
				preempted, higher = true, rep.Promised
			}
		}
		if acks >= p.majority() {
			return v, nil
		}
		if !preempted {
			return "", fmt.Errorf("%w: %d/%d accepts for slot %d", ErrNoMajority, acks, len(p.peers), slot)
		}
		if p.fenced && !campaigning {
			return "", p.deposeLocked(higher)
		}
		// Preempted: outbid and re-prepare.
		p.stable = false
		p.prepared = make(map[int]bool)
		p.ballot = Ballot{Round: higher.Round + 1, Proposer: p.id}
	}
	return "", fmt.Errorf("paxos: livelock proposing slot %d", slot)
}

// prepareLocked runs phase 1 for a slot. It returns the value this
// proposer is obliged to adopt (the accepted value with the highest
// ballot among promises), or nil when free to propose its own.
func (p *Proposer) prepareLocked(slot int, campaigning bool) (*Value, error) {
	for round := 0; round < 100; round++ {
		promises := 0
		var adopt *Value
		var adoptBallot Ballot
		preempted := false
		var higher Ballot
		for _, peer := range p.peers {
			rep, err := p.transport.Prepare(peer, p.ballot, slot)
			if err != nil {
				continue
			}
			if !rep.OK {
				if p.ballot.Less(rep.Promised) {
					preempted, higher = true, rep.Promised
				}
				continue
			}
			promises++
			if rep.HasAccepted && (adopt == nil || adoptBallot.Less(rep.AcceptedBallot)) {
				val := rep.AcceptedValue
				adopt, adoptBallot = &val, rep.AcceptedBallot
			}
		}
		if promises >= p.majority() {
			p.stable = true
			p.prepared[slot] = true
			return adopt, nil
		}
		if !preempted {
			return nil, fmt.Errorf("%w: %d/%d promises for slot %d", ErrNoMajority, promises, len(p.peers), slot)
		}
		if p.fenced && !campaigning {
			return nil, p.deposeLocked(higher)
		}
		p.stable = false
		p.prepared = make(map[int]bool)
		p.ballot = Ballot{Round: higher.Round + 1, Proposer: p.id}
	}
	return nil, fmt.Errorf("paxos: livelock preparing slot %d", slot)
}
