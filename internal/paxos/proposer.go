package paxos

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoMajority reports that a quorum could not be assembled.
var ErrNoMajority = errors.New("paxos: no majority")

// ErrSlotTaken reports that the slot was already decided with a
// different value (a competing proposer won it); the caller should
// retry its value in a later slot.
var ErrSlotTaken = errors.New("paxos: slot decided with another value")

// Proposer drives consensus for a replicated log from one node. A
// stable proposer that has completed a prepare round for its ballot
// may run phase 2 directly for subsequent slots (multi-Paxos); when it
// is preempted by a higher ballot it re-prepares with a higher round.
type Proposer struct {
	mu        sync.Mutex
	id        int
	peers     []int // acceptor ids, including self
	transport Transport

	ballot   Ballot
	prepared map[int]bool // slots prepared under the current ballot
	stable   bool         // ballot has majority promises (leadership)

	chosen   map[int]Value
	nextSlot int
}

// NewProposer creates a proposer for the given membership.
func NewProposer(id int, peers []int, tr Transport) *Proposer {
	return &Proposer{
		id:        id,
		peers:     append([]int(nil), peers...),
		transport: tr,
		ballot:    Ballot{Round: 1, Proposer: id},
		prepared:  make(map[int]bool),
		chosen:    make(map[int]Value),
	}
}

// majority returns the quorum size.
func (p *Proposer) majority() int { return len(p.peers)/2 + 1 }

// Chosen returns the value decided for slot, if known locally.
func (p *Proposer) Chosen(slot int) (Value, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.chosen[slot]
	return v, ok
}

// ChosenCount returns the number of slots this proposer knows to be
// decided.
func (p *Proposer) ChosenCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.chosen)
}

// Propose reaches consensus on v in the next free slot and returns the
// slot it was chosen in. If a competing value already owns the slot,
// the proposer adopts it, records it, and retries v in the next slot.
func (p *Proposer) Propose(v Value) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for attempts := 0; attempts < 1000; attempts++ {
		slot := p.nextSlot
		chosenValue, err := p.decideLocked(slot, v)
		if err != nil {
			return 0, err
		}
		p.chosen[slot] = chosenValue
		p.nextSlot = slot + 1
		if chosenValue == v {
			return slot, nil
		}
		// Slot held a competing value; try the next slot for ours.
	}
	return 0, fmt.Errorf("paxos: proposer %d starved", p.id)
}

// Recover closes all slots up to and including maxSlot by proposing
// no-op values where nothing was accepted, returning the recovered
// log. New leaders call it to learn the previous leader's decisions.
func (p *Proposer) Recover(maxSlot int, noop Value) (map[int]Value, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for slot := 0; slot <= maxSlot; slot++ {
		if _, ok := p.chosen[slot]; ok {
			continue
		}
		v, err := p.decideLocked(slot, noop)
		if err != nil {
			return nil, err
		}
		p.chosen[slot] = v
	}
	if p.nextSlot <= maxSlot {
		p.nextSlot = maxSlot + 1
	}
	out := make(map[int]Value, len(p.chosen))
	for s, v := range p.chosen {
		out[s] = v
	}
	return out, nil
}

// decideLocked runs full Paxos for one slot and returns the value
// actually chosen (ours, or one adopted from a previous round).
func (p *Proposer) decideLocked(slot int, v Value) (Value, error) {
	for round := 0; round < 100; round++ {
		// Phase 1: skippable while the ballot is stable and the slot
		// has not been prepared under it.
		if !p.stable || !p.prepared[slot] {
			adopted, err := p.prepareLocked(slot)
			if err != nil {
				return "", err
			}
			if adopted != nil {
				v = *adopted
			}
		}
		// Phase 2.
		acks := 0
		preempted := false
		var higher Ballot
		for _, peer := range p.peers {
			rep, err := p.transport.Accept(peer, p.ballot, slot, v)
			if err != nil {
				continue
			}
			if rep.OK {
				acks++
			} else if p.ballot.Less(rep.Promised) {
				preempted, higher = true, rep.Promised
			}
		}
		if acks >= p.majority() {
			return v, nil
		}
		if !preempted {
			return "", fmt.Errorf("%w: %d/%d accepts for slot %d", ErrNoMajority, acks, len(p.peers), slot)
		}
		// Preempted: outbid and re-prepare.
		p.stable = false
		p.prepared = make(map[int]bool)
		p.ballot = Ballot{Round: higher.Round + 1, Proposer: p.id}
	}
	return "", fmt.Errorf("paxos: livelock proposing slot %d", slot)
}

// prepareLocked runs phase 1 for a slot. It returns the value this
// proposer is obliged to adopt (the accepted value with the highest
// ballot among promises), or nil when free to propose its own.
func (p *Proposer) prepareLocked(slot int) (*Value, error) {
	for round := 0; round < 100; round++ {
		promises := 0
		var adopt *Value
		var adoptBallot Ballot
		preempted := false
		var higher Ballot
		for _, peer := range p.peers {
			rep, err := p.transport.Prepare(peer, p.ballot, slot)
			if err != nil {
				continue
			}
			if !rep.OK {
				if p.ballot.Less(rep.Promised) {
					preempted, higher = true, rep.Promised
				}
				continue
			}
			promises++
			if rep.HasAccepted && (adopt == nil || adoptBallot.Less(rep.AcceptedBallot)) {
				val := rep.AcceptedValue
				adopt, adoptBallot = &val, rep.AcceptedBallot
			}
		}
		if promises >= p.majority() {
			p.stable = true
			p.prepared[slot] = true
			return adopt, nil
		}
		if !preempted {
			return nil, fmt.Errorf("%w: %d/%d promises for slot %d", ErrNoMajority, promises, len(p.peers), slot)
		}
		p.stable = false
		p.prepared = make(map[int]bool)
		p.ballot = Ballot{Round: higher.Round + 1, Proposer: p.id}
	}
	return nil, fmt.Errorf("paxos: livelock preparing slot %d", slot)
}
