package paxos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// cluster builds n acceptors wired by a LocalTransport.
func cluster(n int) ([]*Acceptor, []int, *LocalTransport) {
	var accs []*Acceptor
	var ids []int
	for i := 0; i < n; i++ {
		accs = append(accs, NewAcceptor(i))
		ids = append(ids, i)
	}
	return accs, ids, NewLocalTransport(accs...)
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{Round: 1, Proposer: 0}
	b := Ballot{Round: 1, Proposer: 1}
	c := Ballot{Round: 2, Proposer: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("ballot ordering broken")
	}
	if a.Less(a) {
		t.Fatal("ballot less than itself")
	}
	if a.String() != "1.0" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestSingleProposerDecides(t *testing.T) {
	_, ids, tr := cluster(3)
	p := NewProposer(0, ids, tr)
	for i := 0; i < 10; i++ {
		v := Value(fmt.Sprintf("cmd-%d", i))
		slot, err := p.Propose(v)
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("value %d landed in slot %d", i, slot)
		}
		got, ok := p.Chosen(slot)
		if !ok || got != v {
			t.Fatalf("slot %d: chosen %q %v", slot, got, ok)
		}
	}
}

func TestAcceptorPromiseBlocksOldBallots(t *testing.T) {
	a := NewAcceptor(0)
	high := Ballot{Round: 5, Proposer: 1}
	low := Ballot{Round: 3, Proposer: 0}
	if rep, err := a.Prepare(high, 0); err != nil || !rep.OK {
		t.Fatal("first prepare rejected")
	}
	if rep, err := a.Prepare(low, 0); err != nil || rep.OK {
		t.Fatal("old ballot prepared after newer promise")
	}
	if rep, err := a.Accept(low, 0, "x"); err != nil || rep.OK {
		t.Fatal("old ballot accepted after newer promise")
	}
	if rep, err := a.Accept(high, 0, "y"); err != nil || !rep.OK {
		t.Fatal("promised ballot rejected at accept")
	}
}

func TestPrepareReturnsAcceptedValue(t *testing.T) {
	a := NewAcceptor(0)
	b1 := Ballot{Round: 1, Proposer: 0}
	a.Prepare(b1, 3)
	a.Accept(b1, 3, "first")
	b2 := Ballot{Round: 2, Proposer: 1}
	rep, err := a.Prepare(b2, 3)
	if err != nil || !rep.OK || !rep.HasAccepted || rep.AcceptedValue != "first" {
		t.Fatalf("prepare did not surface accepted value: %+v (%v)", rep, err)
	}
}

func TestValueSurvivesLeaderChange(t *testing.T) {
	// Leader 0 decides slots 0..4, then dies. Leader 1 recovers and
	// must observe exactly the same log.
	_, ids, tr := cluster(3)
	p0 := NewProposer(0, ids, tr)
	want := map[int]Value{}
	for i := 0; i < 5; i++ {
		v := Value(fmt.Sprintf("v%d", i))
		slot, err := p0.Propose(v)
		if err != nil {
			t.Fatal(err)
		}
		want[slot] = v
	}
	tr.SetDown(0, true) // old leader unreachable

	p1 := NewProposer(1, ids, tr)
	maxSlot := -1
	for _, id := range []int{1, 2} {
		a, err := tr.get(id)
		if err != nil {
			t.Fatal(err)
		}
		if s := a.MaxSlot(); s > maxSlot {
			maxSlot = s
		}
	}
	log, err := p1.Recover(maxSlot, "noop")
	if err != nil {
		t.Fatal(err)
	}
	for slot, v := range want {
		if log[slot] != v {
			t.Fatalf("slot %d: recovered %q, want %q", slot, log[slot], v)
		}
	}
}

func TestNoMajorityFails(t *testing.T) {
	_, ids, tr := cluster(3)
	tr.SetDown(1, true)
	tr.SetDown(2, true)
	p := NewProposer(0, ids, tr)
	if _, err := p.Propose("x"); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("expected ErrNoMajority, got %v", err)
	}
}

func TestMinoritySeveredStillDecides(t *testing.T) {
	_, ids, tr := cluster(3)
	tr.SetDown(2, true)
	p := NewProposer(0, ids, tr)
	slot, err := p.Propose("survives")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Chosen(slot); !ok || v != "survives" {
		t.Fatalf("chosen = %q %v", v, ok)
	}
}

func TestCompetingProposersAgree(t *testing.T) {
	// Two proposers interleave proposals; for every slot both must
	// observe the same decided value (the fundamental safety
	// property).
	_, ids, tr := cluster(3)
	p0 := NewProposer(0, ids, tr)
	p1 := NewProposer(1, ids, tr)
	for i := 0; i < 10; i++ {
		if _, err := p0.Propose(Value(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := p1.Propose(Value(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Compare overlapping views.
	for slot := 0; slot < 10; slot++ {
		v0, ok0 := p0.Chosen(slot)
		v1, ok1 := p1.Chosen(slot)
		if ok0 && ok1 && v0 != v1 {
			t.Fatalf("slot %d: divergent decisions %q vs %q", slot, v0, v1)
		}
	}
}

func TestConcurrentProposersSafety(t *testing.T) {
	// Hammer the cluster from several goroutines. Afterwards, replay
	// the acceptors: every slot with a majority-accepted value must be
	// consistent across the proposers' chosen maps.
	_, ids, tr := cluster(3)
	const workers = 4
	const perWorker = 15
	proposers := make([]*Proposer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		proposers[w] = NewProposer(w%3, ids, tr)
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := proposers[w].Propose(Value(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Cross-check all proposers agree wherever their knowledge
	// overlaps.
	maxSlot := 0
	for _, p := range proposers {
		if n := p.ChosenCount(); n > maxSlot {
			maxSlot = n
		}
	}
	for slot := 0; slot < maxSlot; slot++ {
		var seen *Value
		for _, p := range proposers {
			if v, ok := p.Chosen(slot); ok {
				if seen != nil && *seen != v {
					t.Fatalf("slot %d: %q vs %q", slot, *seen, v)
				}
				val := v
				seen = &val
			}
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	_, ids, tr := cluster(3)
	p := NewProposer(0, ids, tr)
	p.Propose("a")
	p.Propose("b")
	log1, err := p.Recover(1, "noop")
	if err != nil {
		t.Fatal(err)
	}
	log2, err := p.Recover(1, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if len(log1) != len(log2) {
		t.Fatalf("recover changed log size: %d vs %d", len(log1), len(log2))
	}
	for s, v := range log1 {
		if log2[s] != v {
			t.Fatalf("slot %d changed across recovers", s)
		}
	}
}

func TestUnknownNodeUnreachable(t *testing.T) {
	_, _, tr := cluster(1)
	if _, err := tr.Prepare(99, Ballot{}, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node: %v", err)
	}
	if _, err := tr.Accept(99, Ballot{}, 0, "x"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node: %v", err)
	}
}

func TestNodeRestore(t *testing.T) {
	_, ids, tr := cluster(3)
	tr.SetDown(2, true)
	tr.SetDown(2, false)
	p := NewProposer(0, ids, tr)
	if _, err := p.Propose("x"); err != nil {
		t.Fatal(err)
	}
}

func TestProposerContentionSameSlot(t *testing.T) {
	// Two fresh proposers both target slot 0. Exactly one value wins
	// the slot, and the loser adopts the winner's value before landing
	// its own in a later slot — the convergence the election path
	// depends on.
	_, ids, tr := cluster(3)
	p0 := NewProposer(0, ids, tr)
	p1 := NewProposer(1, ids, tr)
	s0, err := p0.Propose("winner")
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 {
		t.Fatalf("first proposal landed in slot %d", s0)
	}
	s1, err := p1.Propose("loser")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == 0 {
		t.Fatal("second proposer stole a decided slot")
	}
	v, ok := p1.Chosen(0)
	if !ok || v != "winner" {
		t.Fatalf("loser observed %q %v for slot 0, want the winner's value", v, ok)
	}
	if v, ok := p1.Chosen(s1); !ok || v != "loser" {
		t.Fatalf("loser's value not chosen in slot %d: %q %v", s1, v, ok)
	}
	// Both proposers agree on every overlapping slot.
	for slot := 0; slot <= s1; slot++ {
		v0, ok0 := p0.Chosen(slot)
		v1, ok1 := p1.Chosen(slot)
		if ok0 && ok1 && v0 != v1 {
			t.Fatalf("slot %d: divergent decisions %q vs %q", slot, v0, v1)
		}
	}
}

func TestCampaignElectsAndRecovers(t *testing.T) {
	// Leader 0 decides a prefix and dies; 1 campaigns and must learn
	// the full log under a strictly higher ballot.
	_, ids, tr := cluster(3)
	p0 := NewProposer(0, ids, tr)
	p0.SetFenced(true)
	want := map[int]Value{}
	for i := 0; i < 5; i++ {
		v := Value(fmt.Sprintf("v%d", i))
		slot, err := p0.Propose(v)
		if err != nil {
			t.Fatal(err)
		}
		want[slot] = v
	}
	tr.SetDown(0, true)

	p1 := NewProposer(1, ids, tr)
	p1.SetFenced(true)
	epoch, log, err := p1.Campaign("noop")
	if err != nil {
		t.Fatal(err)
	}
	if !p0.CurrentBallot().Less(epoch) {
		t.Fatalf("new epoch %s does not outbid old leader's %s", epoch, p0.CurrentBallot())
	}
	if epoch.Proposer != 1 {
		t.Fatalf("epoch proposer = %d, want 1", epoch.Proposer)
	}
	for slot, v := range want {
		if log[slot] != v {
			t.Fatalf("slot %d: campaigned log has %q, want %q", slot, log[slot], v)
		}
	}
	// The new leader keeps committing.
	if _, err := p1.Propose("after-failover"); err != nil {
		t.Fatal(err)
	}
}

func TestFencedLeaderDeposedCannotAck(t *testing.T) {
	// A fenced leader preempted by a campaign must fail with
	// DeposedError — never outbid its way back to acking.
	_, ids, tr := cluster(3)
	p0 := NewProposer(0, ids, tr)
	p0.SetFenced(true)
	if _, err := p0.Propose("pre"); err != nil {
		t.Fatal(err)
	}
	p1 := NewProposer(1, ids, tr)
	p1.SetFenced(true)
	epoch, _, err := p1.Campaign("noop")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p0.Propose("stale")
	var dep DeposedError
	if !errors.As(err, &dep) {
		t.Fatalf("deposed leader proposed: err = %v", err)
	}
	if dep.By.Less(epoch) && dep.By != epoch {
		t.Fatalf("deposed by %s, want at least %s", dep.By, epoch)
	}
	// And it stays deposed on retry.
	if _, err := p0.Propose("still-stale"); !errors.As(err, &dep) {
		t.Fatalf("second propose after deposal: err = %v", err)
	}
	// Re-campaigning is the only way back.
	if _, _, err := p0.Campaign("noop"); err != nil {
		t.Fatal(err)
	}
	if _, err := p0.Propose("back"); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignNeedsMajority(t *testing.T) {
	_, ids, tr := cluster(3)
	tr.SetDown(1, true)
	tr.SetDown(2, true)
	p := NewProposer(0, ids, tr)
	if _, _, err := p.Campaign("noop"); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("campaign without majority: %v", err)
	}
}

func TestLearnReportsStatus(t *testing.T) {
	_, ids, tr := cluster(3)
	p := NewProposer(0, ids, tr)
	p.Propose("a")
	p.Propose("b")
	rep, err := tr.Learn(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxSlot != 1 {
		t.Fatalf("MaxSlot = %d, want 1", rep.MaxSlot)
	}
	if rep.Promised != p.CurrentBallot() {
		t.Fatalf("Promised = %s, want %s", rep.Promised, p.CurrentBallot())
	}
	if _, err := tr.Learn(99); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node: %v", err)
	}
}

// failPersister fails every save after a budget of successes.
type failPersister struct {
	budget int
}

func (f *failPersister) SavePromise(Ballot) error { return f.save() }
func (f *failPersister) SaveAccept(int, Ballot, Value) error {
	return f.save()
}
func (f *failPersister) save() error {
	if f.budget > 0 {
		f.budget--
		return nil
	}
	return errors.New("disk gone")
}

func TestPersistFailureAbortsReply(t *testing.T) {
	// A persist failure must surface as an error and leave the
	// in-memory acceptor unchanged — the promise was never made.
	a := RestoreAcceptor(0, &failPersister{budget: 0}, Ballot{}, nil)
	b := Ballot{Round: 3, Proposer: 1}
	if _, err := a.Prepare(b, 0); err == nil {
		t.Fatal("prepare succeeded despite persist failure")
	}
	if _, promised := a.Status(); promised != (Ballot{}) {
		t.Fatalf("promise leaked into memory: %s", promised)
	}
	if _, err := a.Accept(b, 0, "x"); err == nil {
		t.Fatal("accept succeeded despite persist failure")
	}
	if a.MaxSlot() != -1 {
		t.Fatal("vote leaked into memory")
	}
}

func TestRestoreAcceptorHonorsPromises(t *testing.T) {
	// An acceptor restored from persisted state must still reject
	// ballots below its old promise, and accepting implies promising.
	slots := map[int]AcceptedSlot{
		0: {Ballot: Ballot{Round: 4, Proposer: 2}, Value: "kept"},
	}
	a := RestoreAcceptor(0, &failPersister{budget: 100}, Ballot{Round: 2, Proposer: 0}, slots)
	if rep, err := a.Prepare(Ballot{Round: 3, Proposer: 0}, 0); err != nil || rep.OK {
		t.Fatalf("ballot below restored accept-implied promise got through: %+v (%v)", rep, err)
	}
	rep, err := a.Prepare(Ballot{Round: 5, Proposer: 1}, 0)
	if err != nil || !rep.OK {
		t.Fatalf("prepare above restored promise failed: %+v (%v)", rep, err)
	}
	if !rep.HasAccepted || rep.AcceptedValue != "kept" {
		t.Fatalf("restored vote not surfaced: %+v", rep)
	}
}

func TestQuickProposeSequenceIsDense(t *testing.T) {
	// Property: proposing k values in sequence from one proposer fills
	// slots 0..k-1 with exactly those values in order.
	f := func(n uint8) bool {
		k := int(n%20) + 1
		_, ids, tr := cluster(3)
		p := NewProposer(0, ids, tr)
		for i := 0; i < k; i++ {
			slot, err := p.Propose(Value(fmt.Sprintf("%d", i)))
			if err != nil || slot != i {
				return false
			}
		}
		for i := 0; i < k; i++ {
			v, ok := p.Chosen(i)
			if !ok || v != Value(fmt.Sprintf("%d", i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
