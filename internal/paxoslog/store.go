// Package paxoslog persists a Paxos acceptor's promises and votes
// through the WAL's filesystem seam, so a power-cycled certifier
// replica rejoins the acceptor group without violating a promise it
// already let a proposer act on. The paper replicates the certifier
// with Paxos for fault-tolerance (§5.1); classic Paxos requires each
// acceptor to record its state on stable storage before answering, and
// this package is that stable storage.
//
// Framing mirrors internal/wal: every record is one frame
//
//	[u32 length] [u32 CRC32C(payload)] [payload]
//
// where payload is a kind byte followed by varints. Replay stops at
// the first short, oversized or CRC-failing frame — the torn tail a
// crash mid-write leaves behind — and Open truncates the file there,
// so a recovered store is always a valid prefix of what was written.
// Because the in-memory acceptor only replies after a persist
// succeeds, a truncated tail can only drop promises and votes the
// acceptor never answered for.
package paxoslog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sync"

	"repro/internal/paxos"
	"repro/internal/wal"
)

// Record kinds.
const (
	// kindPromise records a raised promise: {round, proposer}.
	kindPromise byte = 1
	// kindAccept records a vote: {slot, round, proposer, value}. The
	// ballot doubles as a promise (voting at b implies promising b).
	kindAccept byte = 2
)

const (
	// FileName is the acceptor store's file inside its FS.
	FileName = "acceptor.log"

	// maxRecord bounds one frame; larger lengths in the file are
	// treated as tail corruption.
	maxRecord = 64 << 20

	// headerSize is the per-frame overhead: u32 length + u32 CRC.
	headerSize = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by saves on a closed store.
var ErrClosed = errors.New("paxoslog: closed")

// Store is a durable paxos.Persister over one append-only file. Saves
// return only after the record is written (and, with fsync on, synced)
// so the acceptor's persist-then-reply contract holds.
type Store struct {
	mu    sync.Mutex
	fs    wal.FS
	f     wal.File
	fsync bool
	buf   []byte
	err   error // sticky: a failed save poisons the store
}

// Open replays (or creates) the acceptor store in fsys and returns the
// store plus the restored state: the highest promise seen and the
// latest vote per slot — exactly what paxos.RestoreAcceptor takes.
func Open(fsys wal.FS, fsync bool) (*Store, paxos.Ballot, map[int]paxos.AcceptedSlot, error) {
	data, err := fsys.ReadFile(FileName)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		f, err := fsys.Create(FileName)
		if err != nil {
			return nil, paxos.Ballot{}, nil, fmt.Errorf("paxoslog: create: %w", err)
		}
		if err := fsys.SyncDir(); err != nil {
			f.Close()
			return nil, paxos.Ballot{}, nil, fmt.Errorf("paxoslog: sync dir: %w", err)
		}
		return &Store{fs: fsys, f: f, fsync: fsync}, paxos.Ballot{}, map[int]paxos.AcceptedSlot{}, nil
	case err != nil:
		return nil, paxos.Ballot{}, nil, fmt.Errorf("paxoslog: read: %w", err)
	}

	promised, slots, valid := replay(data)
	// Reopen for append, cutting any torn tail.
	f, err := fsys.OpenAppend(FileName, int64(valid))
	if err != nil {
		return nil, paxos.Ballot{}, nil, fmt.Errorf("paxoslog: open append: %w", err)
	}
	return &Store{fs: fsys, f: f, fsync: fsync}, promised, slots, nil
}

// replay scans frames, returning the restored state and the byte
// offset of the first invalid frame (the truncation point).
func replay(data []byte) (paxos.Ballot, map[int]paxos.AcceptedSlot, int) {
	var promised paxos.Ballot
	slots := make(map[int]paxos.AcceptedSlot)
	off := 0
	for {
		if len(data)-off < headerSize {
			return promised, slots, off
		}
		n := binary.BigEndian.Uint32(data[off:])
		crc := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecord || int(n) > len(data)-off-headerSize {
			return promised, slots, off
		}
		payload := data[off+headerSize : off+headerSize+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return promised, slots, off
		}
		b, slot, v, ok := decodePayload(payload)
		if !ok {
			return promised, slots, off
		}
		if promised.Less(b) {
			promised = b
		}
		if payload[0] == kindAccept {
			rec, exists := slots[slot]
			if !exists || rec.Ballot.Less(b) {
				slots[slot] = paxos.AcceptedSlot{Ballot: b, Value: v}
			}
		}
		off += headerSize + int(n)
	}
}

// decodePayload parses one record payload. For promises slot/value are
// zero.
func decodePayload(p []byte) (b paxos.Ballot, slot int, v paxos.Value, ok bool) {
	kind := p[0]
	rest := p[1:]
	next := func() (int64, bool) {
		x, n := binary.Varint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return x, true
	}
	switch kind {
	case kindPromise:
		round, ok1 := next()
		prop, ok2 := next()
		if !ok1 || !ok2 || len(rest) != 0 {
			return b, 0, "", false
		}
		return paxos.Ballot{Round: int(round), Proposer: int(prop)}, 0, "", true
	case kindAccept:
		s, ok0 := next()
		round, ok1 := next()
		prop, ok2 := next()
		if !ok0 || !ok1 || !ok2 {
			return b, 0, "", false
		}
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return b, 0, "", false
		}
		rest = rest[n:]
		if vlen != uint64(len(rest)) {
			return b, 0, "", false
		}
		return paxos.Ballot{Round: int(round), Proposer: int(prop)}, int(s), paxos.Value(rest), true
	default:
		return b, 0, "", false
	}
}

// SavePromise implements paxos.Persister.
func (s *Store) SavePromise(b paxos.Ballot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := s.buf[:0]
	payload = append(payload, kindPromise)
	payload = binary.AppendVarint(payload, int64(b.Round))
	payload = binary.AppendVarint(payload, int64(b.Proposer))
	return s.appendLocked(payload)
}

// SaveAccept implements paxos.Persister.
func (s *Store) SaveAccept(slot int, b paxos.Ballot, v paxos.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := s.buf[:0]
	payload = append(payload, kindAccept)
	payload = binary.AppendVarint(payload, int64(slot))
	payload = binary.AppendVarint(payload, int64(b.Round))
	payload = binary.AppendVarint(payload, int64(b.Proposer))
	payload = binary.AppendUvarint(payload, uint64(len(v)))
	payload = append(payload, v...)
	return s.appendLocked(payload)
}

// appendLocked frames and writes one payload, syncing when configured.
// The frame is written in a single Write call so a crash tears at most
// one record, which replay's CRC check cuts cleanly.
func (s *Store) appendLocked(payload []byte) error {
	if s.err != nil {
		return s.err
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[headerSize:], payload)
	s.buf = payload // recycle the scratch buffer
	if _, err := s.f.Write(frame); err != nil {
		s.err = fmt.Errorf("paxoslog: write: %w", err)
		return s.err
	}
	if s.fsync {
		if err := s.f.Sync(); err != nil {
			s.err = fmt.Errorf("paxoslog: sync: %w", err)
			return s.err
		}
	}
	return nil
}

// Close closes the store; further saves fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = ErrClosed
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
