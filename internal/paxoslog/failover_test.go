package paxoslog_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/certifier"
	"repro/internal/paxos"
	"repro/internal/paxoslog"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// txnWS is transaction i's writeset: one distinct row, so the workload
// never aborts and version v always carries row v-1.
func txnWS(i int) writeset.Writeset {
	return writeset.New([]writeset.Entry{{
		Key:   writeset.Key{Table: "t", Row: int64(i)},
		Value: fmt.Sprintf("val-%d", i),
	}})
}

// checkRecord asserts the record at version v is transaction v-1's.
func checkRecord(t *testing.T, name string, rec certifier.Record) {
	t.Helper()
	i := rec.Version - 1
	if len(rec.Writeset.Entries) != 1 {
		t.Fatalf("%s: version %d has %d entries", name, rec.Version, len(rec.Writeset.Entries))
	}
	e := rec.Writeset.Entries[0]
	if e.Key.Row != i || e.Value != fmt.Sprintf("val-%d", i) {
		t.Fatalf("%s: version %d holds row %d value %q — a phantom or corrupted commit", name, rec.Version, e.Key.Row, e.Value)
	}
}

// openNode opens a durable acceptor for node id over fsys.
func openNode(id int, fsys wal.FS, fsync bool) (*paxos.Acceptor, *paxoslog.Store, error) {
	store, promised, slots, err := paxoslog.Open(fsys, fsync)
	if err != nil {
		return nil, nil, err
	}
	return paxos.RestoreAcceptor(id, store, promised, slots), store, nil
}

// TestLeaderKillFailoverSweep is the PR's acceptance proof: it kills
// the certifier leader at every traced filesystem operation (paxoslog
// promise/vote persists, WAL journal appends and fsyncs — with and
// without torn writes, under power-loss and process-kill semantics),
// then elects a backup and asserts that no acked commit is lost, no
// phantom commit appears, the log stays a dense prefix, the deposed
// leader cannot ack, and the cluster resumes committing on the new
// leader without manual intervention.
//
// The topology is chosen so acceptor durability actually carries the
// proof: node 2 is unreachable during the workload, so every decided
// slot lives only on the leader (node 0) and node 1. Recovery then
// elects node 2 with node 1 down — the new majority is {restored 0, 2},
// and only node 0's persisted votes connect the acked commits to the
// new epoch.
func TestLeaderKillFailoverSweep(t *testing.T) {
	const commits = 6
	models := []struct {
		name         string
		fsync        bool
		keepUnsynced bool
	}{
		{"power-loss", true, false},
		{"process-kill", false, true},
	}

	// Dry run to size the leader's op trace.
	ops := runLeaderWorkload(t, wal.NewCrashFS(wal.NewMemFS(), -1, 0), true, commits, nil)
	if ops < commits {
		t.Fatalf("dry run traced only %d ops", ops)
	}

	for _, m := range models {
		for armAt := 0; armAt <= ops; armAt++ { // armAt == ops: never crashes
			for _, cut := range []int{0, 3} {
				name := fmt.Sprintf("%s/arm=%d/cut=%d", m.name, armAt, cut)
				runFailoverCase(t, name, m.fsync, m.keepUnsynced, armAt, cut, commits)
			}
		}
	}
}

// runLeaderWorkload boots leader node 0 over cfs0 (durable acceptor +
// WAL journal on the same filesystem), runs the commit workload with
// node 2 severed, and returns the number of traced ops. When state is
// non-nil the live objects and ack bookkeeping are stored into it.
type leaderState struct {
	cert  *certifier.Certifier
	tr    *paxos.LocalTransport
	a1    *paxos.Acceptor
	a2    *paxos.Acceptor
	fs1   *wal.MemFS
	fs2   *wal.MemFS
	acked int // transactions 0..acked-1 were acknowledged
	alive bool
}

func runLeaderWorkload(t *testing.T, cfs0 *wal.CrashFS, fsync bool, commits int, state *leaderState) int {
	t.Helper()
	fs1, fs2 := wal.NewMemFS(), wal.NewMemFS()
	a1, _, err := openNode(1, fs1, true)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := openNode(2, fs2, true)
	if err != nil {
		t.Fatal(err)
	}
	if state != nil {
		state.a1, state.a2, state.fs1, state.fs2 = a1, a2, fs1, fs2
	}

	a0, _, err := openNode(0, cfs0, fsync)
	if err != nil {
		// Crashed before the acceptor store existed: no leader, no acks.
		return len(cfs0.Trace())
	}
	tr := paxos.NewLocalTransport(a0, a1, a2)
	tr.SetDown(2, true) // node 2 misses the whole workload
	cert := certifier.NewReplicatedOver(0, []int{0, 1, 2}, tr, true)
	w, _, err := wal.Open(wal.Options{FS: cfs0, Fsync: fsync})
	if err != nil {
		// Crashed while opening the journal: served nothing.
		return len(cfs0.Trace())
	}
	cert.SetJournal(w)
	if state != nil {
		state.cert, state.tr, state.alive = cert, tr, true
	}

	for i := 0; i < commits; i++ {
		if cfs0.Crashed() {
			break
		}
		out, err := cert.Certify(0, txnWS(i))
		if err != nil || !out.Committed {
			break // leader dead or deposed; nothing past this is acked
		}
		if cfs0.Crashed() {
			// The ack raced the crash: the commit may be decided, but no
			// client saw it succeed. In-flight, not acked.
			break
		}
		if state != nil {
			if out.Version != int64(i+1) {
				t.Fatalf("workload version drift: txn %d got version %d", i, out.Version)
			}
			state.acked = i + 1
		}
	}
	return len(cfs0.Trace())
}

func runFailoverCase(t *testing.T, name string, fsync, keepUnsynced bool, armAt, cut, commits int) {
	t.Helper()
	fs0 := wal.NewMemFS()
	cfs0 := wal.NewCrashFS(fs0, armAt, cut)
	var st leaderState
	runLeaderWorkload(t, cfs0, fsync, commits, &st)

	// The leader host dies and restarts: its disk keeps what the crash
	// model says a real crash preserves.
	fs0.PowerCycle(keepUnsynced)
	a0r, _, err := openNode(0, fs0, fsync)
	if err != nil {
		t.Fatalf("%s: restart node 0: %v", name, err)
	}

	// Elect node 2 with node 1 down: majority {restored 0, 2}.
	tr2 := paxos.NewLocalTransport(a0r, st.a1, st.a2)
	tr2.SetDown(1, true)
	newCert, epoch, err := certifier.Promote(2, []int{0, 1, 2}, tr2)
	if err != nil {
		t.Fatalf("%s: promote: %v", name, err)
	}
	if epoch.Proposer != 2 {
		t.Fatalf("%s: epoch %s not owned by node 2", name, epoch)
	}

	// No lost ack, no phantom, dense prefix.
	recs := newCert.Since(0)
	for i, rec := range recs {
		if rec.Version != int64(i+1) {
			t.Fatalf("%s: recovered log not dense: position %d holds version %d", name, i, rec.Version)
		}
		checkRecord(t, name, rec)
	}
	if len(recs) < st.acked {
		t.Fatalf("%s: lost acked commits: recovered %d, acked %d", name, len(recs), st.acked)
	}
	if len(recs) > st.acked+1 {
		t.Fatalf("%s: phantom commits: recovered %d, acked %d with at most one in flight", name, len(recs), st.acked)
	}

	// The deposed leader can never ack again: fencing turns its next
	// certification into a structured redirect. Only meaningful when
	// the crash actually fired — without one this run models killing a
	// healthy leader outright (process gone), and the pre-restart
	// objects no longer exist.
	if st.alive && cfs0.Crashed() {
		_, err := st.cert.Certify(0, txnWS(99))
		var nle certifier.NotLeaderError
		if err == nil {
			t.Fatalf("%s: deposed leader acked a commit", name)
		}
		if errors.As(err, &nle) {
			if nle.Leader != 2 {
				t.Fatalf("%s: redirect points at node %d, want 2", name, nle.Leader)
			}
			if nle.Epoch.Less(epoch) {
				t.Fatalf("%s: redirect epoch %s below winner %s", name, nle.Epoch, epoch)
			}
		}
		// A dead disk may surface as a replication failure instead of a
		// deposal — also not an ack, also safe.
	}

	// The old leader's journal, replayed after the crash, must agree
	// with the quorum log: every committed record it kept is the same
	// transaction the new leader recovered.
	if _, rec, err := wal.Open(wal.Options{FS: fs0, Fsync: fsync}); err == nil {
		for _, r := range rec.Records {
			checkRecord(t, name+"/journal", r)
			if r.Version > int64(len(recs)) {
				t.Fatalf("%s: journal holds version %d beyond the quorum log (%d)", name, r.Version, len(recs))
			}
		}
	}

	// The cluster resumes committing on the new leader, and versions
	// continue the dense prefix.
	base := newCert.Version()
	out, err := newCert.Certify(base, txnWS(int(base)))
	if err != nil || !out.Committed {
		t.Fatalf("%s: new leader cannot commit: %+v %v", name, out, err)
	}
	if out.Version != base+1 {
		t.Fatalf("%s: resumed version %d, want %d", name, out.Version, base+1)
	}
}

// TestFailoverEpochsMonotonic chains three elections and asserts each
// epoch strictly outbids the last — "exactly one leader per epoch" is
// structural (the ballot embeds the proposer id) and this pins the
// monotonic half.
func TestFailoverEpochsMonotonic(t *testing.T) {
	var accs []*paxos.Acceptor
	for i := 0; i < 3; i++ {
		a, _, err := openNode(i, wal.NewMemFS(), true)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	tr := paxos.NewLocalTransport(accs...)
	peers := []int{0, 1, 2}

	prev := paxos.Ballot{}
	leaders := []int{0, 1, 2, 0}
	var lastCert *certifier.Certifier
	version := int64(0)
	for round, id := range leaders {
		c, epoch, err := certifier.Promote(id, peers, tr)
		if err != nil {
			t.Fatalf("round %d: promote %d: %v", round, id, err)
		}
		if !prev.Less(epoch) {
			t.Fatalf("round %d: epoch %s does not outbid %s", round, epoch, prev)
		}
		if epoch.Proposer != id {
			t.Fatalf("round %d: epoch %s not owned by %d", round, epoch, id)
		}
		prev = epoch
		if c.Version() != version {
			t.Fatalf("round %d: recovered version %d, want %d", round, c.Version(), version)
		}
		out, err := c.Certify(c.Version(), txnWS(int(version)))
		if err != nil || !out.Committed {
			t.Fatalf("round %d: leader %d cannot commit: %v", round, id, err)
		}
		version = out.Version
		if lastCert != nil {
			if _, err := lastCert.Certify(0, txnWS(500+round)); err == nil {
				t.Fatalf("round %d: previous leader still acks", round)
			}
		}
		lastCert = c
	}
}
