package paxoslog

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/paxos"
	"repro/internal/wal"
)

func ballot(round, proposer int) paxos.Ballot {
	return paxos.Ballot{Round: round, Proposer: proposer}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	s, promised, slots, err := Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if promised != (paxos.Ballot{}) || len(slots) != 0 {
		t.Fatalf("fresh store not empty: %s %v", promised, slots)
	}
	if err := s.SavePromise(ballot(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAccept(0, ballot(2, 1), "v0"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAccept(1, ballot(2, 1), "v1"); err != nil {
		t.Fatal(err)
	}
	// A newer vote for slot 0 supersedes the older one.
	if err := s.SaveAccept(0, ballot(3, 2), "v0'"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, promised, slots, err = Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if promised != ballot(3, 2) {
		t.Fatalf("promised = %s, want 3.2 (accept implies promise)", promised)
	}
	if got := slots[0]; got.Ballot != ballot(3, 2) || got.Value != "v0'" {
		t.Fatalf("slot 0 = %+v, want newest vote", got)
	}
	if got := slots[1]; got.Ballot != ballot(2, 1) || got.Value != "v1" {
		t.Fatalf("slot 1 = %+v", got)
	}
}

func TestStoreClosedRefusesSaves(t *testing.T) {
	fs := wal.NewMemFS()
	s, _, _, err := Open(fs, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.SavePromise(ballot(1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("save on closed store: %v", err)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	fs := wal.NewMemFS()
	s, _, _, err := Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAccept(0, ballot(1, 0), "kept"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail: append half a frame, as a crash mid-write would.
	data, err := fs.ReadFile(FileName)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenAppend(FileName, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 9, 0xde, 0xad})
	f.Close()

	s2, promised, slots, err := Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if promised != ballot(1, 0) || slots[0].Value != "kept" {
		t.Fatalf("torn tail corrupted the prefix: %s %v", promised, slots)
	}
	// The tail was cut; new saves land cleanly after it.
	if err := s2.SaveAccept(1, ballot(2, 1), "after"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, promised, slots, err = Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if promised != ballot(2, 1) || slots[1].Value != "after" {
		t.Fatalf("post-truncation save lost: %s %v", promised, slots)
	}
}

func TestStoreCorruptMiddleStopsReplay(t *testing.T) {
	fs := wal.NewMemFS()
	s, _, _, err := Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	s.SaveAccept(0, ballot(1, 0), "first")
	s.SaveAccept(1, ballot(1, 0), "second")
	s.Close()

	data, err := fs.ReadFile(FileName)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0xff // flip a bit inside the first payload
	f, err := fs.Create(FileName)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()

	_, promised, slots, err := Open(fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 0 || promised != (paxos.Ballot{}) {
		t.Fatalf("replay continued past corruption: %s %v", promised, slots)
	}
}

// TestStorePersistBeforeReply sweeps a crash over every filesystem op
// of a fixed save script and asserts the acceptor contract: a save
// that returned nil must be fully restored after the crash, under both
// power-loss (fsync on) and process-kill semantics.
func TestStorePersistBeforeReply(t *testing.T) {
	type model struct {
		name         string
		fsync        bool
		keepUnsynced bool
	}
	models := []model{
		{"power-loss", true, false},
		{"process-kill", false, true},
	}
	script := func(s *Store) []error {
		return []error{
			s.SavePromise(ballot(1, 0)),
			s.SaveAccept(0, ballot(1, 0), "a"),
			s.SaveAccept(1, ballot(1, 0), "b"),
			s.SavePromise(ballot(2, 1)),
			s.SaveAccept(1, ballot(2, 1), "b'"),
		}
	}
	// Dry run to size the op trace.
	mem := wal.NewMemFS()
	dry := wal.NewCrashFS(mem, -1, 0)
	s, _, _, err := Open(dry, true)
	if err != nil {
		t.Fatal(err)
	}
	script(s)
	s.Close()
	ops := len(dry.Trace())
	if ops < 5 {
		t.Fatalf("trace unexpectedly short: %d ops", ops)
	}

	for _, m := range models {
		for armAt := 0; armAt < ops; armAt++ {
			for _, cut := range []int{0, 5} {
				name := fmt.Sprintf("%s/arm=%d/cut=%d", m.name, armAt, cut)
				mem := wal.NewMemFS()
				cfs := wal.NewCrashFS(mem, armAt, cut)
				s, _, _, err := Open(cfs, m.fsync)
				if err != nil {
					continue // crashed during open: nothing acked
				}
				errs := script(s)

				mem.PowerCycle(m.keepUnsynced)
				_, promised, slots, err := Open(mem, m.fsync)
				if err != nil {
					t.Fatalf("%s: reopen: %v", name, err)
				}
				// Every save that returned nil must be visible.
				wantPromise := paxos.Ballot{}
				wantSlots := map[int]paxos.AcceptedSlot{}
				note := func(b paxos.Ballot, slot int, v paxos.Value, vote bool) {
					if wantPromise.Less(b) {
						wantPromise = b
					}
					if vote {
						wantSlots[slot] = paxos.AcceptedSlot{Ballot: b, Value: v}
					}
				}
				if errs[0] == nil {
					note(ballot(1, 0), 0, "", false)
				}
				if errs[1] == nil {
					note(ballot(1, 0), 0, "a", true)
				}
				if errs[2] == nil {
					note(ballot(1, 0), 1, "b", true)
				}
				if errs[3] == nil {
					note(ballot(2, 1), 0, "", false)
				}
				if errs[4] == nil {
					note(ballot(2, 1), 1, "b'", true)
				}
				if promised.Less(wantPromise) {
					t.Fatalf("%s: acked promise lost: restored %s, want >= %s", name, promised, wantPromise)
				}
				for slot, want := range wantSlots {
					got, ok := slots[slot]
					if !ok || got.Ballot.Less(want.Ballot) {
						t.Fatalf("%s: acked vote lost for slot %d: got %+v, want %+v", name, slot, got, want)
					}
					if got.Ballot == want.Ballot && got.Value != want.Value {
						t.Fatalf("%s: slot %d value changed: %q vs %q", name, slot, got.Value, want.Value)
					}
				}
			}
		}
	}
}
