// Package trace implements transaction-log capture and replay, the
// workload-characterization front end of §4.1.1: the paper captures
// the standalone database's statement log (full SQL text, a session
// identifier, a start timestamp — e.g. PostgreSQL's log_statement
// facilities) plus trigger-extracted writesets, and plays it back to
// measure service demands.
//
// This package defines an equivalent log format, a generator that
// synthesizes a log from a workload catalog (standing in for capture
// on a production system), a text codec, counting utilities (Pr, Pw,
// abort rate) and a replayer that executes the log against a
// standalone sidb instance.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sidb"
	"repro/internal/stats"
	"repro/internal/workload"
)

// OpKind is the kind of logged statement.
type OpKind int

const (
	// OpBegin starts a transaction.
	OpBegin OpKind = iota
	// OpSelect reads one row.
	OpSelect
	// OpUpdate writes one row.
	OpUpdate
	// OpDelete removes one row.
	OpDelete
	// OpCommit ends a transaction successfully.
	OpCommit
	// OpAbort records a client- or conflict-initiated rollback.
	OpAbort
)

// String returns the SQL-ish verb.
func (k OpKind) String() string {
	switch k {
	case OpBegin:
		return "BEGIN"
	case OpSelect:
		return "SELECT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ROLLBACK"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Entry is one logged statement.
type Entry struct {
	Timestamp float64 // seconds since trace start
	Session   int     // client/session identifier
	Kind      OpKind
	Table     string // SELECT/UPDATE/DELETE only
	Row       int64  // SELECT/UPDATE/DELETE only
	Value     string // UPDATE only (the after-image the trigger caught)
}

// Statement renders the entry the way a database log would show it.
func (e Entry) Statement() string {
	switch e.Kind {
	case OpSelect:
		return fmt.Sprintf("SELECT * FROM %s WHERE id = %d", e.Table, e.Row)
	case OpUpdate:
		return fmt.Sprintf("UPDATE %s SET val = '%s' WHERE id = %d", e.Table, e.Value, e.Row)
	case OpDelete:
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", e.Table, e.Row)
	default:
		return e.Kind.String()
	}
}

// Trace is a captured transaction log.
type Trace struct {
	Entries []Entry
}

// Counts summarizes a trace the way §4.1.1 counts the log.
type Counts struct {
	ReadOnlyTxns int
	UpdateTxns   int
	AbortedTxns  int
	Statements   int
}

// Pr returns the read-only fraction among committed transactions.
func (c Counts) Pr() float64 {
	total := c.ReadOnlyTxns + c.UpdateTxns
	if total == 0 {
		return 0
	}
	return float64(c.ReadOnlyTxns) / float64(total)
}

// Pw returns the update fraction among committed transactions.
func (c Counts) Pw() float64 {
	total := c.ReadOnlyTxns + c.UpdateTxns
	if total == 0 {
		return 0
	}
	return float64(c.UpdateTxns) / float64(total)
}

// A1 returns the measured abort probability: aborts over update
// attempts (update commits + aborts).
func (c Counts) A1() float64 {
	attempts := c.UpdateTxns + c.AbortedTxns
	if attempts == 0 {
		return 0
	}
	return float64(c.AbortedTxns) / float64(attempts)
}

// Count tallies transactions per §4.1.1: a transaction is an update
// transaction if it performed any UPDATE/DELETE before its COMMIT.
func (t Trace) Count() Counts {
	var c Counts
	type state struct{ wrote bool }
	sessions := map[int]*state{}
	for _, e := range t.Entries {
		c.Statements++
		s := sessions[e.Session]
		if s == nil {
			s = &state{}
			sessions[e.Session] = s
		}
		switch e.Kind {
		case OpBegin:
			s.wrote = false
		case OpUpdate, OpDelete:
			s.wrote = true
		case OpCommit:
			if s.wrote {
				c.UpdateTxns++
			} else {
				c.ReadOnlyTxns++
			}
			s.wrote = false
		case OpAbort:
			c.AbortedTxns++
			s.wrote = false
		}
	}
	return c
}

// Generate synthesizes a trace of txns transactions drawn from the
// catalog at the mix's fractions across the given number of client
// sessions, with exponential think times setting the timestamps. It
// stands in for capturing a live standalone system's log.
func Generate(cat workload.Catalog, mix workload.Mix, sessions, txns int, seed uint64) Trace {
	rng := stats.NewRand(seed)
	clock := make([]float64, sessions)
	var tr Trace
	for i := 0; i < txns; i++ {
		sess := i % sessions
		clock[sess] += rng.Exp(mix.Think)
		tpl := cat.Pick(mix, rng)
		rows := cat.Tables[tpl.Table]
		emit := func(kind OpKind, row int64, value string) {
			tr.Entries = append(tr.Entries, Entry{
				Timestamp: clock[sess],
				Session:   sess,
				Kind:      kind,
				Table:     tpl.Table,
				Row:       row,
				Value:     value,
			})
			clock[sess] += 0.001 // statement pacing within the txn
		}
		tr.Entries = append(tr.Entries, Entry{Timestamp: clock[sess], Session: sess, Kind: OpBegin})
		for r := 0; r < tpl.ReadRows; r++ {
			emit(OpSelect, int64(rng.Intn(rows)), "")
		}
		for w := 0; w < tpl.Writes; w++ {
			emit(OpUpdate, int64(rng.Intn(rows)), fmt.Sprintf("%s-%d", tpl.Name, i))
		}
		tr.Entries = append(tr.Entries, Entry{Timestamp: clock[sess], Session: sess, Kind: OpCommit})
	}
	return tr
}

// Encode writes the trace in the text log format, one line per
// statement: "<ts> <session> <statement>".
func Encode(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(bw, "%.6f %d %s\n", e.Timestamp, e.Session, e.Statement()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text log format back into a Trace.
func Decode(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Entries = append(t.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// parseLine parses one "<ts> <session> <statement>" line.
func parseLine(line string) (Entry, error) {
	fields := strings.SplitN(line, " ", 3)
	if len(fields) != 3 {
		return Entry{}, fmt.Errorf("malformed line %q", line)
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad timestamp: %w", err)
	}
	sess, err := strconv.Atoi(fields[1])
	if err != nil {
		return Entry{}, fmt.Errorf("bad session: %w", err)
	}
	e := Entry{Timestamp: ts, Session: sess}
	stmt := fields[2]
	switch {
	case stmt == "BEGIN":
		e.Kind = OpBegin
	case stmt == "COMMIT":
		e.Kind = OpCommit
	case stmt == "ROLLBACK":
		e.Kind = OpAbort
	case strings.HasPrefix(stmt, "SELECT * FROM "):
		e.Kind = OpSelect
		if _, err := fmt.Sscanf(stmt, "SELECT * FROM %s WHERE id = %d", &e.Table, &e.Row); err != nil {
			return Entry{}, fmt.Errorf("bad SELECT %q: %w", stmt, err)
		}
	case strings.HasPrefix(stmt, "DELETE FROM "):
		e.Kind = OpDelete
		if _, err := fmt.Sscanf(stmt, "DELETE FROM %s WHERE id = %d", &e.Table, &e.Row); err != nil {
			return Entry{}, fmt.Errorf("bad DELETE %q: %w", stmt, err)
		}
	case strings.HasPrefix(stmt, "UPDATE "):
		e.Kind = OpUpdate
		rest := strings.TrimPrefix(stmt, "UPDATE ")
		sp := strings.Index(rest, " SET val = '")
		if sp < 0 {
			return Entry{}, fmt.Errorf("bad UPDATE %q", stmt)
		}
		e.Table = rest[:sp]
		rest = rest[sp+len(" SET val = '"):]
		end := strings.LastIndex(rest, "' WHERE id = ")
		if end < 0 {
			return Entry{}, fmt.Errorf("bad UPDATE %q", stmt)
		}
		e.Value = rest[:end]
		row, err := strconv.ParseInt(rest[end+len("' WHERE id = "):], 10, 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad UPDATE row: %w", err)
		}
		e.Row = row
	default:
		return Entry{}, fmt.Errorf("unknown statement %q", stmt)
	}
	return e, nil
}

// ReplayResult reports a replay against a standalone database.
type ReplayResult struct {
	Committed int
	Aborted   int // write-write conflicts during replay
	Writesets int // writesets extracted (committed update txns)
}

// Replay executes the trace against db in log order, maintaining one
// open transaction per session. Conflicting transactions abort and are
// counted (they are not retried: a replay reproduces the log, it does
// not drive load). Tables referenced by the trace must exist.
func Replay(db *sidb.DB, t Trace) (ReplayResult, error) {
	var res ReplayResult
	open := map[int]*sidb.Txn{}
	for _, e := range t.Entries {
		tx := open[e.Session]
		switch e.Kind {
		case OpBegin:
			if tx != nil {
				tx.Abort()
			}
			open[e.Session] = db.Begin()
		case OpSelect:
			if tx == nil {
				continue
			}
			if _, _, err := tx.Read(e.Table, e.Row); err != nil {
				return res, err
			}
		case OpUpdate:
			if tx == nil {
				continue
			}
			if err := tx.Write(e.Table, e.Row, e.Value); err != nil {
				return res, err
			}
		case OpDelete:
			if tx == nil {
				continue
			}
			if err := tx.Delete(e.Table, e.Row); err != nil {
				return res, err
			}
		case OpCommit:
			if tx == nil {
				continue
			}
			ws, _, err := tx.Commit()
			switch {
			case err == nil:
				res.Committed++
				if !ws.Empty() {
					res.Writesets++
				}
			case isConflict(err):
				res.Aborted++
			default:
				return res, err
			}
			delete(open, e.Session)
		case OpAbort:
			if tx != nil {
				tx.Abort()
				res.Aborted++
				delete(open, e.Session)
			}
		}
	}
	for _, tx := range open {
		tx.Abort()
	}
	return res, nil
}

func isConflict(err error) bool {
	for err != nil {
		if err == sidb.ErrConflict {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
