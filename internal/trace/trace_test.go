package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sidb"
	"repro/internal/workload"
)

func TestGenerateCountsMatchMix(t *testing.T) {
	cat := workload.TPCWCatalog()
	mix := workload.TPCWShopping()
	tr := Generate(cat, mix, 10, 5000, 1)
	c := tr.Count()
	if c.ReadOnlyTxns+c.UpdateTxns != 5000 {
		t.Fatalf("committed txns = %d", c.ReadOnlyTxns+c.UpdateTxns)
	}
	if math.Abs(c.Pw()-mix.Pw) > 0.02 {
		t.Fatalf("Pw from log = %.3f, want about %.2f", c.Pw(), mix.Pw)
	}
	if math.Abs(c.Pr()+c.Pw()-1) > 1e-9 {
		t.Fatalf("Pr+Pw = %v", c.Pr()+c.Pw())
	}
	if c.A1() != 0 {
		t.Fatalf("generated trace has aborts: %v", c.A1())
	}
}

func TestGenerateTimestampsMonotonicPerSession(t *testing.T) {
	tr := Generate(workload.RUBiSCatalog(), workload.RUBiSBidding(), 5, 500, 2)
	last := map[int]float64{}
	for _, e := range tr.Entries {
		if e.Timestamp < last[e.Session] {
			t.Fatalf("session %d time went backwards: %v -> %v", e.Session, last[e.Session], e.Timestamp)
		}
		last[e.Session] = e.Timestamp
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cat := workload.TPCWCatalog()
	tr := Generate(cat, workload.TPCWOrdering(), 4, 200, 3)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(tr.Entries) {
		t.Fatalf("entries %d != %d", len(back.Entries), len(tr.Entries))
	}
	for i := range tr.Entries {
		a, b := tr.Entries[i], back.Entries[i]
		if a.Session != b.Session || a.Kind != b.Kind || a.Table != b.Table || a.Row != b.Row || a.Value != b.Value {
			t.Fatalf("entry %d: %+v != %+v", i, a, b)
		}
		if math.Abs(a.Timestamp-b.Timestamp) > 1e-5 {
			t.Fatalf("entry %d: timestamp %v != %v", i, a.Timestamp, b.Timestamp)
		}
	}
}

func TestDecodeSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n0.5 1 BEGIN\n0.6 1 COMMIT\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("entries = %d", len(tr.Entries))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"bad",
		"x 1 BEGIN",
		"0.5 y BEGIN",
		"0.5 1 FROB item 3",
		"0.5 1 UPDATE item WHERE id = 3",
	} {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestStatementRendering(t *testing.T) {
	e := Entry{Kind: OpUpdate, Table: "item", Row: 3, Value: "x'y"}
	s := e.Statement()
	if !strings.Contains(s, "UPDATE item SET") {
		t.Fatalf("statement = %q", s)
	}
	if (Entry{Kind: OpBegin}).Statement() != "BEGIN" {
		t.Fatal("BEGIN rendering")
	}
	if (Entry{Kind: OpAbort}).Statement() != "ROLLBACK" {
		t.Fatal("ROLLBACK rendering")
	}
}

func TestOpKindString(t *testing.T) {
	if OpSelect.String() != "SELECT" || OpKind(99).String() != "OpKind(99)" {
		t.Fatal("OpKind strings")
	}
}

func TestReplayAppliesWrites(t *testing.T) {
	db := sidb.New()
	for _, tb := range []string{"item"} {
		if err := db.CreateTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	tr := Trace{Entries: []Entry{
		{Session: 1, Kind: OpBegin},
		{Session: 1, Kind: OpUpdate, Table: "item", Row: 1, Value: "hello"},
		{Session: 1, Kind: OpCommit},
		{Session: 2, Kind: OpBegin},
		{Session: 2, Kind: OpSelect, Table: "item", Row: 1},
		{Session: 2, Kind: OpCommit},
	}}
	res, err := Replay(db, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 || res.Writesets != 1 || res.Aborted != 0 {
		t.Fatalf("replay = %+v", res)
	}
	tx := db.Begin()
	v, ok, _ := tx.Read("item", 1)
	tx.Abort()
	if !ok || v != "hello" {
		t.Fatalf("replayed value = %q %v", v, ok)
	}
}

func TestReplayInterleavedConflict(t *testing.T) {
	db := sidb.New()
	db.CreateTable("item")
	seed := db.Begin()
	seed.Write("item", 1, "v0")
	if _, _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	// Two sessions write the same row concurrently; the later commit
	// must abort.
	tr := Trace{Entries: []Entry{
		{Session: 1, Kind: OpBegin},
		{Session: 2, Kind: OpBegin},
		{Session: 1, Kind: OpUpdate, Table: "item", Row: 1, Value: "a"},
		{Session: 2, Kind: OpUpdate, Table: "item", Row: 1, Value: "b"},
		{Session: 1, Kind: OpCommit},
		{Session: 2, Kind: OpCommit},
	}}
	res, err := Replay(db, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1 || res.Aborted != 1 {
		t.Fatalf("replay = %+v", res)
	}
}

func TestReplayExplicitRollback(t *testing.T) {
	db := sidb.New()
	db.CreateTable("item")
	tr := Trace{Entries: []Entry{
		{Session: 1, Kind: OpBegin},
		{Session: 1, Kind: OpUpdate, Table: "item", Row: 1, Value: "x"},
		{Session: 1, Kind: OpAbort},
	}}
	res, err := Replay(db, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 1 || res.Committed != 0 {
		t.Fatalf("replay = %+v", res)
	}
	tx := db.Begin()
	if _, ok, _ := tx.Read("item", 1); ok {
		t.Fatal("rolled-back write visible")
	}
	tx.Abort()
}

func TestReplayGeneratedTraceEndToEnd(t *testing.T) {
	cat := workload.TPCWCatalog()
	mix := workload.TPCWShopping()
	db := sidb.New()
	for name := range cat.Tables {
		if err := db.CreateTable(name); err != nil {
			t.Fatal(err)
		}
	}
	tr := Generate(cat, mix, 8, 1000, 11)
	res, err := Replay(db, tr)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.Count()
	if res.Committed+res.Aborted != counts.ReadOnlyTxns+counts.UpdateTxns {
		t.Fatalf("replay %d+%d vs trace %d", res.Committed, res.Aborted,
			counts.ReadOnlyTxns+counts.UpdateTxns)
	}
	if res.Writesets == 0 {
		t.Fatal("no writesets extracted")
	}
}
