package mva

import "math"

// SolveSchweitzer runs the Bard-Schweitzer approximate MVA for a
// single-class network.
//
// The approximation replaces the exact recursion's Q_m(n-1) with the
// scaled estimate Q_m(n)*(n-1)/n and iterates to a fixed point. It
// runs in O(iterations * centers) independent of population, which
// makes it attractive for very large client counts; the repository
// uses it as an ablation baseline against the exact solver (see
// BenchmarkAblationMVASolver).
//
// tol is the convergence threshold on the queue-length vector;
// non-positive tol defaults to 1e-10. The solver caps iterations at
// 100000 to guarantee termination.
func SolveSchweitzer(centers []Center, demands []float64, think float64, clients int, tol float64) Solution {
	m := len(centers)
	if m == 0 {
		panic("mva: network needs at least one center")
	}
	if len(demands) != m {
		panic("mva: demand/center length mismatch")
	}
	if clients < 0 {
		panic("mva: negative population")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	sol := Solution{
		Clients:     clients,
		Residence:   make([]float64, m),
		Queue:       make([]float64, m),
		Utilization: make([]float64, m),
	}
	if clients == 0 {
		return sol
	}

	n := float64(clients)
	q := make([]float64, m)
	// Start from an even split of the population over queueing centers.
	nq := 0
	for _, c := range centers {
		if c.Kind == Queueing {
			nq++
		}
	}
	for k, c := range centers {
		if c.Kind == Queueing && nq > 0 {
			q[k] = n / float64(nq)
		}
	}

	res := make([]float64, m)
	var x float64
	for iter := 0; iter < 100000; iter++ {
		var total float64
		for k, c := range centers {
			if c.Kind == Delay {
				res[k] = demands[k]
			} else {
				res[k] = demands[k] * (1 + q[k]*(n-1)/n)
			}
			total += res[k]
		}
		denom := think + total
		if denom <= 0 {
			x = 0
			break
		}
		x = n / denom
		var maxDelta float64
		for k := range centers {
			nv := x * res[k]
			if d := math.Abs(nv - q[k]); d > maxDelta {
				maxDelta = d
			}
			q[k] = nv
		}
		if maxDelta < tol {
			break
		}
	}

	sol.Throughput = x
	for k, c := range centers {
		sol.Residence[k] = res[k]
		sol.Queue[k] = q[k]
		sol.Response += res[k]
		if c.Kind == Queueing {
			sol.Utilization[k] = x * demands[k]
		}
	}
	return sol
}
