package mva

import "fmt"

// MultiSolution reports an exact K-class MVA solution.
type MultiSolution struct {
	Population  []int       // solved population per class
	Throughput  []float64   // per-class throughput
	Response    []float64   // per-class total residence time (excludes think)
	Residence   [][]float64 // [class][center] residence time
	Queue       []float64   // per-center total queue length
	Utilization []float64   // per-center utilization summed over classes
}

// SolveMulti runs exact MVA for an arbitrary number of closed classes.
//
// demands[c][m] is class c's service demand at center m; think[c] and
// pop[c] are its think time and population. The exact recursion
// evaluates every population vector dominated by pop, so cost is
// O(len(centers) · K · Π(pop[c]+1)) time and O(M · Π(pop[c]+1))
// memory — exponential in the number of classes. It is exact and
// practical for the small class counts queueing models of database
// replicas need (the repository itself uses one and two classes); use
// SolveTwoClass for the common two-class case, which this function
// generalizes.
func SolveMulti(centers []Center, demands [][]float64, think []float64, pop []int) MultiSolution {
	m := len(centers)
	k := len(pop)
	if m == 0 {
		panic("mva: network needs at least one center")
	}
	if len(demands) != k || len(think) != k {
		panic(fmt.Sprintf("mva: %d classes but %d demand rows, %d think times", k, len(demands), len(think)))
	}
	if k == 0 {
		panic("mva: need at least one class")
	}
	for c := 0; c < k; c++ {
		if len(demands[c]) != m {
			panic(fmt.Sprintf("mva: class %d has %d demands for %d centers", c, len(demands[c]), m))
		}
		if pop[c] < 0 || think[c] < 0 {
			panic("mva: negative population or think time")
		}
		for i, v := range demands[c] {
			if v < 0 {
				panic(fmt.Sprintf("mva: negative demand %v (class %d center %d)", v, c, i))
			}
		}
	}

	// Mixed-radix index over population vectors.
	stride := make([]int, k)
	size := 1
	for c := k - 1; c >= 0; c-- {
		stride[c] = size
		size *= pop[c] + 1
	}
	// queue[idx*m + j] = Q_j at the population vector with index idx.
	queue := make([]float64, size*m)

	res := make([][]float64, k)
	for c := range res {
		res[c] = make([]float64, m)
	}
	x := make([]float64, k)
	vec := make([]int, k)

	// Enumerate population vectors in lexicographic order; every
	// vector's predecessors (one class-c customer removed) have
	// smaller indices, so a single pass suffices.
	for idx := 1; idx < size; idx++ {
		// Decode idx into vec.
		rem := idx
		for c := 0; c < k; c++ {
			vec[c] = rem / stride[c]
			rem %= stride[c]
		}
		for c := 0; c < k; c++ {
			if vec[c] == 0 {
				x[c] = 0
				for j := 0; j < m; j++ {
					res[c][j] = 0
				}
				continue
			}
			prev := queue[(idx-stride[c])*m:]
			var total float64
			for j := 0; j < m; j++ {
				if centers[j].Kind == Delay {
					res[c][j] = demands[c][j]
				} else {
					res[c][j] = demands[c][j] * (1 + prev[j])
				}
				total += res[c][j]
			}
			denom := think[c] + total
			if denom <= 0 {
				x[c] = 0
			} else {
				x[c] = float64(vec[c]) / denom
			}
		}
		cur := queue[idx*m:]
		for j := 0; j < m; j++ {
			var q float64
			for c := 0; c < k; c++ {
				q += x[c] * res[c][j]
			}
			cur[j] = q
		}
	}

	sol := MultiSolution{
		Population:  append([]int(nil), pop...),
		Throughput:  make([]float64, k),
		Response:    make([]float64, k),
		Residence:   make([][]float64, k),
		Queue:       make([]float64, m),
		Utilization: make([]float64, m),
	}
	final := queue[(size-1)*m:]
	for c := 0; c < k; c++ {
		sol.Residence[c] = append([]float64(nil), res[c]...)
		if pop[c] > 0 {
			sol.Throughput[c] = x[c]
			for j := 0; j < m; j++ {
				sol.Response[c] += res[c][j]
			}
		}
	}
	for j := 0; j < m; j++ {
		sol.Queue[j] = final[j]
		if centers[j].Kind == Queueing {
			for c := 0; c < k; c++ {
				sol.Utilization[j] += sol.Throughput[c] * demands[c][j]
			}
		}
	}
	if size == 1 {
		// Zero population everywhere: idle network.
		for j := 0; j < m; j++ {
			sol.Queue[j] = 0
		}
	}
	return sol
}
