package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleCenterNoThink(t *testing.T) {
	// A closed network with one queueing center and no think time has
	// throughput exactly 1/D for any population >= 1.
	centers := []Center{{Name: "cpu", Kind: Queueing}}
	for n := 1; n <= 20; n++ {
		sol := Solve(centers, []float64{0.05}, 0, n)
		if !almost(sol.Throughput, 20, 1e-9) {
			t.Fatalf("n=%d: X = %v, want 20", n, sol.Throughput)
		}
		// All n clients are at the center.
		if !almost(sol.Queue[0], float64(n), 1e-9) {
			t.Fatalf("n=%d: Q = %v, want %d", n, sol.Queue[0], n)
		}
	}
}

func TestDelayOnlyNetwork(t *testing.T) {
	// With only delay, X = n / (Z + D) exactly.
	centers := []Center{{Name: "net", Kind: Delay}}
	sol := Solve(centers, []float64{0.2}, 0.8, 10)
	if !almost(sol.Throughput, 10, 1e-9) {
		t.Fatalf("X = %v, want 10", sol.Throughput)
	}
	if !almost(sol.Response, 0.2, 1e-12) {
		t.Fatalf("R = %v, want 0.2", sol.Response)
	}
}

func TestMachineRepairmanBounds(t *testing.T) {
	// Classic asymptotic bounds: X <= min(n/(Z+D), 1/Dmax).
	centers := []Center{{Name: "cpu", Kind: Queueing}, {Name: "disk", Kind: Queueing}}
	d := []float64{0.040, 0.015}
	const z = 1.0
	for n := 1; n <= 100; n++ {
		sol := Solve(centers, d, z, n)
		bound := math.Min(float64(n)/(z+d[0]+d[1]), 1/d[0])
		if sol.Throughput > bound+1e-9 {
			t.Fatalf("n=%d: X=%v exceeds bound %v", n, sol.Throughput, bound)
		}
		if sol.Throughput <= 0 {
			t.Fatalf("n=%d: non-positive throughput", n)
		}
	}
}

func TestThroughputMonotonicInPopulation(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	d := []float64{0.03, 0.02}
	prev := 0.0
	for n := 1; n <= 200; n++ {
		sol := Solve(centers, d, 0.5, n)
		if sol.Throughput < prev-1e-9 {
			t.Fatalf("throughput decreased at n=%d: %v < %v", n, sol.Throughput, prev)
		}
		prev = sol.Throughput
	}
}

func TestLittlesLawHolds(t *testing.T) {
	// n = X * (Z + R) must hold exactly in MVA.
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}, {Kind: Delay}}
	d := []float64{0.04, 0.015, 0.012}
	const z = 1.0
	for _, n := range []int{1, 5, 30, 120} {
		sol := Solve(centers, d, z, n)
		lhs := float64(n)
		rhs := sol.Throughput * (z + sol.Response)
		if !almost(lhs, rhs, 1e-6*lhs) {
			t.Fatalf("n=%d: Little's law violated: %v vs %v", n, lhs, rhs)
		}
	}
}

func TestUtilizationLaw(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	d := []float64{0.04, 0.01}
	sol := Solve(centers, d, 1.0, 50)
	for m := range centers {
		want := sol.Throughput * d[m]
		if !almost(sol.Utilization[m], want, 1e-12) {
			t.Fatalf("center %d: U=%v want %v", m, sol.Utilization[m], want)
		}
		if sol.Utilization[m] > 1+1e-9 {
			t.Fatalf("center %d: utilization %v exceeds 1", m, sol.Utilization[m])
		}
	}
}

func TestBottleneckSaturation(t *testing.T) {
	// As n grows, X approaches 1/Dmax.
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	d := []float64{0.05, 0.02}
	sol := Solve(centers, d, 1.0, 2000)
	if !almost(sol.Throughput, 1/0.05, 1e-3) {
		t.Fatalf("saturated X = %v, want about 20", sol.Throughput)
	}
	if sol.Utilization[0] < 0.999 {
		t.Fatalf("bottleneck utilization %v, want about 1", sol.Utilization[0])
	}
}

func TestStepwiseMatchesSolve(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}, {Kind: Delay}}
	d := []float64{0.03, 0.01, 0.005}
	s := NewSingleClass(centers, 0.9)
	s.SetDemands(d)
	for i := 0; i < 40; i++ {
		s.Step()
	}
	want := Solve(centers, d, 0.9, 40)
	if !almost(s.Throughput(), want.Throughput, 1e-12) {
		t.Fatalf("stepwise X=%v, Solve X=%v", s.Throughput(), want.Throughput)
	}
	for m := range centers {
		if !almost(s.Queue(m), want.Queue[m], 1e-12) {
			t.Fatalf("center %d queue mismatch", m)
		}
		if !almost(s.Residence(m), want.Residence[m], 1e-12) {
			t.Fatalf("center %d residence mismatch", m)
		}
	}
}

func TestZeroPopulation(t *testing.T) {
	centers := []Center{{Kind: Queueing}}
	sol := Solve(centers, []float64{0.1}, 1, 0)
	if sol.Throughput != 0 || sol.Clients != 0 {
		t.Fatalf("empty network should be idle: %+v", sol)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { Solve(nil, nil, 0, 1) },
		func() { Solve([]Center{{}}, []float64{1, 2}, 0, 1) },
		func() { Solve([]Center{{}}, []float64{-1}, 0, 1) },
		func() { Solve([]Center{{}}, []float64{1}, -1, 1) },
		func() { Solve([]Center{{}}, []float64{1}, 0, -1) },
		func() { NewSingleClass([]Center{{}}, 0).SetDemands([]float64{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTwoClassReducesToSingleClass(t *testing.T) {
	// Two identical classes must behave like one class with the merged
	// population.
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}, {Kind: Delay}}
	d := []float64{0.04, 0.015, 0.01}
	think := 1.0
	for _, split := range [][2]int{{10, 10}, {1, 19}, {20, 0}} {
		two := SolveTwoClass(centers, [2][]float64{d, d}, [2]float64{think, think}, split)
		one := Solve(centers, d, think, split[0]+split[1])
		xTwo := two.Throughput[0] + two.Throughput[1]
		if !almost(xTwo, one.Throughput, 1e-9*one.Throughput) {
			t.Fatalf("split %v: two-class X=%v, single X=%v", split, xTwo, one.Throughput)
		}
	}
}

func TestTwoClassZeroPopulationClass(t *testing.T) {
	centers := []Center{{Kind: Queueing}}
	d0 := []float64{0.05}
	d1 := []float64{0.50}
	sol := SolveTwoClass(centers, [2][]float64{d0, d1}, [2]float64{1, 1}, [2]int{10, 0})
	if sol.Throughput[1] != 0 {
		t.Fatalf("empty class has throughput %v", sol.Throughput[1])
	}
	one := Solve(centers, d0, 1, 10)
	if !almost(sol.Throughput[0], one.Throughput, 1e-9) {
		t.Fatalf("class 0 X=%v, want %v", sol.Throughput[0], one.Throughput)
	}
}

func TestTwoClassLittlesLaw(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	demands := [2][]float64{{0.04, 0.02}, {0.012, 0.008}}
	think := [2]float64{1.0, 1.0}
	pop := [2]int{30, 15}
	sol := SolveTwoClass(centers, demands, think, pop)
	for c := 0; c < 2; c++ {
		lhs := float64(pop[c])
		rhs := sol.Throughput[c] * (think[c] + sol.Response[c])
		if !almost(lhs, rhs, 1e-6*lhs) {
			t.Fatalf("class %d: Little's law violated: %v vs %v", c, lhs, rhs)
		}
	}
}

func TestTwoClassSlowClassSlowsFastClass(t *testing.T) {
	// Adding population to a competing class must not raise the other
	// class's throughput.
	centers := []Center{{Kind: Queueing}}
	demands := [2][]float64{{0.02}, {0.1}}
	base := SolveTwoClass(centers, demands, [2]float64{1, 1}, [2]int{20, 0})
	loaded := SolveTwoClass(centers, demands, [2]float64{1, 1}, [2]int{20, 10})
	if loaded.Throughput[0] > base.Throughput[0]+1e-9 {
		t.Fatalf("competition increased class-0 throughput: %v > %v",
			loaded.Throughput[0], base.Throughput[0])
	}
}

func TestSchweitzerMatchesExactClosely(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	d := []float64{0.04, 0.015}
	for _, n := range []int{1, 10, 50, 200} {
		exact := Solve(centers, d, 1.0, n)
		approx := SolveSchweitzer(centers, d, 1.0, n, 0)
		rel := math.Abs(exact.Throughput-approx.Throughput) / exact.Throughput
		if rel > 0.05 {
			t.Fatalf("n=%d: Schweitzer off by %.1f%% (exact %v approx %v)",
				n, rel*100, exact.Throughput, approx.Throughput)
		}
	}
}

func TestSchweitzerZeroPopulation(t *testing.T) {
	sol := SolveSchweitzer([]Center{{Kind: Queueing}}, []float64{0.1}, 1, 0, 0)
	if sol.Throughput != 0 {
		t.Fatalf("X = %v for empty network", sol.Throughput)
	}
}

func TestKindString(t *testing.T) {
	if Queueing.String() != "queueing" || Delay.String() != "delay" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind: %s", Kind(9))
	}
}

func TestQuickThroughputBounds(t *testing.T) {
	// Property: for random demands and populations, MVA respects the
	// asymptotic bounds and produces non-negative queues.
	f := func(d1, d2, zRaw uint16, nRaw uint8) bool {
		d := []float64{float64(d1%1000+1) / 1e4, float64(d2%1000+1) / 1e4}
		z := float64(zRaw%2000) / 1e3
		n := int(nRaw%100) + 1
		centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
		sol := Solve(centers, d, z, n)
		dmax := math.Max(d[0], d[1])
		bound := math.Min(float64(n)/(z+d[0]+d[1]), 1/dmax)
		if sol.Throughput > bound*(1+1e-9) {
			return false
		}
		for _, q := range sol.Queue {
			if q < 0 {
				return false
			}
		}
		// Population conservation.
		var held float64
		for _, q := range sol.Queue {
			held += q
		}
		held += sol.Throughput * z
		return almost(held, float64(n), 1e-6*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTwoClassConservation(t *testing.T) {
	f := func(a, b uint8, d1, d2 uint16) bool {
		pop := [2]int{int(a % 40), int(b % 40)}
		d := [2][]float64{
			{float64(d1%500+1) / 1e4, 0.01},
			{float64(d2%500+1) / 1e4, 0.02},
		}
		centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
		think := [2]float64{1, 1}
		sol := SolveTwoClass(centers, d, think, pop)
		var held float64
		for _, q := range sol.Queue {
			held += q
		}
		held += sol.Throughput[0]*think[0] + sol.Throughput[1]*think[1]
		want := float64(pop[0] + pop[1])
		return almost(held, want, 1e-6*(want+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
