package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveMultiMatchesSingleClass(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}, {Kind: Delay}}
	d := []float64{0.04, 0.015, 0.01}
	one := Solve(centers, d, 1.0, 35)
	multi := SolveMulti(centers, [][]float64{d}, []float64{1.0}, []int{35})
	if !almost(multi.Throughput[0], one.Throughput, 1e-12) {
		t.Fatalf("K=1: %v vs %v", multi.Throughput[0], one.Throughput)
	}
	for m := range centers {
		if !almost(multi.Queue[m], one.Queue[m], 1e-12) {
			t.Fatalf("K=1 queue at %d: %v vs %v", m, multi.Queue[m], one.Queue[m])
		}
	}
}

func TestSolveMultiMatchesTwoClass(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	demands := [2][]float64{{0.04, 0.02}, {0.012, 0.008}}
	think := [2]float64{1.0, 0.5}
	pop := [2]int{25, 12}
	two := SolveTwoClass(centers, demands, think, pop)
	multi := SolveMulti(centers, [][]float64{demands[0], demands[1]},
		[]float64{think[0], think[1]}, []int{pop[0], pop[1]})
	for c := 0; c < 2; c++ {
		if !almost(multi.Throughput[c], two.Throughput[c], 1e-9) {
			t.Fatalf("class %d: %v vs %v", c, multi.Throughput[c], two.Throughput[c])
		}
		if !almost(multi.Response[c], two.Response[c], 1e-9) {
			t.Fatalf("class %d response: %v vs %v", c, multi.Response[c], two.Response[c])
		}
	}
	for m := range centers {
		if !almost(multi.Utilization[m], two.Utilization[m], 1e-9) {
			t.Fatalf("center %d utilization mismatch", m)
		}
	}
}

func TestSolveMultiThreeIdenticalClassesMerge(t *testing.T) {
	// Three identical classes must behave like one class with the
	// merged population.
	centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
	d := []float64{0.03, 0.01}
	merged := Solve(centers, d, 1.0, 24)
	multi := SolveMulti(centers, [][]float64{d, d, d},
		[]float64{1, 1, 1}, []int{8, 8, 8})
	total := multi.Throughput[0] + multi.Throughput[1] + multi.Throughput[2]
	if !almost(total, merged.Throughput, 1e-9*merged.Throughput) {
		t.Fatalf("3-class merge: %v vs %v", total, merged.Throughput)
	}
}

func TestSolveMultiLittlesLawPerClass(t *testing.T) {
	centers := []Center{{Kind: Queueing}, {Kind: Delay}}
	demands := [][]float64{{0.05, 0.01}, {0.02, 0.005}, {0.01, 0.02}}
	think := []float64{1, 0.8, 1.2}
	pop := []int{6, 9, 4}
	sol := SolveMulti(centers, demands, think, pop)
	for c := range pop {
		lhs := float64(pop[c])
		rhs := sol.Throughput[c] * (think[c] + sol.Response[c])
		if !almost(lhs, rhs, 1e-6*lhs) {
			t.Fatalf("class %d: Little's law %v vs %v", c, lhs, rhs)
		}
	}
}

func TestSolveMultiZeroPopulationClass(t *testing.T) {
	centers := []Center{{Kind: Queueing}}
	sol := SolveMulti(centers, [][]float64{{0.05}, {0.5}},
		[]float64{1, 1}, []int{10, 0})
	if sol.Throughput[1] != 0 || sol.Response[1] != 0 {
		t.Fatalf("empty class active: %+v", sol)
	}
	one := Solve(centers, []float64{0.05}, 1, 10)
	if !almost(sol.Throughput[0], one.Throughput, 1e-9) {
		t.Fatalf("occupied class: %v vs %v", sol.Throughput[0], one.Throughput)
	}
}

func TestSolveMultiAllZero(t *testing.T) {
	sol := SolveMulti([]Center{{Kind: Queueing}}, [][]float64{{0.1}}, []float64{1}, []int{0})
	if sol.Throughput[0] != 0 || sol.Queue[0] != 0 {
		t.Fatalf("idle network: %+v", sol)
	}
}

func TestSolveMultiPanics(t *testing.T) {
	cases := []func(){
		func() { SolveMulti(nil, nil, nil, nil) },
		func() { SolveMulti([]Center{{}}, [][]float64{}, []float64{}, []int{}) },
		func() { SolveMulti([]Center{{}}, [][]float64{{1, 2}}, []float64{1}, []int{1}) },
		func() { SolveMulti([]Center{{}}, [][]float64{{-1}}, []float64{1}, []int{1}) },
		func() { SolveMulti([]Center{{}}, [][]float64{{1}}, []float64{-1}, []int{1}) },
		func() { SolveMulti([]Center{{}}, [][]float64{{1}}, []float64{1}, []int{-1}) },
		func() { SolveMulti([]Center{{}}, [][]float64{{1}}, []float64{1, 2}, []int{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuickMultiMatchesTwoClass(t *testing.T) {
	// Property: for random two-class inputs, the K-class solver and
	// the dedicated two-class solver agree exactly.
	f := func(d1, d2, d3, d4 uint16, p1, p2 uint8) bool {
		centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
		demands := [2][]float64{
			{float64(d1%500+1) / 1e4, float64(d2%500+1) / 1e4},
			{float64(d3%500+1) / 1e4, float64(d4%500+1) / 1e4},
		}
		think := [2]float64{1, 1}
		pop := [2]int{int(p1 % 20), int(p2 % 20)}
		two := SolveTwoClass(centers, demands, think, pop)
		multi := SolveMulti(centers, [][]float64{demands[0], demands[1]},
			[]float64{1, 1}, []int{pop[0], pop[1]})
		for c := 0; c < 2; c++ {
			if math.Abs(two.Throughput[c]-multi.Throughput[c]) > 1e-9*(two.Throughput[c]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMultiPopulationConservation(t *testing.T) {
	f := func(d1, d2, d3 uint16, p1, p2, p3 uint8) bool {
		centers := []Center{{Kind: Queueing}, {Kind: Queueing}}
		demands := [][]float64{
			{float64(d1%300+1) / 1e4, 0.01},
			{float64(d2%300+1) / 1e4, 0.02},
			{float64(d3%300+1) / 1e4, 0.005},
		}
		think := []float64{1, 1, 1}
		pop := []int{int(p1 % 10), int(p2 % 10), int(p3 % 10)}
		sol := SolveMulti(centers, demands, think, pop)
		var held float64
		for _, q := range sol.Queue {
			held += q
		}
		for c := range pop {
			held += sol.Throughput[c] * think[c]
		}
		want := float64(pop[0] + pop[1] + pop[2])
		return math.Abs(held-want) <= 1e-6*(want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
