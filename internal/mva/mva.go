// Package mva solves closed product-form queueing networks with Mean
// Value Analysis (MVA), the algorithm the paper uses to evaluate its
// analytical models (Lazowska et al., "Quantitative System
// Performance", 1984).
//
// The package provides:
//
//   - an exact single-class solver with a stepwise API (one client
//     added per Step), which the multi-master model needs because its
//     service demands change between iterations as the conflict-window
//     estimate is refreshed (§4.1.1 of the paper);
//   - an exact two-class solver, needed by the single-master balancing
//     algorithm (Figure 3) where read-only and update transactions
//     place different demands on the master;
//   - a Bard-Schweitzer approximate solver used as an ablation
//     baseline.
//
// Centers are either queueing centers (a FIFO/PS service station whose
// residence time inflates with queue length) or delay centers (pure
// latency, no queueing). Think time is expressed as a delay center by
// the callers; for convenience the solvers also accept a separate
// think-time term Z as in the textbook formulation.
package mva

import "fmt"

// Kind distinguishes queueing centers from delay centers.
type Kind int

const (
	// Queueing marks a load-dependent service center: residence
	// R = D * (1 + Q).
	Queueing Kind = iota
	// Delay marks a pure delay center: residence R = D regardless of
	// population.
	Delay
)

// String returns a readable center kind.
func (k Kind) String() string {
	switch k {
	case Queueing:
		return "queueing"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Center describes one service center of the network.
type Center struct {
	Name string
	Kind Kind
}

// Solution reports the steady-state metrics of a solved network.
type Solution struct {
	Clients     int       // population the network was solved for
	Throughput  float64   // system throughput X (jobs/unit time)
	Response    float64   // total residence time across centers (excludes think time Z)
	Residence   []float64 // per-center residence time R_m
	Queue       []float64 // per-center mean queue length Q_m
	Utilization []float64 // per-center utilization U_m = X * D_m (queueing centers)
}

// SingleClass is an exact single-class MVA solver with stepwise
// population growth. Demands may be changed between steps, which the
// paper's multi-master model exploits to feed the conflict-window
// estimate from iteration i into the service demands of iteration i+1.
type SingleClass struct {
	centers []Center
	think   float64
	demands []float64
	queue   []float64 // Q_m at current population
	res     []float64 // R_m at current population
	n       int
	x       float64
}

// NewSingleClass creates a solver for the given centers and think time
// Z. Initial demands are zero; call SetDemands before Step.
func NewSingleClass(centers []Center, think float64) *SingleClass {
	if len(centers) == 0 {
		panic("mva: network needs at least one center")
	}
	if think < 0 {
		panic("mva: negative think time")
	}
	return &SingleClass{
		centers: append([]Center(nil), centers...),
		think:   think,
		demands: make([]float64, len(centers)),
		queue:   make([]float64, len(centers)),
		res:     make([]float64, len(centers)),
	}
}

// SetDemands replaces the per-center service demands used by
// subsequent Steps. It panics if the slice length does not match the
// center count or any demand is negative.
func (s *SingleClass) SetDemands(d []float64) {
	if len(d) != len(s.centers) {
		panic(fmt.Sprintf("mva: %d demands for %d centers", len(d), len(s.centers)))
	}
	for i, v := range d {
		if v < 0 {
			panic(fmt.Sprintf("mva: negative demand %v at center %d", v, i))
		}
		s.demands[i] = v
	}
}

// Step adds one client to the network and recomputes the MVA
// recursion for the new population.
func (s *SingleClass) Step() {
	s.n++
	var total float64
	for m, c := range s.centers {
		if c.Kind == Delay {
			s.res[m] = s.demands[m]
		} else {
			s.res[m] = s.demands[m] * (1 + s.queue[m])
		}
		total += s.res[m]
	}
	denom := s.think + total
	if denom <= 0 {
		// All demands and think time are zero: infinite throughput is
		// meaningless; treat as zero-load network.
		s.x = 0
		return
	}
	s.x = float64(s.n) / denom
	for m := range s.centers {
		s.queue[m] = s.x * s.res[m]
	}
}

// N returns the current population.
func (s *SingleClass) N() int { return s.n }

// Throughput returns the system throughput at the current population.
func (s *SingleClass) Throughput() float64 { return s.x }

// Residence returns center m's residence time at the current
// population.
func (s *SingleClass) Residence(m int) float64 { return s.res[m] }

// Queue returns center m's mean queue length at the current
// population.
func (s *SingleClass) Queue(m int) float64 { return s.queue[m] }

// Solution snapshots the solver state.
func (s *SingleClass) Solution() Solution {
	sol := Solution{
		Clients:     s.n,
		Throughput:  s.x,
		Residence:   append([]float64(nil), s.res...),
		Queue:       append([]float64(nil), s.queue...),
		Utilization: make([]float64, len(s.centers)),
	}
	for m := range s.centers {
		sol.Response += s.res[m]
		if s.centers[m].Kind == Queueing {
			sol.Utilization[m] = s.x * s.demands[m]
		}
	}
	return sol
}

// Solve runs exact single-class MVA for a fixed demand vector and
// population, returning the final solution. It is the convenience
// entry point when no per-iteration demand feedback is needed.
func Solve(centers []Center, demands []float64, think float64, clients int) Solution {
	if clients < 0 {
		panic("mva: negative population")
	}
	s := NewSingleClass(centers, think)
	s.SetDemands(demands)
	for i := 0; i < clients; i++ {
		s.Step()
	}
	return s.Solution()
}
