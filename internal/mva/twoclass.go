package mva

import "fmt"

// TwoClassSolution reports per-class and per-center metrics of an
// exact two-class MVA solution.
type TwoClassSolution struct {
	Population  [2]int       // solved population per class
	Throughput  [2]float64   // per-class throughput
	Response    [2]float64   // per-class total residence time (excludes think)
	Residence   [2][]float64 // per-class, per-center residence time
	Queue       []float64    // per-center total queue length
	Utilization []float64    // per-center utilization summed over classes
}

// SolveTwoClass runs exact two-class MVA.
//
// demands[c][m] is class c's service demand at center m, think[c] is
// class c's think time, pop[c] its population. The exact recursion
// evaluates every population vector (i, j) with i <= pop[0],
// j <= pop[1]; time and memory are O(pop[0]*pop[1]*len(centers)),
// which is small for the client counts in the paper (tens to a few
// hundred per class).
func SolveTwoClass(centers []Center, demands [2][]float64, think [2]float64, pop [2]int) TwoClassSolution {
	m := len(centers)
	if m == 0 {
		panic("mva: network needs at least one center")
	}
	for c := 0; c < 2; c++ {
		if len(demands[c]) != m {
			panic(fmt.Sprintf("mva: class %d has %d demands for %d centers", c, len(demands[c]), m))
		}
		if pop[c] < 0 {
			panic("mva: negative population")
		}
		if think[c] < 0 {
			panic("mva: negative think time")
		}
		for i, v := range demands[c] {
			if v < 0 {
				panic(fmt.Sprintf("mva: negative demand %v (class %d center %d)", v, c, i))
			}
		}
	}

	n0, n1 := pop[0], pop[1]
	// queue[idx(i,j)*m + k] = Q_k at population (i, j).
	idx := func(i, j int) int { return i*(n1+1) + j }
	queue := make([]float64, (n0+1)*(n1+1)*m)

	res := [2][]float64{make([]float64, m), make([]float64, m)}
	var x [2]float64

	for i := 0; i <= n0; i++ {
		for j := 0; j <= n1; j++ {
			if i == 0 && j == 0 {
				continue
			}
			np := [2]int{i, j}
			for c := 0; c < 2; c++ {
				if np[c] == 0 {
					x[c] = 0
					for k := 0; k < m; k++ {
						res[c][k] = 0
					}
					continue
				}
				// Population with one class-c customer removed.
				pi, pj := i, j
				if c == 0 {
					pi--
				} else {
					pj--
				}
				prev := queue[idx(pi, pj)*m:]
				var total float64
				for k := 0; k < m; k++ {
					if centers[k].Kind == Delay {
						res[c][k] = demands[c][k]
					} else {
						res[c][k] = demands[c][k] * (1 + prev[k])
					}
					total += res[c][k]
				}
				denom := think[c] + total
				if denom <= 0 {
					x[c] = 0
				} else {
					x[c] = float64(np[c]) / denom
				}
			}
			cur := queue[idx(i, j)*m:]
			for k := 0; k < m; k++ {
				cur[k] = x[0]*res[0][k] + x[1]*res[1][k]
			}
		}
	}

	sol := TwoClassSolution{
		Population:  pop,
		Throughput:  x,
		Queue:       make([]float64, m),
		Utilization: make([]float64, m),
	}
	final := queue[idx(n0, n1)*m:]
	for c := 0; c < 2; c++ {
		sol.Residence[c] = append([]float64(nil), res[c]...)
		for k := 0; k < m; k++ {
			sol.Response[c] += res[c][k]
		}
	}
	for k := 0; k < m; k++ {
		sol.Queue[k] = final[k]
		if centers[k].Kind == Queueing {
			sol.Utilization[k] = x[0]*demands[0][k] + x[1]*demands[1][k]
		}
	}
	// Zero-population classes report zero response.
	for c := 0; c < 2; c++ {
		if pop[c] == 0 {
			sol.Response[c] = 0
			sol.Throughput[c] = 0
		}
	}
	return sol
}
