// Package profiler implements the standalone-profiling methodology of
// §4: estimate every model parameter from measurements of a standalone
// database, without ever deploying the replicated system.
//
// Following §4.1.1, the profiler performs separate calibration runs on
// the standalone system and applies the Utilization Law (service
// demand = utilization / throughput) to each:
//
//  1. play read-only transactions        -> rcCPU, rcDisk
//  2. play update transactions           -> wcCPU, wcDisk
//  3. play writesets in a separate run   -> wsCPU, wsDisk
//  4. replay the full mix                -> L(1), A1, and the mix
//     fractions Pr/Pw from the captured log
//
// The measured parameters feed core.Params, closing the paper's loop:
// profile standalone -> predict replicated.
package profiler

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options tune the calibration runs.
type Options struct {
	// Seed makes profiling deterministic.
	Seed uint64
	// Warmup and Measure are per-run windows in virtual seconds;
	// zero uses the cluster defaults (30 s + 150 s).
	Warmup  float64
	Measure float64
}

// Report carries the raw observations behind a profile.
type Report struct {
	ReadRun    cluster.Result // calibration run 1
	UpdateRun  cluster.Result // calibration run 2
	WritesetRn cluster.Result // calibration run 3
	MixedRun   cluster.Result // calibration run 4

	Measured    workload.Mix // mix with measured demands
	L1          float64
	TraceCounts trace.Counts
}

// Profile measures all model parameters for the mix on the standalone
// simulated database and returns ready-to-use model parameters plus
// the raw report. The input mix supplies the ground-truth behaviour of
// the system being profiled (it plays the role of the real production
// database); the returned Params contain only measured values.
func Profile(truth workload.Mix, opts Options) (core.Params, Report, error) {
	if err := truth.Validate(); err != nil {
		return core.Params{}, Report{}, err
	}
	var rep Report
	measured := truth // copy scaling parameters; demands are replaced below

	// Run 1: read-only transactions -> rc via the Utilization Law.
	readMix := truth
	readMix.Pr, readMix.Pw = 1, 0
	readMix.WC, readMix.WS = workload.Demand{}, workload.Demand{}
	res, err := run(readMix, opts, 1)
	if err != nil {
		return core.Params{}, rep, fmt.Errorf("profiler: read run: %w", err)
	}
	rep.ReadRun = res
	measured.RC = demandsOf(res)

	if truth.Pw > 0 {
		// Run 2: update transactions alone -> wc.
		updMix := truth
		updMix.Pr, updMix.Pw = 0, 1
		updMix.RC, updMix.WS = workload.Demand{}, workload.Demand{}
		res, err = run(updMix, opts, 2)
		if err != nil {
			return core.Params{}, rep, fmt.Errorf("profiler: update run: %w", err)
		}
		rep.UpdateRun = res
		measured.WC = demandsOf(res)

		// Run 3: writesets alone -> ws. Playing a writeset is a
		// read-only job whose demand is the writeset application cost,
		// so model it as a pure stream of ws-costed requests.
		wsMix := truth
		wsMix.Pr, wsMix.Pw = 1, 0
		wsMix.RC = truth.WS
		wsMix.WC, wsMix.WS = workload.Demand{}, workload.Demand{}
		res, err = run(wsMix, opts, 3)
		if err != nil {
			return core.Params{}, rep, fmt.Errorf("profiler: writeset run: %w", err)
		}
		rep.WritesetRn = res
		measured.WS = demandsOf(res)
	} else {
		measured.WC, measured.WS = workload.Demand{}, workload.Demand{}
	}

	// Run 4: the full mix -> L(1) (update response time) and A1.
	res, err = run(truth, opts, 4)
	if err != nil {
		return core.Params{}, rep, fmt.Errorf("profiler: mixed run: %w", err)
	}
	rep.MixedRun = res
	rep.L1 = res.WriteResponse
	if res.UpdateAborts >= 20 {
		// Enough abort observations for a stable estimate.
		measured.A1 = res.AbortRate
	} else {
		// Aborts too rare to observe in the window; keep the derived
		// ground-truth value (the paper likewise reports only an upper
		// bound, "below 0.023%").
		measured.A1 = truth.A1
	}

	// Count the mix fractions from a captured log (§4.1.1).
	if cat, err := workload.CatalogFor(truth); err == nil {
		tr := trace.Generate(cat, truth, truth.Clients, 2000, opts.Seed+99)
		rep.TraceCounts = tr.Count()
		measured.Pr = rep.TraceCounts.Pr()
		measured.Pw = rep.TraceCounts.Pw()
	} else {
		measured.Pr, measured.Pw = truth.Pr, truth.Pw
	}

	rep.Measured = measured
	params := core.Params{
		Mix:       measured,
		L1:        rep.L1,
		LBDelay:   core.DefaultLBDelay,
		CertDelay: core.DefaultCertDelay,
	}
	return params, rep, nil
}

// run executes one standalone calibration run.
func run(m workload.Mix, opts Options, runIdx uint64) (cluster.Result, error) {
	return cluster.Run(cluster.Config{
		Mix:      m,
		Design:   core.Standalone,
		Replicas: 1,
		Seed:     opts.Seed*1315423911 + runIdx,
		Warmup:   opts.Warmup,
		Measure:  opts.Measure,
	})
}

// demandsOf applies the Utilization Law to a single-node run: the
// average service demand at a resource is its utilization divided by
// system throughput.
func demandsOf(res cluster.Result) workload.Demand {
	var d workload.Demand
	if res.Throughput <= 0 || len(res.Nodes) == 0 {
		return d
	}
	d[workload.CPU] = res.Nodes[0].UtilCPU / res.Throughput
	d[workload.Disk] = res.Nodes[0].UtilDisk / res.Throughput
	return d
}
