package profiler

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// recoverTol is the accepted relative error between profiled and
// ground-truth demands; the calibration runs are stochastic.
const recoverTol = 0.08

func demandsClose(t *testing.T, name string, got, want workload.Demand) {
	t.Helper()
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		if want[r] == 0 {
			if got[r] > 1e-6 {
				t.Errorf("%s[%s] = %v, want 0", name, r, got[r])
			}
			continue
		}
		if e := stats.RelativeError(got[r], want[r]); e > recoverTol {
			t.Errorf("%s[%s] = %.4f, truth %.4f (err %.0f%%)", name, r, got[r]*1000, want[r]*1000, e*100)
		}
	}
}

func TestProfileRecoversTable3Shopping(t *testing.T) {
	truth := workload.TPCWShopping()
	params, rep, err := Profile(truth, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	demandsClose(t, "rc", params.Mix.RC, truth.RC)
	demandsClose(t, "wc", params.Mix.WC, truth.WC)
	demandsClose(t, "ws", params.Mix.WS, truth.WS)
	if params.L1 <= 0 {
		t.Fatalf("L1 = %v", params.L1)
	}
	if math.Abs(params.Mix.Pw-truth.Pw) > 0.02 {
		t.Errorf("Pw = %v, truth %v", params.Mix.Pw, truth.Pw)
	}
	if rep.TraceCounts.Statements == 0 {
		t.Error("trace counting did not run")
	}
	if err := params.Validate(); err != nil {
		t.Errorf("profiled params invalid: %v", err)
	}
}

func TestProfileReadOnlyMix(t *testing.T) {
	truth := workload.RUBiSBrowsing()
	params, _, err := Profile(truth, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	demandsClose(t, "rc", params.Mix.RC, truth.RC)
	if params.Mix.WC.Total() != 0 || params.Mix.WS.Total() != 0 {
		t.Error("read-only mix gained update demands")
	}
	if params.Mix.Pw != 0 {
		t.Errorf("Pw = %v", params.Mix.Pw)
	}
}

func TestProfiledParamsPredictLikeTruth(t *testing.T) {
	// The whole point of the paper: predictions from profiled
	// parameters must match predictions from the true parameters.
	truth := workload.TPCWOrdering()
	profiled, _, err := Profile(truth, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's own validation margin is 15%; SM at high replica
	// counts is the most sensitive point (saturated master plus abort
	// feedback), so that is the accuracy bar here too.
	ideal := core.NewParams(truth)
	for _, n := range []int{1, 4, 8, 16} {
		a := core.PredictMM(profiled, n).Throughput
		b := core.PredictMM(ideal, n).Throughput
		if e := stats.RelativeError(a, b); e > 0.15 {
			t.Errorf("MM N=%d: profiled-params prediction %.1f vs ideal %.1f (err %.0f%%)", n, a, b, e*100)
		}
		a = core.PredictSM(profiled, n).Throughput
		b = core.PredictSM(ideal, n).Throughput
		if e := stats.RelativeError(a, b); e > 0.15 {
			t.Errorf("SM N=%d: profiled-params prediction %.1f vs ideal %.1f (err %.0f%%)", n, a, b, e*100)
		}
	}
}

func TestProfileRejectsInvalidMix(t *testing.T) {
	bad := workload.TPCWShopping()
	bad.Clients = 0
	if _, _, err := Profile(bad, Options{}); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestProfileDeterministic(t *testing.T) {
	a, _, err := Profile(workload.TPCWBrowsing(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Profile(workload.TPCWBrowsing(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.L1 != b.L1 || a.Mix.RC != b.Mix.RC {
		t.Fatal("profiling not deterministic for equal seeds")
	}
}

func TestL1MatchesModelEstimate(t *testing.T) {
	truth := workload.TPCWShopping()
	params, _, err := Profile(truth, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	est := core.EstimateL1(core.Params{Mix: truth})
	if e := stats.RelativeError(params.L1, est); e > 0.15 {
		t.Errorf("measured L1 %.1fms vs model estimate %.1fms (err %.0f%%)",
			params.L1*1000, est*1000, e*100)
	}
}
