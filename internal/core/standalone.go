package core

import (
	"repro/internal/mva"
	"repro/internal/workload"
)

// replicaCenters is the queueing network of one database node: a CPU
// and a disk queueing center. Delays (think time, load balancer,
// certifier) are folded into the MVA think term by the callers.
func replicaCenters() []mva.Center {
	return []mva.Center{
		{Name: "cpu", Kind: mva.Queueing},
		{Name: "disk", Kind: mva.Queueing},
	}
}

// standaloneDemands returns the average per-transaction demand vector
// of the standalone database, D(1) = Pr·rc + Pw·wc/(1-A1) (§3.3.1).
func standaloneDemands(m workload.Mix) []float64 {
	return []float64{
		m.StandaloneDemand(workload.CPU),
		m.StandaloneDemand(workload.Disk),
	}
}

// PredictStandalone evaluates the standalone database model (§3.3.1)
// for the mix's client count: a closed network with the database's CPU
// and disk and the clients' think time.
func PredictStandalone(p Params) Prediction {
	m := p.Mix
	sol := mva.Solve(replicaCenters(), standaloneDemands(m), m.Think, m.Clients)
	pred := Prediction{
		Design:     Standalone,
		Replicas:   1,
		Throughput: sol.Throughput,
		AbortRate:  m.A1,
	}
	if sol.Throughput > 0 {
		pred.ResponseTime = float64(m.Clients)/sol.Throughput - m.Think
	}
	pred.ReadThroughput = sol.Throughput * m.Pr
	pred.WriteThroughput = sol.Throughput * m.Pw
	pred.ConflictWindow = updateResidence(m, sol.Queue, 1)
	pred.Replica = RoleMetrics{
		Clients:     m.Clients,
		Throughput:  sol.Throughput,
		UtilCPU:     sol.Utilization[0],
		UtilDisk:    sol.Utilization[1],
		QueueCPU:    sol.Queue[0],
		QueueDisk:   sol.Queue[1],
		DemandCPU:   standaloneDemands(m)[0],
		DemandDisk:  standaloneDemands(m)[1],
		ResidenceMS: sol.Response * 1000,
	}
	return pred
}

// updateResidence computes the residence time of one update
// transaction attempt given the network's queue lengths: the update's
// own demand at each resource inflated by the queues found there,
// divided by the retry factor applied to demands. This is the L(1)
// (standalone) and the CPU+disk part of CW(N) (§4.1.1).
func updateResidence(m workload.Mix, queue []float64, retry float64) float64 {
	if m.Pw == 0 {
		return 0
	}
	if retry <= 0 {
		retry = 1
	}
	r := m.WC[workload.CPU]*(1+queue[0]) + m.WC[workload.Disk]*(1+queue[1])
	return r
}

// EstimateL1 predicts the standalone update-transaction execution time
// L(1) from the mix parameters by solving the standalone model and
// reading off the update class's residence time. Deployments that
// profiled a live system should set Params.L1 from measurement
// instead (§4.1.1); this estimator exists so the models remain usable
// from table parameters alone.
func EstimateL1(p Params) float64 {
	m := p.Mix
	if m.Pw == 0 {
		return 0
	}
	sol := mva.Solve(replicaCenters(), standaloneDemands(m), m.Think, m.Clients)
	return updateResidence(m, sol.Queue, 1/(1-m.A1))
}
