package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// randomMix builds a valid workload mix from fuzz inputs, spanning
// read-only to update-heavy workloads with sane demand magnitudes
// (0.1-100 ms) and small abort rates.
func randomMix(pwRaw, c, rc1, rc2, wc1, wc2, ws1, ws2 uint16) workload.Mix {
	scale := func(v uint16) float64 { return (float64(v%1000) + 1) / 10000 } // 0.1-100ms
	pw := float64(pwRaw%101) / 100
	m := workload.Mix{
		Benchmark: "fuzz", Name: "mix",
		Pr: 1 - pw, Pw: pw,
		Clients: int(c%120) + 1,
		Think:   1.0,
		RC:      workload.Demand{scale(rc1), scale(rc2)},
		A1:      0.0001,
	}
	if pw > 0 {
		m.WC = workload.Demand{scale(wc1), scale(wc2)}
		m.WS = workload.Demand{scale(ws1) / 4, scale(ws2) / 4}
		m.UpdateOps = 3
		m.DBUpdateSize = 100000
	}
	return m
}

func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}

func TestQuickMMPredictionsWellFormed(t *testing.T) {
	f := func(pw, c, a, b, d, e, g, h uint16, nRaw uint8) bool {
		m := randomMix(pw, c, a, b, d, e, g, h)
		if m.Validate() != nil {
			return true // skip (should not happen)
		}
		n := int(nRaw%16) + 1
		p := NewParams(m)
		pred := PredictMM(p, n)
		if !finite(pred.Throughput, pred.ResponseTime, pred.AbortRate, pred.ConflictWindow) {
			return false
		}
		// Abort probability in range, utilizations physical.
		if pred.AbortRate >= 1 || pred.Replica.UtilCPU > 1+1e-9 || pred.Replica.UtilDisk > 1+1e-9 {
			return false
		}
		// Little's law consistency.
		clients := float64(m.Clients * n)
		rt := clients/pred.Throughput - m.Think
		if math.Abs(rt-pred.ResponseTime) > 1e-6*(math.Abs(rt)+1) {
			return false
		}
		// Class split sums to the total.
		return math.Abs(pred.ReadThroughput+pred.WriteThroughput-pred.Throughput) < 1e-9*(pred.Throughput+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSMPredictionsWellFormed(t *testing.T) {
	f := func(pw, c, a, b, d, e, g, h uint16, nRaw uint8) bool {
		m := randomMix(pw, c, a, b, d, e, g, h)
		if m.Validate() != nil {
			return true
		}
		n := int(nRaw%8) + 1 // SM is costlier to solve; keep N modest
		p := NewParams(m)
		pred := PredictSM(p, n)
		if !finite(pred.Throughput, pred.ResponseTime, pred.AbortRate) {
			return false
		}
		if pred.AbortRate >= 1 {
			return false
		}
		return math.Abs(pred.ReadThroughput+pred.WriteThroughput-pred.Throughput) < 1e-6*(pred.Throughput+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMMBoundedByIdealScaling(t *testing.T) {
	// MM throughput can never exceed N times an *ideal* standalone
	// system (no aborts, no middleware delays): replication adds work
	// (writesets, retries, certifier latency), it never removes any.
	// Plain N*standalone is not a valid bound because the MM
	// conflict-window feedback can land A_N slightly below the
	// standalone A_1 at light load.
	f := func(pw, c, a, b, d, e, g, h uint16, nRaw uint8) bool {
		m := randomMix(pw, c, a, b, d, e, g, h)
		if m.Validate() != nil {
			return true
		}
		n := int(nRaw%16) + 1
		p := NewParams(m)
		ideal := m
		ideal.A1 = 0
		sa := PredictStandalone(Params{Mix: ideal}).Throughput
		mm := PredictMM(p, n).Throughput
		return mm <= float64(n)*sa*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSMBoundedByClosedLoopLimit(t *testing.T) {
	// No N-times-standalone bound exists for SM: master/slave
	// specialization can beat a mixed standalone on adversarial demand
	// shapes (each node serves a single class, so it never pays the
	// other class's resource profile). What always holds in a closed
	// loop is X <= total clients / think time: every client completes
	// at most one transaction per think cycle.
	f := func(pw, c, a, b, d, e, g, h uint16, nRaw uint8) bool {
		m := randomMix(pw, c, a, b, d, e, g, h)
		if m.Validate() != nil {
			return true
		}
		n := int(nRaw%8) + 1
		p := NewParams(m)
		sm := PredictSM(p, n).Throughput
		// The integer client split can station up to (n-1)/2 extra
		// clients beyond the nominal population; bound accordingly.
		bound := float64(m.Clients*n+n) / m.Think
		return sm <= bound*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWritesetCostNeverHelps(t *testing.T) {
	// Dropping the propagation cost can only raise MM throughput.
	f := func(pw, c, a, b, d, e, g, h uint16, nRaw uint8) bool {
		m := randomMix(pw, c, a, b, d, e, g, h)
		if m.Validate() != nil {
			return true
		}
		n := int(nRaw%16) + 1
		p := NewParams(m)
		with := PredictMM(p, n).Throughput
		without := PredictMMOpt(p, n, MMOptions{DropWritesets: true}).Throughput
		return without >= with-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAbortMonotoneInConflictWindow(t *testing.T) {
	f := func(a1Raw, cwRaw, l1Raw uint16, nRaw uint8) bool {
		a1 := float64(a1Raw%100) / 10000 // 0-1%
		cw := (float64(cwRaw%1000) + 1) / 1000
		l1 := (float64(l1Raw%1000) + 1) / 1000
		n := int(nRaw%16) + 1
		a := abortFromConflictWindow(a1, cw, l1, n)
		b := abortFromConflictWindow(a1, cw*2, l1, n)
		c := abortFromConflictWindow(a1, cw, l1, n+1)
		if a < 0 || a > maxAbort {
			return false
		}
		return b >= a-1e-15 && c >= a-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMasterSpeedupMonotoneOnBenchmarks(t *testing.T) {
	// A faster master can only help the single-master design. This is
	// checked over the paper's benchmark mixes rather than adversarial
	// fuzz inputs: Figure 3's balancing moves clients in units of N-1,
	// and on degenerate mixes (Pw of a couple percent, a handful of
	// write clients) that coarse step can overshoot the ratio and make
	// the comparison noisy without saying anything about the model.
	for _, m := range workload.All() {
		if m.Pw == 0 {
			continue
		}
		for _, n := range []int{2, 4, 8, 16} {
			p := NewParams(m)
			base := PredictSM(p, n).Throughput
			p.MasterSpeedup = 2
			fast := PredictSM(p, n).Throughput
			if fast < base*0.99 {
				t.Errorf("%s N=%d: 2x master lowered X: %.1f -> %.1f", m.ID(), n, base, fast)
			}
		}
	}
}
