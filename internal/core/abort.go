package core

import "math"

// maxAbort caps predicted abort probabilities: beyond this the model's
// small-abort assumption (§3.4, assumption 4) is thoroughly violated
// and 1/(1-A) would diverge.
const maxAbort = 0.95

// abortFromConflictWindow applies the paper's conflict-window relation
// (§3.3.2):
//
//	(1 - A_N) = (1 - A_1)^(N · CW(N) / L(1))
//
// returning A_N. With no updates, zero A1, or an unmeasurable L(1)
// the abort probability is A1 itself.
func abortFromConflictWindow(a1, cw, l1 float64, n int) float64 {
	if a1 <= 0 || cw <= 0 || l1 <= 0 || n <= 0 {
		return clampAbort(a1)
	}
	exp := float64(n) * cw / l1
	an := 1 - math.Pow(1-a1, exp)
	return clampAbort(an)
}

// clampUtil bounds a utilization to [0, 1].
func clampUtil(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// clampAbort bounds an abort probability to [0, maxAbort].
func clampAbort(a float64) float64 {
	if a < 0 {
		return 0
	}
	if a > maxAbort {
		return maxAbort
	}
	return a
}

// abortFromRates is the rate-ratio form of the conflict-window
// relation used by the single-master model:
//
//	(1 - A') = (1 - A_1)^((CW · W) / (L(1) · W_1))
//
// where W is the actual committed update rate of the replicated system
// and W_1 the standalone rate. The paper's N·CW/L(1) exponent assumes
// the replicated system commits N times the standalone update rate;
// that holds for a scaling multi-master system but overstates
// concurrency once the single master saturates and caps the update
// rate, so the SM model uses the achieved rate directly. The two forms
// coincide whenever throughput actually scales by N.
func abortFromRates(a1, cw, l1, rateRatio float64) float64 {
	if a1 <= 0 || cw <= 0 || l1 <= 0 || rateRatio <= 0 {
		return clampAbort(a1)
	}
	exp := rateRatio * cw / l1
	return clampAbort(1 - math.Pow(1-a1, exp))
}

// AbortProbabilityStandalone derives A1 from first principles
// (§3.3.1): with DbUpdateSize updatable objects, U update operations
// per transaction, W committed update transactions per second and an
// update execution time L(1),
//
//	A_1 = 1 - (1 - p)^(U² · L(1) · W),  p = 1/DbUpdateSize.
//
// The paper measures A1 directly; this derivation is used by the
// synthetic heap-table experiments (Figure 14) to pick table sizes
// that induce target abort rates.
func AbortProbabilityStandalone(dbUpdateSize, updateOps int, l1, updateRate float64) float64 {
	if dbUpdateSize <= 0 || updateOps <= 0 || l1 <= 0 || updateRate <= 0 {
		return 0
	}
	p := 1.0 / float64(dbUpdateSize)
	exp := float64(updateOps*updateOps) * l1 * updateRate
	return clampAbort(1 - math.Pow(1-p, exp))
}

// HeapTableSizeForAbort inverts AbortProbabilityStandalone: it returns
// the heap-table size that yields approximately the target standalone
// abort probability a1 for the given update behaviour. Used to set up
// the Figure 14 experiments.
func HeapTableSizeForAbort(a1 float64, updateOps int, l1, updateRate float64) int {
	if a1 <= 0 || a1 >= 1 || updateOps <= 0 || l1 <= 0 || updateRate <= 0 {
		return 0
	}
	exp := float64(updateOps*updateOps) * l1 * updateRate
	// 1-a1 = (1-p)^exp  =>  p = 1 - (1-a1)^(1/exp)
	p := 1 - math.Pow(1-a1, 1/exp)
	if p <= 0 {
		return 0
	}
	n := int(math.Round(1 / p))
	if n < 1 {
		n = 1
	}
	return n
}
