package core

import (
	"fmt"

	"repro/internal/workload"
)

// AssumptionReport records how a workload sits against the model's
// stated assumptions (§3.4). Violations do not prevent prediction —
// the paper notes the model then tends to predict an upper bound — but
// callers are told which regime they are in.
type AssumptionReport struct {
	// Warnings lists human-readable assumption violations.
	Warnings []string
}

// OK reports whether no assumption was flagged.
func (r AssumptionReport) OK() bool { return len(r.Warnings) == 0 }

// String joins the warnings for display.
func (r AssumptionReport) String() string {
	if r.OK() {
		return "all model assumptions hold"
	}
	s := "model assumption warnings:"
	for _, w := range r.Warnings {
		s += "\n  - " + w
	}
	return s
}

// CheckAssumptions evaluates the §3.4 assumptions that are checkable
// from parameters: small abort probability (assumption 4), a read
// bound suited to e-commerce (assumption 1), and sane service demands.
// The MVA-internal assumptions (exponential demands, perfect load
// balancing) are inherent to the method and not re-checked here.
func CheckAssumptions(p Params, maxReplicas int) AssumptionReport {
	var rep AssumptionReport
	m := p.Mix

	if m.A1 > 0.01 {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"standalone abort rate A1=%.2f%% exceeds 1%%; predictions become upper bounds (§3.4 assumption 4)", m.A1*100))
	}
	if maxReplicas > 1 && m.Pw > 0 {
		pred := PredictMM(p, maxReplicas)
		if pred.AbortRate > 0.10 {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf(
				"predicted abort rate A_%d=%.1f%% exceeds 10%%; abort growth accelerates beyond the model (§6.3.3)", maxReplicas, pred.AbortRate*100))
		}
	}
	if m.Pw > 0.5 {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"update fraction Pw=%.0f%% exceeds 50%%; workload is not read-dominated (§3.4 assumption 1)", m.Pw*100))
	}
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		if m.Pw > 0 && m.WS[r] > m.WC[r] {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf(
				"writeset demand exceeds update demand at %s; check profiling (§4.1.1)", r))
		}
	}
	return rep
}
