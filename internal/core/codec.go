package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// paramsFile is the on-disk JSON schema for Params. Versioned so a
// future format change stays readable.
type paramsFile struct {
	Version int    `json:"version"`
	Params  Params `json:"params"`
}

// currentParamsVersion is the schema version written by WriteParams.
const currentParamsVersion = 1

// WriteParams serializes model parameters as JSON, the hand-off format
// between the profiling step (cmd/profiledb) and the prediction step
// (cmd/predict) — §4 produces a parameter file once, predictions are
// then rerun freely.
func WriteParams(w io.Writer, p Params) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: refusing to write invalid params: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(paramsFile{Version: currentParamsVersion, Params: p})
}

// ReadParams parses parameters written by WriteParams and validates
// them.
func ReadParams(r io.Reader) (Params, error) {
	var f paramsFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Params{}, fmt.Errorf("core: parse params: %w", err)
	}
	if f.Version != currentParamsVersion {
		return Params{}, fmt.Errorf("core: unsupported params version %d", f.Version)
	}
	if err := f.Params.Validate(); err != nil {
		return Params{}, fmt.Errorf("core: invalid params: %w", err)
	}
	return f.Params, nil
}
