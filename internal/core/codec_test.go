package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestParamsRoundTrip(t *testing.T) {
	p := NewParams(workload.TPCWShopping())
	p.MasterSpeedup = 2
	var buf bytes.Buffer
	if err := WriteParams(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mix.ID() != p.Mix.ID() || back.MasterSpeedup != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if math.Abs(back.L1-p.L1) > 1e-12 {
		t.Fatalf("L1 changed: %v vs %v", back.L1, p.L1)
	}
	// Predictions from the round-tripped params are identical.
	a := PredictMM(p, 8)
	b := PredictMM(back, 8)
	if a.Throughput != b.Throughput {
		t.Fatalf("prediction drift: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestWriteParamsRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := NewParams(workload.TPCWShopping())
	bad.L1 = -1
	if err := WriteParams(&buf, bad); err == nil {
		t.Fatal("invalid params written")
	}
}

func TestReadParamsRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99, "params": {}}`,
		`{"version": 1, "params": {"Mix": {"Pr": 2}}}`,
		`{"version": 1, "unknown_field": 1}`,
	}
	for _, in := range cases {
		if _, err := ReadParams(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadParamsValidatesContent(t *testing.T) {
	p := NewParams(workload.RUBiSBrowsing())
	var buf bytes.Buffer
	if err := WriteParams(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Corrupt a field post-hoc.
	s := strings.Replace(buf.String(), `"Clients": 50`, `"Clients": 0`, 1)
	if _, err := ReadParams(strings.NewReader(s)); err == nil {
		t.Fatal("invalid clients accepted")
	}
}
