package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestNewParamsValidates(t *testing.T) {
	for _, m := range workload.All() {
		p := NewParams(m)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", m.ID(), err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := NewParams(workload.TPCWShopping())
	p.L1 = -1
	if p.Validate() == nil {
		t.Error("negative L1 accepted")
	}
	p = NewParams(workload.TPCWShopping())
	p.LBDelay = -0.1
	if p.Validate() == nil {
		t.Error("negative delay accepted")
	}
	p = NewParams(workload.TPCWShopping())
	p.L1 = 0
	if p.Validate() == nil {
		t.Error("missing L1 accepted for update workload")
	}
	p = Params{Mix: workload.Mix{Pr: 2}}
	if p.Validate() == nil {
		t.Error("invalid mix accepted")
	}
}

func TestEstimateL1Positive(t *testing.T) {
	for _, m := range workload.All() {
		p := Params{Mix: m, LBDelay: DefaultLBDelay, CertDelay: DefaultCertDelay}
		l1 := EstimateL1(p)
		if m.Pw == 0 {
			if l1 != 0 {
				t.Errorf("%s: read-only L1 = %v, want 0", m.ID(), l1)
			}
			continue
		}
		if l1 <= 0 {
			t.Errorf("%s: L1 = %v", m.ID(), l1)
		}
		// L1 must at least cover the raw update service demand.
		if l1 < m.WC.Total() {
			t.Errorf("%s: L1=%v below service demand %v", m.ID(), l1, m.WC.Total())
		}
	}
}

func TestStandalonePaperAnchors(t *testing.T) {
	// §6.2.1: the browsing mix starts at 22 tps on one replica, the
	// ordering mix at 45 tps. Allow 10% tolerance on the anchors.
	cases := []struct {
		mix  workload.Mix
		want float64
	}{
		{workload.TPCWBrowsing(), 22},
		{workload.TPCWOrdering(), 45},
	}
	for _, c := range cases {
		got := PredictStandalone(NewParams(c.mix)).Throughput
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("%s standalone X = %.1f tps, paper anchor %v", c.mix.ID(), got, c.want)
		}
	}
}

func TestMMBrowsingNearLinearSpeedup(t *testing.T) {
	// §6.2.1: browsing scales 15.7x at 16 replicas.
	p := NewParams(workload.TPCWBrowsing())
	x1 := PredictMM(p, 1).Throughput
	x16 := PredictMM(p, 16).Throughput
	speedup := x16 / x1
	if speedup < 14.5 || speedup > 16 {
		t.Errorf("browsing MM speedup = %.1f, paper reports 15.7", speedup)
	}
}

func TestMMOrderingModestSpeedup(t *testing.T) {
	// §6.2.1: ordering scales 6.7x at 16 replicas (45 -> 304 tps).
	p := NewParams(workload.TPCWOrdering())
	x1 := PredictMM(p, 1).Throughput
	x16 := PredictMM(p, 16).Throughput
	speedup := x16 / x1
	if speedup < 5.5 || speedup > 8.5 {
		t.Errorf("ordering MM speedup = %.1f, paper reports 6.7", speedup)
	}
	if x1 < 40 || x1 > 50 {
		t.Errorf("ordering MM starts at %.1f tps, paper reports 45", x1)
	}
}

func TestMMThroughputMonotonicForTPCW(t *testing.T) {
	// Within the paper's replica range, MM throughput grows with N for
	// the TPC-W mixes.
	for _, m := range workload.AllTPCW() {
		p := NewParams(m)
		prev := 0.0
		for n := 1; n <= 16; n++ {
			x := PredictMM(p, n).Throughput
			if x < prev {
				t.Errorf("%s: MM throughput dropped at N=%d (%v -> %v)", m.ID(), n, prev, x)
			}
			prev = x
		}
	}
}

func TestMMResponseTimeGrowsWithUpdates(t *testing.T) {
	// Figure 7: browsing response time is nearly flat; ordering rises.
	br := NewParams(workload.TPCWBrowsing())
	ord := NewParams(workload.TPCWOrdering())
	brGrowth := PredictMM(br, 16).ResponseTime / PredictMM(br, 1).ResponseTime
	ordGrowth := PredictMM(ord, 16).ResponseTime / PredictMM(ord, 1).ResponseTime
	if brGrowth > 1.5 {
		t.Errorf("browsing RT grew %.2fx, expected nearly flat", brGrowth)
	}
	if ordGrowth < 3 {
		t.Errorf("ordering RT grew only %.2fx, expected sharp growth", ordGrowth)
	}
}

func TestMMAbortRateGrowsWithReplicas(t *testing.T) {
	p := NewParams(workload.TPCWShopping())
	prev := 0.0
	for n := 1; n <= 16; n++ {
		a := PredictMM(p, n).AbortRate
		if a < prev {
			t.Errorf("abort rate dropped at N=%d: %v -> %v", n, prev, a)
		}
		if a < 0 || a >= 1 {
			t.Errorf("abort rate out of range at N=%d: %v", n, a)
		}
		prev = a
	}
}

func TestMMReadOnlyMixHasNoAbortsOrCertifierCost(t *testing.T) {
	p := NewParams(workload.RUBiSBrowsing())
	for _, n := range []int{1, 4, 16} {
		pred := PredictMM(p, n)
		if pred.AbortRate != 0 || pred.ConflictWindow != 0 {
			t.Errorf("N=%d: read-only mix has abort=%v cw=%v", n, pred.AbortRate, pred.ConflictWindow)
		}
		if pred.WriteThroughput != 0 {
			t.Errorf("N=%d: read-only mix writes %v tps", n, pred.WriteThroughput)
		}
	}
	// Browsing RUBiS is perfectly linear: no writesets at all.
	x1 := PredictMM(p, 1).Throughput
	x16 := PredictMM(p, 16).Throughput
	if math.Abs(x16-16*x1) > 1e-6*x16 {
		t.Errorf("read-only MM not linear: %v vs 16*%v", x16, x1)
	}
}

func TestMMLittlesLaw(t *testing.T) {
	for _, m := range workload.All() {
		p := NewParams(m)
		for _, n := range []int{1, 4, 16} {
			pred := PredictMM(p, n)
			clients := float64(m.Clients * n)
			rt := clients/pred.Throughput - m.Think
			if math.Abs(rt-pred.ResponseTime) > 1e-6*(rt+1) {
				t.Errorf("%s N=%d: RT=%v inconsistent with Little's law %v", m.ID(), n, pred.ResponseTime, rt)
			}
		}
	}
}

func TestMMUtilizationBounds(t *testing.T) {
	for _, m := range workload.All() {
		p := NewParams(m)
		for _, n := range []int{1, 8, 16} {
			pred := PredictMM(p, n)
			for _, u := range []float64{pred.Replica.UtilCPU, pred.Replica.UtilDisk} {
				if u < 0 || u > 1+1e-9 {
					t.Errorf("%s N=%d: utilization %v out of [0,1]", m.ID(), n, u)
				}
			}
		}
	}
}

func TestMMPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PredictMM(p, 0) did not panic")
		}
	}()
	PredictMM(NewParams(workload.TPCWShopping()), 0)
}

func TestMMRangeLengthAndOrder(t *testing.T) {
	p := NewParams(workload.TPCWShopping())
	preds := PredictMMRange(p, 8)
	if len(preds) != 8 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for i, pr := range preds {
		if pr.Replicas != i+1 {
			t.Fatalf("prediction %d has N=%d", i, pr.Replicas)
		}
	}
}

func TestMMAblationFreezeAbort(t *testing.T) {
	// Freezing A_N at A_1 must not lower throughput (less demand
	// inflation) and must keep the abort rate at A_1.
	p := NewParams(workload.TPCWOrdering())
	frozen := PredictMMOpt(p, 16, MMOptions{FreezeAbort: true})
	live := PredictMM(p, 16)
	if frozen.AbortRate != clampAbort(p.Mix.A1) {
		t.Errorf("frozen abort = %v, want A1 = %v", frozen.AbortRate, p.Mix.A1)
	}
	if frozen.Throughput < live.Throughput-1e-9 {
		t.Errorf("freezing aborts reduced throughput: %v < %v", frozen.Throughput, live.Throughput)
	}
}

func TestMMAblationDropWritesets(t *testing.T) {
	// Without the propagation cost, the ordering mix scales much
	// better; this is the term that limits its scalability (§6.2.1).
	p := NewParams(workload.TPCWOrdering())
	with := PredictMM(p, 16)
	without := PredictMMOpt(p, 16, MMOptions{DropWritesets: true})
	if without.Throughput < with.Throughput*1.3 {
		t.Errorf("dropping writesets should help ordering at N=16: %v vs %v",
			without.Throughput, with.Throughput)
	}
}

func TestSMMatchesStandaloneAtOneReplica(t *testing.T) {
	for _, m := range workload.All() {
		p := NewParams(m)
		sm := PredictSM(p, 1)
		sa := PredictStandalone(p)
		if math.Abs(sm.Throughput-sa.Throughput) > 0.05*sa.Throughput {
			t.Errorf("%s: SM(1)=%v, standalone=%v", m.ID(), sm.Throughput, sa.Throughput)
		}
		if sm.Design != SingleMaster {
			t.Errorf("%s: design = %s", m.ID(), sm.Design)
		}
	}
}

func TestSMBrowsingScalesLinearly(t *testing.T) {
	// Figure 8: SM browsing scales linearly; the master's extra
	// capacity absorbs reads.
	p := NewParams(workload.TPCWBrowsing())
	x1 := PredictSM(p, 1).Throughput
	x16 := PredictSM(p, 16).Throughput
	speedup := x16 / x1
	if speedup < 13.5 {
		t.Errorf("SM browsing speedup = %.1f, expected near-linear", speedup)
	}
}

func TestSMOrderingSaturatesEarly(t *testing.T) {
	// Figure 8: with 50% updates the master becomes the bottleneck and
	// the system saturates around 4 replicas.
	p := NewParams(workload.TPCWOrdering())
	x4 := PredictSM(p, 4).Throughput
	x8 := PredictSM(p, 8).Throughput
	x16 := PredictSM(p, 16).Throughput
	if x8 > x4*1.10 {
		t.Errorf("SM ordering did not saturate by 4 replicas: X4=%v X8=%v", x4, x8)
	}
	if x16 > x4*1.10 {
		t.Errorf("SM ordering grew past saturation: X4=%v X16=%v", x4, x16)
	}
	// And it saturates well below the MM system at 16 replicas.
	mm16 := PredictMM(p, 16).Throughput
	if x16 > 0.7*mm16 {
		t.Errorf("SM ordering (%v) should trail MM (%v) at 16 replicas", x16, mm16)
	}
}

func TestSMOrderingResponseTimeRisesSharply(t *testing.T) {
	// Figure 9: ordering response time increases rapidly after 4
	// replicas as clients queue at the master.
	p := NewParams(workload.TPCWOrdering())
	rt4 := PredictSM(p, 4).ResponseTime
	rt16 := PredictSM(p, 16).ResponseTime
	if rt16 < 3*rt4 {
		t.Errorf("SM ordering RT did not blow up: %v -> %v", rt4, rt16)
	}
}

func TestSMQueuedClientsOnlyWhenMasterBottleneck(t *testing.T) {
	ord := PredictSM(NewParams(workload.TPCWOrdering()), 16)
	if ord.QueuedAtMaster == 0 {
		t.Error("ordering at 16 replicas should queue clients at the master")
	}
	if ord.ExtraMasterReadClients != 0 {
		t.Error("ordering at 16 replicas should not offload reads to the master")
	}
	br := PredictSM(NewParams(workload.TPCWBrowsing()), 16)
	if br.ExtraMasterReadClients == 0 {
		t.Error("browsing at 16 replicas should use master's excess capacity for reads")
	}
	if br.QueuedAtMaster != 0 {
		t.Error("browsing master is not a bottleneck")
	}
}

func TestSMReadOnlyEqualsMM(t *testing.T) {
	// With no updates both designs degenerate to N read-only replicas.
	p := NewParams(workload.RUBiSBrowsing())
	for _, n := range []int{1, 4, 16} {
		sm := PredictSM(p, n).Throughput
		mm := PredictMM(p, n).Throughput
		if math.Abs(sm-mm) > 0.02*mm {
			t.Errorf("N=%d: read-only SM=%v vs MM=%v", n, sm, mm)
		}
	}
}

func TestSMBiddingMasterBound(t *testing.T) {
	// Figure 12: RUBiS bidding is bounded by the master; throughput
	// flattens near 100 tps.
	p := NewParams(workload.RUBiSBidding())
	x4 := PredictSM(p, 4).Throughput
	x16 := PredictSM(p, 16).Throughput
	if x16 > x4*1.15 {
		t.Errorf("bidding SM kept scaling: X4=%v X16=%v", x4, x16)
	}
}

func TestSMThroughputSplitConsistent(t *testing.T) {
	for _, m := range workload.All() {
		p := NewParams(m)
		for _, n := range []int{2, 8, 16} {
			pred := PredictSM(p, n)
			sum := pred.ReadThroughput + pred.WriteThroughput
			if math.Abs(sum-pred.Throughput) > 1e-6*(sum+1) {
				t.Errorf("%s N=%d: read+write=%v != total %v", m.ID(), n, sum, pred.Throughput)
			}
		}
	}
}

func TestSMBalancedRatioNearWorkloadRatio(t *testing.T) {
	// When the system is not saturated the committed ratio should be
	// close to Pr:Pw.
	p := NewParams(workload.TPCWShopping())
	for _, n := range []int{2, 4, 8} {
		pred := PredictSM(p, n)
		if pred.WriteThroughput == 0 {
			t.Fatalf("N=%d: no write throughput", n)
		}
		ratio := pred.ReadThroughput / pred.WriteThroughput
		want := p.Mix.Pr / p.Mix.Pw
		if math.Abs(ratio-want)/want > 0.25 {
			t.Errorf("N=%d: read:write = %.2f, workload ratio %.2f", n, ratio, want)
		}
	}
}

func TestSMPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PredictSM(p, 0) did not panic")
		}
	}()
	PredictSM(NewParams(workload.TPCWShopping()), 0)
}

func TestSMRange(t *testing.T) {
	preds := PredictSMRange(NewParams(workload.TPCWShopping()), 6)
	if len(preds) != 6 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for i, pr := range preds {
		if pr.Replicas != i+1 || pr.Design != SingleMaster {
			t.Fatalf("prediction %d: %+v", i, pr)
		}
	}
}

func TestAbortFromConflictWindow(t *testing.T) {
	// N=1 with CW=L1 must return exactly A1.
	a1 := 0.01
	if got := abortFromConflictWindow(a1, 0.1, 0.1, 1); math.Abs(got-a1) > 1e-12 {
		t.Errorf("identity case: %v", got)
	}
	// Doubling the exponent roughly doubles small abort rates.
	a2 := abortFromConflictWindow(a1, 0.1, 0.1, 2)
	if a2 < 1.9*a1 || a2 > 2.1*a1 {
		t.Errorf("A2 = %v, want about %v", a2, 2*a1)
	}
	// Degenerate inputs return A1.
	if got := abortFromConflictWindow(0, 1, 1, 4); got != 0 {
		t.Errorf("zero A1: %v", got)
	}
	if got := abortFromConflictWindow(a1, 0, 1, 4); got != a1 {
		t.Errorf("zero CW: %v", got)
	}
	// Clamped at maxAbort.
	if got := abortFromConflictWindow(0.5, 100, 0.001, 16); got != maxAbort {
		t.Errorf("clamp: %v", got)
	}
}

func TestAbortProbabilityStandaloneAndInverse(t *testing.T) {
	const (
		l1   = 0.1
		rate = 20.0
		u    = 3
	)
	for _, a1 := range []float64{0.0024, 0.0053, 0.0090} {
		size := HeapTableSizeForAbort(a1, u, l1, rate)
		if size <= 0 {
			t.Fatalf("a1=%v: size=%d", a1, size)
		}
		back := AbortProbabilityStandalone(size, u, l1, rate)
		if math.Abs(back-a1)/a1 > 0.05 {
			t.Errorf("a1=%v: round-trip %v (size %d)", a1, back, size)
		}
	}
	if AbortProbabilityStandalone(0, 1, 1, 1) != 0 {
		t.Error("degenerate AbortProbabilityStandalone != 0")
	}
	if HeapTableSizeForAbort(0, 1, 1, 1) != 0 {
		t.Error("degenerate HeapTableSizeForAbort != 0")
	}
}

func TestFigure14AbortPredictions(t *testing.T) {
	// Figure 14: for the shopping mix with artificially raised A1 of
	// {0.24%, 0.53%, 0.90%}, measured A_16 on the MM prototype is
	// {10%, 17%, 29%}. The model consistently under-estimates at the
	// high end (the paper says so); accept a generous band around the
	// measured anchors.
	anchors := []struct {
		a1       float64
		measured float64
	}{
		{0.0024, 0.10},
		{0.0053, 0.17},
		{0.0090, 0.29},
	}
	m := workload.TPCWShopping()
	for _, c := range anchors {
		m.A1 = c.a1
		p := NewParams(m)
		a16 := PredictMM(p, 16).AbortRate
		if a16 < c.measured*0.4 || a16 > c.measured*1.6 {
			t.Errorf("A1=%.2f%%: predicted A16=%.1f%%, measured anchor %.0f%%",
				c.a1*100, a16*100, c.measured*100)
		}
	}
}

func TestCheckAssumptions(t *testing.T) {
	ok := CheckAssumptions(NewParams(workload.TPCWShopping()), 16)
	if !ok.OK() {
		t.Errorf("shopping mix should satisfy assumptions: %v", ok)
	}
	hot := workload.TPCWShopping()
	hot.A1 = 0.02
	rep := CheckAssumptions(NewParams(hot), 16)
	if rep.OK() {
		t.Error("2% A1 should trigger the small-abort warning")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
	ord := CheckAssumptions(NewParams(workload.TPCWOrdering()), 1)
	// Pw = 0.5 is the boundary; no warning expected for <= 0.5.
	for _, w := range ord.Warnings {
		t.Errorf("unexpected ordering warning: %s", w)
	}
}

func TestPredictionHelpers(t *testing.T) {
	p := PredictMM(NewParams(workload.TPCWShopping()), 4)
	if p.Speedup(0) != 0 {
		t.Error("Speedup(0) != 0")
	}
	if s := p.Speedup(p.Throughput / 4); math.Abs(s-4) > 1e-9 {
		t.Errorf("Speedup = %v", s)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestMMCertifierDelayOnlyChargedToUpdates(t *testing.T) {
	// Raising the certifier delay must not slow a read-only workload.
	p := NewParams(workload.RUBiSBrowsing())
	base := PredictMM(p, 8).Throughput
	p.CertDelay = 1.0
	slow := PredictMM(p, 8).Throughput
	if math.Abs(base-slow) > 1e-9*base {
		t.Errorf("certifier delay affected read-only workload: %v vs %v", base, slow)
	}
	// But it must slow an update-heavy workload's response time.
	q := NewParams(workload.TPCWOrdering())
	rtBase := PredictMM(q, 8).ResponseTime
	q.CertDelay = 0.2
	rtSlow := PredictMM(q, 8).ResponseTime
	if rtSlow <= rtBase {
		t.Errorf("certifier delay had no effect on updates: %v vs %v", rtSlow, rtBase)
	}
}
