package core

import (
	"fmt"
	"math"

	"repro/internal/mva"
	"repro/internal/workload"
)

// slaveDemand returns the per-committed-read-transaction demand at an
// SM slave (§3.3.3):
//
//	D_slave(N) = rc + (Pw/Pr)·(N-1)·ws
//
// Each of the N-1 slaves processes N·R/(N-1) reads plus all N·W
// propagated writesets, so the writeset work amortized per read is
// (N-1)·(W/R)·ws.
func slaveDemand(m workload.Mix, n int) []float64 {
	d := make([]float64, workload.NumResources)
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		d[r] = m.RC[r]
		if m.Pr > 0 {
			d[r] += m.Pw / m.Pr * float64(n-1) * m.WS[r]
		}
	}
	return d
}

// masterSolution carries one master MVA evaluation.
type masterSolution struct {
	readThroughput  float64
	writeThroughput float64
	abort           float64 // converged A'_N
	execTime        float64 // master update execution time (conflict window)
	sol             mva.TwoClassSolution
}

// solveMaster evaluates the master node with readClients read-only
// clients and writeClients update clients. The update class demand is
// wc/(1-A'_N); A'_N is found by fixed point on the master's execution
// time, mirroring how the paper measures it with a scaled update load
// (§4.1.2): the master resolves conflicts like a standalone database
// but at N times the update rate.
func solveMaster(p Params, n, readClients, writeClients int) masterSolution {
	m := p.Mix
	l1 := p.L1
	speed := p.MasterSpeedup
	if speed <= 0 {
		speed = 1
	}
	centers := replicaCenters()
	think := [2]float64{m.Think + p.LBDelay, m.Think + p.LBDelay}
	readDemand := []float64{m.RC[workload.CPU] / speed, m.RC[workload.Disk] / speed}

	// Standalone committed update rate, the denominator of the
	// rate-ratio abort exponent.
	w1 := PredictStandalone(p).WriteThroughput

	abort := clampAbort(m.A1)
	var out masterSolution
	for iter := 0; iter < 50; iter++ {
		retry := 1.0
		if m.Pw > 0 {
			retry = 1 / (1 - abort)
		}
		writeDemand := []float64{m.WC[workload.CPU] * retry / speed, m.WC[workload.Disk] * retry / speed}
		sol := mva.SolveTwoClass(centers,
			[2][]float64{readDemand, writeDemand}, think,
			[2]int{readClients, writeClients})

		exec := m.WC[workload.CPU]/speed*(1+sol.Queue[0]) + m.WC[workload.Disk]/speed*(1+sol.Queue[1])
		next := abort
		if m.Pw > 0 && m.A1 > 0 && l1 > 0 && w1 > 0 {
			next = abortFromRates(m.A1, exec, l1, sol.Throughput[1]/w1)
		}
		out = masterSolution{
			readThroughput:  sol.Throughput[0],
			writeThroughput: sol.Throughput[1],
			abort:           next,
			execTime:        exec,
			sol:             sol,
		}
		if math.Abs(next-abort) < 1e-9 {
			break
		}
		abort = next
	}
	return out
}

// solveSlave evaluates one slave with the given read clients.
func solveSlave(p Params, n, clients int) mva.Solution {
	return mva.Solve(replicaCenters(), slaveDemand(p.Mix, n), p.Mix.Think+p.LBDelay, clients)
}

// balanced reports whether read and write throughput match the
// workload ratio Pr:Pw within tol (cross-multiplied to avoid division
// by zero).
func balanced(read, write, pr, pw, tol float64) bool {
	return math.Abs(read*pw-write*pr) <= tol*(read*pw+write*pr+1e-12)
}

// PredictSM evaluates the single-master model (§3.3.3, Figure 3) for
// n replicas (1 master + n-1 slaves).
func PredictSM(p Params, n int) Prediction {
	if n < 1 {
		panic(fmt.Sprintf("core: PredictSM with %d replicas", n))
	}
	m := p.Mix

	// Degenerate forms first.
	if n == 1 {
		return smSingleNode(p)
	}
	if m.Pw == 0 {
		return smReadOnly(p, n)
	}

	totalClients := m.Clients * n
	masterClients := int(math.Round(m.Pw * float64(totalClients)))
	slaveClients := int(math.Round(m.Pr * float64(totalClients) / float64(n-1)))

	ms := solveMaster(p, n, 0, masterClients)
	sl := solveSlave(p, n, slaveClients)
	readThput := float64(n-1) * sl.Throughput
	writeThput := ms.writeThroughput

	const tol = 0.02
	pred := Prediction{Design: SingleMaster, Replicas: n}

	switch {
	case balanced(readThput, writeThput, m.Pr, m.Pw, tol):
		// Initial split is already balanced.

	case readThput*m.Pw < writeThput*m.Pr:
		// Reads lag: the master has excess capacity. Move j read
		// clients per slave onto the master (the E extra reads of
		// §3.3.3), scanning j upward exactly like the Figure 3 loop.
		// The target ratio may be unreachable when the static client
		// split caps the write rate below its closed-loop share; in
		// that case the best static solution is the j maximizing total
		// throughput (the sum is concave in j), which is where the
		// self-regulating closed loop settles.
		bestJ, bestX := 0, readThput+writeThput
		iters := 0
		found := -1
		for j := 1; j <= slaveClients; j++ {
			iters++
			msj := solveMaster(p, n, j*(n-1), masterClients)
			slj := solveSlave(p, n, slaveClients-j)
			r := float64(n-1)*slj.Throughput + msj.readThroughput
			if x := r + msj.writeThroughput; x > bestX {
				bestX, bestJ = x, j
			}
			if r*m.Pw >= msj.writeThroughput*m.Pr {
				found = j
				break
			}
		}
		j := found
		if j < 0 {
			j = bestJ
		}
		ms = solveMaster(p, n, j*(n-1), masterClients)
		sl = solveSlave(p, n, slaveClients-j)
		readThput = float64(n-1)*sl.Throughput + ms.readThroughput
		writeThput = ms.writeThroughput
		pred.ExtraMasterReadClients = j * (n - 1)
		pred.BalanceIterations = iters

	default:
		// Writes lag: the master is the bottleneck; clients pile up
		// there, draining the slaves. Move j clients per slave into
		// the master queue until the read rate drops to match.
		lo, hi := 0, slaveClients
		iters := 0
		for lo < hi {
			iters++
			j := (lo + hi) / 2
			msj := solveMaster(p, n, 0, masterClients+j*(n-1))
			slj := solveSlave(p, n, slaveClients-j)
			r := float64(n-1) * slj.Throughput
			if r*m.Pw > msj.writeThroughput*m.Pr {
				lo = j + 1
			} else {
				hi = j
			}
		}
		j := lo
		ms = solveMaster(p, n, 0, masterClients+j*(n-1))
		sl = solveSlave(p, n, slaveClients-j)
		readThput = float64(n-1) * sl.Throughput
		writeThput = ms.writeThroughput
		pred.QueuedAtMaster = j * (n - 1)
		pred.BalanceIterations = iters
	}

	pred.Throughput = readThput + writeThput
	pred.ReadThroughput = readThput
	pred.WriteThroughput = writeThput
	pred.AbortRate = ms.abort
	pred.ConflictWindow = ms.execTime
	if pred.Throughput > 0 {
		// Little's law over all stationed clients (§3.2.2). The
		// integer split can assign slightly more or fewer clients than
		// the nominal N·C (rounding of Pw·C·N and the per-slave
		// share), so use the population the networks were actually
		// solved with; otherwise tiny configurations can even yield a
		// negative response time.
		assigned := masterClients + (n-1)*slaveClients
		pred.ResponseTime = float64(assigned)/pred.Throughput - m.Think
	}

	masterReadClients := pred.ExtraMasterReadClients
	slavePerNode := slaveClients - (pred.ExtraMasterReadClients+pred.QueuedAtMaster)/maxInt(1, n-1)
	sd := slaveDemand(m, n)
	retry := 1 / (1 - ms.abort)
	pred.Master = RoleMetrics{
		Clients:     masterClients + masterReadClients + pred.QueuedAtMaster,
		Throughput:  ms.readThroughput + ms.writeThroughput,
		UtilCPU:     ms.sol.Utilization[0],
		UtilDisk:    ms.sol.Utilization[1],
		QueueCPU:    ms.sol.Queue[0],
		QueueDisk:   ms.sol.Queue[1],
		DemandCPU:   m.WC[workload.CPU] * retry,
		DemandDisk:  m.WC[workload.Disk] * retry,
		ResidenceMS: (ms.sol.Response[0] + ms.sol.Response[1]) * 1000,
	}
	pred.Slave = RoleMetrics{
		Clients:     slavePerNode,
		Throughput:  sl.Throughput,
		UtilCPU:     sl.Utilization[0],
		UtilDisk:    sl.Utilization[1],
		QueueCPU:    sl.Queue[0],
		QueueDisk:   sl.Queue[1],
		DemandCPU:   sd[0],
		DemandDisk:  sd[1],
		ResidenceMS: sl.Response * 1000,
	}
	return pred
}

// smSingleNode solves the N=1 single-master system: one node, no
// slaves, updates abort at the standalone rate.
func smSingleNode(p Params) Prediction {
	base := PredictStandalone(p)
	base.Design = SingleMaster
	base.Master = base.Replica
	base.Replica = RoleMetrics{}
	return base
}

// smReadOnly solves the read-only special case (RUBiS browsing): with
// no updates the master is just another read replica, so the system is
// n identical read-only nodes.
func smReadOnly(p Params, n int) Prediction {
	m := p.Mix
	demand := []float64{m.RC[workload.CPU], m.RC[workload.Disk]}
	sol := mva.Solve(replicaCenters(), demand, m.Think+p.LBDelay, m.Clients)
	pred := Prediction{
		Design:         SingleMaster,
		Replicas:       n,
		Throughput:     float64(n) * sol.Throughput,
		ReadThroughput: float64(n) * sol.Throughput,
	}
	if sol.Throughput > 0 {
		pred.ResponseTime = float64(m.Clients)/sol.Throughput - m.Think
	}
	role := RoleMetrics{
		Clients:     m.Clients,
		Throughput:  sol.Throughput,
		UtilCPU:     sol.Utilization[0],
		UtilDisk:    sol.Utilization[1],
		QueueCPU:    sol.Queue[0],
		QueueDisk:   sol.Queue[1],
		DemandCPU:   demand[0],
		DemandDisk:  demand[1],
		ResidenceMS: sol.Response * 1000,
	}
	pred.Master = role
	pred.Slave = role
	return pred
}

// PredictSMRange evaluates the single-master model for every replica
// count from 1 to maxReplicas.
func PredictSMRange(p Params, maxReplicas int) []Prediction {
	out := make([]Prediction, 0, maxReplicas)
	for n := 1; n <= maxReplicas; n++ {
		out = append(out, PredictSM(p, n))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
