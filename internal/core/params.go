// Package core implements the paper's analytical models: throughput
// and response-time prediction for multi-master (MM) and single-master
// (SM) replicated databases under (generalized) snapshot isolation,
// driven entirely by measurements taken on a standalone database
// (Elnikety et al., EuroSys 2009, §3-§4).
//
// The models are closed queueing networks solved with Mean Value
// Analysis. Each replica contributes a CPU and a disk queueing center;
// client think time, the load balancer and the certifier are delay
// centers. Update propagation appears as extra writeset service demand
// ((N-1)·W writesets per multi-master replica, N·W per single-master
// slave), and snapshot-isolation aborts inflate update demand by
// 1/(1-A_N), where A_N is derived from the standalone abort rate A_1
// through the conflict-window relation
//
//	(1 - A_N) = (1 - A_1)^(N·CW(N)/L(1)).
//
// Params collects every model input; Predict* produce Prediction
// values comparable directly against measured (or simulated) systems.
package core

import (
	"fmt"

	"repro/internal/workload"
)

// Default middleware delays used by the paper's experimental setup
// (§6.1, §6.3.1-6.3.2).
const (
	// DefaultLBDelay is the combined load balancer and LAN delay.
	DefaultLBDelay = 0.001
	// DefaultCertDelay is the certification delay: half the mean
	// batched disk-write service time plus the service time itself
	// (0.5·8ms + 8ms ≈ 12ms).
	DefaultCertDelay = 0.012
)

// Params holds the model inputs measured on a standalone database
// (§4) plus the middleware delay constants.
type Params struct {
	// Mix supplies Pr, Pw, client count per replica, think time and
	// the measured service demands rc, wc, ws per resource, as well as
	// the standalone abort probability A1.
	Mix workload.Mix

	// L1 is the measured average execution (response) time of an
	// update transaction on the standalone database, the conflict
	// window of a standalone system (§3.3.1). If zero, PredictMM and
	// PredictSM estimate it with EstimateL1.
	L1 float64

	// LBDelay is the load balancer + network delay center value.
	LBDelay float64

	// CertDelay is the certifier delay center value (multi-master
	// only; the single-master design has no certifier).
	CertDelay float64

	// MasterSpeedup scales the single-master master's speed: its
	// service demands are divided by this factor. The paper suggests a
	// more powerful master to mitigate the SM bottleneck (§6.2.1);
	// zero or one models homogeneous machines.
	MasterSpeedup float64
}

// NewParams builds Params for a mix with the paper's default
// middleware delays and an L1 estimated from the standalone model.
func NewParams(m workload.Mix) Params {
	p := Params{
		Mix:       m,
		LBDelay:   DefaultLBDelay,
		CertDelay: DefaultCertDelay,
	}
	p.L1 = EstimateL1(p)
	return p
}

// Validate checks the parameters against the model's domain.
func (p Params) Validate() error {
	if err := p.Mix.Validate(); err != nil {
		return err
	}
	if p.L1 < 0 {
		return fmt.Errorf("core: negative L1 %v", p.L1)
	}
	if p.LBDelay < 0 || p.CertDelay < 0 {
		return fmt.Errorf("core: negative middleware delay")
	}
	if p.Mix.Pw > 0 && p.L1 == 0 {
		return fmt.Errorf("core: L1 required for update workloads (use NewParams or EstimateL1)")
	}
	return nil
}

// Design labels which replication design a prediction describes.
type Design string

const (
	// Standalone is a single unreplicated database.
	Standalone Design = "standalone"
	// MultiMaster is the MM design: every replica executes reads and
	// updates; a certifier resolves write-write conflicts (§3.3.2).
	MultiMaster Design = "multi-master"
	// SingleMaster is the SM design: the master executes all updates,
	// slaves execute reads (§3.3.3).
	SingleMaster Design = "single-master"
)

// RoleMetrics reports per-node steady-state metrics for one role
// (an MM replica, the SM master, or an SM slave).
type RoleMetrics struct {
	Clients     int     // clients stationed at this node
	Throughput  float64 // transactions per second committed by this node
	UtilCPU     float64
	UtilDisk    float64
	QueueCPU    float64
	QueueDisk   float64
	DemandCPU   float64 // average per-transaction CPU demand at this node
	DemandDisk  float64 // average per-transaction disk demand
	ResidenceMS float64 // total residence time at this node, milliseconds
}

// Prediction is the model output for one (design, N) point.
type Prediction struct {
	Design   Design
	Replicas int

	Throughput   float64 // system throughput, transactions/second
	ResponseTime float64 // average transaction response time, seconds

	// AbortRate is A_N for multi-master, A'_N for single-master, and
	// A_1 for standalone.
	AbortRate float64
	// ConflictWindow is CW(N) in seconds (MM) or the master execution
	// time (SM).
	ConflictWindow float64

	// ReadThroughput and WriteThroughput split the system throughput
	// by transaction class (ReadThroughput+WriteThroughput equals
	// Throughput).
	ReadThroughput  float64
	WriteThroughput float64

	// Replica describes a multi-master replica (or the standalone
	// node); Master and Slave describe the single-master roles.
	Replica RoleMetrics
	Master  RoleMetrics
	Slave   RoleMetrics

	// ExtraMasterReadClients is the number of read clients the SM
	// balancing algorithm moved to the master (E > 0 case of §3.3.3);
	// QueuedAtMaster is the number of clients it moved from the slaves
	// to queue at a bottlenecked master.
	ExtraMasterReadClients int
	QueuedAtMaster         int
	// BalanceIterations counts Figure 3 loop iterations (0 when the
	// initial split was already balanced).
	BalanceIterations int
}

// Speedup returns the ratio of this prediction's throughput to the
// given single-replica throughput.
func (p Prediction) Speedup(singleReplica float64) float64 {
	if singleReplica <= 0 {
		return 0
	}
	return p.Throughput / singleReplica
}

// String renders the headline numbers.
func (p Prediction) String() string {
	return fmt.Sprintf("%s N=%d: X=%.1f tps, RT=%.1f ms, abort=%.3f%%",
		p.Design, p.Replicas, p.Throughput, p.ResponseTime*1000, p.AbortRate*100)
}
