package core

import (
	"fmt"

	"repro/internal/mva"
	"repro/internal/workload"
)

// mmDemands returns the per-resource multi-master service demand
// (§3.3.2):
//
//	D_MM(N) = Pr·rc + Pw·wc/(1-A_N) + Pw·(N-1)·ws
//
// covering local reads, local updates inflated by retries, and the
// (N-1)·W propagated writesets each replica applies per W local
// commits.
func mmDemands(m workload.Mix, n int, abortRate float64) []float64 {
	d := make([]float64, workload.NumResources)
	retry := 1.0
	if m.Pw > 0 {
		retry = 1 / (1 - abortRate)
	}
	for r := workload.Resource(0); r < workload.NumResources; r++ {
		d[r] = m.Pr*m.RC[r] + m.Pw*m.WC[r]*retry + m.Pw*float64(n-1)*m.WS[r]
	}
	return d
}

// MMOptions tune the multi-master solver; the zero value gives the
// paper's model. They exist for the sensitivity/ablation studies.
type MMOptions struct {
	// FreezeAbort pins A_N to A_1, disabling the conflict-window
	// feedback (ablation: how much do replication-amplified aborts
	// matter?).
	FreezeAbort bool
	// DropWritesets sets ws to zero, disabling the update-propagation
	// cost term (ablation: how much does propagation limit scaling?).
	DropWritesets bool
}

// PredictMM evaluates the multi-master model (§3.3.2) for n replicas.
//
// One replica is solved as a closed network of C clients over CPU and
// disk queueing centers. The delay term is think time plus load
// balancer delay plus the certifier delay weighted by the fraction of
// transactions that visit the certifier (updates only). The conflict
// window CW(N) at MVA iteration i+1 is the update transaction's
// CPU+disk residence plus certification time observed at iteration i
// (§4.1.1), from which A_N follows.
func PredictMM(p Params, n int) Prediction {
	return PredictMMOpt(p, n, MMOptions{})
}

// PredictMMOpt is PredictMM with explicit solver options.
func PredictMMOpt(p Params, n int, opt MMOptions) Prediction {
	if n < 1 {
		panic(fmt.Sprintf("core: PredictMM with %d replicas", n))
	}
	m := p.Mix
	if opt.DropWritesets {
		m.WS = workload.Demand{}
	}
	l1 := p.L1
	if l1 == 0 {
		l1 = EstimateL1(p)
	}

	// Delay seen by a transaction outside the replica's queues: client
	// think time, load balancer, and the certifier for updates.
	think := m.Think + p.LBDelay + m.Pw*p.CertDelay

	solver := mva.NewSingleClass(replicaCenters(), think)

	abort := clampAbort(m.A1)
	cw := l1 // initial conflict-window guess: the standalone window
	for i := 0; i < m.Clients; i++ {
		solver.SetDemands(mmDemands(m, n, abort))
		solver.Step()
		if m.Pw > 0 && !opt.FreezeAbort {
			// Conflict window from this iteration feeds the next one:
			// update residence at CPU+disk plus certification time.
			cw = m.WC[workload.CPU]*(1+solver.Queue(0)) +
				m.WC[workload.Disk]*(1+solver.Queue(1)) +
				p.CertDelay
			abort = abortFromConflictWindow(m.A1, cw, l1, n)
		}
	}

	sol := solver.Solution()
	demands := mmDemands(m, n, abort)

	pred := Prediction{
		Design:         MultiMaster,
		Replicas:       n,
		Throughput:     float64(n) * sol.Throughput,
		AbortRate:      abort,
		ConflictWindow: cw,
	}
	if m.Pw == 0 {
		pred.ConflictWindow = 0
		pred.AbortRate = 0
	}
	if sol.Throughput > 0 {
		// Little's law over one replica's clients; response includes
		// LB and certifier delays but not think time.
		pred.ResponseTime = float64(m.Clients)/sol.Throughput - m.Think
	}
	pred.ReadThroughput = pred.Throughput * m.Pr
	pred.WriteThroughput = pred.Throughput * m.Pw
	pred.Replica = RoleMetrics{
		Clients:    m.Clients,
		Throughput: sol.Throughput,
		// The conflict-window feedback changes demands between MVA
		// steps, so the closing utilization can overshoot 1 by a hair;
		// clamp to the physical range.
		UtilCPU:     clampUtil(sol.Utilization[0]),
		UtilDisk:    clampUtil(sol.Utilization[1]),
		QueueCPU:    sol.Queue[0],
		QueueDisk:   sol.Queue[1],
		DemandCPU:   demands[0],
		DemandDisk:  demands[1],
		ResidenceMS: sol.Response * 1000,
	}
	return pred
}

// PredictMMRange evaluates the multi-master model for every replica
// count from 1 to maxReplicas.
func PredictMMRange(p Params, maxReplicas int) []Prediction {
	out := make([]Prediction, 0, maxReplicas)
	for n := 1; n <= maxReplicas; n++ {
		out = append(out, PredictMM(p, n))
	}
	return out
}
