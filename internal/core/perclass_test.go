package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestPerClassAgreesWithAggregateThroughput(t *testing.T) {
	// The two MM formulations agree on throughput within a few percent
	// in the paper's operating regimes. They genuinely diverge where
	// the open writeset stream dominates a resource (RUBiS bidding at
	// high replica counts pushes the open disk utilization past 80%);
	// there the mixed-network reduction is more optimistic, and both
	// stay within the paper's 15% of the simulated measurement.
	for _, m := range workload.All() {
		p := NewParams(m)
		for _, n := range []int{1, 4, 8, 16} {
			agg := PredictMM(p, n).Throughput
			pc := PredictMMPerClass(p, n)
			tol := 0.08
			if pc.OpenUtilization[workload.Disk] > 0.5 || pc.OpenUtilization[workload.CPU] > 0.5 {
				tol = 0.20
			}
			if math.Abs(agg-pc.Throughput)/agg > tol {
				t.Errorf("%s N=%d: aggregate %.1f vs per-class %.1f (open util %v)",
					m.ID(), n, agg, pc.Throughput, pc.OpenUtilization)
			}
		}
	}
}

func TestPerClassResponseOrdering(t *testing.T) {
	// For TPC-W, reads are more expensive than updates (§6.2.1), so
	// the read class's response must exceed the update class's
	// CPU+disk residence portion; both must be positive and the
	// population-weighted mean must be consistent with the aggregate
	// response time.
	m := workload.TPCWShopping()
	p := NewParams(m)
	for _, n := range []int{1, 8, 16} {
		pc := PredictMMPerClass(p, n)
		if pc.ReadResponse <= 0 || pc.WriteResponse <= 0 {
			t.Fatalf("N=%d: non-positive class response %+v", n, pc)
		}
		if pc.ReadResponse < pc.WriteResponse-p.CertDelay {
			t.Errorf("N=%d: reads (%v) should be slower than update residence (%v)",
				n, pc.ReadResponse, pc.WriteResponse)
		}
		mean := m.Pr*pc.ReadResponse + m.Pw*pc.WriteResponse
		if math.Abs(mean-pc.ResponseTime)/pc.ResponseTime > 0.15 {
			t.Errorf("N=%d: class-weighted mean %v vs aggregate %v", n, mean, pc.ResponseTime)
		}
	}
}

func TestPerClassOpenUtilizationGrowsWithReplicas(t *testing.T) {
	p := NewParams(workload.TPCWOrdering())
	u4 := PredictMMPerClass(p, 4).OpenUtilization
	u16 := PredictMMPerClass(p, 16).OpenUtilization
	if u16[workload.CPU] <= u4[workload.CPU] {
		t.Errorf("writeset stream utilization did not grow: %v vs %v", u16, u4)
	}
	if u16[workload.CPU] <= 0 || u16[workload.CPU] >= 1 {
		t.Errorf("open utilization out of range: %v", u16)
	}
}

func TestPerClassReadOnlyMix(t *testing.T) {
	p := NewParams(workload.RUBiSBrowsing())
	pc := PredictMMPerClass(p, 8)
	if pc.AbortRate != 0 || pc.WriteThroughput != 0 {
		t.Fatalf("read-only mix: %+v", pc)
	}
	agg := PredictMM(p, 8).Throughput
	if math.Abs(pc.Throughput-agg)/agg > 0.02 {
		t.Fatalf("read-only per-class %v vs aggregate %v", pc.Throughput, agg)
	}
	if pc.WriteResponse != p.LBDelay+p.CertDelay {
		// With no update clients, the write class is empty; its
		// response reduces to the pure middleware path.
		t.Logf("write response %v (empty class)", pc.WriteResponse)
	}
}

func TestPerClassConverges(t *testing.T) {
	p := NewParams(workload.TPCWOrdering())
	pc := PredictMMPerClass(p, 16)
	if pc.Iterations >= 100 {
		t.Fatalf("fixed point did not converge: %d iterations", pc.Iterations)
	}
}

func TestPerClassPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PredictMMPerClass(NewParams(workload.TPCWShopping()), 0)
}
