package core

import (
	"math"

	"repro/internal/mva"
	"repro/internal/workload"
)

// PerClassPrediction extends the aggregate multi-master prediction
// with per-class response times.
type PerClassPrediction struct {
	Prediction
	// ReadResponse and WriteResponse are the predicted mean response
	// times of committed read-only and update transactions (seconds).
	ReadResponse  float64
	WriteResponse float64
	// OpenUtilization is the fraction of each resource consumed by the
	// writeset-application stream (CPU, disk).
	OpenUtilization workload.Demand
	// Iterations is the number of fixed-point rounds to convergence.
	Iterations int
}

// PredictMMPerClass evaluates an alternative multi-master formulation:
// a mixed open/closed queueing network (Lazowska et al., ch. 8)
// instead of the paper's single aggregated customer class.
//
// The paper folds reads, updates and writeset applications into one
// average service demand D_MM(N), which predicts throughput and the
// *mean* response time but cannot separate read from update latency.
// Here the replica is modeled with:
//
//   - two closed classes — read-only transactions (demand rc, think
//     Z + lb) and update transactions (demand wc/(1-A_N), think
//     Z + lb + certifier) — holding the replica's C clients in
//     proportion Pr:Pw; and
//   - one open class — the (N-1)·W writesets/second arriving from the
//     other replicas — which by the mixed-network reduction inflates
//     every closed-class demand at resource m by 1/(1 - U_open[m]),
//     where U_open[m] = λ_ws · ws[m].
//
// Because λ_ws depends on the update throughput being solved for, the
// model iterates to a fixed point, updating the abort probability from
// the update class's residence (the same §4.1.1 feedback as the
// aggregate model). The aggregate and per-class formulations agree on
// throughput to within a few percent; the per-class one additionally
// matches the simulated prototype's per-class response times, which
// the ablation-perclass experiment demonstrates.
func PredictMMPerClass(p Params, n int) PerClassPrediction {
	if n < 1 {
		panic("core: PredictMMPerClass with non-positive replicas")
	}
	m := p.Mix
	l1 := p.L1
	if l1 == 0 {
		l1 = EstimateL1(p)
	}
	centers := replicaCenters()

	readPop := int(math.Round(m.Pr * float64(m.Clients)))
	writePop := m.Clients - readPop
	thinkRead := m.Think + p.LBDelay
	thinkWrite := m.Think + p.LBDelay + p.CertDelay

	abort := clampAbort(m.A1)
	cw := l1
	var open workload.Demand
	var sol mva.TwoClassSolution
	x := 0.0
	iters := 0
	// Damped fixed point: under heavy propagation load the open-class
	// utilization and the closed-class throughput push against each
	// other, and the undamped iteration oscillates.
	const damping = 0.3
	for ; iters < 500; iters++ {
		// Open writeset stream driven by the current update-rate
		// estimate: every other replica's commits arrive here.
		lambda := float64(n-1) * x * fracWrite(m, writePop)
		var demands [2][]float64
		stable := true
		for r := workload.Resource(0); r < workload.NumResources; r++ {
			open[r] = lambda * m.WS[r]
			if open[r] > 0.95 {
				open[r] = 0.95 // saturated by propagation alone
				stable = false
			}
		}
		inflate := func(d float64, r workload.Resource) float64 {
			return d / (1 - open[r])
		}
		demands[0] = []float64{
			inflate(m.RC[workload.CPU], workload.CPU),
			inflate(m.RC[workload.Disk], workload.Disk),
		}
		retry := 1 / (1 - abort)
		demands[1] = []float64{
			inflate(m.WC[workload.CPU]*retry, workload.CPU),
			inflate(m.WC[workload.Disk]*retry, workload.Disk),
		}
		sol = mva.SolveTwoClass(centers, demands,
			[2]float64{thinkRead, thinkWrite}, [2]int{readPop, writePop})

		if writePop > 0 {
			cw = m.WC[workload.CPU]*(1+sol.Queue[0]) +
				m.WC[workload.Disk]*(1+sol.Queue[1]) +
				p.CertDelay
			abort = abortFromConflictWindow(m.A1, cw, l1, n)
		}
		xNew := sol.Throughput[0] + sol.Throughput[1]
		if stable && math.Abs(xNew-x) < 1e-7*(x+1) {
			x = xNew
			break
		}
		if iters == 0 {
			x = xNew
		} else {
			x += damping * (xNew - x)
		}
	}

	pred := PerClassPrediction{
		Prediction: Prediction{
			Design:          MultiMaster,
			Replicas:        n,
			Throughput:      float64(n) * x,
			ReadThroughput:  float64(n) * sol.Throughput[0],
			WriteThroughput: float64(n) * sol.Throughput[1],
			AbortRate:       abort,
			ConflictWindow:  cw,
		},
		OpenUtilization: open,
		Iterations:      iters + 1,
	}
	if m.Pw == 0 {
		pred.AbortRate, pred.ConflictWindow = 0, 0
	}
	// Per-class response: residence plus the middleware delays the
	// class traverses (think time excluded).
	pred.ReadResponse = sol.Response[0] + p.LBDelay
	pred.WriteResponse = sol.Response[1] + p.LBDelay + p.CertDelay
	if x > 0 {
		pred.ResponseTime = float64(m.Clients)/x - m.Think
	}
	return pred
}

// fracWrite converts the integer write population back to the
// effective update fraction of the replica's committed throughput.
func fracWrite(m workload.Mix, writePop int) float64 {
	if m.Clients == 0 || writePop == 0 {
		return 0
	}
	// The committed update share tracks Pw; using the mix value avoids
	// integer-split bias in the open-stream rate.
	return m.Pw
}
