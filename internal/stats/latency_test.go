package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency()
	if l.Count() != 0 || l.Quantile(0.5) != 0 || l.Max() != 0 || l.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: %v", l.Summary())
	}
}

func TestLatencyExactSmallValues(t *testing.T) {
	l := NewLatency()
	for ns := int64(0); ns < 32; ns++ {
		l.Record(time.Duration(ns))
	}
	if got := l.Max(); got != 31 {
		t.Fatalf("max = %v, want 31ns", got)
	}
	if got := l.Min(); got != 0 {
		t.Fatalf("min = %v, want 0", got)
	}
	if got := l.Quantile(1); got != 31 {
		t.Fatalf("p100 = %v, want 31ns", got)
	}
}

// TestLatencyQuantileAccuracy checks the bounded relative error on a
// known uniform distribution.
func TestLatencyQuantileAccuracy(t *testing.T) {
	l := NewLatency()
	const n = 100000
	for i := 1; i <= n; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		want := q * n * float64(time.Microsecond)
		got := float64(l.Quantile(q))
		if rel := abs(got-want) / want; rel > 0.05 {
			t.Errorf("q=%.2f: got %v want %v (rel err %.3f)", q, time.Duration(got), time.Duration(want), rel)
		}
	}
	if l.Quantile(1) != l.Max() {
		t.Errorf("p100 %v != max %v", l.Quantile(1), l.Max())
	}
}

func TestLatencyMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole, a, b := NewLatency(), NewLatency(), NewLatency()
	for i := 0; i < 20000; i++ {
		d := time.Duration(rng.Int63n(int64(3 * time.Second)))
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	a.Merge(nil)          // no-op
	a.Merge(NewLatency()) // no-op
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %v vs %v", a.Summary(), whole.Summary())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%.2f: merged %v, sequential %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestLatencyMergeIntoEmpty(t *testing.T) {
	a, b := NewLatency(), NewLatency()
	b.Record(5 * time.Millisecond)
	b.Record(10 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 || a.Min() != 5*time.Millisecond || a.Max() != 10*time.Millisecond {
		t.Fatalf("merge into empty: %v", a.Summary())
	}
}

func TestLatencyBucketRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		b := latBucket(ns)
		v := latValue(b)
		// The representative must be within one bucket width (~3%).
		if ns >= 32 {
			if rel := abs(float64(v-ns)) / float64(ns); rel > 1.0/latSub {
				t.Errorf("ns=%d: bucket %d rep %d (rel err %.4f)", ns, b, v, rel)
			}
		} else if v != ns {
			t.Errorf("exact range ns=%d: rep %d", ns, v)
		}
	}
	if latBucket(-5) != 0 {
		t.Error("negative values must clamp to bucket 0")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLatencyCumulative(t *testing.T) {
	l := NewLatency()
	for i := 0; i < 10; i++ {
		l.Record(10 * time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		l.Record(10 * time.Millisecond)
	}
	l.Record(10 * time.Second)
	bounds := []int64{int64(time.Millisecond), int64(time.Second), int64(time.Minute)}
	got := l.Cumulative(bounds)
	if got[0] != 10 {
		t.Errorf("<=1ms count = %d, want 10", got[0])
	}
	if got[1] != 15 {
		t.Errorf("<=1s count = %d, want 15", got[1])
	}
	if got[2] != 16 {
		t.Errorf("<=1m count = %d, want 16", got[2])
	}
	if empty := NewLatency().Cumulative(bounds); empty[2] != 0 {
		t.Errorf("empty cumulative = %v, want zeros", empty)
	}
}
