package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewRandDistinctSeeds(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/100 times", same)
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced repetitive stream: %d distinct", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanApproximatelyHalf(t *testing.T) {
	r := NewRand(9)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", w.Mean())
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := NewRand(11)
	const mean = 0.25
	var w Welford
	for i := 0; i < 200000; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-mean) > 0.01*mean*5 {
		t.Fatalf("exponential mean = %v, want about %v", w.Mean(), mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	r := NewRand(1)
	if got := r.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := r.Exp(-1); got != 0 {
		t.Fatalf("Exp(-1) = %v, want 0", got)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("value %d never drawn", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRand(13)
	hits := 0
	const n, p = 100000, 0.3
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(19)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {8, 7}} {
		s := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("n=%d k=%d: got %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("n=%d k=%d: invalid sample %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	NewRand(1).SampleWithoutReplacement(3, 4)
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMergeMatchesCombined(t *testing.T) {
	check := func(xs, ys []float64) bool {
		var a, b, all Welford
		for _, x := range xs {
			// Bound the magnitude to keep float comparisons meaningful.
			x = math.Mod(x, 1e6)
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			y = math.Mod(y, 1e6)
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		if math.Abs(a.Mean()-all.Mean()) > tol {
			return false
		}
		return math.Abs(a.Variance()-all.Variance()) <= 1e-4*(1+all.Variance())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordCI95ShrinksWithN(t *testing.T) {
	r := NewRand(23)
	var small, large Welford
	for i := 0; i < 100; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestTimeWeightedConstantSignal(t *testing.T) {
	var tw TimeWeighted
	tw.Update(0, 3)
	tw.Update(10, 3)
	if got := tw.Mean(20); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean of constant 3 = %v", got)
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var tw TimeWeighted
	tw.Update(0, 0)
	tw.Update(5, 1) // 0 for 5s, then 1 for 5s
	if got := tw.Mean(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("step mean = %v, want 0.5", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var tw TimeWeighted
	tw.Update(0, 100) // huge warm-up value
	tw.Reset(10)
	tw.Update(10, 1)
	if got := tw.Mean(20); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-reset mean = %v, want 1 (warm-up must be discarded)", got)
	}
}

func TestTimeWeightedResetCarriesValue(t *testing.T) {
	var tw TimeWeighted
	tw.Update(0, 2)
	tw.Reset(10)
	// No further updates: the signal is still 2.
	if got := tw.Mean(20); math.Abs(got-2) > 1e-12 {
		t.Fatalf("carried value mean = %v, want 2", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want about 50", med)
	}
	if q := h.Quantile(0); q < 0 || q > 2 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 98 || q > 100 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(50)
	if h.Bucket(0) != 1 || h.Bucket(9) != 1 {
		t.Fatalf("clamping failed: %v %v", h.Bucket(0), h.Bucket(9))
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-slice mean/median should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rel err = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("0/0 rel err = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("x/0 rel err = %v", got)
	}
}

func TestFormatMS(t *testing.T) {
	if got := FormatMS(0.04162); got != "41.62" {
		t.Fatalf("FormatMS = %q", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(31)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

func TestQuickExpAlwaysNonNegative(t *testing.T) {
	r := NewRand(37)
	f := func(mean float64) bool {
		m := math.Mod(math.Abs(mean), 1e3)
		return r.Exp(m) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
