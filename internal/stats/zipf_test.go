package stats

import (
	"math"
	"testing"
)

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("theta=0 prob[%d] = %v", i, z.Prob(i))
		}
	}
}

func TestZipfProbabilitiesDecreasing(t *testing.T) {
	z := NewZipf(100, 0.99)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("prob increased at rank %d", i)
		}
	}
	var sum float64
	for i := 0; i < 100; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(20, 1.0)
	r := NewRand(1)
	counts := make([]int, 20)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 20; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: frequency %v, want %v", i, got, want)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	flat := NewZipf(1000, 0.2)
	skew := NewZipf(1000, 1.2)
	if skew.Prob(0) <= flat.Prob(0) {
		t.Fatal("higher theta should concentrate mass on rank 0")
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(5, 0.9)
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 5 {
			t.Fatalf("sample %d out of range", v)
		}
	}
	if z.N() != 5 {
		t.Fatalf("N = %d", z.N())
	}
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Fatal("out-of-range prob not 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
