package stats

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta. It is used by the hotspot sensitivity experiments:
// the paper's abort model assumes updatable rows are touched uniformly
// (§3.4 assumption 4), and skewed access is exactly how that
// assumption breaks in practice.
//
// The implementation inverts the CDF with binary search over
// precomputed cumulative weights: O(n) setup, O(log n) per sample,
// exact for any theta >= 0 (theta 0 is uniform).
type Zipf struct {
	cum []float64 // cumulative normalized weights
}

// NewZipf builds a sampler over n ranks with skew theta. It panics on
// n <= 0 or negative theta.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	if theta < 0 {
		panic("stats: negative Zipf skew")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one rank using r.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
