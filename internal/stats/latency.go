package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// Latency is an HDR-style log-linear histogram of durations, built for
// client-perceived transaction latencies: constant-time recording, a
// bounded relative error (the top five significand bits are kept, so
// quantile estimates are within ~3% of the true value), and cheap
// merging across concurrent recorders. Durations are bucketed in
// nanoseconds; values below 32 ns are counted exactly.
//
// A Latency is not safe for concurrent use: each recorder keeps its
// own and the results are folded together with Merge, the same pattern
// Welford uses.
type Latency struct {
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

const (
	// latExact is the number of low values (0..latExact-1 ns) counted
	// in their own buckets.
	latExact = 32
	// latSub is the number of linear sub-buckets per power of two
	// above the exact range.
	latSub = 32
	// latBuckets covers every non-negative int64 nanosecond value:
	// exponents 6..64 each contribute latSub sub-buckets.
	latBuckets = latExact + (64-5)*latSub
)

// NewLatency returns an empty histogram.
func NewLatency() *Latency {
	return &Latency{counts: make([]int64, latBuckets)}
}

// latBucket maps a nanosecond value to its bucket index.
func latBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < latExact {
		return int(u)
	}
	e := bits.Len64(u) // 6..64 here
	mant := int(u>>(uint(e)-6)) & (latSub - 1)
	return latExact + (e-6)*latSub + mant
}

// latValue returns a representative (mid-bucket) nanosecond value for
// bucket index b, the inverse of latBucket up to the bucket width.
func latValue(b int) int64 {
	if b < latExact {
		return int64(b)
	}
	g := (b - latExact) / latSub
	m := (b - latExact) % latSub
	low := uint64(latSub+m) << uint(g)
	width := uint64(1) << uint(g)
	return int64(low + width/2)
}

// Record adds one observation.
func (l *Latency) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	l.counts[latBucket(ns)]++
	l.count++
	l.sum += ns
	if l.count == 1 {
		l.min, l.max = ns, ns
		return
	}
	if ns < l.min {
		l.min = ns
	}
	if ns > l.max {
		l.max = ns
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count }

// Sum returns the exact sum of all observations in nanoseconds. The
// live profiler differences cumulative (Count, Sum) pairs between
// samples to get windowed means without resetting the histogram.
func (l *Latency) Sum() int64 { return l.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (l *Latency) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return time.Duration(l.sum / l.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (l *Latency) Min() time.Duration { return time.Duration(l.min) }

// Max returns the largest observation, or 0 with no observations.
func (l *Latency) Max() time.Duration { return time.Duration(l.max) }

// Quantile estimates the q-quantile (0 <= q <= 1). The estimate is
// clamped into [Min, Max], so Quantile(1) == Max exactly.
func (l *Latency) Quantile(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(l.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= l.count {
		return time.Duration(l.max)
	}
	var cum int64
	for b, c := range l.counts {
		cum += c
		if cum >= rank {
			v := latValue(b)
			if v < l.min {
				v = l.min
			}
			if v > l.max {
				v = l.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(l.max)
}

// Merge folds other into l, as if all of other's observations had been
// recorded into l. A nil or empty other is a no-op.
func (l *Latency) Merge(other *Latency) {
	if other == nil || other.count == 0 {
		return
	}
	for b, c := range other.counts {
		l.counts[b] += c
	}
	if l.count == 0 || other.min < l.min {
		l.min = other.min
	}
	if l.count == 0 || other.max > l.max {
		l.max = other.max
	}
	l.count += other.count
	l.sum += other.sum
}

// Cumulative buckets the recorded observations under the given upper
// bounds (nanoseconds, ascending): result[i] counts observations whose
// representative bucket value is <= bounds[i]. Together with Count and
// Sum this is exactly the shape of a Prometheus histogram with
// explicit buckets, which is how the drivers' HDR histograms surface
// on /metrics without re-recording every observation twice. The
// mapping inherits the histogram's ~3% relative value error.
func (l *Latency) Cumulative(bounds []int64) []int64 {
	out := make([]int64, len(bounds))
	if l.count == 0 || len(bounds) == 0 {
		return out
	}
	i := 0
	var cum int64
	for b, c := range l.counts {
		if c == 0 {
			continue
		}
		v := latValue(b)
		for i < len(bounds) && v > bounds[i] {
			out[i] = cum
			i++
		}
		if i == len(bounds) {
			break
		}
		cum += c
	}
	for ; i < len(bounds); i++ {
		out[i] = cum
	}
	return out
}

// Summary renders the standard percentile line used by the drivers,
// e.g. "p50=1.2ms p95=3.4ms p99=8ms max=12ms (n=500)".
func (l *Latency) Summary() string {
	if l.count == 0 {
		return "no observations"
	}
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s (n=%d)",
		round(l.Quantile(0.50)), round(l.Quantile(0.95)),
		round(l.Quantile(0.99)), round(l.Max()), l.count)
}

// round trims a duration to a readable precision for summaries.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
