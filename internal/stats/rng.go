// Package stats provides deterministic random number streams and
// online statistics used by the simulator, the workload generators and
// the experiment harness.
//
// All randomness in the repository flows through Rand so that every
// experiment is reproducible from a seed. The implementation is a
// 64-bit SplitMix64 generator feeding an xorshift128+ state; both are
// small, fast and well understood, and the package depends only on the
// standard library.
package stats

import "math"

// Rand is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with NewRand. Rand is not
// safe for concurrent use; give each simulated process its own stream
// (see Split).
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the seed is expanded through SplitMix64
// so that small seeds (0, 1, 2...) are fine.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	// Avoid the all-zero state, which xorshift cannot leave.
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 0x9E3779B97F4A7C15
	}
	return r
}

// splitmix64 advances *x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives a new generator from r's stream. The child is
// independent of subsequent draws from r, which makes it convenient to
// hand one stream to each simulated client.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	// xorshift128+
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean.
// A zero or negative mean returns 0, which lets callers model constant
// zero-cost steps without special cases.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// SampleWithoutReplacement returns k distinct values drawn uniformly
// from [0, n). It panics if k > n or k < 0. For k much smaller than n
// it uses rejection from a set, which is O(k) expected time.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*4 >= n {
		// Dense case: partial Fisher-Yates.
		p := r.Perm(n)
		return p[:k]
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
