package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance using Welford's
// algorithm, which is numerically stable for long runs. The zero value
// is an empty accumulator ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance, or 0 for fewer than
// two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the
// mean using the normal approximation (fine for the sample sizes the
// simulator produces).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge folds other into w, as if all of other's observations had been
// added to w. Min/max are combined as well.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	w.n = n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// TimeWeighted tracks the time-average of a piecewise-constant signal,
// such as a queue length or a busy indicator. Utilization is the
// time-average of a 0/1 busy signal.
type TimeWeighted struct {
	last    float64 // last recorded value
	lastT   float64 // time of last update
	area    float64 // integral of the signal
	started bool
	startT  float64
}

// Update records that the signal had value v from the previous update
// time until now, then switches to v. The first call establishes the
// observation origin.
func (t *TimeWeighted) Update(now, v float64) {
	if !t.started {
		t.started = true
		t.startT = now
		t.lastT = now
		t.last = v
		return
	}
	t.area += t.last * (now - t.lastT)
	t.lastT = now
	t.last = v
}

// Mean returns the time-average of the signal up to now.
func (t *TimeWeighted) Mean(now float64) float64 {
	if !t.started || now <= t.startT {
		return 0
	}
	area := t.area + t.last*(now-t.lastT)
	return area / (now - t.startT)
}

// Reset restarts observation at the given time, keeping the current
// signal value. Used to discard the warm-up period.
func (t *TimeWeighted) Reset(now float64) {
	if !t.started {
		t.started = true
		t.last = 0
	} else {
		// Fold the signal forward so the current value carries over.
		t.Update(now, t.last)
	}
	t.startT = now
	t.lastT = now
	t.area = 0
}

// Histogram is a fixed-bucket histogram over [lo, hi) with values
// outside the range clamped into the edge buckets. It is used for
// response-time distributions.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	total   int64
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using
// linear interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + width*(float64(i)+frac)
		}
		cum = next
	}
	return h.hi
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Mean computes the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (the average of the two central
// elements for even lengths), or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// RelativeError returns |got-want| / |want|. A zero want with a
// nonzero got returns +Inf; zero/zero returns 0.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// FormatMS renders a duration in seconds as a millisecond string for
// tables, e.g. 0.04162 -> "41.62".
func FormatMS(seconds float64) string {
	return fmt.Sprintf("%.2f", seconds*1000)
}
