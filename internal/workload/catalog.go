package workload

import (
	"fmt"

	"repro/internal/stats"
)

// TxnTemplate describes one logical transaction type of a benchmark,
// used by the live middleware prototypes and the trace generator to
// issue real operations against the storage engine. The analytical
// models never see templates; they work from the aggregate mix
// parameters.
type TxnTemplate struct {
	Name     string
	ReadOnly bool
	Table    string  // primary table touched
	ReadRows int     // rows read
	Writes   int     // rows written (0 for read-only templates)
	Weight   float64 // relative frequency within its class
}

// Catalog is the set of transaction templates of one benchmark, split
// into the read-only and update classes so a Mix's Pr/Pw fractions can
// be applied exactly.
type Catalog struct {
	Benchmark string
	Reads     []TxnTemplate
	Updates   []TxnTemplate
	// Tables lists the logical tables the templates reference together
	// with the number of rows each is populated with by the live
	// engine's loader.
	Tables map[string]int
}

// TPCWCatalog returns a compact transaction catalog for the TPC-W
// online bookstore: the read-dominated browse interactions plus the
// cart/order update interactions. Row counts follow the standard
// scaling parameters (10,000 items; 100 EBs drive carts and orders).
func TPCWCatalog() Catalog {
	return Catalog{
		Benchmark: "TPC-W",
		Reads: []TxnTemplate{
			{Name: "Home", ReadOnly: true, Table: "item", ReadRows: 6, Weight: 25},
			{Name: "ProductDetail", ReadOnly: true, Table: "item", ReadRows: 2, Weight: 25},
			{Name: "SearchResults", ReadOnly: true, Table: "item", ReadRows: 12, Weight: 20},
			{Name: "NewProducts", ReadOnly: true, Table: "item", ReadRows: 10, Weight: 10},
			{Name: "BestSellers", ReadOnly: true, Table: "order_line", ReadRows: 20, Weight: 10},
			{Name: "OrderInquiry", ReadOnly: true, Table: "orders", ReadRows: 3, Weight: 10},
		},
		Updates: []TxnTemplate{
			{Name: "ShoppingCart", Table: "cart_line", ReadRows: 3, Writes: 2, Weight: 50},
			{Name: "BuyConfirm", Table: "orders", ReadRows: 4, Writes: 4, Weight: 30},
			{Name: "AdminUpdate", Table: "item", ReadRows: 1, Writes: 1, Weight: 20},
		},
		Tables: map[string]int{
			"item":       10000,
			"customer":   28800,
			"orders":     25920,
			"order_line": 77760,
			"cart_line":  30000,
		},
	}
}

// RUBiSCatalog returns a compact catalog for the RUBiS auction site
// (1M users, 10,000 active items, 500,000 old items).
func RUBiSCatalog() Catalog {
	return Catalog{
		Benchmark: "RUBiS",
		Reads: []TxnTemplate{
			{Name: "ViewItem", ReadOnly: true, Table: "items", ReadRows: 3, Weight: 30},
			{Name: "SearchItemsByCategory", ReadOnly: true, Table: "items", ReadRows: 15, Weight: 25},
			{Name: "ViewBidHistory", ReadOnly: true, Table: "bids", ReadRows: 10, Weight: 20},
			{Name: "ViewUserInfo", ReadOnly: true, Table: "users", ReadRows: 2, Weight: 15},
			{Name: "BrowseCategories", ReadOnly: true, Table: "categories", ReadRows: 8, Weight: 10},
		},
		Updates: []TxnTemplate{
			{Name: "PlaceBid", Table: "bids", ReadRows: 2, Writes: 2, Weight: 55},
			{Name: "BuyNow", Table: "items", ReadRows: 2, Writes: 2, Weight: 20},
			{Name: "StoreComment", Table: "comments", ReadRows: 1, Writes: 2, Weight: 15},
			{Name: "RegisterItem", Table: "items", ReadRows: 0, Writes: 1, Weight: 10},
		},
		Tables: map[string]int{
			"users":      100000,
			"items":      10000,
			"old_items":  50000,
			"bids":       200000,
			"comments":   50000,
			"categories": 20,
		},
	}
}

// CatalogFor returns the catalog matching a mix's benchmark.
func CatalogFor(m Mix) (Catalog, error) {
	switch m.Benchmark {
	case "TPC-W":
		return TPCWCatalog(), nil
	case "RUBiS":
		return RUBiSCatalog(), nil
	default:
		return Catalog{}, fmt.Errorf("workload: no catalog for benchmark %q", m.Benchmark)
	}
}

// pick selects a template from ts proportionally to Weight.
func pick(ts []TxnTemplate, r *stats.Rand) TxnTemplate {
	var total float64
	for _, t := range ts {
		total += t.Weight
	}
	x := r.Float64() * total
	for _, t := range ts {
		x -= t.Weight
		if x < 0 {
			return t
		}
	}
	return ts[len(ts)-1]
}

// PickRead draws a read-only template proportionally to its weight.
// It panics if the catalog has no read templates.
func (c Catalog) PickRead(r *stats.Rand) TxnTemplate {
	if len(c.Reads) == 0 {
		panic("workload: catalog has no read templates")
	}
	return pick(c.Reads, r)
}

// PickUpdate draws an update template proportionally to its weight.
// It panics if the catalog has no update templates.
func (c Catalog) PickUpdate(r *stats.Rand) TxnTemplate {
	if len(c.Updates) == 0 {
		panic("workload: catalog has no update templates")
	}
	return pick(c.Updates, r)
}

// Pick draws a template following the mix's read/update fractions.
func (c Catalog) Pick(m Mix, r *stats.Rand) TxnTemplate {
	if m.Pw > 0 && r.Bernoulli(m.Pw) {
		return c.PickUpdate(r)
	}
	return c.PickRead(r)
}

// Validate checks weights, table references and row counts.
func (c Catalog) Validate() error {
	if len(c.Reads) == 0 {
		return fmt.Errorf("workload: catalog %s has no read templates", c.Benchmark)
	}
	all := append(append([]TxnTemplate(nil), c.Reads...), c.Updates...)
	for _, t := range all {
		if t.Weight <= 0 {
			return fmt.Errorf("workload: template %s has non-positive weight", t.Name)
		}
		if t.ReadOnly && t.Writes > 0 {
			return fmt.Errorf("workload: read-only template %s writes rows", t.Name)
		}
		if !t.ReadOnly && t.Writes <= 0 {
			return fmt.Errorf("workload: update template %s writes nothing", t.Name)
		}
		if _, ok := c.Tables[t.Table]; !ok {
			return fmt.Errorf("workload: template %s references unknown table %q", t.Name, t.Table)
		}
	}
	for name, rows := range c.Tables {
		if rows <= 0 {
			return fmt.Errorf("workload: table %q has %d rows", name, rows)
		}
	}
	return nil
}
