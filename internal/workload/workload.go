// Package workload defines the transactional workloads the paper
// evaluates: the three TPC-W mixes (browsing, shopping, ordering) and
// the two RUBiS mixes (browsing, bidding), with the exact parameters
// of Tables 2-5 of the paper.
//
// A Mix bundles everything the analytical models (§3) and the
// simulated prototypes (§5-6) need: the read/update fractions Pr/Pw,
// the number of emulated clients per replica, the think time, and the
// measured per-resource service demands rc, wc and ws for read-only
// transactions, update transactions and propagated writesets.
//
// All times are in seconds.
package workload

import (
	"fmt"
	"math"
)

// Resource identifies a physical resource of a database replica.
type Resource int

const (
	// CPU is the replica's processor.
	CPU Resource = iota
	// Disk is the replica's disk.
	Disk
	// NumResources is the number of modeled physical resources.
	NumResources
)

// String returns the conventional resource name.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case Disk:
		return "Disk"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Demand holds a per-resource service demand vector in seconds.
// Index with a Resource.
type Demand [NumResources]float64

// Total returns the sum over resources, i.e. the total service time of
// one visit assuming no queueing.
func (d Demand) Total() float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// Scale returns the demand multiplied by f at every resource.
func (d Demand) Scale(f float64) Demand {
	var out Demand
	for i, v := range d {
		out[i] = v * f
	}
	return out
}

// Add returns the element-wise sum of two demands.
func (d Demand) Add(o Demand) Demand {
	var out Demand
	for i, v := range d {
		out[i] = v + o[i]
	}
	return out
}

// Mix is one benchmark workload mix with all model parameters.
type Mix struct {
	Benchmark string  // "TPC-W" or "RUBiS"
	Name      string  // mix name, e.g. "shopping"
	Pr        float64 // fraction of read-only transactions
	Pw        float64 // fraction of update transactions
	Clients   int     // emulated clients per replica (C in Table 2/4)
	Think     float64 // client think time Z in seconds

	// Measured standalone service demands (Tables 3/5).
	RC Demand // read-only transaction demand rc
	WC Demand // update transaction demand wc
	WS Demand // propagated writeset demand ws

	// Abort-model parameters (§3.3.1). UpdateOps is U, the number of
	// update operations per update transaction; DBUpdateSize is the
	// number of updatable objects. A1 is the measured standalone abort
	// probability; the TPC-W paper value is below 0.023%.
	UpdateOps    int
	DBUpdateSize int
	A1           float64

	// WritesetBytes is the average propagated writeset size, used by
	// the network sensitivity analysis (§6.3.1).
	WritesetBytes int
}

// ID returns a compact identifier such as "tpcw-shopping".
func (m Mix) ID() string {
	switch m.Benchmark {
	case "TPC-W":
		return "tpcw-" + m.Name
	case "RUBiS":
		return "rubis-" + m.Name
	default:
		return m.Benchmark + "-" + m.Name
	}
}

// String renders the mix for logs and tables.
func (m Mix) String() string {
	return fmt.Sprintf("%s %s (Pr=%.0f%% Pw=%.0f%% C=%d Z=%.0fms)",
		m.Benchmark, m.Name, m.Pr*100, m.Pw*100, m.Clients, m.Think*1000)
}

// Validate checks the internal consistency of the mix parameters.
func (m Mix) Validate() error {
	if m.Pr < 0 || m.Pw < 0 || math.Abs(m.Pr+m.Pw-1) > 1e-9 {
		return fmt.Errorf("workload %s: Pr+Pw = %v, want 1", m.ID(), m.Pr+m.Pw)
	}
	if m.Clients <= 0 {
		return fmt.Errorf("workload %s: non-positive client count %d", m.ID(), m.Clients)
	}
	if m.Think < 0 {
		return fmt.Errorf("workload %s: negative think time", m.ID())
	}
	for r := Resource(0); r < NumResources; r++ {
		if m.RC[r] < 0 || m.WC[r] < 0 || m.WS[r] < 0 {
			return fmt.Errorf("workload %s: negative demand at %s", m.ID(), r)
		}
	}
	if m.Pw > 0 {
		if m.WC.Total() <= 0 {
			return fmt.Errorf("workload %s: updates present but wc is zero", m.ID())
		}
		if m.UpdateOps <= 0 || m.DBUpdateSize <= 0 {
			return fmt.Errorf("workload %s: abort parameters unset", m.ID())
		}
	}
	if m.A1 < 0 || m.A1 >= 1 {
		return fmt.Errorf("workload %s: A1 = %v out of [0,1)", m.ID(), m.A1)
	}
	return nil
}

// StandaloneDemand returns the average per-transaction demand at
// resource r on a standalone database (§3.3.1):
// D(1) = Pr*rc + Pw*wc/(1-A1).
func (m Mix) StandaloneDemand(r Resource) float64 {
	retry := 1.0
	if m.Pw > 0 {
		retry = 1 / (1 - m.A1)
	}
	return m.Pr*m.RC[r] + m.Pw*m.WC[r]*retry
}

// ms converts milliseconds to seconds for readable literals below.
func ms(v float64) float64 { return v / 1000 }

// Abort parameters: updates touch a handful of rows drawn uniformly
// from the updatable-row pool. The per-mix A1 values below follow the
// paper's standalone abort derivation (§3.3.1),
// A1 ≈ U²·L(1)·W / DbUpdateSize, evaluated at each mix's standalone
// operating point, so that the analytical model and the simulated
// prototype (which detects real row conflicts) agree on the conflict
// physics. All values satisfy the paper's report that A1 stays below
// 0.023% (§6.2.1).
const (
	tpcwUpdateOps    = 3
	tpcwUpdateSize   = 250000
	rubisUpdateOps   = 2
	rubisUpdateSize  = 1000000
	tpcwBrowsingA1   = 5.8e-6 // U²·L1·W1/pool = 9·0.138s·1.17/s / 250k
	tpcwShoppingA1   = 3.3e-5 // 9·0.167s·5.56/s / 250k
	tpcwOrderingA1   = 6.3e-5 // 9·0.077s·22.7/s / 250k
	rubisBiddingA1   = 2.0e-5 // 4·0.736s·6.94/s / 1M
	tpcwWritesetLen  = 275
	rubisWritesetLen = 272
)

// TPCWBrowsing returns the TPC-W browsing mix (5% updates, Table 2/3).
func TPCWBrowsing() Mix {
	return Mix{
		Benchmark: "TPC-W", Name: "browsing",
		Pr: 0.95, Pw: 0.05, Clients: 30, Think: 1.0,
		RC:        Demand{ms(41.62), ms(14.56)},
		WC:        Demand{ms(17.47), ms(8.74)},
		WS:        Demand{ms(3.48), ms(2.62)},
		UpdateOps: tpcwUpdateOps, DBUpdateSize: tpcwUpdateSize, A1: tpcwBrowsingA1,
		WritesetBytes: tpcwWritesetLen,
	}
}

// TPCWShopping returns the TPC-W shopping mix (20% updates), the
// benchmark's main workload.
func TPCWShopping() Mix {
	return Mix{
		Benchmark: "TPC-W", Name: "shopping",
		Pr: 0.80, Pw: 0.20, Clients: 40, Think: 1.0,
		RC:        Demand{ms(41.43), ms(15.11)},
		WC:        Demand{ms(12.51), ms(6.05)},
		WS:        Demand{ms(3.18), ms(1.81)},
		UpdateOps: tpcwUpdateOps, DBUpdateSize: tpcwUpdateSize, A1: tpcwShoppingA1,
		WritesetBytes: tpcwWritesetLen,
	}
}

// TPCWOrdering returns the TPC-W ordering mix (50% updates).
func TPCWOrdering() Mix {
	return Mix{
		Benchmark: "TPC-W", Name: "ordering",
		Pr: 0.50, Pw: 0.50, Clients: 50, Think: 1.0,
		RC:        Demand{ms(22.46), ms(12.62)},
		WC:        Demand{ms(13.48), ms(8.34)},
		WS:        Demand{ms(4.04), ms(1.67)},
		UpdateOps: tpcwUpdateOps, DBUpdateSize: tpcwUpdateSize, A1: tpcwOrderingA1,
		WritesetBytes: tpcwWritesetLen,
	}
}

// RUBiSBrowsing returns the RUBiS browsing mix (read-only, Table 4/5).
func RUBiSBrowsing() Mix {
	return Mix{
		Benchmark: "RUBiS", Name: "browsing",
		Pr: 1.0, Pw: 0.0, Clients: 50, Think: 1.0,
		RC:            Demand{ms(25.29), ms(11.36)},
		WritesetBytes: rubisWritesetLen,
	}
}

// RUBiSBidding returns the RUBiS bidding mix (20% updates). Updates
// are disk-heavy: maintaining integrity constraints and indexes makes
// applying a writeset almost as expensive as the original transaction
// (§6.2.2).
func RUBiSBidding() Mix {
	return Mix{
		Benchmark: "RUBiS", Name: "bidding",
		Pr: 0.80, Pw: 0.20, Clients: 50, Think: 1.0,
		RC:        Demand{ms(25.29), ms(11.36)},
		WC:        Demand{ms(41.51), ms(48.61)},
		WS:        Demand{ms(9.83), ms(35.28)},
		UpdateOps: rubisUpdateOps, DBUpdateSize: rubisUpdateSize, A1: rubisBiddingA1,
		WritesetBytes: rubisWritesetLen,
	}
}

// AllTPCW returns the three TPC-W mixes in the paper's order.
func AllTPCW() []Mix {
	return []Mix{TPCWBrowsing(), TPCWShopping(), TPCWOrdering()}
}

// AllRUBiS returns the two RUBiS mixes.
func AllRUBiS() []Mix {
	return []Mix{RUBiSBrowsing(), RUBiSBidding()}
}

// All returns every benchmark mix the paper evaluates.
func All() []Mix {
	return append(AllTPCW(), AllRUBiS()...)
}

// ByID returns the mix with the given ID (e.g. "tpcw-shopping") and
// whether it exists.
func ByID(id string) (Mix, bool) {
	for _, m := range All() {
		if m.ID() == id {
			return m, true
		}
	}
	return Mix{}, false
}
