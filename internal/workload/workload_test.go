package workload

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestAllMixesValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.ID(), err)
		}
	}
}

func TestTable2Parameters(t *testing.T) {
	// Table 2 of the paper.
	cases := []struct {
		mix     Mix
		pr, pw  float64
		clients int
	}{
		{TPCWBrowsing(), 0.95, 0.05, 30},
		{TPCWShopping(), 0.80, 0.20, 40},
		{TPCWOrdering(), 0.50, 0.50, 50},
	}
	for _, c := range cases {
		if c.mix.Pr != c.pr || c.mix.Pw != c.pw || c.mix.Clients != c.clients {
			t.Errorf("%s: got Pr=%v Pw=%v C=%d", c.mix.ID(), c.mix.Pr, c.mix.Pw, c.mix.Clients)
		}
		if c.mix.Think != 1.0 {
			t.Errorf("%s: think time %v, want 1s", c.mix.ID(), c.mix.Think)
		}
	}
}

func TestTable3ServiceDemands(t *testing.T) {
	// Spot-check exact Table 3 values (stored in seconds).
	sh := TPCWShopping()
	if math.Abs(sh.RC[CPU]-0.04143) > 1e-9 {
		t.Errorf("shopping rcCPU = %v", sh.RC[CPU])
	}
	if math.Abs(sh.WC[Disk]-0.00605) > 1e-9 {
		t.Errorf("shopping wcDisk = %v", sh.WC[Disk])
	}
	if math.Abs(sh.WS[CPU]-0.00318) > 1e-9 {
		t.Errorf("shopping wsCPU = %v", sh.WS[CPU])
	}
	ord := TPCWOrdering()
	if math.Abs(ord.RC[CPU]-0.02246) > 1e-9 {
		t.Errorf("ordering rcCPU = %v", ord.RC[CPU])
	}
}

func TestTable4And5RUBiS(t *testing.T) {
	br := RUBiSBrowsing()
	if br.Pw != 0 || br.Pr != 1 {
		t.Errorf("rubis browsing mix fractions: Pr=%v Pw=%v", br.Pr, br.Pw)
	}
	if br.WC.Total() != 0 {
		t.Errorf("browsing mix should have no update demand")
	}
	bid := RUBiSBidding()
	if math.Abs(bid.WC[Disk]-0.04861) > 1e-9 {
		t.Errorf("bidding wcDisk = %v", bid.WC[Disk])
	}
	if math.Abs(bid.WS[Disk]-0.03528) > 1e-9 {
		t.Errorf("bidding wsDisk = %v", bid.WS[Disk])
	}
	// §6.2.2: applying a writeset costs only slightly less than the
	// original update, visible in the disk demands.
	if bid.WS[Disk] >= bid.WC[Disk] {
		t.Errorf("writeset disk demand should be below update demand")
	}
	if bid.WS[Disk] < bid.WC[Disk]/2 {
		t.Errorf("bidding writesets should be nearly as expensive as updates")
	}
}

func TestStandaloneDemand(t *testing.T) {
	m := TPCWOrdering()
	want := 0.5*0.02246 + 0.5*0.01348/(1-m.A1)
	if got := m.StandaloneDemand(CPU); math.Abs(got-want) > 1e-12 {
		t.Errorf("StandaloneDemand(CPU) = %v, want %v", got, want)
	}
	// Read-only mix: no retry inflation even with A1 set.
	br := RUBiSBrowsing()
	if got := br.StandaloneDemand(Disk); math.Abs(got-br.RC[Disk]) > 1e-15 {
		t.Errorf("read-only StandaloneDemand = %v", got)
	}
}

func TestValidateCatchesBadMixes(t *testing.T) {
	bad := TPCWShopping()
	bad.Pw = 0.5 // Pr+Pw != 1
	if bad.Validate() == nil {
		t.Error("unbalanced fractions not rejected")
	}
	bad = TPCWShopping()
	bad.Clients = 0
	if bad.Validate() == nil {
		t.Error("zero clients not rejected")
	}
	bad = TPCWShopping()
	bad.RC[CPU] = -1
	if bad.Validate() == nil {
		t.Error("negative demand not rejected")
	}
	bad = TPCWShopping()
	bad.A1 = 1.5
	if bad.Validate() == nil {
		t.Error("A1 out of range not rejected")
	}
	bad = TPCWShopping()
	bad.UpdateOps = 0
	if bad.Validate() == nil {
		t.Error("missing abort parameters not rejected")
	}
}

func TestByID(t *testing.T) {
	m, ok := ByID("tpcw-shopping")
	if !ok || m.Name != "shopping" {
		t.Fatalf("ByID(tpcw-shopping) = %v, %v", m, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID found")
	}
}

func TestIDAndString(t *testing.T) {
	if got := RUBiSBidding().ID(); got != "rubis-bidding" {
		t.Errorf("ID = %q", got)
	}
	s := TPCWBrowsing().String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestResourceString(t *testing.T) {
	if CPU.String() != "CPU" || Disk.String() != "Disk" {
		t.Error("resource names wrong")
	}
	if Resource(5).String() != "Resource(5)" {
		t.Error("unknown resource name wrong")
	}
}

func TestDemandArithmetic(t *testing.T) {
	d := Demand{0.01, 0.02}
	if math.Abs(d.Total()-0.03) > 1e-15 {
		t.Errorf("Total = %v", d.Total())
	}
	s := d.Scale(2)
	if s[CPU] != 0.02 || s[Disk] != 0.04 {
		t.Errorf("Scale = %v", s)
	}
	a := d.Add(Demand{0.001, 0.002})
	if math.Abs(a[CPU]-0.011) > 1e-15 || math.Abs(a[Disk]-0.022) > 1e-15 {
		t.Errorf("Add = %v", a)
	}
}

func TestCatalogsValidate(t *testing.T) {
	for _, c := range []Catalog{TPCWCatalog(), RUBiSCatalog()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Benchmark, err)
		}
	}
}

func TestCatalogFor(t *testing.T) {
	c, err := CatalogFor(TPCWShopping())
	if err != nil || c.Benchmark != "TPC-W" {
		t.Fatalf("CatalogFor TPC-W: %v %v", c.Benchmark, err)
	}
	c, err = CatalogFor(RUBiSBidding())
	if err != nil || c.Benchmark != "RUBiS" {
		t.Fatalf("CatalogFor RUBiS: %v %v", c.Benchmark, err)
	}
	if _, err := CatalogFor(Mix{Benchmark: "xyz"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPickRespectsMixFractions(t *testing.T) {
	r := stats.NewRand(101)
	c := TPCWCatalog()
	m := TPCWShopping()
	updates := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if !c.Pick(m, r).ReadOnly {
			updates++
		}
	}
	got := float64(updates) / n
	if math.Abs(got-m.Pw) > 0.01 {
		t.Errorf("update fraction = %v, want %v", got, m.Pw)
	}
}

func TestPickReadOnlyMixNeverUpdates(t *testing.T) {
	r := stats.NewRand(5)
	c := RUBiSCatalog()
	m := RUBiSBrowsing()
	for i := 0; i < 10000; i++ {
		if !c.Pick(m, r).ReadOnly {
			t.Fatal("read-only mix drew an update template")
		}
	}
}

func TestPickWeightsRoughlyRespected(t *testing.T) {
	r := stats.NewRand(7)
	c := TPCWCatalog()
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[c.PickUpdate(r).Name]++
	}
	// ShoppingCart has weight 50 of 100.
	got := float64(counts["ShoppingCart"]) / n
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("ShoppingCart frequency = %v, want 0.5", got)
	}
}

func TestPickPanicsOnEmptyClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickRead on empty catalog did not panic")
		}
	}()
	Catalog{}.PickRead(stats.NewRand(1))
}

func TestCatalogValidateCatchesProblems(t *testing.T) {
	c := TPCWCatalog()
	c.Reads[0].Weight = 0
	if c.Validate() == nil {
		t.Error("zero weight accepted")
	}
	c = TPCWCatalog()
	c.Updates[0].Writes = 0
	if c.Validate() == nil {
		t.Error("non-writing update accepted")
	}
	c = TPCWCatalog()
	c.Reads[0].Table = "missing"
	if c.Validate() == nil {
		t.Error("unknown table accepted")
	}
	c = TPCWCatalog()
	c.Tables["item"] = 0
	if c.Validate() == nil {
		t.Error("empty table accepted")
	}
	if (Catalog{Benchmark: "x"}).Validate() == nil {
		t.Error("catalog without reads accepted")
	}
}
