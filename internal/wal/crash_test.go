package wal

// The crash-injection harness: a miniature durable certifier host
// (certifier + WAL journal + snapshot-isolated database with the
// apply hook) runs a deterministic workload while a CrashFS kills the
// "process" at an armed filesystem operation. The harness then
// power-cycles the filesystem — dropping unsynced state (power loss)
// or keeping it (pure process kill) — reopens the WAL, rebuilds the
// node, and asserts the durability contract:
//
//  1. every acknowledged commit is recovered, byte for byte;
//  2. nothing beyond the acknowledged set plus the single in-flight
//     request is recovered (no phantom commits), and under power-loss
//     semantics an unsynced in-flight commit is NOT visible;
//  3. the recovered versions are a dense prefix — no holes a replica
//     could stall on;
//  4. the recovered certifier state equals a reference certifier that
//     processed exactly the recovered prefix and never crashed
//     (records, version, pruning horizon and conflict decisions);
//  5. the recovered database, after catching up from the recovered
//     certification log, is row-for-row identical to the reference.
//
// TestCrashSweep arms every operation the workload performs (and, for
// writes, a torn mid-write variant) under both power-cycle models —
// every kill point there is, found by dry run rather than enumeration.
// TestCrashNamedPoints pins the ~dozen semantically interesting points
// (mid-record, post-write-pre-fsync, post-fsync-pre-ack, mid-batch,
// each compaction stage, ...) to explicit assertions, and
// TestCrashDuringRecovery crashes the recovery itself.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/certifier"
	"repro/internal/repl/pipeline"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// step is one action of the deterministic workload.
type step struct {
	kind string // "table", "load", "commit", "batch", "conflict", "compact"
	n    int    // batch size (batch), rows (load)
	key  int64  // row written (commit/conflict)
}

// crashScript is the workload every crash run executes: schema, loads,
// single commits, a group-commit batch, a compaction, more commits and
// a second batch, with certification aborts sprinkled in. Deterministic
// by construction — no clocks, no randomness.
func crashScript() []step {
	s := []step{
		{kind: "table"},
		{kind: "load", n: 8},
		{kind: "load", n: 8},
	}
	for i := 0; i < 6; i++ {
		s = append(s, step{kind: "commit", key: int64(i % 5)})
		if i == 2 {
			s = append(s, step{kind: "conflict", key: int64(1)})
		}
	}
	s = append(s, step{kind: "batch", n: 3})
	s = append(s, step{kind: "compact"})
	for i := 6; i < 11; i++ {
		s = append(s, step{kind: "commit", key: int64(i % 7)})
	}
	s = append(s, step{kind: "conflict", key: int64(2)})
	s = append(s, step{kind: "batch", n: 2})
	return s
}

// crashRun is the outcome of one scripted run against a (possibly
// armed) filesystem.
type crashRun struct {
	fs  *MemFS
	cfs *CrashFS

	acked []certifier.Record // Certify/CertifyBatch acknowledged these
	// inflight are writesets submitted in the call the crash landed in:
	// their durability is unknown (the "ack lost in transit" window).
	inflight []writeset.Writeset
	// postCrash are writesets submitted after the crash had already
	// fired; none of them may ever be recovered.
	postCrash []writeset.Writeset
	loadDone  bool // both loads applied before the crash
}

// value derives the deterministic row value written by the i-th
// certified attempt.
func value(attempt int) string { return fmt.Sprintf("w%d", attempt) }

// runCrashScript executes the workload with a crash armed at op index
// armAt (-1 = never) and cut torn-write bytes, applying serially.
func runCrashScript(t *testing.T, armAt, cut int) *crashRun {
	t.Helper()
	return runCrashScriptWorkers(t, armAt, cut, 1)
}

// tryApply drains recs through the pipeline applier, tolerating the
// injected crash: after the CrashFS fired, the journal hook fails and
// the applier's invariant panic is expected — anything else is a real
// bug and re-panics. It returns how many records applied.
func tryApply(cfs *CrashFS, ap *pipeline.Applier, recs []certifier.Record) int {
	before := ap.Applied()
	func() {
		defer func() {
			if e := recover(); e != nil && !cfs.Crashed() {
				panic(e)
			}
		}()
		ap.Apply(recs)
	}()
	return int(ap.Applied() - before)
}

// runCrashScriptWorkers executes the workload with the local apply
// stream flowing through a pipeline applier with the given worker
// count. workers == 1 produces exactly the serial harness's WAL
// operation sequence (the named-point locators depend on that);
// workers > 1 journals each group-commit batch version-ordered ahead
// of the conflict-aware parallel install, which is precisely the
// ordering claim TestCrashSweepParallel exists to break.
func runCrashScriptWorkers(t *testing.T, armAt, cut, workers int) *crashRun {
	t.Helper()
	r := &crashRun{fs: NewMemFS()}
	r.cfs = NewCrashFS(r.fs, armAt, cut)
	w, _, err := Open(Options{FS: r.cfs, Fsync: true})
	if err != nil {
		if armAt >= 0 && errors.Is(err, ErrCrashed) {
			return r // crashed inside Open of a fresh log
		}
		t.Fatalf("open: %v", err)
	}
	cert := certifier.New()
	cert.SetJournal(w)
	db := sidb.New()
	db.SetJournal(func(ws writeset.Writeset, version int64) error {
		return w.AppendApply(version, ws)
	})
	ap := pipeline.NewApplier(db, workers)
	attempt := 0

	submit := func(ws writeset.Writeset) {
		if r.cfs.Crashed() {
			r.postCrash = append(r.postCrash, ws)
		} else {
			r.inflight = append(r.inflight, ws)
		}
	}
	// ack records acknowledged commits and applies them locally in
	// version order (journaling the applies, then the cursor — the
	// cursor means "everything at or below me is applied").
	ack := func(recs ...certifier.Record) {
		if len(recs) == 0 {
			return // a batch whose requests all aborted
		}
		r.acked = append(r.acked, recs...)
		if n := tryApply(r.cfs, ap, recs); n == len(recs) {
			_ = w.AppendCursor(recs[n-1].Version)
		}
	}

	for _, st := range crashScript() {
		switch st.kind {
		case "table":
			if db.CreateTable("t") == nil {
				_ = w.AppendTable("t")
			}
		case "load":
			start := 8 * db.Version() // loads are the first two applies
			lws := writeset.FromRows("t", start, loadValues(st.n, start))
			if err := db.ApplyWriteset(lws, db.Version()+1); err == nil && start == 8 {
				r.loadDone = true
			}
		case "commit":
			attempt++
			ws := writeset.New([]writeset.Entry{{
				Key:   writeset.Key{Table: "t", Row: st.key},
				Value: value(attempt),
			}})
			submit(ws)
			out, err := cert.Certify(cert.Version(), ws)
			if err == nil && out.Committed {
				r.inflight = r.inflight[:len(r.inflight)-1]
				ack(certifier.Record{Version: out.Version, Writeset: ws})
			}
		case "conflict":
			// A snapshot behind the newest writer of key: certifies to
			// an abort, touching neither the journal nor the log.
			attempt++
			ws := writeset.New([]writeset.Entry{{
				Key:   writeset.Key{Table: "t", Row: st.key},
				Value: value(attempt),
			}})
			out, err := cert.Certify(0, ws)
			if err == nil && out.Committed {
				t.Fatalf("conflict step committed (version %d)", out.Version)
			}
		case "batch":
			reqs := make([]certifier.Request, st.n)
			snap := cert.Version()
			for i := range reqs {
				attempt++
				reqs[i] = certifier.Request{Snapshot: snap, Writeset: writeset.New([]writeset.Entry{{
					Key:   writeset.Key{Table: "t", Row: int64(20 + i)},
					Value: value(attempt),
				}})}
				submit(reqs[i].Writeset)
			}
			results, err := cert.CertifyBatch(reqs)
			if err == nil {
				// The whole batch is durable: everything leaves the
				// in-flight set, commits ack and apply in version order.
				r.inflight = r.inflight[:len(r.inflight)-st.n]
				var committed []certifier.Record
				for i, res := range results {
					if res.Err == nil && res.Outcome.Committed {
						committed = append(committed, certifier.Record{Version: res.Outcome.Version, Writeset: reqs[i].Writeset})
					}
				}
				if workers > 1 {
					// One applier batch: the parallel install the sweep
					// is probing. A single cursor retires the batch.
					ack(committed...)
				} else {
					// Record-at-a-time, preserving the serial harness's
					// exact WAL operation sequence.
					for _, rec := range committed {
						ack(rec)
					}
				}
			}
		case "compact":
			applied := int64(0)
			if n := len(r.acked); n > 0 {
				applied = r.acked[n-1].Version
			}
			local, state, err := consistentDumpForTest(db)
			if err == nil {
				_ = w.Compact(applied, applied, local, local, db.Tables(), state)
			}
		}
	}
	w.Close()
	return r
}

// loadValues builds the deterministic bulk-load values for rows
// [start, start+n).
func loadValues(n int, start int64) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("load-%d", start+int64(i))
	}
	return out
}

// consistentDumpForTest snapshots the database through one read
// transaction (same capture the server engines use).
func consistentDumpForTest(db *sidb.DB) (int64, map[string]map[int64]string, error) {
	tx := db.Begin()
	defer tx.Abort()
	state := make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		rows, err := tx.Scan(name)
		if err != nil {
			return 0, nil, err
		}
		state[name] = rows
	}
	return tx.Snapshot(), state, nil
}

// recoverNode reopens the WAL after a power cycle and rebuilds the
// node: database from the apply stream, certifier from the certified
// records, database catch-up from the recovered log.
func recoverNode(t *testing.T, fs *MemFS, keepUnsynced bool) (*Recovered, *certifier.Certifier, *sidb.DB) {
	t.Helper()
	return recoverNodeWorkers(t, fs, keepUnsynced, 1)
}

// recoverNodeWorkers is recoverNode with the catch-up apply running
// through a pipeline applier at the given worker count — a restarted
// replica's parallel catch-up.
func recoverNodeWorkers(t *testing.T, fs *MemFS, keepUnsynced bool, workers int) (*Recovered, *certifier.Certifier, *sidb.DB) {
	t.Helper()
	fs.PowerCycle(keepUnsynced)
	w, rec, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	w.Close()
	cert := certifier.NewFromRecords(rec.Records, rec.Base)
	db := sidb.New()
	if err := rec.Restore(db); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Catch up like a restarted replica: apply every certified record
	// past the recovered cursor.
	ap := pipeline.NewApplier(db, workers)
	if err := ap.Reset(func(int64) (int64, error) { return rec.Cursor, nil }); err != nil {
		t.Fatal(err)
	}
	pending := cert.Since(rec.Cursor)
	if n := ap.Apply(pending); n != len(pending) {
		t.Fatalf("catch-up applied %d of %d records", n, len(pending))
	}
	return rec, cert, db
}

// referenceNode replays the workload's durable prefix on a never-
// crashed node: the original submission order truncated to the
// recovered commit count, plus the same compaction horizon.
func referenceNode(t *testing.T, upTo int64, base int64) (*certifier.Certifier, *sidb.DB) {
	t.Helper()
	cert := certifier.New()
	db := sidb.New()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	attempt := 0
	commit := func(ws writeset.Writeset, snap int64) {
		if cert.Version() >= upTo {
			return
		}
		out, err := cert.Certify(snap, ws)
		if err != nil {
			t.Fatalf("reference certify: %v", err)
		}
		if out.Committed {
			if err := db.ApplyWriteset(ws, db.Version()+1); err != nil {
				t.Fatalf("reference apply: %v", err)
			}
		}
	}
	for _, st := range crashScript() {
		switch st.kind {
		case "load":
			start := 8 * db.Version()
			if err := db.ApplyWriteset(writeset.FromRows("t", start, loadValues(st.n, start)), db.Version()+1); err != nil {
				t.Fatal(err)
			}
		case "commit":
			attempt++
			commit(writeset.New([]writeset.Entry{{
				Key:   writeset.Key{Table: "t", Row: st.key},
				Value: value(attempt),
			}}), cert.Version())
		case "conflict":
			attempt++
			if cert.Version() >= upTo {
				continue
			}
			out, err := cert.Certify(0, writeset.New([]writeset.Entry{{
				Key:   writeset.Key{Table: "t", Row: st.key},
				Value: value(attempt),
			}}))
			if err != nil || out.Committed {
				t.Fatalf("reference conflict step: %+v, %v", out, err)
			}
		case "batch":
			snap := cert.Version()
			for i := 0; i < st.n; i++ {
				attempt++
				commit(writeset.New([]writeset.Entry{{
					Key:   writeset.Key{Table: "t", Row: int64(20 + i)},
					Value: value(attempt),
				}}), snap)
			}
		}
	}
	if base > 0 {
		cert.GC(base)
	}
	return cert, db
}

// checkInvariants asserts the durability contract for one crash run.
func checkInvariants(t *testing.T, label string, r *crashRun, keepUnsynced bool) {
	t.Helper()
	checkInvariantsWorkers(t, label, r, keepUnsynced, 1)
}

// checkInvariantsWorkers asserts the durability contract with the
// recovery catch-up applying at the given worker count.
func checkInvariantsWorkers(t *testing.T, label string, r *crashRun, keepUnsynced bool, workers int) {
	t.Helper()
	rec, cert, db := recoverNodeWorkers(t, r.fs, keepUnsynced, workers)

	// (3) dense prefix above the compaction base.
	for i, c := range rec.Records {
		if want := rec.Base + int64(i) + 1; c.Version != want {
			t.Fatalf("%s: recovered versions have a hole: got %d at position %d (want %d)",
				label, c.Version, i, want)
		}
	}
	last := rec.LastVersion()

	// (1) every acked commit recovered, byte for byte.
	for _, a := range r.acked {
		if a.Version <= rec.Base {
			continue // compacted into the snapshot; its rows are checked below
		}
		i := a.Version - rec.Base - 1
		if i >= int64(len(rec.Records)) {
			t.Fatalf("%s: acked version %d lost (recovered up to %d)", label, a.Version, last)
		}
		got := rec.Records[i]
		if !reflect.DeepEqual(got.Writeset.Entries, a.Writeset.Entries) {
			t.Fatalf("%s: acked version %d corrupted: %+v vs %+v", label, a.Version, got.Writeset, a.Writeset)
		}
	}

	// (2) nothing phantom: recovered = acked + (subset of in-flight).
	maxAcked := ackedMax(r)
	if rec.Base > maxAcked {
		maxAcked = rec.Base
	}
	for _, c := range rec.Records {
		if c.Version <= maxAcked {
			continue
		}
		matched := false
		for _, ws := range r.inflight {
			if reflect.DeepEqual(c.Writeset.Entries, ws.Entries) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("%s: phantom recovered commit %d: %+v", label, c.Version, c.Writeset)
		}
		if !keepUnsynced {
			// Power loss: an unsynced in-flight record cannot have
			// survived, and a synced one would have been acknowledged
			// (the crash landed before its fsync returned). Either way
			// an unacked commit must not be visible.
			t.Fatalf("%s: unacked commit %d visible after power loss", label, c.Version)
		}
	}
	for _, ws := range r.postCrash {
		for _, c := range rec.Records {
			if reflect.DeepEqual(c.Writeset.Entries, ws.Entries) {
				t.Fatalf("%s: post-crash submission recovered at version %d", label, c.Version)
			}
		}
	}

	// (4) recovered certifier == never-crashed reference over the same
	// prefix: records, version, pruning horizon and decisions.
	refCert, refDB := referenceNode(t, last, rec.Base)
	if got, want := cert.Version(), refCert.Version(); got != want {
		t.Fatalf("%s: recovered version %d, reference %d", label, got, want)
	}
	if got, want := cert.LowWater(), refCert.LowWater(); got != want {
		t.Fatalf("%s: recovered lowWater %d, reference %d", label, got, want)
	}
	gotRecs, wantRecs := cert.Since(rec.Base), refCert.Since(rec.Base)
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("%s: recovered %d records, reference %d", label, len(gotRecs), len(wantRecs))
	}
	for i := range gotRecs {
		if gotRecs[i].Version != wantRecs[i].Version ||
			!reflect.DeepEqual(gotRecs[i].Writeset.Entries, wantRecs[i].Writeset.Entries) {
			t.Fatalf("%s: record %d diverges from reference: %+v vs %+v",
				label, i, gotRecs[i], wantRecs[i])
		}
	}
	// Identical certification decisions on a probe panel: for every
	// row the workload touches, a stale-snapshot probe must report the
	// same conflict verdict and version on both certifiers.
	for row := int64(0); row < 25; row++ {
		probe := writeset.New([]writeset.Entry{{Key: writeset.Key{Table: "t", Row: row}, Value: "probe"}})
		for _, snap := range []int64{rec.Base, last} {
			gc, gv := cert.Check(snap, probe)
			rc, rv := refCert.Check(snap, probe)
			if gc != rc || gv != rv {
				t.Fatalf("%s: probe row %d snap %d: recovered (%v,%d) reference (%v,%d)",
					label, row, snap, gc, gv, rc, rv)
			}
		}
	}

	// (5) the recovered database equals the reference after catch-up.
	// Loads are lazily durable (their fsync rides the first commit), so
	// the comparison is meaningful once any commit was acknowledged.
	if len(r.acked) > 0 {
		gotRows, err := db.Dump("t")
		if err != nil {
			t.Fatalf("%s: dump: %v", label, err)
		}
		wantRows, err := refDB.Dump("t")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRows, wantRows) {
			t.Fatalf("%s: recovered database diverges:\n got %v\nwant %v", label, gotRows, wantRows)
		}
	}
}

// TestCrashSweep kills the node at every filesystem operation the
// workload performs — and for write ops also mid-write — under both
// power-cycle models, and asserts the durability contract at each.
func TestCrashSweep(t *testing.T) {
	dry := runCrashScript(t, -1, 0)
	if dry.cfs.Crashed() {
		t.Fatal("dry run crashed")
	}
	trace := dry.cfs.Trace()
	if len(trace) < 30 {
		t.Fatalf("suspiciously small trace: %d ops", len(trace))
	}
	// The dry run must behave like a plain in-memory run.
	checkInvariants(t, "dry", dry, true)

	for op, desc := range trace {
		cuts := []int{0}
		if desc.Kind == "write" && desc.Bytes > 1 {
			cuts = append(cuts, desc.Bytes/2)
		}
		for _, cut := range cuts {
			for _, keep := range []bool{false, true} {
				label := fmt.Sprintf("op%d(%s %s %dB) cut=%d keep=%v",
					op, desc.Kind, desc.Name, desc.Bytes, cut, keep)
				r := runCrashScript(t, op, cut)
				if !r.cfs.Crashed() {
					t.Fatalf("%s: crash never fired", label)
				}
				checkInvariants(t, label, r, keep)
			}
		}
	}
}

// TestCrashSweepParallel re-runs the full crash sweep with the apply
// stage at workers=8, both during the live run (group-commit batches
// install through the conflict-aware parallel applier) and during
// recovery catch-up. The WAL ordering invariants — acked ⊆ recovered,
// dense version prefix, recovered state equal to the never-crashed
// reference — must be indistinguishable from serial apply: journaling
// runs version-ordered ahead of the parallel stage and the version
// counter retires batches whole, so no kill point may expose a torn
// or reordered apply stream.
func TestCrashSweepParallel(t *testing.T) {
	const workers = 8
	dry := runCrashScriptWorkers(t, -1, 0, workers)
	if dry.cfs.Crashed() {
		t.Fatal("dry run crashed")
	}
	trace := dry.cfs.Trace()
	if len(trace) < 30 {
		t.Fatalf("suspiciously small trace: %d ops", len(trace))
	}
	checkInvariantsWorkers(t, "dry", dry, true, workers)

	for op, desc := range trace {
		cuts := []int{0}
		if desc.Kind == "write" && desc.Bytes > 1 {
			cuts = append(cuts, desc.Bytes/2)
		}
		for _, cut := range cuts {
			for _, keep := range []bool{false, true} {
				label := fmt.Sprintf("op%d(%s %s %dB) cut=%d keep=%v workers=%d",
					op, desc.Kind, desc.Name, desc.Bytes, cut, keep, workers)
				r := runCrashScriptWorkers(t, op, cut, workers)
				if !r.cfs.Crashed() {
					t.Fatalf("%s: crash never fired", label)
				}
				checkInvariantsWorkers(t, label, r, keep, workers)
			}
		}
	}
}

// TestCrashNamedPoints pins the semantically distinct kill points of
// the commit and compaction paths to explicit scenarios, so the
// coverage the sweep provides is legible: each point is located in the
// dry-run trace by structure, not by brittle hard-coded indices.
func TestCrashNamedPoints(t *testing.T) {
	dry := runCrashScript(t, -1, 0)
	trace := dry.cfs.Trace()

	// Locators over the trace.
	nthMatch := func(n int, pred func(Op) bool) int {
		for i, op := range trace {
			if pred(op) {
				if n == 0 {
					return i
				}
				n--
			}
		}
		t.Fatalf("named point not found in trace %v", trace)
		return -1
	}
	isSegWrite := func(op Op) bool { return op.Kind == "write" && op.Name == segName }
	isSegSync := func(op Op) bool { return op.Kind == "sync" && op.Name == segName }
	// The first commit's journal write: the first seg write after the
	// epoch header (write 0) and the table/load applies (writes 1-3).
	firstCommitWrite := nthMatch(4, isSegWrite)
	if got := trace[firstCommitWrite]; got.Bytes < 2*headerSize {
		t.Fatalf("misidentified commit write: %+v", got)
	}
	firstCommitSync := -1
	for i := firstCommitWrite; i < len(trace); i++ {
		if isSegSync(trace[i]) {
			firstCommitSync = i
			break
		}
	}
	if firstCommitSync < 0 {
		t.Fatal("no fsync after first commit write")
	}
	// The batch write: the largest single segment write (three staged
	// writesets + marker in one buffer).
	batchWrite, batchBytes := -1, 0
	for i, op := range trace {
		if isSegWrite(op) && op.Bytes > batchBytes {
			batchWrite, batchBytes = i, op.Bytes
		}
	}
	tmpCreate := nthMatch(0, func(op Op) bool { return op.Kind == "create" && op.Name == tmpName })
	tmpWrite := nthMatch(0, func(op Op) bool { return op.Kind == "write" && op.Name == tmpName })
	tmpSync := nthMatch(0, func(op Op) bool { return op.Kind == "sync" && op.Name == tmpName })
	rename := nthMatch(0, func(op Op) bool { return op.Kind == "rename" })
	// The directory sync after the compaction rename (the fresh-log
	// creation issued the first one).
	dirSync := nthMatch(0, func(op Op) bool { return op.Kind == "sync-dir" })
	if dirSync < rename {
		dirSync = nthMatch(1, func(op Op) bool { return op.Kind == "sync-dir" })
	}

	points := []struct {
		name string
		op   int
		cut  int
		keep bool
		// strict demands that nothing beyond the acked set is
		// recovered (the in-flight request provably never persisted).
		strict bool
	}{
		{"commit-pre-write", firstCommitWrite, 0, true, true},
		{"commit-mid-record-torn", firstCommitWrite, 5, true, true},
		{"commit-mid-record-torn-powerloss", firstCommitWrite, 5, false, true},
		{"commit-post-write-pre-fsync-powerloss", firstCommitSync, 0, false, true},
		{"commit-post-write-pre-fsync-kill", firstCommitSync, 0, true, false}, // durable but unacked: may be visible
		{"batch-pre-write", batchWrite, 0, true, true},
		{"batch-torn-mid-batch", batchWrite, batchBytes / 2, true, true},
		{"batch-torn-mid-batch-powerloss", batchWrite, batchBytes / 2, false, true},
		{"compact-create-tmp", tmpCreate, 0, true, true},
		{"compact-mid-tmp-write", tmpWrite, batchBytes / 3, true, true},
		{"compact-post-tmp-pre-sync", tmpSync, 0, false, true},
		{"compact-pre-rename", rename, 0, true, true},
		{"compact-post-rename-pre-dirsync-powerloss", dirSync, 0, false, true},
		{"compact-post-rename-pre-dirsync-kill", dirSync, 0, true, true},
	}
	if len(points) < 10 {
		t.Fatalf("need >= 10 named kill points, have %d", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if p.op < 0 || seen[p.name] {
			t.Fatalf("bad point table: %+v", p)
		}
		seen[p.name] = true
		t.Run(p.name, func(t *testing.T) {
			r := runCrashScript(t, p.op, p.cut)
			if !r.cfs.Crashed() {
				t.Fatal("crash never fired")
			}
			checkInvariants(t, p.name, r, p.keep)
			if p.strict {
				// Re-verify the strict half directly: recovery holds
				// exactly the acked set (plus compacted history).
				rec, _, _ := recoverNode(t, r.fs, p.keep)
				if got, want := rec.LastVersion(), ackedMax(r); got != want {
					t.Fatalf("recovered to %d, acked up to %d", got, want)
				}
			}
		})
	}
}

func ackedMax(r *crashRun) int64 {
	max := int64(0)
	for _, a := range r.acked {
		if a.Version > max {
			max = a.Version
		}
	}
	return max
}

// TestCrashDuringRecovery crashes a node, then crashes the recovery's
// own filesystem operations (the torn-tail truncation), and checks the
// second recovery still satisfies the contract — recovery is
// idempotent.
func TestCrashDuringRecovery(t *testing.T) {
	// First crash: torn tail mid-commit-record.
	dry := runCrashScript(t, -1, 0)
	trace := dry.cfs.Trace()
	target := -1
	writes := 0
	for i, op := range trace {
		if op.Kind == "write" && op.Name == segName {
			if writes == 6 { // deep into the commit sequence
				target = i
				break
			}
			writes++
		}
	}
	if target < 0 {
		t.Fatal("target write not found")
	}
	r := runCrashScript(t, target, 7)
	if !r.cfs.Crashed() {
		t.Fatal("crash never fired")
	}

	// Recovery attempt 1: crash at its first mutating op (the
	// truncating reopen).
	r.fs.PowerCycle(true)
	cfs2 := NewCrashFS(r.fs, 0, 0)
	if _, _, err := Open(Options{FS: cfs2, Fsync: true}); err == nil {
		t.Fatal("armed recovery unexpectedly succeeded")
	} else if !errors.Is(err, ErrCrashed) && !strings.Contains(err.Error(), "crash") {
		t.Fatalf("unexpected recovery error: %v", err)
	}

	// Recovery attempt 2 completes and upholds the contract.
	checkInvariants(t, "double-crash", r, true)
}
