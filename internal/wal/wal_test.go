package wal

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/certifier"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// ws builds a small writeset writing value to (table, row).
func ws(table string, row int64, value string) writeset.Writeset {
	return writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: table, Row: row}, Value: value},
	})
}

// reopen power-cycles the fs (keeping unsynced bytes: a process kill)
// and opens a fresh WAL over it.
func reopen(t *testing.T, fs *MemFS, fsync bool) (*WAL, *Recovered) {
	t.Helper()
	fs.PowerCycle(true)
	w, rec, err := Open(Options{FS: fs, Fsync: fsync})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return w, rec
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w, rec, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 1 || len(rec.Records) != 0 || rec.Cursor != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	if err := w.AppendTable("item"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendApply(1, ws("item", 7, "load-7")); err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append([]certifier.Record{
		{Version: 1, Writeset: ws("item", 7, "v1")},
		{Version: 2, Writeset: ws("item", 8, "v2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendApply(2, ws("item", 7, "v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCursor(1); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec = reopen(t, fs, true)
	if got, want := rec.Tables, []string{"item"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tables %v, want %v", got, want)
	}
	if len(rec.Records) != 2 || rec.Records[0].Version != 1 || rec.Records[1].Version != 2 {
		t.Fatalf("records %+v", rec.Records)
	}
	if rec.Records[1].Writeset.Entries[0].Value != "v2" {
		t.Fatalf("writeset content lost: %+v", rec.Records[1].Writeset)
	}
	if len(rec.Applies) != 2 || rec.Applies[0].Local != 1 || rec.Applies[1].Local != 2 {
		t.Fatalf("applies %+v", rec.Applies)
	}
	if rec.Cursor != 1 {
		t.Fatalf("cursor %d, want 1", rec.Cursor)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("unexpected torn tail: %d bytes", rec.TornBytes)
	}
}

// TestStagedWithoutCommitMarkerDiscarded pins the atomicity rule: a
// certified writeset is committed only once a commit marker covering
// it is on disk.
func TestStagedWithoutCommitMarkerDiscarded(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "a")}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Manually append a writeset frame with no commit marker, as a
	// torn batch would leave behind.
	data, err := fs.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, frame(encodeWriteset(nil, 2, ws("t", 2, "b")))...)
	f, err := fs.Create(segName)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()

	_, rec := reopen(t, fs, false)
	if len(rec.Records) != 1 || rec.Records[0].Version != 1 {
		t.Fatalf("uncommitted staged record must be discarded, got %+v", rec.Records)
	}
	// The stale frame must also be truncated, not just skipped:
	// recovery reuses its version, and a frame left on disk would be
	// retroactively committed by the next marker at the reused version.
	if rec.TornBytes == 0 {
		t.Fatal("uncommitted staged frame left in the segment")
	}
}

// TestTornBatchFrameCannotResurrect pins the full failure the
// truncation prevents: a batch torn after its writeset frame but
// before the commit marker, a restart that reuses the version for a
// new acked commit, and a second restart — the never-acked writeset
// must not reappear as committed history at the reused version.
func TestTornBatchFrameCannotResurrect(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "v1")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// The torn batch: a valid KindWriteset frame for version 2 lands,
	// its commit marker does not. It was never acked.
	data, err := fs.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenAppend(segName, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame(encodeWriteset(nil, 2, ws("t", 9, "never-acked"))))
	f.Sync()
	f.Close()

	// Restart 1: version 2 is free again and a new commit is acked at
	// it.
	fs.PowerCycle(true)
	w2, rec, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.LastVersion(); got != 1 {
		t.Fatalf("recovered to version %d, want 1", got)
	}
	seq, err = w2.Append([]certifier.Record{{Version: 2, Writeset: ws("t", 1, "acked")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	// Restart 2: exactly one record at version 2, the acked one. Before
	// the truncation fix, the stale staged frame was re-committed by
	// the new marker and served to peers ahead of the acked record.
	_, rec = reopen(t, fs, true)
	var at2 []certifier.Record
	for _, r := range rec.Records {
		if r.Version == 2 {
			at2 = append(at2, r)
		}
	}
	if len(at2) != 1 || at2[0].Writeset.Entries[0].Value != "acked" {
		t.Fatalf("version 2 records %+v, want exactly the acked one", at2)
	}
}

// TestTornTailTruncation appends garbage and partial frames and checks
// Open cuts the file back to the last valid record.
func TestTornTailTruncation(t *testing.T) {
	for _, tearing := range []struct {
		name string
		tail []byte
	}{
		{"garbage", []byte{0xde, 0xad, 0xbe, 0xef, 0x01}},
		{"short header", []byte{0x00, 0x00}},
		{"length overruns file", []byte{0x00, 0x00, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 0x05}},
		{"zero length", make([]byte, headerSize)},
	} {
		t.Run(tearing.name, func(t *testing.T) {
			fs := NewMemFS()
			w, _, err := Open(Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "a")}}); err != nil {
				t.Fatal(err)
			}
			w.Close()
			data, _ := fs.ReadFile(segName)
			clean := len(data)
			f, _ := fs.Create(segName)
			f.Write(append(data, tearing.tail...))
			f.Close()

			w2, rec := reopen(t, fs, false)
			if rec.TornBytes != int64(len(tearing.tail)) {
				t.Fatalf("torn bytes %d, want %d", rec.TornBytes, len(tearing.tail))
			}
			if len(rec.Records) != 1 {
				t.Fatalf("records %+v", rec.Records)
			}
			// The file must have been physically truncated, and stay
			// appendable: a new record lands right after the cut.
			if _, err := w2.Append([]certifier.Record{{Version: 2, Writeset: ws("t", 2, "b")}}); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			data2, _ := fs.ReadFile(segName)
			if len(data2) <= clean {
				t.Fatalf("append after truncation did not grow the file (%d <= %d)", len(data2), clean)
			}
			_, rec2 := reopen(t, fs, false)
			if len(rec2.Records) != 2 {
				t.Fatalf("post-truncation append lost: %+v", rec2.Records)
			}
		})
	}
}

// TestBitFlipStopsAtPrefix flips every byte of a valid log in turn and
// asserts replay never panics and always yields a prefix of the
// original record sequence — the decoder satellite requirement.
func TestBitFlipStopsAtPrefix(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	w.AppendTable("t")
	for v := int64(1); v <= 5; v++ {
		if _, err := w.Append([]certifier.Record{{Version: v, Writeset: ws("t", v, fmt.Sprintf("v%d", v))}}); err != nil {
			t.Fatal(err)
		}
		w.AppendApply(v, ws("t", v, fmt.Sprintf("v%d", v)))
	}
	w.Close()
	data, _ := fs.ReadFile(segName)
	orig, origLen := replay(data)
	if int(origLen) != len(data) || len(orig.Records) != 5 {
		t.Fatalf("baseline replay broken: %d records, %d/%d bytes", len(orig.Records), origLen, len(data))
	}

	for i := range data {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			rec, good := replay(mut)
			if good > int64(len(mut)) {
				t.Fatalf("byte %d: good length %d beyond input %d", i, good, len(mut))
			}
			if len(rec.Records) > len(orig.Records) {
				t.Fatalf("byte %d: more records than written", i)
			}
			for j, r := range rec.Records {
				// Replay must stop at the first bad CRC: every surviving
				// record is byte-identical to the original prefix.
				if r.Version != orig.Records[j].Version ||
					!reflect.DeepEqual(r.Writeset.Entries, orig.Records[j].Writeset.Entries) {
					t.Fatalf("byte %d flip %#x: record %d diverged: %+v vs %+v",
						i, flip, j, r, orig.Records[j])
				}
			}
		}
	}
}

func TestCompaction(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	w.AppendTable("t")
	for v := int64(1); v <= 10; v++ {
		seq, err := w.Append([]certifier.Record{{Version: v, Writeset: ws("t", v%4, fmt.Sprintf("v%d", v))}})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(seq); err != nil {
			t.Fatal(err)
		}
		w.AppendApply(v, ws("t", v%4, fmt.Sprintf("v%d", v)))
		w.AppendCursor(v)
	}
	before := w.Size()

	// A table created after the snapshot was captured but before the
	// swap: its frame sits in the old segment only and must survive.
	w.AppendTable("late")

	// Snapshot at version 8: rows as of v8.
	state := map[string]map[int64]string{"t": {0: "v8", 1: "v9?", 2: "v6", 3: "v7"}}
	state["t"][1] = "v5" // row1 newest <=8 is v5 (9%4==1 is v9 >8)
	if err := w.Compact(8, 8, 8, 8, []string{"t"}, state); err != nil {
		t.Fatal(err)
	}
	if w.Size() >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, w.Size())
	}
	if w.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", w.Epoch())
	}
	// Appends continue on the new segment.
	seq, err := w.Append([]certifier.Record{{Version: 11, Writeset: ws("t", 11, "v11")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec := reopen(t, fs, true)
	if rec.Epoch != 2 || rec.Base != 8 {
		t.Fatalf("epoch/base %d/%d, want 2/8", rec.Epoch, rec.Base)
	}
	if rec.Snapshot == nil || rec.SnapGlobal != 8 || rec.SnapLocal != 8 {
		t.Fatalf("snapshot missing or misplaced: %+v", rec)
	}
	var versions []int64
	for _, r := range rec.Records {
		versions = append(versions, r.Version)
	}
	if !reflect.DeepEqual(versions, []int64{9, 10, 11}) {
		t.Fatalf("retained records %v, want [9 10 11]", versions)
	}
	if rec.Cursor < 8 {
		t.Fatalf("cursor %d below snapshot", rec.Cursor)
	}
	if !reflect.DeepEqual(rec.Tables, []string{"t", "late"}) {
		t.Fatalf("tables across compaction: %v (the race-window table must survive)", rec.Tables)
	}

	// Restore rebuilds the database: snapshot rows then applies 9, 10.
	db := sidb.New()
	if err := rec.Restore(db); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Dump("t")
	if err != nil {
		t.Fatal(err)
	}
	if rows[1] != "v9" || rows[2] != "v10" {
		t.Fatalf("restored rows %v", rows)
	}
	if db.Version() != 10 {
		t.Fatalf("restored local version %d, want 10", db.Version())
	}
}

// TestCompactRejectsStaleSnapshot pins the concurrent-compaction
// backstop: once a segment holds a snapshot at local version L, a
// Compact offering one below L (a capture taken before a competitor's
// rewrite won the race) is rejected instead of regressing the log —
// the rewrite would drop the newer snapshot frame while the applies it
// superseded are already gone, losing durably acked commits.
func TestCompactRejectsStaleSnapshot(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	w.AppendTable("t")
	for v := int64(1); v <= 4; v++ {
		if err := w.AppendApply(v, ws("t", v, fmt.Sprintf("v%d", v))); err != nil {
			t.Fatal(err)
		}
	}
	newer := map[string]map[int64]string{"t": {1: "v1", 2: "v2", 3: "v3", 4: "v4"}}
	if err := w.Compact(4, 4, 4, 4, []string{"t"}, newer); err != nil {
		t.Fatal(err)
	}
	stale := map[string]map[int64]string{"t": {1: "v1", 2: "v2"}}
	if err := w.Compact(2, 2, 2, 2, []string{"t"}, stale); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("stale compact: err=%v, want ErrStaleSnapshot", err)
	}
	// Equal is idempotent, not stale.
	if err := w.Compact(4, 4, 4, 4, []string{"t"}, newer); err != nil {
		t.Fatalf("same-version compact rejected: %v", err)
	}
	w.Close()

	// The guard survives a restart: the reopened segment remembers its
	// snapshot version.
	w2, rec := reopen(t, fs, true)
	if rec.SnapLocal != 4 || rec.Snapshot["t"][4] != "v4" {
		t.Fatalf("recovered snapshot local %d %+v, want 4 with v4", rec.SnapLocal, rec.Snapshot)
	}
	if err := w2.Compact(2, 2, 2, 2, []string{"t"}, stale); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("stale compact after reopen: err=%v, want ErrStaleSnapshot", err)
	}
	w2.Close()
}

// TestCompactionCrashLeavesOldOrNewLog power-cycles at every
// filesystem op inside Compact and checks the log is always one of the
// two complete states.
func TestCompactionCrashLeavesOldOrNewLog(t *testing.T) {
	build := func(fs FS) *WAL {
		w, _, err := Open(Options{FS: fs, Fsync: true})
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(1); v <= 6; v++ {
			seq, _ := w.Append([]certifier.Record{{Version: v, Writeset: ws("t", v, "x")}})
			w.Sync(seq)
		}
		return w
	}
	// Dry run to count compaction ops.
	mem := NewMemFS()
	cfs := NewCrashFS(mem, -1, 0)
	w := build(cfs)
	preOps := len(cfs.Trace())
	state := map[string]map[int64]string{"t": {1: "x", 2: "x", 3: "x", 4: "x"}}
	if err := w.Compact(4, 4, 4, 4, []string{"t"}, state); err != nil {
		t.Fatal(err)
	}
	totalOps := len(cfs.Trace())

	for op := preOps; op < totalOps; op++ {
		for _, keep := range []bool{false, true} {
			mem := NewMemFS()
			cfs := NewCrashFS(mem, op, 0)
			w := build(cfs)
			err := w.Compact(4, 4, 4, 4, []string{"t"}, state)
			if err == nil {
				t.Fatalf("op %d: compaction survived its own crash", op)
			}
			w.Close()
			mem.PowerCycle(keep)
			_, rec, err := Open(Options{FS: mem, Fsync: true})
			if err != nil {
				t.Fatalf("op %d keep=%v: reopen: %v", op, keep, err)
			}
			var versions []int64
			for _, r := range rec.Records {
				versions = append(versions, r.Version)
			}
			oldLog := reflect.DeepEqual(versions, []int64{1, 2, 3, 4, 5, 6}) && rec.Base == 0
			newLog := reflect.DeepEqual(versions, []int64{5, 6}) && rec.Base == 4 && rec.Snapshot != nil
			if !oldLog && !newLog {
				t.Fatalf("op %d keep=%v: neither old nor new log: versions %v base %d snap %v",
					op, keep, versions, rec.Base, rec.Snapshot != nil)
			}
		}
	}
}

// TestGroupFsync drives concurrent commits through Append+Sync and
// checks fsyncs are shared: far fewer syncs than commits.
func TestGroupFsync(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	base := fs.Syncs()
	const n = 64
	// Stage all commits first (the window concurrent commits share),
	// then let every committer demand durability at once: the first
	// fsync covers all staged writes, everyone else finds their
	// sequence already durable.
	seqs := make([]int64, n)
	for i := range seqs {
		v := int64(i + 1)
		seq, err := w.Append([]certifier.Record{{Version: v, Writeset: ws("t", v, "x")}})
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	var wg sync.WaitGroup
	for _, seq := range seqs {
		wg.Add(1)
		go func(seq int64) {
			defer wg.Done()
			if err := w.Sync(seq); err != nil {
				t.Error(err)
			}
		}(seq)
	}
	wg.Wait()
	syncs := fs.Syncs() - base
	if syncs != 1 {
		t.Fatalf("group commit should settle %d staged commits with one fsync, took %d", n, syncs)
	}
	w.Close()
	_, rec := reopen(t, fs, true)
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
}

// TestFsyncOffStillSurvivesProcessKill: without fsync the bytes are in
// the page cache; a process kill (keep unsynced) preserves them.
func TestFsyncOffStillSurvivesProcessKill(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "a")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil { // no-op
		t.Fatal(err)
	}
	// No Close: the "process" dies.
	fs.PowerCycle(true)
	_, rec, err := Open(Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("process kill lost records: %+v", rec.Records)
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "a")}}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := w.Sync(0); err == nil {
		t.Fatal("sync after close succeeded")
	}
	if err := w.Compact(0, 0, 0, 0, nil, nil); err == nil {
		t.Fatal("compact after close succeeded")
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := Open(Options{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 1 {
		t.Fatalf("fresh epoch %d", rec.Epoch)
	}
	w.AppendTable("t")
	seq, err := w.Append([]certifier.Record{{Version: 1, Writeset: ws("t", 1, "a")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(1, 1, 1, 1, []string{"t"}, map[string]map[int64]string{"t": {1: "a"}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.Base != 1 || rec2.Snapshot == nil {
		t.Fatalf("recovered %+v", rec2)
	}
}
