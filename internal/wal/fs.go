package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// FS is the slice of a filesystem the WAL needs: whole-file reads for
// replay, append-mode writes with torn-tail truncation, and the
// create/rename/sync-directory triple compaction uses to swap segments
// atomically. Production code uses DirFS; the crash-injection harness
// substitutes a MemFS wrapped in a CrashFS, which is what makes every
// kill point deterministic and power-loss (dropped unsynced writes)
// testable in-process.
type FS interface {
	// ReadFile returns the whole current contents of name, including
	// bytes written but not yet synced (the process's own view);
	// fs.ErrNotExist when absent.
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing, truncating any previous contents.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, first truncating it to size
	// bytes (the torn-tail cut). The file must exist.
	OpenAppend(name string, size int64) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// SyncDir makes preceding Create/Rename/Remove calls durable.
	SyncDir() error
}

// File is an open WAL segment.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes all written bytes durable.
	Sync() error
	Close() error
}

// dirFS is the production FS over one real directory.
type dirFS struct {
	dir string
}

// DirFS returns the production FS rooted at dir, creating it if
// needed.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &dirFS{dir: dir}, nil
}

func (d *dirFS) path(name string) string { return filepath.Join(d.dir, name) }

func (d *dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

func (d *dirFS) Create(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (d *dirFS) OpenAppend(name string, size int64) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (d *dirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *dirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func (d *dirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// inode is one MemFS file's content: the bytes a machine crash
// preserves (synced) and the bytes still in the page cache (buf).
// A process crash (SIGKILL) preserves both; power loss only synced.
type inode struct {
	synced []byte
	buf    []byte
}

func (n *inode) all() []byte {
	out := make([]byte, 0, len(n.synced)+len(n.buf))
	out = append(out, n.synced...)
	return append(out, n.buf...)
}

// MemFS is an in-memory FS that models durability precisely: file
// contents become durable on File.Sync, directory entries (creates,
// renames, removes) on SyncDir. PowerCycle simulates restarting the
// machine after a crash, discarding whatever the chosen model says a
// real disk would lose. It is safe for concurrent use.
type MemFS struct {
	mu sync.Mutex
	// files is the live (volatile) directory view; durable is the view
	// as of the last SyncDir. Both map to shared inodes.
	files   map[string]*inode
	durable map[string]*inode
	syncs   int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*inode), durable: make(map[string]*inode)}
}

// PowerCycle simulates a crash and restart. With keepUnsynced false it
// models power loss: unsynced file bytes vanish and un-synced
// directory operations roll back. With keepUnsynced true it models a
// pure process kill: everything written survives, including directory
// operations — the two extremes that bracket what a real crash
// preserves.
func (m *MemFS) PowerCycle(keepUnsynced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if keepUnsynced {
		for _, n := range m.files {
			n.synced = n.all()
			n.buf = nil
		}
		m.durable = make(map[string]*inode, len(m.files))
		for name, n := range m.files {
			m.durable[name] = n
		}
		return
	}
	m.files = make(map[string]*inode, len(m.durable))
	for name, n := range m.durable {
		n.buf = nil
		m.files[name] = n
	}
}

// Syncs returns the number of File.Sync calls issued so far (for
// group-commit assertions).
func (m *MemFS) Syncs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	return n.all(), nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &inode{}
	m.files[name] = n
	return &memFile{fs: m, n: n}, nil
}

func (m *MemFS) OpenAppend(name string, size int64) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	// Truncate to size: the torn tail is cut from the volatile view;
	// the synced prefix shrinks too if the cut lands inside it.
	all := n.all()
	if int64(len(all)) > size {
		all = all[:size]
	}
	if int64(len(n.synced)) > size {
		n.synced = append([]byte(nil), all...)
		n.buf = nil
	} else {
		n.buf = append([]byte(nil), all[len(n.synced):]...)
	}
	return &memFile{fs: m, n: n}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = n
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = make(map[string]*inode, len(m.files))
	for name, n := range m.files {
		m.durable[name] = n
	}
	return nil
}

// memFile is an open MemFS file.
type memFile struct {
	fs *MemFS
	n  *inode
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.n.buf = append(f.n.buf, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.syncs++
	f.n.synced = f.n.all()
	f.n.buf = nil
	return nil
}

func (f *memFile) Close() error { return nil }

// ErrCrashed is returned by every CrashFS operation at and after its
// armed kill point: the process is "dead", nothing more reaches disk.
var ErrCrashed = errors.New("wal: simulated crash")

// Op describes one mutating filesystem operation a CrashFS observed,
// for locating semantic kill points in a recorded trace.
type Op struct {
	// Kind is "write", "sync", "create", "open-append", "rename",
	// "remove" or "sync-dir".
	Kind string
	// Name is the file operated on ("" for sync-dir).
	Name string
	// Bytes is the write length (write ops only).
	Bytes int
}

// CrashFS wraps an FS and kills the process model at an armed
// operation index: the armed op (and everything after it) fails with
// ErrCrashed. For write ops, Cut controls how many bytes of the armed
// write still reach the file before the crash — the torn-write case.
// Every mutating op is recorded, so a dry run (armed at -1) yields the
// full op trace to sweep over.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	ops     []Op
	armAt   int // op index to crash at; -1 = never
	cut     int // bytes of an armed write that still land
	crashed bool
}

// NewCrashFS wraps inner, crashing at op index armAt (-1: never). cut
// is the number of bytes of an armed write that still reach the file.
func NewCrashFS(inner FS, armAt, cut int) *CrashFS {
	return &CrashFS{inner: inner, armAt: armAt, cut: cut}
}

// Trace returns the operations observed so far.
func (c *CrashFS) Trace() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Op(nil), c.ops...)
}

// Crashed reports whether the armed kill point has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step records an op and reports whether it must fail: the armed index
// was reached now, or the crash already happened. For the armed write
// op, cut bytes are reported to still land.
func (c *CrashFS) step(op Op) (dead bool, cut int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return true, 0
	}
	idx := len(c.ops)
	c.ops = append(c.ops, op)
	if idx == c.armAt {
		c.crashed = true
		return true, c.cut
	}
	return false, 0
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	// Reads are the restarted process's replay; they never crash.
	return c.inner.ReadFile(name)
}

func (c *CrashFS) Create(name string) (File, error) {
	if dead, _ := c.step(Op{Kind: "create", Name: name}); dead {
		return nil, ErrCrashed
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, name: name, f: f}, nil
}

func (c *CrashFS) OpenAppend(name string, size int64) (File, error) {
	if dead, _ := c.step(Op{Kind: "open-append", Name: name}); dead {
		return nil, ErrCrashed
	}
	f, err := c.inner.OpenAppend(name, size)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, name: name, f: f}, nil
}

func (c *CrashFS) Rename(oldname, newname string) error {
	if dead, _ := c.step(Op{Kind: "rename", Name: newname}); dead {
		return ErrCrashed
	}
	return c.inner.Rename(oldname, newname)
}

func (c *CrashFS) Remove(name string) error {
	if dead, _ := c.step(Op{Kind: "remove", Name: name}); dead {
		return ErrCrashed
	}
	return c.inner.Remove(name)
}

func (c *CrashFS) SyncDir() error {
	if dead, _ := c.step(Op{Kind: "sync-dir"}); dead {
		return ErrCrashed
	}
	return c.inner.SyncDir()
}

// crashFile applies the kill switch to file writes and syncs.
type crashFile struct {
	fs   *CrashFS
	name string
	f    File
}

func (f *crashFile) Write(p []byte) (int, error) {
	dead, cut := f.fs.step(Op{Kind: "write", Name: f.name, Bytes: len(p)})
	if dead {
		if cut > 0 {
			if cut > len(p) {
				cut = len(p)
			}
			// The torn write: a prefix still reaches the page cache.
			_, _ = f.f.Write(p[:cut])
		}
		return 0, ErrCrashed
	}
	return f.f.Write(p)
}

func (f *crashFile) Sync() error {
	if dead, _ := f.fs.step(Op{Kind: "sync", Name: f.name}); dead {
		return ErrCrashed
	}
	return f.f.Sync()
}

func (f *crashFile) Close() error { return f.f.Close() }
