// Package wal implements the per-replica write-ahead log that makes
// commits durable: a single append-only segment of length-prefixed,
// CRC-framed records holding the certifier's decision log (certified
// writesets with commit markers), the local database's apply stream,
// and full-state snapshot markers written by compaction.
//
// Framing. Every record is one frame:
//
//	[u32 length] [u32 CRC32C(payload)] [payload]
//
// where payload is a kind byte followed by varint/string fields and
// length counts the payload bytes. Replay stops at the first frame
// that is short, oversized or fails its CRC — the torn tail a crash
// mid-write leaves behind — and Open truncates the file there, so a
// recovered log is always a valid prefix of what was written.
//
// Durability contract. Append stages certified writesets followed by a
// commit marker in one write; Sync blocks until everything staged at
// or before the returned sequence is fsynced. Concurrent commits share
// fsyncs (group commit): whichever caller reaches the disk first syncs
// everything written so far and the rest observe that they are already
// durable, so one fsync amortizes over every commit that raced into
// the same window — the same combining the certifier's Batcher does
// for Paxos rounds, which Sync piggybacks on when group commit batches
// many records into a single Append.
//
// Recovery semantics. A certified writeset counts as committed only
// once a commit marker at or above its version is on disk; staged
// writesets whose marker never made it are discarded AND truncated
// from the segment, which is what makes a torn group-commit batch
// atomic — recovery reuses their versions, so a stale staged frame
// left on disk would be retroactively committed by the next marker at
// a reused version and resurrect a never-acked writeset. The apply stream (KindApply)
// replays the local database byte-for-byte; snapshot records replace
// replay below their version after compaction.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/certifier"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// Record kinds.
const (
	// KindBeginEpoch opens a segment: {epoch, base}. Base is the global
	// version the segment's history starts from (0 for a fresh log, the
	// snapshot version after compaction).
	KindBeginEpoch byte = 1
	// KindWriteset stages one certified writeset: {version, writeset}.
	// It is not committed until a KindCommit at or above version.
	KindWriteset byte = 2
	// KindCommit commits every staged writeset with version <= its
	// {version} — the marker that makes a group-commit batch atomic.
	KindCommit byte = 3
	// KindSnapshot is a compaction marker: {global, local, full state}.
	// Replay installs it instead of the applies it replaced.
	KindSnapshot byte = 4
	// KindApply journals one local database installation: {local
	// version, writeset} — loads, snapshot installs and propagated
	// writesets alike, in commitMu order.
	KindApply byte = 5
	// KindTable journals a table creation: {name}.
	KindTable byte = 6
	// KindCursor journals the propagation cursor: {global version this
	// replica has applied}, written after a batch of applies lands.
	KindCursor byte = 7
	// KindPrepare journals an in-doubt cross-shard fragment: {txn id,
	// coordinator shard, snapshot, writeset}. The fragment holds key
	// locks until a KindDecision (or, on recovery, a coordinator
	// Resolve) settles it.
	KindPrepare byte = 8
	// KindDecision journals a 2PC decision: {txn id, commit, version}.
	// A commit decision is written in the SAME write as — and ahead of
	// — the decided record's KindWriteset/KindCommit frames, so a torn
	// tail can lose the record but never a record-less decision
	// (recovery re-commits from the prepared writeset).
	KindDecision byte = 9
	// KindForget drops a fully acknowledged decision: {txn id}.
	KindForget byte = 10
)

const (
	segName = "wal.log"
	tmpName = "wal.log.tmp"

	// maxRecord bounds one frame; larger lengths in the file are
	// treated as tail corruption.
	maxRecord = 64 << 20

	// headerSize is the per-frame overhead: u32 length + u32 CRC.
	headerSize = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// ErrStaleSnapshot is returned by Compact when the offered snapshot is
// older than the one already in the segment: a concurrent compaction
// won with a newer capture, and rewriting the log around the stale one
// would drop durable history (the newer snapshot's frame is discarded
// while the applies it superseded are already gone).
var ErrStaleSnapshot = errors.New("wal: compact: snapshot older than the segment's current one")

// Options configure Open.
type Options struct {
	// Dir is the log directory; used when FS is nil.
	Dir string
	// FS overrides the filesystem (tests inject MemFS/CrashFS).
	FS FS
	// Fsync makes Sync issue real fsyncs, the machine-crash durability
	// the paper's replicas get from their databases. Off, records still
	// reach the OS on every append — surviving process kills — but a
	// power loss can drop the unsynced tail.
	Fsync bool
}

// Apply is one entry of the recovered local apply stream.
type Apply struct {
	// Local is the local database version the writeset was installed
	// at.
	Local int64
	WS    writeset.Writeset
}

// Recovered is the state replayed from a WAL at Open.
type Recovered struct {
	// Epoch counts compactions; Base is the global version the log's
	// history starts from (snapshot version after compaction).
	Epoch int64
	Base  int64
	// Tables are the created table names, in creation order.
	Tables []string
	// Snapshot is the compacted full state at (SnapGlobal, SnapLocal),
	// nil when the log has never been compacted.
	Snapshot   map[string]map[int64]string
	SnapGlobal int64
	SnapLocal  int64
	// Applies is the local apply stream after the snapshot, in
	// installation order.
	Applies []Apply
	// Records are the committed certified writesets (version order,
	// versions > Base); staged writesets without a commit marker are
	// not included.
	Records []certifier.Record
	// Cursor is the highest propagation cursor on disk (global version
	// this replica had applied), at least Base.
	Cursor int64
	// Prepared are the cross-shard fragments still relevant at the end
	// of replay: in-doubt (no decision on disk) or commit-decided —
	// the latter kept so RestoreTwoPC can re-commit a decision whose
	// record frames were torn off. Abort-decided and forgotten
	// fragments are dropped during replay.
	Prepared []certifier.PreparedTxn
	// Decisions maps txn ids to their durable 2PC decisions (forgotten
	// ones removed during replay).
	Decisions map[string]certifier.TwoPCDecision
	// TornBytes is how much tail was truncated at Open.
	TornBytes int64
}

// LastVersion returns the newest committed certified version in the
// log, or Base when it holds none.
func (r *Recovered) LastVersion() int64 {
	if n := len(r.Records); n > 0 {
		return r.Records[n-1].Version
	}
	return r.Base
}

// Restore rebuilds a local database from the recovered state: tables,
// the compacted snapshot, then the apply stream at its recorded
// versions. The database must be fresh.
func (r *Recovered) Restore(db *sidb.DB) error {
	for _, name := range r.Tables {
		if err := db.CreateTable(name); err != nil {
			return fmt.Errorf("wal: restore table: %w", err)
		}
	}
	if r.Snapshot != nil {
		var entries []writeset.Entry
		for name, rows := range r.Snapshot {
			for row, value := range rows {
				entries = append(entries, writeset.Entry{
					Key:   writeset.Key{Table: name, Row: row},
					Value: value,
				})
			}
		}
		if len(entries) > 0 || r.SnapLocal > 0 {
			if err := db.ApplyWriteset(writeset.New(entries), r.SnapLocal); err != nil {
				return fmt.Errorf("wal: restore snapshot: %w", err)
			}
		}
	}
	for _, a := range r.Applies {
		if a.Local <= db.Version() {
			// Already covered by the snapshot (compaction may retain
			// applies below it when they double as the single-master
			// propagation log).
			continue
		}
		if err := db.ApplyWriteset(a.WS, a.Local); err != nil {
			return fmt.Errorf("wal: restore apply at %d: %w", a.Local, err)
		}
	}
	return nil
}

// WAL is an open write-ahead log. Appends serialize on an internal
// mutex; Sync is the group-commit rendezvous and may be called
// concurrently.
//
// Lock order: mu before syncMu (Compact, Close); errMu is a leaf
// taken alone. Sync holds only syncMu, so an in-flight fsync never
// blocks appends and vice versa.
type WAL struct {
	fsys  FS
	fsync bool

	mu        sync.Mutex // serializes writes, compaction and close
	f         File
	size      int64
	epoch     int64
	base      int64
	snapLocal int64 // local version of the segment's snapshot (0: none)
	closed    bool

	seq atomic.Int64 // bumped per completed buffered write

	errMu sync.Mutex
	werr  error // sticky failure: the log is dead past it

	syncMu sync.Mutex // serializes fsync and the compaction handle swap
	synced int64      // highest seq known durable (under syncMu)
}

// stickyErr returns the first unrecoverable failure, if any.
func (w *WAL) stickyErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.werr
}

// fail records err as the WAL's sticky failure and returns it (the
// first failure wins: later errors are usually its echoes).
func (w *WAL) fail(err error) error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	if w.werr == nil {
		w.werr = err
	}
	return w.werr
}

// Open opens (or creates) the WAL in opts.Dir / opts.FS, truncates any
// torn tail, and returns the recovered state alongside the writable
// log positioned after the last valid record.
func Open(opts Options) (*WAL, *Recovered, error) {
	fsys := opts.FS
	if fsys == nil {
		var err error
		fsys, err = DirFS(opts.Dir)
		if err != nil {
			return nil, nil, err
		}
	}
	// A leftover tmp segment is a compaction that never renamed; the
	// real segment is authoritative.
	if err := fsys.Remove(tmpName); err != nil {
		return nil, nil, fmt.Errorf("wal: remove stale tmp: %w", err)
	}

	w := &WAL{fsys: fsys, fsync: opts.Fsync}

	data, err := fsys.ReadFile(segName)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh log: write the epoch header.
		f, err := fsys.Create(segName)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: create: %w", err)
		}
		w.f, w.epoch, w.base = f, 1, 0
		hdr := frame(encodeBeginEpoch(nil, 1, 0))
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: write epoch header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync epoch header: %w", err)
		}
		if err := fsys.SyncDir(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
		}
		w.size = int64(len(hdr))
		return w, &Recovered{Epoch: 1}, nil
	case err != nil:
		return nil, nil, fmt.Errorf("wal: read: %w", err)
	}

	rec, good := replay(data)
	rec.TornBytes = int64(len(data)) - good
	f, err := fsys.OpenAppend(segName, good)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reopen: %w", err)
	}
	w.f, w.size = f, good
	w.epoch, w.base, w.snapLocal = rec.Epoch, rec.Base, rec.SnapLocal
	return w, rec, nil
}

// replay parses data, returning the recovered state and the byte
// length of the prefix to keep. The prefix excludes a trailing run of
// frames containing staged writesets whose commit marker never landed
// (a group-commit batch torn between its writeset frames and the
// marker): recovery reuses their versions, so leaving those frames in
// the segment would let the NEXT commit marker at a reused version
// retroactively commit them on a later replay — resurrecting a
// never-acked writeset as committed history ahead of the acked one.
// Open truncates the file at the returned length, removing them.
//
// One pass over the segment: frames inside a possibly-uncovered staged
// run are buffered (not decoded) until a commit marker or snapshot
// settles the run — this writer appends each batch's writesets and
// marker in a single write, so an unsettled run can only be the torn
// tail — and a run still pending at the end of the log is dropped.
func replay(data []byte) (*Recovered, int64) {
	rec := &Recovered{Epoch: 1}
	var staged []certifier.Record
	var pending [][]byte // frames since the first uncovered staged writeset
	off, settled := 0, 0
	for {
		payload, n := nextFrame(data[off:])
		if payload == nil {
			break
		}
		off += n
		switch {
		case payload[0] == KindWriteset:
			pending = append(pending, payload)
		case payload[0] == KindCommit || payload[0] == KindSnapshot:
			// This writer's commit markers cover the whole batch staged
			// before them (Append writes max(batch)); a snapshot
			// supersedes staged state entirely. Either way the pending
			// run is settled: decode it, then the settling frame.
			for _, p := range pending {
				decodeInto(rec, &staged, p)
			}
			pending = pending[:0]
			decodeInto(rec, &staged, payload)
			settled = off
		case len(pending) > 0:
			pending = append(pending, payload)
		default:
			decodeInto(rec, &staged, payload)
			settled = off
		}
	}
	good := int64(off)
	if len(pending) > 0 {
		good = int64(settled)
	}
	sort.SliceStable(rec.Records, func(i, j int) bool {
		return rec.Records[i].Version < rec.Records[j].Version
	})
	if rec.Cursor < rec.Base {
		rec.Cursor = rec.Base
	}
	return rec, good
}

// nextFrame returns the next frame's payload and total size, or nil at
// the (possibly torn) end of the log.
func nextFrame(b []byte) ([]byte, int) {
	if len(b) < headerSize {
		return nil, 0
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 || n > maxRecord || int(n) > len(b)-headerSize {
		return nil, 0
	}
	payload := b[headerSize : headerSize+int(n)]
	if binary.BigEndian.Uint32(b[4:]) != crc32.Checksum(payload, crcTable) {
		return nil, 0
	}
	return payload, headerSize + int(n)
}

// decodeInto applies one valid payload to the recovered state.
// Malformed field encodings inside a CRC-valid frame decode to zero
// values (they cannot occur from this writer; the fuzz target only
// requires no panic and replay determinism).
func decodeInto(rec *Recovered, staged *[]certifier.Record, payload []byte) {
	d := &walDecoder{b: payload[1:]}
	switch payload[0] {
	case KindBeginEpoch:
		rec.Epoch = d.varint()
		rec.Base = d.varint()
	case KindTable:
		name := d.str()
		for _, t := range rec.Tables {
			if t == name {
				return
			}
		}
		rec.Tables = append(rec.Tables, name)
	case KindWriteset:
		v := d.varint()
		ws := d.writeset()
		if d.err == nil {
			*staged = append(*staged, certifier.Record{Version: v, Writeset: ws})
		}
	case KindCommit:
		v := d.varint()
		if d.err != nil {
			return
		}
		keep := (*staged)[:0]
		for _, s := range *staged {
			if s.Version <= v {
				rec.Records = append(rec.Records, s)
			} else {
				keep = append(keep, s)
			}
		}
		*staged = keep
	case KindSnapshot:
		global := d.varint()
		local := d.varint()
		nt := d.uvarint()
		tables := make(map[string]map[int64]string)
		for i := uint64(0); i < nt && d.err == nil; i++ {
			name := d.str()
			nr := d.uvarint()
			rows := make(map[int64]string, clampPrealloc(nr))
			for j := uint64(0); j < nr && d.err == nil; j++ {
				row := d.varint()
				rows[row] = d.str()
			}
			tables[name] = rows
		}
		if d.err != nil {
			return
		}
		rec.Snapshot, rec.SnapGlobal, rec.SnapLocal = tables, global, local
		// The snapshot supersedes everything replayed so far. 2PC state
		// is reset too: compaction rewrites the segment with the
		// snapshot first and re-carries still-live prepare/decision
		// frames after it.
		rec.Applies = nil
		rec.Records = nil
		rec.Prepared = nil
		rec.Decisions = nil
		*staged = nil
		if rec.Cursor < global {
			rec.Cursor = global
		}
	case KindApply:
		v := d.varint()
		ws := d.writeset()
		if d.err == nil {
			rec.Applies = append(rec.Applies, Apply{Local: v, WS: ws})
		}
	case KindCursor:
		v := d.varint()
		if d.err == nil && v > rec.Cursor {
			rec.Cursor = v
		}
	case KindPrepare:
		id := d.str()
		coord := d.varint()
		snap := d.varint()
		ws := d.writeset()
		if d.err != nil || id == "" {
			return
		}
		for _, p := range rec.Prepared {
			if p.ID == id {
				return // duplicate prepare frame: the first one stands
			}
		}
		rec.Prepared = append(rec.Prepared, certifier.PreparedTxn{
			ID: id, Coord: coord, Snapshot: snap, Writeset: ws,
		})
	case KindDecision:
		id := d.str()
		commit := d.byte() != 0
		v := d.varint()
		if d.err != nil || id == "" {
			return
		}
		if rec.Decisions == nil {
			rec.Decisions = make(map[string]certifier.TwoPCDecision)
		}
		rec.Decisions[id] = certifier.TwoPCDecision{Commit: commit, Version: v}
		if !commit {
			dropPrepared(rec, id) // locks released; the fragment is gone
		}
	case KindForget:
		id := d.str()
		if d.err != nil || id == "" {
			return
		}
		delete(rec.Decisions, id)
		dropPrepared(rec, id)
	}
}

// dropPrepared removes one prepared fragment from the recovered state.
func dropPrepared(rec *Recovered, id string) {
	for i, p := range rec.Prepared {
		if p.ID == id {
			rec.Prepared = append(rec.Prepared[:i], rec.Prepared[i+1:]...)
			return
		}
	}
}

// frame wraps a payload in its length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:], crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// write appends buf to the segment under mu, returning the covering
// sequence number for Sync.
func (w *WAL) write(buf []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.stickyErr(); err != nil {
		return 0, err
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, w.fail(fmt.Errorf("wal: write: %w", err))
	}
	w.size += int64(len(buf))
	return w.seq.Add(1), nil
}

// Append stages recs (certified writesets in version order) followed
// by one commit marker, in a single write. It implements the staging
// half of certifier.Journal; call Sync with the returned sequence to
// make the batch durable before acknowledging.
func (w *WAL) Append(recs []certifier.Record) (int64, error) {
	if len(recs) == 0 {
		return w.seq.Load(), w.stickyErr()
	}
	buf := w.takeBuf()
	max := int64(0)
	for _, r := range recs {
		buf = appendFrame(buf, encodeWriteset(nil, r.Version, r.Writeset))
		if r.Version > max {
			max = r.Version
		}
	}
	buf = appendFrame(buf, encodeCommit(nil, max))
	seq, err := w.write(buf)
	w.putBuf(buf)
	return seq, err
}

// AppendApply journals one local database installation (no sync: the
// apply stream is lazily durable; acks ride the certified stream).
func (w *WAL) AppendApply(local int64, ws writeset.Writeset) error {
	buf := w.takeBuf()
	buf = appendFrame(buf, encodeApply(nil, local, ws))
	_, err := w.write(buf)
	w.putBuf(buf)
	return err
}

// AppendTable journals a table creation.
func (w *WAL) AppendTable(name string) error {
	buf := appendFrame(nil, encodeTable(nil, name))
	_, err := w.write(buf)
	return err
}

// AppendCursor journals the propagation cursor: the global version
// this replica has applied. A restarted replica resumes FetchSince
// from the highest cursor on disk.
func (w *WAL) AppendCursor(global int64) error {
	buf := appendFrame(nil, encodeCursor(nil, global))
	_, err := w.write(buf)
	return err
}

// AppendPrepare journals an in-doubt cross-shard fragment; implements
// certifier.TxnJournal. Sync the returned sequence before voting yes.
func (w *WAL) AppendPrepare(p certifier.PreparedTxn) (int64, error) {
	buf := w.takeBuf()
	buf = appendFrame(buf, encodePrepare(nil, p))
	seq, err := w.write(buf)
	w.putBuf(buf)
	return seq, err
}

// AppendDecision journals a 2PC decision and, for commits, the decided
// record's writeset and commit marker — all in ONE write, decision
// frame first. The ordering is the recovery argument: a torn tail cuts
// a suffix, so the surviving prefixes are exactly {nothing},
// {decision}, {decision+writeset} or everything; a record can never
// outlive its decision, while a record-less commit decision is
// re-committed from the prepared writeset at recovery.
func (w *WAL) AppendDecision(txn string, commit bool, version int64, recs []certifier.Record) (int64, error) {
	buf := w.takeBuf()
	buf = appendFrame(buf, encodeDecision(nil, txn, commit, version))
	if commit && len(recs) > 0 {
		max := int64(0)
		for _, r := range recs {
			buf = appendFrame(buf, encodeWriteset(nil, r.Version, r.Writeset))
			if r.Version > max {
				max = r.Version
			}
		}
		buf = appendFrame(buf, encodeCommit(nil, max))
	}
	seq, err := w.write(buf)
	w.putBuf(buf)
	return seq, err
}

// AppendForget journals the retirement of a decision record.
func (w *WAL) AppendForget(txn string) (int64, error) {
	buf := appendFrame(nil, encodeForget(nil, txn))
	return w.write(buf)
}

// takeBuf/putBuf reuse one append buffer across calls (appends already
// serialize on mu, contention just falls back to allocating).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func (w *WAL) takeBuf() []byte {
	b := bufPool.Get().(*[]byte)
	return (*b)[:0]
}

func (w *WAL) putBuf(b []byte) {
	if cap(b) <= maxRecord {
		bufPool.Put(&b)
	}
}

// Sync blocks until every write at or before seq is durable. With
// Options.Fsync off it is a no-op beyond surfacing sticky errors.
// Concurrent callers share fsyncs: a single fsync covers every
// sequence written before it started, so commits that raced into the
// same window find their data already durable and return without
// touching the disk — group commit.
func (w *WAL) Sync(seq int64) error {
	if !w.fsync {
		return w.stickyErr()
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if err := w.stickyErr(); err != nil {
		return err
	}
	if w.synced >= seq {
		return nil // a racing caller's fsync already covered us
	}
	// Capture the covered sequence before fsync: everything written
	// (seq is bumped after the write completes) is in the file by now.
	// w.f is stable under syncMu — compaction swaps it only while
	// holding this lock.
	cover := w.seq.Load()
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	if cover > w.synced {
		w.synced = cover
	}
	return nil
}

// Seq returns the sequence of the latest completed append, so
// Sync(Seq()) is the barrier "everything journaled so far is durable"
// — what a single-master commit waits on after its writeset was
// journaled through the apply hook.
func (w *WAL) Seq() int64 { return w.seq.Load() }

// Size returns the current segment size in bytes (the compaction
// trigger input).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Epoch returns the current segment epoch.
func (w *WAL) Epoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Compact rewrites the log around a full-state snapshot taken at
// global version snapGlobal / local version snapLocal: the new segment
// holds a fresh epoch header, the table set, the snapshot, and every
// record of the old segment still needed — certified writesets (and
// their markers and cursors) above base, applies above keepApplies.
// base <= snapGlobal bounds which certified history is dropped: a
// certifier host passes its peer-cursor GC horizon so a disconnected
// replica's pending records survive compaction even though the
// snapshot already contains their effects. keepApplies is normally
// snapLocal (the snapshot supersedes the local stream below itself)
// but a single-master node, whose apply stream doubles as the
// propagation log, passes its slave horizon instead; Restore skips
// retained applies the snapshot already covers. The swap is
// crash-atomic: the new segment is fully written and synced as a tmp
// file, renamed over the old one, and the directory synced; a crash
// anywhere leaves either the complete old log or the complete new one.
//
// The snapshot must be captured before calling (under the engine's
// apply lock); records that commit between the capture and the swap
// are above the snapshot versions and therefore carried over. A
// snapshot below the segment's current one — a capture that raced a
// competitor's compaction — is rejected with ErrStaleSnapshot rather
// than regressing the log.
func (w *WAL) Compact(base, snapGlobal, snapLocal, keepApplies int64, tables []string, state map[string]map[int64]string) error {
	if base > snapGlobal {
		base = snapGlobal
	}
	if keepApplies > snapLocal {
		keepApplies = snapLocal
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.stickyErr(); err != nil {
		return err
	}
	if snapLocal < w.snapLocal {
		return fmt.Errorf("%w (offered local %d, segment has %d)", ErrStaleSnapshot, snapLocal, w.snapLocal)
	}

	old, err := w.fsys.ReadFile(segName)
	if err != nil {
		return fmt.Errorf("wal: compact read: %w", err)
	}

	var buf []byte
	buf = appendFrame(buf, encodeBeginEpoch(nil, w.epoch+1, base))
	for _, t := range tables {
		buf = appendFrame(buf, encodeTable(nil, t))
	}
	buf = appendFrame(buf, encodeSnapshot(nil, snapGlobal, snapLocal, state))

	// Carry over the still-needed tail of the old segment, frame by
	// frame, bytes verbatim. The pre-pass collects settled 2PC txns so
	// their prepare/decision frames can be dropped.
	settled := settledTxns(old)
	off := 0
	for {
		payload, n := nextFrame(old[off:])
		if payload == nil {
			break
		}
		if keepFrame(payload, base, keepApplies, settled) {
			buf = append(buf, old[off:off+n]...)
		}
		off += n
	}

	// Failures before the rename leave the old segment and its append
	// handle fully intact: report them without poisoning the log, so a
	// transient ENOSPC/EIO during the (space-doubling) tmp write only
	// delays compaction instead of killing every future commit.
	abandon := func(err error) error {
		_ = w.fsys.Remove(tmpName)
		return err
	}
	tmp, err := w.fsys.Create(tmpName)
	if err != nil {
		return abandon(fmt.Errorf("wal: compact create: %w", err))
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return abandon(fmt.Errorf("wal: compact write: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return abandon(fmt.Errorf("wal: compact sync: %w", err))
	}
	tmp.Close()
	if err := w.fsys.Rename(tmpName, segName); err != nil {
		return abandon(fmt.Errorf("wal: compact rename: %w", err))
	}
	// Past the rename the old segment is gone: failures here ARE fatal
	// — continuing to append through the old handle would write to an
	// unlinked file, silently dropping durability.
	if err := w.fsys.SyncDir(); err != nil {
		return w.fail(fmt.Errorf("wal: compact sync dir: %w", err))
	}

	// Switch appends to the new segment, holding syncMu so no fsync is
	// in flight on the handle being retired. The tmp file was fully
	// written and synced before the rename, so everything in the new
	// segment is already durable: outstanding Sync callers are covered.
	newF, err := w.fsys.OpenAppend(segName, int64(len(buf)))
	if err != nil {
		return w.fail(fmt.Errorf("wal: compact reopen: %w", err))
	}
	w.syncMu.Lock()
	_ = w.f.Close()
	w.f = newF
	w.synced = w.seq.Load()
	w.syncMu.Unlock()
	w.size = int64(len(buf))
	w.epoch++
	w.base = base
	w.snapLocal = snapLocal
	return nil
}

// settledSet is the compaction pre-pass result over 2PC frames:
// prepDone holds txns whose prepare frames are droppable
// (abort-decided or forgotten — their locks are released and nothing
// re-commits them), decDone holds txns whose decision frames are
// droppable (forgotten).
type settledSet struct {
	prepDone map[string]bool
	decDone  map[string]bool
}

// settledTxns scans a segment for the settled 2PC transactions.
func settledTxns(data []byte) settledSet {
	s := settledSet{prepDone: map[string]bool{}, decDone: map[string]bool{}}
	off := 0
	for {
		payload, n := nextFrame(data[off:])
		if payload == nil {
			return s
		}
		off += n
		d := &walDecoder{b: payload[1:]}
		switch payload[0] {
		case KindDecision:
			id := d.str()
			if commit := d.byte() != 0; d.err == nil && !commit {
				s.prepDone[id] = true
			}
		case KindForget:
			if id := d.str(); d.err == nil {
				s.prepDone[id] = true
				s.decDone[id] = true
			}
		}
	}
}

// keepFrame reports whether an old-segment frame survives compaction.
// Commit markers follow the writesets they cover: one at or below base
// can only cover dropped writesets. Prepare and decision frames of
// settled transactions are dropped; live ones are carried so recovery
// still finds every in-doubt lock and unforgotten decision.
func keepFrame(payload []byte, base, keepApplies int64, settled settledSet) bool {
	if len(payload) == 0 {
		return false
	}
	d := &walDecoder{b: payload[1:]}
	switch payload[0] {
	case KindWriteset, KindCommit, KindCursor:
		return d.varint() > base
	case KindApply:
		return d.varint() > keepApplies
	case KindTable:
		// A table created between the snapshot capture and the swap is
		// in the old segment but not in the captured state; keep every
		// table frame (replay dedups) so it cannot be lost.
		return true
	case KindPrepare:
		return !settled.prepDone[d.str()]
	case KindDecision:
		return !settled.decDone[d.str()]
	case KindForget:
		return false // its targets' frames were dropped with it
	default: // old epoch header, old snapshot (rewritten fresh)
		return false
	}
}

// Close closes the segment. Later operations fail with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.fail(ErrClosed)
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.f.Close()
}

// --- record encodings ---

func encodeBeginEpoch(b []byte, epoch, base int64) []byte {
	b = append(b, KindBeginEpoch)
	b = binary.AppendVarint(b, epoch)
	return binary.AppendVarint(b, base)
}

func encodeTable(b []byte, name string) []byte {
	b = append(b, KindTable)
	return appendWALString(b, name)
}

func encodeWriteset(b []byte, version int64, ws writeset.Writeset) []byte {
	b = append(b, KindWriteset)
	b = binary.AppendVarint(b, version)
	return appendWALWriteset(b, ws)
}

func encodeCommit(b []byte, version int64) []byte {
	b = append(b, KindCommit)
	return binary.AppendVarint(b, version)
}

func encodeApply(b []byte, local int64, ws writeset.Writeset) []byte {
	b = append(b, KindApply)
	b = binary.AppendVarint(b, local)
	return appendWALWriteset(b, ws)
}

func encodeCursor(b []byte, global int64) []byte {
	b = append(b, KindCursor)
	return binary.AppendVarint(b, global)
}

func encodePrepare(b []byte, p certifier.PreparedTxn) []byte {
	b = append(b, KindPrepare)
	b = appendWALString(b, p.ID)
	b = binary.AppendVarint(b, p.Coord)
	b = binary.AppendVarint(b, p.Snapshot)
	return appendWALWriteset(b, p.Writeset)
}

func encodeDecision(b []byte, txn string, commit bool, version int64) []byte {
	b = append(b, KindDecision)
	b = appendWALString(b, txn)
	if commit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.AppendVarint(b, version)
}

func encodeForget(b []byte, txn string) []byte {
	b = append(b, KindForget)
	return appendWALString(b, txn)
}

func encodeSnapshot(b []byte, global, local int64, state map[string]map[int64]string) []byte {
	b = append(b, KindSnapshot)
	b = binary.AppendVarint(b, global)
	b = binary.AppendVarint(b, local)
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		rows := state[name]
		b = appendWALString(b, name)
		b = binary.AppendUvarint(b, uint64(len(rows)))
		ids := make([]int64, 0, len(rows))
		for id := range rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b = binary.AppendVarint(b, id)
			b = appendWALString(b, rows[id])
		}
	}
	return b
}

func appendWALString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendWALWriteset(b []byte, ws writeset.Writeset) []byte {
	b = binary.AppendUvarint(b, uint64(len(ws.Entries)))
	for _, e := range ws.Entries {
		b = appendWALString(b, e.Key.Table)
		b = binary.AppendVarint(b, e.Key.Row)
		if e.Delete {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendWALString(b, e.Value)
	}
	return b
}

// maxPrealloc bounds slice/map preallocation from counts read out of
// the log, so a corrupt-but-CRC-valid count cannot force a huge
// allocation.
const maxPrealloc = 4096

func clampPrealloc(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// walDecoder consumes a record payload with sticky error handling.
type walDecoder struct {
	b   []byte
	off int
	err error
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = errors.New("wal: truncated record field")
	}
}

func (d *walDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *walDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *walDecoder) writeset() writeset.Writeset {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return writeset.Writeset{}
	}
	if n > uint64(len(d.b)-d.off) { // each entry is >= 4 bytes
		d.fail()
		return writeset.Writeset{}
	}
	entries := make([]writeset.Entry, 0, clampPrealloc(n))
	for i := uint64(0); i < n; i++ {
		var e writeset.Entry
		e.Key.Table = d.str()
		e.Key.Row = d.varint()
		e.Delete = d.byte() != 0
		e.Value = d.str()
		if d.err != nil {
			return writeset.Writeset{}
		}
		entries = append(entries, e)
	}
	return writeset.New(entries)
}

var (
	_ certifier.Journal    = (*WAL)(nil)
	_ certifier.TxnJournal = (*WAL)(nil)
)
