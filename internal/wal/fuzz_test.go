package wal

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/certifier"
	"repro/internal/writeset"
)

// fuzzSeedLog builds a representative valid log covering every record
// kind, for the fuzz corpus.
func fuzzSeedLog(tb testing.TB) []byte {
	tb.Helper()
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs})
	if err != nil {
		tb.Fatal(err)
	}
	w.AppendTable("items")
	w.AppendApply(1, writeset.FromRows("items", 0, []string{"a", "b", "c"}))
	w.Append([]certifier.Record{
		{Version: 1, Writeset: ws("items", 0, "x")},
		{Version: 2, Writeset: ws("items", 1, "y")},
	})
	w.AppendCursor(2)
	w.Compact(1, 1, 1, 1, []string{"items"}, map[string]map[int64]string{"items": {0: "x", 1: "b"}})
	w.Append([]certifier.Record{{Version: 3, Writeset: ws("items", 2, "z")}})
	w.Close()
	data, err := fs.ReadFile(segName)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALDecode feeds arbitrary bytes (seeded with valid and
// bit-flipped logs) to the replay parser: it must never panic, must
// stop at the first bad frame (the accepted prefix re-parses to the
// identical state), and must never claim more input than it was given.
// This mirrors the wire package's malformed-frame tests for the
// network decoder.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedLog(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	for _, i := range []int{3, len(seed) / 2, len(seed) - 2} {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add(append(append([]byte(nil), seed...), 0x00, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, good := replay(data) // must not panic
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("accepted prefix %d outside input of %d bytes", good, len(data))
		}
		// Replay is deterministic and prefix-stable: parsing just the
		// accepted prefix yields the same state and consumes all of it
		// — i.e. replay stopped at the first bad frame and nothing
		// after it leaked into the result.
		rec2, good2 := replay(data[:good])
		if good2 != good {
			t.Fatalf("re-parse of accepted prefix stops at %d, not %d", good2, good)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("re-parse diverged:\n%+v\nvs\n%+v", rec, rec2)
		}
		// Committed versions are strictly increasing: no certifier can
		// be rebuilt with holes filled by garbage.
		for i := 1; i < len(rec.Records); i++ {
			if rec.Records[i].Version <= rec.Records[i-1].Version {
				t.Fatalf("recovered versions not increasing: %d then %d",
					rec.Records[i-1].Version, rec.Records[i].Version)
			}
		}
	})
}

// TestFuzzCorpusSmoke runs the fuzz body over the seed corpus in plain
// `go test` runs (the CI path does not run the fuzz engine).
func TestFuzzCorpusSmoke(t *testing.T) {
	seed := fuzzSeedLog(t)
	rec, good := replay(seed)
	if good != int64(len(seed)) {
		t.Fatalf("seed log torn at %d/%d", good, len(seed))
	}
	if len(rec.Records) != 2 || rec.Records[0].Version != 2 || rec.Records[1].Version != 3 || rec.Base != 1 {
		t.Fatalf("seed log recovered %+v", rec)
	}
	// Every single-byte corruption still yields a clean prefix parse.
	for i := range seed {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0xa5
		rec, good := replay(mut)
		if good > int64(len(mut)) {
			t.Fatalf("byte %d: accepted beyond input", i)
		}
		_, good2 := replay(mut[:good])
		if good2 != good {
			t.Fatalf("byte %d: unstable prefix %d vs %d", i, good, good2)
		}
		_ = rec
	}
}
