package wal

import (
	"fmt"
	"testing"

	"repro/internal/certifier"
)

// Two-group 2PC crash sweep: a scripted cross-shard workload runs over
// two certifier+WAL groups (group 0 coordinating), and the sweep kills
// either group at every filesystem operation it performs — prepare
// writes, decision writes, forget writes, fsyncs, and mid-write tears.
// After each kill both groups power-cycle, recover, and run the
// presumed-abort resolution protocol; the invariants are the ISSUE's
// acceptance bar:
//
//	acked ⊆ recovered ⊆ acked ∪ in-flight
//
// and cross-shard atomicity — no group ever applies a fragment of a
// transaction another group aborted.

// twoPCGroup is one shard group: a certifier journaling into a WAL
// over a crashable filesystem.
type twoPCGroup struct {
	mem  *MemFS
	cfs  *CrashFS
	cert *certifier.Certifier
	w    *WAL
	dead bool // Open itself crashed; every call is skipped
}

func newTwoPCGroup(armAt, cut int) *twoPCGroup {
	g := &twoPCGroup{mem: NewMemFS()}
	g.cfs = NewCrashFS(g.mem, armAt, cut)
	w, _, err := Open(Options{FS: g.cfs, Fsync: true})
	if err != nil {
		g.dead = true
		return g
	}
	g.w = w
	g.cert = certifier.New()
	g.cert.SetJournal(w)
	return g
}

// twoPCRun is the observable outcome of one scripted run: what the
// "router" acked to its client, what it explicitly aborted, and what
// it had to leave in doubt.
type twoPCRun struct {
	g0, g1  *twoPCGroup
	acked   []string // coordinator decision durable: commit promised
	aborted []string // abort decided before the commit point
	unknown []string // coordinator decide failed: outcome unknown
	singles map[int][]string
}

// fragVal names the fragment value txn id writes at group g.
func fragVal(g int, id string) string { return fmt.Sprintf("frag%d-%s", g, id) }

// runTwoPCScript drives the scripted workload with one group's
// filesystem armed to crash (arm0/arm1; -1 never). The driver mirrors
// internal/router's commit2PC: errors before the commit point abort
// explicitly, a coordinator decide failure leaves the transaction
// unknown, a participant decide failure after the commit point keeps
// the ack and skips the forgets.
func runTwoPCScript(arm0, cut0, arm1, cut1 int) *twoPCRun {
	r := &twoPCRun{
		g0:      newTwoPCGroup(arm0, cut0),
		g1:      newTwoPCGroup(arm1, cut1),
		singles: map[int][]string{},
	}
	groups := []*twoPCGroup{r.g0, r.g1}

	single := func(gi int, row int64, val string) {
		g := groups[gi]
		if g.dead {
			return
		}
		out, err := g.cert.Certify(g.cert.Version(), ws("t", row, val))
		if err == nil && out.Committed {
			r.singles[gi] = append(r.singles[gi], val)
		}
	}
	// abortBoth mirrors the router's explicit pre-commit-point abort:
	// decide abort wherever a prepare may have landed, best effort.
	abortBoth := func(id string, upto int) {
		for gi := 0; gi < upto; gi++ {
			if g := groups[gi]; !g.dead {
				_, _ = g.cert.Decide(id, false)
				_ = g.cert.Forget(id)
			}
		}
		r.aborted = append(r.aborted, id)
	}

	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("x%d", i)
		rowA, rowB := int64(i), int64(100+i)

		// Interleave a plain single-shard commit at each group so 2PC
		// frames mix with ordinary records in both logs.
		single(0, 50+int64(i), fmt.Sprintf("s0-%d", i))
		single(1, 60+int64(i), fmt.Sprintf("s1-%d", i))

		if r.g0.dead || r.g1.dead {
			// A dead group fails its prepare; the router would abort.
			abortBoth(id, 0)
			continue
		}
		vote0, _, err0 := r.g0.cert.Prepare(certifier.PreparedTxn{
			ID: id, Coord: 0, Snapshot: r.g0.cert.Version(),
			Writeset: ws("t", rowA, fragVal(0, id)),
		})
		if err0 != nil || !vote0 {
			abortBoth(id, 1)
			continue
		}
		vote1, _, err1 := r.g1.cert.Prepare(certifier.PreparedTxn{
			ID: id, Coord: 0, Snapshot: r.g1.cert.Version(),
			Writeset: ws("t", rowB, fragVal(1, id)),
		})
		if err1 != nil || !vote1 {
			abortBoth(id, 2)
			continue
		}
		// Commit point: the coordinator group's durable decision.
		if _, err := r.g0.cert.Decide(id, true); err != nil {
			r.unknown = append(r.unknown, id)
			continue
		}
		r.acked = append(r.acked, id)
		if _, err := r.g1.cert.Decide(id, true); err != nil {
			// Ack stands; the participant resolves on recovery.
			continue
		}
		_ = r.g1.cert.Forget(id)
		_ = r.g0.cert.Forget(id)
	}

	// A certain conflict: re-prepare row 0 against a stale snapshot.
	// If txn x0 committed, row 0 has a newer version and the vote must
	// be no (in a crashed run where x0 aborted, a yes-vote is
	// legitimate — the explicit abort below retires it either way).
	if !r.g0.dead {
		id := "stale"
		x0Committed := len(r.acked) > 0 && r.acked[0] == "x0"
		vote, _, err := r.g0.cert.Prepare(certifier.PreparedTxn{
			ID: id, Coord: 0, Snapshot: 0,
			Writeset: ws("t", 0, fragVal(0, id)),
		})
		if err == nil && vote && x0Committed {
			panic("stale prepare voted yes past a committed conflict")
		}
		abortBoth(id, 1)
	}
	return r
}

// recoverTwoPCGroup power-cycles one group and rebuilds its certifier
// with the 2PC state restored.
func recoverTwoPCGroup(t *testing.T, g *twoPCGroup, keepUnsynced bool) *certifier.Certifier {
	t.Helper()
	g.mem.PowerCycle(keepUnsynced)
	w, rec, err := Open(Options{FS: g.mem, Fsync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	cert := certifier.NewFromRecords(rec.Records, rec.Base)
	cert.SetJournal(w)
	if err := cert.RestoreTwoPC(rec.Prepared, rec.Decisions); err != nil {
		t.Fatalf("restore 2pc: %v", err)
	}
	return cert
}

// hasFragment reports whether the group's recovered record log
// contains txn id's fragment value.
func hasFragment(c *certifier.Certifier, gi int, id string) bool {
	for _, rec := range c.Since(0) {
		for _, e := range rec.Writeset.Entries {
			if e.Value == fragVal(gi, id) {
				return true
			}
		}
	}
	return false
}

// checkTwoPCInvariants recovers both groups, runs the resolution
// protocol, and asserts atomicity and the acked-commit contract.
func checkTwoPCInvariants(t *testing.T, label string, r *twoPCRun, keepUnsynced bool) {
	t.Helper()
	c0 := recoverTwoPCGroup(t, r.g0, keepUnsynced)
	c1 := recoverTwoPCGroup(t, r.g1, keepUnsynced)

	// Resolution: every in-doubt participant asks the coordinator
	// group (0). An undecided transaction is presumed aborted — the
	// coordinator records the abort durably before answering.
	for _, c := range []*certifier.Certifier{c1, c0} {
		for _, p := range c.InDoubt() {
			commit, err := c0.Resolve(p.ID)
			if err != nil {
				t.Fatalf("%s: resolve %s: %v", label, p.ID, err)
			}
			if _, err := c.Decide(p.ID, commit); err != nil {
				t.Fatalf("%s: decide %s: %v", label, p.ID, err)
			}
			if err := c.Forget(p.ID); err != nil {
				t.Fatalf("%s: forget %s: %v", label, p.ID, err)
			}
		}
	}
	if n0, n1 := len(c0.InDoubt()), len(c1.InDoubt()); n0 != 0 || n1 != 0 {
		t.Fatalf("%s: in-doubt after resolution: %d/%d", label, n0, n1)
	}

	// Acked cross-shard commits survive at BOTH groups.
	for _, id := range r.acked {
		if !hasFragment(c0, 0, id) || !hasFragment(c1, 1, id) {
			t.Fatalf("%s: acked %s lost (g0=%v g1=%v)", label, id,
				hasFragment(c0, 0, id), hasFragment(c1, 1, id))
		}
	}
	// Explicitly aborted transactions left no fragment anywhere.
	for _, id := range r.aborted {
		if hasFragment(c0, 0, id) || hasFragment(c1, 1, id) {
			t.Fatalf("%s: aborted %s applied (g0=%v g1=%v)", label, id,
				hasFragment(c0, 0, id), hasFragment(c1, 1, id))
		}
	}
	// Atomicity for every cross-shard transaction, including the
	// unknown-outcome ones the resolution protocol settled: a fragment
	// is visible at group 0 iff it is visible at group 1.
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("x%d", i)
		if a, b := hasFragment(c0, 0, id), hasFragment(c1, 1, id); a != b {
			t.Fatalf("%s: half-applied %s: g0=%v g1=%v", label, id, a, b)
		}
	}
	// Acked single-shard commits survive in their group.
	for gi, c := range []*certifier.Certifier{c0, c1} {
		for _, val := range r.singles[gi] {
			found := false
			for _, rec := range c.Since(0) {
				for _, e := range rec.Writeset.Entries {
					if e.Value == val {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("%s: acked single-shard commit %q lost at group %d", label, val, gi)
			}
		}
	}
}

// TestTwoPCCrashSweep sweeps a kill over every filesystem operation of
// each group in turn, under both power-cycle models, with mid-write
// tears for multi-byte writes.
func TestTwoPCCrashSweep(t *testing.T) {
	dry := runTwoPCScript(-1, 0, -1, 0)
	if dry.cfs0Crashed() || dry.cfs1Crashed() {
		t.Fatal("dry run crashed")
	}
	if len(dry.acked) != 4 {
		t.Fatalf("dry run acked %d of 4", len(dry.acked))
	}
	checkTwoPCInvariants(t, "dry", dry, true)

	traces := [][]Op{dry.g0.cfs.Trace(), dry.g1.cfs.Trace()}
	for victim, trace := range traces {
		if len(trace) < 20 {
			t.Fatalf("group %d trace suspiciously small: %d ops", victim, len(trace))
		}
		for op, desc := range trace {
			cuts := []int{0}
			if desc.Kind == "write" && desc.Bytes > 1 {
				cuts = append(cuts, desc.Bytes/2)
			}
			for _, cut := range cuts {
				for _, keep := range []bool{false, true} {
					label := fmt.Sprintf("g%d op%d(%s %s %dB) cut=%d keep=%v",
						victim, op, desc.Kind, desc.Name, desc.Bytes, cut, keep)
					var r *twoPCRun
					if victim == 0 {
						r = runTwoPCScript(op, cut, -1, 0)
					} else {
						r = runTwoPCScript(-1, 0, op, cut)
					}
					if !r.crashed(victim) {
						t.Fatalf("%s: crash never fired", label)
					}
					checkTwoPCInvariants(t, label, r, keep)
				}
			}
		}
	}
}

func (r *twoPCRun) cfs0Crashed() bool { return r.g0.cfs.Crashed() }
func (r *twoPCRun) cfs1Crashed() bool { return r.g1.cfs.Crashed() }
func (r *twoPCRun) crashed(victim int) bool {
	if victim == 0 {
		return r.cfs0Crashed()
	}
	return r.cfs1Crashed()
}
