package wal

import (
	"testing"

	"repro/internal/certifier"
)

func prep(id string, coord, snapshot, row int64) certifier.PreparedTxn {
	return certifier.PreparedTxn{
		ID: id, Coord: coord, Snapshot: snapshot,
		Writeset: ws("t", row, "prep-"+id),
	}
}

// TestTwoPCRoundTrip replays the full prepare → decide → forget
// lifecycle through a power cycle at each stage.
func TestTwoPCRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	p := prep("x1", 2, 0, 7)
	seq, err := w.AppendPrepare(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w, rec := reopen(t, fs, true)
	if len(rec.Prepared) != 1 || rec.Prepared[0].ID != "x1" ||
		rec.Prepared[0].Coord != 2 || rec.Prepared[0].Writeset.Entries[0].Key.Row != 7 {
		t.Fatalf("prepared after cycle: %+v", rec.Prepared)
	}
	if len(rec.Decisions) != 0 {
		t.Fatalf("unexpected decisions: %+v", rec.Decisions)
	}

	// Commit decision: decision frame + the decided record, one write.
	recs := []certifier.Record{{Version: 1, Writeset: p.Writeset}}
	seq, err = w.AppendDecision("x1", true, 1, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w, rec = reopen(t, fs, true)
	d, ok := rec.Decisions["x1"]
	if !ok || !d.Commit || d.Version != 1 {
		t.Fatalf("decision after cycle: %+v ok=%v", d, ok)
	}
	if len(rec.Records) != 1 || rec.Records[0].Version != 1 {
		t.Fatalf("decided record after cycle: %+v", rec.Records)
	}
	// The prepared entry survives a commit decision on purpose: a torn
	// record needs the writeset for the re-commit. RestoreTwoPC sees
	// Version <= recovered version and reinstates nothing.
	if len(rec.Prepared) != 1 {
		t.Fatalf("prepared entry dropped by commit decision: %+v", rec.Prepared)
	}

	seq, err = w.AppendForget("x1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec = reopen(t, fs, true)
	if len(rec.Decisions) != 0 || len(rec.Prepared) != 0 {
		t.Fatalf("forget did not clear 2pc state: %+v %+v", rec.Prepared, rec.Decisions)
	}
}

// TestTwoPCAbortDropsPrepared: an abort decision retires the prepared
// entry at replay (presumed abort has no re-commit to feed).
func TestTwoPCAbortDropsPrepared(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPrepare(prep("a", 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	seq, err := w.AppendDecision("a", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec := reopen(t, fs, true)
	if len(rec.Prepared) != 0 {
		t.Fatalf("aborted prepare survived replay: %+v", rec.Prepared)
	}
	d, ok := rec.Decisions["a"]
	if !ok || d.Commit {
		t.Fatalf("abort decision lost: %+v ok=%v", d, ok)
	}
}

// TestTornDecisionRecommit pins the whole torn-tail recovery chain:
// AppendDecision puts the decision frame FIRST in its single write, so
// a tear between decision and record leaves {prepare, decision} on
// disk with the record gone. Replay surfaces both; RestoreTwoPC
// re-commits the fragment from the prepared writeset at the decided
// version — the acked commit survives the tear.
func TestTornDecisionRecommit(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	p := prep("torn", 1, 0, 9)
	seq, err := w.AppendPrepare(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	pre, _ := fs.ReadFile(segName)
	preLen := len(pre)
	recs := []certifier.Record{{Version: 1, Writeset: p.Writeset}}
	if _, err := w.AppendDecision("torn", true, 1, recs); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the write after the decision frame: keep exactly
	// [prepare..][decision frame], cut the writeset+commit frames.
	full, _ := fs.ReadFile(segName)
	decFrame := headerSize + len(encodeDecision(nil, "torn", true, 1))
	cut := preLen + decFrame
	if cut >= len(full) {
		t.Fatalf("nothing to tear: cut=%d len=%d", cut, len(full))
	}
	f, _ := fs.Create(segName)
	f.Write(full[:cut])
	f.Close()

	w2, rec := reopen(t, fs, true)
	defer w2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("torn record resurrected: %+v", rec.Records)
	}
	d, ok := rec.Decisions["torn"]
	if !ok || !d.Commit || d.Version != 1 {
		t.Fatalf("decision lost with the tear: %+v ok=%v", d, ok)
	}
	if len(rec.Prepared) != 1 {
		t.Fatalf("prepared writeset lost, cannot re-commit: %+v", rec.Prepared)
	}

	// Recovery re-commits: the certifier ends at the decided version
	// with the fragment in its log, re-journaled through the WAL.
	c := certifier.NewFromRecords(rec.Records, rec.Base)
	c.SetJournal(w2)
	if err := c.RestoreTwoPC(rec.Prepared, rec.Decisions); err != nil {
		t.Fatal(err)
	}
	if c.Version() != 1 {
		t.Fatalf("recovered version %d, want 1", c.Version())
	}
	got := c.Since(0)
	if len(got) != 1 || got[0].Writeset.Entries[0].Key.Row != 9 {
		t.Fatalf("re-committed record: %+v", got)
	}
}

// TestCompactRetiresSettledTwoPC: compaction keeps in-doubt prepares
// and undecided/unforgotten decisions but drops settled ones.
func TestCompactRetiresSettledTwoPC(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	// aborted+decided: fully settled once the abort is on disk (the
	// decision itself survives until a Forget retires it).
	if _, err := w.AppendPrepare(prep("settled", 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendDecision("settled", false, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendForget("settled"); err != nil {
		t.Fatal(err)
	}
	// still in doubt: must survive compaction.
	if _, err := w.AppendPrepare(prep("doubt", 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	// decided but not forgotten: the decision must survive.
	if _, err := w.AppendPrepare(prep("decided", 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	seq, err := w.AppendDecision("decided", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(0, 0, 0, 0, nil, map[string]map[int64]string{}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec := reopen(t, fs, true)
	if len(rec.Prepared) != 1 || rec.Prepared[0].ID != "doubt" {
		t.Fatalf("compaction kept wrong prepares: %+v", rec.Prepared)
	}
	if _, ok := rec.Decisions["decided"]; !ok {
		t.Fatal("unforgotten decision dropped by compaction")
	}
	if _, ok := rec.Decisions["settled"]; ok {
		t.Fatal("forgotten decision survived compaction")
	}
}
