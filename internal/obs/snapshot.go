package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// FamilySnapshot is a point-in-time copy of one metric family: its
// exposition header plus every collected sample, in collection order.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// RegistrySnapshot is a point-in-time copy of a whole registry,
// families sorted by name. Snapshots are plain data: they can cross
// the wire as JSON, merge across nodes, and render back to exposition
// text.
type RegistrySnapshot struct {
	Families []FamilySnapshot
}

// Snapshot collects every registered family — including GaugeFunc and
// CollectFunc-backed series, whose callbacks run at snapshot time
// exactly as they do at scrape time — into a mergeable copy.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	out := RegistrySnapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		f.mu.Lock()
		cols := make([]collector, len(f.cols))
		copy(cols, f.cols)
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, c := range cols {
			fs.Samples = append(fs.Samples, c.collect()...)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// Family returns the named family, or nil.
func (s *RegistrySnapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Value returns the value of the series with the given rendered label
// set ("" for an unlabeled series) inside the named family.
func (s *RegistrySnapshot) Value(name, labels string) (float64, bool) {
	f := s.Family(name)
	if f == nil {
		return 0, false
	}
	for _, sm := range f.Samples {
		if sm.Suffix == "" && sm.Labels == labels {
			return sm.Value, true
		}
	}
	return 0, false
}

// Merge folds other into s, building the cluster-wide view: samples
// that share (family, suffix, labels) have their values summed —
// correct for counters and histogram series, and the convention this
// package adopts for gauges too (cluster totals; per-node values stay
// distinguishable when the emitting node labels its series, as every
// replicadb per-replica series does). Samples and families present in
// only one snapshot are kept as-is. A family registered with
// different types on the two sides is an error.
func (s *RegistrySnapshot) Merge(other RegistrySnapshot) error {
	for _, of := range other.Families {
		f := s.Family(of.Name)
		if f == nil {
			s.Families = append(s.Families, of)
			continue
		}
		if f.Type != of.Type {
			return fmt.Errorf("obs: merge: family %q is %s here, %s there", of.Name, f.Type, of.Type)
		}
		for _, os := range of.Samples {
			merged := false
			for i := range f.Samples {
				if f.Samples[i].Suffix == os.Suffix && f.Samples[i].Labels == os.Labels {
					f.Samples[i].Value += os.Value
					merged = true
					break
				}
			}
			if !merged {
				f.Samples = append(f.Samples, os)
			}
		}
	}
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
	return nil
}

// WriteText renders the snapshot in the exposition format, exactly as
// Registry.WriteText renders the live registry.
func (s *RegistrySnapshot) WriteText(w io.Writer) {
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		for _, sm := range f.Samples {
			fmt.Fprintf(w, "%s%s%s %s\n", f.Name, sm.Suffix, sm.Labels, formatFloat(sm.Value))
		}
	}
}

// histogramSuffixes are the series suffixes a histogram or summary
// family owns in the exposition.
var histogramSuffixes = []string{"_bucket", "_sum", "_count"}

// ParseText parses a Prometheus text exposition (version 0.0.4) back
// into a snapshot, validating as it goes: every sample line must
// parse, histogram sub-series must belong to a declared histogram or
// summary family, and a series may not appear twice. This is the
// validation the CI scrape check runs against every node's /metrics,
// and the inverse of WriteText — parse(render(registry)) is lossless
// up to sample ordering.
func ParseText(r io.Reader) (RegistrySnapshot, error) {
	var snap RegistrySnapshot
	byName := make(map[string]*FamilySnapshot)
	seen := make(map[string]bool)
	family := func(name string) *FamilySnapshot {
		if f, ok := byName[name]; ok {
			return f
		}
		snap.Families = append(snap.Families, FamilySnapshot{Name: name, Type: "untyped"})
		f := &snap.Families[len(snap.Families)-1]
		byName[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			switch kind {
			case "HELP":
				family(name).Help = rest
			case "TYPE":
				f := family(name)
				if len(f.Samples) > 0 {
					return snap, fmt.Errorf("obs: parse line %d: TYPE for %q after its samples", lineNo, name)
				}
				f.Type = rest
			}
			continue
		}
		series, labels, value, err := parseSample(line)
		if err != nil {
			return snap, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
		}
		name, suffix := series, ""
		for _, sfx := range histogramSuffixes {
			base := strings.TrimSuffix(series, sfx)
			if base == series {
				continue
			}
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				name, suffix = base, sfx
				break
			}
		}
		f := family(name)
		// A histogram owns only suffixed sub-series; a summary also
		// legitimately exposes quantile samples on its base name.
		if f.Type == "histogram" && suffix == "" {
			return snap, fmt.Errorf("obs: parse line %d: bare sample %q in %s family", lineNo, series, f.Type)
		}
		key := series + labels
		if seen[key] {
			return snap, fmt.Errorf("obs: parse line %d: duplicate series %s%s", lineNo, series, labels)
		}
		seen[key] = true
		f.Samples = append(f.Samples, Sample{Suffix: suffix, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("obs: parse: %w", err)
	}
	// Parsed maps rebuilt pointers into snap.Families; re-sorting here
	// would invalidate byName, but nothing reads it past this point.
	sort.Slice(snap.Families, func(i, j int) bool { return snap.Families[i].Name < snap.Families[j].Name })
	return snap, nil
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	kind, name = fields[1], fields[2]
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, true
}

// parseSample splits one exposition sample line into the series name,
// the rendered label set (verbatim, "" when absent), and the value.
// An optional trailing timestamp is accepted and discarded.
func parseSample(line string) (series, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 && i < strings.IndexByte(rest+" ", ' ') {
		series = rest[:i]
		end, err := scanLabels(rest[i:])
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[i : i+end]
		rest = strings.TrimSpace(rest[i+end:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		series = fields[0]
		rest = strings.TrimSpace(strings.TrimPrefix(rest, series))
	}
	if series == "" {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", fields[0], perr)
	}
	if len(fields) == 2 {
		if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return series, labels, value, nil
}

// scanLabels walks a `{k="v",...}` label set starting at s[0] == '{'
// and returns the index just past the closing brace, honoring escaped
// quotes inside label values.
func scanLabels(s string) (int, error) {
	if len(s) == 0 || s[0] != '{' {
		return 0, fmt.Errorf("malformed label set %q", s)
	}
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped rune
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated label set %q", s)
}
