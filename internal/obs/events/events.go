// Package events is the cluster event journal: a bounded, race-safe
// ring of typed, timestamped events every node keeps about the things
// operators ask about after an incident — who led when, who joined or
// was evicted, when the WAL compacted, where the fsync stalls were,
// what the autoscaler decided and why, which transactions ran slow.
//
// The journal is deliberately tiny: fixed capacity, overwrite-oldest,
// one mutex. Every emit can also be mirrored into a metrics counter
// through the observer hook, so dashboards see event rates while the
// journal itself serves the last-N detail (JSON over /debug/events).
// Journals from different nodes merge by timestamp into one cluster
// timeline.
package events

import (
	"sort"
	"sync"
	"time"
)

// Type classifies an event. The set is append-only: dashboards and the
// per-type counters key on these strings.
type Type string

const (
	// LeaderElected: this node won a certifier election.
	LeaderElected Type = "leader_elected"
	// LeaderLost: this node stepped down (deposed by a higher epoch).
	LeaderLost Type = "leader_lost"
	// MemberJoined: the primary admitted a new replica.
	MemberJoined Type = "member_joined"
	// MemberLeft: a replica deregistered gracefully.
	MemberLeft Type = "member_left"
	// MemberEvicted: the primary evicted a silent member as stale.
	MemberEvicted Type = "member_evicted"
	// WALCompacted: the write-ahead log was rewritten around a snapshot.
	WALCompacted Type = "wal_compacted"
	// FsyncStall: one group-commit fsync wait crossed the slow threshold.
	FsyncStall Type = "fsync_stall"
	// ScaleDecision: the elastic controller moved (or tried to move)
	// the replica count; fields carry the MVA inputs behind it.
	ScaleDecision Type = "scale_decision"
	// SlowTxn: a commit-path span crossed the slow-transaction threshold.
	SlowTxn Type = "slow_txn"
)

// Types lists every known event type, in a stable order — the set the
// per-type counters are registered for.
var Types = []Type{
	LeaderElected, LeaderLost,
	MemberJoined, MemberLeft, MemberEvicted,
	WALCompacted, FsyncStall, ScaleDecision, SlowTxn,
}

// Event is one journal entry. Seq orders events emitted by one node
// (wall clocks can tie or step backwards); Node is the emitting
// replica id, which keeps merged timelines attributable.
type Event struct {
	Seq    int64             `json:"seq"`
	Time   time.Time         `json:"time"`
	Type   Type              `json:"type"`
	Node   int               `json:"node"`
	Msg    string            `json:"msg,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultCapacity is the journal ring size when none is given.
const DefaultCapacity = 256

// Journal is a bounded ring of events. All methods are safe for
// concurrent use and nil-safe: a nil *Journal drops every emit, so
// callers thread it unconditionally.
type Journal struct {
	node int

	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  int64
	obs  func(Type)
}

// NewJournal creates a journal for one node; capacity <= 0 selects
// DefaultCapacity.
func NewJournal(node, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{node: node, buf: make([]Event, capacity)}
}

// SetObserver installs the per-emit hook (the metrics-counter mirror).
// Install before traffic; the journal does not synchronize replacement.
// The hook runs outside the journal lock and must not block.
func (j *Journal) SetObserver(fn func(Type)) {
	if j == nil {
		return
	}
	j.obs = fn
}

// Emit appends one event, overwriting the oldest past capacity. The
// fields map is retained — pass a fresh map per call.
func (j *Journal) Emit(typ Type, msg string, fields map[string]string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	j.buf[j.next] = Event{
		Seq:    j.seq,
		Time:   time.Now(),
		Type:   typ,
		Node:   j.node,
		Msg:    msg,
		Fields: fields,
	}
	j.next++
	if j.next == len(j.buf) {
		j.next, j.full = 0, true
	}
	obs := j.obs
	j.mu.Unlock()
	if obs != nil {
		obs(typ)
	}
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.full {
		return len(j.buf)
	}
	return j.next
}

// Emitted returns the total number of events emitted since creation
// (including those the ring has since overwritten).
func (j *Journal) Emitted() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Recent returns up to limit retained events, newest first, copied
// out. limit <= 0 returns everything retained.
func (j *Journal) Recent(limit int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if j.full {
		n = len(j.buf)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	for i := 0; i < limit; i++ {
		idx := (j.next - 1 - i + len(j.buf)) % len(j.buf)
		out = append(out, j.buf[idx])
	}
	return out
}

// Merge folds per-node event lists (in any order) into one timeline,
// oldest first, ordered by timestamp with (node, seq) as the
// tiebreaker — the cluster-wide view an operator reads after pulling
// /debug/events from every node. Wall clocks across machines are not
// perfectly synchronized, so near-simultaneous events may interleave
// approximately; within one node the seq order is always preserved
// because times from one clock are monotone enough in practice and seq
// breaks exact ties.
func Merge(lists ...[]Event) []Event {
	var n int
	for _, l := range lists {
		n += len(l)
	}
	out := make([]Event, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
