package events

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJournalBasics(t *testing.T) {
	j := NewJournal(2, 4)
	if j.Len() != 0 || j.Emitted() != 0 || len(j.Recent(0)) != 0 {
		t.Fatal("fresh journal not empty")
	}
	j.Emit(LeaderElected, "won", map[string]string{"epoch": "1"})
	j.Emit(MemberJoined, "j1", nil)
	evs := j.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("Recent = %d events, want 2", len(evs))
	}
	// Newest first.
	if evs[0].Type != MemberJoined || evs[1].Type != LeaderElected {
		t.Fatalf("order wrong: %v, %v", evs[0].Type, evs[1].Type)
	}
	if evs[1].Node != 2 || evs[1].Fields["epoch"] != "1" || evs[1].Msg != "won" {
		t.Fatalf("event fields wrong: %+v", evs[1])
	}
	if evs[0].Seq <= evs[1].Seq {
		t.Fatalf("seq not increasing: %d then %d", evs[1].Seq, evs[0].Seq)
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(0, 4)
	for i := 0; i < 10; i++ {
		j.Emit(SlowTxn, strconv.Itoa(i), nil)
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", j.Len())
	}
	if j.Emitted() != 10 {
		t.Fatalf("Emitted = %d, want 10", j.Emitted())
	}
	evs := j.Recent(0)
	for i, want := range []string{"9", "8", "7", "6"} {
		if evs[i].Msg != want {
			t.Fatalf("Recent[%d] = %q, want %q", i, evs[i].Msg, want)
		}
	}
	if got := j.Recent(2); len(got) != 2 || got[0].Msg != "9" || got[1].Msg != "8" {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.SetObserver(func(Type) {})
	j.Emit(LeaderLost, "x", nil)
	if j.Len() != 0 || j.Emitted() != 0 || j.Recent(5) != nil {
		t.Fatal("nil journal not inert")
	}
}

// TestJournalConcurrentEmitters hammers one journal from many
// goroutines (run under -race in CI): the ring must stay bounded, the
// emit counter exact, the observer called once per emit, and every
// retained event internally consistent.
func TestJournalConcurrentEmitters(t *testing.T) {
	const (
		workers = 8
		each    = 500
		cap     = 64
	)
	j := NewJournal(1, cap)
	var observed atomic.Int64
	j.SetObserver(func(Type) { observed.Add(1) })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			typ := Types[w%len(Types)]
			for i := 0; i < each; i++ {
				j.Emit(typ, "m", map[string]string{"w": strconv.Itoa(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := j.Emitted(); got != workers*each {
		t.Fatalf("Emitted = %d, want %d", got, workers*each)
	}
	if got := observed.Load(); got != workers*each {
		t.Fatalf("observer ran %d times, want %d", got, workers*each)
	}
	if j.Len() != cap {
		t.Fatalf("Len = %d, want %d", j.Len(), cap)
	}
	evs := j.Recent(0)
	if len(evs) != cap {
		t.Fatalf("Recent = %d events, want %d", len(evs), cap)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq >= evs[i-1].Seq {
			t.Fatalf("Recent not newest-first at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	for _, e := range evs {
		if e.Node != 1 || e.Msg != "m" || e.Fields["w"] == "" {
			t.Fatalf("torn event: %+v", e)
		}
	}
}

func TestMergeTimeline(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	n0 := []Event{
		{Seq: 1, Time: base, Type: LeaderElected, Node: 0},
		{Seq: 2, Time: base.Add(2 * time.Second), Type: LeaderLost, Node: 0},
	}
	n1 := []Event{
		{Seq: 1, Time: base.Add(time.Second), Type: MemberJoined, Node: 1},
		{Seq: 2, Time: base.Add(2 * time.Second), Type: LeaderElected, Node: 1},
	}
	got := Merge(n1, n0)
	want := []struct {
		node int
		typ  Type
	}{
		{0, LeaderElected},
		{1, MemberJoined},
		{0, LeaderLost}, // time tie at +2s: node 0 before node 1
		{1, LeaderElected},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Node != w.node || got[i].Type != w.typ {
			t.Fatalf("merged[%d] = node %d %s, want node %d %s",
				i, got[i].Node, got[i].Type, w.node, w.typ)
		}
	}
	// Within one node the seq order must survive the merge.
	lastSeq := map[int]int64{}
	for _, e := range got {
		if e.Seq <= lastSeq[e.Node] {
			t.Fatalf("node %d seq order broken", e.Node)
		}
		lastSeq[e.Node] = e.Seq
	}
}
