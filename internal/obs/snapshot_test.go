package obs

import (
	"strings"
	"testing"
)

// buildTestRegistry assembles one of every instrument kind, including
// the callback-backed ones, so snapshot and parse tests cover the
// whole surface.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("test_commits_total", "Commits.", L("replica", "0"))
	c.Add(7)
	g := r.Gauge("test_queue_depth", "Depth.")
	g.Set(3.5)
	r.GaugeFunc("test_applied_version", "Applied.", func() float64 { return 42 })
	r.CollectFunc("test_custom", "Custom series.", "gauge", func() []Sample {
		return []Sample{
			{Labels: `{kind="a"}`, Value: 1},
			{Labels: `{kind="b"}`, Value: 2},
		}
	})
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}, L("stage", "apply"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

func TestRegistrySnapshotIncludesAllCollectors(t *testing.T) {
	s := buildTestRegistry().Snapshot()
	if v, ok := s.Value("test_commits_total", `{replica="0"}`); !ok || v != 7 {
		t.Fatalf("counter = %v, %v", v, ok)
	}
	if v, ok := s.Value("test_queue_depth", ""); !ok || v != 3.5 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	if v, ok := s.Value("test_applied_version", ""); !ok || v != 42 {
		t.Fatalf("gaugefunc = %v, %v", v, ok)
	}
	if v, ok := s.Value("test_custom", `{kind="b"}`); !ok || v != 2 {
		t.Fatalf("collectfunc = %v, %v", v, ok)
	}
	f := s.Family("test_latency_seconds")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family = %+v", f)
	}
	// 2 finite buckets + +Inf + _sum + _count.
	if len(f.Samples) != 5 {
		t.Fatalf("histogram samples = %d, want 5", len(f.Samples))
	}
}

func TestSnapshotMergeSums(t *testing.T) {
	a := buildTestRegistry().Snapshot()
	b := buildTestRegistry().Snapshot()
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if v, _ := a.Value("test_commits_total", `{replica="0"}`); v != 14 {
		t.Fatalf("merged counter = %v, want 14", v)
	}
	if v, _ := a.Value("test_custom", `{kind="a"}`); v != 2 {
		t.Fatalf("merged collectfunc = %v, want 2", v)
	}
	f := a.Family("test_latency_seconds")
	for _, sm := range f.Samples {
		if sm.Suffix == "_count" && sm.Value != 6 {
			t.Fatalf("merged histogram count = %v, want 6", sm.Value)
		}
	}
	// A family only the other side has is adopted.
	other := NewRegistry()
	other.Counter("test_only_there", "").Inc()
	o := other.Snapshot()
	if err := a.Merge(o); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if v, ok := a.Value("test_only_there", ""); !ok || v != 1 {
		t.Fatalf("adopted family = %v, %v", v, ok)
	}
	// Type conflicts are refused.
	bad := NewRegistry()
	bad.Gauge("test_commits_total", "")
	if err := a.Merge(bad.Snapshot()); err == nil {
		t.Fatal("type-conflicting merge accepted")
	}
}

// TestParseTextRoundTrip renders a live registry and parses it back:
// every series must survive with its value, and the re-rendered text
// must match the original byte for byte.
func TestParseTextRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var text strings.Builder
	r.WriteText(&text)

	snap, err := ParseText(strings.NewReader(text.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := r.Snapshot()
	if len(snap.Families) != len(want.Families) {
		t.Fatalf("parsed %d families, want %d", len(snap.Families), len(want.Families))
	}
	for _, wf := range want.Families {
		gf := snap.Family(wf.Name)
		if gf == nil {
			t.Fatalf("family %q lost in parse", wf.Name)
		}
		if gf.Type != wf.Type || gf.Help != wf.Help {
			t.Fatalf("family %q header = (%s, %q), want (%s, %q)",
				wf.Name, gf.Type, gf.Help, wf.Type, wf.Help)
		}
		if len(gf.Samples) != len(wf.Samples) {
			t.Fatalf("family %q: %d samples, want %d", wf.Name, len(gf.Samples), len(wf.Samples))
		}
		for i, ws := range wf.Samples {
			gs := gf.Samples[i]
			if gs.Suffix != ws.Suffix || gs.Labels != ws.Labels || gs.Value != ws.Value {
				t.Fatalf("family %q sample %d = %+v, want %+v", wf.Name, i, gs, ws)
			}
		}
	}
	var again strings.Builder
	snap.WriteText(&again)
	if again.String() != text.String() {
		t.Fatalf("re-render differs:\n%s\nvs\n%s", again.String(), text.String())
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"bad value", "x 1.2.3\n"},
		{"no value", "x\n"},
		{"unterminated labels", "x{a=\"b 1\n"},
		{"duplicate series", "x 1\nx 2\n"},
		{"duplicate labeled series", "x{a=\"b\"} 1\nx{a=\"b\"} 2\n"},
		{"bare sample in histogram", "# TYPE h histogram\nh 3\n"},
		{"type after samples", "x 1\n# TYPE x counter\n"},
		{"bad timestamp", "x 1 notatime\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(tc.text)); err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
		})
	}
}

func TestParseTextAcceptsRealWorldShapes(t *testing.T) {
	text := strings.Join([]string{
		"# a free-form comment",
		"",
		"# HELP up Whether the scrape worked.",
		"# TYPE up gauge",
		"up 1",
		`lag{replica="0",quote="say \"hi\""} 0.25`,
		"rate 1e-3 1700000000000",
		"# TYPE lat histogram",
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 0.9",
		"lat_count 4",
		"# TYPE lq summary",
		`lq{quantile="0.5"} 0.1`,
		`lq{quantile="0.99"} 0.4`,
		"lq_sum 2",
		"lq_count 9",
	}, "\n") + "\n"
	snap, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := snap.Value("up", ""); !ok || v != 1 {
		t.Fatalf("up = %v, %v", v, ok)
	}
	if v, ok := snap.Value("lag", `{replica="0",quote="say \"hi\""}`); !ok || v != 0.25 {
		t.Fatalf("escaped-label series = %v, %v", v, ok)
	}
	f := snap.Family("lat")
	if f == nil || f.Type != "histogram" || len(f.Samples) != 4 {
		t.Fatalf("histogram family = %+v", f)
	}
	// Summary quantile samples live on the base name — not "bare".
	q := snap.Family("lq")
	if q == nil || q.Type != "summary" || len(q.Samples) != 4 {
		t.Fatalf("summary family = %+v", q)
	}
	if v, ok := snap.Value("lq", `{quantile="0.99"}`); !ok || v != 0.4 {
		t.Fatalf("summary quantile = %v, %v", v, ok)
	}
}
