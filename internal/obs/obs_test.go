package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter", L("kind", "read"))
	c.Add(3)
	c.Inc()
	g := r.Gauge("y", "a gauge")
	g.Set(2.5)
	r.GaugeFunc("z", "a func gauge", func() float64 { return 7 })

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP x_total a counter",
		"# TYPE x_total counter",
		`x_total{kind="read"} 4`,
		"# TYPE y gauge",
		"y 2.5",
		"z 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order.
	if strings.Index(out, "x_total") > strings.Index(out, "# TYPE y") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, L("stage", "certify"))
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{stage="certify",le="0.01"} 90`,
		`lat_seconds_bucket{stage="certify",le="0.1"} 99`,
		`lat_seconds_bucket{stage="certify",le="1"} 99`,
		`lat_seconds_bucket{stage="certify",le="+Inf"} 100`,
		`lat_seconds_count{stage="certify"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	s := h.Snapshot()
	if got := s.Quantile(0.5); got <= 0 || got > 0.01 {
		t.Errorf("p50 = %v, want in (0, 0.01]", got)
	}
	if got := s.Quantile(0.95); got <= 0.01 || got > 0.1 {
		t.Errorf("p95 = %v, want in (0.01, 0.1]", got)
	}
	// +Inf observations report the top finite bound.
	if got := s.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want 1", got)
	}
}

func TestHistogramBoundaryLandsInLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", []float64{0.1, 1})
	h.Observe(0.1) // le="0.1" is inclusive
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("boundary observation landed in bucket %v, want first", s.Counts)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("m_seconds", "", []float64{0.01, 0.1}, L("node", "a"))
	b := r.Histogram("m_seconds", "", []float64{0.01, 0.1}, L("node", "b"))
	a.Observe(0.005)
	a.Observe(0.05)
	b.Observe(0.05)
	b.Observe(7)

	s := a.Snapshot()
	if err := s.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Count != 4 {
		t.Errorf("merged count = %d, want 4", s.Count)
	}
	if want := 0.005 + 0.05 + 0.05 + 7; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("merged sum = %v, want %v", s.Sum, want)
	}
	if s.Counts[1] != 2 {
		t.Errorf("merged bucket counts = %v", s.Counts)
	}

	bad := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: make([]uint64, 3)}
	if err := s.Merge(bad); err == nil {
		t.Error("merge with mismatched bounds should fail")
	}
}

func TestCollectFunc(t *testing.T) {
	r := NewRegistry()
	r.CollectFunc("q_seconds", "quantiles", "gauge", func() []Sample {
		return []Sample{
			{Labels: `{q="0.5"}`, Value: 0.001},
			{Labels: `{q="0.99"}`, Value: 0.25},
		}
	})
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `q_seconds{q="0.5"} 0.001`) || !strings.Contains(out, `q_seconds{q="0.99"} 0.25`) {
		t.Errorf("collect func samples missing:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestConflictingTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Error("conflicting type registration did not panic")
		}
	}()
	r.Gauge("t_total", "", L("a", "2"))
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "", nil)
	cnt := r.Counter("c_total", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveDuration(50 * time.Microsecond)
				cnt.Inc()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteText(&b)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
	if got := cnt.Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	s := h.Snapshot()
	if math.Abs(s.Sum-4000*50e-6) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, 4000*50e-6)
	}
}

func TestDefBucketsAscending(t *testing.T) {
	b := DefBuckets()
	if len(b) == 0 {
		t.Fatal("no default buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("default buckets not ascending at %d: %v", i, b)
		}
	}
	if b[0] > 50e-6 || b[len(b)-1] < 5 {
		t.Errorf("default bucket range [%v, %v] too narrow", b[0], b[len(b)-1])
	}
}
