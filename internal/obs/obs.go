// Package obs is the repo's metrics registry: the one place every
// package registers counters, gauges and histograms, and the one
// place that knows how to render them in the Prometheus text
// exposition format (text/plain; version=0.0.4).
//
// The registry is deliberately small and dependency-free. Instruments
// are lock-free on the hot path (atomics), registration takes a lock,
// and exposition walks the registered families in sorted name order so
// scrapes are stable. Histograms use explicit bucket bounds and
// produce mergeable snapshots, which is what lets per-node stage
// histograms fold into a cluster-wide view.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant key=value pair attached to an instrument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for a single label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// renderLabels turns labels into the `{k="v",...}` exposition suffix,
// or "" with no labels. Order is preserved as given.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// mergeLabels appends extra labels inside an already-rendered label
// set: mergeLabels(`{stage="ack"}`, `le="0.1"`) → `{stage="ack",le="0.1"}`.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// Sample is one exposition line: a fully suffixed series name (e.g.
// "x_bucket"), a rendered label set, and a value.
type Sample struct {
	Suffix string // appended to the family name ("" for the plain series)
	Labels string // rendered label set, "" or `{k="v",...}`
	Value  float64
}

// collector produces the current samples for one instrument.
type collector interface {
	collect() []Sample
}

// family groups every instrument registered under one metric name; the
// exposition emits one HELP/TYPE header per family.
type family struct {
	name string
	help string
	typ  string
	mu   sync.Mutex
	cols []collector
	seen map[string]bool // rendered label sets, to reject duplicates
}

// Registry holds registered instruments and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register attaches a collector to the named family, creating it on
// first use. Conflicting types or duplicate label sets panic: both are
// programming errors and would corrupt the exposition.
func (r *Registry) register(name, help, typ, labels string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, seen: make(map[string]bool)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen[labels] {
		panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, labels))
	}
	f.seen[labels] = true
	f.cols = append(f.cols, c)
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) collect() []Sample {
	return []Sample{{Labels: c.labels, Value: float64(c.v.Load())}}
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	r.register(name, help, "counter", c.labels, c)
	return c
}

// Gauge is a settable float value.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value (not atomic across racing Adds with
// Set, but fine for single-writer gauges).
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) collect() []Sample {
	return []Sample{{Labels: g.labels, Value: g.Value()}}
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	r.register(name, help, "gauge", g.labels, g)
	return g
}

// gaugeFunc samples a callback at scrape time.
type gaugeFunc struct {
	labels string
	f      func() float64
}

func (g *gaugeFunc) collect() []Sample {
	return []Sample{{Labels: g.labels, Value: g.f()}}
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time — the natural fit for values some other structure already
// tracks (applied version, queue depth, membership size).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	g := &gaugeFunc{labels: renderLabels(labels), f: f}
	r.register(name, help, "gauge", g.labels, g)
}

// funcCollector adapts a sample-producing callback into a family —
// the escape hatch for series backed by external state (e.g. the
// stats.Latency histograms the drivers already keep).
type funcCollector struct{ f func() []Sample }

func (c funcCollector) collect() []Sample { return c.f() }

// CollectFunc registers a callback that produces fully formed samples
// for the named family at scrape time. typ is the exposition TYPE
// ("counter", "gauge", "histogram", "summary", "untyped"). The labels
// argument only guards against duplicate registration; the callback is
// responsible for rendering label sets on its samples.
func (r *Registry) CollectFunc(name, help, typ string, f func() []Sample, labels ...Label) {
	r.register(name, help, typ, renderLabels(labels), funcCollector{f})
}

// DefBuckets returns the default latency bucket bounds in seconds:
// exponential from 25µs to ~13s (factor 2), a range that spans a
// cached in-memory certify (~µs) through a multi-second fsync stall.
func DefBuckets() []float64 {
	b := make([]float64, 20)
	v := 25e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Histogram is a fixed-bucket histogram with atomic counts. Bounds are
// upper bucket edges in ascending order; a +Inf bucket is implicit.
// Observe is lock-free and safe for concurrent use.
type Histogram struct {
	labels  string
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum of observations (seconds)
}

// Histogram registers and returns a histogram. bounds must be sorted
// ascending; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		labels: renderLabels(labels),
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, help, "histogram", h.labels, h)
	return h
}

// Observe records one observation (in seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records one duration observation.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

func (h *Histogram) collect() []Sample {
	return h.Snapshot().samples(h.labels)
}

// HistogramSnapshot is a point-in-time copy of a histogram, usable for
// merging across nodes and quantile estimation.
type HistogramSnapshot struct {
	Bounds []float64 // upper edges, ascending (+Inf implicit)
	Counts []uint64  // per-bucket (not cumulative), len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Merge folds other into s. The bucket layouts must match.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(other.Bounds) != len(s.Bounds) {
		return fmt.Errorf("obs: merge with mismatched bucket count %d != %d", len(other.Bounds), len(s.Bounds))
	}
	for i, b := range other.Bounds {
		if b != s.Bounds[i] {
			return fmt.Errorf("obs: merge with mismatched bound %v != %v", b, s.Bounds[i])
		}
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket. Observations in the +Inf bucket report the top
// finite bound.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(s.Bounds[i]-lo)
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// samples renders the snapshot as exposition lines with cumulative
// bucket counts.
func (s HistogramSnapshot) samples(labels string) []Sample {
	out := make([]Sample, 0, len(s.Counts)+2)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		out = append(out, Sample{
			Suffix: "_bucket",
			Labels: mergeLabels(labels, `le="`+le+`"`),
			Value:  float64(cum),
		})
	}
	out = append(out,
		Sample{Suffix: "_sum", Labels: labels, Value: s.Sum},
		Sample{Suffix: "_count", Labels: labels, Value: float64(s.Count)},
	)
	return out
}

// formatFloat renders a float the way the exposition format expects:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in the Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		cols := make([]collector, len(f.cols))
		copy(cols, f.cols)
		f.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range cols {
			for _, s := range c.collect() {
				fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.Suffix, s.Labels, formatFloat(s.Value))
			}
		}
	}
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteText(w)
	})
}
