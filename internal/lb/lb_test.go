package lb

import (
	"sync"
	"testing"
)

func TestAcquirePicksLeastLoaded(t *testing.T) {
	b := New(3)
	if b.Acquire() != 0 {
		t.Fatal("first acquire should pick index 0")
	}
	if b.Acquire() != 1 || b.Acquire() != 2 {
		t.Fatal("acquires did not spread")
	}
	// All at load 1; tie goes to 0.
	if b.Acquire() != 0 {
		t.Fatal("tie break wrong")
	}
	b.Release(1)
	if b.Acquire() != 1 {
		t.Fatal("release did not make replica 1 least loaded")
	}
}

func TestAcquireWhere(t *testing.T) {
	b := New(4)
	idx, err := b.AcquireWhere(func(i int) bool { return i == 2 })
	if err != nil || idx != 2 {
		t.Fatalf("AcquireWhere = %d, %v", idx, err)
	}
	if _, err := b.AcquireWhere(func(int) bool { return false }); err != ErrNoEligible {
		t.Fatalf("no eligible: %v", err)
	}
}

func TestLoadAndSize(t *testing.T) {
	b := New(2)
	b.Acquire()
	b.Acquire()
	b.Acquire()
	if b.Load(0) != 2 || b.Load(1) != 1 {
		t.Fatalf("loads = %d, %d", b.Load(0), b.Load(1))
	}
	if b.Size() != 2 {
		t.Fatalf("size = %d", b.Size())
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	b := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release(0)
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestConcurrentBalance(t *testing.T) {
	b := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				idx := b.Acquire()
				b.Release(idx)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if b.Load(i) != 0 {
			t.Fatalf("replica %d load = %d after all released", i, b.Load(i))
		}
	}
}
