package lb

import (
	"sync"
	"testing"
)

func TestAcquirePicksLeastLoaded(t *testing.T) {
	b := New(3)
	if b.Acquire() != 0 {
		t.Fatal("first acquire should pick index 0")
	}
	if b.Acquire() != 1 || b.Acquire() != 2 {
		t.Fatal("acquires did not spread")
	}
	// All at load 1; tie goes to 0.
	if b.Acquire() != 0 {
		t.Fatal("tie break wrong")
	}
	b.Release(1)
	if b.Acquire() != 1 {
		t.Fatal("release did not make replica 1 least loaded")
	}
}

func TestAcquireWhere(t *testing.T) {
	b := New(4)
	idx, err := b.AcquireWhere(func(i int) bool { return i == 2 })
	if err != nil || idx != 2 {
		t.Fatalf("AcquireWhere = %d, %v", idx, err)
	}
	if _, err := b.AcquireWhere(func(int) bool { return false }); err != ErrNoEligible {
		t.Fatalf("no eligible: %v", err)
	}
}

func TestLoadAndSize(t *testing.T) {
	b := New(2)
	b.Acquire()
	b.Acquire()
	b.Acquire()
	if b.Load(0) != 2 || b.Load(1) != 1 {
		t.Fatalf("loads = %d, %d", b.Load(0), b.Load(1))
	}
	if b.Size() != 2 {
		t.Fatalf("size = %d", b.Size())
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	b := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release(0)
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddGrowsMembership(t *testing.T) {
	b := New(1)
	if idx := b.Add(); idx != 1 {
		t.Fatalf("Add = %d, want 1", idx)
	}
	if b.Size() != 2 || b.Live() != 2 {
		t.Fatalf("size = %d live = %d", b.Size(), b.Live())
	}
	// The new slot starts empty and healthy, so it receives traffic.
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		seen[b.Acquire()]++
	}
	if seen[0] != 2 || seen[1] != 2 {
		t.Fatalf("acquires did not spread onto the added slot: %v", seen)
	}
}

func TestRemoveTombstonesSlot(t *testing.T) {
	b := New(3)
	idx := b.Acquire() // outstanding txn on some replica
	b.Remove(1)
	if !b.Removed(1) || b.Removed(0) || b.Removed(2) {
		t.Fatal("removed flags wrong")
	}
	if b.Size() != 3 || b.Live() != 2 {
		t.Fatalf("size = %d live = %d", b.Size(), b.Live())
	}
	for i := 0; i < 10; i++ {
		if got := b.Acquire(); got == 1 {
			t.Fatal("acquired a removed slot")
		}
	}
	// Indices are stable: releasing the pre-removal acquisition works.
	b.Release(idx)
	// Removing every slot leaves nothing eligible.
	b.Remove(0)
	b.Remove(2)
	if _, err := b.AcquireWhere(func(int) bool { return true }); err != ErrNoEligible {
		t.Fatalf("all-removed acquire: %v", err)
	}
}

func TestRemovalDoesNotBiasLowIndices(t *testing.T) {
	// Acquire-and-hold across a 4-replica set with slot 1 removed: the
	// rotating tie-break must spread ties over all survivors instead of
	// always favoring slot 0.
	b := New(4)
	b.Remove(1)
	seen := map[int]int{}
	for round := 0; round < 5; round++ {
		held := make([]int, 0, 3)
		for i := 0; i < 3; i++ {
			idx := b.Acquire()
			seen[idx]++
			held = append(held, idx)
		}
		for _, idx := range held {
			b.Release(idx)
		}
	}
	if seen[1] != 0 {
		t.Fatalf("removed slot acquired: %v", seen)
	}
	for _, i := range []int{0, 2, 3} {
		if seen[i] != 5 {
			t.Fatalf("tie-break biased: %v", seen)
		}
	}
}

func TestRotationIsDeterministic(t *testing.T) {
	runSeq := func() []int {
		b := New(3)
		out := make([]int, 0, 8)
		for i := 0; i < 4; i++ {
			out = append(out, b.Acquire())
		}
		b.Release(out[0])
		for i := 0; i < 4; i++ {
			out = append(out, b.Acquire())
		}
		return out
	}
	a, c := runSeq(), runSeq()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same call sequence diverged: %v vs %v", a, c)
		}
	}
}

func TestConcurrentBalance(t *testing.T) {
	b := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				idx := b.Acquire()
				b.Release(idx)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if b.Load(i) != 0 {
			t.Fatalf("replica %d load = %d after all released", i, b.Load(i))
		}
	}
}

func TestHealthRouting(t *testing.T) {
	b := New(3)
	b.SetHealthy(1, false)
	if b.Healthy(1) || !b.Healthy(0) {
		t.Fatal("health flags not recorded")
	}
	// With replica 1 down, acquisitions spread over 0 and 2 only.
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		seen[b.Acquire()]++
	}
	if seen[1] != 0 || seen[0] != 3 || seen[2] != 3 {
		t.Fatalf("acquired %v with replica 1 down", seen)
	}
	// With every replica down, acquisition falls back instead of failing.
	b.SetHealthy(0, false)
	b.SetHealthy(2, false)
	if _, err := b.AcquireWhere(func(int) bool { return true }); err != nil {
		t.Fatalf("all-down acquire failed: %v", err)
	}
	// Recovery restores normal preference.
	b.SetHealthy(1, true)
	if idx, _ := b.AcquireWhere(func(int) bool { return true }); idx != 1 {
		t.Fatalf("healthy replica 1 not preferred, got %d", idx)
	}
}
