package lb

import (
	"sync"
	"testing"
)

func TestAcquirePicksLeastLoaded(t *testing.T) {
	b := New(3)
	if b.Acquire() != 0 {
		t.Fatal("first acquire should pick index 0")
	}
	if b.Acquire() != 1 || b.Acquire() != 2 {
		t.Fatal("acquires did not spread")
	}
	// All at load 1; tie goes to 0.
	if b.Acquire() != 0 {
		t.Fatal("tie break wrong")
	}
	b.Release(1)
	if b.Acquire() != 1 {
		t.Fatal("release did not make replica 1 least loaded")
	}
}

func TestAcquireWhere(t *testing.T) {
	b := New(4)
	idx, err := b.AcquireWhere(func(i int) bool { return i == 2 })
	if err != nil || idx != 2 {
		t.Fatalf("AcquireWhere = %d, %v", idx, err)
	}
	if _, err := b.AcquireWhere(func(int) bool { return false }); err != ErrNoEligible {
		t.Fatalf("no eligible: %v", err)
	}
}

func TestLoadAndSize(t *testing.T) {
	b := New(2)
	b.Acquire()
	b.Acquire()
	b.Acquire()
	if b.Load(0) != 2 || b.Load(1) != 1 {
		t.Fatalf("loads = %d, %d", b.Load(0), b.Load(1))
	}
	if b.Size() != 2 {
		t.Fatalf("size = %d", b.Size())
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	b := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release(0)
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestConcurrentBalance(t *testing.T) {
	b := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				idx := b.Acquire()
				b.Release(idx)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if b.Load(i) != 0 {
			t.Fatalf("replica %d load = %d after all released", i, b.Load(i))
		}
	}
}

func TestHealthRouting(t *testing.T) {
	b := New(3)
	b.SetHealthy(1, false)
	if b.Healthy(1) || !b.Healthy(0) {
		t.Fatal("health flags not recorded")
	}
	// With replica 1 down, acquisitions spread over 0 and 2 only.
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		seen[b.Acquire()]++
	}
	if seen[1] != 0 || seen[0] != 3 || seen[2] != 3 {
		t.Fatalf("acquired %v with replica 1 down", seen)
	}
	// With every replica down, acquisition falls back instead of failing.
	b.SetHealthy(0, false)
	b.SetHealthy(2, false)
	if _, err := b.AcquireWhere(func(int) bool { return true }); err != nil {
		t.Fatalf("all-down acquire failed: %v", err)
	}
	// Recovery restores normal preference.
	b.SetHealthy(1, true)
	if idx, _ := b.AcquireWhere(func(int) bool { return true }); idx != 1 {
		t.Fatalf("healthy replica 1 not preferred, got %d", idx)
	}
}
