// Package lb provides the least-loaded load balancer both replicated
// designs place in front of their replicas (§5). Load is the number of
// outstanding transactions per replica; the balancer routes each new
// transaction to a replica with minimal load among the eligible set.
package lb

import (
	"errors"
	"sync"
)

// ErrNoEligible reports that no replica matched the eligibility
// predicate.
var ErrNoEligible = errors.New("lb: no eligible replica")

// Balancer tracks outstanding transactions per replica. It is safe
// for concurrent use.
//
// Membership is elastic: Add appends a new replica slot and Remove
// tombstones one. Slot indices are stable — removing a replica never
// renumbers the others, so callers can keep using an index as a
// replica identity. A removed slot is never acquired again, but
// in-flight transactions may still Release it.
//
// Replicas can additionally be marked unhealthy (SetHealthy), which
// the networked client pool uses when a server stops answering:
// acquisition prefers healthy replicas and falls back to unhealthy
// ones only when no healthy replica is eligible, so a dead replica is
// routed around without ever becoming unreachable for re-probing.
type Balancer struct {
	mu      sync.Mutex
	counts  []int
	down    []bool
	removed []bool
	rr      int // rotating scan start for deterministic, unbiased ties
}

// New creates a balancer over n replicas, all healthy. It panics if
// n <= 0.
func New(n int) *Balancer {
	if n <= 0 {
		panic("lb: need at least one replica")
	}
	return &Balancer{counts: make([]int, n), down: make([]bool, n), removed: make([]bool, n)}
}

// Add appends a new healthy replica slot and returns its index.
func (b *Balancer) Add() int { return b.add(true) }

// AddDown appends a new slot already marked unhealthy, so it receives
// no traffic until SetHealthy — the window a joining replica needs to
// install its state transfer before serving.
func (b *Balancer) AddDown() int { return b.add(false) }

func (b *Balancer) add(healthy bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counts = append(b.counts, 0)
	b.down = append(b.down, !healthy)
	b.removed = append(b.removed, false)
	return len(b.counts) - 1
}

// Remove tombstones replica i: it will never be acquired again, but
// outstanding transactions may still Release it. Removing an already
// removed slot is a no-op.
func (b *Balancer) Remove(i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.removed[i] = true
}

// Removed reports whether slot i has been tombstoned.
func (b *Balancer) Removed(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.removed[i]
}

// Acquire picks a least-loaded replica, increments its load, and
// returns its index.
func (b *Balancer) Acquire() int {
	i, _ := b.AcquireWhere(func(int) bool { return true })
	return i
}

// AcquireWhere picks the least-loaded healthy replica among those for
// which eligible returns true, falling back to unhealthy eligible
// replicas when no healthy one exists. Removed slots are never
// eligible.
//
// Ties rotate: the scan starts one slot further on every acquisition,
// so equally loaded replicas take turns instead of the lowest index
// always winning — after a removal, survivors above the hole would
// otherwise see systematically less traffic than those below it. The
// rotation is part of the balancer's own state, so routing remains
// deterministic for a given call sequence.
func (b *Balancer) AcquireWhere(eligible func(i int) bool) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.counts)
	start := b.rr % n
	best := -1
	for _, wantHealthy := range []bool{true, false} {
		for off := 0; off < n; off++ {
			i := start + off
			if i >= n {
				i -= n
			}
			if b.removed[i] || b.down[i] == wantHealthy || !eligible(i) {
				continue
			}
			if best == -1 || b.counts[i] < b.counts[best] {
				best = i
			}
		}
		if best != -1 {
			break
		}
	}
	if best == -1 {
		return 0, ErrNoEligible
	}
	b.counts[best]++
	b.rr++
	return best, nil
}

// SetHealthy marks replica i healthy or unhealthy.
func (b *Balancer) SetHealthy(i int, healthy bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[i] = !healthy
}

// Healthy reports whether replica i is currently marked healthy.
func (b *Balancer) Healthy(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.down[i]
}

// Release returns a transaction slot on replica i. Releasing below
// zero panics: it means the caller double-released.
func (b *Balancer) Release(i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.counts[i] <= 0 {
		panic("lb: release without acquire")
	}
	b.counts[i]--
}

// Load returns the current outstanding count of replica i.
func (b *Balancer) Load(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[i]
}

// Size returns the number of replica slots, including removed ones
// (slot indices are stable).
func (b *Balancer) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.counts)
}

// Live returns the number of slots that have not been removed.
func (b *Balancer) Live() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	live := 0
	for _, r := range b.removed {
		if !r {
			live++
		}
	}
	return live
}
