// Package lb provides the least-loaded load balancer both replicated
// designs place in front of their replicas (§5). Load is the number of
// outstanding transactions per replica; the balancer routes each new
// transaction to a replica with minimal load among the eligible set.
package lb

import (
	"errors"
	"sync"
)

// ErrNoEligible reports that no replica matched the eligibility
// predicate.
var ErrNoEligible = errors.New("lb: no eligible replica")

// Balancer tracks outstanding transactions per replica. It is safe
// for concurrent use.
type Balancer struct {
	mu     sync.Mutex
	counts []int
}

// New creates a balancer over n replicas. It panics if n <= 0.
func New(n int) *Balancer {
	if n <= 0 {
		panic("lb: need at least one replica")
	}
	return &Balancer{counts: make([]int, n)}
}

// Acquire picks a least-loaded replica, increments its load, and
// returns its index.
func (b *Balancer) Acquire() int {
	i, _ := b.AcquireWhere(func(int) bool { return true })
	return i
}

// AcquireWhere picks the least-loaded replica among those for which
// eligible returns true. Ties go to the lowest index, which keeps
// routing deterministic for tests.
func (b *Balancer) AcquireWhere(eligible func(i int) bool) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	best := -1
	for i, c := range b.counts {
		if !eligible(i) {
			continue
		}
		if best == -1 || c < b.counts[best] {
			best = i
		}
	}
	if best == -1 {
		return 0, ErrNoEligible
	}
	b.counts[best]++
	return best, nil
}

// Release returns a transaction slot on replica i. Releasing below
// zero panics: it means the caller double-released.
func (b *Balancer) Release(i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.counts[i] <= 0 {
		panic("lb: release without acquire")
	}
	b.counts[i]--
}

// Load returns the current outstanding count of replica i.
func (b *Balancer) Load(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[i]
}

// Size returns the number of replicas.
func (b *Balancer) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.counts)
}
