// Package lb provides the least-loaded load balancer both replicated
// designs place in front of their replicas (§5). Load is the number of
// outstanding transactions per replica; the balancer routes each new
// transaction to a replica with minimal load among the eligible set.
package lb

import (
	"errors"
	"sync"
)

// ErrNoEligible reports that no replica matched the eligibility
// predicate.
var ErrNoEligible = errors.New("lb: no eligible replica")

// Balancer tracks outstanding transactions per replica. It is safe
// for concurrent use.
//
// Replicas can additionally be marked unhealthy (SetHealthy), which
// the networked client pool uses when a server stops answering:
// acquisition prefers healthy replicas and falls back to unhealthy
// ones only when no healthy replica is eligible, so a dead replica is
// routed around without ever becoming unreachable for re-probing.
type Balancer struct {
	mu     sync.Mutex
	counts []int
	down   []bool
}

// New creates a balancer over n replicas, all healthy. It panics if
// n <= 0.
func New(n int) *Balancer {
	if n <= 0 {
		panic("lb: need at least one replica")
	}
	return &Balancer{counts: make([]int, n), down: make([]bool, n)}
}

// Acquire picks a least-loaded replica, increments its load, and
// returns its index.
func (b *Balancer) Acquire() int {
	i, _ := b.AcquireWhere(func(int) bool { return true })
	return i
}

// AcquireWhere picks the least-loaded healthy replica among those for
// which eligible returns true, falling back to unhealthy eligible
// replicas when no healthy one exists. Ties go to the lowest index,
// which keeps routing deterministic for tests.
func (b *Balancer) AcquireWhere(eligible func(i int) bool) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	best := -1
	for _, wantHealthy := range []bool{true, false} {
		for i, c := range b.counts {
			if b.down[i] == wantHealthy || !eligible(i) {
				continue
			}
			if best == -1 || c < b.counts[best] {
				best = i
			}
		}
		if best != -1 {
			break
		}
	}
	if best == -1 {
		return 0, ErrNoEligible
	}
	b.counts[best]++
	return best, nil
}

// SetHealthy marks replica i healthy or unhealthy.
func (b *Balancer) SetHealthy(i int, healthy bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[i] = !healthy
}

// Healthy reports whether replica i is currently marked healthy.
func (b *Balancer) Healthy(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.down[i]
}

// Release returns a transaction slot on replica i. Releasing below
// zero panics: it means the caller double-released.
func (b *Balancer) Release(i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.counts[i] <= 0 {
		panic("lb: release without acquire")
	}
	b.counts[i]--
}

// Load returns the current outstanding count of replica i.
func (b *Balancer) Load(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[i]
}

// Size returns the number of replicas.
func (b *Balancer) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.counts)
}
