package client

import (
	"fmt"
	"time"

	"repro/internal/certifier"
	"repro/internal/paxos"
	"repro/internal/wire"
	"repro/internal/writeset"
)

// Link is a replica server's connection to its primary (the certifier
// host in the mm design, the master in sm): remote certification, the
// eager conflict probe, and writeset retrieval. It satisfies
// mm.CertService, which is how a single-replica mm.Cluster becomes one
// node of a multi-process cluster.
//
// A Link is safe for concurrent use; each call checks a connection out
// of the underlying pool. Long-polling FetchSince calls hold their
// connection for the duration of the poll, so give the propagation
// loop its own Link rather than sharing the commit path's.
type Link struct {
	pool *connPool
	// meta, when set, observes the v4 per-record trace id and leader
	// commit timestamp during FetchSince decoding (both zero on
	// downgraded connections or untraced leaders).
	meta func(version int64, trace uint64, commitNs int64)
	// sinceWait is the long-poll window Since passes to FetchSince.
	// Zero keeps Since immediate (commit-path latency); catch-up and
	// sync loops set a small window so a caller already at the
	// primary's version parks there instead of busy polling.
	sinceWait time.Duration
	// noCompress asks the primary to skip DEFLATE on Records replies
	// (protocol v5; ignored by older servers).
	noCompress bool
}

// linkRPCDeadline bounds ordinary link RPCs so a one-way partition
// (peer unreachable but the TCP connection not torn down) surfaces as
// an error instead of parking the caller forever.
const linkRPCDeadline = 30 * time.Second

// NewLink creates a link from replica peerID to the primary at addr
// serving the given design ("" skips the check). No connection is
// dialed until first use.
func NewLink(addr, design string, peerID int, dialTimeout time.Duration) *Link {
	return &Link{pool: newConnPool(addr, design, int64(peerID), dialTimeout, 4)}
}

// Close drops the link's pooled connections and interrupts in-flight
// polls by invalidating the pool.
func (l *Link) Close() { l.pool.closeAll() }

// OnRecordMeta installs an observer for per-record trace metadata
// decoded from FetchSince replies. Install before the propagation loop
// starts; the Link does not synchronize replacement.
func (l *Link) OnRecordMeta(fn func(version int64, trace uint64, commitNs int64)) {
	l.meta = fn
}

// Certify submits a commit-time certification request to the primary.
func (l *Link) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	return l.CertifyTraced(snapshot, ws, 0)
}

// CertifyTraced is Certify carrying the submitting transaction's trace
// id (protocol v4; silently dropped on downgraded connections).
func (l *Link) CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	reply, err := l.pool.rpc(&wire.Certify{Snapshot: snapshot, WS: ws, Trace: trace}, linkRPCDeadline)
	if err != nil {
		return certifier.Outcome{}, err
	}
	m, ok := reply.(*wire.CertifyOK)
	if !ok {
		return certifier.Outcome{}, fmt.Errorf("client: unexpected certify reply %T", reply)
	}
	return certifier.Outcome{Committed: m.Committed, Version: m.Version, ConflictWith: m.ConflictWith}, nil
}

// Check probes a partial writeset for an already-certain conflict.
// Transport failures degrade to "no conflict": the probe is an
// optimization, commit-time certification remains authoritative.
func (l *Link) Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64) {
	reply, err := l.pool.rpc(&wire.Check{Snapshot: snapshot, WS: ws}, linkRPCDeadline)
	if err != nil {
		return false, 0
	}
	m, ok := reply.(*wire.CheckOK)
	if !ok {
		return false, 0
	}
	return m.Conflict, m.With
}

// PrepareTxn forwards a cross-shard fragment prepare to the primary
// (protocol v6): the raw form carrying snapshot and writeset, used when
// this node is not the certifier host. The primary's vote is binding —
// a transport failure leaves the outcome unknown and must surface as an
// error, never as a silent no-vote.
func (l *Link) PrepareTxn(p certifier.PreparedTxn) (vote bool, conflictWith int64, err error) {
	reply, err := l.pool.rpc(&wire.PrepareTxn{
		TxnID: p.ID, Coord: p.Coord, Snapshot: p.Snapshot, WS: p.Writeset,
	}, linkRPCDeadline)
	if err != nil {
		return false, 0, err
	}
	switch m := reply.(type) {
	case *wire.PrepareTxnOK:
		return m.Vote, m.ConflictWith, nil
	case *wire.Err:
		return false, 0, fmt.Errorf("client: prepare: %s", m.Msg)
	default:
		return false, 0, fmt.Errorf("client: unexpected prepare reply %T", reply)
	}
}

// DecideTxn forwards the coordinator's commit/abort decision for a
// prepared fragment (protocol v6).
func (l *Link) DecideTxn(id string, commit bool) (int64, error) {
	reply, err := l.pool.rpc(&wire.DecideTxn{TxnID: id, Commit: commit}, linkRPCDeadline)
	if err != nil {
		return 0, err
	}
	switch m := reply.(type) {
	case *wire.DecideTxnOK:
		return m.Version, nil
	case *wire.Err:
		return 0, fmt.Errorf("client: decide: %s", m.Msg)
	default:
		return 0, fmt.Errorf("client: unexpected decide reply %T", reply)
	}
}

// ResolveTxn asks the primary for the recorded outcome of an in-doubt
// cross-shard transaction (protocol v6; presumed abort if unrecorded).
func (l *Link) ResolveTxn(id string) (bool, error) {
	reply, err := l.pool.rpc(&wire.ResolveTxn{TxnID: id}, linkRPCDeadline)
	if err != nil {
		return false, err
	}
	switch m := reply.(type) {
	case *wire.ResolveTxnOK:
		return m.Commit, nil
	case *wire.Err:
		return false, fmt.Errorf("client: resolve: %s", m.Msg)
	default:
		return false, fmt.Errorf("client: unexpected resolve reply %T", reply)
	}
}

// ForgetTxn retires a fully acknowledged decision at the primary
// (protocol v6).
func (l *Link) ForgetTxn(id string) error {
	reply, err := l.pool.rpc(&wire.ForgetTxn{TxnID: id}, linkRPCDeadline)
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.ForgetTxnOK:
		return nil
	case *wire.Err:
		return fmt.Errorf("client: forget: %s", m.Msg)
	default:
		return fmt.Errorf("client: unexpected forget reply %T", reply)
	}
}

// SetSinceWait makes Since long-poll with the given window instead of
// returning immediately when the primary has nothing new. Install
// before the loops that call Since; the Link does not synchronize
// replacement.
func (l *Link) SetSinceWait(d time.Duration) { l.sinceWait = d }

// SetNoCompress disables DEFLATE on this link's Records replies
// (protocol v5; older servers ignore the request).
func (l *Link) SetNoCompress(v bool) { l.noCompress = v }

// RoundTrips returns the cumulative request/reply exchanges this link
// has attempted — the observable a steady-state regression test pins
// to prove catch-up long-polls instead of busy polling.
func (l *Link) RoundTrips() int64 { return l.pool.rpcs.Load() }

// Since returns every certified record with version > v, or nil when
// the primary is unreachable (the caller simply makes no propagation
// progress this round). With a SetSinceWait window installed the call
// long-polls at the primary when nothing is new.
func (l *Link) Since(v int64) []certifier.Record {
	recs, err := l.FetchSince(v, l.sinceWait)
	if err != nil {
		return nil
	}
	return recs
}

// Join asks the primary to admit a new replica listening on addr
// (protocol v2). It returns the assigned replica id, the membership
// epoch and the member list after admission.
func (l *Link) Join(addr string) (*wire.JoinOK, error) {
	reply, err := l.pool.rpc(&wire.Join{Addr: addr}, linkRPCDeadline)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.JoinOK)
	if !ok {
		return nil, fmt.Errorf("client: unexpected join reply %T", reply)
	}
	return m, nil
}

// Leave deregisters replica id from the primary (protocol v2).
func (l *Link) Leave(id int64) error {
	reply, err := l.pool.rpc(&wire.Leave{ID: id}, linkRPCDeadline)
	if err != nil {
		return err
	}
	if _, ok := reply.(*wire.LeaveOK); !ok {
		return fmt.Errorf("client: unexpected leave reply %T", reply)
	}
	return nil
}

// Snapshot fetches a consistent full-state snapshot from the primary
// (protocol v2): every table at one applied version, streamed in
// chunks. The whole stream runs on ONE checked-out connection — the
// server pins the snapshot per connection, so switching connections
// mid-stream would silently restart it at a different version. The
// caller catches up from the returned version via FetchSince.
func (l *Link) Snapshot() (version int64, tables map[string]map[int64]string, err error) {
	c, _, err := l.pool.get()
	if err != nil {
		return 0, nil, err
	}
	tables = make(map[string]map[int64]string)
	for {
		_ = c.nc.SetDeadline(time.Now().Add(linkRPCDeadline))
		reply, err := roundTrip(c, &wire.SnapshotReq{})
		if err != nil {
			l.pool.discard(c)
			return 0, nil, err
		}
		m, ok := reply.(*wire.SnapshotOK)
		if !ok {
			l.pool.discard(c)
			if e, isErr := reply.(*wire.Err); isErr {
				return 0, nil, fmt.Errorf("client: snapshot refused: %s", e.Msg)
			}
			return 0, nil, fmt.Errorf("client: unexpected snapshot reply %T", reply)
		}
		version = m.Version
		for _, t := range m.Tables {
			rows := tables[t.Name]
			if rows == nil {
				rows = make(map[int64]string, len(t.Rows))
				tables[t.Name] = rows
			}
			for i, r := range t.Rows {
				rows[r] = t.Values[i]
			}
		}
		if !m.More {
			break
		}
	}
	_ = c.nc.SetDeadline(time.Time{})
	l.pool.put(c)
	return version, tables, nil
}

// Members polls the primary's membership (protocol v2).
func (l *Link) Members() (epoch int64, members []wire.Member, err error) {
	reply, err := l.pool.rpc(&wire.Members{}, linkRPCDeadline)
	if err != nil {
		return 0, nil, err
	}
	m, ok := reply.(*wire.MembersOK)
	if !ok {
		return 0, nil, fmt.Errorf("client: unexpected members reply %T", reply)
	}
	return m.Epoch, m.Members, nil
}

// Stats polls a replica's cumulative serving counters (protocol v2).
func (l *Link) Stats() (*wire.StatsOK, error) {
	reply, err := l.pool.rpc(&wire.Stats{}, linkRPCDeadline)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.StatsOK)
	if !ok {
		return nil, fmt.Errorf("client: unexpected stats reply %T", reply)
	}
	return m, nil
}

// PaxosPrepare relays a Paxos phase-1a request to the acceptor
// embedded in the peer server (protocol v3).
func (l *Link) PaxosPrepare(b paxos.Ballot, slot int) (paxos.PrepareReply, error) {
	reply, err := l.pool.rpc(&wire.PaxosPrepare{
		Round: int64(b.Round), Proposer: int64(b.Proposer), Slot: int64(slot),
	}, linkRPCDeadline)
	if err != nil {
		return paxos.PrepareReply{}, err
	}
	m, ok := reply.(*wire.PaxosPrepareOK)
	if !ok {
		return paxos.PrepareReply{}, fmt.Errorf("client: unexpected prepare reply %T", reply)
	}
	return paxos.PrepareReply{
		OK:             m.OK,
		Promised:       paxos.Ballot{Round: int(m.PromisedRound), Proposer: int(m.PromisedProposer)},
		AcceptedBallot: paxos.Ballot{Round: int(m.AcceptedRound), Proposer: int(m.AcceptedProposer)},
		AcceptedValue:  paxos.Value(m.AcceptedValue),
		HasAccepted:    m.HasAccepted,
	}, nil
}

// PaxosAccept relays a Paxos phase-2a request to the acceptor embedded
// in the peer server (protocol v3).
func (l *Link) PaxosAccept(b paxos.Ballot, slot int, v paxos.Value) (paxos.AcceptReply, error) {
	reply, err := l.pool.rpc(&wire.PaxosAccept{
		Round: int64(b.Round), Proposer: int64(b.Proposer), Slot: int64(slot), Value: string(v),
	}, linkRPCDeadline)
	if err != nil {
		return paxos.AcceptReply{}, err
	}
	m, ok := reply.(*wire.PaxosAcceptOK)
	if !ok {
		return paxos.AcceptReply{}, fmt.Errorf("client: unexpected accept reply %T", reply)
	}
	return paxos.AcceptReply{
		OK:       m.OK,
		Promised: paxos.Ballot{Round: int(m.PromisedRound), Proposer: int(m.PromisedProposer)},
	}, nil
}

// PaxosLearn asks the peer's acceptor for its highest voted slot and
// current promise (protocol v3), the first step of an election.
func (l *Link) PaxosLearn() (paxos.LearnReply, error) {
	reply, err := l.pool.rpc(&wire.PaxosLearn{}, linkRPCDeadline)
	if err != nil {
		return paxos.LearnReply{}, err
	}
	m, ok := reply.(*wire.PaxosLearnOK)
	if !ok {
		return paxos.LearnReply{}, fmt.Errorf("client: unexpected learn reply %T", reply)
	}
	return paxos.LearnReply{
		MaxSlot:  int(m.MaxSlot),
		Promised: paxos.Ballot{Round: int(m.PromisedRound), Proposer: int(m.PromisedProposer)},
	}, nil
}

// FetchSince retrieves records with version > v; wait > 0 long-polls
// at the primary until records arrive or the wait expires.
func (l *Link) FetchSince(v int64, wait time.Duration) ([]certifier.Record, error) {
	req := &wire.FetchSince{Version: v, NoCompress: l.noCompress}
	if wait > 0 {
		req.WaitMillis = uint32(wait / time.Millisecond)
	}
	reply, err := l.pool.rpc(req, wait+linkRPCDeadline)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.Records)
	if !ok {
		return nil, fmt.Errorf("client: unexpected fetch reply %T", reply)
	}
	recs := make([]certifier.Record, len(m.Recs))
	for i, r := range m.Recs {
		recs[i] = certifier.Record{Version: r.Version, Writeset: r.WS}
		if l.meta != nil && (r.Trace != 0 || r.CommitNs != 0) {
			l.meta(r.Version, r.Trace, r.CommitNs)
		}
	}
	return recs, nil
}
