package client

import (
	"fmt"
	"time"

	"repro/internal/certifier"
	"repro/internal/wire"
	"repro/internal/writeset"
)

// Link is a replica server's connection to its primary (the certifier
// host in the mm design, the master in sm): remote certification, the
// eager conflict probe, and writeset retrieval. It satisfies
// mm.CertService, which is how a single-replica mm.Cluster becomes one
// node of a multi-process cluster.
//
// A Link is safe for concurrent use; each call checks a connection out
// of the underlying pool. Long-polling FetchSince calls hold their
// connection for the duration of the poll, so give the propagation
// loop its own Link rather than sharing the commit path's.
type Link struct {
	pool *connPool
}

// linkRPCDeadline bounds ordinary link RPCs so a one-way partition
// (peer unreachable but the TCP connection not torn down) surfaces as
// an error instead of parking the caller forever.
const linkRPCDeadline = 30 * time.Second

// NewLink creates a link from replica peerID to the primary at addr
// serving the given design ("" skips the check). No connection is
// dialed until first use.
func NewLink(addr, design string, peerID int, dialTimeout time.Duration) *Link {
	return &Link{pool: newConnPool(addr, design, int64(peerID), dialTimeout, 4)}
}

// Close drops the link's pooled connections and interrupts in-flight
// polls by invalidating the pool.
func (l *Link) Close() { l.pool.closeAll() }

// Certify submits a commit-time certification request to the primary.
func (l *Link) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	reply, err := l.pool.rpc(&wire.Certify{Snapshot: snapshot, WS: ws}, linkRPCDeadline)
	if err != nil {
		return certifier.Outcome{}, err
	}
	m, ok := reply.(*wire.CertifyOK)
	if !ok {
		return certifier.Outcome{}, fmt.Errorf("client: unexpected certify reply %T", reply)
	}
	return certifier.Outcome{Committed: m.Committed, Version: m.Version, ConflictWith: m.ConflictWith}, nil
}

// Check probes a partial writeset for an already-certain conflict.
// Transport failures degrade to "no conflict": the probe is an
// optimization, commit-time certification remains authoritative.
func (l *Link) Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64) {
	reply, err := l.pool.rpc(&wire.Check{Snapshot: snapshot, WS: ws}, linkRPCDeadline)
	if err != nil {
		return false, 0
	}
	m, ok := reply.(*wire.CheckOK)
	if !ok {
		return false, 0
	}
	return m.Conflict, m.With
}

// Since returns every certified record with version > v, or nil when
// the primary is unreachable (the caller simply makes no propagation
// progress this round).
func (l *Link) Since(v int64) []certifier.Record {
	recs, err := l.FetchSince(v, 0)
	if err != nil {
		return nil
	}
	return recs
}

// FetchSince retrieves records with version > v; wait > 0 long-polls
// at the primary until records arrive or the wait expires.
func (l *Link) FetchSince(v int64, wait time.Duration) ([]certifier.Record, error) {
	req := &wire.FetchSince{Version: v}
	if wait > 0 {
		req.WaitMillis = uint32(wait / time.Millisecond)
	}
	reply, err := l.pool.rpc(req, wait+linkRPCDeadline)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.Records)
	if !ok {
		return nil, fmt.Errorf("client: unexpected fetch reply %T", reply)
	}
	recs := make([]certifier.Record, len(m.Recs))
	for i, r := range m.Recs {
		recs[i] = certifier.Record{Version: r.Version, Writeset: r.WS}
	}
	return recs, nil
}
