// Package client implements the connection-pooled network driver for
// the replica servers in internal/server: it satisfies the same
// repl.System and repl.Loader interfaces the in-process clusters do,
// so the workload driver (repl.Drive), catalog loader and convergence
// checker run unchanged over TCP.
//
// Routing mirrors the in-process load balancer: transactions go to the
// least-loaded replica (updates pinned to the master for the
// single-master design), one pooled connection is checked out per
// transaction, and a replica that stops answering is marked down and
// routed around until a later probe revives it — the behavior the
// kill-one-replica test exercises.
package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/lb"
	"repro/internal/repl"
	"repro/internal/wire"
)

// Options configure the driver.
type Options struct {
	// Servers lists replica addresses indexed by replica id; index 0
	// is the certifier host (mm) or the master (sm).
	Servers []string
	// Design selects update routing: "mm" sends updates to any
	// replica, "sm" pins them to server 0.
	Design string
	// PoolSize caps retained idle connections per server (default 4).
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// ProbeAfter is how long a server marked down is skipped before
	// being optimistically re-probed (default 500ms).
	ProbeAfter time.Duration
}

// Client is a pooled driver over a set of replica servers. It is safe
// for concurrent use by many workload goroutines.
type Client struct {
	opts Options
	bal  *lb.Balancer
	reps []*replicaConns
}

// replicaConns is the per-replica pool plus down-state.
type replicaConns struct {
	pool *connPool

	mu        sync.Mutex
	downUntil time.Time
}

var _ repl.System = (*Client)(nil)
var _ repl.Loader = (*Client)(nil)

// New creates a driver over the given servers. No connections are
// dialed until first use.
func New(opts Options) (*Client, error) {
	if len(opts.Servers) == 0 {
		return nil, errors.New("client: no servers")
	}
	switch opts.Design {
	case "mm", "sm":
	default:
		return nil, fmt.Errorf("client: unknown design %q (mm|sm)", opts.Design)
	}
	if opts.ProbeAfter <= 0 {
		opts.ProbeAfter = 500 * time.Millisecond
	}
	c := &Client{opts: opts, bal: lb.New(len(opts.Servers))}
	for _, addr := range opts.Servers {
		c.reps = append(c.reps, &replicaConns{
			pool: newConnPool(addr, opts.Design, -1, opts.DialTimeout, opts.PoolSize),
		})
	}
	return c, nil
}

// Close releases every pooled connection.
func (c *Client) Close() {
	for _, r := range c.reps {
		r.pool.closeAll()
	}
}

// Replicas returns the number of replica servers.
func (c *Client) Replicas() int { return len(c.reps) }

// markDown records a replica failure for routing.
func (c *Client) markDown(idx int) {
	r := c.reps[idx]
	r.mu.Lock()
	r.downUntil = time.Now().Add(c.opts.ProbeAfter)
	r.mu.Unlock()
	c.bal.SetHealthy(idx, false)
}

// reviveDue optimistically re-admits down replicas whose probe
// interval has passed; a still-dead replica is re-marked on the next
// failed begin.
func (c *Client) reviveDue() {
	now := time.Now()
	for i, r := range c.reps {
		if c.bal.Healthy(i) {
			continue
		}
		r.mu.Lock()
		due := now.After(r.downUntil)
		r.mu.Unlock()
		if due {
			c.bal.SetHealthy(i, true)
		}
	}
}

// BeginRead starts a read-only transaction on a least-loaded replica.
func (c *Client) BeginRead() (repl.Txn, error) { return c.begin(true) }

// BeginUpdate starts an update transaction (any replica for mm, the
// master for sm).
func (c *Client) BeginUpdate() (repl.Txn, error) { return c.begin(false) }

func (c *Client) begin(readOnly bool) (repl.Txn, error) {
	eligible := func(i int) bool {
		if c.opts.Design == "sm" && !readOnly {
			return i == 0
		}
		return true
	}
	c.reviveDue()
	var lastErr error
	for attempt := 0; attempt <= len(c.reps); attempt++ {
		idx, err := c.bal.AcquireWhere(eligible)
		if err != nil {
			return nil, err
		}
		tx, err := c.beginOn(idx, readOnly)
		if err == nil {
			return tx, nil
		}
		c.bal.Release(idx)
		lastErr = err
		var pe *protocolError
		if errors.As(err, &pe) {
			// The server answered but refused; rerouting won't help.
			return nil, err
		}
		c.markDown(idx)
	}
	return nil, fmt.Errorf("client: begin failed on every replica: %w", lastErr)
}

// protocolError is a server-level refusal (as opposed to a transport
// failure, which triggers failover).
type protocolError struct {
	code uint8
	msg  string
}

func (e *protocolError) Error() string { return e.msg }

// beginOn opens a transaction on replica idx, draining stale pooled
// connections as it goes.
func (c *Client) beginOn(idx int, readOnly bool) (*Txn, error) {
	pool := c.reps[idx].pool
	var lastErr error
	for attempt := 0; attempt <= pool.maxIdle+1; attempt++ {
		conn, fresh, err := pool.get()
		if err != nil {
			return nil, err
		}
		reply, err := roundTrip(conn, &wire.Begin{ReadOnly: readOnly})
		if err != nil {
			pool.discard(conn)
			lastErr = err
			if fresh {
				return nil, err
			}
			continue // stale pooled connection, try the next
		}
		switch m := reply.(type) {
		case *wire.BeginOK:
			return &Txn{client: c, idx: idx, conn: conn, readOnly: readOnly}, nil
		case *wire.Err:
			pool.put(conn)
			return nil, &protocolError{code: m.Code, msg: fmt.Sprintf("client: begin on %s: %s", pool.addr, m.Msg)}
		default:
			pool.discard(conn)
			return nil, fmt.Errorf("client: begin on %s: unexpected reply %T", pool.addr, reply)
		}
	}
	return nil, fmt.Errorf("client: begin on %s: %w", pool.addr, lastErr)
}

// Txn is one transaction bound to one checked-out connection.
type Txn struct {
	client   *Client
	idx      int
	conn     *wconn
	readOnly bool
	done     bool
}

var _ repl.Txn = (*Txn)(nil)

// fail tears the transaction down after a transport error: the
// connection state is unknown, so it is discarded.
func (t *Txn) fail(err error) error {
	if !t.done {
		t.done = true
		t.client.reps[t.idx].pool.discard(t.conn)
		t.client.bal.Release(t.idx)
	}
	return err
}

// finish returns the connection to the pool after a clean protocol
// exchange ended the transaction.
func (t *Txn) finish() {
	if t.done {
		return
	}
	t.done = true
	t.client.reps[t.idx].pool.put(t.conn)
	t.client.bal.Release(t.idx)
}

// errDone mirrors the engines' use-after-finish error.
var errDone = errors.New("client: transaction already finished")

func (t *Txn) exchange(req wire.Message) (wire.Message, error) {
	if t.done {
		return nil, errDone
	}
	reply, err := roundTrip(t.conn, req)
	if err != nil {
		return nil, t.fail(err)
	}
	return reply, nil
}

// mapErr converts a wire.Err into the repl sentinel errors the
// workload driver expects.
func mapErr(m *wire.Err) error {
	switch m.Code {
	case wire.CodeReadOnly:
		return repl.ErrReadOnlyTxn
	default:
		return fmt.Errorf("client: %s", m.Msg)
	}
}

// Read implements repl.Txn.
func (t *Txn) Read(table string, row int64) (string, bool, error) {
	reply, err := t.exchange(&wire.Read{Table: table, Row: row})
	if err != nil {
		return "", false, err
	}
	switch m := reply.(type) {
	case *wire.ReadOK:
		return m.Value, m.OK, nil
	case *wire.Err:
		return "", false, mapErr(m)
	default:
		return "", false, t.fail(fmt.Errorf("client: unexpected read reply %T", reply))
	}
}

// Write implements repl.Txn. A CommitAborted reply means eager
// certification already doomed the transaction.
func (t *Txn) Write(table string, row int64, value string) error {
	reply, err := t.exchange(&wire.Write{Table: table, Row: row, Value: value})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.WriteOK:
		return nil
	case *wire.CommitAborted:
		return &repl.AbortedError{ConflictWith: m.ConflictWith}
	case *wire.Err:
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected write reply %T", reply))
	}
}

// Delete implements repl.Txn.
func (t *Txn) Delete(table string, row int64) error {
	reply, err := t.exchange(&wire.Delete{Table: table, Row: row})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.WriteOK:
		return nil
	case *wire.Err:
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected delete reply %T", reply))
	}
}

// Commit implements repl.Txn.
func (t *Txn) Commit() error {
	reply, err := t.exchange(&wire.Commit{})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.CommitOK:
		t.finish()
		return nil
	case *wire.CommitAborted:
		t.finish()
		return &repl.AbortedError{ConflictWith: m.ConflictWith}
	case *wire.Err:
		t.finish()
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected commit reply %T", reply))
	}
}

// Abort implements repl.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	reply, err := roundTrip(t.conn, &wire.Abort{})
	if err != nil {
		t.fail(err)
		return
	}
	if _, ok := reply.(*wire.AbortOK); !ok {
		t.fail(fmt.Errorf("client: unexpected abort reply %T", reply))
		return
	}
	t.finish()
}

// Sync implements repl.System: every reachable replica is asked to
// apply all writesets committed so far (each pulls from the certifier
// host or master). Unreachable replicas are skipped — their table
// dumps will fail loudly if anyone asks.
func (c *Client) Sync() {
	for _, r := range c.reps {
		_, _ = r.pool.rpc(&wire.Sync{}, 0)
	}
}

// TableDump implements repl.System.
func (c *Client) TableDump(replica int, table string) (map[int64]string, error) {
	if replica < 0 || replica >= len(c.reps) {
		return nil, fmt.Errorf("client: replica %d out of range", replica)
	}
	reply, err := c.reps[replica].pool.rpc(&wire.Dump{Table: table}, 0)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.DumpOK)
	if !ok {
		return nil, fmt.Errorf("client: unexpected dump reply %T", reply)
	}
	out := make(map[int64]string, len(m.Rows))
	for i, row := range m.Rows {
		out[row] = m.Values[i]
	}
	return out, nil
}

// CreateTable implements repl.Loader: the table is created on every
// replica.
func (c *Client) CreateTable(name string) error {
	for i, r := range c.reps {
		if _, err := r.pool.rpc(&wire.CreateTable{Name: name}, 0); err != nil {
			return fmt.Errorf("client: create %q on replica %d: %w", name, i, err)
		}
	}
	return nil
}

// loadChunk bounds one Load frame; at typical row-value sizes a chunk
// stays well under a kilobyte-per-row budget.
const loadChunk = 512

// Load implements repl.Loader: values are evaluated client-side once
// and streamed in identical chunk sequences to every replica, which
// keeps their local version counters aligned (the networked
// equivalent of the in-process bulk load). Replicas load in parallel —
// ordering only matters per replica — so wall time does not multiply
// by the replica count.
func (c *Client) Load(table string, rows int, value func(int64) string) error {
	var chunks []*wire.Load
	for start := 0; start < rows; start += loadChunk {
		end := start + loadChunk
		if end > rows {
			end = rows
		}
		values := make([]string, 0, end-start)
		for r := start; r < end; r++ {
			values = append(values, value(int64(r)))
		}
		chunks = append(chunks, &wire.Load{Table: table, Start: int64(start), Values: values})
	}
	errs := make([]error, len(c.reps))
	var wg sync.WaitGroup
	for i, r := range c.reps {
		wg.Add(1)
		go func(i int, r *replicaConns) {
			defer wg.Done()
			for _, msg := range chunks {
				if _, err := r.pool.rpc(msg, 0); err != nil {
					errs[i] = fmt.Errorf("client: load %q rows [%d,%d) on replica %d: %w",
						table, msg.Start, msg.Start+int64(len(msg.Values)), i, err)
					return
				}
			}
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Addrs returns the configured server addresses (for logs).
func (c *Client) Addrs() string {
	addrs := make([]string, len(c.reps))
	for i, r := range c.reps {
		addrs[i] = r.pool.addr
	}
	return strings.Join(addrs, ",")
}
