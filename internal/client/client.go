// Package client implements the connection-pooled network driver for
// the replica servers in internal/server: it satisfies the same
// repl.System and repl.Loader interfaces the in-process clusters do,
// so the workload driver (repl.Drive), catalog loader and convergence
// checker run unchanged over TCP.
//
// Routing mirrors the in-process load balancer: transactions go to the
// least-loaded replica (updates pinned to the master for the
// single-master design), one pooled connection is checked out per
// transaction, and a replica that stops answering is marked down and
// routed around until a later probe revives it — the behavior the
// kill-one-replica test exercises.
//
// Membership is elastic (mm design): with Options.Watch the client
// polls the primary's member list and resizes its pool set live —
// replicas that join start taking traffic, replicas that leave stop
// receiving new transactions immediately. A replica that vanishes
// mid-transaction surfaces as repl.ErrAborted on the next operation,
// so closed-loop drivers retry the transaction on a surviving replica
// exactly like a certification abort.
package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/lb"
	"repro/internal/repl"
	"repro/internal/wire"
)

// Options configure the driver.
type Options struct {
	// Servers lists replica addresses indexed by replica id; index 0
	// is the certifier host (mm) or the master (sm).
	Servers []string
	// Design selects update routing: "mm" sends updates to any
	// replica, "sm" pins them to server 0.
	Design string
	// PoolSize caps retained idle connections per server (default 4).
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// ProbeAfter is how long a server marked down is skipped before
	// being optimistically re-probed (default 500ms).
	ProbeAfter time.Duration
	// Watch enables elastic membership: the client polls the
	// primary's member list (mm only) and adds/retires replica pools
	// as the cluster grows and shrinks.
	Watch bool
	// WatchInterval is the membership poll period (default 250ms).
	WatchInterval time.Duration
	// Pipeline streams a transaction's Write/Delete frames without
	// waiting for each ack; the acks are drained at the next
	// synchronous point (Read, Commit or Abort — the wire protocol is
	// strict in-order request/reply, so frame alignment is preserved).
	// One round trip per transaction's write burst instead of one per
	// op. Typed semantics are preserved: a drained non-ack dooms the
	// transaction with the same error the unpipelined op would have
	// returned, surfaced before Commit is ever sent — except that an
	// eager-certification abort now surfaces at the next sync point
	// rather than at the offending Write.
	Pipeline bool
}

// Client is a pooled driver over a set of replica servers. It is safe
// for concurrent use by many workload goroutines.
type Client struct {
	opts Options
	bal  *lb.Balancer

	// mu guards the slot table; slot indices are stable and shared
	// with the balancer (departed replicas are tombstoned, never
	// renumbered).
	mu        sync.Mutex
	reps      []*replicaConns
	memberIdx map[int64]int // member id -> slot index
	epoch     int64
	// Shard-map fields as last published by the primary (protocol v6;
	// all zero on unsharded or pre-v6 deployments).
	shardID    int64
	shardCount int64
	mapVersion int64

	stopWatch chan struct{}
	watchWG   sync.WaitGroup
}

// replicaConns is the per-replica pool plus down-state.
type replicaConns struct {
	id   int64
	pool *connPool

	mu        sync.Mutex
	downUntil time.Time
}

var _ repl.System = (*Client)(nil)
var _ repl.Loader = (*Client)(nil)

// New creates a driver over the given servers. No connections are
// dialed until first use.
func New(opts Options) (*Client, error) {
	if len(opts.Servers) == 0 {
		return nil, errors.New("client: no servers")
	}
	switch opts.Design {
	case "mm", "sm":
	default:
		return nil, fmt.Errorf("client: unknown design %q (mm|sm)", opts.Design)
	}
	if opts.Watch && opts.Design != "mm" {
		return nil, errors.New("client: membership watching requires the mm design")
	}
	if opts.ProbeAfter <= 0 {
		opts.ProbeAfter = 500 * time.Millisecond
	}
	if opts.WatchInterval <= 0 {
		opts.WatchInterval = 250 * time.Millisecond
	}
	c := &Client{
		opts:      opts,
		bal:       lb.New(len(opts.Servers)),
		memberIdx: make(map[int64]int),
	}
	for i, addr := range opts.Servers {
		c.reps = append(c.reps, &replicaConns{
			id:   int64(i),
			pool: newConnPool(addr, opts.Design, -1, opts.DialTimeout, opts.PoolSize),
		})
		c.memberIdx[int64(i)] = i
	}
	if opts.Watch {
		c.stopWatch = make(chan struct{})
		c.watchWG.Add(1)
		go func() {
			defer c.watchWG.Done()
			c.watchLoop()
		}()
	}
	return c, nil
}

// Close stops the membership watcher and releases every pooled
// connection.
func (c *Client) Close() {
	if c.stopWatch != nil {
		close(c.stopWatch)
		c.watchWG.Wait()
		c.stopWatch = nil
	}
	for _, r := range c.slots() {
		r.pool.closeAll()
	}
}

// slots snapshots the slot table.
func (c *Client) slots() []*replicaConns {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*replicaConns, len(c.reps))
	copy(out, c.reps)
	return out
}

// rep returns the replica at a slot index.
func (c *Client) rep(i int) *replicaConns {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reps[i]
}

// liveSlots returns the non-departed replicas with their slot
// indices, in slot order.
func (c *Client) liveSlots() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.reps))
	for i := range c.reps {
		if !c.bal.Removed(i) {
			out = append(out, i)
		}
	}
	return out
}

// Replicas returns the number of live replica servers.
func (c *Client) Replicas() int { return len(c.liveSlots()) }

// watchLoop polls the primary's membership and reconciles the slot
// table: new members get pools and balancer slots, departed members
// are tombstoned (new transactions stop immediately; connections
// already serving a transaction finish it — the server drains before
// deregistering).
func (c *Client) watchLoop() {
	ticker := time.NewTicker(c.opts.WatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopWatch:
			return
		case <-ticker.C:
			c.pollMembership()
		}
	}
}

func (c *Client) pollMembership() {
	primary := c.rep(0)
	reply, err := primary.pool.rpc(&wire.Members{}, c.opts.WatchInterval+linkRPCDeadline)
	if err != nil {
		return // primary unreachable: keep the current view
	}
	m, ok := reply.(*wire.MembersOK)
	if !ok {
		return
	}
	c.mu.Lock()
	c.shardID, c.shardCount, c.mapVersion = m.ShardID, m.ShardCount, m.MapVersion
	if m.Epoch == c.epoch {
		c.mu.Unlock()
		return
	}
	c.epoch = m.Epoch
	current := make(map[int64]wire.Member, len(m.Members))
	for _, mem := range m.Members {
		current[mem.ID] = mem
	}
	// Tombstone departed members.
	var retired []*replicaConns
	for id, idx := range c.memberIdx {
		if _, still := current[id]; still {
			continue
		}
		if !c.bal.Removed(idx) {
			c.bal.Remove(idx)
			retired = append(retired, c.reps[idx])
		}
		delete(c.memberIdx, id)
	}
	// Admit joiners. The slot entry is appended before the balancer
	// slot exists, so an index the balancer hands out always resolves.
	for id, mem := range current {
		if _, have := c.memberIdx[id]; have || mem.Addr == "" {
			continue
		}
		rc := &replicaConns{
			id:   id,
			pool: newConnPool(mem.Addr, c.opts.Design, -1, c.opts.DialTimeout, c.opts.PoolSize),
		}
		c.reps = append(c.reps, rc)
		idx := c.bal.Add()
		c.memberIdx[id] = idx
	}
	c.mu.Unlock()
	for _, rc := range retired {
		rc.pool.retire()
	}
}

// Epoch returns the last membership epoch the watcher observed.
func (c *Client) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// markDown records a replica failure for routing.
func (c *Client) markDown(idx int) {
	r := c.rep(idx)
	r.mu.Lock()
	r.downUntil = time.Now().Add(c.opts.ProbeAfter)
	r.mu.Unlock()
	c.bal.SetHealthy(idx, false)
}

// reviveDue optimistically re-admits down replicas whose probe
// interval has passed; a still-dead replica is re-marked on the next
// failed begin.
func (c *Client) reviveDue() {
	now := time.Now()
	for _, i := range c.liveSlots() {
		if c.bal.Healthy(i) {
			continue
		}
		r := c.rep(i)
		r.mu.Lock()
		due := now.After(r.downUntil)
		r.mu.Unlock()
		if due {
			c.bal.SetHealthy(i, true)
		}
	}
}

// BeginRead starts a read-only transaction on a least-loaded replica.
func (c *Client) BeginRead() (repl.Txn, error) { return c.begin(true) }

// BeginUpdate starts an update transaction (any replica for mm, the
// master for sm).
func (c *Client) BeginUpdate() (repl.Txn, error) { return c.begin(false) }

func (c *Client) begin(readOnly bool) (repl.Txn, error) {
	eligible := func(i int) bool {
		if c.opts.Design == "sm" && !readOnly {
			return i == 0
		}
		return true
	}
	c.reviveDue()
	var lastErr error
	attempts := c.bal.Size() + 1
	for attempt := 0; attempt <= attempts; attempt++ {
		idx, err := c.bal.AcquireWhere(eligible)
		if err != nil {
			return nil, err
		}
		tx, err := c.beginOn(idx, readOnly)
		if err == nil {
			return tx, nil
		}
		c.bal.Release(idx)
		lastErr = err
		var pe *protocolError
		if errors.As(err, &pe) {
			if pe.code == wire.CodeDraining {
				// The replica is leaving: stop routing to it and try
				// another. The next membership poll retires it.
				c.markDown(idx)
				continue
			}
			// The server answered but refused; rerouting won't help.
			return nil, err
		}
		c.markDown(idx)
	}
	return nil, fmt.Errorf("client: begin failed on every replica: %w", lastErr)
}

// protocolError is a server-level refusal (as opposed to a transport
// failure, which triggers failover).
type protocolError struct {
	code uint8
	msg  string
}

func (e *protocolError) Error() string { return e.msg }

// beginOn opens a transaction on replica idx, draining stale pooled
// connections as it goes.
func (c *Client) beginOn(idx int, readOnly bool) (*Txn, error) {
	rep := c.rep(idx)
	pool := rep.pool
	var lastErr error
	for attempt := 0; attempt <= pool.maxIdle+1; attempt++ {
		conn, fresh, err := pool.get()
		if err != nil {
			return nil, err
		}
		reply, err := roundTrip(conn, &wire.Begin{ReadOnly: readOnly})
		if err != nil {
			pool.discard(conn)
			lastErr = err
			if fresh {
				return nil, err
			}
			continue // stale pooled connection, try the next
		}
		switch m := reply.(type) {
		case *wire.BeginOK:
			return &Txn{client: c, idx: idx, rep: rep, conn: conn, readOnly: readOnly,
				trace: m.Trace, pipeline: c.opts.Pipeline}, nil
		case *wire.Err:
			pool.put(conn)
			return nil, &protocolError{code: m.Code, msg: fmt.Sprintf("client: begin on %s: %s", pool.addr, m.Msg)}
		default:
			pool.discard(conn)
			return nil, fmt.Errorf("client: begin on %s: unexpected reply %T", pool.addr, reply)
		}
	}
	return nil, fmt.Errorf("client: begin on %s: %w", pool.addr, lastErr)
}

// Txn is one transaction bound to one checked-out connection.
type Txn struct {
	client   *Client
	idx      int
	rep      *replicaConns
	conn     *wconn
	readOnly bool
	done     bool
	trace    uint64

	// Pipelining state (Options.Pipeline): Write/Delete frames are
	// sent without waiting for their acks; inflight counts acks owed,
	// and doomed records the first typed error a drained ack carried.
	pipeline bool
	inflight int
	doomed   error

	// writes counts staged Write/Delete ops — the client-side signal a
	// sharded router uses to tell writing participants from read-only
	// bystanders (the server holds the actual writeset).
	writes int
}

var _ repl.Txn = (*Txn)(nil)

// Trace returns the server-assigned trace id of this transaction, or
// zero when the replica negotiated a pre-v4 protocol or runs with
// tracing disabled. The id stitches the client's view of a commit to
// the certify/apply spans exported at /debug/slowtxns on every node.
func (t *Txn) Trace() uint64 { return t.trace }

// fail tears the transaction down after a transport error: the
// connection state is unknown, so it is discarded, and the replica is
// marked down so new transactions route around it.
func (t *Txn) fail(err error) error {
	if !t.done {
		t.done = true
		t.rep.pool.discard(t.conn)
		t.client.bal.Release(t.idx)
		t.client.markDown(t.idx)
	}
	return err
}

// failAborted converts a mid-transaction transport failure into the
// abort-and-retry path: the replica died or left under us, the
// transaction never certified, so surfacing repl.ErrAborted makes
// closed-loop drivers retry it on a surviving replica exactly like a
// certification abort. Commit is excluded — its outcome is ambiguous
// once the request may have reached the certifier.
func (t *Txn) failAborted(err error) error {
	t.fail(err)
	return &repl.AbortedError{}
}

// finish returns the connection to the pool after a clean protocol
// exchange ended the transaction.
func (t *Txn) finish() {
	if t.done {
		return
	}
	t.done = true
	t.rep.pool.put(t.conn)
	t.client.bal.Release(t.idx)
}

// errDone mirrors the engines' use-after-finish error.
var errDone = errors.New("client: transaction already finished")

func (t *Txn) exchange(req wire.Message) (wire.Message, error) {
	if t.done {
		return nil, errDone
	}
	reply, err := roundTrip(t.conn, req)
	if err != nil {
		return nil, t.failAborted(err)
	}
	return reply, nil
}

// mapErr converts a wire.Err into the repl sentinel errors the
// workload driver expects.
func mapErr(m *wire.Err) error {
	switch m.Code {
	case wire.CodeReadOnly:
		return repl.ErrReadOnlyTxn
	default:
		return fmt.Errorf("client: %s", m.Msg)
	}
}

// pipelineOp streams one Write/Delete frame without waiting for its
// ack. The wire protocol is strict in-order request/reply, so the acks
// arrive in send order and are drained at the next synchronous point.
func (t *Txn) pipelineOp(req wire.Message) error {
	if t.done {
		return errDone
	}
	if t.doomed != nil {
		return t.doomed
	}
	if err := t.conn.wc.Send(req); err != nil {
		return t.failAborted(err)
	}
	t.inflight++
	return nil
}

// drainAcks consumes the acks owed for pipelined ops. The first
// non-WriteOK reply dooms the transaction with the typed error the
// unpipelined op would have returned; draining continues regardless so
// the connection stays frame-aligned. A transport failure here is
// retry-safe (Commit has not been sent), so it surfaces as an abort.
func (t *Txn) drainAcks() error {
	for t.inflight > 0 {
		reply, err := t.conn.wc.Recv()
		if err != nil {
			t.inflight = 0
			return t.failAborted(err)
		}
		t.inflight--
		if t.doomed != nil {
			continue
		}
		switch m := reply.(type) {
		case *wire.WriteOK:
		case *wire.CommitAborted:
			// Eager certification doomed the transaction at the server.
			t.doomed = &repl.AbortedError{ConflictWith: m.ConflictWith}
		case *wire.NotLeader:
			t.doomed = &repl.AbortedError{}
		case *wire.Err:
			t.doomed = mapErr(m)
		default:
			t.inflight = 0
			return t.fail(fmt.Errorf("client: unexpected pipelined ack %T", reply))
		}
	}
	return nil
}

// syncPoint drains pipelined acks and surfaces a recorded doom before
// the caller issues a synchronous exchange.
func (t *Txn) syncPoint() error {
	if t.inflight > 0 {
		if err := t.drainAcks(); err != nil {
			return err
		}
	}
	return t.doomed
}

// Read implements repl.Txn.
func (t *Txn) Read(table string, row int64) (string, bool, error) {
	if err := t.syncPoint(); err != nil {
		return "", false, err
	}
	reply, err := t.exchange(&wire.Read{Table: table, Row: row})
	if err != nil {
		return "", false, err
	}
	switch m := reply.(type) {
	case *wire.ReadOK:
		return m.Value, m.OK, nil
	case *wire.Err:
		return "", false, mapErr(m)
	default:
		return "", false, t.fail(fmt.Errorf("client: unexpected read reply %T", reply))
	}
}

// Write implements repl.Txn. A CommitAborted reply means eager
// certification already doomed the transaction. With Options.Pipeline
// the frame streams without waiting for its ack (drained at the next
// sync point), so errors — including eager-certification aborts —
// surface there instead of here.
func (t *Txn) Write(table string, row int64, value string) error {
	t.writes++
	if t.pipeline {
		return t.pipelineOp(&wire.Write{Table: table, Row: row, Value: value})
	}
	reply, err := t.exchange(&wire.Write{Table: table, Row: row, Value: value})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.WriteOK:
		return nil
	case *wire.CommitAborted:
		return &repl.AbortedError{ConflictWith: m.ConflictWith}
	case *wire.NotLeader:
		// Certification leadership moved mid-transaction. Nothing has
		// been proposed for this transaction yet, so unlike the same
		// redirect at commit time this is a plain retry-safe abort.
		return &repl.AbortedError{}
	case *wire.Err:
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected write reply %T", reply))
	}
}

// Delete implements repl.Txn.
func (t *Txn) Delete(table string, row int64) error {
	t.writes++
	if t.pipeline {
		return t.pipelineOp(&wire.Delete{Table: table, Row: row})
	}
	reply, err := t.exchange(&wire.Delete{Table: table, Row: row})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.WriteOK:
		return nil
	case *wire.NotLeader:
		return &repl.AbortedError{}
	case *wire.Err:
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected delete reply %T", reply))
	}
}

// Commit implements repl.Txn. A transport failure here surfaces as a
// typed repl.UnknownOutcomeError, not ErrAborted: the commit may have
// certified (and, with durable replicas, persisted) before the
// connection died, so a blind retry could double-apply. Drivers must
// reconcile instead of retrying.
//
// A NotLeader redirect at commit time is ambiguous in the same way: a
// replica deposed mid-proposal never acked, but a minority of
// acceptors may hold its value, and the new leader's hole recovery is
// allowed to choose it — the commit may land without an ack ever
// existing. Only the deposed replica's fence knows it is closed; the
// redirect cannot say whether the writeset was proposed before it
// shut, so the client reports the ambiguity rather than invent an
// abort.
func (t *Txn) Commit() error {
	if t.done {
		return errDone
	}
	// Drain pipelined acks BEFORE sending Commit: a transport failure
	// here is still retry-safe (abort, not unknown outcome), and a
	// doomed transaction must not be committed — the server kept it
	// open after the failed op, so close it out and surface the typed
	// error the unpipelined path would have returned from the op.
	if t.inflight > 0 {
		if err := t.drainAcks(); err != nil {
			return err
		}
	}
	if t.doomed != nil {
		err := t.doomed
		t.Abort()
		return err
	}
	reply, err := roundTrip(t.conn, &wire.Commit{})
	if err != nil {
		t.fail(err)
		return &repl.UnknownOutcomeError{Err: err}
	}
	switch m := reply.(type) {
	case *wire.CommitOK:
		t.finish()
		return nil
	case *wire.CommitAborted:
		t.finish()
		return &repl.AbortedError{ConflictWith: m.ConflictWith}
	case *wire.NotLeader:
		t.finish()
		return &repl.UnknownOutcomeError{Err: NotLeaderError{
			Leader: int(m.Leader), Epoch: m.Epoch, Addr: m.Addr,
		}}
	case *wire.Err:
		t.finish()
		if m.Code == wire.CodeNotLeader {
			return &repl.UnknownOutcomeError{Err: mapErr(m)}
		}
		return mapErr(m)
	default:
		return t.fail(fmt.Errorf("client: unexpected commit reply %T", reply))
	}
}

// Abort implements repl.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	if t.inflight > 0 {
		if t.drainAcks() != nil {
			return // transport failure already tore the txn down
		}
	}
	reply, err := roundTrip(t.conn, &wire.Abort{})
	if err != nil {
		t.fail(err)
		return
	}
	if _, ok := reply.(*wire.AbortOK); !ok {
		t.fail(fmt.Errorf("client: unexpected abort reply %T", reply))
		return
	}
	t.finish()
}

// Sync implements repl.System: every reachable replica is asked to
// apply all writesets committed so far (each pulls from the certifier
// host or master). A backup's pull can transiently fail — a leader
// election in progress, a ring connection riding over a dead member —
// and the wire handler cannot distinguish "nothing new" from "could
// not reach the log", so it acks either way. Agreement is therefore
// verified here: Sync re-issues the request until every reachable
// replica reports the same applied version (bounded, so a genuinely
// wedged replica still surfaces through its table dump rather than
// hanging the caller). Unreachable replicas are skipped — their table
// dumps will fail loudly if anyone asks.
func (c *Client) Sync() {
	deadline := time.Now().Add(8 * time.Second)
	// Each re-check costs one Sync RPC per replica (and each of those
	// can trigger a fetch at the primary), so the disagreement loop
	// backs off exponentially instead of polling at a fixed beat.
	backoff := 25 * time.Millisecond
	for {
		agree := true
		var v int64
		seen := false
		for _, i := range c.liveSlots() {
			reply, err := c.rep(i).pool.rpc(&wire.Sync{}, 0)
			if err != nil {
				continue
			}
			ok, isOK := reply.(*wire.SyncOK)
			if !isOK {
				continue
			}
			if !seen {
				v, seen = ok.Applied, true
			} else if ok.Applied != v {
				agree = false
			}
		}
		if agree || time.Now().After(deadline) {
			return
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// RoundTrips sums the pooled request/reply exchanges across every
// replica pool (Sync, dumps, loads, membership — not per-transaction
// ops, which own their connection). Steady-state tests difference it.
func (c *Client) RoundTrips() int64 {
	var n int64
	for _, r := range c.slots() {
		n += r.pool.rpcs.Load()
	}
	return n
}

// TableDump implements repl.System over the live replicas (departed
// ones no longer count).
func (c *Client) TableDump(replica int, table string) (map[int64]string, error) {
	live := c.liveSlots()
	if replica < 0 || replica >= len(live) {
		return nil, fmt.Errorf("client: replica %d out of range", replica)
	}
	reply, err := c.rep(live[replica]).pool.rpc(&wire.Dump{Table: table}, 0)
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*wire.DumpOK)
	if !ok {
		return nil, fmt.Errorf("client: unexpected dump reply %T", reply)
	}
	out := make(map[int64]string, len(m.Rows))
	for i, row := range m.Rows {
		out[row] = m.Values[i]
	}
	return out, nil
}

// CreateTable implements repl.Loader: the table is created on every
// replica.
func (c *Client) CreateTable(name string) error {
	for _, i := range c.liveSlots() {
		if _, err := c.rep(i).pool.rpc(&wire.CreateTable{Name: name}, 0); err != nil {
			return fmt.Errorf("client: create %q on replica %d: %w", name, i, err)
		}
	}
	return nil
}

// loadChunk bounds one Load frame; at typical row-value sizes a chunk
// stays well under a kilobyte-per-row budget.
const loadChunk = 512

// Load implements repl.Loader: values are evaluated client-side once
// and streamed in identical chunk sequences to every replica, which
// keeps their local version counters aligned (the networked
// equivalent of the in-process bulk load). Replicas load in parallel —
// ordering only matters per replica — so wall time does not multiply
// by the replica count.
func (c *Client) Load(table string, rows int, value func(int64) string) error {
	var chunks []*wire.Load
	for start := 0; start < rows; start += loadChunk {
		end := start + loadChunk
		if end > rows {
			end = rows
		}
		values := make([]string, 0, end-start)
		for r := start; r < end; r++ {
			values = append(values, value(int64(r)))
		}
		chunks = append(chunks, &wire.Load{Table: table, Start: int64(start), Values: values})
	}
	live := c.liveSlots()
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, slot := range live {
		r := c.rep(slot)
		wg.Add(1)
		go func(i int, r *replicaConns) {
			defer wg.Done()
			for _, msg := range chunks {
				if _, err := r.pool.rpc(msg, 0); err != nil {
					errs[i] = fmt.Errorf("client: load %q rows [%d,%d) on replica %d: %w",
						table, msg.Start, msg.Start+int64(len(msg.Values)), i, err)
					return
				}
			}
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Addrs returns the live server addresses (for logs).
func (c *Client) Addrs() string {
	var addrs []string
	for _, i := range c.liveSlots() {
		addrs = append(addrs, c.rep(i).pool.addr)
	}
	return strings.Join(addrs, ",")
}
