package client

import (
	"fmt"
	"sync"

	"repro/internal/paxos"
)

// PaxosTransport is the production paxos.Transport: it delivers
// acceptor calls over the wire protocol's v3 Paxos frames to the
// acceptors embedded in each replica server. Calls addressed to the
// local node short-circuit to the in-process acceptor — the leader's
// own vote never crosses the network, so a single-node quorum check
// or the common fast path costs no RPC.
//
// Peers may be registered and replaced at runtime (the membership
// protocol can move a peer's address); an unregistered peer is
// unreachable, which Paxos tolerates by construction.
type PaxosTransport struct {
	self  int
	local *paxos.Acceptor

	mu    sync.Mutex
	links map[int]*Link
}

// NewPaxosTransport creates a transport for node self whose local
// acceptor is served in-process.
func NewPaxosTransport(self int, local *paxos.Acceptor) *PaxosTransport {
	return &PaxosTransport{self: self, local: local, links: make(map[int]*Link)}
}

// SetPeer registers (or replaces) the link used to reach node id's
// embedded acceptor. A nil link unregisters the peer.
func (t *PaxosTransport) SetPeer(id int, l *Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l == nil {
		delete(t.links, id)
		return
	}
	t.links[id] = l
}

// Close closes every registered peer link.
func (t *PaxosTransport) Close() {
	t.mu.Lock()
	links := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.links = make(map[int]*Link)
	t.mu.Unlock()
	for _, l := range links {
		l.Close()
	}
}

func (t *PaxosTransport) peer(to int) (*Link, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.links[to]
	if !ok {
		return nil, fmt.Errorf("%w: no link to node %d", paxos.ErrUnreachable, to)
	}
	return l, nil
}

// Prepare implements paxos.Transport.
func (t *PaxosTransport) Prepare(to int, b paxos.Ballot, slot int) (paxos.PrepareReply, error) {
	if to == t.self {
		return t.local.Prepare(b, slot)
	}
	l, err := t.peer(to)
	if err != nil {
		return paxos.PrepareReply{}, err
	}
	rep, err := l.PaxosPrepare(b, slot)
	if err != nil {
		return paxos.PrepareReply{}, fmt.Errorf("%w: node %d: %v", paxos.ErrUnreachable, to, err)
	}
	return rep, nil
}

// Accept implements paxos.Transport.
func (t *PaxosTransport) Accept(to int, b paxos.Ballot, slot int, v paxos.Value) (paxos.AcceptReply, error) {
	if to == t.self {
		return t.local.Accept(b, slot, v)
	}
	l, err := t.peer(to)
	if err != nil {
		return paxos.AcceptReply{}, err
	}
	rep, err := l.PaxosAccept(b, slot, v)
	if err != nil {
		return paxos.AcceptReply{}, fmt.Errorf("%w: node %d: %v", paxos.ErrUnreachable, to, err)
	}
	return rep, nil
}

// Learn implements paxos.Transport.
func (t *PaxosTransport) Learn(to int) (paxos.LearnReply, error) {
	if to == t.self {
		maxSlot, promised := t.local.Status()
		return paxos.LearnReply{MaxSlot: maxSlot, Promised: promised}, nil
	}
	l, err := t.peer(to)
	if err != nil {
		return paxos.LearnReply{}, err
	}
	rep, err := l.PaxosLearn()
	if err != nil {
		return paxos.LearnReply{}, fmt.Errorf("%w: node %d: %v", paxos.ErrUnreachable, to, err)
	}
	return rep, nil
}
