package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/certifier"
	"repro/internal/wire"
	"repro/internal/writeset"
)

// NotLeaderError reports that the contacted replica is not (or no
// longer) the certifier leader. It carries the redirect: the paxos id
// of the node the contacted replica believes leads, the epoch round
// that deposed it, and — when the server knows it — the leader's
// address. Addr may be empty (the v2 Err{CodeNotLeader} fallback
// carries neither id nor address); callers then discover the leader
// through the Members protocol.
type NotLeaderError struct {
	Leader int    // paxos id of the believed leader, -1 when unknown
	Epoch  int64  // round of the deposing ballot, 0 when unknown
	Addr   string // leader address, "" when the server does not know it
}

func (e NotLeaderError) Error() string {
	if e.Leader < 0 {
		return "client: replica is not the certifier leader"
	}
	return fmt.Sprintf("client: not leader (redirect to node %d, epoch round %d)", e.Leader, e.Epoch)
}

// LeaderRing fronts a replicated certifier group for a client or a
// joining replica: every certification RPC goes to the current leader
// guess, and a NotLeaderError moves the guess — to the address in the
// redirect when the deposed node knows it, through the Members
// protocol when it only knows the id, or to the next ring member when
// it knows nothing. Redirect chasing is bounded and backed off with
// jitter, so a cluster mid-election sees polite retries instead of a
// redirect storm.
//
// LeaderRing satisfies mm.CertService (Certify/Check/Since) plus the
// FetchSince long poll, so a server's peer link can point at the ring
// instead of a fixed primary and survive failover transparently.
type LeaderRing struct {
	design      string
	peerID      int
	dialTimeout time.Duration

	mu        sync.Mutex
	links     map[string]*Link // one per discovered address
	ring      []string         // candidate addresses, seed order first
	cur       int              // index of the current leader guess
	meta      func(version int64, trace uint64, commitNs int64)
	sinceWait time.Duration // long-poll window for Since (see Link)
}

// ErrNoLeader reports that the redirect budget ran out without
// reaching a leader — the group is mid-election or partitioned away. A
// server relaying a certification through its ring maps this onto a
// leader-unknown NotLeader redirect, so a client's commit lands in the
// unknown-outcome bucket instead of masquerading as an internal fault.
var ErrNoLeader = errors.New("client: no reachable leader")

// redirect chasing: one loop may follow at most maxRedirects hops,
// sleeping a jittered, doubling delay between hops (bounded by
// dialBackoffMax) to ride out an election in progress.
const maxRedirects = 6

// NewLeaderRing creates a ring over the seed addresses. The first seed
// is the initial leader guess. No connection is dialed until first
// use.
func NewLeaderRing(addrs []string, design string, peerID int, dialTimeout time.Duration) *LeaderRing {
	r := &LeaderRing{
		design:      design,
		peerID:      peerID,
		dialTimeout: dialTimeout,
		links:       make(map[string]*Link),
	}
	for _, a := range addrs {
		if a != "" {
			r.ring = append(r.ring, a)
		}
	}
	return r
}

// Close drops every link in the ring.
func (r *LeaderRing) Close() {
	r.mu.Lock()
	links := make([]*Link, 0, len(r.links))
	for _, l := range r.links {
		links = append(links, l)
	}
	r.links = make(map[string]*Link)
	r.mu.Unlock()
	for _, l := range links {
		l.Close()
	}
}

// LeaderAddr returns the current leader guess.
func (r *LeaderRing) LeaderAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return ""
	}
	return r.ring[r.cur]
}

// leader returns the link for the current guess, dialing lazily.
func (r *LeaderRing) leader() (*Link, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil, fmt.Errorf("client: leader ring has no addresses")
	}
	return r.linkForLocked(r.ring[r.cur]), nil
}

func (r *LeaderRing) linkForLocked(addr string) *Link {
	l, ok := r.links[addr]
	if !ok {
		l = NewLink(addr, r.design, r.peerID, r.dialTimeout)
		l.OnRecordMeta(r.meta)
		r.links[addr] = l
	}
	return l
}

// OnRecordMeta installs a per-record trace-metadata observer on every
// link the ring has dialed or will dial (see Link.OnRecordMeta).
// Install before the propagation loop starts.
func (r *LeaderRing) OnRecordMeta(fn func(version int64, trace uint64, commitNs int64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.meta = fn
	for _, l := range r.links {
		l.OnRecordMeta(fn)
	}
}

// follow moves the leader guess after a NotLeaderError: directly to
// the redirect address when present, via Members lookup when only the
// id is known, and to the next ring member otherwise.
func (r *LeaderRing) follow(from *Link, nle NotLeaderError) {
	if nle.Addr != "" {
		r.Point(nle.Addr)
		return
	}
	if nle.Leader >= 0 {
		// The deposed node knows who leads but not where; the Members
		// protocol maps the id to an address.
		if _, members, err := from.Members(); err == nil {
			for _, m := range members {
				if m.ID == int64(nle.Leader) && m.Addr != "" {
					r.Point(m.Addr)
					return
				}
			}
		}
	}
	r.rotate()
}

// Point makes addr the leader guess, adding it to the ring if new.
func (r *LeaderRing) Point(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, a := range r.ring {
		if a == addr {
			r.cur = i
			return
		}
	}
	r.ring = append(r.ring, addr)
	r.cur = len(r.ring) - 1
}

// rotate moves the guess to the next ring member.
func (r *LeaderRing) rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.ring); n > 0 {
		r.cur = (r.cur + 1) % n
	}
}

// do runs op against the current leader guess, following redirects and
// rotating past unreachable nodes, with jittered backoff between hops.
func (r *LeaderRing) do(op func(l *Link) error) error {
	var lastErr error
	backoff := dialBackoffMin
	for hop := 0; hop <= maxRedirects; hop++ {
		if hop > 0 {
			time.Sleep(jitter(backoff))
			if backoff < dialBackoffMax {
				backoff *= 2
			}
		}
		l, err := r.leader()
		if err != nil {
			return err
		}
		err = op(l)
		if err == nil {
			return nil
		}
		lastErr = err
		if nle, ok := asNotLeader(err); ok {
			r.follow(l, nle)
			continue
		}
		// Unreachable or failed outright: try the next ring member.
		r.rotate()
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrNoLeader, maxRedirects+1, lastErr)
}

// asNotLeader unwraps a NotLeaderError from an RPC error chain.
func asNotLeader(err error) (NotLeaderError, bool) {
	var nle NotLeaderError
	ok := errors.As(err, &nle)
	return nle, ok
}

// Certify submits a commit-time certification to the leader, following
// redirects across a failover.
func (r *LeaderRing) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	return r.CertifyTraced(snapshot, ws, 0)
}

// CertifyTraced is Certify carrying the transaction's trace id.
func (r *LeaderRing) CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	var out certifier.Outcome
	err := r.do(func(l *Link) error {
		o, err := l.CertifyTraced(snapshot, ws, trace)
		if err != nil {
			return err
		}
		out = o
		return nil
	})
	return out, err
}

// Check probes for an already-certain conflict at the leader.
// Transport failures degrade to "no conflict", like Link.Check.
func (r *LeaderRing) Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64) {
	_ = r.do(func(l *Link) error {
		c, w := l.Check(snapshot, ws)
		conflict, with = c, w
		return nil
	})
	return conflict, with
}

// SetSinceWait makes Since long-poll with the given window instead of
// returning immediately when the leader has nothing new (see
// Link.SetSinceWait). Install before the loops that call Since.
func (r *LeaderRing) SetSinceWait(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinceWait = d
}

// RoundTrips sums the request/reply exchanges across every link the
// ring has dialed.
func (r *LeaderRing) RoundTrips() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, l := range r.links {
		n += l.RoundTrips()
	}
	return n
}

// Since returns every certified record with version > v from the
// leader, or nil when no leader is reachable. With a SetSinceWait
// window installed the call long-polls when nothing is new.
func (r *LeaderRing) Since(v int64) []certifier.Record {
	r.mu.Lock()
	wait := r.sinceWait
	r.mu.Unlock()
	recs, err := r.FetchSince(v, wait)
	if err != nil {
		return nil
	}
	return recs
}

// FetchSince retrieves records with version > v from the leader;
// wait > 0 long-polls.
func (r *LeaderRing) FetchSince(v int64, wait time.Duration) ([]certifier.Record, error) {
	var recs []certifier.Record
	err := r.do(func(l *Link) error {
		rs, err := l.FetchSince(v, wait)
		if err != nil {
			return err
		}
		recs = rs
		return nil
	})
	return recs, err
}

// Members polls membership from whichever ring member answers first.
func (r *LeaderRing) Members() (epoch int64, members []wire.Member, err error) {
	err = r.do(func(l *Link) error {
		e, m, err := l.Members()
		if err != nil {
			return err
		}
		epoch, members = e, m
		return nil
	})
	return epoch, members, err
}
