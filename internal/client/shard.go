package client

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/repl"
	"repro/internal/wire"
)

// This file is the sharded deployment surface of the driver: the
// per-transaction prepare verb and the cluster-level decision verbs
// that internal/router needs to treat one networked replica group as
// one shard (router.Group + router.Preparer). Single-group deployments
// never touch any of it.

// shardRPCDeadline bounds the 2PC decision verbs. They are short
// metadata exchanges; a partition must surface quickly so the router
// can leave the transaction in doubt rather than park the workload.
const shardRPCDeadline = 30 * time.Second

// HasWrites reports whether this transaction staged any Write/Delete
// operations — the router's test for whether a group is a writing
// participant (2PC) or a read-only bystander (free local commit).
func (t *Txn) HasWrites() bool {
	return !t.done && !t.readOnly && t.writes > 0
}

// Prepare runs the first 2PC phase for this transaction as one
// fragment of cross-shard transaction id, coordinated by shard group
// coord. The server holds the transaction's snapshot and writeset, so
// the frame carries only the identifiers; the connection's transaction
// is consumed either way — a yes-vote fragment lives on, locked and
// journaled, in the group's certifier until the decision arrives.
//
// A transport failure after the frame may have been sent leaves the
// vote outcome unknown; it surfaces as repl.UnknownOutcomeError and the
// router aborts the fragment explicitly (always safe before the commit
// point) rather than guessing.
func (t *Txn) Prepare(id string, coord int64) (bool, int64, error) {
	if t.done {
		return false, 0, errDone
	}
	if t.inflight > 0 {
		if err := t.drainAcks(); err != nil {
			// The transport died before Prepare was sent: nothing is
			// prepared, a no-vote is safe.
			return false, 0, err
		}
	}
	if t.doomed != nil {
		// Eager certification already doomed the transaction; close out
		// the server side and convert the doom into a binding no-vote.
		err := t.doomed
		t.Abort()
		var ab *repl.AbortedError
		if errors.As(err, &ab) {
			return false, ab.ConflictWith, nil
		}
		return false, 0, err
	}
	reply, err := roundTrip(t.conn, &wire.PrepareTxn{TxnID: id, Coord: coord})
	if err != nil {
		t.fail(err)
		return false, 0, &repl.UnknownOutcomeError{Err: err}
	}
	switch m := reply.(type) {
	case *wire.PrepareTxnOK:
		t.finish()
		return m.Vote, m.ConflictWith, nil
	case *wire.CommitAborted:
		// The server-side prepare lost certification outright.
		t.finish()
		return false, m.ConflictWith, nil
	case *wire.NotLeader:
		t.finish()
		return false, 0, &repl.UnknownOutcomeError{Err: NotLeaderError{
			Leader: int(m.Leader), Epoch: m.Epoch, Addr: m.Addr,
		}}
	case *wire.Err:
		t.finish()
		return false, 0, mapErr(m)
	default:
		return false, 0, t.fail(fmt.Errorf("client: unexpected prepare reply %T", reply))
	}
}

// rpcPrimary round-trips one request on the primary's pool (member id
// 0 — the certifier host, where the 2PC decision verbs land directly;
// any member would forward, the primary just skips the hop).
func (c *Client) rpcPrimary(req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	idx, ok := c.memberIdx[0]
	c.mu.Unlock()
	if !ok {
		return nil, errors.New("client: primary membership unknown")
	}
	return c.rep(idx).pool.rpc(req, shardRPCDeadline)
}

// DecideTxn delivers the coordinator's commit/abort decision for a
// prepared fragment to this group. Implements router.Group.
func (c *Client) DecideTxn(id string, commit bool) (int64, error) {
	reply, err := c.rpcPrimary(&wire.DecideTxn{TxnID: id, Commit: commit})
	if err != nil {
		return 0, err
	}
	switch m := reply.(type) {
	case *wire.DecideTxnOK:
		return m.Version, nil
	case *wire.Err:
		return 0, fmt.Errorf("client: decide: %s", m.Msg)
	default:
		return 0, fmt.Errorf("client: unexpected decide reply %T", reply)
	}
}

// ResolveTxn asks this group (as coordinator) for the recorded outcome
// of an in-doubt cross-shard transaction. Implements router.Group.
func (c *Client) ResolveTxn(id string) (bool, error) {
	reply, err := c.rpcPrimary(&wire.ResolveTxn{TxnID: id})
	if err != nil {
		return false, err
	}
	switch m := reply.(type) {
	case *wire.ResolveTxnOK:
		return m.Commit, nil
	case *wire.Err:
		return false, fmt.Errorf("client: resolve: %s", m.Msg)
	default:
		return false, fmt.Errorf("client: unexpected resolve reply %T", reply)
	}
}

// ForgetTxn retires a fully acknowledged decision at this group.
// Implements router.Group.
func (c *Client) ForgetTxn(id string) error {
	reply, err := c.rpcPrimary(&wire.ForgetTxn{TxnID: id})
	if err != nil {
		return err
	}
	switch m := reply.(type) {
	case *wire.ForgetTxnOK:
		return nil
	case *wire.Err:
		return fmt.Errorf("client: forget: %s", m.Msg)
	default:
		return fmt.Errorf("client: unexpected forget reply %T", reply)
	}
}

// ShardInfo returns this group's place in the shard map as last
// published over MembersOK/JoinOK (protocol v6): shard id, total
// groups, and the map version. All zero until the first membership
// exchange on an unsharded or pre-v6 deployment.
func (c *Client) ShardInfo() (id, count, version int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardID, c.shardCount, c.mapVersion
}

// FetchShardInfo polls the primary's member list once and records the
// shard-map fields — for clients that run without Options.Watch but
// still need to learn the topology before routing.
func (c *Client) FetchShardInfo() (id, count, version int64, err error) {
	reply, err := c.rpcPrimary(&wire.Members{})
	if err != nil {
		return 0, 0, 0, err
	}
	m, ok := reply.(*wire.MembersOK)
	if !ok {
		return 0, 0, 0, fmt.Errorf("client: unexpected members reply %T", reply)
	}
	c.mu.Lock()
	c.shardID, c.shardCount, c.mapVersion = m.ShardID, m.ShardCount, m.MapVersion
	c.mu.Unlock()
	return m.ShardID, m.ShardCount, m.MapVersion, nil
}
