package client

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Dial backoff bounds. After a fresh dial (or handshake) fails, the
// pool enters a cooldown that starts at dialBackoffMin and doubles per
// consecutive failure up to dialBackoffMax; a successful dial resets
// it. Retries inside one rpc call sleep the same jittered schedule, so
// a dead replica costs one timed-out dial and then fails fast instead
// of hammering the address from every caller at once.
const (
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 1 * time.Second
)

// jitter spreads a delay over [d/2, d] so callers backing off from the
// same failure do not reconverge in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(half+1)
}

// wconn is one established, handshaken protocol connection.
type wconn struct {
	nc net.Conn
	wc *wire.Conn
}

func (c *wconn) close() {
	_ = c.nc.Close()
}

// connPool hands out protocol connections to one server address:
// checkout pops an idle connection or dials a new one, checkin returns
// it for reuse. maxIdle only bounds how many idle connections are
// retained; concurrency is naturally bounded by the callers (one
// connection per in-flight transaction or RPC). Checked-out
// connections stay tracked so closeAll can sever in-flight calls —
// without that, a shutdown racing a blocked Recv (e.g. a long poll
// across a one-way partition) would hang forever.
type connPool struct {
	addr        string
	dialTimeout time.Duration
	maxIdle     int
	// wantDesign, when non-empty, is validated against the design the
	// server announces in HelloOK, so a client configured for one
	// design fails loudly at connect time instead of mysteriously
	// mid-run when pointed at a cluster of the other design.
	wantDesign string
	// peerID is sent in the handshake: the replica id when this pool
	// belongs to a server's peer link, -1 for ordinary clients.
	peerID int64

	// rpcs counts request/reply exchanges attempted through rpc(),
	// including retries. Steady-state regression tests read it to
	// prove catch-up paths long-poll instead of busy polling.
	rpcs atomic.Int64

	mu      sync.Mutex
	idle    []*wconn
	active  map[*wconn]struct{}
	closed  bool
	retired bool
	// Cooldown after a failed fresh dial: until cooldownUntil passes,
	// get() fails immediately with the remembered error instead of
	// dialing again. cooldownDur doubles per consecutive failure
	// (bounded by dialBackoffMax) and resets on a successful dial.
	cooldownUntil time.Time
	cooldownDur   time.Duration
	lastDialErr   error
}

func newConnPool(addr, wantDesign string, peerID int64, dialTimeout time.Duration, maxIdle int) *connPool {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &connPool{
		addr:        addr,
		wantDesign:  wantDesign,
		peerID:      peerID,
		dialTimeout: dialTimeout,
		maxIdle:     maxIdle,
		active:      make(map[*wconn]struct{}),
	}
}

// get returns a connection and whether it was freshly dialed. Pooled
// connections may have gone stale (the server restarted or died);
// callers retry IO failures on pooled connections and treat failures
// on fresh ones as the server being down.
func (p *connPool) get() (*wconn, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("client: pool for %s is closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.active[c] = struct{}{}
		p.mu.Unlock()
		return c, false, nil
	}
	if time.Now().Before(p.cooldownUntil) {
		err := p.lastDialErr
		p.mu.Unlock()
		return nil, true, fmt.Errorf("client: %s cooling down after dial failure: %w", p.addr, err)
	}
	p.mu.Unlock()

	nc, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		p.noteDialFailure(err)
		return nil, true, err
	}
	c := &wconn{nc: nc, wc: wire.NewConn(nc)}
	if err := handshake(c, p.wantDesign, p.peerID); err != nil {
		c.close()
		p.noteDialFailure(err)
		return nil, true, err
	}
	p.mu.Lock()
	p.cooldownDur = 0
	p.cooldownUntil = time.Time{}
	p.lastDialErr = nil
	if p.closed {
		p.mu.Unlock()
		c.close()
		return nil, true, fmt.Errorf("client: pool for %s is closed", p.addr)
	}
	p.active[c] = struct{}{}
	p.mu.Unlock()
	return c, true, nil
}

// noteDialFailure records a failed fresh dial and extends the
// per-replica cooldown: doubling per consecutive failure, bounded by
// dialBackoffMax, jittered so independent clients spread out.
func (p *connPool) noteDialFailure(err error) {
	p.mu.Lock()
	if p.cooldownDur == 0 {
		p.cooldownDur = dialBackoffMin
	} else if p.cooldownDur < dialBackoffMax {
		p.cooldownDur *= 2
		if p.cooldownDur > dialBackoffMax {
			p.cooldownDur = dialBackoffMax
		}
	}
	p.cooldownUntil = time.Now().Add(jitter(p.cooldownDur))
	p.lastDialErr = err
	p.mu.Unlock()
}

// put returns a healthy connection for reuse; surplus ones are closed.
func (p *connPool) put(c *wconn) {
	p.mu.Lock()
	delete(p.active, c)
	if p.closed || p.retired || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		c.close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// retire marks the pool for a replica that left the cluster: idle
// connections close now, connections serving an in-flight transaction
// finish it and close on return. Unlike closeAll, retire never severs
// an active connection — the departing server drains those.
func (p *connPool) retire() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.retired = true
	p.mu.Unlock()
	for _, c := range idle {
		c.close()
	}
}

// discard drops a connection whose state is unknown (IO error or
// unexpected reply).
func (p *connPool) discard(c *wconn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
	c.close()
}

// closeAll closes idle AND checked-out connections and refuses further
// checkouts; blocked calls on active connections fail immediately.
func (p *connPool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	active := make([]*wconn, 0, len(p.active))
	for c := range p.active {
		active = append(active, c)
	}
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.close()
	}
	for _, c := range active {
		c.close()
	}
}

// handshake runs the client side of the versioned Hello exchange and
// checks the server serves the design the caller expects.
func handshake(c *wconn, wantDesign string, peerID int64) error {
	if err := c.wc.Send(&wire.Hello{Proto: wire.ProtoVersion, PeerID: peerID}); err != nil {
		return err
	}
	msg, err := c.wc.Recv()
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *wire.HelloOK:
		// The server negotiates down to min(client, server); accept any
		// version in [MinProto, ours] and pin the connection to it so
		// version-dependent encodings (v4 trace fields) match both ends.
		if m.Proto < wire.MinProto || m.Proto > wire.ProtoVersion {
			return fmt.Errorf("%w: server %d, client %d", wire.ErrVersionMismatch, m.Proto, wire.ProtoVersion)
		}
		c.wc.SetProto(m.Proto)
		if wantDesign != "" && m.Design != wantDesign {
			return fmt.Errorf("client: server replica %d serves design %q, client configured for %q",
				m.ID, m.Design, wantDesign)
		}
		return nil
	case *wire.Err:
		return fmt.Errorf("client: handshake rejected: %s", m.Msg)
	default:
		return fmt.Errorf("client: unexpected handshake reply %T", msg)
	}
}

// rpc runs one request/reply exchange on a pooled connection, retrying
// stale pooled connections with a bounded, jittered exponential
// backoff between attempts. Err replies surface as errors; NotLeader
// replies (and their v2 Err{CodeNotLeader} fallback) surface as a
// typed NotLeaderError so callers can follow the redirect. A positive
// deadline bounds the whole exchange (used by long polls so a one-way
// partition cannot park the caller forever).
func (p *connPool) rpc(req wire.Message, deadline time.Duration) (wire.Message, error) {
	var lastErr error
	backoff := dialBackoffMin
	// Retry enough times to drain a pool full of stale connections
	// plus one fresh dial.
	for attempt := 0; attempt <= p.maxIdle+1; attempt++ {
		if attempt > 0 {
			time.Sleep(jitter(backoff))
			if backoff < dialBackoffMax {
				backoff *= 2
			}
		}
		c, fresh, err := p.get()
		if err != nil {
			return nil, err
		}
		if deadline > 0 {
			_ = c.nc.SetDeadline(time.Now().Add(deadline))
		}
		p.rpcs.Add(1)
		reply, err := roundTrip(c, req)
		if deadline > 0 {
			_ = c.nc.SetDeadline(time.Time{})
		}
		if err != nil {
			p.discard(c)
			lastErr = err
			if fresh {
				return nil, err
			}
			continue
		}
		p.put(c)
		switch m := reply.(type) {
		case *wire.NotLeader:
			return nil, NotLeaderError{Leader: int(m.Leader), Epoch: m.Epoch, Addr: m.Addr}
		case *wire.Err:
			if m.Code == wire.CodeNotLeader {
				return nil, NotLeaderError{Leader: -1}
			}
			return nil, fmt.Errorf("client: %s: %s", p.addr, m.Msg)
		}
		return reply, nil
	}
	return nil, fmt.Errorf("client: rpc to %s failed: %w", p.addr, lastErr)
}

func roundTrip(c *wconn, req wire.Message) (wire.Message, error) {
	if err := c.wc.Send(req); err != nil {
		return nil, err
	}
	return c.wc.Recv()
}
