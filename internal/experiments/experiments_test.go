package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fastOpts keeps test runs cheap while staying statistically usable.
func fastOpts() Options {
	return Options{
		Replicas: []int{1, 4, 16},
		Seed:     4242,
		Warmup:   10,
		Measure:  40,
	}
}

func TestAllExperimentIDsUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a phantom experiment")
	}
}

func TestTable2And4Static(t *testing.T) {
	t2 := Table2()
	if len(t2.Rows) != 3 {
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	if t2.Rows[1][0] != "shopping" || t2.Rows[1][2] != "20%" {
		t.Fatalf("table2 shopping row: %v", t2.Rows[1])
	}
	t4 := Table4()
	if len(t4.Rows) != 2 {
		t.Fatalf("table4 rows = %d", len(t4.Rows))
	}
	var buf bytes.Buffer
	if err := t2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ordering") {
		t.Fatal("render missing rows")
	}
}

func TestFigure6WithinPaperMargin(t *testing.T) {
	r, err := Figure6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := r.(Figure)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if fig.MaxErr() > 0.15 {
		t.Errorf("fig6 max error %.1f%% exceeds the paper's 15%%", fig.MaxErr()*100)
	}
	// Browsing scales near-linearly; ordering does not (§6.2.1).
	browsing := fig.Series[0]
	ordering := fig.Series[2]
	bSpeed := browsing.Points[len(browsing.Points)-1].Measured / browsing.Points[0].Measured
	oSpeed := ordering.Points[len(ordering.Points)-1].Measured / ordering.Points[0].Measured
	if bSpeed < 14 {
		t.Errorf("browsing speedup %.1f, want near-linear", bSpeed)
	}
	if oSpeed > 9 {
		t.Errorf("ordering speedup %.1f, should be limited by propagation", oSpeed)
	}
}

func TestFigure8SMSaturation(t *testing.T) {
	r, err := Figure8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := r.(Figure)
	ordering := fig.Series[2]
	// Ordering saturates: N=16 is not much above N=4.
	x4 := ordering.Points[1].Measured
	x16 := ordering.Points[2].Measured
	if x16 > 1.2*x4 {
		t.Errorf("SM ordering did not saturate: X4=%.1f X16=%.1f", x4, x16)
	}
	if fig.MaxErr() > 0.15 {
		t.Errorf("fig8 max error %.1f%%", fig.MaxErr()*100)
	}
}

func TestFigurePairsShareRuns(t *testing.T) {
	// The cached sweep must make the response-time variant nearly
	// free and identical across calls.
	o := fastOpts()
	r1, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := r1.(Figure), r2.(Figure)
	if f1.Series[0].Points[0].Measured != f2.Series[0].Points[0].Measured {
		t.Fatal("cache returned different data")
	}
}

func TestFigure10RUBiSShapes(t *testing.T) {
	r, err := Figure10(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := r.(Figure)
	browsing, bidding := fig.Series[0], fig.Series[1]
	bSpeed := browsing.Points[len(browsing.Points)-1].Measured / browsing.Points[0].Measured
	if bSpeed < 14.5 {
		t.Errorf("RUBiS browsing speedup %.1f, want linear", bSpeed)
	}
	// Bidding is disk-propagation-bound: modest scalability (§6.2.2).
	dSpeed := bidding.Points[len(bidding.Points)-1].Measured / bidding.Points[0].Measured
	if dSpeed > 5 {
		t.Errorf("RUBiS bidding speedup %.1f, should be modest", dSpeed)
	}
}

func TestFigure14AbortTrends(t *testing.T) {
	o := fastOpts()
	o.Measure = 120
	r, err := Figure14(o)
	if err != nil {
		t.Fatal(err)
	}
	fig := r.(Figure)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		first := s.Points[0]
		if last.Measured <= first.Measured {
			t.Errorf("%s: abort rate did not grow with replicas (%.2f -> %.2f)",
				s.Label, first.Measured, last.Measured)
		}
	}
	// Higher A1 yields higher A_16 (series ordering preserved).
	a16 := func(i int) float64 {
		pts := fig.Series[i].Points
		return pts[len(pts)-1].Measured
	}
	if !(a16(0) < a16(1) && a16(1) < a16(2)) {
		t.Errorf("A16 not ordered by A1: %.1f %.1f %.1f", a16(0), a16(1), a16(2))
	}
}

func TestCertifierAnalysis(t *testing.T) {
	r, err := Certifier(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// At the paper's operating point (150 req/s) the mean delay is
	// about 12 ms, and batching keeps delay bounded even at 50x that
	// rate (the certifier never becomes the bottleneck).
	var at150, at8000 float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "150":
			at150 = parseMS(t, row[1])
		case "8000":
			at8000 = parseMS(t, row[1])
		}
	}
	if at150 < 8 || at150 > 16 {
		t.Errorf("delay at 150 req/s = %.1fms, want about 12ms", at150)
	}
	if at8000 > 20 {
		t.Errorf("delay at 8000 req/s = %.1fms; batching should bound it", at8000)
	}
}

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationWritesetCost(t *testing.T) {
	r, err := AblationWritesetCost(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Ordering at N=16: the propagation penalty is large.
	row := tbl.Rows[2]
	if row[0] != "tpcw-ordering" || row[1] != "16" {
		t.Fatalf("unexpected row: %v", row)
	}
	if !strings.Contains(row[4], "%") {
		t.Fatalf("penalty cell: %v", row[4])
	}
}

func TestAblationMVASolver(t *testing.T) {
	r, err := AblationMVASolver(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != len(tbl.Rows[:0])+10 {
		t.Fatalf("rows = %d, want 10 (5 mixes x 2 populations)", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFigureRenderIncludesError(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "test", Metric: "tps",
		Series: []Series{{
			Label:  "mix",
			Points: []Point{{Replicas: 1, Measured: 100, Predicted: 110}},
		}},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10.0%") || !strings.Contains(out, "max prediction error") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestMultiRender(t *testing.T) {
	m := multi{Table2(), Table4()}
	var buf bytes.Buffer
	if err := m.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TPC-W") || !strings.Contains(buf.String(), "RUBiS") {
		t.Fatal("multi render incomplete")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Replicas) == 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestFigureRenderCSV(t *testing.T) {
	fig := Figure{
		ID: "figX",
		Series: []Series{{
			Label:  "mix",
			Points: []Point{{Replicas: 2, Measured: 10, Predicted: 11}},
		}},
	}
	var buf bytes.Buffer
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "figure,series,replicas,measured,predicted,rel_error\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "figX,mix,2,10,11,0.1") {
		t.Fatalf("csv row: %q", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 mixes
		t.Fatalf("csv lines = %d", len(lines))
	}
}

func TestMultiRenderCSV(t *testing.T) {
	m := multi{Table2(), Table4()}
	var buf bytes.Buffer
	if err := m.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "browsing") {
		t.Fatal("multi csv incomplete")
	}
}
