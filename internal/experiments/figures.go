package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// paramsFor builds model parameters for a mix, either from the table
// inputs or by profiling the standalone system (§4).
func paramsFor(m workload.Mix, o Options) (core.Params, error) {
	if !o.UseProfiler {
		return core.NewParams(m), nil
	}
	p, _, err := profiler.Profile(m, profiler.Options{
		Seed: o.Seed + 7, Warmup: o.Warmup, Measure: o.Measure,
	})
	return p, err
}

// measure runs the simulated prototype for one point.
func measure(m workload.Mix, design core.Design, n int, o Options) (cluster.Result, error) {
	return cluster.Run(cluster.Config{
		Mix:      m,
		Design:   design,
		Replicas: n,
		Seed:     o.Seed + uint64(n)*1000003,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
	})
}

// scalability produces the throughput and response-time figures for
// one (benchmark, design) combination, sharing the simulation runs
// between the two figures.
func scalability(mixes []workload.Mix, design core.Design, o Options) (throughput, response Figure, err error) {
	o = o.withDefaults()
	for _, m := range mixes {
		params, err := paramsFor(m, o)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		var xs, rs Series
		xs.Label, rs.Label = m.Name, m.Name
		for _, n := range o.Replicas {
			res, err := measure(m, design, n, o)
			if err != nil {
				return Figure{}, Figure{}, fmt.Errorf("%s %s N=%d: %w", m.ID(), design, n, err)
			}
			var pred core.Prediction
			if design == core.MultiMaster {
				pred = core.PredictMM(params, n)
			} else {
				pred = core.PredictSM(params, n)
			}
			xs.Points = append(xs.Points, Point{
				Replicas: n, Measured: res.Throughput, Predicted: pred.Throughput,
			})
			rs.Points = append(rs.Points, Point{
				Replicas: n, Measured: res.ResponseTime * 1000, Predicted: pred.ResponseTime * 1000,
			})
		}
		throughput.Series = append(throughput.Series, xs)
		response.Series = append(response.Series, rs)
	}
	throughput.Metric = "throughput (tps)"
	response.Metric = "response time (ms)"
	return throughput, response, nil
}

// figureCache shares the expensive simulation sweeps between the
// throughput and response-time variants of each figure pair when a
// single process renders several experiments (cmd/experiments -exp
// all). Keyed by (benchmark, design, options fingerprint).
type pairKey struct {
	bench  string
	design core.Design
	seed   uint64
	points int
}

var pairCache = map[pairKey][2]Figure{}

func scalabilityCached(bench string, mixes []workload.Mix, design core.Design, o Options) (Figure, Figure, error) {
	o = o.withDefaults()
	key := pairKey{bench: bench, design: design, seed: o.Seed, points: len(o.Replicas)}
	if got, ok := pairCache[key]; ok {
		return got[0], got[1], nil
	}
	x, r, err := scalability(mixes, design, o)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	pairCache[key] = [2]Figure{x, r}
	return x, r, nil
}

// Figure6 reproduces TPC-W throughput on the multi-master system.
func Figure6(o Options) (Renderable, error) {
	x, _, err := scalabilityCached("tpcw", workload.AllTPCW(), core.MultiMaster, o)
	if err != nil {
		return nil, err
	}
	x.ID, x.Title = "fig6", "TPC-W throughput on MM system"
	return x, nil
}

// Figure7 reproduces TPC-W response time on the multi-master system.
func Figure7(o Options) (Renderable, error) {
	_, r, err := scalabilityCached("tpcw", workload.AllTPCW(), core.MultiMaster, o)
	if err != nil {
		return nil, err
	}
	r.ID, r.Title = "fig7", "TPC-W response time on MM system"
	return r, nil
}

// Figure8 reproduces TPC-W throughput on the single-master system.
func Figure8(o Options) (Renderable, error) {
	x, _, err := scalabilityCached("tpcw", workload.AllTPCW(), core.SingleMaster, o)
	if err != nil {
		return nil, err
	}
	x.ID, x.Title = "fig8", "TPC-W throughput on SM system"
	return x, nil
}

// Figure9 reproduces TPC-W response time on the single-master system.
func Figure9(o Options) (Renderable, error) {
	_, r, err := scalabilityCached("tpcw", workload.AllTPCW(), core.SingleMaster, o)
	if err != nil {
		return nil, err
	}
	r.ID, r.Title = "fig9", "TPC-W response time on SM system"
	return r, nil
}

// Figure10 reproduces RUBiS throughput on the multi-master system.
func Figure10(o Options) (Renderable, error) {
	x, _, err := scalabilityCached("rubis", workload.AllRUBiS(), core.MultiMaster, o)
	if err != nil {
		return nil, err
	}
	x.ID, x.Title = "fig10", "RUBiS throughput on MM system"
	return x, nil
}

// Figure11 reproduces RUBiS response time on the multi-master system.
func Figure11(o Options) (Renderable, error) {
	_, r, err := scalabilityCached("rubis", workload.AllRUBiS(), core.MultiMaster, o)
	if err != nil {
		return nil, err
	}
	r.ID, r.Title = "fig11", "RUBiS response time on MM system"
	return r, nil
}

// Figure12 reproduces RUBiS throughput on the single-master system.
func Figure12(o Options) (Renderable, error) {
	x, _, err := scalabilityCached("rubis", workload.AllRUBiS(), core.SingleMaster, o)
	if err != nil {
		return nil, err
	}
	x.ID, x.Title = "fig12", "RUBiS throughput on SM system"
	return x, nil
}

// Figure13 reproduces RUBiS response time on the single-master system.
func Figure13(o Options) (Renderable, error) {
	_, r, err := scalabilityCached("rubis", workload.AllRUBiS(), core.SingleMaster, o)
	if err != nil {
		return nil, err
	}
	r.ID, r.Title = "fig13", "RUBiS response time on SM system"
	return r, nil
}

// Figure14 reproduces the high-abort-rate study (§6.3.3): the TPC-W
// shopping mix runs against a heap table sized to induce standalone
// abort probabilities A1 of {0.24%, 0.53%, 0.90%}; measured A_N on the
// multi-master prototype is compared with the model's prediction. The
// paper measures {10%, 17%, 29%} at 16 replicas and notes the model
// consistently under-estimates at high rates.
func Figure14(o Options) (Renderable, error) {
	o = o.withDefaults()
	if o.Measure == 0 {
		// Abort probabilities need many more update observations than
		// throughput does; stretch the window so even the N=1 points
		// see a few dozen aborts.
		o.Measure = 900
	}
	fig := Figure{
		ID:     "fig14",
		Title:  "TPC-W shopping MM abort probabilities (heap-table injection)",
		Metric: "abort probability (%)",
	}
	base := workload.TPCWShopping()
	ideal := core.NewParams(base)
	sa := core.PredictStandalone(ideal)
	updateRate := sa.WriteThroughput // standalone committed updates/s

	for _, a1 := range []float64{0.0024, 0.0053, 0.0090} {
		// Size the heap table so the standalone abort rate is a1, then
		// give the model the same A1 (as the paper does: A1 is
		// measured on the standalone system).
		heap := core.HeapTableSizeForAbort(a1, base.UpdateOps, ideal.L1, updateRate)
		mix := base
		mix.A1 = a1
		mix.DBUpdateSize = heap
		params := core.NewParams(mix)

		s := Series{Label: fmt.Sprintf("A1=%.2f%%", a1*100)}
		for _, n := range o.Replicas {
			res, err := cluster.Run(cluster.Config{
				Mix:           mix,
				Design:        core.MultiMaster,
				Replicas:      n,
				Seed:          o.Seed + uint64(n)*7919,
				Warmup:        o.Warmup,
				Measure:       o.Measure,
				HeapTableSize: heap,
			})
			if err != nil {
				return nil, err
			}
			pred := core.PredictMM(params, n)
			s.Points = append(s.Points, Point{
				Replicas:  n,
				Measured:  res.AbortRate * 100,
				Predicted: pred.AbortRate * 100,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
