package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func pct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationHotspotBreaksUniformAssumption(t *testing.T) {
	o := fastOpts()
	o.Measure = 120
	r, err := AblationHotspot(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// theta=0 matches the model; high theta must blow past it.
	uniform := pct(t, tbl.Rows[0][1])
	model := pct(t, tbl.Rows[0][2])
	if uniform > model*2 {
		t.Errorf("uniform access should match the model: measured %v%% vs model %v%%", uniform, model)
	}
	skewed := pct(t, tbl.Rows[3][1])
	if skewed < model*3 {
		t.Errorf("theta=1.2 should shatter the uniform assumption: measured %v%% vs model %v%%", skewed, model)
	}
	// Abort rate must grow monotonically with skew.
	prev := -1.0
	for i, row := range tbl.Rows {
		a := pct(t, row[1])
		if a < prev {
			t.Errorf("abort rate dropped at row %d: %v after %v", i, a, prev)
		}
		prev = a
	}
}

func TestAblationHotspotModelStaysUpperBound(t *testing.T) {
	o := fastOpts()
	o.Measure = 120
	r, err := AblationHotspot(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	for _, row := range tbl.Rows {
		if row[5] != "yes" {
			t.Errorf("theta=%s: model throughput was not an upper bound", row[0])
		}
	}
}

func TestAblationOpenLoopShowsInstability(t *testing.T) {
	o := fastOpts()
	o.Measure = 120
	r, err := AblationOpenLoop(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The sub-saturation open rows are stable; the 110% row is not.
	for _, row := range tbl.Rows[:3] {
		if strings.Contains(row[4], "UNSTABLE") {
			t.Errorf("row %v should be stable", row)
		}
	}
	last := tbl.Rows[3]
	if !strings.Contains(last[4], "UNSTABLE") {
		t.Errorf("supersaturated open system should be unstable: %v", last)
	}
	// Its response time dwarfs the stable open rows.
	rt90, _ := strconv.ParseFloat(tbl.Rows[2][3], 64)
	rt110, _ := strconv.ParseFloat(last[3], 64)
	if rt110 < 5*rt90 {
		t.Errorf("unstable RT %v should dwarf stable RT %v", rt110, rt90)
	}
}

func TestWANSlowsSystemAndModelTracks(t *testing.T) {
	o := fastOpts()
	o.Measure = 60
	r, err := WAN(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Measured response time grows with latency, throughput declines,
	// and the model stays within the paper's 15% margin even in the
	// WAN regime (the delays are modeled explicitly).
	prevRT := -1.0
	for _, row := range tbl.Rows {
		rt, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rt < prevRT {
			t.Errorf("%s: response time fell with added latency (%v after %v)", row[0], rt, prevRT)
		}
		prevRT = rt
		e, err := strconv.ParseFloat(strings.TrimSuffix(row[7], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if e > 15 {
			t.Errorf("%s: prediction error %.1f%%", row[0], e)
		}
	}
	xLAN, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	xWAN, _ := strconv.ParseFloat(tbl.Rows[3][3], 64)
	if xWAN >= xLAN {
		t.Errorf("continental WAN should cost throughput: %v vs %v", xWAN, xLAN)
	}
}

func TestAblationPerClassPredictsClassResponseTimes(t *testing.T) {
	o := fastOpts()
	o.Measure = 90
	r, err := AblationPerClass(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		e, err := strconv.ParseFloat(strings.TrimSuffix(row[8], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if e > 15 {
			t.Errorf("N=%s: per-class RT error %.1f%% exceeds the paper's margin", row[0], e)
		}
	}
}
