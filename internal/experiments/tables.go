package experiments

import (
	"fmt"

	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table2 reproduces the TPC-W workload parameter table.
func Table2() Table {
	t := Table{
		ID:     "table2",
		Title:  "TPC-W parameters",
		Header: []string{"Mix", "Read (Pr)", "Write (Pw)", "Clients per Replica (C)", "Think Time (Z)"},
	}
	for _, m := range workload.AllTPCW() {
		t.Rows = append(t.Rows, parameterRow(m))
	}
	return t
}

// Table4 reproduces the RUBiS workload parameter table.
func Table4() Table {
	t := Table{
		ID:     "table4",
		Title:  "RUBiS parameters",
		Header: []string{"Mix", "Read (Pr)", "Write (Pw)", "Clients per Replica (C)", "Think Time (Z)"},
	}
	for _, m := range workload.AllRUBiS() {
		t.Rows = append(t.Rows, parameterRow(m))
	}
	return t
}

func parameterRow(m workload.Mix) []string {
	return []string{
		m.Name,
		fmt.Sprintf("%.0f%%", m.Pr*100),
		fmt.Sprintf("%.0f%%", m.Pw*100),
		fmt.Sprintf("%d", m.Clients),
		fmt.Sprintf("%.0f ms", m.Think*1000),
	}
}

// Table3 reproduces the TPC-W measured service demand table by
// profiling the simulated standalone database (§4.1.1) and comparing
// against the paper values.
func Table3(o Options) (Renderable, error) {
	return demandTable("table3", "Measured service demands (ms) for TPC-W", workload.AllTPCW(), o)
}

// Table5 reproduces the RUBiS measured service demand table.
func Table5(o Options) (Renderable, error) {
	return demandTable("table5", "Measured service demands (ms) for RUBiS", workload.AllRUBiS(), o)
}

func demandTable(id, title string, mixes []workload.Mix, o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"Mix", "Resource", "Read(rc)", "paper", "Write(wc)", "paper", "Writeset(ws)", "paper", "max err"},
	}
	for _, m := range mixes {
		params, _, err := profiler.Profile(m, profiler.Options{
			Seed: o.Seed + 31, Warmup: o.Warmup, Measure: o.Measure,
		})
		if err != nil {
			return nil, err
		}
		for r := workload.Resource(0); r < workload.NumResources; r++ {
			maxErr := 0.0
			rel := func(got, want float64) float64 {
				if want == 0 {
					return 0
				}
				e := stats.RelativeError(got, want)
				if e > maxErr {
					maxErr = e
				}
				return e
			}
			rel(params.Mix.RC[r], m.RC[r])
			rel(params.Mix.WC[r], m.WC[r])
			rel(params.Mix.WS[r], m.WS[r])
			t.Rows = append(t.Rows, []string{
				m.Name,
				r.String(),
				stats.FormatMS(params.Mix.RC[r]), stats.FormatMS(m.RC[r]),
				stats.FormatMS(params.Mix.WC[r]), stats.FormatMS(m.WC[r]),
				stats.FormatMS(params.Mix.WS[r]), stats.FormatMS(m.WS[r]),
				fmt.Sprintf("%.1f%%", maxErr*100),
			})
		}
	}
	return t, nil
}
