package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationPerClass compares the paper's aggregated-class multi-master
// model against the mixed open/closed per-class formulation
// (core.PredictMMPerClass). The aggregate model predicts only the mean
// response time over all transactions; the per-class model separates
// read-only from update latency, which the simulated prototype can
// verify directly. Both must agree with measurement on throughput.
func AblationPerClass(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:    "ablation-perclass",
		Title: "ablation: aggregated vs mixed per-class MM model (TPC-W shopping)",
		Header: []string{
			"N", "measured X", "agg X", "perclass X",
			"measured read RT", "perclass read RT",
			"measured write RT", "perclass write RT", "RT err",
		},
	}
	m := workload.TPCWShopping()
	params := core.NewParams(m)
	for _, n := range []int{1, 4, 8, 16} {
		res, err := cluster.Run(cluster.Config{
			Mix: m, Design: core.MultiMaster, Replicas: n,
			Seed: o.Seed + uint64(n)*31, Warmup: o.Warmup, Measure: o.Measure,
		})
		if err != nil {
			return nil, err
		}
		agg := core.PredictMM(params, n)
		pc := core.PredictMMPerClass(params, n)
		rtErr := stats.RelativeError(pc.ReadResponse, res.ReadResponse)
		if e := stats.RelativeError(pc.WriteResponse, res.WriteResponse); e > rtErr {
			rtErr = e
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%.1f", agg.Throughput),
			fmt.Sprintf("%.1f", pc.Throughput),
			fmt.Sprintf("%.0f ms", res.ReadResponse*1000),
			fmt.Sprintf("%.0f ms", pc.ReadResponse*1000),
			fmt.Sprintf("%.0f ms", res.WriteResponse*1000),
			fmt.Sprintf("%.0f ms", pc.WriteResponse*1000),
			fmt.Sprintf("%.1f%%", rtErr*100),
		})
	}
	return t, nil
}
