// Package experiments regenerates every table and figure of the
// paper's evaluation (§6): the workload parameter tables (2, 4), the
// measured service demands (3, 5), the throughput and response-time
// validation figures for both designs and both benchmarks (6-13), the
// high-abort-rate study (14), and the certifier sensitivity analysis
// (§6.3.2), plus the ablation studies DESIGN.md calls out.
//
// Each driver runs the simulated prototype ("measured") and the
// analytical model ("predicted") and emits the same rows/series the
// paper reports, together with the prediction error.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Options configure the experiment drivers.
type Options struct {
	// Replicas are the x-axis points; default 1..16 like the paper.
	Replicas []int
	// Seed drives all measurement randomness.
	Seed uint64
	// Warmup and Measure are per-run windows in virtual seconds; zero
	// uses the cluster defaults.
	Warmup  float64
	Measure float64
	// UseProfiler derives model parameters by profiling the simulated
	// standalone system (§4) instead of using the table inputs. This
	// exercises the paper's full pipeline but costs four extra
	// calibration runs per mix.
	UseProfiler bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if len(o.Replicas) == 0 {
		o.Replicas = []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	}
	if o.Seed == 0 {
		o.Seed = 20090401 // EuroSys'09, April 1-3
	}
	return o
}

// Point is one x-axis point of a figure: measured vs predicted.
type Point struct {
	Replicas  int
	Measured  float64
	Predicted float64
}

// Err returns the relative prediction error at this point.
func (p Point) Err() float64 { return stats.RelativeError(p.Predicted, p.Measured) }

// Series is one curve of a figure (e.g. "shopping").
type Series struct {
	Label  string
	Points []Point
}

// MaxErr returns the largest relative prediction error in the series.
func (s Series) MaxErr() float64 {
	var max float64
	for _, p := range s.Points {
		if e := p.Err(); e > max {
			max = e
		}
	}
	return max
}

// Figure is a reproduced paper figure as measured/predicted series.
type Figure struct {
	ID     string // e.g. "fig6"
	Title  string
	Metric string // y-axis label
	Series []Series
}

// MaxErr returns the largest relative prediction error in the figure.
func (f Figure) MaxErr() float64 {
	var max float64
	for _, s := range f.Series {
		if e := s.MaxErr(); e > max {
			max = e
		}
	}
	return max
}

// Render writes the figure as an aligned text table: one row per
// replica count, measured and predicted columns per series.
func (f Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", f.ID, f.Title, f.Metric)
	// Header.
	fmt.Fprintf(&b, "%-4s", "N")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %14s %14s %6s", s.Label+" meas", s.Label+" pred", "err")
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i, p := range f.Series[0].Points {
			fmt.Fprintf(&b, "%-4d", p.Replicas)
			for _, s := range f.Series {
				pt := s.Points[i]
				fmt.Fprintf(&b, " | %14.1f %14.1f %5.1f%%", pt.Measured, pt.Predicted, pt.Err()*100)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "max prediction error: %.1f%%\n", f.MaxErr()*100)
	_, err := io.WriteString(w, b.String())
	return err
}

// Table is a reproduced paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table with aligned columns.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Renderable is anything an experiment produces.
type Renderable interface {
	Render(w io.Writer) error
}

// multi renders several artifacts in sequence.
type multi []Renderable

// Render implements Renderable.
func (m multi) Render(w io.Writer) error {
	for i, r := range m {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := r.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a named, runnable reproduction target.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) (Renderable, error)
}

// All lists every reproduction target in paper order.
func All() []Experiment {
	return []Experiment{
		{"table2", "TPC-W workload parameters", func(o Options) (Renderable, error) { return Table2(), nil }},
		{"table3", "TPC-W measured service demands (profiled vs paper)", Table3},
		{"table4", "RUBiS workload parameters", func(o Options) (Renderable, error) { return Table4(), nil }},
		{"table5", "RUBiS measured service demands (profiled vs paper)", Table5},
		{"fig6", "TPC-W throughput on MM system", Figure6},
		{"fig7", "TPC-W response time on MM system", Figure7},
		{"fig8", "TPC-W throughput on SM system", Figure8},
		{"fig9", "TPC-W response time on SM system", Figure9},
		{"fig10", "RUBiS throughput on MM system", Figure10},
		{"fig11", "RUBiS response time on MM system", Figure11},
		{"fig12", "RUBiS throughput on SM system", Figure12},
		{"fig13", "RUBiS response time on SM system", Figure13},
		{"fig14", "TPC-W shopping MM abort probabilities", Figure14},
		{"certifier", "certifier service analysis (§6.3.2)", Certifier},
		{"network", "load balancer / network sensitivity (§6.3.1)", Network},
		{"fast-master", "extension: faster master machine for SM (§6.2.1)", FastMaster},
		{"wan", "sensitivity: LAN vs WAN middleware latency (§3.4 assumption 7)", WAN},
		{"ablation-hotspot", "sensitivity: update hotspot vs uniform-access assumption", AblationHotspot},
		{"ablation-openloop", "sensitivity: closed-loop clients vs open arrivals", AblationOpenLoop},
		{"ablation-mva", "ablation: exact vs Bard-Schweitzer MVA", AblationMVASolver},
		{"ablation-cw", "ablation: conflict-window feedback on/off", AblationConflictWindow},
		{"ablation-ws", "ablation: writeset propagation cost on/off", AblationWritesetCost},
		{"ablation-discipline", "ablation: PS vs FIFO replica scheduling", AblationDiscipline},
		{"ablation-perclass", "ablation: aggregated vs mixed per-class MM model", AblationPerClass},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
