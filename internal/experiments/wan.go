package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WAN probes §3.4 assumption 7 ("the database is replicated in a LAN
// environment rather than a WAN"): both the model and the simulated
// prototype are re-run with wide-area latencies in place of the 1 ms
// LAN delay, for the update-heavy ordering mix on an unsaturated
// multi-master pair. Two effects appear, and the model tracks both
// because the delays enter it as delay-center terms:
//
//   - response time grows by the added LB hop plus the certifier
//     round trip (charged to every update);
//   - closed-loop throughput declines only mildly — the 1 s think
//     time dominates the cycle, which is why these systems tolerate
//     moderate latency as long as no resource saturates. At full
//     saturation even response time barely moves: throughput is pinned
//     by capacity and the clients merely trade queueing for network
//     waiting.
func WAN(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:    "wan",
		Title: "sensitivity: LAN vs WAN middleware latency (TPC-W ordering MM, N=2)",
		Header: []string{
			"environment", "lb delay", "cert delay",
			"measured X", "pred X", "measured RT (ms)", "pred RT (ms)", "err X",
		},
	}
	m := workload.TPCWOrdering()
	const n = 2
	cases := []struct {
		name string
		lb   float64
		cert float64
	}{
		{"LAN (paper)", 0.001, 0.012},
		{"metro WAN", 0.010, 0.030},
		{"regional WAN", 0.025, 0.060},
		{"continental WAN", 0.050, 0.120},
	}
	for _, c := range cases {
		params := core.NewParams(m)
		params.LBDelay = c.lb
		params.CertDelay = c.cert
		pred := core.PredictMM(params, n)
		res, err := cluster.Run(cluster.Config{
			Mix: m, Design: core.MultiMaster, Replicas: n,
			Seed: o.Seed + uint64(c.lb*1e5), Warmup: o.Warmup, Measure: o.Measure,
			LBDelay: c.lb, CertDelay: c.cert,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f ms", c.lb*1000),
			fmt.Sprintf("%.0f ms", c.cert*1000),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%.1f", pred.Throughput),
			fmt.Sprintf("%.0f", res.ResponseTime*1000),
			fmt.Sprintf("%.0f", pred.ResponseTime*1000),
			fmt.Sprintf("%.1f%%", stats.RelativeError(pred.Throughput, res.Throughput)*100),
		})
	}
	return t, nil
}
