package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Network reproduces the §6.3.1 sensitivity analysis: the model folds
// the load balancer and LAN into a 1 ms delay center, which is valid
// only if the network is far from congestion. The driver computes the
// writeset traffic each design generates at the predicted peak
// throughput and compares it with gigabit-Ethernet capacity.
//
// In a multi-master system every commit ships its writeset to N-1
// replicas; the certifier link carries one writeset per update. In a
// single-master system the master ships each writeset to N-1 slaves
// through the load balancer.
func Network(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:    "network",
		Title: "load balancer / network sensitivity (§6.3.1)",
		Header: []string{
			"mix", "design", "N", "X (tps)", "updates/s",
			"per-link (Mbit/s)", "certifier link (Mbit/s)", "of 1 Gbit/s",
		},
	}
	const gig = 1000.0 // Mbit/s
	for _, m := range []workload.Mix{workload.TPCWOrdering(), workload.RUBiSBidding()} {
		params := core.NewParams(m)
		for _, design := range []core.Design{core.MultiMaster, core.SingleMaster} {
			n := 16
			var pred core.Prediction
			if design == core.MultiMaster {
				pred = core.PredictMM(params, n)
			} else {
				pred = core.PredictSM(params, n)
			}
			updates := pred.WriteThroughput
			bitsPerWS := float64(m.WritesetBytes) * 8
			// Busiest replica-facing link: one incoming writeset per
			// remote commit. MM: (N-1)/N of all updates arrive at each
			// replica; SM: all updates arrive at each slave.
			perLink := updates * bitsPerWS / 1e6
			if design == core.MultiMaster {
				perLink = updates * float64(n-1) / float64(n) * bitsPerWS / 1e6
			}
			certLink := 0.0
			if design == core.MultiMaster {
				certLink = updates * bitsPerWS / 1e6
			}
			t.Rows = append(t.Rows, []string{
				m.ID(), string(design), fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", pred.Throughput),
				fmt.Sprintf("%.0f", updates),
				fmt.Sprintf("%.3f", perLink),
				fmt.Sprintf("%.3f", certLink),
				fmt.Sprintf("%.3f%%", perLink/gig*100),
			})
		}
	}
	return t, nil
}

// FastMaster explores the paper's §6.2.1 remark: "using a more
// powerful machine as the master would mitigate this bottleneck and
// improve system scalability." The single-master model is re-solved
// with the master's service demands divided by a speed factor, showing
// how much master hardware buys for the update-bound ordering mix.
func FastMaster(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "fast-master",
		Title:  "extension: single-master with a faster master machine (§6.2.1 remark)",
		Header: []string{"mix", "master speed", "X @ 4", "X @ 8", "X @ 16", "saturation N"},
	}
	for _, m := range []workload.Mix{workload.TPCWOrdering(), workload.RUBiSBidding()} {
		for _, speed := range []float64{1, 2, 4} {
			params := core.NewParams(m)
			params.MasterSpeedup = speed
			var xs [3]float64
			for i, n := range []int{4, 8, 16} {
				xs[i] = core.PredictSM(params, n).Throughput
			}
			// Find where adding a replica stops paying 5%.
			sat := 16
			prev := core.PredictSM(params, 1).Throughput
			for n := 2; n <= 16; n++ {
				x := core.PredictSM(params, n).Throughput
				if x < prev*1.05 {
					sat = n - 1
					break
				}
				prev = x
			}
			t.Rows = append(t.Rows, []string{
				m.ID(),
				fmt.Sprintf("%.0fx", speed),
				fmt.Sprintf("%.0f", xs[0]),
				fmt.Sprintf("%.0f", xs[1]),
				fmt.Sprintf("%.0f", xs[2]),
				fmt.Sprintf("%d", sat),
			})
		}
	}
	return t, nil
}
