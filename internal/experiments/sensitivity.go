package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// AblationHotspot probes §3.4 assumption 4 ("updatable data items are
// updated uniformly, i.e., the database does not have a hotspot"): the
// simulated prototype skews update rows with a Zipf distribution while
// the model keeps its uniform-access A1. With a hotspot the real abort
// rate exceeds the model's, and — as the paper states for violated
// assumptions — the model's throughput becomes an upper bound.
func AblationHotspot(o Options) (Renderable, error) {
	o = o.withDefaults()
	if o.Measure == 0 {
		o.Measure = 300
	}
	t := Table{
		ID:     "ablation-hotspot",
		Title:  "sensitivity: update hotspot vs the uniform-access assumption (TPC-W shopping MM, N=8)",
		Header: []string{"zipf theta", "measured A_N", "model A_N", "measured X", "model X", "model is upper bound"},
	}
	base := workload.TPCWShopping()
	ideal := core.NewParams(base)
	updateRate := core.PredictStandalone(ideal).WriteThroughput
	// A heap table sized for a visible uniform abort rate.
	heap := core.HeapTableSizeForAbort(0.0053, base.UpdateOps, ideal.L1, updateRate)
	mix := base
	mix.A1 = 0.0053
	mix.DBUpdateSize = heap
	params := core.NewParams(mix)
	const n = 8
	pred := core.PredictMM(params, n)

	for _, theta := range []float64{0, 0.5, 0.9, 1.2} {
		res, err := cluster.Run(cluster.Config{
			Mix:           mix,
			Design:        core.MultiMaster,
			Replicas:      n,
			Seed:          o.Seed + uint64(theta*1000),
			Warmup:        o.Warmup,
			Measure:       o.Measure,
			HeapTableSize: heap,
			HotspotTheta:  theta,
		})
		if err != nil {
			return nil, err
		}
		upper := "yes"
		if res.Throughput > pred.Throughput*1.02 {
			upper = "no"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", theta),
			fmt.Sprintf("%.2f%%", res.AbortRate*100),
			fmt.Sprintf("%.2f%%", pred.AbortRate*100),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%.1f", pred.Throughput),
			upper,
		})
	}
	return t, nil
}

// AblationOpenLoop contrasts the paper's closed-loop workload (§3.1)
// with an open Poisson arrival stream at the same average throughput
// ("Open versus closed: a cautionary tale", cited in §3.1). Closed
// loops self-regulate — response time is bounded by the client count —
// while open arrivals drive response times toward infinity as the
// offered load approaches capacity. This is why the models are built
// for the closed-loop regime.
func AblationOpenLoop(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "ablation-openloop",
		Title:  "sensitivity: closed-loop clients vs open arrivals (TPC-W shopping MM, N=4)",
		Header: []string{"workload", "offered load", "X (tps)", "mean RT (ms)", "behaviour"},
	}
	m := workload.TPCWShopping()
	const n = 4
	closed, err := cluster.Run(cluster.Config{
		Mix: m, Design: core.MultiMaster, Replicas: n,
		Seed: o.Seed, Warmup: o.Warmup, Measure: o.Measure,
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"closed", fmt.Sprintf("%d clients", m.Clients*n),
		fmt.Sprintf("%.1f", closed.Throughput),
		fmt.Sprintf("%.0f", closed.ResponseTime*1000),
		"stable (self-regulating)",
	})
	// Below saturation an open system can even be faster than a
	// heavily-populated closed one (no fixed client backlog); past
	// saturation it has no self-regulation: the backlog and response
	// time grow with the observation window instead of converging.
	for _, frac := range []float64{0.7, 0.9, 1.1} {
		rate := closed.Throughput * frac
		res, err := cluster.Run(cluster.Config{
			Mix: m, Design: core.MultiMaster, Replicas: n,
			Seed: o.Seed + uint64(frac*100), Warmup: o.Warmup, Measure: o.Measure,
			OpenLoopRate: rate,
		})
		if err != nil {
			return nil, err
		}
		label := "stable"
		if res.Throughput < rate*0.98 {
			label = "UNSTABLE (backlog growing)"
		}
		t.Rows = append(t.Rows, []string{
			"open", fmt.Sprintf("%.0f%% of closed X", frac*100),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%.0f", res.ResponseTime*1000),
			label,
		})
	}
	return t, nil
}
