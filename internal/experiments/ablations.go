package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mva"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationMVASolver compares the exact MVA solver with the
// Bard-Schweitzer approximation on the standalone network of every
// mix: throughput accuracy and solver cost. The repository uses exact
// MVA (the client populations are small); the approximation would
// matter only for very large populations.
func AblationMVASolver(o Options) (Renderable, error) {
	t := Table{
		ID:     "ablation-mva",
		Title:  "ablation: exact MVA vs Bard-Schweitzer approximation (standalone network)",
		Header: []string{"mix", "clients", "exact X (tps)", "schweitzer X (tps)", "err", "exact ns/solve", "schweitzer ns/solve"},
	}
	centers := []mva.Center{{Name: "cpu", Kind: mva.Queueing}, {Name: "disk", Kind: mva.Queueing}}
	for _, m := range workload.All() {
		demands := []float64{
			m.StandaloneDemand(workload.CPU),
			m.StandaloneDemand(workload.Disk),
		}
		// Large populations are where the approximation pays off;
		// sweep the mix's own population and a 10x version.
		for _, clients := range []int{m.Clients, m.Clients * 10} {
			start := time.Now()
			const reps = 200
			var exact mva.Solution
			for i := 0; i < reps; i++ {
				exact = mva.Solve(centers, demands, m.Think, clients)
			}
			exactNS := time.Since(start).Nanoseconds() / reps

			start = time.Now()
			var approx mva.Solution
			for i := 0; i < reps; i++ {
				approx = mva.SolveSchweitzer(centers, demands, m.Think, clients, 0)
			}
			approxNS := time.Since(start).Nanoseconds() / reps

			t.Rows = append(t.Rows, []string{
				m.ID(),
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.2f", exact.Throughput),
				fmt.Sprintf("%.2f", approx.Throughput),
				fmt.Sprintf("%.2f%%", stats.RelativeError(approx.Throughput, exact.Throughput)*100),
				fmt.Sprintf("%d", exactNS),
				fmt.Sprintf("%d", approxNS),
			})
		}
	}
	return t, nil
}

// AblationConflictWindow quantifies the conflict-window feedback
// (§4.1.1): with the feedback disabled, A_N stays pinned at A_1 and
// the model misses the replication-driven abort growth. Run at the
// Figure 14 high-abort operating point where the difference is
// visible.
func AblationConflictWindow(o Options) (Renderable, error) {
	o = o.withDefaults()
	if o.Measure == 0 {
		o.Measure = 600 // abort rates need long observation windows
	}
	t := Table{
		ID:     "ablation-cw",
		Title:  "ablation: conflict-window feedback (TPC-W shopping, A1=0.90%)",
		Header: []string{"N", "measured A_N", "predicted A_N (feedback)", "predicted A_N (frozen)", "measured X", "pred X (feedback)", "pred X (frozen)"},
	}
	base := workload.TPCWShopping()
	ideal := core.NewParams(base)
	updateRate := core.PredictStandalone(ideal).WriteThroughput
	const a1 = 0.0090
	heap := core.HeapTableSizeForAbort(a1, base.UpdateOps, ideal.L1, updateRate)
	mix := base
	mix.A1 = a1
	mix.DBUpdateSize = heap
	params := core.NewParams(mix)

	for _, n := range []int{1, 4, 8, 16} {
		res, err := cluster.Run(cluster.Config{
			Mix: mix, Design: core.MultiMaster, Replicas: n,
			Seed: o.Seed + uint64(n), Warmup: o.Warmup, Measure: o.Measure,
			HeapTableSize: heap,
		})
		if err != nil {
			return nil, err
		}
		live := core.PredictMM(params, n)
		frozen := core.PredictMMOpt(params, n, core.MMOptions{FreezeAbort: true})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", res.AbortRate*100),
			fmt.Sprintf("%.1f%%", live.AbortRate*100),
			fmt.Sprintf("%.1f%%", frozen.AbortRate*100),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%.1f", live.Throughput),
			fmt.Sprintf("%.1f", frozen.Throughput),
		})
	}
	return t, nil
}

// AblationWritesetCost isolates the update-propagation term: with ws
// forced to zero the ordering mix would scale almost linearly, showing
// that writeset application cost — not aborts — is what limits MM
// scalability for update-heavy mixes (§6.2.1).
func AblationWritesetCost(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "ablation-ws",
		Title:  "ablation: writeset propagation cost (MM predictions)",
		Header: []string{"mix", "N", "X with ws", "X without ws", "propagation penalty"},
	}
	for _, m := range []workload.Mix{workload.TPCWOrdering(), workload.RUBiSBidding()} {
		params := core.NewParams(m)
		for _, n := range []int{4, 8, 16} {
			with := core.PredictMM(params, n)
			without := core.PredictMMOpt(params, n, core.MMOptions{DropWritesets: true})
			t.Rows = append(t.Rows, []string{
				m.ID(),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", with.Throughput),
				fmt.Sprintf("%.1f", without.Throughput),
				fmt.Sprintf("%.0f%%", (1-with.Throughput/without.Throughput)*100),
			})
		}
	}
	return t, nil
}

// AblationDiscipline compares the simulated prototype under processor
// sharing (the default; matches a time-shared database server and the
// product-form assumptions of MVA) against FIFO stations. Mean
// throughput barely moves, but FIFO drags every class's response time
// to the same value, which breaks the per-class conflict-window
// estimate.
func AblationDiscipline(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "ablation-discipline",
		Title:  "ablation: processor sharing vs FIFO stations (TPC-W shopping, MM)",
		Header: []string{"N", "X ps", "X fifo", "read RT ps (ms)", "write RT ps (ms)", "read RT fifo (ms)", "write RT fifo (ms)", "model write RT (ms)"},
	}
	m := workload.TPCWShopping()
	params := core.NewParams(m)
	for _, n := range []int{1, 8, 16} {
		run := func(fifo bool) (cluster.Result, error) {
			return cluster.Run(cluster.Config{
				Mix: m, Design: core.MultiMaster, Replicas: n,
				Seed: o.Seed + uint64(n)*13, Warmup: o.Warmup, Measure: o.Measure,
				FIFO: fifo,
			})
		}
		ps, err := run(false)
		if err != nil {
			return nil, err
		}
		fifo, err := run(true)
		if err != nil {
			return nil, err
		}
		pred := core.PredictMM(params, n)
		// Model per-class response: the update's own residence plus
		// middleware delays.
		modelWriteRT := pred.ConflictWindow + core.DefaultLBDelay
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ps.Throughput),
			fmt.Sprintf("%.1f", fifo.Throughput),
			fmt.Sprintf("%.0f", ps.ReadResponse*1000),
			fmt.Sprintf("%.0f", ps.WriteResponse*1000),
			fmt.Sprintf("%.0f", fifo.ReadResponse*1000),
			fmt.Sprintf("%.0f", fifo.WriteResponse*1000),
			fmt.Sprintf("%.0f", modelWriteRT*1000),
		})
	}
	return t, nil
}
