package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSVRenderable is implemented by artifacts that can also emit
// machine-readable CSV (for plotting the figures the paper draws).
type CSVRenderable interface {
	RenderCSV(w io.Writer) error
}

var (
	_ CSVRenderable = Figure{}
	_ CSVRenderable = Table{}
)

// RenderCSV emits one row per (series, replica count) with measured,
// predicted and error columns — the long format plotting tools want.
func (f Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "replicas", "measured", "predicted", "rel_error"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			rec := []string{
				f.ID,
				s.Label,
				fmt.Sprintf("%d", p.Replicas),
				fmt.Sprintf("%g", p.Measured),
				fmt.Sprintf("%g", p.Predicted),
				fmt.Sprintf("%g", p.Err()),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV emits the table's header and rows verbatim.
func (t Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV concatenates the parts, separated by a blank line.
func (m multi) RenderCSV(w io.Writer) error {
	for i, r := range m {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		c, ok := r.(CSVRenderable)
		if !ok {
			return fmt.Errorf("experiments: artifact %d has no CSV form", i)
		}
		if err := c.RenderCSV(w); err != nil {
			return err
		}
	}
	return nil
}
