package experiments

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/stats"
)

// Certifier reproduces the §6.3.2 analysis: certification time is
// dominated by batched writes to the certifier disk (6-8 ms each, at
// the leader and two backups in parallel); a request arriving during a
// write waits on average half a service time plus its own write, about
// 12 ms, and batching keeps the disk far from saturation even at the
// highest load the benchmarks generate (at most ~150 requests/s in the
// TPC-W ordering mix at 16 replicas — under 5% of capacity).
//
// The driver simulates the batched certifier disk at several request
// rates and reports mean delay, batch size and effective utilization,
// validating the model's choice to treat the certifier as a 12 ms
// delay center rather than a queueing center.
func Certifier(o Options) (Renderable, error) {
	o = o.withDefaults()
	t := Table{
		ID:    "certifier",
		Title: "certifier batched-write analysis (§6.3.2)",
		Header: []string{
			"arrival rate (req/s)", "mean delay (ms)", "p95 delay (ms)",
			"mean batch", "disk busy", "writes/s",
		},
	}
	for _, rate := range []float64{25, 50, 150, 500, 2000, 8000} {
		res := simulateCertifier(rate, o.Seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.1f", res.meanDelay*1000),
			fmt.Sprintf("%.1f", res.p95Delay*1000),
			fmt.Sprintf("%.1f", res.meanBatch),
			fmt.Sprintf("%.0f%%", res.busy*100),
			fmt.Sprintf("%.0f", res.writesPerSec),
		})
	}
	return t, nil
}

type certifierStats struct {
	meanDelay    float64
	p95Delay     float64
	meanBatch    float64
	busy         float64
	writesPerSec float64
}

// simulateCertifier runs the batched group-commit disk: requests
// arrive Poisson at the given rate; whenever the disk is idle and
// requests are pending, all of them are written as one batch taking
// 6-8 ms (uniform); every request in the batch completes when the
// write does. The leader and the two backups write in parallel, so
// one disk service models all three.
func simulateCertifier(rate float64, seed uint64) certifierStats {
	const (
		warm    = 5.0
		horizon = 65.0
	)
	sim := des.New()
	rng := stats.NewRand(seed ^ 0xCE47)

	type request struct{ arrived float64 }
	var pending []request
	busy := false
	measuring := false

	var delays stats.Welford
	hist := stats.NewHistogram(0, 0.1, 1000)
	var batches stats.Welford
	var busyTime, busyStart float64
	writes := 0

	var startWrite func()
	startWrite = func() {
		if busy || len(pending) == 0 {
			return
		}
		busy = true
		busyStart = sim.Now()
		batch := pending
		pending = nil
		// §6.3.2: a batched write takes 6-8 ms; with the paper's 8 ms
		// figure the expected delay is 0.5*8 + 8 = 12 ms.
		service := rng.Uniform(0.007, 0.009)
		sim.After(service, func() {
			now := sim.Now()
			busy = false
			if measuring {
				busyTime += now - busyStart
				writes++
				batches.Add(float64(len(batch)))
				for _, r := range batch {
					d := now - r.arrived
					delays.Add(d)
					hist.Add(d)
				}
			}
			startWrite()
		})
	}

	var arrive func()
	arrive = func() {
		sim.After(rng.Exp(1/rate), func() {
			pending = append(pending, request{arrived: sim.Now()})
			startWrite()
			arrive()
		})
	}
	arrive()

	sim.Run(warm)
	measuring = true
	sim.Run(horizon)

	window := horizon - warm
	return certifierStats{
		meanDelay:    delays.Mean(),
		p95Delay:     hist.Quantile(0.95),
		meanBatch:    batches.Mean(),
		busy:         busyTime / window,
		writesPerSec: float64(writes) / window,
	}
}
