package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// TestModelErrorGate is the CI acceptance gate for MVA prediction
// accuracy: it replays a fixed TPC-W matrix (every mix at several
// replica counts) against the deterministic simulated prototype, with
// the model's demands calibrated by the standalone profiler — the
// same calibrate-then-predict pipeline the live residual exporter
// (elastic.Monitor) and the autoscaler run — and fails if any point's
// relative throughput error drifts past the paper's 15% envelope.
// Fixed seeds make this reproducible: a failure means the model or
// the prototype changed, not the weather.
func TestModelErrorGate(t *testing.T) {
	const (
		seed    = 20260808
		warmup  = 10
		measure = 40
		bound   = 0.15
	)
	replicas := []int{1, 2, 4, 8}

	worst := 0.0
	for _, mix := range workload.AllTPCW() {
		params, _, err := profiler.Profile(mix, profiler.Options{
			Seed: seed + 7, Warmup: warmup, Measure: measure,
		})
		if err != nil {
			t.Fatalf("%s: profile: %v", mix.ID(), err)
		}
		for _, n := range replicas {
			res, err := cluster.Run(cluster.Config{
				Mix:      mix,
				Design:   core.MultiMaster,
				Replicas: n,
				Seed:     seed + uint64(n)*1000003,
				Warmup:   warmup,
				Measure:  measure,
			})
			if err != nil {
				t.Fatalf("%s N=%d: %v", mix.ID(), n, err)
			}
			pred := core.PredictMM(params, n)
			if res.Throughput <= 0 {
				t.Fatalf("%s N=%d: no measured throughput", mix.ID(), n)
			}
			rel := (pred.Throughput - res.Throughput) / res.Throughput
			if rel < 0 {
				rel = -rel
			}
			t.Logf("%s N=%d: measured %.1f tps, predicted %.1f tps, error %.1f%%",
				mix.ID(), n, res.Throughput, pred.Throughput, rel*100)
			if rel > worst {
				worst = rel
			}
			if rel > bound {
				t.Errorf("%s N=%d: throughput error %.1f%% exceeds the %.0f%% gate",
					mix.ID(), n, rel*100, bound*100)
			}
		}
	}
	t.Logf("worst-case throughput error %.1f%% (gate %.0f%%)", worst*100, bound*100)
}
