package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestNetworkAnalysisFarFromCongestion(t *testing.T) {
	r, err := Network(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// §6.3.1: writeset traffic is under 1 Mbit/s, orders of magnitude
	// below gigabit capacity.
	for _, row := range tbl.Rows {
		mbit, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[5], err)
		}
		if mbit > 1.0 {
			t.Errorf("%s %s: per-link %v Mbit/s exceeds the paper's 1 Mbit/s bound", row[0], row[1], mbit)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gbit") {
		t.Fatal("render missing capacity column")
	}
}

func TestFastMasterExtension(t *testing.T) {
	r, err := FastMaster(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.(Table)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// A 2x master must raise the ordering mix's 16-replica throughput
	// and push saturation later.
	x16 := func(rowIdx int) float64 {
		v, err := strconv.ParseFloat(tbl.Rows[rowIdx][4], 64)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return v
	}
	if x16(1) <= x16(0) {
		t.Errorf("2x master did not help ordering: %v vs %v", x16(1), x16(0))
	}
	if x16(2) <= x16(1) {
		t.Errorf("4x master did not beat 2x: %v vs %v", x16(2), x16(1))
	}
}

func TestFastMasterModelMatchesSimulation(t *testing.T) {
	// The heterogeneous-master extension must hold to the same
	// model-vs-measurement standard as the paper's homogeneous
	// configuration.
	m := workload.TPCWOrdering()
	params := core.NewParams(m)
	params.MasterSpeedup = 2
	for _, n := range []int{4, 8, 16} {
		pred := core.PredictSM(params, n)
		res, err := cluster.Run(cluster.Config{
			Mix:           m,
			Design:        core.SingleMaster,
			Replicas:      n,
			Seed:          77,
			Warmup:        20,
			Measure:       80,
			MasterSpeedup: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := stats.RelativeError(pred.Throughput, res.Throughput); e > 0.15 {
			t.Errorf("N=%d: predicted %.1f vs measured %.1f (err %.0f%%)",
				n, pred.Throughput, res.Throughput, e*100)
		}
	}
}

func TestMasterSpeedupIgnoredForMM(t *testing.T) {
	// The speedup parameter is single-master-only; MM predictions and
	// simulations must be unaffected.
	m := workload.TPCWShopping()
	a := core.NewParams(m)
	b := a
	b.MasterSpeedup = 4
	if core.PredictMM(a, 8).Throughput != core.PredictMM(b, 8).Throughput {
		t.Error("MasterSpeedup leaked into the MM model")
	}
	resA, err := cluster.Run(cluster.Config{Mix: m, Design: core.MultiMaster, Replicas: 2, Seed: 9, Warmup: 5, Measure: 20})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := cluster.Run(cluster.Config{Mix: m, Design: core.MultiMaster, Replicas: 2, Seed: 9, Warmup: 5, Measure: 20, MasterSpeedup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Throughput != resB.Throughput {
		t.Error("MasterSpeedup leaked into the MM simulation")
	}
}
