package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

// metrics holds the replica server's operational counters, exposed in
// Prometheus text format on the optional metrics listener and as
// cumulative counters over the wire (Stats), which is what the
// elastic controller's live profiler consumes.
type metrics struct {
	design string
	id     int

	commits     atomic.Int64
	aborts      atomic.Int64
	activeConns atomic.Int64
	activeTxns  atomic.Int64

	certMu  sync.Mutex
	certLat *stats.Latency

	// Per-class client-visible transaction latency (Begin to commit
	// acknowledgement), the live counterpart of the histograms
	// repl.Drive keeps client-side. Counts double as per-class commit
	// counters.
	txnMu     sync.Mutex
	readLat   *stats.Latency
	updateLat *stats.Latency
}

func newMetrics(design string, id int) *metrics {
	return &metrics{
		design:    design,
		id:        id,
		certLat:   stats.NewLatency(),
		readLat:   stats.NewLatency(),
		updateLat: stats.NewLatency(),
	}
}

// observeCert records one certification round trip.
func (m *metrics) observeCert(d time.Duration) {
	m.certMu.Lock()
	m.certLat.Record(d)
	m.certMu.Unlock()
}

// observeTxn records one committed transaction's serving latency.
func (m *metrics) observeTxn(readOnly bool, d time.Duration) {
	m.txnMu.Lock()
	if readOnly {
		m.readLat.Record(d)
	} else {
		m.updateLat.Record(d)
	}
	m.txnMu.Unlock()
}

// statsOK snapshots the cumulative counters for a wire Stats reply.
func (m *metrics) statsOK(eng engine) *wire.StatsOK {
	m.txnMu.Lock()
	rc, rns := m.readLat.Count(), m.readLat.Sum()
	uc, uns := m.updateLat.Count(), m.updateLat.Sum()
	m.txnMu.Unlock()
	ap := eng.applyStats()
	return &wire.StatsOK{
		ReadCommits:   rc,
		UpdateCommits: uc,
		Aborts:        m.aborts.Load(),
		ReadNs:        rns,
		UpdateNs:      uns,
		Applied:       eng.applied(),
		QueueDepth:    eng.queueDepth(),
		ActiveTxns:    m.activeTxns.Load(),
		AppliedTotal:  ap.Total,
		ApplyLag:      ap.Lag,
	}
}

// handler serves the /metrics endpoint; eng supplies the live applied
// version and writeset queue depth.
func (m *metrics) handler(eng engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" && r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "replicadb_info{design=%q,replica=\"%d\"} 1\n", m.design, m.id)
		fmt.Fprintf(w, "replicadb_commits %d\n", m.commits.Load())
		fmt.Fprintf(w, "replicadb_aborts %d\n", m.aborts.Load())
		fmt.Fprintf(w, "replicadb_active_connections %d\n", m.activeConns.Load())
		fmt.Fprintf(w, "replicadb_active_transactions %d\n", m.activeTxns.Load())
		fmt.Fprintf(w, "replicadb_applied_version %d\n", eng.applied())
		fmt.Fprintf(w, "replicadb_writeset_queue_depth %d\n", eng.queueDepth())
		fmt.Fprintf(w, "replicadb_retained_writesets %d\n", eng.logLen())
		ap := eng.applyStats()
		fmt.Fprintf(w, "replicadb_apply_workers %d\n", ap.Workers)
		fmt.Fprintf(w, "replicadb_applied_versions_total %d\n", ap.Total)
		fmt.Fprintf(w, "replicadb_apply_queue_depth %d\n", ap.Pending)
		fmt.Fprintf(w, "replicadb_apply_lag %d\n", ap.Lag)
		fmt.Fprintf(w, "replicadb_applied_versions_per_sec %g\n", ap.Rate)
		if epoch, members, err := eng.members(); err == nil {
			fmt.Fprintf(w, "replicadb_membership_epoch %d\n", epoch)
			fmt.Fprintf(w, "replicadb_members %d\n", len(members))
		}
		m.certMu.Lock()
		count := m.certLat.Count()
		q50, q95, q99 := m.certLat.Quantile(0.50), m.certLat.Quantile(0.95), m.certLat.Quantile(0.99)
		max := m.certLat.Max()
		m.certMu.Unlock()
		fmt.Fprintf(w, "replicadb_cert_latency_count %d\n", count)
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.50\"} %g\n", q50.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.95\"} %g\n", q95.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.99\"} %g\n", q99.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds_max %g\n", max.Seconds())
		m.txnMu.Lock()
		fmt.Fprintf(w, "replicadb_read_commits %d\n", m.readLat.Count())
		fmt.Fprintf(w, "replicadb_update_commits %d\n", m.updateLat.Count())
		fmt.Fprintf(w, "replicadb_read_latency_seconds{quantile=\"0.50\"} %g\n", m.readLat.Quantile(0.50).Seconds())
		fmt.Fprintf(w, "replicadb_read_latency_seconds{quantile=\"0.99\"} %g\n", m.readLat.Quantile(0.99).Seconds())
		fmt.Fprintf(w, "replicadb_update_latency_seconds{quantile=\"0.50\"} %g\n", m.updateLat.Quantile(0.50).Seconds())
		fmt.Fprintf(w, "replicadb_update_latency_seconds{quantile=\"0.99\"} %g\n", m.updateLat.Quantile(0.99).Seconds())
		m.txnMu.Unlock()
	})
}
