package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/repl/pipeline"
	"repro/internal/stats"
	"repro/internal/wire"
)

// metrics holds the replica server's operational instruments: every
// counter, gauge and histogram registers on one obs.Registry, which
// renders the /metrics exposition; the commit-path stage tracer hangs
// off the same struct so the pipeline, the certifier and the dispatch
// loop all stamp the same spans. The cumulative counters also feed
// the wire Stats reply, which is what the elastic controller's live
// profiler consumes.
type metrics struct {
	design string
	id     int

	reg    *obs.Registry
	tracer *pipeline.Tracer // nil when tracing is disabled

	commits            *obs.Counter
	aborts             *obs.Counter
	notLeaderRedirects *obs.Counter
	unknownOutcomes    *obs.Counter

	activeConns atomic.Int64
	activeTxns  atomic.Int64

	certMu  sync.Mutex
	certLat *stats.Latency

	// Per-class client-visible transaction latency (Begin to commit
	// acknowledgement), the live counterpart of the histograms
	// repl.Drive keeps client-side. Counts double as per-class commit
	// counters.
	txnMu     sync.Mutex
	readLat   *stats.Latency
	updateLat *stats.Latency
}

// latBounds are the explicit bucket bounds (in nanoseconds) the
// stats.Latency-backed series expose, mirroring obs.DefBuckets.
var latBounds = func() []int64 {
	secs := obs.DefBuckets()
	ns := make([]int64, len(secs))
	for i, s := range secs {
		ns[i] = int64(s * 1e9)
	}
	return ns
}()

func newMetrics(design string, id int, disableTrace bool, slowTxn time.Duration) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		design:    design,
		id:        id,
		reg:       reg,
		certLat:   stats.NewLatency(),
		readLat:   stats.NewLatency(),
		updateLat: stats.NewLatency(),
	}
	if !disableTrace {
		m.tracer = pipeline.NewTracer(reg, slowTxn)
	}
	reg.GaugeFunc("replicadb_info", "Static build/identity info.",
		func() float64 { return 1 },
		obs.L("design", design), obs.L("replica", strconv.Itoa(id)))
	m.commits = reg.Counter("replicadb_commits", "Committed transactions (all classes).")
	m.aborts = reg.Counter("replicadb_aborts", "Certification aborts observed by this node.")
	m.notLeaderRedirects = reg.Counter("replicadb_not_leader_redirects",
		"Requests answered with a NotLeader redirect.")
	m.unknownOutcomes = reg.Counter("replicadb_commit_unknown_outcomes",
		"Commits that failed without a definite verdict (outcome unknown to the client).")
	reg.GaugeFunc("replicadb_active_connections", "Open client connections.",
		func() float64 { return float64(m.activeConns.Load()) })
	reg.GaugeFunc("replicadb_active_transactions", "Transactions in progress.",
		func() float64 { return float64(m.activeTxns.Load()) })

	m.latencySeries("replicadb_cert_latency_seconds",
		"Certification round-trip latency (summary quantiles).",
		"replicadb_cert_latency_histogram_seconds",
		"Certification round-trip latency (bucketed).",
		&m.certMu, func() *stats.Latency { return m.certLat })
	m.latencySeries("replicadb_read_latency_seconds",
		"Read-only transaction serving latency (summary quantiles).",
		"replicadb_read_latency_histogram_seconds",
		"Read-only transaction serving latency (bucketed).",
		&m.txnMu, func() *stats.Latency { return m.readLat })
	m.latencySeries("replicadb_update_latency_seconds",
		"Update transaction serving latency (summary quantiles).",
		"replicadb_update_latency_histogram_seconds",
		"Update transaction serving latency (bucketed).",
		&m.txnMu, func() *stats.Latency { return m.updateLat })
	reg.GaugeFunc("replicadb_read_commits", "Committed read-only transactions.",
		func() float64 { m.txnMu.Lock(); defer m.txnMu.Unlock(); return float64(m.readLat.Count()) })
	reg.GaugeFunc("replicadb_update_commits", "Committed update transactions.",
		func() float64 { m.txnMu.Lock(); defer m.txnMu.Unlock(); return float64(m.updateLat.Count()) })
	reg.GaugeFunc("replicadb_cert_latency_count", "Certification round trips recorded.",
		func() float64 { m.certMu.Lock(); defer m.certMu.Unlock(); return float64(m.certLat.Count()) })
	reg.GaugeFunc("replicadb_cert_latency_max_seconds", "Largest certification round trip.",
		func() float64 { m.certMu.Lock(); defer m.certMu.Unlock(); return m.certLat.Max().Seconds() })
	return m
}

// latencySeries registers one stats.Latency-backed latency series as
// both a Prometheus summary (p50/p95/p99 quantiles + sum + count,
// keeping the pre-registry series names) and an explicit-bucket
// histogram family — the drivers keep recording into the HDR
// histogram once; the registry renders both shapes from it at scrape
// time.
func (m *metrics) latencySeries(summaryName, summaryHelp, histName, histHelp string, mu *sync.Mutex, lat func() *stats.Latency) {
	m.reg.CollectFunc(summaryName, summaryHelp, "summary", func() []obs.Sample {
		mu.Lock()
		l := lat()
		q50, q95, q99 := l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99)
		count, sum := l.Count(), l.Sum()
		mu.Unlock()
		return []obs.Sample{
			{Labels: `{quantile="0.5"}`, Value: q50.Seconds()},
			{Labels: `{quantile="0.95"}`, Value: q95.Seconds()},
			{Labels: `{quantile="0.99"}`, Value: q99.Seconds()},
			{Suffix: "_sum", Value: float64(sum) / 1e9},
			{Suffix: "_count", Value: float64(count)},
		}
	})
	m.reg.CollectFunc(histName, histHelp, "histogram", func() []obs.Sample {
		mu.Lock()
		l := lat()
		cum := l.Cumulative(latBounds)
		count, sum := l.Count(), l.Sum()
		mu.Unlock()
		out := make([]obs.Sample, 0, len(cum)+3)
		for i, c := range cum {
			le := strconv.FormatFloat(float64(latBounds[i])/1e9, 'g', -1, 64)
			out = append(out, obs.Sample{Suffix: "_bucket", Labels: `{le="` + le + `"}`, Value: float64(c)})
		}
		out = append(out,
			obs.Sample{Suffix: "_bucket", Labels: `{le="+Inf"}`, Value: float64(count)},
			obs.Sample{Suffix: "_sum", Value: float64(sum) / 1e9},
			obs.Sample{Suffix: "_count", Value: float64(count)},
		)
		return out
	})
}

// bindEngine registers the engine-backed gauges; called once the
// engine exists (the engine itself is built with the metrics struct
// in hand, so this is a second wiring phase).
func (m *metrics) bindEngine(eng engine) {
	reg := m.reg
	reg.GaugeFunc("replicadb_applied_version", "This node's applied version.",
		func() float64 { return float64(eng.applied()) })
	reg.GaugeFunc("replicadb_writeset_queue_depth", "Certified writesets not yet applied locally.",
		func() float64 { return float64(eng.queueDepth()) })
	reg.GaugeFunc("replicadb_retained_writesets", "Writesets retained for propagation.",
		func() float64 { return float64(eng.logLen()) })
	reg.GaugeFunc("replicadb_apply_workers", "Apply-stage worker count.",
		func() float64 { return float64(eng.applyStats().Workers) })
	reg.GaugeFunc("replicadb_applied_versions_total", "Versions applied since start.",
		func() float64 { return float64(eng.applyStats().Total) })
	reg.GaugeFunc("replicadb_apply_queue_depth", "Records admitted to the in-flight apply batch.",
		func() float64 { return float64(eng.applyStats().Pending) })
	reg.GaugeFunc("replicadb_apply_lag", "Newest observed version minus the applied cursor.",
		func() float64 { return float64(eng.applyStats().Lag) })
	reg.GaugeFunc("replicadb_applied_versions_per_sec", "Apply throughput over the recent window.",
		func() float64 { return eng.applyStats().Rate })
	reg.GaugeFunc("replicadb_certifier_epoch", "Certifier election epoch (Paxos ballot round).",
		func() float64 { e, _ := eng.epochInfo(); return float64(e) })
	reg.GaugeFunc("replicadb_certifier_leading", "1 when this node hosts the certifier.",
		func() float64 {
			if _, leading := eng.epochInfo(); leading {
				return 1
			}
			return 0
		})
	reg.CollectFunc("replicadb_membership_epoch", "Elastic membership epoch.", "gauge",
		func() []obs.Sample {
			epoch, _, err := eng.members()
			if err != nil {
				return nil
			}
			return []obs.Sample{{Value: float64(epoch)}}
		})
	reg.CollectFunc("replicadb_members", "Cluster members known to this node.", "gauge",
		func() []obs.Sample {
			_, members, err := eng.members()
			if err != nil {
				return nil
			}
			return []obs.Sample{{Value: float64(len(members))}}
		})
}

// observeCert records one certification round trip.
func (m *metrics) observeCert(d time.Duration) {
	m.certMu.Lock()
	m.certLat.Record(d)
	m.certMu.Unlock()
}

// observeTxn records one committed transaction's serving latency.
func (m *metrics) observeTxn(readOnly bool, d time.Duration) {
	m.txnMu.Lock()
	if readOnly {
		m.readLat.Record(d)
	} else {
		m.updateLat.Record(d)
	}
	m.txnMu.Unlock()
}

// statsOK snapshots the cumulative counters for a wire Stats reply,
// including the per-stage commit-path breakdown when tracing is on.
func (m *metrics) statsOK(eng engine) *wire.StatsOK {
	m.txnMu.Lock()
	rc, rns := m.readLat.Count(), m.readLat.Sum()
	uc, uns := m.updateLat.Count(), m.updateLat.Sum()
	m.txnMu.Unlock()
	ap := eng.applyStats()
	ok := &wire.StatsOK{
		ReadCommits:   rc,
		UpdateCommits: uc,
		Aborts:        m.aborts.Value(),
		ReadNs:        rns,
		UpdateNs:      uns,
		Applied:       eng.applied(),
		QueueDepth:    eng.queueDepth(),
		ActiveTxns:    m.activeTxns.Load(),
		AppliedTotal:  ap.Total,
		ApplyLag:      ap.Lag,
	}
	counts, nanos := m.tracer.StageTotals()
	ok.StageCounts, ok.StageNs = counts, nanos
	return ok
}

// handler serves the metrics listener: the Prometheus exposition on
// /metrics (and /), the slow-transaction log on /debug/slowtxns.
func (m *metrics) handler(eng engine) http.Handler {
	exposition := m.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics", "/":
			exposition.ServeHTTP(w, r)
		case "/debug/slowtxns":
			m.serveSlowTxns(w)
		default:
			http.NotFound(w, r)
		}
	})
}

// slowTxnEntry is the JSON shape of one slow-transaction span.
type slowTxnEntry struct {
	Version int64            `json:"version"`
	Kind    string           `json:"kind"`
	Keys    int              `json:"keys"`
	Start   time.Time        `json:"start"`
	TotalUs int64            `json:"total_us"`
	Stages  map[string]int64 `json:"stages_us"`
}

// serveSlowTxns renders the slowest recent commit-path spans, slowest
// first, with per-stage microsecond breakdowns.
func (m *metrics) serveSlowTxns(w http.ResponseWriter) {
	if m.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	spans := m.tracer.Slow()
	out := struct {
		ThresholdUs int64          `json:"threshold_us"`
		Spans       []slowTxnEntry `json:"spans"`
	}{
		ThresholdUs: m.tracer.SlowThreshold().Microseconds(),
		Spans:       make([]slowTxnEntry, 0, len(spans)),
	}
	for _, sp := range spans {
		e := slowTxnEntry{
			Version: sp.Version,
			Kind:    sp.Kind,
			Keys:    sp.Keys,
			Start:   sp.Start,
			TotalUs: sp.Total().Microseconds(),
			Stages:  make(map[string]int64, pipeline.NumStages),
		}
		for i, d := range sp.Stages {
			if d > 0 {
				e.Stages[pipeline.StageNames[i]] = d.Microseconds()
			}
		}
		out.Spans = append(out.Spans, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
