package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// metrics holds the replica server's operational counters, exposed in
// Prometheus text format on the optional metrics listener.
type metrics struct {
	design string
	id     int

	commits     atomic.Int64
	aborts      atomic.Int64
	activeConns atomic.Int64

	certMu  sync.Mutex
	certLat *stats.Latency
}

func newMetrics(design string, id int) *metrics {
	return &metrics{design: design, id: id, certLat: stats.NewLatency()}
}

// observeCert records one certification round trip.
func (m *metrics) observeCert(d time.Duration) {
	m.certMu.Lock()
	m.certLat.Record(d)
	m.certMu.Unlock()
}

// handler serves the /metrics endpoint; eng supplies the live applied
// version and writeset queue depth.
func (m *metrics) handler(eng engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" && r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "replicadb_info{design=%q,replica=\"%d\"} 1\n", m.design, m.id)
		fmt.Fprintf(w, "replicadb_commits %d\n", m.commits.Load())
		fmt.Fprintf(w, "replicadb_aborts %d\n", m.aborts.Load())
		fmt.Fprintf(w, "replicadb_active_connections %d\n", m.activeConns.Load())
		fmt.Fprintf(w, "replicadb_applied_version %d\n", eng.applied())
		fmt.Fprintf(w, "replicadb_writeset_queue_depth %d\n", eng.queueDepth())
		fmt.Fprintf(w, "replicadb_retained_writesets %d\n", eng.logLen())
		m.certMu.Lock()
		count := m.certLat.Count()
		q50, q95, q99 := m.certLat.Quantile(0.50), m.certLat.Quantile(0.95), m.certLat.Quantile(0.99)
		max := m.certLat.Max()
		m.certMu.Unlock()
		fmt.Fprintf(w, "replicadb_cert_latency_count %d\n", count)
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.50\"} %g\n", q50.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.95\"} %g\n", q95.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds{quantile=\"0.99\"} %g\n", q99.Seconds())
		fmt.Fprintf(w, "replicadb_cert_latency_seconds_max %g\n", max.Seconds())
	})
}
