package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/repl/pipeline"
	"repro/internal/stats"
	"repro/internal/wire"
)

// metrics holds the replica server's operational instruments: every
// counter, gauge and histogram registers on one obs.Registry, which
// renders the /metrics exposition; the commit-path stage tracer hangs
// off the same struct so the pipeline, the certifier and the dispatch
// loop all stamp the same spans. The cumulative counters also feed
// the wire Stats reply, which is what the elastic controller's live
// profiler consumes.
type metrics struct {
	design string
	id     int

	reg    *obs.Registry
	tracer *pipeline.Tracer // nil when tracing is disabled
	events *events.Journal  // cluster event journal (always on)

	commits            *obs.Counter
	aborts             *obs.Counter
	notLeaderRedirects *obs.Counter
	unknownOutcomes    *obs.Counter

	activeConns atomic.Int64
	activeTxns  atomic.Int64

	certMu  sync.Mutex
	certLat *stats.Latency

	// Per-class client-visible transaction latency (Begin to commit
	// acknowledgement), the live counterpart of the histograms
	// repl.Drive keeps client-side. Counts double as per-class commit
	// counters.
	txnMu     sync.Mutex
	readLat   *stats.Latency
	updateLat *stats.Latency
}

// latBounds are the explicit bucket bounds (in nanoseconds) the
// stats.Latency-backed series expose, mirroring obs.DefBuckets.
var latBounds = func() []int64 {
	secs := obs.DefBuckets()
	ns := make([]int64, len(secs))
	for i, s := range secs {
		ns[i] = int64(s * 1e9)
	}
	return ns
}()

func newMetrics(design string, id int, disableTrace bool, slowTxn time.Duration) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		design:    design,
		id:        id,
		reg:       reg,
		events:    events.NewJournal(id, 0),
		certLat:   stats.NewLatency(),
		readLat:   stats.NewLatency(),
		updateLat: stats.NewLatency(),
	}
	// Every journal emit also bumps a per-type counter, so dashboards
	// see event rates while /debug/events serves the last-N detail.
	eventCounters := make(map[events.Type]*obs.Counter, len(events.Types))
	for _, t := range events.Types {
		eventCounters[t] = reg.Counter("replicadb_events",
			"Cluster events recorded in the journal, by type.", obs.L("type", string(t)))
	}
	m.events.SetObserver(func(t events.Type) {
		if c := eventCounters[t]; c != nil {
			c.Inc()
		}
	})
	if !disableTrace {
		m.tracer = pipeline.NewTracer(reg, slowTxn)
		// Commit-to-visible replication lag, observed at this replica
		// for every applied version whose leader commit timestamp is
		// known (protocol v4 peers; the certifier host observes its own
		// apply lag the same way). The max gauge is the node's staleness
		// bound: no committed-elsewhere write has taken longer than this
		// to become visible here.
		replica := obs.L("replica", strconv.Itoa(id))
		lagHist := reg.Histogram("replicadb_replication_lag_seconds",
			"Commit-to-visible replication lag observed at this replica.", nil, replica)
		m.tracer.SetLagObserver(lagHist.ObserveDuration)
		reg.GaugeFunc("replicadb_replication_lag_max_seconds",
			"Largest commit-to-visible replication lag observed (staleness bound).",
			func() float64 {
				_, _, maxNs := m.tracer.LagTotals()
				return float64(maxNs) / 1e9
			}, replica)
		// Tracer-sourced journal entries: group-fsync waits past the
		// slow threshold, and every slow commit-path span.
		m.tracer.SetStallObserver(func(stage int, d time.Duration) {
			if stage != pipeline.StageFsync {
				return
			}
			m.events.Emit(events.FsyncStall, "group fsync wait "+d.String(),
				map[string]string{"wait_us": strconv.FormatInt(d.Microseconds(), 10)})
		})
		m.tracer.SetSlowObserver(func(sp pipeline.Span) {
			m.events.Emit(events.SlowTxn,
				fmt.Sprintf("%s span for version %d took %s", sp.Kind, sp.Version, sp.Total()),
				map[string]string{
					"version":  strconv.FormatInt(sp.Version, 10),
					"kind":     sp.Kind,
					"trace":    traceHex(sp.Trace),
					"total_us": strconv.FormatInt(sp.Total().Microseconds(), 10),
				})
		})
	}
	reg.GaugeFunc("replicadb_info", "Static build/identity info.",
		func() float64 { return 1 },
		obs.L("design", design), obs.L("replica", strconv.Itoa(id)))
	m.commits = reg.Counter("replicadb_commits", "Committed transactions (all classes).")
	m.aborts = reg.Counter("replicadb_aborts", "Certification aborts observed by this node.")
	m.notLeaderRedirects = reg.Counter("replicadb_not_leader_redirects",
		"Requests answered with a NotLeader redirect.")
	m.unknownOutcomes = reg.Counter("replicadb_commit_unknown_outcomes",
		"Commits that failed without a definite verdict (outcome unknown to the client).")
	reg.GaugeFunc("replicadb_active_connections", "Open client connections.",
		func() float64 { return float64(m.activeConns.Load()) })
	reg.GaugeFunc("replicadb_active_transactions", "Transactions in progress.",
		func() float64 { return float64(m.activeTxns.Load()) })

	m.latencySeries("replicadb_cert_latency_seconds",
		"Certification round-trip latency (summary quantiles).",
		"replicadb_cert_latency_histogram_seconds",
		"Certification round-trip latency (bucketed).",
		&m.certMu, func() *stats.Latency { return m.certLat })
	m.latencySeries("replicadb_read_latency_seconds",
		"Read-only transaction serving latency (summary quantiles).",
		"replicadb_read_latency_histogram_seconds",
		"Read-only transaction serving latency (bucketed).",
		&m.txnMu, func() *stats.Latency { return m.readLat })
	m.latencySeries("replicadb_update_latency_seconds",
		"Update transaction serving latency (summary quantiles).",
		"replicadb_update_latency_histogram_seconds",
		"Update transaction serving latency (bucketed).",
		&m.txnMu, func() *stats.Latency { return m.updateLat })
	reg.GaugeFunc("replicadb_read_commits", "Committed read-only transactions.",
		func() float64 { m.txnMu.Lock(); defer m.txnMu.Unlock(); return float64(m.readLat.Count()) })
	reg.GaugeFunc("replicadb_update_commits", "Committed update transactions.",
		func() float64 { m.txnMu.Lock(); defer m.txnMu.Unlock(); return float64(m.updateLat.Count()) })
	reg.GaugeFunc("replicadb_cert_latency_count", "Certification round trips recorded.",
		func() float64 { m.certMu.Lock(); defer m.certMu.Unlock(); return float64(m.certLat.Count()) })
	reg.GaugeFunc("replicadb_cert_latency_max_seconds", "Largest certification round trip.",
		func() float64 { m.certMu.Lock(); defer m.certMu.Unlock(); return m.certLat.Max().Seconds() })
	return m
}

// latencySeries registers one stats.Latency-backed latency series as
// both a Prometheus summary (p50/p95/p99 quantiles + sum + count,
// keeping the pre-registry series names) and an explicit-bucket
// histogram family — the drivers keep recording into the HDR
// histogram once; the registry renders both shapes from it at scrape
// time.
func (m *metrics) latencySeries(summaryName, summaryHelp, histName, histHelp string, mu *sync.Mutex, lat func() *stats.Latency) {
	m.reg.CollectFunc(summaryName, summaryHelp, "summary", func() []obs.Sample {
		mu.Lock()
		l := lat()
		q50, q95, q99 := l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99)
		count, sum := l.Count(), l.Sum()
		mu.Unlock()
		return []obs.Sample{
			{Labels: `{quantile="0.5"}`, Value: q50.Seconds()},
			{Labels: `{quantile="0.95"}`, Value: q95.Seconds()},
			{Labels: `{quantile="0.99"}`, Value: q99.Seconds()},
			{Suffix: "_sum", Value: float64(sum) / 1e9},
			{Suffix: "_count", Value: float64(count)},
		}
	})
	m.reg.CollectFunc(histName, histHelp, "histogram", func() []obs.Sample {
		mu.Lock()
		l := lat()
		cum := l.Cumulative(latBounds)
		count, sum := l.Count(), l.Sum()
		mu.Unlock()
		out := make([]obs.Sample, 0, len(cum)+3)
		for i, c := range cum {
			le := strconv.FormatFloat(float64(latBounds[i])/1e9, 'g', -1, 64)
			out = append(out, obs.Sample{Suffix: "_bucket", Labels: `{le="` + le + `"}`, Value: float64(c)})
		}
		out = append(out,
			obs.Sample{Suffix: "_bucket", Labels: `{le="+Inf"}`, Value: float64(count)},
			obs.Sample{Suffix: "_sum", Value: float64(sum) / 1e9},
			obs.Sample{Suffix: "_count", Value: float64(count)},
		)
		return out
	})
}

// bindEngine registers the engine-backed gauges; called once the
// engine exists (the engine itself is built with the metrics struct
// in hand, so this is a second wiring phase).
func (m *metrics) bindEngine(eng engine) {
	reg := m.reg
	reg.GaugeFunc("replicadb_applied_version", "This node's applied version.",
		func() float64 { return float64(eng.applied()) })
	reg.GaugeFunc("replicadb_writeset_queue_depth", "Certified writesets not yet applied locally.",
		func() float64 { return float64(eng.queueDepth()) })
	reg.GaugeFunc("replicadb_retained_writesets", "Writesets retained for propagation.",
		func() float64 { return float64(eng.logLen()) })
	reg.GaugeFunc("replicadb_apply_workers", "Apply-stage worker count.",
		func() float64 { return float64(eng.applyStats().Workers) })
	reg.GaugeFunc("replicadb_applied_versions_total", "Versions applied since start.",
		func() float64 { return float64(eng.applyStats().Total) })
	reg.GaugeFunc("replicadb_apply_queue_depth", "Records admitted to the in-flight apply batch.",
		func() float64 { return float64(eng.applyStats().Pending) })
	reg.GaugeFunc("replicadb_apply_lag", "Newest observed version minus the applied cursor.",
		func() float64 { return float64(eng.applyStats().Lag) })
	reg.GaugeFunc("replicadb_applied_versions_per_sec", "Apply throughput over the recent window.",
		func() float64 { return eng.applyStats().Rate })
	reg.GaugeFunc("replicadb_certifier_epoch", "Certifier election epoch (Paxos ballot round).",
		func() float64 { e, _ := eng.epochInfo(); return float64(e) })
	reg.GaugeFunc("replicadb_certifier_leading", "1 when this node hosts the certifier.",
		func() float64 {
			if _, leading := eng.epochInfo(); leading {
				return 1
			}
			return 0
		})
	reg.CollectFunc("replicadb_membership_epoch", "Elastic membership epoch.", "gauge",
		func() []obs.Sample {
			epoch, _, err := eng.members()
			if err != nil {
				return nil
			}
			return []obs.Sample{{Value: float64(epoch)}}
		})
	reg.CollectFunc("replicadb_members", "Cluster members known to this node.", "gauge",
		func() []obs.Sample {
			_, members, err := eng.members()
			if err != nil {
				return nil
			}
			return []obs.Sample{{Value: float64(len(members))}}
		})
}

// compactEvent journals one WAL compaction attempt — the Durability
// OnCompact hook.
func (m *metrics) compactEvent(sizeBefore, sizeAfter int64) {
	m.events.Emit(events.WALCompacted,
		fmt.Sprintf("segment rewritten: %d -> %d bytes", sizeBefore, sizeAfter),
		map[string]string{
			"bytes_before": strconv.FormatInt(sizeBefore, 10),
			"bytes_after":  strconv.FormatInt(sizeAfter, 10),
		})
}

// observeCert records one certification round trip.
func (m *metrics) observeCert(d time.Duration) {
	m.certMu.Lock()
	m.certLat.Record(d)
	m.certMu.Unlock()
}

// observeTxn records one committed transaction's serving latency.
func (m *metrics) observeTxn(readOnly bool, d time.Duration) {
	m.txnMu.Lock()
	if readOnly {
		m.readLat.Record(d)
	} else {
		m.updateLat.Record(d)
	}
	m.txnMu.Unlock()
}

// statsOK snapshots the cumulative counters for a wire Stats reply,
// including the per-stage commit-path breakdown when tracing is on.
func (m *metrics) statsOK(eng engine) *wire.StatsOK {
	m.txnMu.Lock()
	rc, rns := m.readLat.Count(), m.readLat.Sum()
	uc, uns := m.updateLat.Count(), m.updateLat.Sum()
	m.txnMu.Unlock()
	ap := eng.applyStats()
	ok := &wire.StatsOK{
		ReadCommits:   rc,
		UpdateCommits: uc,
		Aborts:        m.aborts.Value(),
		ReadNs:        rns,
		UpdateNs:      uns,
		Applied:       eng.applied(),
		QueueDepth:    eng.queueDepth(),
		ActiveTxns:    m.activeTxns.Load(),
		AppliedTotal:  ap.Total,
		ApplyLag:      ap.Lag,
	}
	counts, nanos := m.tracer.StageTotals()
	ok.StageCounts, ok.StageNs = counts, nanos
	ok.ReplicaID = int64(m.id)
	ok.Epoch, ok.Leading = eng.epochInfo()
	ok.LagCount, ok.LagSumNs, ok.LagMaxNs = m.tracer.LagTotals()
	return ok
}

// maxEventsServe caps how many journal entries one /debug/events
// response carries; together with the bounded slow-span ring this
// keeps every debug endpoint's response size bounded.
const maxEventsServe = events.DefaultCapacity

// handler serves the metrics listener: the Prometheus exposition on
// /metrics (and /), the slow-transaction log on /debug/slowtxns, the
// cluster event journal on /debug/events.
func (m *metrics) handler(eng engine) http.Handler {
	exposition := m.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics", "/":
			exposition.ServeHTTP(w, r)
		case "/debug/slowtxns":
			m.serveSlowTxns(w)
		case "/debug/events":
			m.serveEvents(w, r)
		default:
			serveJSONError(w, http.StatusNotFound, "unknown path (try /metrics, /debug/slowtxns, /debug/events)")
		}
	})
}

// serveJSONError writes a structured JSON error body, keeping the
// debug endpoints machine-parseable even on failure.
func serveJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// traceHex renders a nonzero trace id as fixed-width hex, "" for the
// zero (unknown) id.
func traceHex(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// serveEvents renders the event journal, newest first. ?limit=N bounds
// the count (capped at maxEventsServe either way).
func (m *metrics) serveEvents(w http.ResponseWriter, r *http.Request) {
	limit := maxEventsServe
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			serveJSONError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n < limit {
			limit = n
		}
	}
	out := struct {
		Node    int            `json:"node"`
		Emitted int64          `json:"emitted"`
		Events  []events.Event `json:"events"`
	}{
		Node:    m.id,
		Emitted: m.events.Emitted(),
		Events:  m.events.Recent(limit),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// slowTxnEntry is the JSON shape of one slow-transaction span. The
// trace id renders as a fixed-width hex string: a JSON number would
// lose bits past 2^53 in standard decoders.
type slowTxnEntry struct {
	Version int64            `json:"version"`
	Kind    string           `json:"kind"`
	Keys    int              `json:"keys"`
	Trace   string           `json:"trace,omitempty"`
	Start   time.Time        `json:"start"`
	TotalUs int64            `json:"total_us"`
	Stages  map[string]int64 `json:"stages_us"`
}

// serveSlowTxns renders the slowest recent commit-path spans, slowest
// first, with per-stage microsecond breakdowns.
func (m *metrics) serveSlowTxns(w http.ResponseWriter) {
	if m.tracer == nil {
		serveJSONError(w, http.StatusNotFound, "tracing disabled (node started with -notrace)")
		return
	}
	spans := m.tracer.Slow()
	out := struct {
		ThresholdUs int64          `json:"threshold_us"`
		Spans       []slowTxnEntry `json:"spans"`
	}{
		ThresholdUs: m.tracer.SlowThreshold().Microseconds(),
		Spans:       make([]slowTxnEntry, 0, len(spans)),
	}
	for _, sp := range spans {
		e := slowTxnEntry{
			Version: sp.Version,
			Kind:    sp.Kind,
			Keys:    sp.Keys,
			Trace:   traceHex(sp.Trace),
			Start:   sp.Start,
			TotalUs: sp.Total().Microseconds(),
			Stages:  make(map[string]int64, pipeline.NumStages),
		}
		for i, d := range sp.Stages {
			if d > 0 {
				e.Stages[pipeline.StageNames[i]] = d.Microseconds()
			}
		}
		out.Spans = append(out.Spans, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
