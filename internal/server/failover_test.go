package server_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
)

// startPaxosCluster boots an n-node replicated-certifier cluster.
// Every node needs the complete peer address list before any of them
// listens, so the loopback ports are reserved (and released) up front
// and each server binds its pre-assigned address. All nodes run a WAL,
// proving Durable and the replicated certifier compose end to end.
func startPaxosCluster(t *testing.T, n int, tweak func(*server.Options)) ([]*server.Server, []string, []server.Options) {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	servers := make([]*server.Server, n)
	optsAll := make([]server.Options, n)
	for i := 0; i < n; i++ {
		opts := server.Options{
			Design:       "mm",
			ID:           i,
			Listen:       addrs[i],
			Replicas:     n,
			Paxos:        true,
			PaxosPeers:   addrs,
			ElectTimeout: 200 * time.Millisecond,
			WALDir:       t.TempDir(),
			GroupCommit:  true,
		}
		if tweak != nil {
			tweak(&opts)
		}
		srv, err := server.New(opts)
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srv.Start()
		servers[i] = srv
		optsAll[i] = opts
		t.Cleanup(func() { srv.Close() })
	}
	return servers, addrs, optsAll
}

// waitOneLeader polls until exactly one live server reports leading
// (dead is the index of a killed server to skip, -1 for none) and
// returns its index.
func waitOneLeader(t *testing.T, servers []*server.Server, dead int) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		count, idx := 0, -1
		for i, s := range servers {
			if i == dead || s == nil {
				continue
			}
			if leading, _, _, ok := s.Leader(); ok && leading {
				count++
				idx = i
			}
		}
		if count == 1 {
			return idx
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no single certifier leader elected within 10s")
	return -1
}

// TestPaxosLeaderFailover is the server-level acceptance test of the
// replicated certifier: a three-node durable cluster elects a leader,
// serves a workload, loses the leader, elects a successor with a
// higher epoch, and keeps serving — with the survivors convergent.
func TestPaxosLeaderFailover(t *testing.T) {
	servers, addrs, _ := startPaxosCluster(t, 3, nil)
	lead := waitOneLeader(t, servers, -1)
	_, _, epoch0, ok := servers[lead].Leader()
	if !ok {
		t.Fatal("leader does not report a replicated certifier")
	}

	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 200
	cl, err := client.New(client.Options{Servers: addrs, Design: "mm", ProbeAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		cl.Close()
		t.Fatalf("load: %v", err)
	}
	res := repl.Drive(cl, cat, mix, 4, 25, factor, 1)
	cl.Close()
	if res.Errors != 0 {
		t.Fatalf("pre-failover drive errors: %+v", res)
	}
	// Under scheduler pressure a spurious election can race the drive;
	// a commit caught mid-handover legitimately ends unknown, so the
	// accounting invariant is commits+unknown, not an exact count.
	if res.Commits+res.Unknown != 100 {
		t.Fatalf("pre-failover commits+unknown = %d+%d, want 100", res.Commits, res.Unknown)
	}

	// Kill the leader. The survivors hold a majority, so one of them
	// must win a higher epoch and take over certification.
	servers[lead].Close()
	newLead := waitOneLeader(t, servers, lead)
	if newLead == lead {
		t.Fatalf("dead node %d still reported as leader", lead)
	}
	_, _, epoch1, _ := servers[newLead].Leader()
	if !epoch0.Less(epoch1) {
		t.Fatalf("failover did not advance the epoch: %+v -> %+v", epoch0, epoch1)
	}

	survivors := make([]string, 0, len(addrs)-1)
	for i, a := range addrs {
		if i != lead {
			survivors = append(survivors, a)
		}
	}
	cl2, err := client.New(client.Options{Servers: survivors, Design: "mm", ProbeAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	res2 := repl.Drive(cl2, cat, mix, 4, 25, factor, 1)
	if res2.Errors != 0 {
		t.Fatalf("post-failover drive errors: %+v", res2)
	}
	if res2.Commits+res2.Unknown != 100 {
		t.Fatalf("post-failover commits+unknown = %d+%d, want 100", res2.Commits, res2.Unknown)
	}

	tables := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		tables = append(tables, name)
	}
	if err := repl.CheckConvergence(cl2, tables); err != nil {
		t.Fatalf("survivor convergence: %v", err)
	}

	// The fencing invariant at the view level: the survivors settle on
	// exactly one node that believes it leads. Polled, not sampled — a
	// spurious election racing the drive leaves the outgoing leader
	// momentarily unaware it was deposed (fencing only guarantees it
	// cannot ack commits, not that its local flag flips instantly).
	waitOneLeader(t, servers, lead)
}

// TestPaxosLeaderRestartRejoins restarts a killed leader from its WAL
// and acceptor log: it must come back with its promises and data
// intact, rejoin the group, and converge with the others (whether it
// retakes leadership or follows the incumbent).
func TestPaxosLeaderRestartRejoins(t *testing.T) {
	servers, addrs, optsAll := startPaxosCluster(t, 3, nil)
	lead := waitOneLeader(t, servers, -1)

	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 200
	cl, err := client.New(client.Options{Servers: addrs, Design: "mm", ProbeAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		t.Fatalf("load: %v", err)
	}
	res := repl.Drive(cl, cat, mix, 2, 20, factor, 1)
	if res.Errors != 0 {
		t.Fatalf("drive errors: %+v", res)
	}

	servers[lead].Close()
	waitOneLeader(t, servers, lead)

	// Reboot the dead node with its old identity, address and WAL
	// directory. Its acceptor state and database replay from disk.
	restarted, err := server.New(optsAll[lead])
	if err != nil {
		t.Fatalf("restart node %d: %v", lead, err)
	}
	restarted.Start()
	servers[lead] = restarted
	t.Cleanup(func() { restarted.Close() })

	waitOneLeader(t, servers, -1)
	res2 := repl.Drive(cl, cat, mix, 2, 20, factor, 1)
	if res2.Errors != 0 {
		t.Fatalf("post-restart drive errors: %+v", res2)
	}

	tables := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		tables = append(tables, name)
	}
	if err := repl.CheckConvergence(cl, tables); err != nil {
		t.Fatalf("post-restart convergence: %v", err)
	}
}

// TestPaxosOptionValidation pins the option combinations a replicated
// certifier refuses.
func TestPaxosOptionValidation(t *testing.T) {
	base := server.Options{Design: "mm", Listen: "127.0.0.1:0", Paxos: true,
		PaxosPeers: []string{"a", "b", "c"}}

	bad := []server.Options{
		func() server.Options { o := base; o.Design = "sm"; return o }(),
		func() server.Options { o := base; o.PaxosPeers = nil; return o }(),
		func() server.Options { o := base; o.ID = 3; return o }(),
		func() server.Options { o := base; o.Join = true; o.Primary = "a"; return o }(),
	}
	for i, o := range bad {
		if _, err := server.New(o); err == nil {
			t.Errorf("case %d: want validation error, got nil", i)
		}
	}
}
