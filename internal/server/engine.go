package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/certifier"
	"repro/internal/client"
	"repro/internal/elastic"
	"repro/internal/obs/events"
	"repro/internal/paxos"
	"repro/internal/repl"
	"repro/internal/repl/mm"
	"repro/internal/repl/pipeline"
	"repro/internal/repl/sm"
	"repro/internal/sidb"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/writeset"
)

// errUnsupported marks operations this node does not serve (e.g.
// certification on a non-host replica).
var errUnsupported = errors.New("server: operation not supported by this node")

// engine is the design-specific node behind a replica server: it owns
// the local database, knows how to reach the primary, and serves the
// primary-only operations when this node is the primary.
type engine interface {
	// begin opens a transaction for one connection.
	begin(readOnly bool) (repl.Txn, error)
	// createTable / loadRows / dump are the load and convergence paths.
	createTable(name string) error
	loadRows(table string, start int64, values []string) error
	dump(table string) (map[int64]string, error)
	// sync applies everything committed so far (one pull).
	sync()
	// applied is this node's applied version (global for mm, master
	// version for sm).
	applied() int64
	// queueDepth is the number of certified writesets known about but
	// not yet applied locally.
	queueDepth() int64
	// applyStats snapshots the apply stage (worker count, throughput,
	// queue depth and lag) for /metrics and the wire Stats reply.
	applyStats() pipeline.ApplyStats
	// logLen is the number of writesets retained for propagation
	// (certification log on the mm host, sm.Log on the sm master).
	logLen() int
	// certify / check / fetchSince serve peer requests; they fail with
	// errUnsupported unless this node is the primary. peer is the
	// requester's replica id (negative for non-peer clients):
	// long-poll cursors are tracked per replica so the primary can
	// garbage-collect what everyone applied. trace is the submitting
	// transaction's cross-node trace id (0 untraced).
	certify(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error)
	check(snapshot int64, ws writeset.Writeset) (bool, int64, error)
	fetchSince(peer int64, v int64, wait time.Duration) ([]certifier.Record, error)
	// prepareTxn / decideTxn / resolveTxn / forgetTxn serve the
	// cross-shard 2PC-over-certification surface (protocol v6, routed
	// by a sharded client's coordinator). Like certify they answer
	// errUnsupported unless this node hosts the certifier.
	prepareTxn(p certifier.PreparedTxn) (vote bool, conflictWith int64, err error)
	decideTxn(id string, commit bool) (version int64, err error)
	resolveTxn(id string) (commit bool, err error)
	forgetTxn(id string) error
	// peerGone drops a peer's propagation cursor when its connection
	// dies (the next long poll re-adds it).
	peerGone(peer int64)
	// join / leave / members are the elastic membership surface,
	// served by the mm primary only (errUnsupported elsewhere).
	join(addr string) (*wire.JoinOK, error)
	leave(id int64) error
	members() (int64, []wire.Member, error)
	// snapshot captures a consistent full-state snapshot (applied
	// version + all tables) for a joiner's state transfer.
	snapshot() (int64, map[string]map[int64]string, error)
	// touch records liveness proof from peer (a snapshot chunk
	// request counts like a long poll: a joiner mid-transfer must not
	// be evicted as stale).
	touch(peer int64)
	// installSnapshot is the joiner-side inverse of snapshot.
	installSnapshot(version int64, tables map[string]map[int64]string) error
	// selfLeave deregisters this node from its primary (drain path).
	selfLeave(id int64) error
	// paxosPrepare / paxosAccept / paxosLearn serve the embedded Paxos
	// acceptor (protocol v3); errUnsupported unless this node runs one.
	paxosPrepare(b paxos.Ballot, slot int) (paxos.PrepareReply, error)
	paxosAccept(b paxos.Ballot, slot int, v paxos.Value) (paxos.AcceptReply, error)
	paxosLearn() (paxos.LearnReply, error)
	// epochInfo reports the certifier election epoch (Paxos ballot
	// round, 0 when unreplicated) and whether this node currently
	// hosts the certification service — the /metrics failover gauges.
	epochInfo() (int64, bool)
	// leaderAddr maps a paxos id to its replica address for NotLeader
	// redirects ("" when unknown or Paxos is disabled).
	leaderAddr(id int) string
	// resume reports the version durable state was recovered to at
	// start (ok false when the node has no WAL or the log was fresh).
	resume() (version int64, ok bool)
	// run is the background propagation loop (the peer link); it
	// returns when stop closes.
	run(stop <-chan struct{})
	// disconnect closes the network links to the primary and peers,
	// failing any in-flight RPC immediately so run can observe stop.
	// It must precede close: run may still be ingesting records when
	// disconnect returns, but it no longer can after it exits.
	disconnect()
	// close releases local durable resources (WAL, paxos store). Only
	// safe once run and every connection handler have returned —
	// closing the WAL under an in-flight apply panics the pipeline.
	close()
}

// pollInterval is the long-poll window of the propagation loop; it
// bounds both shutdown latency and the staleness detection of a dead
// primary.
const pollInterval = 250 * time.Millisecond

// syncLongPoll is the long-poll window for commit-path catch-up
// fetches (Link.Since, ring Since, smEngine.sync). Shorter than
// pollInterval because these run inside client-visible operations, but
// long enough that a caught-up replica parks on the primary instead of
// spinning wait=0 round trips.
const syncLongPoll = 25 * time.Millisecond

// applyGroupWindow translates the Options.GroupWindow convention onto
// a batcher: 0 keeps the adaptive default, < 0 disables accumulation.
func applyGroupWindow(b *certifier.Batcher, w time.Duration) {
	if w == 0 {
		return
	}
	if w < 0 {
		w = 0
	}
	b.SetMaxWindow(w)
}

// remoteCert instruments a remote certification service (a Link to
// the certifier host, or a LeaderRing under Paxos) with the local
// certification-latency histogram (which then measures the full
// network round trip).
type remoteCert struct {
	svc mm.CertService
	m   *metrics
	t   *pipeline.Tracer
}

var _ mm.CertService = (*remoteCert)(nil)
var _ mm.TracedCertService = (*remoteCert)(nil)

func (r *remoteCert) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	return r.CertifyTraced(snapshot, ws, 0)
}

// CertifyTraced forwards the transaction's trace id over the wire
// (protocol v4; dropped on downgraded links) so the certifier host can
// stitch its certify/paxos/journal/fsync spans under the same id.
func (r *remoteCert) CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	start := time.Now()
	var out certifier.Outcome
	var err error
	if tc, ok := r.svc.(mm.TracedCertService); ok {
		out, err = tc.CertifyTraced(snapshot, ws, trace)
	} else {
		out, err = r.svc.Certify(snapshot, ws)
	}
	r.m.observeCert(time.Since(start))
	if err == nil && out.Committed {
		// The commit span at a non-host node: the certify stage spans
		// the full network round trip to the certifier host. The trace
		// id binds locally too; the authoritative commit timestamp
		// arrives later with the propagated record.
		done := time.Now()
		r.t.NoteCommitMeta(out.Version, trace, 0)
		r.t.CommitSpan(out.Version, len(ws.Entries), start, done)
	}
	return out, err
}

func (r *remoteCert) Check(snapshot int64, ws writeset.Writeset) (bool, int64) {
	return r.svc.Check(snapshot, ws)
}

func (r *remoteCert) Since(v int64) []certifier.Record { return r.svc.Since(v) }

// The 2PC verbs forward to the primary when the underlying service
// supports them (a Link on a plain non-primary node); under Paxos the
// leader serves them directly through its hosted certifier instead.
func (r *remoteCert) PrepareTxn(p certifier.PreparedTxn) (bool, int64, error) {
	tp, ok := r.svc.(mm.TwoPCService)
	if !ok {
		return false, 0, errUnsupported
	}
	return tp.PrepareTxn(p)
}

func (r *remoteCert) DecideTxn(id string, commit bool) (int64, error) {
	tp, ok := r.svc.(mm.TwoPCService)
	if !ok {
		return 0, errUnsupported
	}
	return tp.DecideTxn(id, commit)
}

func (r *remoteCert) ResolveTxn(id string) (bool, error) {
	tp, ok := r.svc.(mm.TwoPCService)
	if !ok {
		return false, errUnsupported
	}
	return tp.ResolveTxn(id)
}

func (r *remoteCert) ForgetTxn(id string) error {
	tp, ok := r.svc.(mm.TwoPCService)
	if !ok {
		return errUnsupported
	}
	return tp.ForgetTxn(id)
}

// mmEngine is one multi-master node: a single-replica mm.Cluster whose
// certification service is either hosted here (node 0) or reached over
// a Link. The commit/apply machinery — certify stage, apply stage,
// propagation pull loop, peer cursors, journal — all comes from
// internal/repl/pipeline; this engine only wires the stages together.
type mmEngine struct {
	cl       *mm.Cluster
	ap       *pipeline.Applier // the local replica's apply stage
	stop     <-chan struct{}
	cursors  *pipeline.PeerCursors // non-nil on the certifier host
	link     *client.Link          // non-nil elsewhere: the commit path's link
	puller   *client.Link          // non-nil elsewhere: the propagation link
	dur      *pipeline.Durability  // non-nil when the node runs a WAL
	resumed  int64                 // version recovered from the WAL at start
	resumeOK bool

	// host is the hosted certification service: non-nil on the static
	// certifier host (node 0 without Paxos), and on whichever node
	// currently leads under Paxos. hostMu guards the role swaps; read
	// through hostCert().
	hostMu sync.RWMutex
	host   *pipeline.HostCert

	// Replicated certification (nil without Options.Paxos): the
	// embedded acceptor + transport + leader ring, the switchable
	// certification service the cluster commits through, and what
	// promoteSelf needs to rebuild a host.
	px          *paxosNode
	sw          *switchCert
	m           *metrics
	groupCommit bool
	groupWindow time.Duration

	// membership is the primary's authoritative member registry
	// (nil on non-primary nodes); staleAfter is the liveness grace
	// before a silent elastic member is evicted.
	membership *elastic.Membership
	staleAfter time.Duration
}

func newMMEngine(opts Options, m *metrics, stop <-chan struct{}) (*mmEngine, error) {
	e := &mmEngine{stop: stop, staleAfter: opts.StaleAfter, m: m}
	var rec *wal.Recovered
	if opts.WALDir != "" {
		var err error
		if e.dur, rec, err = openDurability(opts); err != nil {
			return nil, err
		}
		e.dur.OnCompact = m.compactEvent
	}
	var svc mm.CertService
	async := false
	if opts.Paxos {
		// Replicated certification: this node hosts a Paxos acceptor
		// and starts as a backup; leadership comes only from winning an
		// election in the role loop (node 0 campaigns immediately on a
		// cold cluster). Until then the commit path follows the leader
		// ring, and certification requests answer NotLeader.
		px, err := newPaxosNode(opts)
		if err != nil {
			if e.dur != nil {
				e.dur.W.Close()
			}
			return nil, err
		}
		e.px = px
		e.groupCommit = opts.GroupCommit
		e.groupWindow = opts.GroupWindow
		e.membership = elastic.NewMembership()
		e.membership.SeedStatic(opts.PaxosPeers)
		e.cursors = pipeline.NewDynamicPeerCursors(func() int {
			return e.membership.Peers()
		}, int64(opts.GCLag))
		e.sw = &switchCert{}
		e.sw.set(&remoteCert{svc: px.ring, m: m, t: m.tracer})
		svc = e.sw
		// Backup-side propagation decodes the leader's trace id and
		// commit timestamp per record; feed them to the tracer so
		// replication lag is measured against the leader's clock.
		px.ring.OnRecordMeta(m.tracer.NoteCommitMeta)
		// Backup catch-up rides Since(); long-poll so a caught-up backup
		// parks on the leader instead of spinning wait=0 fetches.
		px.ring.SetSinceWait(syncLongPoll)
		// The role loop applies the log (as leader) or pulls it (as
		// backup); commits must not synchronously re-fetch the backlog.
		async = true
	} else if opts.ID == 0 {
		// The certification log recovers from the WAL: the restarted
		// certifier resumes at the last durably logged version, with
		// the compaction base as its pruning horizon.
		base := certifier.New()
		if rec != nil {
			base = certifier.NewFromRecords(rec.Records, rec.Base)
		}
		if e.dur != nil {
			base.SetJournal(e.dur.W)
		}
		base.SetStageObserver(m.tracer.CertStages())
		var batcher *certifier.Batcher
		if opts.GroupCommit {
			batcher = certifier.NewBatcher(base, 0)
			applyGroupWindow(batcher, opts.GroupWindow)
		}
		e.host = &pipeline.HostCert{Base: base, Batcher: batcher, Notify: pipeline.NewNotify(), Observe: m.observeCert, Tracer: m.tracer}
		e.membership = elastic.NewMembership()
		switch {
		case len(opts.Members) > 0:
			e.membership.SeedStatic(opts.Members)
		case opts.Replicas > 0:
			// Addresses unknown (pre-elastic boot): reserve the ids so
			// joiners get fresh ones and the peer count still gates GC.
			e.membership.SeedStatic(make([]string, opts.Replicas))
		default:
			// Unknown cluster size: the primary alone, pruning disabled.
			e.membership.SeedStatic(make([]string, 1))
		}
		gcDisabled := opts.Replicas <= 0 && len(opts.Members) == 0
		e.cursors = pipeline.NewDynamicPeerCursors(func() int {
			if gcDisabled {
				return -1
			}
			return e.membership.Peers()
		}, int64(opts.GCLag))
		svc = e.host
	} else {
		e.link = client.NewLink(opts.Primary, opts.Design, opts.ID, opts.DialTimeout)
		e.link.SetSinceWait(syncLongPoll)
		e.link.SetNoCompress(opts.NoCompress)
		e.puller = client.NewLink(opts.Primary, opts.Design, opts.ID, opts.DialTimeout)
		e.puller.SetNoCompress(opts.NoCompress)
		e.puller.OnRecordMeta(m.tracer.NoteCommitMeta)
		svc = &remoteCert{svc: e.link, m: m, t: m.tracer}
		// The propagation loop applies writesets here; re-fetching the
		// backlog synchronously on every commit would double the
		// traffic for nothing.
		async = true
	}
	cl, err := mm.New(mm.Options{
		Replicas:           1,
		EagerCertification: opts.EagerCert,
		Cert:               svc,
		AsyncApply:         async,
		ApplyWorkers:       opts.ApplyWorkers,
	})
	if err != nil {
		if e.dur != nil {
			e.dur.W.Close()
		}
		return nil, err
	}
	e.cl = cl
	e.ap = cl.Applier(0)
	e.ap.SetTracer(m.tracer)
	if rec != nil {
		// Rebuild the local database from the apply stream, then (and
		// only then) attach the journal hook — replay must not journal
		// its own restoration. The recovered cursor seeds the
		// propagation position: a restarted replica resumes FetchSince
		// from here instead of transferring a snapshot.
		d := e.dur
		err := cl.RestoreDurable(0, rec.Cursor, func(db *sidb.DB) error {
			if err := rec.Restore(db); err != nil {
				return err
			}
			db.SetJournal(d.ApplyHook())
			return nil
		})
		if err != nil {
			d.W.Close()
			return nil, fmt.Errorf("server: wal replay: %w", err)
		}
		if rec.Cursor > 0 || len(rec.Applies) > 0 || len(rec.Records) > 0 {
			e.resumed, e.resumeOK = rec.Cursor, true
		}
	}
	return e, nil
}

func (e *mmEngine) resume() (int64, bool) { return e.resumed, e.resumeOK }

func (e *mmEngine) epochInfo() (int64, bool) {
	if e.px != nil {
		leading, _, epoch := e.px.view()
		return int64(epoch.Round), leading
	}
	return 0, e.hostCert() != nil
}

func (e *mmEngine) begin(readOnly bool) (repl.Txn, error) {
	if readOnly {
		return e.cl.BeginRead()
	}
	return e.cl.BeginUpdate()
}

func (e *mmEngine) createTable(name string) error {
	if err := e.cl.CreateTable(name); err != nil {
		return err
	}
	if e.dur != nil {
		return e.dur.Table(name)
	}
	return nil
}

func (e *mmEngine) loadRows(table string, start int64, values []string) error {
	if err := e.cl.LoadRows(table, start, values); err != nil {
		return err
	}
	if e.dur != nil {
		// Loaded rows are acked but, unlike certified commits, not in
		// the certifier log — FetchSince can never re-deliver them — so
		// like DDL they must be durable before the ack.
		return e.dur.Sync()
	}
	return nil
}

func (e *mmEngine) dump(table string) (map[int64]string, error) { return e.cl.TableDump(0, table) }

// sync drains the certify stage into the apply stage (one pull); the
// wire Sync handlers and the propagation loop both land here, so all
// application serializes on the pipeline applier's lock.
func (e *mmEngine) sync() {
	e.cl.Sync()
	e.noteApplied()
}

func (e *mmEngine) applied() int64 { return e.ap.Applied() }

func (e *mmEngine) queueDepth() int64 {
	if h := e.hostCert(); h != nil {
		// The host's backlog is whatever the certifier has committed
		// that the local apply stage has not yet retired.
		e.ap.Observe(h.Base.Version())
	}
	return e.ap.Stats().Lag
}

func (e *mmEngine) applyStats() pipeline.ApplyStats {
	if h := e.hostCert(); h != nil {
		e.ap.Observe(h.Base.Version())
	}
	return e.ap.Stats()
}

func (e *mmEngine) certify(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	h := e.hostCert()
	if h == nil {
		if e.px != nil {
			return certifier.Outcome{}, e.px.notLeaderErr()
		}
		return certifier.Outcome{}, errUnsupported
	}
	return h.CertifyTraced(snapshot, ws, trace)
}

func (e *mmEngine) check(snapshot int64, ws writeset.Writeset) (bool, int64, error) {
	h := e.hostCert()
	if h == nil {
		if e.px != nil {
			return false, 0, e.px.notLeaderErr()
		}
		return false, 0, errUnsupported
	}
	conflict, with := h.Check(snapshot, ws)
	return conflict, with, nil
}

// The 2PC verbs route through the cluster: on the certifier host the
// service is the hosted certifier itself (and a commit decision applies
// locally before acking, like any commit); on a plain non-primary node
// it is a remoteCert forwarding over the link to the primary, so a
// sharded client may address any member of a group. Under Paxos the
// leader serves from its hosted certifier and everyone else redirects —
// the leader's log is the only authority.
func (e *mmEngine) prepareTxn(p certifier.PreparedTxn) (bool, int64, error) {
	if e.px != nil {
		if h := e.hostCert(); h != nil {
			return h.PrepareTxn(p)
		}
		return false, 0, e.px.notLeaderErr()
	}
	return e.cl.PrepareTxn(p)
}

func (e *mmEngine) decideTxn(id string, commit bool) (int64, error) {
	if e.px != nil {
		if h := e.hostCert(); h != nil {
			return h.DecideTxn(id, commit)
		}
		return 0, e.px.notLeaderErr()
	}
	return e.cl.DecideTxn(id, commit)
}

func (e *mmEngine) resolveTxn(id string) (bool, error) {
	if e.px != nil {
		if h := e.hostCert(); h != nil {
			return h.ResolveTxn(id)
		}
		return false, e.px.notLeaderErr()
	}
	return e.cl.ResolveTxn(id)
}

func (e *mmEngine) forgetTxn(id string) error {
	if e.px != nil {
		if h := e.hostCert(); h != nil {
			return h.ForgetTxn(id)
		}
		return e.px.notLeaderErr()
	}
	return e.cl.ForgetTxn(id)
}

func (e *mmEngine) logLen() int {
	h := e.hostCert()
	if h == nil {
		return 0
	}
	return h.Base.LogLen()
}

func (e *mmEngine) fetchSince(peer int64, v int64, wait time.Duration) ([]certifier.Record, error) {
	h := e.hostCert()
	if h == nil {
		if e.px != nil {
			return nil, e.px.notLeaderErr()
		}
		return nil, errUnsupported
	}
	if wait > 0 {
		// Long polls come from the dedicated propagation links, one
		// per peer replica: their cursors tell the host what everyone
		// has applied, which bounds certification-log GC. They also
		// prove the peer is alive, deferring stale-member eviction.
		// Only current members get a cursor — an evicted or departed
		// peer that keeps polling must not be able to stand in for a
		// missing expected peer in the GC horizon count.
		if e.membership.Contains(peer) {
			e.cursors.Update(peer, v)
			e.membership.Touch(peer, time.Now())
		}
		e.maybeGC()
		h.Notify.WaitBeyond(v, wait, e.stop)
	}
	return h.Since(v), nil
}

func (e *mmEngine) peerGone(peer int64) {
	if e.cursors != nil {
		e.cursors.Drop(peer)
	}
}

// join admits a new replica (primary only): it is registered before
// the snapshot is taken, so the certification log cannot be pruned
// past anything the joiner will need — the joiner's expected cursor
// blocks GC until its first long poll arrives (see docs/ELASTICITY.md
// for the ordering argument).
func (e *mmEngine) join(addr string) (*wire.JoinOK, error) {
	if e.px != nil {
		// The Paxos group's membership is fixed at boot: elastic joins
		// would have to change the acceptor set, which this deployment
		// does not support.
		return nil, fmt.Errorf("%w: elastic join is not supported with a replicated certifier", errUnsupported)
	}
	if e.hostCert() == nil {
		return nil, errUnsupported
	}
	id, epoch, members := e.membership.Join(addr, time.Now())
	e.m.events.Emit(events.MemberJoined,
		fmt.Sprintf("admitted replica %d at %s (epoch %d)", id, addr, epoch),
		map[string]string{"replica": strconv.FormatInt(id, 10), "addr": addr, "epoch": strconv.FormatInt(epoch, 10)})
	return &wire.JoinOK{ID: id, Epoch: epoch, Members: members}, nil
}

// leave deregisters a replica (primary only): its cursor stops gating
// GC and clients drop it on their next membership poll.
func (e *mmEngine) leave(id int64) error {
	if e.px != nil {
		return fmt.Errorf("%w: the replicated-certifier group is fixed at boot", errUnsupported)
	}
	if e.hostCert() == nil {
		return errUnsupported
	}
	if id == 0 {
		return errors.New("server: the primary cannot leave the cluster")
	}
	e.membership.Leave(id)
	e.cursors.Drop(id)
	e.m.events.Emit(events.MemberLeft,
		fmt.Sprintf("replica %d deregistered", id),
		map[string]string{"replica": strconv.FormatInt(id, 10)})
	return nil
}

func (e *mmEngine) members() (int64, []wire.Member, error) {
	if e.membership == nil {
		return 0, nil, errUnsupported
	}
	epoch, members := e.membership.Snapshot()
	return epoch, members, nil
}

func (e *mmEngine) snapshot() (int64, map[string]map[int64]string, error) {
	if e.hostCert() == nil {
		return 0, nil, errUnsupported
	}
	return e.cl.Snapshot(0)
}

func (e *mmEngine) touch(peer int64) {
	if e.membership != nil {
		e.membership.Touch(peer, time.Now())
	}
}

func (e *mmEngine) installSnapshot(version int64, tables map[string]map[int64]string) error {
	if err := e.cl.InstallSnapshot(0, version, tables); err != nil {
		return err
	}
	if e.dur != nil {
		// The installed rows were journaled through the apply hook;
		// record the table set and the cursor so a restart resumes
		// past the snapshot. One fsync at the end covers the whole
		// install before it is acknowledged (not one Table call per
		// name, which would fsync once per table).
		for name := range tables {
			if err := e.dur.W.AppendTable(name); err != nil {
				return err
			}
		}
		e.dur.Cursor(version)
		if err := e.dur.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (e *mmEngine) selfLeave(id int64) error {
	if e.link == nil {
		return errUnsupported
	}
	return e.link.Leave(id)
}

// evictStale evicts elastic members that stopped proving liveness and
// drops their cursors, journaling each eviction.
func (e *mmEngine) evictStale() {
	for _, id := range e.membership.EvictStale(time.Now(), e.staleAfter) {
		e.cursors.Drop(id)
		e.m.events.Emit(events.MemberEvicted,
			fmt.Sprintf("evicted silent replica %d after %s", id, e.staleAfter),
			map[string]string{"replica": strconv.FormatInt(id, 10)})
	}
}

// maybeGC prunes the certification log up to what every replica
// (including this one) has applied, minus the safety lag.
func (e *mmEngine) maybeGC() {
	hc := e.hostCert()
	if hc == nil {
		return
	}
	if h, ok := e.cursors.Horizon(e.applied()); ok {
		hc.Base.GC(h)
	}
}

// ingest hands fetched records to the apply stage and journals the
// cursor when any landed — the puller's sink.
func (e *mmEngine) ingest(recs []certifier.Record) {
	if len(recs) > 0 {
		// Propagation-side span, sampled once per fetched batch.
		last := recs[len(recs)-1]
		e.m.tracer.PropagateSpan(last.Version, len(last.Writeset.Entries), time.Now())
	}
	if e.cl.ApplyRecords(0, recs) > 0 {
		e.noteApplied()
	}
}

// noteApplied journals the propagation cursor after applies landed —
// a cheap append. Compaction is deliberately NOT triggered here:
// noteApplied runs on the wire Sync request path, and a full-segment
// rewrite (dump, rewrite, fsync, rename) would stall one unlucky
// client for the whole of it. The background run loop compacts within
// one poll interval instead (maybeCompactDurable).
func (e *mmEngine) noteApplied() {
	if e.dur == nil {
		return
	}
	e.dur.Cursor(e.applied())
}

// maybeCompactDurable rewrites the WAL around a fresh consistent
// snapshot once the segment outgrows its bound (background loops
// only; see noteApplied). The capture and rewrite go through
// durability.maybeCompact, which serializes them as one unit so
// racing callers cannot regress the log.
func (e *mmEngine) maybeCompactDurable() {
	if e.dur == nil {
		return
	}
	e.dur.MaybeCompact(func() (int64, int64, int64, int64, map[string]map[int64]string, error) {
		applied, local, state, err := e.cl.SnapshotDurable(0)
		if err != nil {
			return 0, 0, 0, 0, nil, err
		}
		// On the certifier host, drop certified history only up to the
		// peer-cursor GC horizon: a disconnected replica's pending
		// records must survive compaction so it can still FetchSince its
		// way back.
		base := applied
		if e.cursors != nil {
			h, ok := e.cursors.Horizon(applied)
			if !ok {
				h = 0
			}
			base = h
		}
		return base, applied, local, local, state, nil
	})
}

// run is the writeset propagation loop. The certifier host applies
// from its local log on commit wakeups; other nodes long-poll the host
// over their dedicated peer link.
func (e *mmEngine) run(stop <-chan struct{}) {
	if e.px != nil {
		e.runPaxos(stop)
		return
	}
	if e.host != nil {
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.host.Notify.WaitBeyond(e.applied(), pollInterval, stop)
			if e.cl.Sync(); e.dur != nil {
				e.noteApplied()
				e.maybeCompactDurable()
			}
			// Evict elastic members that stopped proving liveness — a
			// joiner that crashed mid-state-transfer, or a replica
			// that died without a Leave. Their ghost cursors would
			// otherwise block certification-log GC forever.
			e.evictStale()
		}
	}
	p := &pipeline.Puller{
		Interval: pollInterval,
		Cursor:   e.applied,
		Fetch:    e.puller.FetchSince,
		Ingest: func(recs []certifier.Record) {
			e.ingest(recs)
			// Compact whenever records arrived, even if a client's wire
			// Sync handler won the race to apply them — otherwise a
			// replica whose applies are always won that way would never
			// compact.
			e.maybeCompactDurable()
		},
	}
	p.Run(stop)
}

func (e *mmEngine) disconnect() {
	if e.link != nil {
		e.link.Close()
	}
	if e.puller != nil {
		e.puller.Close()
	}
	if e.px != nil {
		e.px.disconnect()
	}
}

func (e *mmEngine) close() {
	if e.px != nil {
		e.px.close()
	}
	if e.dur != nil {
		e.dur.W.Close()
	}
}

func (e *mmEngine) paxosPrepare(b paxos.Ballot, slot int) (paxos.PrepareReply, error) {
	if e.px == nil {
		return paxos.PrepareReply{}, errUnsupported
	}
	return e.px.acc.Prepare(b, slot)
}

func (e *mmEngine) paxosAccept(b paxos.Ballot, slot int, v paxos.Value) (paxos.AcceptReply, error) {
	if e.px == nil {
		return paxos.AcceptReply{}, errUnsupported
	}
	return e.px.acc.Accept(b, slot, v)
}

func (e *mmEngine) paxosLearn() (paxos.LearnReply, error) {
	if e.px == nil {
		return paxos.LearnReply{}, errUnsupported
	}
	maxSlot, promised := e.px.acc.Status()
	return paxos.LearnReply{MaxSlot: maxSlot, Promised: promised}, nil
}

func (e *mmEngine) leaderAddr(id int) string {
	if e.px == nil {
		return ""
	}
	return e.px.addrOf(id)
}

// smEngine is one single-master node: the master executes updates
// under first-committer-wins snapshot isolation and feeds a
// propagation log; slaves are read-only caches whose pipeline apply
// stage installs the master's writesets in commit order over the peer
// link.
type smEngine struct {
	db       *sidb.DB
	isMaster bool
	stop     <-chan struct{}
	dur      *pipeline.Durability // non-nil when the node runs a WAL
	resumed  int64                // version recovered from the WAL at start
	resumeOK bool

	// master state
	wlog    *sm.Log
	notify  *pipeline.Notify
	cursors *pipeline.PeerCursors

	// slave state
	ap     *pipeline.Applier // the slave's apply stage
	link   *client.Link      // sync pulls
	puller *client.Link      // propagation loop

	m *metrics // node instruments (stage tracer)
}

func newSMEngine(opts Options, m *metrics, stop <-chan struct{}) (*smEngine, error) {
	e := &smEngine{db: sidb.New(), isMaster: opts.ID == 0, stop: stop, m: m}
	var rec *wal.Recovered
	if opts.WALDir != "" {
		var err error
		if e.dur, rec, err = openDurability(opts); err != nil {
			return nil, err
		}
		e.dur.OnCompact = m.compactEvent
		if err := rec.Restore(e.db); err != nil {
			e.dur.W.Close()
			return nil, fmt.Errorf("server: wal replay: %w", err)
		}
		e.db.SetJournal(e.dur.ApplyHook())
		if v := e.db.Version(); v > 0 {
			e.resumed, e.resumeOK = v, true
		}
	}
	if e.isMaster {
		e.wlog = sm.NewLog()
		e.notify = pipeline.NewNotify()
		e.cursors = pipeline.NewPeerCursors(opts.Replicas-1, int64(opts.GCLag))
		if rec != nil {
			// Rebuild the propagation log so restarted slaves resume
			// their FetchSince cursors. Master versions are absolute,
			// so the recovered apply stream is the log verbatim.
			for _, a := range rec.Applies {
				e.wlog.Append(a.Local, a.WS)
			}
		}
	} else {
		// The slave cursor is the absolute master version, which the
		// local database version tracks exactly (the slave loaded
		// identically and applies in commit order).
		e.ap = pipeline.NewApplier(e.db, opts.ApplyWorkers)
		e.ap.SetTracer(m.tracer)
		if err := e.ap.Reset(func(int64) (int64, error) { return e.db.Version(), nil }); err != nil {
			return nil, err
		}
		e.link = client.NewLink(opts.Primary, opts.Design, opts.ID, opts.DialTimeout)
		e.link.SetNoCompress(opts.NoCompress)
		e.puller = client.NewLink(opts.Primary, opts.Design, opts.ID, opts.DialTimeout)
		e.puller.SetNoCompress(opts.NoCompress)
		e.puller.OnRecordMeta(m.tracer.NoteCommitMeta)
	}
	return e, nil
}

func (e *smEngine) epochInfo() (int64, bool) { return 0, e.isMaster }

func (e *smEngine) begin(readOnly bool) (repl.Txn, error) {
	if !readOnly && !e.isMaster {
		// The slave proxy is the only source of updates to its
		// database (§5.2); the client driver routes updates to the
		// master, so reaching this is a routing bug, not a race.
		return nil, fmt.Errorf("%w: updates must run on the master", errUnsupported)
	}
	return &smTxn{e: e, inner: e.db.Begin(), readOnly: readOnly}, nil
}

func (e *smEngine) createTable(name string) error {
	if err := e.db.CreateTable(name); err != nil {
		return err
	}
	if e.dur != nil {
		return e.dur.Table(name)
	}
	return nil
}

// maybeCompact rewrites the WAL around a consistent dump once the
// segment outgrows its bound. Master versions are absolute, so the
// snapshot's local version doubles as the global one; on the master
// the drop horizon additionally respects the slave cursors, exactly
// like propagation-log GC. The capture and rewrite go through
// durability.maybeCompact so racing callers cannot regress the log.
func (e *smEngine) maybeCompact() {
	if e.dur == nil {
		return
	}
	e.dur.MaybeCompact(func() (int64, int64, int64, int64, map[string]map[int64]string, error) {
		local, state, err := consistentDump(e.db)
		if err != nil {
			return 0, 0, 0, 0, nil, err
		}
		base := local
		if e.isMaster && e.cursors != nil {
			h, ok := e.cursors.Horizon(local)
			if !ok {
				h = 0
			}
			base = h
		}
		// The master's apply stream doubles as the propagation log: keep
		// applies above the slave horizon, not just above the snapshot.
		return base, local, local, base, state, nil
	})
}

func (e *smEngine) loadRows(table string, start int64, values []string) error {
	ws := writeset.FromRows(table, start, values)
	if e.ap != nil {
		// The slave's apply cursor tracks the database version, so the
		// load moves both together under the apply lock.
		err := e.ap.Reset(func(int64) (int64, error) {
			if err := e.db.ApplyWriteset(ws, e.db.Version()+1); err != nil {
				return 0, err
			}
			return e.db.Version(), nil
		})
		if err != nil {
			return err
		}
	} else if err := e.db.ApplyWriteset(ws, e.db.Version()+1); err != nil {
		return err
	}
	if e.dur != nil {
		// Loaded rows are acked but not re-fetchable from the master's
		// propagation log, so they must be durable before the ack.
		return e.dur.Sync()
	}
	return nil
}

func (e *smEngine) dump(table string) (map[int64]string, error) { return e.db.Dump(table) }

// sync drains the master's propagation feed into the slave's apply
// stage (one pull); wire Sync handlers and the propagation loop both
// land on the pipeline applier's lock.
func (e *smEngine) sync() {
	if e.isMaster {
		return // the master is always current
	}
	// Long-poll instead of wait=0: a caught-up slave pinged by a
	// client's Sync loop parks briefly on the master rather than
	// burning a round trip per ping.
	recs, err := e.link.FetchSince(e.applied(), syncLongPoll)
	if err != nil {
		return
	}
	e.ap.Apply(recs)
}

func (e *smEngine) applied() int64 {
	if e.isMaster {
		return e.db.Version()
	}
	return e.ap.Applied()
}

func (e *smEngine) queueDepth() int64 {
	if e.isMaster {
		return 0
	}
	return e.ap.Stats().Lag
}

func (e *smEngine) applyStats() pipeline.ApplyStats {
	if e.isMaster {
		// The master applies nothing; its commits land through its own
		// concurrency control.
		return pipeline.ApplyStats{Applied: e.db.Version()}
	}
	return e.ap.Stats()
}

func (e *smEngine) certify(int64, writeset.Writeset, uint64) (certifier.Outcome, error) {
	return certifier.Outcome{}, errUnsupported // sm needs no certifier (§2)
}

func (e *smEngine) check(int64, writeset.Writeset) (bool, int64, error) {
	return false, 0, errUnsupported
}

func (e *smEngine) prepareTxn(certifier.PreparedTxn) (bool, int64, error) {
	return false, 0, errUnsupported // 2PC needs a certifier (mm only)
}
func (e *smEngine) decideTxn(string, bool) (int64, error) { return 0, errUnsupported }
func (e *smEngine) resolveTxn(string) (bool, error)       { return false, errUnsupported }
func (e *smEngine) forgetTxn(string) error                { return errUnsupported }

func (e *smEngine) logLen() int {
	if !e.isMaster {
		return 0
	}
	return e.wlog.Len()
}

func (e *smEngine) fetchSince(peer int64, v int64, wait time.Duration) ([]certifier.Record, error) {
	if !e.isMaster {
		return nil, errUnsupported
	}
	if wait > 0 {
		// A slave's long-poll cursor is the master version it has
		// applied; the minimum across all slaves bounds log pruning.
		e.cursors.Update(peer, v)
		if h, ok := e.cursors.Horizon(e.db.Version()); ok {
			e.wlog.GCBelow(h)
		}
		e.notify.WaitBeyond(v, wait, e.stop)
	}
	return e.wlog.SinceDense(v), nil
}

func (e *smEngine) peerGone(peer int64) {
	if e.cursors != nil {
		e.cursors.Drop(peer)
	}
}

// The single-master design keeps its boot-time membership: the master
// is a stateful bottleneck the paper scales by buying a bigger
// machine (§6.2.1), not by elastic joins. All membership operations
// answer errUnsupported.
func (e *smEngine) join(string) (*wire.JoinOK, error) { return nil, errUnsupported }
func (e *smEngine) leave(int64) error                 { return errUnsupported }
func (e *smEngine) members() (int64, []wire.Member, error) {
	return 0, nil, errUnsupported
}
func (e *smEngine) snapshot() (int64, map[string]map[int64]string, error) {
	return 0, nil, errUnsupported
}
func (e *smEngine) touch(int64) {}
func (e *smEngine) installSnapshot(int64, map[string]map[int64]string) error {
	return errUnsupported
}
func (e *smEngine) selfLeave(int64) error { return errUnsupported }

// The single-master design replicates through its master, not a Paxos
// group; every acceptor RPC answers errUnsupported.
func (e *smEngine) paxosPrepare(paxos.Ballot, int) (paxos.PrepareReply, error) {
	return paxos.PrepareReply{}, errUnsupported
}
func (e *smEngine) paxosAccept(paxos.Ballot, int, paxos.Value) (paxos.AcceptReply, error) {
	return paxos.AcceptReply{}, errUnsupported
}
func (e *smEngine) paxosLearn() (paxos.LearnReply, error) {
	return paxos.LearnReply{}, errUnsupported
}
func (e *smEngine) leaderAddr(int) string { return "" }

func (e *smEngine) resume() (int64, bool) { return e.resumed, e.resumeOK }

func (e *smEngine) run(stop <-chan struct{}) {
	if e.isMaster {
		if e.dur == nil {
			return
		}
		// The master has no propagation loop; poll only for compaction.
		for {
			select {
			case <-stop:
				return
			case <-time.After(pollInterval):
				e.maybeCompact()
			}
		}
	}
	p := &pipeline.Puller{
		Interval: pollInterval,
		Cursor:   e.applied,
		Fetch:    e.puller.FetchSince,
		Ingest: func(recs []certifier.Record) {
			if len(recs) > 0 {
				last := recs[len(recs)-1]
				e.m.tracer.PropagateSpan(last.Version, len(last.Writeset.Entries), time.Now())
			}
			e.ap.Apply(recs)
			e.maybeCompact()
		},
	}
	p.Run(stop)
}

func (e *smEngine) disconnect() {
	if e.link != nil {
		e.link.Close()
	}
	if e.puller != nil {
		e.puller.Close()
	}
}

func (e *smEngine) close() {
	if e.dur != nil {
		e.dur.W.Close()
	}
}

// smTxn adapts a sidb transaction to repl.Txn with the master/slave
// proxy rules.
type smTxn struct {
	e        *smEngine
	inner    *sidb.Txn
	version  int64  // master version assigned at commit (0 until then)
	trace    uint64 // cross-node trace id (0 untraced)
	readOnly bool
	done     bool
}

var _ repl.Txn = (*smTxn)(nil)

// SetTrace attaches the transaction's cross-node trace id before
// Commit; the master records it against the assigned version so
// propagated records carry it to the slaves.
func (t *smTxn) SetTrace(trace uint64) { t.trace = trace }

func (t *smTxn) Read(table string, row int64) (string, bool, error) {
	return t.inner.Read(table, row)
}

func (t *smTxn) Write(table string, row int64, value string) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Write(table, row, value)
}

func (t *smTxn) Delete(table string, row int64) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Delete(table, row)
}

func (t *smTxn) Commit() error {
	if t.done {
		return sidb.ErrTxnDone
	}
	t.done = true
	ws, version, err := t.inner.Commit()
	if err != nil {
		if errors.Is(err, sidb.ErrConflict) {
			return fmt.Errorf("%w (%v)", repl.ErrAborted, err)
		}
		return err
	}
	if !ws.Empty() {
		t.version = version
		if d := t.e.dur; d != nil {
			// The writeset was journaled by the database's apply hook
			// inside Commit; block on the group fsync before the commit
			// is acknowledged or propagated (fail-stop on real disk
			// failures, ambiguous outcome on a clean-shutdown race —
			// see sm.SyncCommit).
			syncStart := time.Now()
			if err := sm.SyncCommit(d.W, version); err != nil {
				return err
			}
			t.e.m.tracer.ObserveStage(pipeline.StageFsync, time.Since(syncStart), 1)
		}
		t.e.wlog.Append(version, ws)
		t.e.m.tracer.NoteCommitMeta(version, t.trace, time.Now().UnixNano())
		t.e.notify.Bump(version)
	}
	return nil
}

// CommitVersion returns the master version a successful update commit
// was assigned, or 0 for read-only transactions and before Commit.
func (t *smTxn) CommitVersion() int64 { return t.version }

func (t *smTxn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.inner.Abort()
}
