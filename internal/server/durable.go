package server

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sidb"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// durability is the per-node WAL state an engine carries when the
// server runs with Options.WALDir set.
type durability struct {
	w            *wal.WAL
	compactAfter int64
	lastCursor   atomic.Int64
	// lastCompact is the segment size right after the previous
	// compaction attempt: re-attempting before meaningful growth would
	// livelock on full-segment rewrites whenever compaction cannot
	// shrink the log (blocked GC horizon, or a snapshot bigger than
	// the bound).
	lastCompact atomic.Int64
}

// openDurability opens (or creates) the node's WAL and replays it.
// A joiner must start from an empty log: its state comes from the
// snapshot transfer, and mixing a previous incarnation's replay with a
// fresh snapshot would double-apply history.
func openDurability(opts Options) (*durability, *wal.Recovered, error) {
	w, rec, err := wal.Open(wal.Options{Dir: opts.WALDir, Fsync: opts.Fsync})
	if err != nil {
		return nil, nil, fmt.Errorf("server: open wal: %w", err)
	}
	if opts.Join && (len(rec.Applies) > 0 || len(rec.Records) > 0 || rec.Snapshot != nil || len(rec.Tables) > 0) {
		w.Close()
		return nil, nil, fmt.Errorf("server: -join requires an empty WAL directory "+
			"(found state at epoch %d — restart with -id/-peers to recover it instead)", rec.Epoch)
	}
	d := &durability{w: w, compactAfter: opts.WALCompactBytes}
	return d, rec, nil
}

// applyHook returns the sidb journal hook that feeds the local apply
// stream into the WAL. Attach it only after replay, or recovery would
// re-journal its own restoration.
func (d *durability) applyHook() func(ws writeset.Writeset, version int64) error {
	return func(ws writeset.Writeset, version int64) error {
		return d.w.AppendApply(version, ws)
	}
}

// table journals a created table.
func (d *durability) table(name string) error { return d.w.AppendTable(name) }

// cursor journals the propagation cursor (the global version this
// replica has applied), skipping repeats so an idle poll loop does not
// grow the log. Cursor records are advisory: a crash before the latest
// one costs a re-fetch of already-applied records, which ApplyRecords
// tolerates.
func (d *durability) cursor(global int64) {
	if d.lastCursor.Swap(global) == global {
		return
	}
	_ = d.w.AppendCursor(global)
}

// due reports whether the segment has outgrown the compaction bound
// AND grown enough since the last attempt to be worth another
// full-segment rewrite (an eighth of the bound), so a compaction that
// cannot shrink the log backs off instead of rewriting it on every
// poll tick.
func (d *durability) due() bool {
	if d.compactAfter <= 0 {
		return false
	}
	size := d.w.Size()
	return size >= d.compactAfter && size >= d.lastCompact.Load()+d.compactAfter/8
}

// compactSnapshot rewrites the WAL around a consistent full-state
// snapshot. base bounds which certified records are dropped (on the
// certifier host this is the peer-cursor GC horizon, never past what a
// disconnected replica still needs); applied/local position the
// snapshot itself; keepApplies bounds which local applies are dropped
// (the sm master keeps its slave horizon's worth, everyone else drops
// up to the snapshot).
func (d *durability) compactSnapshot(base, applied, local, keepApplies int64, state map[string]map[int64]string) {
	if base > applied {
		base = applied
	}
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	_ = d.w.Compact(base, applied, local, keepApplies, names, state)
	// Record the post-attempt size whether or not the rewrite shrank
	// (or succeeded at all): due() only re-arms after real growth.
	d.lastCompact.Store(d.w.Size())
}

// consistentDump captures one database's full contents plus the local
// version they are consistent at, through a single read transaction —
// the sm engines' compaction capture (the mm engines capture through
// Cluster.SnapshotDurable, which also pins the global cursor).
func consistentDump(db *sidb.DB) (local int64, state map[string]map[int64]string, err error) {
	tx := db.Begin()
	defer tx.Abort()
	state = make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		rows, err := tx.Scan(name)
		if err != nil {
			return 0, nil, err
		}
		state[name] = rows
	}
	return tx.Snapshot(), state, nil
}
