package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sidb"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// durability is the per-node WAL state an engine carries when the
// server runs with Options.WALDir set.
type durability struct {
	w            *wal.WAL
	compactAfter int64
	lastCursor   atomic.Int64
	// compactMu makes a snapshot capture and the WAL rewrite around it
	// one atomic unit (see maybeCompact).
	compactMu sync.Mutex
	// lastCompact is the segment size right after the previous
	// compaction attempt: re-attempting before meaningful growth would
	// livelock on full-segment rewrites whenever compaction cannot
	// shrink the log (blocked GC horizon, or a snapshot bigger than
	// the bound).
	lastCompact atomic.Int64
}

// openDurability opens (or creates) the node's WAL and replays it.
// A joiner must start from an empty log: its state comes from the
// snapshot transfer, and mixing a previous incarnation's replay with a
// fresh snapshot would double-apply history.
func openDurability(opts Options) (*durability, *wal.Recovered, error) {
	w, rec, err := wal.Open(wal.Options{Dir: opts.WALDir, Fsync: opts.Fsync})
	if err != nil {
		return nil, nil, fmt.Errorf("server: open wal: %w", err)
	}
	if opts.Join && (len(rec.Applies) > 0 || len(rec.Records) > 0 || rec.Snapshot != nil || len(rec.Tables) > 0) {
		w.Close()
		return nil, nil, fmt.Errorf("server: -join requires an empty WAL directory "+
			"(found state at epoch %d — restart with -id/-peers to recover it instead)", rec.Epoch)
	}
	d := &durability{w: w, compactAfter: opts.WALCompactBytes}
	return d, rec, nil
}

// applyHook returns the sidb journal hook that feeds the local apply
// stream into the WAL. Attach it only after replay, or recovery would
// re-journal its own restoration.
func (d *durability) applyHook() func(ws writeset.Writeset, version int64) error {
	return func(ws writeset.Writeset, version int64) error {
		return d.w.AppendApply(version, ws)
	}
}

// sync blocks on the group fsync covering everything journaled so far.
func (d *durability) sync() error { return d.w.Sync(d.w.Seq()) }

// table journals a created table and blocks on the group fsync before
// the caller acknowledges: DDL is acked to the client, so like a commit
// it must not evaporate in a power loss.
func (d *durability) table(name string) error {
	if err := d.w.AppendTable(name); err != nil {
		return err
	}
	return d.sync()
}

// cursor journals the propagation cursor (the global version this
// replica has applied), skipping repeats so an idle poll loop does not
// grow the log. Cursor records are advisory: a crash before the latest
// one costs a re-fetch of already-applied records, which ApplyRecords
// tolerates.
func (d *durability) cursor(global int64) {
	if d.lastCursor.Swap(global) == global {
		return
	}
	_ = d.w.AppendCursor(global)
}

// due reports whether the segment has outgrown the compaction bound
// AND grown enough since the last attempt to be worth another
// full-segment rewrite (an eighth of the bound), so a compaction that
// cannot shrink the log backs off instead of rewriting it on every
// poll tick.
func (d *durability) due() bool {
	if d.compactAfter <= 0 {
		return false
	}
	size := d.w.Size()
	return size >= d.compactAfter && size >= d.lastCompact.Load()+d.compactAfter/8
}

// maybeCompact runs one capture-and-rewrite cycle when the segment has
// outgrown its bound. capture produces a consistent full-state
// snapshot: base bounds which certified records are dropped (on the
// certifier host this is the peer-cursor GC horizon, never past what a
// disconnected replica still needs); snapGlobal/snapLocal position the
// snapshot itself; keepApplies bounds which local applies are dropped
// (the sm master keeps its slave horizon's worth, everyone else drops
// up to the snapshot).
//
// compactMu is held across BOTH the capture and the rewrite, making
// them one atomic unit. Callers race (the propagation run loop and the
// wire Sync handlers both land here), and without the lock a goroutine
// holding an older capture could rewrite the segment after a competitor
// compacted with a newer one: the rewrite drops the newer snapshot
// frame while the applies it superseded are already gone, and a
// retained cursor above the lost versions makes a restart resume
// FetchSince past them — silently losing durably acked commits.
// WAL.Compact rejects stale snapshots as a second line of defense.
func (d *durability) maybeCompact(capture func() (base, snapGlobal, snapLocal, keepApplies int64, state map[string]map[int64]string, err error)) {
	if !d.due() {
		return
	}
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if !d.due() {
		return // a racing compaction already rewrote the segment
	}
	base, snapGlobal, snapLocal, keepApplies, state, err := capture()
	if err != nil {
		return
	}
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	_ = d.w.Compact(base, snapGlobal, snapLocal, keepApplies, names, state)
	// Record the post-attempt size whether or not the rewrite shrank
	// (or succeeded at all): due() only re-arms after real growth.
	d.lastCompact.Store(d.w.Size())
}

// consistentDump captures one database's full contents plus the local
// version they are consistent at, through a single read transaction —
// the sm engines' compaction capture (the mm engines capture through
// Cluster.SnapshotDurable, which also pins the global cursor).
func consistentDump(db *sidb.DB) (local int64, state map[string]map[int64]string, err error) {
	tx := db.Begin()
	defer tx.Abort()
	state = make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		rows, err := tx.Scan(name)
		if err != nil {
			return 0, nil, err
		}
		state[name] = rows
	}
	return tx.Snapshot(), state, nil
}
