package server

import (
	"fmt"

	"repro/internal/repl/pipeline"
	"repro/internal/sidb"
	"repro/internal/wal"
)

// openDurability opens (or creates) the node's WAL, replays it, and
// wraps it in the pipeline's journal stage. A joiner must start from
// an empty log: its state comes from the snapshot transfer, and mixing
// a previous incarnation's replay with a fresh snapshot would
// double-apply history.
func openDurability(opts Options) (*pipeline.Durability, *wal.Recovered, error) {
	w, rec, err := wal.Open(wal.Options{Dir: opts.WALDir, Fsync: opts.Fsync})
	if err != nil {
		return nil, nil, fmt.Errorf("server: open wal: %w", err)
	}
	if opts.Join && (len(rec.Applies) > 0 || len(rec.Records) > 0 || rec.Snapshot != nil || len(rec.Tables) > 0) {
		w.Close()
		return nil, nil, fmt.Errorf("server: -join requires an empty WAL directory "+
			"(found state at epoch %d — restart with -id/-peers to recover it instead)", rec.Epoch)
	}
	return pipeline.NewDurability(w, opts.WALCompactBytes), rec, nil
}

// consistentDump captures one database's full contents plus the local
// version they are consistent at, through a single read transaction —
// the sm engines' compaction capture (the mm engines capture through
// Cluster.SnapshotDurable, which also pins the global cursor).
func consistentDump(db *sidb.DB) (local int64, state map[string]map[int64]string, err error) {
	tx := db.Begin()
	defer tx.Abort()
	state = make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		rows, err := tx.Scan(name)
		if err != nil {
			return 0, nil, err
		}
		state[name] = rows
	}
	return tx.Snapshot(), state, nil
}
