package server_test

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
)

// metricValue parses one series value out of a /metrics exposition
// body. series is the full series name including any label set, e.g.
// `replicadb_stage_latency_seconds_count{stage="certify"}`.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, body)
	return 0
}

func stageCount(t *testing.T, body, stage string) float64 {
	t.Helper()
	return metricValue(t, body, `replicadb_stage_latency_seconds_count{stage="`+stage+`"}`)
}

// slowTxnsDoc mirrors the /debug/slowtxns JSON shape.
type slowTxnsDoc struct {
	ThresholdUs int64 `json:"threshold_us"`
	Spans       []struct {
		Version int64            `json:"version"`
		Kind    string           `json:"kind"`
		Keys    int              `json:"keys"`
		TotalUs int64            `json:"total_us"`
		Stages  map[string]int64 `json:"stages_us"`
	} `json:"spans"`
}

// TestCommitPathTracing drives a two-node cluster with durable
// commits and checks the full tracing surface: per-stage histograms
// on /metrics for every stage the node traverses, complete spans on
// /debug/slowtxns, and the stage breakdown in the wire Stats reply.
func TestCommitPathTracing(t *testing.T) {
	servers, cl := startCluster(t, "mm", 2, func(o *server.Options) {
		o.MetricsAddr = "127.0.0.1:0"
		o.WALDir = t.TempDir()
		o.Fsync = true
	})
	driveAndCheck(t, cl, 2, 10)

	// The certifier host measures every commit-path stage except paxos
	// (no replicated certifier here).
	host := httpGet(t, "http://"+servers[0].MetricsAddr()+"/metrics")
	for _, stage := range []string{"certify", "journal", "fsync", "apply", "ack"} {
		if n := stageCount(t, host, stage); n <= 0 {
			t.Errorf("host stage %q count = %v, want > 0", stage, n)
		}
	}
	if n := stageCount(t, host, "paxos"); n != 0 {
		t.Errorf("host stage paxos count = %v, want 0 without -paxos", n)
	}

	// The remote replica times its certification round trips, its
	// propagation applies, and its own acks.
	replica := httpGet(t, "http://"+servers[1].MetricsAddr()+"/metrics")
	for _, stage := range []string{"certify", "apply", "ack"} {
		if n := stageCount(t, replica, stage); n <= 0 {
			t.Errorf("replica stage %q count = %v, want > 0", stage, n)
		}
	}

	// /debug/slowtxns returns complete spans (falling back to the
	// slowest recent ones when nothing crossed the threshold).
	var doc slowTxnsDoc
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+servers[0].MetricsAddr()+"/debug/slowtxns")), &doc); err != nil {
		t.Fatalf("slowtxns json: %v", err)
	}
	if doc.ThresholdUs != 50_000 {
		t.Errorf("threshold_us = %d, want the 50ms default", doc.ThresholdUs)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("no spans on /debug/slowtxns")
	}
	var sawCommit bool
	for _, sp := range doc.Spans {
		if sp.Version <= 0 || sp.TotalUs < 0 {
			t.Errorf("malformed span: %+v", sp)
		}
		if sp.Kind == "commit" {
			sawCommit = true
			if len(sp.Stages) == 0 {
				t.Errorf("commit span %d has no stage breakdown", sp.Version)
			}
		}
	}
	if !sawCommit {
		t.Error("no commit-kind span recorded")
	}

	// The wire Stats reply carries the same breakdown, so cluster-wide
	// pollers can sum it.
	link := client.NewLink(servers[0].Addr(), "mm", -1, time.Second)
	defer link.Close()
	st, err := link.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.StageCounts[0] <= 0 { // certify
		t.Errorf("StatsOK certify count = %d, want > 0", st.StageCounts[0])
	}
	if st.StageNs[0] <= 0 {
		t.Errorf("StatsOK certify ns = %d, want > 0", st.StageNs[0])
	}
}

// TestTracingDisabled: -notrace servers must not register stage
// histograms, answer 404 on /debug/slowtxns, and report a zero stage
// breakdown over the wire — the instrumentation-off configuration the
// overhead benchmark compares against.
func TestTracingDisabled(t *testing.T) {
	servers, cl := startCluster(t, "mm", 1, func(o *server.Options) {
		o.MetricsAddr = "127.0.0.1:0"
		o.DisableTrace = true
	})
	driveAndCheck(t, cl, 1, 5)

	body := httpGet(t, "http://"+servers[0].MetricsAddr()+"/metrics")
	if strings.Contains(body, "replicadb_stage_latency_seconds") {
		t.Error("stage histograms registered with tracing disabled")
	}
	// The untraced path still serves the operational counters.
	if n := metricValue(t, body, "replicadb_commits"); n <= 0 {
		t.Errorf("replicadb_commits = %v, want > 0", n)
	}

	resp, err := http.Get("http://" + servers[0].MetricsAddr() + "/debug/slowtxns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("slowtxns status = %d, want 404", resp.StatusCode)
	}

	link := client.NewLink(servers[0].Addr(), "mm", -1, time.Second)
	defer link.Close()
	st, err := link.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for i, c := range st.StageCounts {
		if c != 0 || st.StageNs[i] != 0 {
			t.Errorf("stage %d breakdown nonzero with tracing disabled: %d/%d", i, c, st.StageNs[i])
		}
	}
}

// TestFailoverMetrics covers the observability of a leader failover:
// the epoch gauge advances past the old leader's epoch, the election
// gap produces counted NotLeader redirects, and the new leader's
// stage histograms keep recording (including the paxos stage only a
// replicated certifier has).
func TestFailoverMetrics(t *testing.T) {
	servers, addrs, _ := startPaxosCluster(t, 3, func(o *server.Options) {
		o.MetricsAddr = "127.0.0.1:0"
		o.ElectTimeout = 500 * time.Millisecond
	})
	lead := waitOneLeader(t, servers, -1)

	leadBody := httpGet(t, "http://"+servers[lead].MetricsAddr()+"/metrics")
	epoch0 := metricValue(t, leadBody, "replicadb_certifier_epoch")
	if v := metricValue(t, leadBody, "replicadb_certifier_leading"); v != 1 {
		t.Fatalf("leader's leading gauge = %v, want 1", v)
	}
	for i, srv := range servers {
		if i == lead {
			continue
		}
		if v := metricValue(t, httpGet(t, "http://"+srv.MetricsAddr()+"/metrics"), "replicadb_certifier_leading"); v != 0 {
			t.Fatalf("follower %d leading gauge = %v, want 0", i, v)
		}
	}

	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 200
	cl, err := client.New(client.Options{Servers: addrs, Design: "mm", ProbeAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		cl.Close()
		t.Fatalf("load: %v", err)
	}
	res := repl.Drive(cl, cat, mix, 4, 10, factor, 1)
	cl.Close()
	if res.Errors != 0 {
		t.Fatalf("pre-failover drive errors: %+v", res)
	}

	// The replicated certifier host measures the paxos stage.
	leadBody = httpGet(t, "http://"+servers[lead].MetricsAddr()+"/metrics")
	if n := stageCount(t, leadBody, "paxos"); n <= 0 {
		t.Errorf("leader paxos stage count = %v, want > 0", n)
	}

	// Kill the leader and drive into the election gap: commits caught
	// before the new epoch settles are answered with NotLeader
	// redirects, which the survivors count.
	servers[lead].Close()
	survivors := make([]string, 0, len(addrs)-1)
	for i, a := range addrs {
		if i != lead {
			survivors = append(survivors, a)
		}
	}
	cl2, err := client.New(client.Options{Servers: survivors, Design: "mm", ProbeAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	repl.Drive(cl2, cat, mix, 2, 5, factor, 2) // outcome checked below; the gap makes unknowns legitimate

	newLead := waitOneLeader(t, servers, lead)
	newBody := httpGet(t, "http://"+servers[newLead].MetricsAddr()+"/metrics")
	epoch1 := metricValue(t, newBody, "replicadb_certifier_epoch")
	if epoch1 <= epoch0 {
		t.Errorf("epoch gauge did not advance: %v -> %v", epoch0, epoch1)
	}
	if v := metricValue(t, newBody, "replicadb_certifier_leading"); v != 1 {
		t.Errorf("new leader's leading gauge = %v, want 1", v)
	}

	var redirects float64
	for i, srv := range servers {
		if i == lead {
			continue
		}
		body := httpGet(t, "http://"+srv.MetricsAddr()+"/metrics")
		redirects += metricValue(t, body, "replicadb_not_leader_redirects")
		// The unknown-outcome counter is always exposed (and only ever
		// counts commits that failed without a verdict).
		if v := metricValue(t, body, "replicadb_commit_unknown_outcomes"); v < 0 {
			t.Errorf("server %d unknown outcomes = %v", i, v)
		}
	}
	if redirects <= 0 {
		t.Errorf("no NotLeader redirects counted across the election gap")
	}

	// Post-election the new leader's histograms keep recording: a
	// fresh drive must grow its certify stage count.
	before := stageCount(t, newBody, "certify")
	res3 := repl.Drive(cl2, cat, mix, 2, 10, factor, 3)
	if res3.Errors != 0 {
		t.Fatalf("post-failover drive errors: %+v", res3)
	}
	after := stageCount(t, httpGet(t, "http://"+servers[newLead].MetricsAddr()+"/metrics"), "certify")
	if after <= before {
		t.Errorf("new leader certify stage count did not grow: %v -> %v", before, after)
	}
	if n := stageCount(t, httpGet(t, "http://"+servers[newLead].MetricsAddr()+"/metrics"), "paxos"); n <= 0 {
		t.Errorf("new leader paxos stage count = %v, want > 0 after re-election", n)
	}
}
