package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/server"
)

// startShardedGroups boots n independent replica groups of two mm
// servers each, every group stamped with its place in the shard map,
// and returns a router over pooled clients — the full networked
// sharded deployment on loopback.
func startShardedGroups(t *testing.T, n int, tweak func(*server.Options)) (*router.Router, []*client.Client) {
	t.Helper()
	var groups []router.Group
	var clients []*client.Client
	for g := 0; g < n; g++ {
		_, cl := startCluster(t, "mm", 2, func(o *server.Options) {
			o.ShardID = g
			o.ShardCount = n
			if tweak != nil {
				tweak(o)
			}
		})
		clients = append(clients, cl)
		groups = append(groups, cl)
	}
	r, err := router.New(1, groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateTable("item"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("item", 64, func(row int64) string {
		return fmt.Sprintf("load-%d", row)
	}); err != nil {
		t.Fatal(err)
	}
	return r, clients
}

// ownedRows splits the loaded rows by owning group.
func ownedRows(r *router.Router, rows int) map[int][]int64 {
	out := make(map[int][]int64)
	for row := int64(0); row < int64(rows); row++ {
		g := r.Map().Locate("item", row)
		out[g] = append(out[g], row)
	}
	return out
}

// TestShardMapPublished: every group's servers stamp their shard
// coordinates onto the membership reply, and the pooled client
// records them.
func TestShardMapPublished(t *testing.T) {
	_, clients := startShardedGroups(t, 2, nil)
	for g, cl := range clients {
		id, count, version, err := cl.FetchShardInfo()
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		if id != int64(g) || count != 2 || version == 0 {
			t.Fatalf("group %d shard info = (%d,%d,%d), want (%d,2,>0)", g, id, count, version, g)
		}
		if mid, mcount, _ := cl.ShardInfo(); mid != id || mcount != count {
			t.Fatalf("group %d cached shard info = (%d,%d)", g, mid, mcount)
		}
	}
}

// TestShardedSingleShardFastPath: a one-group transaction over the
// wire takes the ordinary commit path; the other group never hears
// about it.
func TestShardedSingleShardFastPath(t *testing.T) {
	r, clients := startShardedGroups(t, 2, nil)
	owned := ownedRows(r, 64)

	txn, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", owned[0][0], "updated"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	r.Sync()
	dump0, err := clients[0].TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	if dump0[owned[0][0]] != "updated" {
		t.Fatalf("group 0 row = %q", dump0[owned[0][0]])
	}
	dump1, err := clients[1].TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	if dump1[owned[1][0]] != fmt.Sprintf("load-%d", owned[1][0]) {
		t.Fatalf("group 1 disturbed: %q", dump1[owned[1][0]])
	}
}

// TestShardedCrossShardCommit: a transaction spanning both groups
// commits atomically over the wire — prepare on the transaction's own
// connection, decision verbs to each group's primary — and leaves no
// in-doubt state behind.
func TestShardedCrossShardCommit(t *testing.T) {
	r, clients := startShardedGroups(t, 2, nil)
	owned := ownedRows(r, 64)
	r0, r1 := owned[0][0], owned[1][0]

	txn, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r0, "x0"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("item", r1, "x1"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}
	r.Sync()
	for gi, want := range map[int]struct {
		row int64
		val string
	}{0: {r0, "x0"}, 1: {r1, "x1"}} {
		dump, err := clients[gi].TableDump(0, "item")
		if err != nil {
			t.Fatal(err)
		}
		if dump[want.row] != want.val {
			t.Fatalf("group %d row %d = %q, want %q", gi, want.row, dump[want.row], want.val)
		}
		// Both replicas of the group converged on the fragment.
		dump2, err := clients[gi].TableDump(1, "item")
		if err != nil {
			t.Fatal(err)
		}
		if dump2[want.row] != want.val {
			t.Fatalf("group %d replica 1 row %d = %q", gi, want.row, dump2[want.row])
		}
	}
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCrossShardConflict: losing certification at one group
// aborts the whole transaction; neither fragment applies.
func TestShardedCrossShardConflict(t *testing.T) {
	r, clients := startShardedGroups(t, 2, nil)
	owned := ownedRows(r, 64)
	r0, r1 := owned[0][0], owned[1][0]

	doomed, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := doomed.Write("item", r0, "doomed-0"); err != nil {
		t.Fatal(err)
	}
	if err := doomed.Write("item", r1, "doomed-1"); err != nil {
		t.Fatal(err)
	}

	winner, err := r.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := winner.Write("item", r1, "winner"); err != nil {
		t.Fatal(err)
	}
	if err := winner.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := doomed.Commit(); !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("doomed commit = %v, want abort", err)
	}
	r.Sync()
	dump, err := clients[0].TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	if dump[r0] != fmt.Sprintf("load-%d", r0) {
		t.Fatalf("aborted fragment leaked: %q", dump[r0])
	}
}

// TestShardedPipelinedCrossShard: the pipelined client streams its
// writes; prepare must drain the acks before converting the open
// transactions into fragments.
func TestShardedPipelinedCrossShard(t *testing.T) {
	var groups []router.Group
	for g := 0; g < 2; g++ {
		servers, _ := startCluster(t, "mm", 2, func(o *server.Options) {
			o.ShardID = g
			o.ShardCount = 2
		})
		cl, err := client.New(client.Options{
			Servers:    []string{servers[0].Addr(), servers[1].Addr()},
			Design:     "mm",
			Pipeline:   true,
			ProbeAfter: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		groups = append(groups, cl)
	}
	r, err := router.New(1, groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateTable("item"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("item", 64, func(row int64) string {
		return fmt.Sprintf("load-%d", row)
	}); err != nil {
		t.Fatal(err)
	}
	owned := ownedRows(r, 64)
	for i := 0; i < 3; i++ {
		txn, err := r.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.Write("item", owned[0][i], fmt.Sprintf("p0-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Write("item", owned[1][i], fmt.Sprintf("p1-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	r.Sync()
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		t.Fatal(err)
	}
}
