package server_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/elastic"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startPrimary boots a single-replica mm primary.
func startPrimary(t *testing.T, tweak func(*server.Options)) *server.Server {
	t.Helper()
	opts := server.Options{
		Design:   "mm",
		ID:       0,
		Listen:   "127.0.0.1:0",
		Replicas: 1,
	}
	if tweak != nil {
		tweak(&opts)
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// joinReplica runs the join protocol against the primary and starts
// the new replica.
func joinReplica(t *testing.T, primary string) *server.Server {
	t.Helper()
	srv, err := server.New(server.Options{
		Design:  "mm",
		Listen:  "127.0.0.1:0",
		Join:    true,
		Primary: primary,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// watchingClient returns a pooled client with fast membership polling.
func watchingClient(t *testing.T, primary string) *client.Client {
	t.Helper()
	cl, err := client.New(client.Options{
		Servers:       []string{primary},
		Design:        "mm",
		Watch:         true,
		WatchInterval: 25 * time.Millisecond,
		ProbeAfter:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestElasticJoinServesAndConverges is the basic online-join path:
// data loaded on a 1-replica cluster, two replicas join live (full
// snapshot transfer + catch-up), the watching client discovers them,
// and a driven workload converges across all three.
func TestElasticJoinServesAndConverges(t *testing.T) {
	prim := startPrimary(t, nil)
	cl := watchingClient(t, prim.Addr())

	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 1000
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		t.Fatalf("load: %v", err)
	}
	// Commit some traffic before anyone joins, so the snapshot carries
	// post-load writesets too.
	res := repl.Drive(cl, cat, mix, 4, 10, factor, 1)
	if res.Errors != 0 {
		t.Fatalf("pre-join drive: %+v", res)
	}

	joinReplica(t, prim.Addr())
	joinReplica(t, prim.Addr())
	waitFor(t, 5*time.Second, "client to discover 3 replicas", func() bool {
		return cl.Replicas() == 3
	})

	res = repl.Drive(cl, cat, mix, 6, 20, factor, 2)
	if res.Errors != 0 {
		t.Fatalf("post-join drive: %+v", res)
	}
	tables := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		tables = append(tables, name)
	}
	if err := repl.CheckConvergence(cl, tables); err != nil {
		t.Fatalf("convergence over joined replicas: %v", err)
	}
}

// TestElasticJoinMultiChunkSnapshot joins a replica whose state
// transfer exceeds one snapshot chunk, proving the stream reassembles
// into the exact primary state.
func TestElasticJoinMultiChunkSnapshot(t *testing.T) {
	prim := startPrimary(t, nil)
	cl := watchingClient(t, prim.Addr())
	if err := cl.CreateTable("blob"); err != nil {
		t.Fatal(err)
	}
	// ~6MB of state: the 4MB chunk budget forces at least two chunks.
	value := strings.Repeat("x", 2048)
	if err := cl.Load("blob", 3000, func(r int64) string { return value }); err != nil {
		t.Fatal(err)
	}

	joinReplica(t, prim.Addr())
	waitFor(t, 10*time.Second, "client to discover the joiner", func() bool {
		return cl.Replicas() == 2
	})
	if err := repl.CheckConvergence(cl, []string{"blob"}); err != nil {
		t.Fatalf("multi-chunk snapshot diverged: %v", err)
	}
}

// TestLeaveMidTransactionDrains covers the graceful departure path:
// transactions in flight on the leaving replica run to completion
// (drain), and no transaction begun after Leave is served there.
func TestLeaveMidTransactionDrains(t *testing.T) {
	prim := startPrimary(t, nil)
	joiner := joinReplica(t, prim.Addr())
	cl := watchingClient(t, prim.Addr())

	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Load("t", 20, func(r int64) string { return fmt.Sprintf("v%d", r) }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "client to discover 2 replicas", func() bool {
		return cl.Replicas() == 2
	})

	// Two held transactions spread over both replicas (least-loaded
	// routing), so one is in flight on the joiner when it leaves.
	tx1, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	leaveDone := make(chan error, 1)
	go func() { leaveDone <- joiner.Leave() }()
	time.Sleep(30 * time.Millisecond) // the drain is now waiting on us

	for i, tx := range []repl.Txn{tx1, tx2} {
		if err := tx.Write("t", int64(i), "drained"); err != nil {
			t.Fatalf("write on held txn %d during drain: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit on held txn %d during drain: %v", i, err)
		}
	}
	if err := <-leaveDone; err != nil {
		t.Fatalf("leave: %v", err)
	}

	// From this point nothing new may be served by the departed
	// replica: its counters must not move while fresh transactions
	// succeed elsewhere.
	link := client.NewLink(joiner.Addr(), "mm", -1, time.Second)
	defer link.Close()
	before, err := link.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for i := 0; i < 6; i++ {
		tx, err := cl.BeginUpdate()
		if err != nil {
			t.Fatalf("begin after leave: %v", err)
		}
		if err := tx.Write("t", int64(i), fmt.Sprintf("after-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := link.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if after.ReadCommits != before.ReadCommits || after.UpdateCommits != before.UpdateCommits || after.ActiveTxns != 0 {
		t.Fatalf("departed replica still serving: before %+v after %+v", before, after)
	}
	waitFor(t, 5*time.Second, "client to drop the departed replica", func() bool {
		return cl.Replicas() == 1
	})
}

// TestReplicaCrashMidTransactionAborts covers the ungraceful path: a
// replica dying under an open transaction surfaces repl.ErrAborted on
// the next operation (so closed-loop drivers retry elsewhere), and
// the primary eventually evicts the ghost member.
func TestReplicaCrashMidTransactionAborts(t *testing.T) {
	prim := startPrimary(t, func(o *server.Options) { o.StaleAfter = 300 * time.Millisecond })
	joiner := joinReplica(t, prim.Addr())
	cl := watchingClient(t, prim.Addr())

	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "client to discover 2 replicas", func() bool {
		return cl.Replicas() == 2
	})

	tx1, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	joiner.Close() // crash: no Leave, no drain

	aborted := 0
	for _, tx := range []repl.Txn{tx1, tx2} {
		err := tx.Write("t", 1, "x")
		if err == nil {
			err = tx.Commit()
		}
		switch {
		case err == nil:
		case errors.Is(err, repl.ErrAborted):
			aborted++
		default:
			t.Fatalf("crash surfaced as %v, want repl.ErrAborted", err)
		}
	}
	if aborted != 1 {
		t.Fatalf("aborted = %d, want exactly the transaction on the crashed replica", aborted)
	}

	// The driver-level retry loop must complete against the survivor.
	for i := 0; i < 4; i++ {
		tx, err := cl.BeginUpdate()
		if err != nil {
			t.Fatalf("begin after crash: %v", err)
		}
		if err := tx.Write("t", int64(i), "survivor"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// The primary evicts the silent member, clients drop it.
	waitFor(t, 5*time.Second, "stale member eviction", func() bool {
		return cl.Replicas() == 1
	})
}

// TestJoinerCrashMidStateTransfer admits a joiner that never finishes
// its state transfer: the primary must keep serving, block log GC
// only temporarily, and evict the ghost after the liveness grace.
func TestJoinerCrashMidStateTransfer(t *testing.T) {
	prim := startPrimary(t, func(o *server.Options) { o.StaleAfter = 250 * time.Millisecond })

	link := client.NewLink(prim.Addr(), "mm", -1, time.Second)
	defer link.Close()
	jo, err := link.Join("127.0.0.1:1") // admitted, then silence: no snapshot, no pulls
	if err != nil {
		t.Fatal(err)
	}
	epoch, members, err := link.Members()
	if err != nil || len(members) != 2 {
		t.Fatalf("membership after join: %v %+v", err, members)
	}

	// The cluster keeps serving while the ghost is pending.
	cl := watchingClient(t, prim.Addr())
	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("t", 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "ghost joiner eviction", func() bool {
		e, ms, err := link.Members()
		return err == nil && e > epoch && len(ms) == 1
	})
	_, members, _ = link.Members()
	if len(members) != 1 || members[0].ID == jo.ID {
		t.Fatalf("members after eviction: %+v", members)
	}
}

// TestV1PeerRejectsMembershipMessages proves the version negotiation
// story: a peer that negotiated protocol 1 gets a structured error —
// not a hang, not a dropped connection — for every v2 membership
// message, while the v1 surface keeps working on the same connection.
func TestV1PeerRejectsMembershipMessages(t *testing.T) {
	prim := startPrimary(t, nil)

	nc, err := net.Dial("tcp", prim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wc := wire.NewConn(nc)
	if err := wc.Send(&wire.Hello{Proto: 1, PeerID: -1}); err != nil {
		t.Fatal(err)
	}
	reply, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	hello, ok := reply.(*wire.HelloOK)
	if !ok || hello.Proto != 1 {
		t.Fatalf("handshake did not negotiate down to v1: %+v", reply)
	}
	// Frame at the negotiated version, as any correct client does —
	// v1 messages carry none of the v4 trace fields.
	wc.SetProto(hello.Proto)

	for _, msg := range []wire.Message{&wire.Members{}, &wire.Join{Addr: "x"}, &wire.Leave{ID: 1}, &wire.SnapshotReq{}, &wire.Stats{}} {
		_ = nc.SetDeadline(time.Now().Add(2 * time.Second)) // a hang fails the test, not the suite
		if err := wc.Send(msg); err != nil {
			t.Fatal(err)
		}
		reply, err := wc.Recv()
		if err != nil {
			t.Fatalf("%T: connection dropped instead of structured error: %v", msg, err)
		}
		e, ok := reply.(*wire.Err)
		if !ok || e.Code != wire.CodeProto {
			t.Fatalf("%T: reply = %+v, want Err{CodeProto}", msg, reply)
		}
	}

	// The v1 transaction surface still works on this connection.
	if err := wc.Send(&wire.Begin{ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if reply, err = wc.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*wire.BeginOK); !ok {
		t.Fatalf("v1 Begin after rejections: %+v", reply)
	}
}

// TestElasticAutoscaleLoopback is the acceptance test: one replica
// under a rising TPC-W-profile update load; the controller — fed only
// by live Stats samples through the MVA predictor — grows the cluster
// to three replicas with zero failed state transfers, every committed
// transaction survives on every replica, and the cluster shrinks back
// once the load stops.
func TestElasticAutoscaleLoopback(t *testing.T) {
	prim := startPrimary(t, nil)
	cl := watchingClient(t, prim.Addr())
	if err := cl.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}

	scaler := elastic.NewLocalScaler(1, func() (elastic.Replica, error) {
		srv, err := server.New(server.Options{
			Design:  "mm",
			Listen:  "127.0.0.1:0",
			Join:    true,
			Primary: prim.Addr(),
		})
		if err != nil {
			return nil, err
		}
		srv.Start()
		return srv, nil
	})
	defer scaler.Close()
	src := elastic.NewWireSource(prim.Addr(), "mm", time.Second)
	defer src.Close()

	const think = 20 * time.Millisecond
	ctl, err := elastic.NewController(elastic.Config{
		Min: 1, Max: 3,
		Interval: 40 * time.Millisecond,
		Cooldown: 60 * time.Millisecond,
		Base:     workload.TPCWShopping(),
		Think:    think.Seconds(),
	}, scaler, src)
	if err != nil {
		t.Fatal(err)
	}
	stopCtl := make(chan struct{})
	ctlDone := make(chan struct{})
	go func() { defer close(ctlDone); ctl.Run(stopCtl) }()

	// Rising closed-loop update load: every commit writes one unique
	// row, recorded client-side for the no-loss check.
	var mu sync.Mutex
	committed := make(map[int64]string)
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	var driveErrs atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := int64(0); ; seq++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				row := int64(w)*1_000_000 + seq
				val := fmt.Sprintf("w%d-%d", w, seq)
				for {
					tx, err := cl.BeginUpdate()
					if err != nil {
						driveErrs.Add(1)
						return
					}
					err = tx.Write("acct", row, val)
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						mu.Lock()
						committed[row] = val
						mu.Unlock()
						break
					}
					if errors.Is(err, repl.ErrAborted) {
						continue // retry on a surviving replica
					}
					driveErrs.Add(1)
					return
				}
				time.Sleep(think)
			}
		}(w)
	}

	waitFor(t, 20*time.Second, "controller to grow the cluster to 3 replicas", func() bool {
		return scaler.Replicas() >= 3
	})
	waitFor(t, 10*time.Second, "client to discover 3 replicas", func() bool {
		return cl.Replicas() == 3
	})

	close(stopLoad)
	wg.Wait()
	close(stopCtl)
	<-ctlDone
	if n := driveErrs.Load(); n != 0 {
		t.Fatalf("%d drive errors during scale-up", n)
	}
	if f := scaler.Failures(); f != 0 {
		t.Fatalf("%d failed state transfers", f)
	}

	// No committed-transaction loss: every acknowledged commit is
	// present with its value on every replica, joiners included.
	cl.Sync()
	mu.Lock()
	want := len(committed)
	mu.Unlock()
	if want == 0 {
		t.Fatal("no transactions committed")
	}
	for r := 0; r < cl.Replicas(); r++ {
		dump, err := cl.TableDump(r, "acct")
		if err != nil {
			t.Fatalf("dump replica %d: %v", r, err)
		}
		mu.Lock()
		for row, val := range committed {
			if dump[row] != val {
				mu.Unlock()
				t.Fatalf("replica %d lost committed row %d (%q != %q)", r, row, dump[row], val)
			}
		}
		mu.Unlock()
	}

	// With the load gone, idle control windows shrink the cluster
	// back to one replica.
	stopCtl2 := make(chan struct{})
	ctlDone2 := make(chan struct{})
	go func() { defer close(ctlDone2); ctl.Run(stopCtl2) }()
	waitFor(t, 20*time.Second, "controller to shrink back to 1 replica", func() bool {
		return scaler.Replicas() == 1
	})
	close(stopCtl2)
	<-ctlDone2
	st := ctl.Status()
	if st.Ups < 2 || st.Downs < 2 {
		t.Fatalf("controller status = %+v, want >=2 ups and downs", st)
	}
}
