package server

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/certifier"
	"repro/internal/client"
	"repro/internal/obs/events"
	"repro/internal/paxos"
	"repro/internal/paxoslog"
	"repro/internal/repl/mm"
	"repro/internal/repl/pipeline"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// switchCert routes the cluster's certification service to whichever
// role this node currently plays: the hosted replicated certifier
// while leading, a redirect-following LeaderRing while backing up.
// Role changes swap the inner service atomically; in-flight calls
// finish against the service they started on (a deposed host answers
// them with NotLeaderError, which is exactly the fencing contract).
type switchCert struct {
	mu  sync.RWMutex
	svc mm.CertService
}

var _ mm.CertService = (*switchCert)(nil)
var _ mm.TracedCertService = (*switchCert)(nil)

func (s *switchCert) set(svc mm.CertService) {
	s.mu.Lock()
	s.svc = svc
	s.mu.Unlock()
}

func (s *switchCert) get() mm.CertService {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.svc
}

func (s *switchCert) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	return s.CertifyTraced(snapshot, ws, 0)
}

// CertifyTraced forwards the trace id when the current role's service
// accepts one (both the hosted certifier and the remote ring do).
func (s *switchCert) CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	svc := s.get()
	if tc, ok := svc.(mm.TracedCertService); ok {
		return tc.CertifyTraced(snapshot, ws, trace)
	}
	return svc.Certify(snapshot, ws)
}

func (s *switchCert) Check(snapshot int64, ws writeset.Writeset) (bool, int64) {
	return s.get().Check(snapshot, ws)
}

func (s *switchCert) Since(v int64) []certifier.Record { return s.get().Since(v) }

// paxosNode is the replicated-certification state of one mm server:
// the Paxos acceptor this process hosts (durable under the WAL
// directory when the node runs one), the wire transport to its peers'
// acceptors, the redirect-following ring it certifies through while a
// backup, and its current view of who leads.
type paxosNode struct {
	id         int
	peerIDs    []int
	addrs      []string // indexed by paxos id
	electAfter time.Duration

	acc   *paxos.Acceptor
	store *paxoslog.Store // nil when the acceptor is volatile
	tr    *client.PaxosTransport
	ring  *client.LeaderRing

	mu      sync.Mutex
	leading bool
	leader  int // best guess of the current leader id, -1 unknown
	epoch   paxos.Ballot
}

// newPaxosNode opens this node's acceptor (restored from its durable
// store when a WAL directory is configured) and dials the peer links.
func newPaxosNode(opts Options) (*paxosNode, error) {
	n := len(opts.PaxosPeers)
	px := &paxosNode{
		id:     opts.ID,
		addrs:  append([]string(nil), opts.PaxosPeers...),
		leader: -1,
		// Staggered election timeouts: lower ids campaign first, and
		// each successive id waits a full extra ElectTimeout, giving
		// the winner that long to serve its first ring request before
		// the next candidate's timer can fire. Concurrent elections
		// are therefore rare — and safe when they happen, since
		// ballots still totally order — but a duel deposes a fresh
		// leader and surfaces unknown-outcome commits to clients, so
		// the margin is deliberately generous.
		electAfter: opts.ElectTimeout + time.Duration(opts.ID)*opts.ElectTimeout,
	}
	for i := 0; i < n; i++ {
		px.peerIDs = append(px.peerIDs, i)
	}
	if opts.WALDir != "" {
		fsys, err := wal.DirFS(opts.WALDir)
		if err != nil {
			return nil, fmt.Errorf("server: paxos store: %w", err)
		}
		store, promised, slots, err := paxoslog.Open(fsys, opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("server: paxos store: %w", err)
		}
		px.store = store
		px.acc = paxos.RestoreAcceptor(opts.ID, store, promised, slots)
	} else {
		px.acc = paxos.NewAcceptor(opts.ID)
	}
	px.tr = client.NewPaxosTransport(opts.ID, px.acc)
	for i, addr := range px.addrs {
		if i == px.id || addr == "" {
			continue
		}
		px.tr.SetPeer(i, client.NewLink(addr, opts.Design, opts.ID, opts.DialTimeout))
	}
	px.ring = client.NewLeaderRing(px.addrs, opts.Design, opts.ID, opts.DialTimeout)
	return px, nil
}

func (px *paxosNode) disconnect() {
	px.tr.Close()
	px.ring.Close()
}

func (px *paxosNode) close() {
	if px.store != nil {
		px.store.Close()
	}
}

func (px *paxosNode) setLeading(epoch paxos.Ballot) {
	px.mu.Lock()
	px.leading, px.leader, px.epoch = true, px.id, epoch
	px.mu.Unlock()
}

func (px *paxosNode) setFollower(leader int, epoch paxos.Ballot) {
	px.mu.Lock()
	px.leading, px.leader = false, leader
	if px.epoch.Less(epoch) {
		px.epoch = epoch
	}
	px.mu.Unlock()
}

// view returns the node's current role and leader guess.
func (px *paxosNode) view() (leading bool, leader int, epoch paxos.Ballot) {
	px.mu.Lock()
	defer px.mu.Unlock()
	return px.leading, px.leader, px.epoch
}

// notLeaderErr builds the structured redirect a non-leader answers
// certification requests with.
func (px *paxosNode) notLeaderErr() error {
	_, leader, epoch := px.view()
	return certifier.NotLeaderError{Leader: leader, Epoch: epoch}
}

func (px *paxosNode) addrOf(id int) string {
	if id < 0 || id >= len(px.addrs) {
		return ""
	}
	return px.addrs[id]
}

// --- mmEngine: replicated-certification role machinery ---

// hostCert returns the currently hosted certification service, nil
// while this node is a backup. Without Paxos the host is fixed at
// construction and this is a plain read.
func (e *mmEngine) hostCert() *pipeline.HostCert {
	e.hostMu.RLock()
	defer e.hostMu.RUnlock()
	return e.host
}

// promoteSelf campaigns for leadership: it elects this node's fenced
// proposer, rebuilds the certifier from the recovered quorum log,
// re-attaches the local journal as a restart cache, and installs the
// host role. On success every in-flight and future certification on
// this node is served locally; the old leader, if it still runs, is
// fenced by the new epoch.
func (e *mmEngine) promoteSelf() error {
	cert, epoch, err := certifier.Promote(e.px.id, e.px.peerIDs, e.px.tr)
	if err != nil {
		return err
	}
	if e.dur != nil {
		cert.SetJournal(e.dur.W)
	}
	cert.SetStageObserver(e.m.tracer.CertStages())
	var batcher *certifier.Batcher
	if e.groupCommit {
		batcher = certifier.NewBatcher(cert, 0)
		applyGroupWindow(batcher, e.groupWindow)
	}
	h := &pipeline.HostCert{Base: cert, Notify: pipeline.NewNotify(), Batcher: batcher, Observe: e.m.observeCert, Tracer: e.m.tracer}
	e.hostMu.Lock()
	e.host = h
	e.hostMu.Unlock()
	e.sw.set(h)
	e.px.setLeading(epoch)
	e.m.events.Emit(events.LeaderElected,
		fmt.Sprintf("won certifier election at epoch round %d", epoch.Round),
		map[string]string{"epoch": strconv.Itoa(epoch.Round)})
	return nil
}

// stepDown demotes a deposed leader to a backup: the host role is
// dropped, the commit path goes back through the ring (pointed at the
// deposing node), and the election timer restarts. Any call still
// racing into the old host gets NotLeaderError from the fenced
// proposer — never an ack.
func (e *mmEngine) stepDown(by paxos.Ballot) {
	e.hostMu.Lock()
	e.host = nil
	e.hostMu.Unlock()
	e.sw.set(&remoteCert{svc: e.px.ring, m: e.m, t: e.m.tracer})
	e.px.setFollower(by.Proposer, by)
	if addr := e.px.addrOf(by.Proposer); addr != "" {
		e.px.ring.Point(addr)
	}
	e.m.events.Emit(events.LeaderLost,
		fmt.Sprintf("stepped down, deposed by node %d at epoch round %d", by.Proposer, by.Round),
		map[string]string{"epoch": strconv.Itoa(by.Round), "deposed_by": strconv.Itoa(by.Proposer)})
}

// runPaxos is the role loop of a Paxos-enabled node: leaders apply
// their log and watch for deposal, backups pull from the leader and
// campaign after electAfter without progress. Node 0's first campaign
// fires immediately, which is what elects a leader on a cold cluster.
func (e *mmEngine) runPaxos(stop <-chan struct{}) {
	last := time.Now()
	if e.px.id == 0 {
		last = last.Add(-e.px.electAfter)
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if h := e.hostCert(); h != nil {
			if by, ok := h.Base.Deposed(); ok {
				e.stepDown(by)
				last = time.Now()
				continue
			}
			// A higher promise on our own acceptor means a newer epoch
			// campaigned through us: step down without waiting to trip
			// over a propose.
			if _, promised := e.px.acc.Status(); h.Base.Epoch().Less(promised) {
				e.stepDown(promised)
				last = time.Now()
				continue
			}
			h.Notify.WaitBeyond(e.applied(), pollInterval, stop)
			e.cl.Sync()
			if e.dur != nil {
				e.noteApplied()
				e.maybeCompactDurable()
			}
			e.evictStale()
			continue
		}
		// Backup: long-poll the leader for writesets. Any successful
		// round trip counts as leader progress.
		recs, err := e.px.ring.FetchSince(e.applied(), pollInterval)
		if err == nil {
			if len(recs) > 0 {
				e.ingest(recs)
				e.maybeCompactDurable()
			}
			last = time.Now()
			continue
		}
		if time.Since(last) >= e.px.electAfter {
			if err := e.promoteSelf(); err == nil {
				continue
			}
			// Campaign failed (no majority yet): restart the timer so a
			// partitioned minority node does not spin on elections.
			last = time.Now()
			continue
		}
		select {
		case <-stop:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}
