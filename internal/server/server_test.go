package server_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
)

// startCluster brings up n replica servers of the given design on
// loopback ports and a pooled client over all of them. Cleanup tears
// everything down.
func startCluster(t *testing.T, design string, n int, tweak func(*server.Options)) ([]*server.Server, *client.Client) {
	t.Helper()
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		opts := server.Options{
			Design:   design,
			ID:       i,
			Listen:   "127.0.0.1:0",
			Replicas: n,
		}
		if i > 0 {
			opts.Primary = addrs[0]
		}
		if tweak != nil {
			tweak(&opts)
		}
		srv, err := server.New(opts)
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		srv.Start()
		servers[i] = srv
		addrs[i] = srv.Addr()
		t.Cleanup(func() { srv.Close() })
	}
	cl, err := client.New(client.Options{
		Servers:    addrs,
		Design:     design,
		ProbeAfter: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return servers, cl
}

// driveAndCheck loads the catalog, drives a workload through the
// pooled client, and verifies convergence across all replicas.
func driveAndCheck(t *testing.T, cl *client.Client, clients, txns int) repl.DriveResult {
	t.Helper()
	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 1000
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		t.Fatalf("load: %v", err)
	}
	res := repl.Drive(cl, cat, mix, clients, txns, factor, 1)
	if res.Errors != 0 {
		t.Fatalf("drive errors: %+v", res)
	}
	if res.Commits != int64(clients*txns) {
		t.Fatalf("commits = %d, want %d", res.Commits, clients*txns)
	}
	tables := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		tables = append(tables, name)
	}
	if err := repl.CheckConvergence(cl, tables); err != nil {
		t.Fatalf("convergence: %v", err)
	}
	return res
}

// TestLoopbackMM is the acceptance-path integration test: three
// multi-master replica servers over real TCP in one process, a pooled
// client driving a TPC-W mix, and all replicas converging.
func TestLoopbackMM(t *testing.T) {
	_, cl := startCluster(t, "mm", 3, nil)
	res := driveAndCheck(t, cl, 4, 25)
	if res.UpdateCommits == 0 || res.ReadCommits == 0 {
		t.Fatalf("expected both classes to commit: %+v", res)
	}
	if res.ReadLatency.Count() != res.ReadCommits {
		t.Fatalf("read latency count %d != read commits %d", res.ReadLatency.Count(), res.ReadCommits)
	}
	if res.UpdateLatency.Count() != res.UpdateCommits {
		t.Fatalf("update latency count %d != update commits %d", res.UpdateLatency.Count(), res.UpdateCommits)
	}
	if res.UpdateLatency.Quantile(0.99) <= 0 {
		t.Fatal("latency histogram empty")
	}
}

// TestLoopbackMMGroupCommit runs the same cluster with group commit
// batching on the certifier host.
func TestLoopbackMMGroupCommit(t *testing.T) {
	_, cl := startCluster(t, "mm", 3, func(o *server.Options) {
		if o.ID == 0 {
			o.GroupCommit = true
		}
	})
	driveAndCheck(t, cl, 6, 20)
}

// TestLoopbackSM runs the single-master design: updates pinned to the
// master over TCP, slaves fed through the propagation link.
func TestLoopbackSM(t *testing.T) {
	_, cl := startCluster(t, "sm", 3, nil)
	driveAndCheck(t, cl, 4, 25)
}

// TestClientReconnect kills one replica under a live pooled client and
// requires traffic to continue through the survivors, then checks the
// pool re-dials rather than reusing dead connections.
func TestClientReconnect(t *testing.T) {
	servers, cl := startCluster(t, "mm", 3, nil)
	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	const factor = 1000
	if err := repl.LoadCatalog(cl, cat, factor); err != nil {
		t.Fatal(err)
	}
	// Phase 1: all three replicas alive.
	res := repl.Drive(cl, cat, mix, 4, 10, factor, 1)
	if res.Errors != 0 {
		t.Fatalf("phase 1 errors: %+v", res)
	}
	// Kill replica 2 (not the certifier host). Pooled connections to
	// it are now stale; the client must discover that and route
	// around.
	if err := servers[2].Close(); err != nil {
		t.Fatalf("close replica 2: %v", err)
	}
	res = repl.Drive(cl, cat, mix, 4, 10, factor, 2)
	if res.Errors != 0 {
		t.Fatalf("phase 2 errors after killing replica 2: %+v", res)
	}
	if res.Commits != 40 {
		t.Fatalf("phase 2 commits = %d, want 40", res.Commits)
	}
	// Convergence across the survivors.
	cl.Sync()
	for _, table := range []string{"item", "customer"} {
		ref, err := cl.TableDump(0, table)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.TableDump(1, table)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) != len(got) {
			t.Fatalf("table %q: replica 0 has %d rows, replica 1 has %d", table, len(ref), len(got))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("table %q row %d diverged: %q vs %q", table, k, got[k], v)
			}
		}
	}
	// The dead replica must fail loudly when addressed directly.
	if _, err := cl.TableDump(2, "item"); err == nil {
		t.Fatal("dump from killed replica unexpectedly succeeded")
	}
}

// TestSlaveRejectsUpdates pins the sm proxy rule: a slave refuses
// update transactions at begin rather than failing later. The client
// is (mis)configured with only the slave's address, so its "master"
// routing lands on the slave.
func TestSlaveRejectsUpdates(t *testing.T) {
	servers, _ := startCluster(t, "sm", 2, nil)
	slave, err := client.New(client.Options{
		Servers: []string{servers[1].Addr()},
		Design:  "sm",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slave.Close()
	if _, err := slave.BeginUpdate(); err == nil || !strings.Contains(err.Error(), "master") {
		t.Fatalf("slave accepted an update transaction (err=%v)", err)
	}
}

// TestDesignMismatchRejected pins the handshake check: a client
// configured for one design fails loudly at connect time when pointed
// at a cluster of the other design.
func TestDesignMismatchRejected(t *testing.T) {
	servers, _ := startCluster(t, "sm", 1, nil)
	wrong, err := client.New(client.Options{
		Servers: []string{servers[0].Addr()},
		Design:  "mm",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if _, err := wrong.BeginRead(); err == nil || !strings.Contains(err.Error(), "design") {
		t.Fatalf("design mismatch not reported at connect time (err=%v)", err)
	}
}

// TestMetricsEndpoint checks the /metrics listener carries the
// operational counters.
func TestMetricsEndpoint(t *testing.T) {
	servers, cl := startCluster(t, "mm", 2, func(o *server.Options) {
		o.MetricsAddr = "127.0.0.1:0"
	})
	driveAndCheck(t, cl, 2, 10)

	for i, srv := range servers {
		addr := srv.MetricsAddr()
		if addr == "" {
			t.Fatalf("server %d has no metrics listener", i)
		}
		body := httpGet(t, "http://"+addr+"/metrics")
		for _, want := range []string{
			"replicadb_commits", "replicadb_aborts", "replicadb_active_connections",
			"replicadb_writeset_queue_depth", "replicadb_cert_latency_seconds",
			"replicadb_apply_workers", "replicadb_applied_versions_total",
			"replicadb_apply_queue_depth", "replicadb_apply_lag",
			"replicadb_applied_versions_per_sec",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("server %d metrics missing %q:\n%s", i, want, body)
			}
		}
	}
}

// TestStatsExposeApplyPipeline: the wire Stats reply carries the apply
// stage's cumulative applied counter (and current lag) so pollers —
// the elastic profiler, bench -watch — can difference successive
// samples into applied-versions/sec the same way they difference
// commit counts.
func TestStatsExposeApplyPipeline(t *testing.T) {
	servers, cl := startCluster(t, "mm", 2, nil)
	driveAndCheck(t, cl, 2, 10)

	// The convergence check synced every replica, so the non-primary's
	// apply stage has installed every update through the pipeline.
	link := client.NewLink(servers[1].Addr(), "mm", -1, time.Second)
	defer link.Close()
	st, err := link.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.AppliedTotal <= 0 {
		t.Fatalf("replica 1 AppliedTotal = %d, want > 0 (updates were propagated): %+v", st.AppliedTotal, st)
	}
	if st.AppliedTotal != st.Applied {
		// A fresh node with no loads: the cumulative counter equals the
		// cursor exactly (every applied version went through the stage).
		t.Fatalf("AppliedTotal %d != Applied %d", st.AppliedTotal, st.Applied)
	}
	if st.ApplyLag < 0 {
		t.Fatalf("negative apply lag %d", st.ApplyLag)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGracefulShutdown closes a server with open client connections
// and an in-flight transaction; Close must not hang and the client
// must see clean errors.
func TestGracefulShutdown(t *testing.T) {
	servers, cl := startCluster(t, "mm", 1, nil)
	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.LoadCatalog(cl, cat, 1000); err != nil {
		t.Fatal(err)
	}
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("item", 1, "dangling"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- servers[0].Close() }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an open transaction")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit against a closed server succeeded")
	}
}

// TestBoundedAccept verifies the accept loop enforces MaxConns: the
// N+1th concurrent connection waits instead of being served.
func TestBoundedAccept(t *testing.T) {
	servers, _ := startCluster(t, "mm", 1, func(o *server.Options) {
		o.MaxConns = 2
	})
	addr := servers[0].Addr()
	open := func() (*client.Client, repl.Txn) {
		c, err := client.New(client.Options{Servers: []string{addr}, Design: "mm", PoolSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		tx, err := c.BeginRead()
		if err != nil {
			t.Fatal(err)
		}
		return c, tx
	}
	c1, tx1 := open()
	defer c1.Close()
	c2, tx2 := open()
	defer c2.Close()

	// Third connection: the dial succeeds (kernel backlog) but the
	// handshake cannot complete until a slot frees.
	c3 := make(chan error, 1)
	go func() {
		c, err := client.New(client.Options{
			Servers: []string{addr}, Design: "mm", DialTimeout: 2 * time.Second,
		})
		if err != nil {
			c3 <- err
			return
		}
		defer c.Close()
		tx, err := c.BeginRead()
		if err == nil {
			tx.Abort()
		}
		c3 <- err
	}()
	select {
	case err := <-c3:
		t.Fatalf("third connection served beyond MaxConns (err=%v)", err)
	case <-time.After(300 * time.Millisecond):
		// Expected: still blocked.
	}
	tx1.Abort()
	tx2.Abort()
	c1.Close()
	c2.Close()
	select {
	case err := <-c3:
		if err != nil {
			t.Fatalf("third connection failed after slots freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third connection never served after slots freed")
	}
}

// TestWireLevelValidation drives the server with raw protocol misuse.
func TestWireLevelValidation(t *testing.T) {
	servers, _ := startCluster(t, "mm", 1, nil)
	nc, err := net.Dial("tcp", servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Skipping the handshake: first frame must be Hello.
	// Build a Begin frame by hand: length 2, type TBegin, readonly=1.
	if _, err := nc.Write([]byte{0, 0, 0, 2, 4 /*TBegin*/, 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 || buf[4] != 1 /*TErr*/ {
		t.Fatalf("expected Err frame, got % x", buf[:n])
	}
}

// TestCertLogGC verifies the certifier host prunes its retained
// writeset log once every peer's propagation cursor has moved past
// them (minus the safety lag), so a long-running serve process does
// not grow without bound.
func TestCertLogGC(t *testing.T) {
	servers, cl := startCluster(t, "mm", 3, func(o *server.Options) {
		o.GCLag = 4
		if o.ID == 0 {
			o.MetricsAddr = "127.0.0.1:0"
		}
	})
	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.LoadCatalog(cl, cat, 1000); err != nil {
		t.Fatal(err)
	}
	res := repl.Drive(cl, cat, mix, 4, 40, 1000, 1)
	if res.Errors != 0 {
		t.Fatalf("drive errors: %+v", res)
	}
	if res.UpdateCommits < 10 {
		t.Fatalf("too few update commits (%d) to exercise GC", res.UpdateCommits)
	}
	// The pullers poll every <=250ms, carrying their applied cursors;
	// within a few rounds the host must have pruned down to ~GCLag.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := httpGet(t, "http://"+servers[0].MetricsAddr()+"/metrics")
		retained := int64(-1)
		for _, line := range strings.Split(body, "\n") {
			if n, err := fmt.Sscanf(line, "replicadb_retained_writesets %d", &retained); n == 1 && err == nil {
				break
			}
		}
		if retained >= 0 && retained <= 8 {
			return // pruned to within the lag
		}
		if time.Now().After(deadline) {
			t.Fatalf("certification log never pruned: retained=%d of %d commits", retained, res.UpdateCommits)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
