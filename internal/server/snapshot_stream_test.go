package server

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestSnapshotStreamChunking drives the chunker over contents larger
// than one chunk budget: every row must come out exactly once, tables
// may span chunks, empty tables still transfer (schema), and More is
// set on every chunk but the last.
func TestSnapshotStreamChunking(t *testing.T) {
	const rows = 3000
	value := strings.Repeat("v", 4096) // ~12MB total: 3+ chunks
	big := wire.TableSnap{Name: "big"}
	for r := int64(0); r < rows; r++ {
		big.Rows = append(big.Rows, r)
		big.Values = append(big.Values, value)
	}
	ss := &snapshotStream{version: 42, tables: []wire.TableSnap{
		{Name: "aempty"},
		big,
		{Name: "small", Rows: []int64{1}, Values: []string{"x"}},
	}}

	got := make(map[string]map[int64]string)
	chunks := 0
	for {
		chunk := ss.next()
		chunks++
		if chunk.Version != 42 {
			t.Fatalf("chunk version = %d", chunk.Version)
		}
		for _, ts := range chunk.Tables {
			m := got[ts.Name]
			if m == nil {
				m = make(map[int64]string)
				got[ts.Name] = m
			}
			for i, r := range ts.Rows {
				if _, dup := m[r]; dup {
					t.Fatalf("row %d of %q sent twice", r, ts.Name)
				}
				m[r] = ts.Values[i]
			}
		}
		if !chunk.More {
			break
		}
		if chunks > 100 {
			t.Fatal("stream never terminated")
		}
	}
	if chunks < 3 {
		t.Fatalf("12MB of state fit in %d chunk(s); chunking is not happening", chunks)
	}
	if len(got) != 3 {
		t.Fatalf("tables transferred: %v", len(got))
	}
	if _, ok := got["aempty"]; !ok {
		t.Fatal("empty table (schema) not transferred")
	}
	if len(got["big"]) != rows || got["small"][1] != "x" {
		t.Fatalf("contents incomplete: big=%d small=%v", len(got["big"]), got["small"])
	}
	// A drained stream keeps answering empty final chunks harmlessly.
	if extra := ss.next(); extra.More || len(extra.Tables) != 0 {
		t.Fatalf("drained stream produced %+v", extra)
	}
}
