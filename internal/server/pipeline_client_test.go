package server_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// pipelinedClient opens a second pooled client over the same cluster
// with request pipelining on.
func pipelinedClient(t *testing.T, servers []*server.Server, design string) *client.Client {
	t.Helper()
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	cl, err := client.New(client.Options{Servers: addrs, Design: design, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestLoopbackMMPipelined is the pipelined three-node equivalence
// test: a pipelining client drives the standard mix and every replica
// must converge row-for-row, exactly as with the lockstep client.
func TestLoopbackMMPipelined(t *testing.T) {
	servers, _ := startCluster(t, "mm", 3, nil)
	driveAndCheck(t, pipelinedClient(t, servers, "mm"), 4, 25)
}

// TestLoopbackMMPipelinedEagerCert covers the documented semantic
// shift: with eager certification an abort detected at a pipelined
// write surfaces at the next sync point instead of the write itself;
// the driver's retry loop must still converge the cluster.
func TestLoopbackMMPipelinedEagerCert(t *testing.T) {
	servers, _ := startCluster(t, "mm", 3, func(o *server.Options) {
		o.EagerCert = true
	})
	driveAndCheck(t, pipelinedClient(t, servers, "mm"), 4, 25)
}

// TestLoopbackMMPipelinedGroupCommit exercises pipelining against the
// adaptive group-commit certifier.
func TestLoopbackMMPipelinedGroupCommit(t *testing.T) {
	servers, _ := startCluster(t, "mm", 3, func(o *server.Options) {
		if o.ID == 0 {
			o.GroupCommit = true
		}
	})
	driveAndCheck(t, pipelinedClient(t, servers, "mm"), 6, 20)
}

// TestLoopbackSMPipelined runs the single-master design under a
// pipelining client.
func TestLoopbackSMPipelined(t *testing.T) {
	servers, _ := startCluster(t, "sm", 3, nil)
	driveAndCheck(t, pipelinedClient(t, servers, "sm"), 4, 25)
}

// TestPipelinedConflictAbortsTyped pins the abort semantics through
// the pipelined path: a write-write conflict detected at commit
// certification must come back as the same typed, retryable
// AbortedError the lockstep client produces, carrying the conflicting
// version.
func TestPipelinedConflictAbortsTyped(t *testing.T) {
	servers, setup := startCluster(t, "mm", 2, nil)
	if err := setup.CreateTable("item"); err != nil {
		t.Fatal(err)
	}
	cl := pipelinedClient(t, servers, "mm")

	tx1, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write("item", 1, "first"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx2 snapshotted before tx1 committed; writing the same row must
	// abort at certification — surfaced when the pipelined acks drain
	// at Commit.
	if err := tx2.Write("item", 1, "second"); err != nil {
		t.Fatalf("pipelined write should not fail synchronously: %v", err)
	}
	err = tx2.Commit()
	if !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("conflicting pipelined commit = %v, want ErrAborted", err)
	}
	var ab *repl.AbortedError
	if !errors.As(err, &ab) {
		t.Fatalf("want *repl.AbortedError, got %T: %v", err, err)
	}
}

// TestPipelinedMidTxnFailureStillAborts mirrors the lockstep guard: a
// connection dying under pipelined writes surfaces as a retryable
// abort at the commit-time drain — never an unknown outcome, because
// the Commit frame was never sent.
func TestPipelinedMidTxnFailureStillAborts(t *testing.T) {
	ln := mockReplica(t, func(wc *wire.Conn, nc net.Conn, msg wire.Message) bool {
		switch msg.(type) {
		case *wire.Begin:
			return wc.Send(&wire.BeginOK{}) == nil
		default:
			nc.Close() // dies on the first in-transaction op
			return false
		}
	})
	cl, err := client.New(client.Options{Servers: []string{ln}, Design: "mm", Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	// The write streams without an ack; the dead peer shows up when the
	// acks drain at Commit.
	if err := tx.Write("t", 1, "x"); err != nil && !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("pipelined write: %v", err)
	}
	err = tx.Commit()
	if !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("want ErrAborted from the drain, got %v", err)
	}
	var uo *repl.UnknownOutcomeError
	if errors.As(err, &uo) {
		t.Fatal("pre-Commit failure misclassified as unknown outcome")
	}
}

// TestPipelinedCommitUnknownOutcome: when the acks drain cleanly and
// the connection dies only on the Commit frame itself, the pipelined
// client must classify it as unknown outcome, exactly like the
// lockstep client.
func TestPipelinedCommitUnknownOutcome(t *testing.T) {
	ln := mockReplica(t, func(wc *wire.Conn, nc net.Conn, msg wire.Message) bool {
		switch msg.(type) {
		case *wire.Begin:
			return wc.Send(&wire.BeginOK{}) == nil
		case *wire.Write:
			return wc.Send(&wire.WriteOK{}) == nil
		case *wire.Commit:
			nc.Close() // dies with the commit in flight
			return false
		default:
			nc.Close()
			return false
		}
	})
	cl, err := client.New(client.Options{Servers: []string{ln}, Design: "mm", Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("t", 1, "x"); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	var uo *repl.UnknownOutcomeError
	if !errors.As(err, &uo) {
		t.Fatalf("want UnknownOutcomeError, got %T: %v", err, err)
	}
	if errors.Is(err, repl.ErrAborted) {
		t.Fatal("unknown-outcome commit matches ErrAborted: drivers would retry and double-apply")
	}
}

// mockReplica runs a scripted wire server; handle returns false to
// stop serving the connection. Hello is always answered.
func mockReplica(t *testing.T, handle func(*wire.Conn, net.Conn, wire.Message) bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				wc := wire.NewConn(nc)
				for {
					msg, err := wc.Recv()
					if err != nil {
						nc.Close()
						return
					}
					if _, ok := msg.(*wire.Hello); ok {
						if wc.Send(&wire.HelloOK{Proto: wire.ProtoVersion, Design: "mm"}) != nil {
							nc.Close()
							return
						}
						continue
					}
					if !handle(wc, nc, msg) {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestCatchUpLongPolls is the busy-poll regression test: a caught-up
// consumer running Since in a tight loop must park on the server's
// long-poll window, not spin wait=0 round trips. Counted through the
// link's RPC counter at steady state.
func TestCatchUpLongPolls(t *testing.T) {
	servers, cl := startCluster(t, "mm", 2, nil)
	mix := workload.TPCWShopping()
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.LoadCatalog(cl, cat, 1000); err != nil {
		t.Fatal(err)
	}
	if res := repl.Drive(cl, cat, mix, 2, 5, 1000, 1); res.Errors != 0 {
		t.Fatalf("drive errors: %+v", res)
	}

	l := client.NewLink(servers[0].Addr(), "mm", -1, 2*time.Second)
	defer l.Close()
	const wait = 100 * time.Millisecond
	l.SetSinceWait(wait)
	st, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	base := l.RoundTrips() // handshake-time RPCs plus the Stats call
	deadline := time.Now().Add(5 * wait)
	for time.Now().Before(deadline) {
		if recs := l.Since(st.Applied); len(recs) != 0 {
			t.Fatalf("unexpected new records at steady state: %d", len(recs))
		}
	}
	rpcs := l.RoundTrips() - base
	// Each steady-state fetch parks ~wait on the server, so ~5 fit in
	// the window; a busy-polling regression would issue hundreds.
	if rpcs > 20 {
		t.Fatalf("steady-state catch-up issued %d round trips in %v; long poll is not engaging", rpcs, 5*wait)
	}
	if rpcs == 0 {
		t.Fatal("no fetches counted; the regression test is not exercising the loop")
	}
}
