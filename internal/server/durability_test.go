package server_test

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/certifier"
	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// commitRow commits one row write through the pooled client, retrying
// certification aborts.
func commitRow(t *testing.T, cl *client.Client, table string, row int64, value string) {
	t.Helper()
	for {
		tx, err := cl.BeginUpdate()
		if err != nil {
			t.Fatalf("begin: %v", err)
		}
		if err := tx.Write(table, row, value); err != nil {
			t.Fatalf("write: %v", err)
		}
		err = tx.Commit()
		if err == nil {
			return
		}
		if errors.Is(err, repl.ErrAborted) {
			continue
		}
		t.Fatalf("commit: %v", err)
	}
}

// TestDurableReplicaRestartResumesViaFetchSince is the acceptance
// path: a WAL-backed replica is stopped, commits continue on the
// survivor, and the restarted replica resumes from its journaled
// cursor over FetchSince — no snapshot transfer (a static replica has
// no join path at all) — converging row-for-row with the survivor.
func TestDurableReplicaRestartResumesViaFetchSince(t *testing.T) {
	hostDir, repDir := t.TempDir(), t.TempDir()
	servers, cl := startCluster(t, "mm", 2, func(o *server.Options) {
		if o.ID == 0 {
			o.WALDir = hostDir
		} else {
			o.WALDir = repDir
		}
		o.Fsync = true
	})
	if err := cl.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		commitRow(t, cl, "acct", i, "pre-crash")
	}
	cl.Sync()
	cl.Close()

	// The replica dies (its state survives only in the WAL).
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Life goes on at the host.
	solo, err := client.New(client.Options{Servers: []string{servers[0].Addr()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(20); i < 35; i++ {
		commitRow(t, solo, "acct", i, "while-down")
	}
	solo.Close()

	// Restart the replica from its WAL.
	restarted, err := server.New(server.Options{
		Design:   "mm",
		ID:       1,
		Listen:   "127.0.0.1:0",
		Primary:  servers[0].Addr(),
		Replicas: 2,
		WALDir:   repDir,
		Fsync:    true,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer restarted.Close()
	restarted.Start()
	if v, ok := restarted.Resumed(); !ok || v == 0 {
		t.Fatalf("replica did not resume from its WAL (version %d, ok %v)", v, ok)
	}

	cl2, err := client.New(client.Options{
		Servers: []string{servers[0].Addr(), restarted.Addr()},
		Design:  "mm",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := repl.CheckConvergence(cl2, []string{"acct"}); err != nil {
		t.Fatalf("restarted replica diverged: %v", err)
	}
	rows, err := cl2.TableDump(1, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 || rows[0] != "pre-crash" || rows[34] != "while-down" {
		t.Fatalf("restarted replica contents: %d rows, %q, %q", len(rows), rows[0], rows[34])
	}
}

// TestDurableHostRestart restarts the certifier host from its WAL: the
// certification log resumes at the last logged version (fresh commits
// continue the sequence) and all pre-restart data survives.
func TestDurableHostRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() *server.Server {
		srv, err := server.New(server.Options{
			Design:   "mm",
			ID:       0,
			Listen:   "127.0.0.1:0",
			Replicas: 1,
			WALDir:   dir,
			Fsync:    true,
		})
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		srv.Start()
		return srv
	}
	srv := boot()
	cl, err := client.New(client.Options{Servers: []string{srv.Addr()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		commitRow(t, cl, "t", i, "v1")
	}
	cl.Sync()
	cl.Close()
	srv.Close()

	srv2 := boot()
	defer srv2.Close()
	if v, ok := srv2.Resumed(); !ok || v != 10 {
		t.Fatalf("host resumed at %d (ok %v), want 10", v, ok)
	}
	cl2, err := client.New(client.Options{Servers: []string{srv2.Addr()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	rows, err := cl2.TableDump(0, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("recovered %d rows, want 10", len(rows))
	}
	// The version sequence continues where the log left off.
	commitRow(t, cl2, "t", 99, "post-restart")
	cl2.Sync()
	rows, err = cl2.TableDump(0, "t")
	if err != nil {
		t.Fatal(err)
	}
	if rows[99] != "post-restart" || len(rows) != 11 {
		t.Fatalf("post-restart state: %v", rows)
	}
}

// TestDurableSMMasterRestart restarts a WAL-backed single-master
// node: committed updates survive and a slave keeps pulling from the
// rebuilt propagation log.
func TestDurableSMMasterRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() *server.Server {
		srv, err := server.New(server.Options{
			Design:   "sm",
			ID:       0,
			Listen:   "127.0.0.1:0",
			Replicas: 1,
			WALDir:   dir,
			Fsync:    true,
		})
		if err != nil {
			t.Fatalf("boot master: %v", err)
		}
		srv.Start()
		return srv
	}
	srv := boot()
	cl, err := client.New(client.Options{Servers: []string{srv.Addr()}, Design: "sm"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		commitRow(t, cl, "t", i, "m1")
	}
	cl.Close()
	srv.Close()

	master := boot()
	defer master.Close()
	if v, ok := master.Resumed(); !ok || v == 0 {
		t.Fatalf("master did not resume (version %d, ok %v)", v, ok)
	}

	// A fresh slave catches up from the rebuilt propagation log.
	slave, err := server.New(server.Options{
		Design:   "sm",
		ID:       1,
		Listen:   "127.0.0.1:0",
		Primary:  master.Addr(),
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slave.Close()
	slave.Start()
	cl2, err := client.New(client.Options{Servers: []string{master.Addr(), slave.Addr()}, Design: "sm"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	commitRow(t, cl2, "t", 50, "m2")
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl2.Sync()
		rows, err := cl2.TableDump(1, "t")
		if err == nil && len(rows) == 9 && rows[50] == "m2" && rows[0] == "m1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slave never converged: %v (%v)", rows, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJoinRejectsNonEmptyWAL: a joiner must start from a fresh WAL —
// replaying an old incarnation under a newly assigned id and snapshot
// would double-apply history.
func TestJoinRejectsNonEmptyWAL(t *testing.T) {
	servers, _ := startCluster(t, "mm", 1, nil)
	dir := t.TempDir()
	w, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]certifier.Record{{Version: 1}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, err = server.New(server.Options{
		Design:  "mm",
		Listen:  "127.0.0.1:0",
		Join:    true,
		Primary: servers[0].Addr(),
		WALDir:  dir,
	})
	if err == nil || !strings.Contains(err.Error(), "empty WAL") {
		t.Fatalf("join with stale WAL: %v", err)
	}
}

// TestWALSurvivesTornTailOnDisk writes a real on-disk WAL, corrupts
// its tail, and restarts the server over it: recovery truncates the
// tear and serves the clean prefix.
func TestWALSurvivesTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	srv, err := server.New(server.Options{
		Design: "mm", ID: 0, Listen: "127.0.0.1:0", Replicas: 1, WALDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cl, err := client.New(client.Options{Servers: []string{srv.Addr()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		commitRow(t, cl, "t", i, "ok")
	}
	cl.Sync()
	cl.Close()
	srv.Close()

	// Tear the tail: a torn frame header mid-write.
	seg := filepath.Join(dir, "wal.log")
	appendBytes(t, seg, []byte{0x00, 0x00, 0x99, 0x99, 0x12})

	srv2, err := server.New(server.Options{
		Design: "mm", ID: 0, Listen: "127.0.0.1:0", Replicas: 1, WALDir: dir,
	})
	if err != nil {
		t.Fatalf("restart over torn WAL: %v", err)
	}
	defer srv2.Close()
	srv2.Start()
	if v, ok := srv2.Resumed(); !ok || v != 5 {
		t.Fatalf("resumed at %d (ok %v), want 5", v, ok)
	}
}

// appendBytes appends raw bytes to a file on disk.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// TestClientCommitUnknownOutcome pins the typed error for a connection
// that dies mid-commit: the driver must NOT see ErrAborted (a blind
// retry could double-apply a durably committed transaction) but a
// repl.UnknownOutcomeError wrapping the transport failure.
func TestClientCommitUnknownOutcome(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				wc := wire.NewConn(nc)
				for {
					msg, err := wc.Recv()
					if err != nil {
						nc.Close()
						return
					}
					switch msg.(type) {
					case *wire.Hello:
						if wc.Send(&wire.HelloOK{Proto: wire.ProtoVersion, Design: "mm"}) != nil {
							nc.Close()
							return
						}
					case *wire.Begin:
						if wc.Send(&wire.BeginOK{}) != nil {
							nc.Close()
							return
						}
					case *wire.Write:
						if wc.Send(&wire.WriteOK{}) != nil {
							nc.Close()
							return
						}
					case *wire.Commit:
						// The replica dies with the commit in flight.
						nc.Close()
						return
					default:
						nc.Close()
						return
					}
				}
			}(nc)
		}
	}()

	cl, err := client.New(client.Options{Servers: []string{ln.Addr().String()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("t", 1, "x"); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit over a dying connection succeeded")
	}
	var uo *repl.UnknownOutcomeError
	if !errors.As(err, &uo) {
		t.Fatalf("want UnknownOutcomeError, got %T: %v", err, err)
	}
	if uo.Err == nil {
		t.Fatal("UnknownOutcomeError lost the transport cause")
	}
	if errors.Is(err, repl.ErrAborted) {
		t.Fatal("unknown-outcome commit matches ErrAborted: drivers would retry and double-apply")
	}
}

// TestMidTxnFailureStillAborts guards the complement: a connection
// that dies before Commit still surfaces as a retryable abort, not an
// unknown outcome.
func TestMidTxnFailureStillAborts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				wc := wire.NewConn(nc)
				for {
					msg, err := wc.Recv()
					if err != nil {
						nc.Close()
						return
					}
					switch msg.(type) {
					case *wire.Hello:
						if wc.Send(&wire.HelloOK{Proto: wire.ProtoVersion, Design: "mm"}) != nil {
							nc.Close()
							return
						}
					case *wire.Begin:
						if wc.Send(&wire.BeginOK{}) != nil {
							nc.Close()
							return
						}
					default:
						nc.Close() // dies on the first in-transaction op
						return
					}
				}
			}(nc)
		}
	}()
	cl, err := client.New(client.Options{Servers: []string{ln.Addr().String()}, Design: "mm"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	err = tx.Write("t", 1, "x")
	if !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("mid-transaction death should abort-and-retry, got %v", err)
	}
	var uo *repl.UnknownOutcomeError
	if errors.As(err, &uo) {
		t.Fatal("mid-transaction failure misclassified as unknown outcome")
	}
}
