// Package server implements the TCP replica server of the networked
// deployment: each process fronts one database replica with the same
// middleware the in-process prototypes use (a single-replica
// mm.Cluster with a local or remote certifier, or a single-master
// master/slave node), speaks the internal/wire protocol to clients,
// and maintains peer links to the primary for remote certification and
// writeset propagation — the paper's deployment shape (§5), where
// replicas, the certifier and the clients are separate machines.
//
// Concurrency model: one goroutine per accepted connection with a
// bounded accept loop, one background propagation goroutine (the peer
// link), and an optional HTTP metrics listener. Close is graceful:
// the listener stops, open connections are closed (aborting their
// in-flight transactions), and every goroutine is joined.
package server

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certifier"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/paxos"
	"repro/internal/repl"
	"repro/internal/sidb"
	"repro/internal/wire"
)

// Options configure one replica server process.
type Options struct {
	// Design is the replication design this node serves: "mm" or "sm".
	Design string
	// ID is this node's replica id. Replica 0 is the primary: the
	// certifier host under mm, the master under sm.
	ID int
	// Listen is the TCP listen address (host:port; port 0 picks one).
	Listen string
	// Primary is the address of replica 0; required when ID > 0,
	// ignored when ID == 0.
	Primary string
	// MetricsAddr optionally serves /metrics over HTTP.
	MetricsAddr string
	// MaxConns bounds concurrently served connections (default 256);
	// the accept loop stalls at the bound rather than rejecting.
	MaxConns int
	// Replicas is the boot-time replica count of the cluster. On the
	// primary it gates garbage collection of retained writesets: the
	// log is pruned only once all Replicas-1 peers maintain active
	// propagation cursors (0 disables pruning, retaining everything).
	// Elastic joins and leaves adjust the expectation at runtime.
	Replicas int
	// Members optionally lists the boot-time replica addresses
	// indexed by id. The primary publishes them (plus elastic
	// joiners) through the Members message so clients can resize
	// their pools; without it only elastically joined replicas are
	// discoverable.
	Members []string
	// Join, on an mm non-primary, asks the primary to admit this node
	// at startup: the primary assigns the replica id (ID is ignored),
	// transfers a consistent snapshot, and the node catches up over
	// the ordinary propagation path before serving.
	Join bool
	// StaleAfter is how long the primary waits before evicting an
	// elastic member that stopped proving liveness (default 5s) — a
	// joiner that crashed mid-state-transfer would otherwise block
	// certification-log GC forever.
	StaleAfter time.Duration
	// DrainTimeout bounds how long Leave waits for in-flight
	// transactions to finish before giving up on them (default 5s).
	DrainTimeout time.Duration
	// GCLag is how many versions below the cluster-wide applied
	// horizon the primary retains anyway, protecting certification
	// requests from transactions that began before the horizon moved
	// (default 256).
	GCLag int
	// GroupCommit batches commit certification on the certifier host
	// (mm, ID 0 only).
	GroupCommit bool
	// GroupWindow caps the batcher's adaptive accumulation window
	// (default certifier.DefaultMaxWindow; < 0 disables accumulation
	// so every backlog batch cuts immediately). Ignored without
	// GroupCommit.
	GroupWindow time.Duration
	// NoCompress disables DEFLATE on outgoing v5 Records bodies and
	// asks this node's own propagation pulls to skip it too — for
	// benchmarking the wire formats and for CPU-bound deployments.
	NoCompress bool
	// EagerCert enables eager certification on writes (mm only; on a
	// non-primary node every probe is a network round trip).
	EagerCert bool
	// DialTimeout bounds peer-link dials (default 2s).
	DialTimeout time.Duration
	// IdleTimeout closes connections that send nothing for this long
	// (default 5m), so half-open peers cannot hold MaxConns slots
	// forever; clients transparently redial pooled connections the
	// server reaped.
	IdleTimeout time.Duration
	// WALDir enables durable commits: the node journals its state into
	// a write-ahead log in this directory, replays it on start, and —
	// on the certifier host — acknowledges commits only once their
	// writesets are logged. A restarted replica resumes propagation
	// from its last journaled cursor over FetchSince instead of
	// transferring a snapshot. Empty disables durability (the seed's
	// in-memory behavior).
	WALDir string
	// Fsync makes WAL commits wait on a (group) fsync, surviving
	// machine crashes rather than just process kills. Ignored without
	// WALDir.
	Fsync bool
	// WALCompactBytes compacts the WAL around a full-state snapshot
	// once the segment exceeds this size (default 64 MiB; < 0 disables
	// compaction). Ignored without WALDir.
	WALCompactBytes int64
	// ApplyWorkers sizes the conflict-aware parallel applier that
	// installs propagated writesets: non-conflicting writesets install
	// concurrently across the database's lock shards while versions
	// retire strictly in order. Defaults to GOMAXPROCS; 1 applies
	// serially.
	ApplyWorkers int
	// Paxos turns certification into a replicated state machine (mm
	// only): this node embeds a Paxos acceptor, the group elects a
	// certification leader with epoch fencing, and leadership fails
	// over automatically when the leader dies. Composes with WALDir /
	// Fsync — the acceptor state then persists next to the WAL, so a
	// restarted node rejoins with its promises and votes intact.
	Paxos bool
	// PaxosPeers lists every group member's client address indexed by
	// replica id, including this node's own. Required with Paxos; the
	// group size is len(PaxosPeers) and elections need a reachable
	// majority.
	PaxosPeers []string
	// ElectTimeout is how long a backup goes without leader progress
	// before campaigning (default 1s); node id waits an extra
	// id*ElectTimeout/2 so elections stagger instead of colliding.
	ElectTimeout time.Duration
	// DisableTrace turns off commit-path stage tracing (span assembly,
	// per-stage histograms, the slow-transaction log). Tracing is on
	// by default; this exists to measure its overhead.
	DisableTrace bool
	// SlowTxn is the slow-transaction threshold for /debug/slowtxns
	// (default pipeline.DefaultSlowTxn).
	SlowTxn time.Duration
	// ShardID / ShardCount place this replica group inside a
	// hash-partitioned deployment: the group owns the keys that
	// internal/router's table-aware hash maps to ShardID out of
	// ShardCount groups. Both default to the unsharded single group
	// (0 of 1). The values are stamped onto JoinOK/MembersOK replies
	// (protocol v6) so clients learn the shard map from any member;
	// routing itself happens client-side, the server only answers the
	// per-fragment 2PC verbs for keys it owns.
	ShardID    int
	ShardCount int
}

// shardMapVersion is the version stamped on the published shard map.
// The map is boot-static in this PR (resharding would bump it), so a
// constant marks "a sharded deployment" vs the zero "unsharded".
const shardMapVersion = 1

// Server is a running replica server.
type Server struct {
	opts Options
	ln   net.Listener
	eng  engine
	m    *metrics

	httpLn  net.Listener
	httpSrv *http.Server

	sem      chan struct{}
	stop     chan struct{}
	wg       sync.WaitGroup
	connID   atomic.Int64
	draining atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New validates the options, binds the listener(s) and builds the
// node engine. A Join server additionally runs the join protocol
// against the primary (admission, snapshot transfer, catch-up
// cursor), so a non-nil return means a replica that is consistent up
// to its snapshot version and ready to serve once Start launches its
// propagation loop. The server does not accept traffic until Start.
func New(opts Options) (*Server, error) {
	if opts.Design != "mm" && opts.Design != "sm" {
		return nil, fmt.Errorf("server: unknown design %q (mm|sm)", opts.Design)
	}
	if opts.ID < 0 {
		return nil, fmt.Errorf("server: negative replica id %d", opts.ID)
	}
	if opts.Join {
		if opts.Design != "mm" {
			return nil, errors.New("server: elastic join requires the mm design")
		}
		if opts.Primary == "" {
			return nil, errors.New("server: elastic join requires the primary's address")
		}
	}
	if opts.Paxos {
		if opts.Design != "mm" {
			return nil, errors.New("server: a replicated certifier requires the mm design")
		}
		if len(opts.PaxosPeers) == 0 {
			return nil, errors.New("server: a replicated certifier requires the peer address list")
		}
		if opts.ID >= len(opts.PaxosPeers) {
			return nil, fmt.Errorf("server: replica id %d outside the %d-member paxos group", opts.ID, len(opts.PaxosPeers))
		}
		if opts.Join {
			return nil, errors.New("server: elastic join is not supported with a replicated certifier (the group is fixed at boot)")
		}
	}
	if !opts.Join && opts.ID > 0 && opts.Primary == "" && !opts.Paxos {
		return nil, errors.New("server: replica id > 0 requires the primary's address")
	}
	if opts.Listen == "" {
		return nil, errors.New("server: listen address required")
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}
	if opts.GCLag <= 0 {
		opts.GCLag = 256
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = 5 * time.Minute
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 5 * time.Second
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	if opts.WALCompactBytes == 0 {
		opts.WALCompactBytes = 64 << 20
	}
	if opts.ApplyWorkers <= 0 {
		opts.ApplyWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.ElectTimeout <= 0 {
		opts.ElectTimeout = time.Second
	}

	// The listener binds before a join so the joiner can announce the
	// address clients will reach it at (Listen may carry port 0).
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, err
	}
	var snapVersion int64
	var snapTables map[string]map[int64]string
	if opts.Join {
		snapVersion, snapTables, err = runJoin(&opts, ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, err
		}
	}

	m := newMetrics(opts.Design, opts.ID, opts.DisableTrace, opts.SlowTxn)
	stop := make(chan struct{})
	var eng engine
	switch opts.Design {
	case "mm":
		eng, err = newMMEngine(opts, m, stop)
	case "sm":
		eng, err = newSMEngine(opts, m, stop)
	}
	if err != nil {
		ln.Close()
		return nil, err
	}
	m.bindEngine(eng)
	if snapTables != nil {
		if err := eng.installSnapshot(snapVersion, snapTables); err != nil {
			ln.Close()
			eng.disconnect()
			eng.close()
			return nil, fmt.Errorf("server: installing snapshot: %w", err)
		}
	}

	s := &Server{
		opts:  opts,
		ln:    ln,
		eng:   eng,
		m:     m,
		sem:   make(chan struct{}, opts.MaxConns),
		stop:  stop,
		conns: make(map[net.Conn]struct{}),
	}
	if opts.MetricsAddr != "" {
		s.httpLn, err = net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			ln.Close()
			eng.disconnect()
			eng.close()
			return nil, err
		}
		s.httpSrv = &http.Server{Handler: m.handler(eng)}
	}
	return s, nil
}

// runJoin performs the client half of the join protocol: admission
// (which assigns the replica id and blocks certification-log GC until
// this node starts pulling) followed by the chunked snapshot
// transfer. The ordering matters — because admission precedes the
// snapshot, every writeset certified after the snapshot version is
// still retained when the propagation loop starts fetching from it.
// The snapshot link announces the assigned id, so chunk requests
// count as liveness proof and a transfer longer than StaleAfter does
// not get the joiner evicted as stale.
func runJoin(opts *Options, selfAddr string) (int64, map[string]map[int64]string, error) {
	admit := client.NewLink(opts.Primary, opts.Design, -1, opts.DialTimeout)
	jo, err := admit.Join(selfAddr)
	admit.Close()
	if err != nil {
		return 0, nil, fmt.Errorf("server: join rejected by primary: %w", err)
	}
	opts.ID = int(jo.ID)
	snapLink := client.NewLink(opts.Primary, opts.Design, opts.ID, opts.DialTimeout)
	defer snapLink.Close()
	version, tables, err := snapLink.Snapshot()
	if err != nil {
		return 0, nil, fmt.Errorf("server: snapshot transfer: %w", err)
	}
	return version, tables, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Leader reports this node's view of the replicated certifier: whether
// it currently leads, its best guess of the leader id (-1 unknown) and
// the highest epoch it has seen. ok is false when the node does not run
// a replicated certifier.
func (s *Server) Leader() (leading bool, leader int, epoch paxos.Ballot, ok bool) {
	e, isMM := s.eng.(*mmEngine)
	if !isMM || e.px == nil {
		return false, -1, paxos.Ballot{}, false
	}
	leading, leader, epoch = e.px.view()
	return leading, leader, epoch, true
}

// Resumed reports the version this node's durable state was recovered
// to at start; ok is false when the node has no WAL or started fresh.
func (s *Server) Resumed() (version int64, ok bool) { return s.eng.resume() }

// Registry returns the node's metrics registry. External components
// (the model-residual exporter) register their gauges here so they
// appear on this node's /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// Events returns the node's cluster-event journal. External components
// (the autoscaler's decision hook) emit through it so their events
// appear on this node's /debug/events alongside the server's own.
func (s *Server) Events() *events.Journal { return s.m.events }

// MetricsAddr returns the bound metrics address, or "" when disabled.
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Start launches the accept loop, the propagation loop and the
// metrics listener.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.eng.run(s.stop)
	}()
	if s.httpSrv != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.httpSrv.Serve(s.httpLn)
		}()
	}
}

// Leave gracefully departs the cluster: new transactions are refused
// with CodeDraining (clients reroute to surviving replicas),
// in-flight transactions get up to DrainTimeout to finish, and the
// node deregisters from the primary so its propagation cursor stops
// gating certification-log GC and clients drop it from their pools.
// Call Close afterwards to release the process state. Leave is
// idempotent; it returns an error if the deregistration failed or the
// drain timed out (remaining transactions are then aborted by Close).
func (s *Server) Leave() error {
	if s.draining.Swap(true) {
		return nil
	}
	// Deregister first: routing stops cluster-wide as soon as clients
	// observe the epoch bump, while the draining flag already refuses
	// anything that races in over existing connections.
	var err error
	if s.opts.ID == 0 {
		err = errors.New("server: the primary cannot leave the cluster")
	} else {
		err = s.eng.selfLeave(int64(s.opts.ID))
	}
	deadline := time.Now().Add(s.opts.DrainTimeout)
	for s.m.activeTxns.Load() > 0 {
		if time.Now().After(deadline) {
			drainErr := fmt.Errorf("server: drain timed out with %d transactions in flight", s.m.activeTxns.Load())
			if err == nil {
				err = drainErr
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return err
}

// Close shuts the server down gracefully and joins every goroutine.
// It is idempotent.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.connMu.Unlock()

	close(s.stop)
	err := s.ln.Close()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
	// Fail the propagation loop's in-flight RPCs first, then join every
	// goroutine, and only then release the WAL: closing it while the
	// role loop is still ingesting a fetched batch panics the applier.
	s.eng.disconnect()
	s.wg.Wait()
	s.eng.close()
	return err
}

// track registers a live connection; it reports false once the server
// is closing so late accepts are dropped immediately.
func (s *Server) track(nc net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
}

// acceptLoop accepts connections, each behind the MaxConns semaphore.
func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			nc.Close()
			return
		}
		if !s.track(nc) {
			nc.Close()
			<-s.sem
			return
		}
		s.m.activeConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.untrack(nc)
				nc.Close()
				s.m.activeConns.Add(-1)
				<-s.sem
			}()
			s.handleConn(nc)
		}()
	}
}

// connState is one connection's serving state: its negotiated
// protocol version, its cursor key, its single open transaction, and
// an in-progress snapshot stream.
type connState struct {
	peer     int64
	proto    uint32
	cur      repl.Txn
	readOnly bool
	txStart  time.Time
	snap     *snapshotStream
}

// snapshotStream is a pinned snapshot being streamed in chunks over
// one connection. The whole state was captured consistently at
// Version; chunking only bounds frame sizes.
type snapshotStream struct {
	version int64
	tables  []wire.TableSnap // remaining contents, consumed front to back
}

// snapshotChunkBytes bounds the approximate payload of one SnapshotOK
// chunk, comfortably under wire.MaxFrame so join state transfer works
// for databases of any size (a single row larger than the remaining
// frame budget still goes out alone and is only limited by MaxFrame).
const snapshotChunkBytes = 4 << 20

// next builds the next chunk, removing what it takes. More is set
// while contents remain.
func (ss *snapshotStream) next() *wire.SnapshotOK {
	reply := &wire.SnapshotOK{Version: ss.version}
	budget := snapshotChunkBytes
	for budget > 0 && len(ss.tables) > 0 {
		t := &ss.tables[0]
		take := 0
		for take < len(t.Rows) && budget > 0 {
			budget -= 16 + len(t.Values[take])
			take++
		}
		reply.Tables = append(reply.Tables, wire.TableSnap{
			Name:   t.Name,
			Rows:   t.Rows[:take],
			Values: t.Values[:take],
		})
		budget -= len(t.Name) + 8
		if take == len(t.Rows) {
			ss.tables = ss.tables[1:]
		} else {
			t.Rows = t.Rows[take:]
			t.Values = t.Values[take:]
		}
	}
	reply.More = len(ss.tables) > 0
	return reply
}

// handleConn runs the versioned handshake, then serves one request at
// a time; the connection owns at most one open transaction, which is
// aborted if the connection dies.
func (s *Server) handleConn(nc net.Conn) {
	wc := wire.NewConn(nc)
	// Decode the handshake at the floor version: the first frame must
	// be Hello (whose shape is version-independent), and a misuse frame
	// from any vintage still decodes far enough to be answered with a
	// structured error instead of a dropped connection.
	wc.SetProto(wire.MinProto)
	_ = nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	msg, err := wc.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		_ = wc.Send(&wire.Err{Code: wire.CodeBadRequest, Msg: "expected Hello"})
		return
	}
	proto, err := wire.Negotiate(hello.Proto)
	if err != nil {
		_ = wc.Send(&wire.Err{Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("protocol version %d not supported (want %d-%d)",
				hello.Proto, wire.MinProto, wire.ProtoVersion)})
		return
	}
	if err := wc.Send(&wire.HelloOK{Proto: proto, Design: s.opts.Design, ID: int64(s.opts.ID)}); err != nil {
		return
	}
	// All subsequent frames encode at the negotiated version: v4 fields
	// are dropped symmetrically on both ends of a downgraded connection.
	wc.SetProto(proto)

	// Peer links announce their replica id; that keys their
	// propagation cursor so reconnects collapse onto one cursor.
	// Ordinary clients (PeerID < 0) get a unique negative key the
	// cursor tracking ignores.
	peer := hello.PeerID
	if peer < 0 {
		peer = -s.connID.Add(1)
	}
	st := &connState{peer: peer, proto: proto}
	defer s.eng.peerGone(peer)
	defer func() {
		if st.cur != nil {
			st.cur.Abort()
			s.m.activeTxns.Add(-1)
		}
	}()
	for {
		_ = nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		msg, err := wc.Recv()
		if err != nil {
			return
		}
		reply := s.dispatch(st, msg)
		if err := wc.Send(reply); err != nil {
			return
		}
	}
}

// maxFetchWait caps client-requested long polls so a hostile or buggy
// peer cannot park a connection goroutine for arbitrarily long.
const maxFetchWait = 5 * time.Second

// newTraceID mints a nonzero random cross-node trace id. 64 random
// bits collide with ~10^-9 probability at a million concurrent
// transactions — good enough for an observability correlator, which
// only ever groups spans for display.
func newTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// dispatch executes one request against the node engine and builds
// the reply. st carries the connection's negotiated protocol, cursor
// key (the announced replica id for peer links, a negative value for
// clients) and open transaction slot.
func (s *Server) dispatch(st *connState, msg wire.Message) wire.Message {
	if need := wire.MinProtoFor(msgType(msg)); st.proto < need {
		// A membership message on a connection negotiated down to v1:
		// refuse with a structured error instead of dropping the
		// connection, so mixed-version clusters fail requests, not
		// links.
		return &wire.Err{Code: wire.CodeProto,
			Msg: fmt.Sprintf("message %T requires protocol %d, connection negotiated %d", msg, need, st.proto)}
	}
	switch m := msg.(type) {
	case *wire.Begin:
		if st.cur != nil {
			return &wire.Err{Code: wire.CodeBadRequest, Msg: "transaction already open on this connection"}
		}
		if s.draining.Load() {
			return &wire.Err{Code: wire.CodeDraining, Msg: "replica is draining for departure"}
		}
		tx, err := s.eng.begin(m.ReadOnly)
		if err != nil {
			return s.errReply(st, err)
		}
		st.cur = tx
		st.readOnly = m.ReadOnly
		st.txStart = time.Now()
		s.m.activeTxns.Add(1)
		// Cross-node trace id: adopt the client's (v4 connections that
		// pre-assign one), otherwise mint one here so the id exists even
		// for untraced or downgraded clients. Read-only transactions
		// never certify or propagate, so they carry no id.
		trace := m.Trace
		if !m.ReadOnly && s.m.tracer != nil {
			if trace == 0 {
				trace = newTraceID()
			}
			if tt, ok := tx.(interface{ SetTrace(uint64) }); ok {
				tt.SetTrace(trace)
			}
		}
		return &wire.BeginOK{Applied: s.eng.applied(), Trace: trace}

	case *wire.Read:
		if st.cur == nil {
			return noTxn()
		}
		value, ok, err := st.cur.Read(m.Table, m.Row)
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.ReadOK{OK: ok, Value: value}

	case *wire.Write:
		if st.cur == nil {
			return noTxn()
		}
		if err := st.cur.Write(m.Table, m.Row, m.Value); err != nil {
			return s.errReply(st, err)
		}
		return &wire.WriteOK{}

	case *wire.Delete:
		if st.cur == nil {
			return noTxn()
		}
		if err := st.cur.Delete(m.Table, m.Row); err != nil {
			return s.errReply(st, err)
		}
		return &wire.WriteOK{}

	case *wire.Commit:
		if st.cur == nil {
			return noTxn()
		}
		cur := st.cur
		err := cur.Commit()
		st.cur = nil
		s.m.activeTxns.Add(-1)
		switch {
		case err == nil:
			s.m.commits.Add(1)
			s.m.observeTxn(st.readOnly, time.Since(st.txStart))
			if cv, ok := cur.(interface{ CommitVersion() int64 }); ok {
				// Ack stamp: certification verdict to the client-visible
				// commit acknowledgement.
				s.m.tracer.Ack(cv.CommitVersion(), time.Now())
			}
			return &wire.CommitOK{Applied: s.eng.applied()}
		case errors.Is(err, repl.ErrAborted):
			s.m.aborts.Add(1)
			return &wire.CommitAborted{ConflictWith: repl.ConflictWith(err)}
		default:
			reply := s.errReply(st, err)
			if !isNotLeaderReply(reply) {
				// The commit failed without a verdict: the client must
				// treat the outcome as unknown (a redirect is counted
				// separately — the new leader still decides it).
				s.m.unknownOutcomes.Inc()
			}
			return reply
		}

	case *wire.Abort:
		if st.cur != nil {
			st.cur.Abort()
			st.cur = nil
			s.m.activeTxns.Add(-1)
		}
		return &wire.AbortOK{}

	case *wire.Sync:
		s.eng.sync()
		return &wire.SyncOK{Applied: s.eng.applied()}

	case *wire.CreateTable:
		if err := s.eng.createTable(m.Name); err != nil {
			return s.errReply(st, err)
		}
		return &wire.CreateTableOK{}

	case *wire.Load:
		if err := s.eng.loadRows(m.Table, m.Start, m.Values); err != nil {
			return s.errReply(st, err)
		}
		return &wire.LoadOK{}

	case *wire.Dump:
		rows, err := s.eng.dump(m.Table)
		if err != nil {
			return s.errReply(st, err)
		}
		reply := &wire.DumpOK{Rows: make([]int64, 0, len(rows)), Values: make([]string, 0, len(rows))}
		for r, v := range rows {
			reply.Rows = append(reply.Rows, r)
			reply.Values = append(reply.Values, v)
		}
		return reply

	case *wire.Certify:
		out, err := s.eng.certify(m.Snapshot, m.WS, m.Trace)
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.CertifyOK{Committed: out.Committed, Version: out.Version, ConflictWith: out.ConflictWith}

	case *wire.Check:
		conflict, with, err := s.eng.check(m.Snapshot, m.WS)
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.CheckOK{Conflict: conflict, With: with}

	case *wire.PrepareTxn:
		// Two forms. With a transaction open on this connection the verb
		// prepares THAT transaction as one fragment of cross-shard txn
		// m.TxnID — the server already holds its snapshot and writeset,
		// so the frame carries neither (the sharded client's path).
		// Without one it is a raw fragment prepare carrying both, used
		// by coordinator recovery and peer forwarding.
		if st.cur != nil {
			p, ok := st.cur.(interface {
				Prepare(id string, coord int64) (bool, int64, error)
			})
			if !ok {
				return s.errReply(st, errUnsupported)
			}
			// Prepare consumes the transaction either way: a yes-vote
			// fragment lives on in the certifier, not on this conn.
			vote, with, err := p.Prepare(m.TxnID, m.Coord)
			st.cur = nil
			s.m.activeTxns.Add(-1)
			if err != nil {
				return s.errReply(st, err)
			}
			return &wire.PrepareTxnOK{Vote: vote, ConflictWith: with}
		}
		vote, with, err := s.eng.prepareTxn(certifier.PreparedTxn{
			ID: m.TxnID, Coord: m.Coord, Snapshot: m.Snapshot, Writeset: m.WS,
		})
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.PrepareTxnOK{Vote: vote, ConflictWith: with}

	case *wire.DecideTxn:
		version, err := s.eng.decideTxn(m.TxnID, m.Commit)
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.DecideTxnOK{Version: version}

	case *wire.ResolveTxn:
		commit, err := s.eng.resolveTxn(m.TxnID)
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.ResolveTxnOK{Commit: commit}

	case *wire.ForgetTxn:
		if err := s.eng.forgetTxn(m.TxnID); err != nil {
			return s.errReply(st, err)
		}
		return &wire.ForgetTxnOK{}

	case *wire.FetchSince:
		wait := time.Duration(m.WaitMillis) * time.Millisecond
		if wait > maxFetchWait {
			wait = maxFetchWait
		}
		recs, err := s.eng.fetchSince(st.peer, m.Version, wait)
		if err != nil {
			return s.errReply(st, err)
		}
		reply := &wire.Records{
			Recs:     make([]wire.Record, len(recs)),
			Compress: !m.NoCompress && !s.opts.NoCompress,
		}
		for i, r := range recs {
			trace, commitNs := s.m.tracer.CommitMeta(r.Version)
			reply.Recs[i] = wire.Record{Version: r.Version, WS: r.Writeset, Trace: trace, CommitNs: commitNs}
		}
		return reply

	case *wire.PaxosPrepare:
		rep, err := s.eng.paxosPrepare(paxos.Ballot{Round: int(m.Round), Proposer: int(m.Proposer)}, int(m.Slot))
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.PaxosPrepareOK{
			OK:               rep.OK,
			PromisedRound:    int64(rep.Promised.Round),
			PromisedProposer: int64(rep.Promised.Proposer),
			AcceptedRound:    int64(rep.AcceptedBallot.Round),
			AcceptedProposer: int64(rep.AcceptedBallot.Proposer),
			AcceptedValue:    string(rep.AcceptedValue),
			HasAccepted:      rep.HasAccepted,
		}

	case *wire.PaxosAccept:
		rep, err := s.eng.paxosAccept(paxos.Ballot{Round: int(m.Round), Proposer: int(m.Proposer)}, int(m.Slot), paxos.Value(m.Value))
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.PaxosAcceptOK{
			OK:               rep.OK,
			PromisedRound:    int64(rep.Promised.Round),
			PromisedProposer: int64(rep.Promised.Proposer),
		}

	case *wire.PaxosLearn:
		rep, err := s.eng.paxosLearn()
		if err != nil {
			return s.errReply(st, err)
		}
		return &wire.PaxosLearnOK{
			MaxSlot:          int64(rep.MaxSlot),
			PromisedRound:    int64(rep.Promised.Round),
			PromisedProposer: int64(rep.Promised.Proposer),
		}

	case *wire.Join:
		jo, err := s.eng.join(m.Addr)
		if err != nil {
			return s.errReply(st, err)
		}
		s.stampShard(&jo.ShardID, &jo.ShardCount, &jo.MapVersion)
		return jo

	case *wire.Leave:
		if err := s.eng.leave(m.ID); err != nil {
			return s.errReply(st, err)
		}
		return &wire.LeaveOK{}

	case *wire.Members:
		epoch, members, err := s.eng.members()
		if err != nil {
			return s.errReply(st, err)
		}
		reply := &wire.MembersOK{Epoch: epoch, Members: members}
		s.stampShard(&reply.ShardID, &reply.ShardCount, &reply.MapVersion)
		return reply

	case *wire.SnapshotReq:
		s.eng.touch(st.peer) // a chunk request is liveness proof mid-transfer
		if st.snap == nil {
			version, tables, err := s.eng.snapshot()
			if err != nil {
				return s.errReply(st, err)
			}
			stream := &snapshotStream{version: version}
			names := make([]string, 0, len(tables))
			for name := range tables {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				rows := tables[name]
				ts := wire.TableSnap{Name: name, Rows: make([]int64, 0, len(rows)), Values: make([]string, 0, len(rows))}
				for r, v := range rows {
					ts.Rows = append(ts.Rows, r)
					ts.Values = append(ts.Values, v)
				}
				stream.tables = append(stream.tables, ts)
			}
			st.snap = stream
		}
		reply := st.snap.next()
		if !reply.More {
			st.snap = nil
		}
		return reply

	case *wire.Stats:
		reply := s.m.statsOK(s.eng)
		reply.ShardID = int64(s.opts.ShardID)
		return reply

	default:
		return &wire.Err{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected message %T", msg)}
	}
}

// msgType extracts a message's type byte for protocol gating.
func msgType(m wire.Message) wire.MsgType {
	switch m.(type) {
	case *wire.Join:
		return wire.TJoin
	case *wire.Leave:
		return wire.TLeave
	case *wire.SnapshotReq:
		return wire.TSnapshotReq
	case *wire.Members:
		return wire.TMembers
	case *wire.Stats:
		return wire.TStats
	case *wire.PaxosPrepare:
		return wire.TPaxosPrepare
	case *wire.PaxosAccept:
		return wire.TPaxosAccept
	case *wire.PaxosLearn:
		return wire.TPaxosLearn
	case *wire.PrepareTxn:
		return wire.TPrepareTxn
	case *wire.DecideTxn:
		return wire.TDecideTxn
	case *wire.ResolveTxn:
		return wire.TResolveTxn
	case *wire.ForgetTxn:
		return wire.TForgetTxn
	default:
		return 0 // v1 message: no gating needed
	}
}

// stampShard writes this group's place in the shard map onto a
// membership reply. Unsharded deployments (ShardCount <= 1 and no
// explicit id) publish all-zero fields, the exact v5 shape.
func (s *Server) stampShard(id, count, mapv *int64) {
	if s.opts.ShardCount <= 1 && s.opts.ShardID == 0 {
		return
	}
	*id = int64(s.opts.ShardID)
	*count = int64(s.opts.ShardCount)
	*mapv = shardMapVersion
}

func noTxn() wire.Message {
	return &wire.Err{Code: wire.CodeBadRequest, Msg: "no transaction open on this connection"}
}

// errReply maps engine errors onto the wire.
func errReply(err error) wire.Message {
	switch {
	case errors.Is(err, repl.ErrAborted):
		return &wire.CommitAborted{ConflictWith: repl.ConflictWith(err)}
	case errors.Is(err, repl.ErrReadOnlyTxn):
		return &wire.Err{Code: wire.CodeReadOnly, Msg: err.Error()}
	case errors.Is(err, sidb.ErrNoTable):
		return &wire.Err{Code: wire.CodeNoTable, Msg: err.Error()}
	case errors.Is(err, errUnsupported):
		return &wire.Err{Code: wire.CodeUnsupported, Msg: err.Error()}
	default:
		return &wire.Err{Code: wire.CodeInternal, Msg: err.Error()}
	}
}

// errReply maps engine errors onto the wire for one connection,
// turning not-leader errors into structured redirects: a NotLeader
// frame (with the leader's address when this node knows it) on
// protocol-v3 connections, the CodeNotLeader error on older ones.
func (s *Server) errReply(st *connState, err error) wire.Message {
	var cnl certifier.NotLeaderError
	if errors.As(err, &cnl) {
		return s.notLeaderReply(st, cnl.Leader, int64(cnl.Epoch.Round))
	}
	var lnl client.NotLeaderError
	if errors.As(err, &lnl) {
		// A backup relaying through the ring saw a redirect itself;
		// forward it so the client re-aims at the same place.
		return s.notLeaderReply(st, lnl.Leader, lnl.Epoch)
	}
	if errors.Is(err, client.ErrNoLeader) {
		// The relay ran out its redirect budget mid-election: there is
		// no leader to name, but the failure is a leadership gap, not
		// an internal fault — redirect with the leader unknown so a
		// commit caught in the gap counts as unknown-outcome.
		return s.notLeaderReply(st, -1, 0)
	}
	return errReply(err)
}

// isNotLeaderReply reports whether a reply is a NotLeader redirect in
// either protocol encoding.
func isNotLeaderReply(msg wire.Message) bool {
	switch t := msg.(type) {
	case *wire.NotLeader:
		return true
	case *wire.Err:
		return t.Code == wire.CodeNotLeader
	}
	return false
}

func (s *Server) notLeaderReply(st *connState, leader int, epoch int64) wire.Message {
	s.m.notLeaderRedirects.Inc()
	if st.proto >= 3 {
		return &wire.NotLeader{
			Leader: int64(leader),
			Epoch:  epoch,
			Addr:   s.eng.leaderAddr(leader),
		}
	}
	return &wire.Err{Code: wire.CodeNotLeader,
		Msg: fmt.Sprintf("replica is not the certifier leader (leader %d, epoch round %d)", leader, epoch)}
}
