// Package server implements the TCP replica server of the networked
// deployment: each process fronts one database replica with the same
// middleware the in-process prototypes use (a single-replica
// mm.Cluster with a local or remote certifier, or a single-master
// master/slave node), speaks the internal/wire protocol to clients,
// and maintains peer links to the primary for remote certification and
// writeset propagation — the paper's deployment shape (§5), where
// replicas, the certifier and the clients are separate machines.
//
// Concurrency model: one goroutine per accepted connection with a
// bounded accept loop, one background propagation goroutine (the peer
// link), and an optional HTTP metrics listener. Close is graceful:
// the listener stops, open connections are closed (aborting their
// in-flight transactions), and every goroutine is joined.
package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/repl"
	"repro/internal/sidb"
	"repro/internal/wire"
)

// Options configure one replica server process.
type Options struct {
	// Design is the replication design this node serves: "mm" or "sm".
	Design string
	// ID is this node's replica id. Replica 0 is the primary: the
	// certifier host under mm, the master under sm.
	ID int
	// Listen is the TCP listen address (host:port; port 0 picks one).
	Listen string
	// Primary is the address of replica 0; required when ID > 0,
	// ignored when ID == 0.
	Primary string
	// MetricsAddr optionally serves /metrics over HTTP.
	MetricsAddr string
	// MaxConns bounds concurrently served connections (default 256);
	// the accept loop stalls at the bound rather than rejecting.
	MaxConns int
	// Replicas is the total replica count of the cluster. On the
	// primary it gates garbage collection of retained writesets: the
	// log is pruned only once all Replicas-1 peers maintain active
	// propagation cursors (0 disables pruning, retaining everything).
	Replicas int
	// GCLag is how many versions below the cluster-wide applied
	// horizon the primary retains anyway, protecting certification
	// requests from transactions that began before the horizon moved
	// (default 256).
	GCLag int
	// GroupCommit batches commit certification on the certifier host
	// (mm, ID 0 only).
	GroupCommit bool
	// EagerCert enables eager certification on writes (mm only; on a
	// non-primary node every probe is a network round trip).
	EagerCert bool
	// DialTimeout bounds peer-link dials (default 2s).
	DialTimeout time.Duration
	// IdleTimeout closes connections that send nothing for this long
	// (default 5m), so half-open peers cannot hold MaxConns slots
	// forever; clients transparently redial pooled connections the
	// server reaped.
	IdleTimeout time.Duration
}

// Server is a running replica server.
type Server struct {
	opts Options
	ln   net.Listener
	eng  engine
	m    *metrics

	httpLn  net.Listener
	httpSrv *http.Server

	sem    chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	connID atomic.Int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New validates the options, binds the listener(s) and builds the
// node engine. The server does not accept traffic until Start.
func New(opts Options) (*Server, error) {
	if opts.Design != "mm" && opts.Design != "sm" {
		return nil, fmt.Errorf("server: unknown design %q (mm|sm)", opts.Design)
	}
	if opts.ID < 0 {
		return nil, fmt.Errorf("server: negative replica id %d", opts.ID)
	}
	if opts.ID > 0 && opts.Primary == "" {
		return nil, errors.New("server: replica id > 0 requires the primary's address")
	}
	if opts.Listen == "" {
		return nil, errors.New("server: listen address required")
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}
	if opts.GCLag <= 0 {
		opts.GCLag = 256
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = 5 * time.Minute
	}

	m := newMetrics(opts.Design, opts.ID)
	stop := make(chan struct{})
	var eng engine
	var err error
	switch opts.Design {
	case "mm":
		eng, err = newMMEngine(opts, m, stop)
	case "sm":
		eng = newSMEngine(opts, stop)
	}
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		eng.close()
		return nil, err
	}
	s := &Server{
		opts:  opts,
		ln:    ln,
		eng:   eng,
		m:     m,
		sem:   make(chan struct{}, opts.MaxConns),
		stop:  stop,
		conns: make(map[net.Conn]struct{}),
	}
	if opts.MetricsAddr != "" {
		s.httpLn, err = net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			ln.Close()
			eng.close()
			return nil, err
		}
		s.httpSrv = &http.Server{Handler: m.handler(eng)}
	}
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound metrics address, or "" when disabled.
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Start launches the accept loop, the propagation loop and the
// metrics listener.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.eng.run(s.stop)
	}()
	if s.httpSrv != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.httpSrv.Serve(s.httpLn)
		}()
	}
}

// Close shuts the server down gracefully and joins every goroutine.
// It is idempotent.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.connMu.Unlock()

	close(s.stop)
	err := s.ln.Close()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
	s.eng.close()
	s.wg.Wait()
	return err
}

// track registers a live connection; it reports false once the server
// is closing so late accepts are dropped immediately.
func (s *Server) track(nc net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
}

// acceptLoop accepts connections, each behind the MaxConns semaphore.
func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			nc.Close()
			return
		}
		if !s.track(nc) {
			nc.Close()
			<-s.sem
			return
		}
		s.m.activeConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.untrack(nc)
				nc.Close()
				s.m.activeConns.Add(-1)
				<-s.sem
			}()
			s.handleConn(nc)
		}()
	}
}

// handleConn runs the versioned handshake, then serves one request at
// a time; the connection owns at most one open transaction, which is
// aborted if the connection dies.
func (s *Server) handleConn(nc net.Conn) {
	wc := wire.NewConn(nc)
	_ = nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	msg, err := wc.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		_ = wc.Send(&wire.Err{Code: wire.CodeBadRequest, Msg: "expected Hello"})
		return
	}
	if hello.Proto != wire.ProtoVersion {
		_ = wc.Send(&wire.Err{Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("protocol version %d not supported (want %d)", hello.Proto, wire.ProtoVersion)})
		return
	}
	if err := wc.Send(&wire.HelloOK{Proto: wire.ProtoVersion, Design: s.opts.Design, ID: int64(s.opts.ID)}); err != nil {
		return
	}

	// Peer links announce their replica id; that keys their
	// propagation cursor so reconnects collapse onto one cursor.
	// Ordinary clients (PeerID < 0) get a unique negative key the
	// cursor tracking ignores.
	peer := hello.PeerID
	if peer < 0 {
		peer = -s.connID.Add(1)
	}
	defer s.eng.peerGone(peer)
	var cur repl.Txn
	defer func() {
		if cur != nil {
			cur.Abort()
		}
	}()
	for {
		_ = nc.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		msg, err := wc.Recv()
		if err != nil {
			return
		}
		reply := s.dispatch(peer, &cur, msg)
		if err := wc.Send(reply); err != nil {
			return
		}
	}
}

// maxFetchWait caps client-requested long polls so a hostile or buggy
// peer cannot park a connection goroutine for arbitrarily long.
const maxFetchWait = 5 * time.Second

// dispatch executes one request against the node engine and builds the
// reply. peer is the connection's cursor key (the announced replica id
// for peer links, a negative value for clients); cur is its open
// transaction slot.
func (s *Server) dispatch(peer int64, cur *repl.Txn, msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.Begin:
		if *cur != nil {
			return &wire.Err{Code: wire.CodeBadRequest, Msg: "transaction already open on this connection"}
		}
		tx, err := s.eng.begin(m.ReadOnly)
		if err != nil {
			return errReply(err)
		}
		*cur = tx
		return &wire.BeginOK{Applied: s.eng.applied()}

	case *wire.Read:
		if *cur == nil {
			return noTxn()
		}
		value, ok, err := (*cur).Read(m.Table, m.Row)
		if err != nil {
			return errReply(err)
		}
		return &wire.ReadOK{OK: ok, Value: value}

	case *wire.Write:
		if *cur == nil {
			return noTxn()
		}
		if err := (*cur).Write(m.Table, m.Row, m.Value); err != nil {
			return errReply(err)
		}
		return &wire.WriteOK{}

	case *wire.Delete:
		if *cur == nil {
			return noTxn()
		}
		if err := (*cur).Delete(m.Table, m.Row); err != nil {
			return errReply(err)
		}
		return &wire.WriteOK{}

	case *wire.Commit:
		if *cur == nil {
			return noTxn()
		}
		err := (*cur).Commit()
		*cur = nil
		switch {
		case err == nil:
			s.m.commits.Add(1)
			return &wire.CommitOK{Applied: s.eng.applied()}
		case errors.Is(err, repl.ErrAborted):
			s.m.aborts.Add(1)
			return &wire.CommitAborted{ConflictWith: repl.ConflictWith(err)}
		default:
			return errReply(err)
		}

	case *wire.Abort:
		if *cur != nil {
			(*cur).Abort()
			*cur = nil
		}
		return &wire.AbortOK{}

	case *wire.Sync:
		s.eng.sync()
		return &wire.SyncOK{Applied: s.eng.applied()}

	case *wire.CreateTable:
		if err := s.eng.createTable(m.Name); err != nil {
			return errReply(err)
		}
		return &wire.CreateTableOK{}

	case *wire.Load:
		if err := s.eng.loadRows(m.Table, m.Start, m.Values); err != nil {
			return errReply(err)
		}
		return &wire.LoadOK{}

	case *wire.Dump:
		rows, err := s.eng.dump(m.Table)
		if err != nil {
			return errReply(err)
		}
		reply := &wire.DumpOK{Rows: make([]int64, 0, len(rows)), Values: make([]string, 0, len(rows))}
		for r, v := range rows {
			reply.Rows = append(reply.Rows, r)
			reply.Values = append(reply.Values, v)
		}
		return reply

	case *wire.Certify:
		out, err := s.eng.certify(m.Snapshot, m.WS)
		if err != nil {
			return errReply(err)
		}
		return &wire.CertifyOK{Committed: out.Committed, Version: out.Version, ConflictWith: out.ConflictWith}

	case *wire.Check:
		conflict, with, err := s.eng.check(m.Snapshot, m.WS)
		if err != nil {
			return errReply(err)
		}
		return &wire.CheckOK{Conflict: conflict, With: with}

	case *wire.FetchSince:
		wait := time.Duration(m.WaitMillis) * time.Millisecond
		if wait > maxFetchWait {
			wait = maxFetchWait
		}
		recs, err := s.eng.fetchSince(peer, m.Version, wait)
		if err != nil {
			return errReply(err)
		}
		reply := &wire.Records{Recs: make([]wire.Record, len(recs))}
		for i, r := range recs {
			reply.Recs[i] = wire.Record{Version: r.Version, WS: r.Writeset}
		}
		return reply

	default:
		return &wire.Err{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected message %T", msg)}
	}
}

func noTxn() wire.Message {
	return &wire.Err{Code: wire.CodeBadRequest, Msg: "no transaction open on this connection"}
}

// errReply maps engine errors onto the wire.
func errReply(err error) wire.Message {
	switch {
	case errors.Is(err, repl.ErrAborted):
		return &wire.CommitAborted{ConflictWith: repl.ConflictWith(err)}
	case errors.Is(err, repl.ErrReadOnlyTxn):
		return &wire.Err{Code: wire.CodeReadOnly, Msg: err.Error()}
	case errors.Is(err, sidb.ErrNoTable):
		return &wire.Err{Code: wire.CodeNoTable, Msg: err.Error()}
	case errors.Is(err, errUnsupported):
		return &wire.Err{Code: wire.CodeUnsupported, Msg: err.Error()}
	default:
		return &wire.Err{Code: wire.CodeInternal, Msg: err.Error()}
	}
}
