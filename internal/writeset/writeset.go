// Package writeset defines the writeset abstraction the replicated
// designs exchange: the set of rows an update transaction modified,
// with their after-images (Kemme 2000, §2 of the paper). Writesets are
// used twice: by the certifier to detect system-wide write-write
// conflicts, and by replica proxies to propagate updates.
package writeset

import (
	"fmt"
	"sort"
	"strings"
)

// Key identifies one row: the table name plus the row's primary key.
// Conflict detection is at row granularity, matching the paper.
type Key struct {
	Table string
	Row   int64
}

// String renders "table/row".
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Table, k.Row) }

// Entry is one modified row with its after-image. Delete marks a row
// removal; Value is ignored for deletes.
type Entry struct {
	Key    Key
	Value  string
	Delete bool
}

// Writeset captures an update transaction's effects.
//
// A writeset is logically immutable once constructed. Writesets built
// through New or Builder.Writeset carry a precomputed key set, which
// makes Conflicts and the certifier's inverted index O(len) without
// rebuilding hash maps per comparison; zero-value construction from an
// Entries literal remains valid and falls back to building the set on
// demand.
type Writeset struct {
	Entries []Entry

	// keys is the cached key set, nil when the writeset was built from
	// a literal. It is never mutated after construction, so copying the
	// struct (and the map pointer with it) is safe.
	keys map[Key]struct{}
}

// New constructs a writeset from entries and precomputes its key set.
// The caller must not mutate entries afterwards.
func New(entries []Entry) Writeset {
	ws := Writeset{Entries: entries}
	if len(entries) > 0 {
		ws.keys = make(map[Key]struct{}, len(entries))
		for _, e := range entries {
			ws.keys[e.Key] = struct{}{}
		}
	}
	return ws
}

// FromRows builds the writeset of a bulk row load: values[i] installed
// at (table, start+i). Both the in-process clusters and the networked
// servers use it for the chunked initial-load path.
func FromRows(table string, start int64, values []string) Writeset {
	entries := make([]Entry, len(values))
	for i, v := range values {
		entries[i] = Entry{Key: Key{Table: table, Row: start + int64(i)}, Value: v}
	}
	return New(entries)
}

// keySet returns the cached key set, building one if the writeset was
// constructed from a literal.
func (ws Writeset) keySet() map[Key]struct{} {
	if ws.keys != nil {
		return ws.keys
	}
	set := make(map[Key]struct{}, len(ws.Entries))
	for _, e := range ws.Entries {
		set[e.Key] = struct{}{}
	}
	return set
}

// Contains reports whether the writeset touches key.
func (ws Writeset) Contains(key Key) bool {
	if ws.keys != nil {
		_, ok := ws.keys[key]
		return ok
	}
	for _, e := range ws.Entries {
		if e.Key == key {
			return true
		}
	}
	return false
}

// Empty reports whether the transaction modified nothing (i.e. it is
// effectively read-only and commits without certification).
func (ws Writeset) Empty() bool { return len(ws.Entries) == 0 }

// Len returns the number of modified rows.
func (ws Writeset) Len() int { return len(ws.Entries) }

// Keys returns the modified row keys in deterministic order.
func (ws Writeset) Keys() []Key {
	keys := make([]Key, len(ws.Entries))
	for i, e := range ws.Entries {
		keys[i] = e.Key
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Table != keys[j].Table {
			return keys[i].Table < keys[j].Table
		}
		return keys[i].Row < keys[j].Row
	})
	return keys
}

// Bytes estimates the wire size of the writeset: table names, an
// 8-byte row id and the value payload per entry. The paper reports
// ~275-byte average writesets for TPC-W (§6.1); this estimate feeds
// the network sensitivity analysis.
func (ws Writeset) Bytes() int {
	n := 0
	for _, e := range ws.Entries {
		n += len(e.Key.Table) + 8 + len(e.Value) + 1
	}
	return n
}

// Conflicts reports whether two writesets modify any common row.
func (ws Writeset) Conflicts(other Writeset) bool {
	if len(ws.Entries) == 0 || len(other.Entries) == 0 {
		return false
	}
	// Probe the side that already has a key set with the other side's
	// entries; when both (or neither) have one, probe the larger set
	// with the smaller entry list.
	switch {
	case ws.keys != nil && other.keys == nil:
		return probe(other.Entries, ws.keys)
	case ws.keys == nil && other.keys != nil:
		return probe(ws.Entries, other.keys)
	default:
		small, large := ws, other
		if len(small.Entries) > len(large.Entries) {
			small, large = large, small
		}
		return probe(small.Entries, large.keySet())
	}
}

// probe reports whether any entry's key is in set.
func probe(entries []Entry, set map[Key]struct{}) bool {
	for _, e := range entries {
		if _, ok := set[e.Key]; ok {
			return true
		}
	}
	return false
}

// String renders a compact representation for logs.
func (ws Writeset) String() string {
	if ws.Empty() {
		return "{}"
	}
	parts := make([]string, 0, len(ws.Entries))
	for _, k := range ws.Keys() {
		parts = append(parts, k.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Builder accumulates entries while a transaction executes, the role
// the prototype's triggers play (§5.1). Later writes to the same key
// overwrite earlier ones, so a writeset holds one entry per row.
type Builder struct {
	order   []Key
	entries map[Key]Entry
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{entries: make(map[Key]Entry)}
}

// Put records a write of value to key.
func (b *Builder) Put(key Key, value string) {
	if _, ok := b.entries[key]; !ok {
		b.order = append(b.order, key)
	}
	b.entries[key] = Entry{Key: key, Value: value}
}

// Delete records a row deletion.
func (b *Builder) Delete(key Key) {
	if _, ok := b.entries[key]; !ok {
		b.order = append(b.order, key)
	}
	b.entries[key] = Entry{Key: key, Delete: true}
}

// Len returns the number of distinct rows recorded.
func (b *Builder) Len() int { return len(b.entries) }

// Writeset returns the accumulated writeset in first-write order, with
// its key set precomputed.
func (b *Builder) Writeset() Writeset {
	entries := make([]Entry, 0, len(b.order))
	for _, k := range b.order {
		entries = append(entries, b.entries[k])
	}
	return New(entries)
}
