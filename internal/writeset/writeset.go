// Package writeset defines the writeset abstraction the replicated
// designs exchange: the set of rows an update transaction modified,
// with their after-images (Kemme 2000, §2 of the paper). Writesets are
// used twice: by the certifier to detect system-wide write-write
// conflicts, and by replica proxies to propagate updates.
package writeset

import (
	"fmt"
	"sort"
	"strings"
)

// Key identifies one row: the table name plus the row's primary key.
// Conflict detection is at row granularity, matching the paper.
type Key struct {
	Table string
	Row   int64
}

// String renders "table/row".
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Table, k.Row) }

// Entry is one modified row with its after-image. Delete marks a row
// removal; Value is ignored for deletes.
type Entry struct {
	Key    Key
	Value  string
	Delete bool
}

// Writeset captures an update transaction's effects.
type Writeset struct {
	Entries []Entry
}

// Empty reports whether the transaction modified nothing (i.e. it is
// effectively read-only and commits without certification).
func (ws Writeset) Empty() bool { return len(ws.Entries) == 0 }

// Len returns the number of modified rows.
func (ws Writeset) Len() int { return len(ws.Entries) }

// Keys returns the modified row keys in deterministic order.
func (ws Writeset) Keys() []Key {
	keys := make([]Key, len(ws.Entries))
	for i, e := range ws.Entries {
		keys[i] = e.Key
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Table != keys[j].Table {
			return keys[i].Table < keys[j].Table
		}
		return keys[i].Row < keys[j].Row
	})
	return keys
}

// Bytes estimates the wire size of the writeset: table names, an
// 8-byte row id and the value payload per entry. The paper reports
// ~275-byte average writesets for TPC-W (§6.1); this estimate feeds
// the network sensitivity analysis.
func (ws Writeset) Bytes() int {
	n := 0
	for _, e := range ws.Entries {
		n += len(e.Key.Table) + 8 + len(e.Value) + 1
	}
	return n
}

// Conflicts reports whether two writesets modify any common row.
func (ws Writeset) Conflicts(other Writeset) bool {
	if len(ws.Entries) == 0 || len(other.Entries) == 0 {
		return false
	}
	small, large := ws, other
	if len(small.Entries) > len(large.Entries) {
		small, large = large, small
	}
	seen := make(map[Key]struct{}, len(small.Entries))
	for _, e := range small.Entries {
		seen[e.Key] = struct{}{}
	}
	for _, e := range large.Entries {
		if _, ok := seen[e.Key]; ok {
			return true
		}
	}
	return false
}

// String renders a compact representation for logs.
func (ws Writeset) String() string {
	if ws.Empty() {
		return "{}"
	}
	parts := make([]string, 0, len(ws.Entries))
	for _, k := range ws.Keys() {
		parts = append(parts, k.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Builder accumulates entries while a transaction executes, the role
// the prototype's triggers play (§5.1). Later writes to the same key
// overwrite earlier ones, so a writeset holds one entry per row.
type Builder struct {
	order   []Key
	entries map[Key]Entry
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{entries: make(map[Key]Entry)}
}

// Put records a write of value to key.
func (b *Builder) Put(key Key, value string) {
	if _, ok := b.entries[key]; !ok {
		b.order = append(b.order, key)
	}
	b.entries[key] = Entry{Key: key, Value: value}
}

// Delete records a row deletion.
func (b *Builder) Delete(key Key) {
	if _, ok := b.entries[key]; !ok {
		b.order = append(b.order, key)
	}
	b.entries[key] = Entry{Key: key, Delete: true}
}

// Len returns the number of distinct rows recorded.
func (b *Builder) Len() int { return len(b.entries) }

// Writeset returns the accumulated writeset in first-write order.
func (b *Builder) Writeset() Writeset {
	ws := Writeset{Entries: make([]Entry, 0, len(b.order))}
	for _, k := range b.order {
		ws.Entries = append(ws.Entries, b.entries[k])
	}
	return ws
}
