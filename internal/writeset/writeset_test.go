package writeset

import (
	"testing"
	"testing/quick"
)

func TestEmptyWriteset(t *testing.T) {
	var ws Writeset
	if !ws.Empty() || ws.Len() != 0 {
		t.Fatal("zero writeset not empty")
	}
	if ws.String() != "{}" {
		t.Fatalf("String = %q", ws.String())
	}
	if ws.Bytes() != 0 {
		t.Fatalf("Bytes = %d", ws.Bytes())
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.Put(Key{"item", 1}, "a")
	b.Put(Key{"item", 2}, "b")
	b.Delete(Key{"orders", 9})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	ws := b.Writeset()
	if ws.Len() != 3 {
		t.Fatalf("writeset len = %d", ws.Len())
	}
	if ws.Entries[0].Key != (Key{"item", 1}) || ws.Entries[2].Key != (Key{"orders", 9}) {
		t.Fatalf("order lost: %v", ws.Entries)
	}
	if !ws.Entries[2].Delete {
		t.Fatal("delete flag lost")
	}
}

func TestBuilderOverwriteKeepsOneEntry(t *testing.T) {
	b := NewBuilder()
	b.Put(Key{"item", 1}, "a")
	b.Put(Key{"item", 1}, "b")
	ws := b.Writeset()
	if ws.Len() != 1 {
		t.Fatalf("duplicate rows: %v", ws.Entries)
	}
	if ws.Entries[0].Value != "b" {
		t.Fatalf("last write lost: %v", ws.Entries[0])
	}
}

func TestBuilderPutThenDelete(t *testing.T) {
	b := NewBuilder()
	b.Put(Key{"t", 1}, "x")
	b.Delete(Key{"t", 1})
	ws := b.Writeset()
	if ws.Len() != 1 || !ws.Entries[0].Delete {
		t.Fatalf("delete should supersede put: %v", ws.Entries)
	}
}

func TestConflicts(t *testing.T) {
	a := Writeset{Entries: []Entry{{Key: Key{"t", 1}}, {Key: Key{"t", 2}}}}
	b := Writeset{Entries: []Entry{{Key: Key{"t", 2}}}}
	c := Writeset{Entries: []Entry{{Key: Key{"t", 3}}, {Key: Key{"u", 1}}}}
	if !a.Conflicts(b) || !b.Conflicts(a) {
		t.Fatal("overlapping writesets must conflict")
	}
	if a.Conflicts(c) {
		t.Fatal("disjoint writesets must not conflict")
	}
	var empty Writeset
	if a.Conflicts(empty) || empty.Conflicts(a) || empty.Conflicts(empty) {
		t.Fatal("empty writesets never conflict")
	}
	// Same row id in a different table is not a conflict.
	d := Writeset{Entries: []Entry{{Key: Key{"u", 1}}}}
	e := Writeset{Entries: []Entry{{Key: Key{"t", 1}}}}
	if d.Conflicts(e) {
		t.Fatal("same row in different tables conflicted")
	}
}

func TestKeysSorted(t *testing.T) {
	ws := Writeset{Entries: []Entry{
		{Key: Key{"z", 5}}, {Key: Key{"a", 9}}, {Key: Key{"a", 2}},
	}}
	keys := ws.Keys()
	want := []Key{{"a", 2}, {"a", 9}, {"z", 5}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestBytesEstimate(t *testing.T) {
	ws := Writeset{Entries: []Entry{{Key: Key{"item", 1}, Value: "hello"}}}
	// 4 (table) + 8 (row id) + 5 (value) + 1 (flag) = 18
	if ws.Bytes() != 18 {
		t.Fatalf("Bytes = %d", ws.Bytes())
	}
}

func TestStringDeterministic(t *testing.T) {
	ws := Writeset{Entries: []Entry{{Key: Key{"b", 2}}, {Key: Key{"a", 1}}}}
	if ws.String() != "{a/1 b/2}" {
		t.Fatalf("String = %q", ws.String())
	}
}

func TestQuickConflictSymmetry(t *testing.T) {
	mk := func(rows []uint8) Writeset {
		var ws Writeset
		for _, r := range rows {
			ws.Entries = append(ws.Entries, Entry{Key: Key{"t", int64(r % 16)}})
		}
		return ws
	}
	f := func(a, b []uint8) bool {
		x, y := mk(a), mk(b)
		return x.Conflicts(y) == y.Conflicts(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConflictMatchesNaive(t *testing.T) {
	mk := func(rows []uint8) Writeset {
		var ws Writeset
		for _, r := range rows {
			ws.Entries = append(ws.Entries, Entry{Key: Key{"t", int64(r % 8)}})
		}
		return ws
	}
	naive := func(a, b Writeset) bool {
		for _, x := range a.Entries {
			for _, y := range b.Entries {
				if x.Key == y.Key {
					return true
				}
			}
		}
		return false
	}
	f := func(a, b []uint8) bool {
		x, y := mk(a), mk(b)
		return x.Conflicts(y) == naive(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPrecomputesKeySet(t *testing.T) {
	ws := New([]Entry{
		{Key: Key{Table: "a", Row: 1}, Value: "x"},
		{Key: Key{Table: "b", Row: 2}, Value: "y"},
	})
	if ws.keys == nil {
		t.Fatal("New did not precompute the key set")
	}
	if !ws.Contains(Key{Table: "a", Row: 1}) || ws.Contains(Key{Table: "a", Row: 2}) {
		t.Fatal("Contains wrong")
	}
	// Copies share the cache (the map is never mutated).
	cp := ws
	if cp.keys == nil || !cp.Contains(Key{Table: "b", Row: 2}) {
		t.Fatal("copy lost the cache")
	}
	if New(nil).keys != nil {
		t.Fatal("empty writeset allocated a key set")
	}
}

func TestBuilderWritesetCachesKeys(t *testing.T) {
	b := NewBuilder()
	b.Put(Key{Table: "t", Row: 1}, "v")
	b.Delete(Key{Table: "t", Row: 2})
	ws := b.Writeset()
	if ws.keys == nil {
		t.Fatal("Builder.Writeset did not precompute the key set")
	}
	if !ws.Contains(Key{Table: "t", Row: 2}) {
		t.Fatal("deleted key missing from set")
	}
}

func TestConflictsAllCacheCombinations(t *testing.T) {
	mk := func(cached bool, rows ...int64) Writeset {
		entries := make([]Entry, len(rows))
		for i, r := range rows {
			entries[i] = Entry{Key: Key{Table: "t", Row: r}, Value: "v"}
		}
		if cached {
			return New(entries)
		}
		return Writeset{Entries: entries}
	}
	for _, aCached := range []bool{false, true} {
		for _, bCached := range []bool{false, true} {
			a := mk(aCached, 1, 2, 3)
			b := mk(bCached, 3, 4)
			c := mk(bCached, 4, 5)
			if !a.Conflicts(b) || !b.Conflicts(a) {
				t.Fatalf("cached=%v/%v: overlap missed", aCached, bCached)
			}
			if a.Conflicts(c) || c.Conflicts(a) {
				t.Fatalf("cached=%v/%v: phantom conflict", aCached, bCached)
			}
			empty := Writeset{}
			if a.Conflicts(empty) || empty.Conflicts(a) {
				t.Fatalf("cached=%v/%v: empty conflicted", aCached, bCached)
			}
		}
	}
}

func TestContainsUncached(t *testing.T) {
	ws := Writeset{Entries: []Entry{{Key: Key{Table: "t", Row: 7}, Value: "v"}}}
	if !ws.Contains(Key{Table: "t", Row: 7}) || ws.Contains(Key{Table: "t", Row: 8}) {
		t.Fatal("uncached Contains wrong")
	}
}
