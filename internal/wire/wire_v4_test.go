package wire

import (
	"net"
	"testing"

	"repro/internal/writeset"
)

// pipeConnsAt returns two wire.Conns framing at the given negotiated
// protocol version, as both sides do after a real handshake.
func pipeConnsAt(t *testing.T, proto uint32) (*Conn, *Conn, func()) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	ca.SetProto(proto)
	cb.SetProto(proto)
	return ca, cb, func() { a.Close(); b.Close() }
}

// roundTripAt sends m across a pipe negotiated at proto.
func roundTripAt(t *testing.T, proto uint32, m Message) Message {
	t.Helper()
	ca, cb, done := pipeConnsAt(t, proto)
	defer done()
	errc := make(chan error, 1)
	go func() { errc <- ca.Send(m) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatalf("proto %d: recv %T: %v", proto, m, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("proto %d: send %T: %v", proto, m, err)
	}
	return got
}

// TestTraceRoundTripV4 checks that the protocol-4 trace-id fields on
// the commit-path messages survive the wire at the newest version.
func TestTraceRoundTripV4(t *testing.T) {
	ws := writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "item", Row: 7}, Value: "v7"},
	})
	if got := roundTripAt(t, ProtoVersion, &Begin{Trace: 0xDEADBEEFCAFE}).(*Begin); got.Trace != 0xDEADBEEFCAFE {
		t.Fatalf("Begin.Trace = %#x", got.Trace)
	}
	if got := roundTripAt(t, ProtoVersion, &BeginOK{Applied: 9, Trace: 1}).(*BeginOK); got.Trace != 1 || got.Applied != 9 {
		t.Fatalf("BeginOK = %+v", got)
	}
	cert := roundTripAt(t, ProtoVersion, &Certify{Snapshot: 4, WS: ws, Trace: 1 << 63}).(*Certify)
	if cert.Trace != 1<<63 || cert.Snapshot != 4 || !wsEqual(cert.WS, ws) {
		t.Fatalf("Certify = %+v", cert)
	}
	recs := roundTripAt(t, ProtoVersion, &Records{Recs: []Record{
		{Version: 10, WS: ws, Trace: 77, CommitNs: 1234567890},
		{Version: 11}, // zero meta must stay zero
	}}).(*Records)
	if recs.Recs[0].Trace != 77 || recs.Recs[0].CommitNs != 1234567890 {
		t.Fatalf("Records[0] meta = %+v", recs.Recs[0])
	}
	if recs.Recs[1].Trace != 0 || recs.Recs[1].CommitNs != 0 {
		t.Fatalf("Records[1] meta = %+v", recs.Recs[1])
	}
}

// TestTraceDowngradeV3 proves interop with a pre-trace peer: on a
// connection negotiated at protocol 3, the trace fields are silently
// dropped — messages round-trip without frame errors or hangs, and
// the connection keeps working afterwards.
func TestTraceDowngradeV3(t *testing.T) {
	ws := writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "item", Row: 1}, Value: "x"},
	})
	ca, cb, done := pipeConnsAt(t, 3)
	defer done()
	msgs := []Message{
		&Begin{ReadOnly: true, Trace: 42},
		&BeginOK{Applied: 5, Trace: 42},
		&Certify{Snapshot: 2, WS: ws, Trace: 42},
		&Records{Recs: []Record{{Version: 3, WS: ws, Trace: 42, CommitNs: 99}}},
		&Commit{}, // the frame after the dropped fields must still parse
	}
	errc := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		switch g := got.(type) {
		case *Begin:
			if g.Trace != 0 || !g.ReadOnly {
				t.Fatalf("v3 Begin = %+v, trace must be dropped", g)
			}
		case *BeginOK:
			if g.Trace != 0 || g.Applied != 5 {
				t.Fatalf("v3 BeginOK = %+v", g)
			}
		case *Certify:
			if g.Trace != 0 || !wsEqual(g.WS, ws) {
				t.Fatalf("v3 Certify = %+v", g)
			}
		case *Records:
			if g.Recs[0].Trace != 0 || g.Recs[0].CommitNs != 0 || g.Recs[0].Version != 3 {
				t.Fatalf("v3 Records = %+v", g.Recs[0])
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
}

// TestTraceVersionAsymmetry pins the framing rule the downgrade rests
// on: a message encoded at v3 carries no trace bytes, so a v3 frame
// decoded at v3 never sees trailing bytes, and a v4 frame at v4 round
// trips including a max-valued trace.
func TestTraceVersionAsymmetry(t *testing.T) {
	for _, proto := range []uint32{1, 2, 3, ProtoVersion} {
		got := roundTripAt(t, proto, &Begin{Trace: ^uint64(0)}).(*Begin)
		want := uint64(0)
		if proto >= 4 {
			want = ^uint64(0)
		}
		if got.Trace != want {
			t.Fatalf("proto %d: Begin.Trace = %#x, want %#x", proto, got.Trace, want)
		}
	}
}

// FuzzTraceRecordV4 fuzzes the v4 Record metadata through a full
// encode/decode cycle at both the newest and the pre-trace protocol.
func FuzzTraceRecordV4(f *testing.F) {
	f.Add(uint64(0), int64(0), int64(1), "item", int64(7), "v")
	f.Add(uint64(1), int64(-1), int64(1<<40), "", int64(-9), "")
	f.Add(^uint64(0), int64(1<<62), int64(2), "orders", int64(0), "long value \x00 with bytes")
	f.Fuzz(func(t *testing.T, trace uint64, commitNs, version int64, table string, row int64, value string) {
		ws := writeset.New([]writeset.Entry{
			{Key: writeset.Key{Table: table, Row: row}, Value: value},
		})
		rec := Record{Version: version, WS: ws, Trace: trace, CommitNs: commitNs}

		got := roundTripAt(t, ProtoVersion, &Records{Recs: []Record{rec}}).(*Records)
		g := got.Recs[0]
		if g.Trace != trace || g.CommitNs != commitNs || g.Version != version || !wsEqual(g.WS, ws) {
			t.Fatalf("v4 record mismatch: %+v vs %+v", g, rec)
		}

		old := roundTripAt(t, 3, &Records{Recs: []Record{rec}}).(*Records)
		o := old.Recs[0]
		if o.Trace != 0 || o.CommitNs != 0 || o.Version != version || !wsEqual(o.WS, ws) {
			t.Fatalf("v3 record mismatch: %+v", o)
		}
	})
}

// FuzzTraceBeginCertify fuzzes the scalar trace carriers.
func FuzzTraceBeginCertify(f *testing.F) {
	f.Add(uint64(0), int64(0), true)
	f.Add(^uint64(0), int64(-5), false)
	f.Add(uint64(1<<53), int64(1<<60), true)
	f.Fuzz(func(t *testing.T, trace uint64, snapshot int64, readOnly bool) {
		b := roundTripAt(t, ProtoVersion, &Begin{ReadOnly: readOnly, Trace: trace}).(*Begin)
		if b.Trace != trace || b.ReadOnly != readOnly {
			t.Fatalf("Begin mismatch: %+v", b)
		}
		ok := roundTripAt(t, ProtoVersion, &BeginOK{Applied: snapshot, Trace: trace}).(*BeginOK)
		if ok.Trace != trace || ok.Applied != snapshot {
			t.Fatalf("BeginOK mismatch: %+v", ok)
		}
		c := roundTripAt(t, ProtoVersion, &Certify{Snapshot: snapshot, Trace: trace}).(*Certify)
		if c.Trace != trace || c.Snapshot != snapshot {
			t.Fatalf("Certify mismatch: %+v", c)
		}
		bo := roundTripAt(t, 3, &Begin{ReadOnly: readOnly, Trace: trace}).(*Begin)
		if bo.Trace != 0 {
			t.Fatalf("v3 Begin kept trace %#x", bo.Trace)
		}
	})
}
