package wire

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/writeset"
)

// Protocol v5 re-frames Records for propagation efficiency. The
// payload is one flags byte followed by a body:
//
//	count uvarint
//	table dictionary: ntables uvarint, then each distinct table name
//	per record (delta-encoded against the previous record):
//	  version varint   — delta vs the previous record (first absolute)
//	  trace uvarint, commitNs varint (the v4 metadata)
//	  entry count uvarint, then per entry:
//	    table dictionary index uvarint, row varint, delete bool, value
//
// When recFlate is set the body is DEFLATE-compressed (stdlib flate,
// BestSpeed). The sender requests compression via Records.Compress and
// falls back to the plain body whenever compression does not shrink
// it, so a v5 frame never exceeds its v4 size by more than the flags
// byte and the dictionary savings.

// recFlate marks a DEFLATE-compressed v5 Records body.
const recFlate byte = 1 << 0

// compressMin is the smallest v5 body worth compressing; below it the
// DEFLATE header overhead dominates.
const compressMin = 128

var (
	errRecordFlags = errors.New("wire: unknown records flags")
	errRecordDict  = errors.New("wire: record table index out of range")
)

// v5Scratch holds transient body buffers: the plain body before
// optional compression on the encode side, the inflated body on the
// decode side. Decoded messages copy every retained byte out, so the
// buffers recycle safely.
var v5Scratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

func (m *Records) encodeV5(b []byte) []byte {
	sp := v5Scratch.Get().(*[]byte)
	body := appendRecordsBody((*sp)[:0], m.Recs)
	if m.Compress && len(body) >= compressMin {
		if out, ok := appendFlate(b, body); ok {
			*sp = body
			v5Scratch.Put(sp)
			return out
		}
	}
	b = append(b, 0)
	b = append(b, body...)
	*sp = body
	v5Scratch.Put(sp)
	return b
}

func (m *Records) decodeV5(d *decoder) {
	flags := d.byte()
	if d.err != nil {
		return
	}
	if flags&^recFlate != 0 {
		d.err = fmt.Errorf("%w: %#x", errRecordFlags, flags)
		return
	}
	if flags&recFlate == 0 {
		m.decodeRecordsBody(d)
		return
	}
	comp := d.b[d.off:]
	d.off = len(d.b)
	sp := v5Scratch.Get().(*[]byte)
	plain, err := inflateInto((*sp)[:0], comp)
	*sp = plain
	if err != nil {
		v5Scratch.Put(sp)
		d.err = err
		return
	}
	sub := decoder{b: plain}
	m.decodeRecordsBody(&sub)
	switch {
	case sub.err != nil:
		d.err = sub.err
	case sub.off != len(sub.b):
		d.err = ErrTrailingBytes
	}
	v5Scratch.Put(sp)
}

// appendRecordsBody encodes the plain (uncompressed) v5 body.
func appendRecordsBody(b []byte, recs []Record) []byte {
	b = appendUvarint(b, uint64(len(recs)))
	// Per-frame table dictionary: each distinct name ships once and
	// entries reference it by index. Propagation streams touch a
	// handful of tables, so a linear scan beats a map.
	var tables []string
	for _, r := range recs {
		for _, e := range r.WS.Entries {
			if tableIndex(tables, e.Key.Table) < 0 {
				tables = append(tables, e.Key.Table)
			}
		}
	}
	b = appendUvarint(b, uint64(len(tables)))
	for _, t := range tables {
		b = appendString(b, t)
	}
	prev := int64(0)
	for _, r := range recs {
		b = appendVarint(b, r.Version-prev)
		prev = r.Version
		b = appendUvarint(b, r.Trace)
		b = appendVarint(b, r.CommitNs)
		b = appendUvarint(b, uint64(len(r.WS.Entries)))
		for _, e := range r.WS.Entries {
			b = appendUvarint(b, uint64(tableIndex(tables, e.Key.Table)))
			b = appendVarint(b, e.Key.Row)
			b = appendBool(b, e.Delete)
			b = appendString(b, e.Value)
		}
	}
	return b
}

func tableIndex(tables []string, name string) int {
	for i, t := range tables {
		if t == name {
			return i
		}
	}
	return -1
}

func (m *Records) decodeRecordsBody(d *decoder) {
	n := d.uvarint()
	nt := d.uvarint()
	if d.err != nil {
		return
	}
	if nt > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	var tables []string
	if nt > 0 {
		tables = make([]string, 0, prealloc(nt))
		for i := uint64(0); i < nt; i++ {
			tables = append(tables, d.str())
		}
	}
	if d.err != nil {
		return
	}
	if n > uint64(len(d.b)-d.off) { // each record is >= 4 bytes
		d.fail()
		return
	}
	m.Recs = make([]Record, 0, prealloc(n))
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		var r Record
		r.Version = prev + d.varint()
		prev = r.Version
		r.Trace = d.uvarint()
		r.CommitNs = d.varint()
		r.WS = decodeWSDict(d, tables)
		if d.err != nil {
			return
		}
		m.Recs = append(m.Recs, r)
	}
}

// decodeWSDict decodes a writeset whose entries reference the frame's
// table dictionary by index; the entries share the dictionary strings.
func decodeWSDict(d *decoder, tables []string) writeset.Writeset {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return writeset.Writeset{}
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return writeset.Writeset{}
	}
	entries := make([]writeset.Entry, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		var e writeset.Entry
		ti := d.uvarint()
		if d.err != nil {
			return writeset.Writeset{}
		}
		if ti >= uint64(len(tables)) {
			d.err = errRecordDict
			return writeset.Writeset{}
		}
		e.Key.Table = tables[ti]
		e.Key.Row = d.varint()
		e.Delete = d.bool()
		e.Value = d.str()
		if d.err != nil {
			return writeset.Writeset{}
		}
		entries = append(entries, e)
	}
	return writeset.New(entries)
}

// sliceWriter adapts append to io.Writer for the pooled flate writer.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendFlate appends the recFlate flag and the compressed body; ok is
// false when compression failed or did not shrink the body, in which
// case b is returned truncated to its original length so the caller
// can fall back to the plain shape.
func appendFlate(b, body []byte) ([]byte, bool) {
	mark := len(b)
	sw := sliceWriter{b: append(b, recFlate)}
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&sw)
	_, werr := w.Write(body)
	cerr := w.Close()
	flateWriters.Put(w)
	if werr != nil || cerr != nil || len(sw.b)-mark-1 >= len(body) {
		return sw.b[:mark], false
	}
	return sw.b, true
}

// inflateInto decompresses comp into dst, bounded by MaxFrame so a
// hostile peer cannot amplify a small frame into unbounded memory.
func inflateInto(dst, comp []byte) ([]byte, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		flateReaders.Put(fr)
		return dst, err
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := fr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			flateReaders.Put(fr)
			return dst, fmt.Errorf("wire: inflate: %w", err)
		}
		if len(dst) > MaxFrame {
			flateReaders.Put(fr)
			return dst, ErrFrameTooLarge
		}
	}
	flateReaders.Put(fr)
	return dst, nil
}
