package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"repro/internal/writeset"
)

// pipeConns returns two wire.Conns over an in-memory full-duplex pipe.
func pipeConns(t *testing.T) (*Conn, *Conn, func()) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a), NewConn(b), func() { a.Close(); b.Close() }
}

// roundTrip sends m on one end of a pipe and returns what arrives at
// the other.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	ca, cb, done := pipeConns(t)
	defer done()
	errc := make(chan error, 1)
	go func() { errc <- ca.Send(m) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatalf("recv %T: %v", m, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send %T: %v", m, err)
	}
	return got
}

// wsEqual compares writesets by entries (the cached key set is an
// internal detail reflect.DeepEqual must not see).
func wsEqual(a, b writeset.Writeset) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

func TestRoundTripAllMessages(t *testing.T) {
	ws := writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "item", Row: 7}, Value: "v7"},
		{Key: writeset.Key{Table: "order_line", Row: -3}, Delete: true},
		{Key: writeset.Key{Table: "item", Row: 1 << 40}, Value: ""},
	})
	msgs := []Message{
		&Err{Code: CodeReadOnly, Msg: "read only"},
		&Hello{Proto: ProtoVersion},
		&HelloOK{Proto: ProtoVersion, Design: "mm", ID: 2},
		&Begin{ReadOnly: true},
		&BeginOK{Applied: 42},
		&Read{Table: "item", Row: 9},
		&ReadOK{OK: true, Value: "hello"},
		&ReadOK{OK: false},
		&Write{Table: "item", Row: -1, Value: "x"},
		&WriteOK{},
		&Delete{Table: "customer", Row: 123456789},
		&Commit{},
		&CommitOK{Applied: 17},
		&CommitAborted{ConflictWith: 16},
		&Abort{},
		&AbortOK{},
		&Sync{},
		&SyncOK{Applied: 5},
		&CreateTable{Name: "item"},
		&CreateTableOK{},
		&Load{Table: "item", Start: 100, Values: []string{"a", "", "c"}},
		&LoadOK{},
		&Dump{Table: "item"},
		&DumpOK{Rows: []int64{1, 2, 3}, Values: []string{"a", "b", "c"}},
		&Certify{Snapshot: 12, WS: ws},
		&CertifyOK{Committed: true, Version: 13},
		&CertifyOK{Committed: false, ConflictWith: 12},
		&Check{Snapshot: 3, WS: ws},
		&CheckOK{Conflict: true, With: 4},
		&FetchSince{Version: 9, WaitMillis: 250},
		&Records{Recs: []Record{{Version: 10, WS: ws}, {Version: 11}}},
		&Join{Addr: "127.0.0.1:7003"},
		&JoinOK{ID: 3, Epoch: 5, Members: []Member{{ID: 0, Addr: "a:1"}, {ID: 3, Addr: "b:2"}}},
		&Leave{ID: 3},
		&LeaveOK{},
		&SnapshotReq{},
		&SnapshotOK{Version: 40, More: true, Tables: []TableSnap{
			{Name: "item", Rows: []int64{0, 1, 5}, Values: []string{"a", "", "c"}},
			{Name: "empty"},
		}},
		&SnapshotOK{Version: 41},
		&Members{},
		&MembersOK{Epoch: 9, Members: []Member{{ID: 0, Addr: "a:1"}}},
		&Stats{},
		&StatsOK{ReadCommits: 10, UpdateCommits: 4, Aborts: 1, ReadNs: 1e9,
			UpdateNs: 5e8, Applied: 44, QueueDepth: 2, ActiveTxns: 3,
			AppliedTotal: 123, ApplyLag: 7,
			StageCounts: [6]int64{100, 0, 90, 90, 80, 100},
			StageNs:     [6]int64{5e6, 0, 2e6, 9e6, 1e6, 3e5}},
		&StatsOK{}, // tracing disabled: all stage fields zero
		&PaxosPrepare{Round: 3, Proposer: 1, Slot: 12},
		&PaxosPrepareOK{OK: true, PromisedRound: 3, PromisedProposer: 1,
			AcceptedRound: 2, AcceptedProposer: 0, AcceptedValue: `{"Version":1}`, HasAccepted: true},
		&PaxosPrepareOK{OK: false, PromisedRound: 9, PromisedProposer: 2},
		&PaxosAccept{Round: 3, Proposer: 1, Slot: 12, Value: `{"Version":1}`},
		&PaxosAcceptOK{OK: true, PromisedRound: 3, PromisedProposer: 1},
		&PaxosLearn{},
		&PaxosLearnOK{MaxSlot: -1, PromisedRound: 0, PromisedProposer: 0},
		&PaxosLearnOK{MaxSlot: 41, PromisedRound: 7, PromisedProposer: 2},
		&NotLeader{Leader: 2, Epoch: 7, Addr: "127.0.0.1:7002"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got.msgType() != m.msgType() {
			t.Fatalf("%T came back as %T", m, got)
		}
		switch want := m.(type) {
		case *Certify:
			g := got.(*Certify)
			if g.Snapshot != want.Snapshot || !wsEqual(g.WS, want.WS) {
				t.Fatalf("Certify mismatch: %+v vs %+v", g, want)
			}
		case *Check:
			g := got.(*Check)
			if g.Snapshot != want.Snapshot || !wsEqual(g.WS, want.WS) {
				t.Fatalf("Check mismatch: %+v vs %+v", g, want)
			}
		case *Records:
			g := got.(*Records)
			if len(g.Recs) != len(want.Recs) {
				t.Fatalf("Records len %d vs %d", len(g.Recs), len(want.Recs))
			}
			for i := range g.Recs {
				if g.Recs[i].Version != want.Recs[i].Version || !wsEqual(g.Recs[i].WS, want.Recs[i].WS) {
					t.Fatalf("Records[%d] mismatch", i)
				}
			}
		default:
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%T mismatch: %+v vs %+v", m, got, m)
			}
		}
	}
}

// TestRoundTripRandomWritesets is the fuzz-style encode/decode check:
// random writesets of varying shapes must survive the wire intact and
// arrive with a working key set.
func TestRoundTripRandomWritesets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tables := []string{"item", "customer", "orders", "bids", "weird table \x00 name"}
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(40)
		entries := make([]writeset.Entry, 0, n)
		for i := 0; i < n; i++ {
			e := writeset.Entry{
				Key:    writeset.Key{Table: tables[rng.Intn(len(tables))], Row: rng.Int63n(1<<50) - (1 << 49)},
				Delete: rng.Intn(4) == 0,
			}
			if !e.Delete {
				b := make([]byte, rng.Intn(64))
				rng.Read(b)
				e.Value = string(b)
			}
			entries = append(entries, e)
		}
		want := writeset.New(entries)
		got := roundTrip(t, &Certify{Snapshot: rng.Int63n(1000), WS: want}).(*Certify)
		if !wsEqual(got.WS, want) {
			t.Fatalf("iter %d: writeset corrupted over the wire", iter)
		}
		// The decoded writeset must have a functional key set.
		for _, e := range entries {
			if !got.WS.Contains(e.Key) {
				t.Fatalf("iter %d: decoded writeset missing key %v", iter, e.Key)
			}
		}
	}
}

// sendRaw writes a hand-built frame (send errors surface as the
// receiver's read error).
func sendRaw(w io.Writer, frame []byte) {
	_, _ = w.Write(frame)
}

func frame(payload []byte) []byte {
	f := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(f, uint32(len(payload)))
	return append(f, payload...)
}

func TestRecvRejectsMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"zero length", frame(nil), ErrTruncated},
		{"oversized", func() []byte {
			f := make([]byte, 4)
			binary.BigEndian.PutUint32(f, MaxFrame+1)
			return f
		}(), ErrFrameTooLarge},
		{"unknown type", frame([]byte{0xEE}), ErrUnknownMessage},
		{"truncated payload", frame([]byte{byte(TRead), 2, 'i'}), ErrTruncated},
		{"trailing bytes", frame([]byte{byte(TCommit), 1, 2, 3}), ErrTrailingBytes},
		{"writeset count overflow", frame([]byte{byte(TCertify), 0 /*snapshot*/, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F /*huge count*/}), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := net.Pipe()
			defer a.Close()
			defer b.Close()
			go sendRaw(a, tc.frame)
			_, err := NewConn(b).Recv()
			if err == nil || !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestStatsOKTruncatedStages chops bytes off an encoded StatsOK frame:
// every prefix that cuts into the stage breakdown must fail with
// ErrTruncated, never decode into a short message.
func TestStatsOKTruncatedStages(t *testing.T) {
	full := &StatsOK{ReadCommits: 10, UpdateCommits: 4, Aborts: 1, ReadNs: 1e9,
		UpdateNs: 5e8, Applied: 44, QueueDepth: 2, ActiveTxns: 3,
		AppliedTotal: 123, ApplyLag: 7,
		StageCounts: [6]int64{100, 11, 90, 90, 80, 100},
		StageNs:     [6]int64{5e6, 4e4, 2e6, 9e6, 1e6, 3e5}}
	payload := full.encode([]byte{byte(TStatsOK)})
	// The stage fields are the final 12 varints; every one is non-zero
	// above, so each drops at least one byte when truncated.
	for cut := 1; cut <= 12; cut++ {
		a, b := net.Pipe()
		go sendRaw(a, frame(payload[:len(payload)-cut]))
		_, err := NewConn(b).Recv()
		a.Close()
		b.Close()
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d bytes: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestRecvTruncatedStream(t *testing.T) {
	// A frame that promises more bytes than the stream delivers.
	var buf bytes.Buffer
	f := frame([]byte{byte(TCommit)})
	buf.Write(f[:len(f)-1])
	binary.BigEndian.PutUint32(f[:4], 10) // announce 10, deliver 1
	c := NewConn(readWriter{&buf})
	if _, err := c.Recv(); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// readWriter adapts a Buffer (reads EOF once drained).
type readWriter struct{ *bytes.Buffer }

func TestHelloRejectsBadMagic(t *testing.T) {
	payload := []byte{byte(THello), 'N', 'O', 'P', 'E', 1}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go sendRaw(a, frame(payload))
	_, err := NewConn(b).Recv()
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestSendRejectsOversizedFrame(t *testing.T) {
	var sink bytes.Buffer
	c := NewConn(readWriter{&sink})
	big := &Load{Table: "t", Values: []string{string(make([]byte, MaxFrame))}}
	if err := c.Send(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		client uint32
		want   uint32
		ok     bool
	}{
		{MinProto, MinProto, true},
		{ProtoVersion, ProtoVersion, true},
		{ProtoVersion + 5, ProtoVersion, true}, // future client: serve our newest
		{0, 0, false},                          // below MinProto: no common version
	}
	for _, tc := range cases {
		got, err := Negotiate(tc.client)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("Negotiate(%d) = %d, %v; want %d", tc.client, got, err, tc.want)
		}
		if !tc.ok && !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("Negotiate(%d) err = %v, want ErrVersionMismatch", tc.client, err)
		}
	}
}

func TestMinProtoFor(t *testing.T) {
	for _, tt := range []MsgType{TJoin, TJoinOK, TLeave, TLeaveOK, TSnapshotReq,
		TSnapshotOK, TMembers, TMembersOK, TStats, TStatsOK} {
		if MinProtoFor(tt) != 2 {
			t.Fatalf("membership message %d should require protocol 2", tt)
		}
	}
	for _, tt := range []MsgType{TPaxosPrepare, TPaxosPrepareOK, TPaxosAccept,
		TPaxosAcceptOK, TPaxosLearn, TPaxosLearnOK, TNotLeader} {
		if MinProtoFor(tt) != 3 {
			t.Fatalf("replication message %d should require protocol 3", tt)
		}
	}
	for _, tt := range []MsgType{THello, TBegin, TCommit, TCertify, TFetchSince} {
		if MinProtoFor(tt) != 1 {
			t.Fatalf("v1 message %d should require protocol 1", tt)
		}
	}
}

// TestManyFramesOneConn exercises buffer reuse across frames of
// varying size on a single connection.
func TestManyFramesOneConn(t *testing.T) {
	ca, cb, done := pipeConns(t)
	defer done()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("value-%d-%s", i, string(make([]byte, i*13%97)))
			if err := ca.Send(&Write{Table: "item", Row: int64(i), Value: v}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		w, ok := m.(*Write)
		if !ok || w.Row != int64(i) {
			t.Fatalf("frame %d: got %+v", i, m)
		}
	}
}
