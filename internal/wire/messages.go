package wire

import "repro/internal/writeset"

// MsgType identifies a frame's message.
type MsgType uint8

// Message type bytes. Gaps are left for future request/reply pairs;
// values are part of the protocol and must not be renumbered.
const (
	TErr           MsgType = 1
	THello         MsgType = 2
	THelloOK       MsgType = 3
	TBegin         MsgType = 4
	TBeginOK       MsgType = 5
	TRead          MsgType = 6
	TReadOK        MsgType = 7
	TWrite         MsgType = 8
	TWriteOK       MsgType = 9
	TDelete        MsgType = 10
	TCommit        MsgType = 11
	TCommitOK      MsgType = 12
	TCommitAborted MsgType = 13
	TAbort         MsgType = 14
	TAbortOK       MsgType = 15
	TSync          MsgType = 16
	TSyncOK        MsgType = 17
	TCreateTable   MsgType = 18
	TCreateTableOK MsgType = 19
	TLoad          MsgType = 20
	TLoadOK        MsgType = 21
	TDump          MsgType = 22
	TDumpOK        MsgType = 23
	TCertify       MsgType = 24
	TCertifyOK     MsgType = 25
	TCheck         MsgType = 26
	TCheckOK       MsgType = 27
	TFetchSince    MsgType = 28
	TRecords       MsgType = 29

	// Protocol version 2: elastic membership (online join/leave,
	// snapshot transfer, membership discovery, live stats).
	TJoin        MsgType = 30
	TJoinOK      MsgType = 31
	TLeave       MsgType = 32
	TLeaveOK     MsgType = 33
	TSnapshotReq MsgType = 34
	TSnapshotOK  MsgType = 35
	TMembers     MsgType = 36
	TMembersOK   MsgType = 37
	TStats       MsgType = 38
	TStatsOK     MsgType = 39

	// Protocol version 3: replicated certification. Paxos phase frames
	// let acceptors run inside each replica's server, and NotLeader is
	// the structured redirect a deposed certifier leader answers with.
	TPaxosPrepare   MsgType = 40
	TPaxosPrepareOK MsgType = 41
	TPaxosAccept    MsgType = 42
	TPaxosAcceptOK  MsgType = 43
	TPaxosLearn     MsgType = 44
	TPaxosLearnOK   MsgType = 45
	TNotLeader      MsgType = 46

	// Protocol version 6: horizontal partitioning. The router's
	// cross-shard two-phase commit speaks these against each
	// participating shard group's certifier leader; the shard map
	// itself rides on JoinOK/MembersOK/StatsOK fields appended at
	// proto >= 6.
	TPrepareTxn   MsgType = 47
	TPrepareTxnOK MsgType = 48
	TDecideTxn    MsgType = 49
	TDecideTxnOK  MsgType = 50
	TResolveTxn   MsgType = 51
	TResolveTxnOK MsgType = 52
	TForgetTxn    MsgType = 53
	TForgetTxnOK  MsgType = 54
)

// Error codes carried by Err.
const (
	CodeInternal    uint8 = 1 // unexpected server-side failure
	CodeBadRequest  uint8 = 2 // protocol misuse (e.g. Read without Begin)
	CodeReadOnly    uint8 = 3 // write through a read-only transaction
	CodeUnsupported uint8 = 4 // operation this node does not serve
	CodeNoTable     uint8 = 5 // unknown table
	CodeDraining    uint8 = 6 // replica is leaving; reroute and retry elsewhere
	CodeProto       uint8 = 7 // message requires a newer negotiated protocol
	CodeNotLeader   uint8 = 8 // certifier leadership moved; v2 fallback for NotLeader
)

// Message is one protocol message; concrete types below implement it.
type Message interface {
	msgType() MsgType
	encode(b []byte) []byte
	decode(d *decoder)
}

// newMessage returns a zero message for a type byte, or nil.
func newMessage(t MsgType) Message {
	switch t {
	case TErr:
		return &Err{}
	case THello:
		return &Hello{}
	case THelloOK:
		return &HelloOK{}
	case TBegin:
		return &Begin{}
	case TBeginOK:
		return &BeginOK{}
	case TRead:
		return &Read{}
	case TReadOK:
		return &ReadOK{}
	case TWrite:
		return &Write{}
	case TWriteOK:
		return &WriteOK{}
	case TDelete:
		return &Delete{}
	case TCommit:
		return &Commit{}
	case TCommitOK:
		return &CommitOK{}
	case TCommitAborted:
		return &CommitAborted{}
	case TAbort:
		return &Abort{}
	case TAbortOK:
		return &AbortOK{}
	case TSync:
		return &Sync{}
	case TSyncOK:
		return &SyncOK{}
	case TCreateTable:
		return &CreateTable{}
	case TCreateTableOK:
		return &CreateTableOK{}
	case TLoad:
		return &Load{}
	case TLoadOK:
		return &LoadOK{}
	case TDump:
		return &Dump{}
	case TDumpOK:
		return &DumpOK{}
	case TCertify:
		return &Certify{}
	case TCertifyOK:
		return &CertifyOK{}
	case TCheck:
		return &Check{}
	case TCheckOK:
		return &CheckOK{}
	case TFetchSince:
		return &FetchSince{}
	case TRecords:
		return &Records{}
	case TJoin:
		return &Join{}
	case TJoinOK:
		return &JoinOK{}
	case TLeave:
		return &Leave{}
	case TLeaveOK:
		return &LeaveOK{}
	case TSnapshotReq:
		return &SnapshotReq{}
	case TSnapshotOK:
		return &SnapshotOK{}
	case TMembers:
		return &Members{}
	case TMembersOK:
		return &MembersOK{}
	case TStats:
		return &Stats{}
	case TStatsOK:
		return &StatsOK{}
	case TPaxosPrepare:
		return &PaxosPrepare{}
	case TPaxosPrepareOK:
		return &PaxosPrepareOK{}
	case TPaxosAccept:
		return &PaxosAccept{}
	case TPaxosAcceptOK:
		return &PaxosAcceptOK{}
	case TPaxosLearn:
		return &PaxosLearn{}
	case TPaxosLearnOK:
		return &PaxosLearnOK{}
	case TNotLeader:
		return &NotLeader{}
	case TPrepareTxn:
		return &PrepareTxn{}
	case TPrepareTxnOK:
		return &PrepareTxnOK{}
	case TDecideTxn:
		return &DecideTxn{}
	case TDecideTxnOK:
		return &DecideTxnOK{}
	case TResolveTxn:
		return &ResolveTxn{}
	case TResolveTxnOK:
		return &ResolveTxnOK{}
	case TForgetTxn:
		return &ForgetTxn{}
	case TForgetTxnOK:
		return &ForgetTxnOK{}
	default:
		return nil
	}
}

// Err is the generic failure reply.
type Err struct {
	Code uint8
	Msg  string
}

func (*Err) msgType() MsgType { return TErr }
func (m *Err) encode(b []byte) []byte {
	b = append(b, m.Code)
	return appendString(b, m.Msg)
}
func (m *Err) decode(d *decoder) {
	m.Code = d.byte()
	m.Msg = d.str()
}

// Hello opens every connection: magic, protocol version, and the
// caller's identity. PeerID is the replica id of a peer link (so the
// primary can key propagation cursors by replica, not by connection);
// ordinary clients send -1.
type Hello struct {
	Proto  uint32
	PeerID int64
}

func (*Hello) msgType() MsgType { return THello }
func (m *Hello) encode(b []byte) []byte {
	b = append(b, magic[:]...)
	b = appendUvarint(b, uint64(m.Proto))
	return appendVarint(b, m.PeerID)
}
func (m *Hello) decode(d *decoder) {
	for i := range magic {
		if d.byte() != magic[i] && d.err == nil {
			d.err = ErrBadMagic
		}
	}
	m.Proto = uint32(d.uvarint())
	m.PeerID = d.varint()
}

// HelloOK acknowledges the handshake and identifies the server.
type HelloOK struct {
	Proto  uint32
	Design string // "mm" or "sm"
	ID     int64  // replica id
}

func (*HelloOK) msgType() MsgType { return THelloOK }
func (m *HelloOK) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Proto))
	b = appendString(b, m.Design)
	return appendVarint(b, m.ID)
}
func (m *HelloOK) decode(d *decoder) {
	m.Proto = uint32(d.uvarint())
	m.Design = d.str()
	m.ID = d.varint()
}

// Begin starts a transaction on this connection (one at a time).
// Trace (protocol v4) is the client-chosen commit-path trace id; 0
// asks the server to assign one. On v3 connections the field is
// neither sent nor expected.
type Begin struct {
	ReadOnly bool
	Trace    uint64
}

func (*Begin) msgType() MsgType         { return TBegin }
func (m *Begin) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *Begin) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *Begin) encodeV(b []byte, proto uint32) []byte {
	b = appendBool(b, m.ReadOnly)
	if proto >= 4 {
		b = appendUvarint(b, m.Trace)
	}
	return b
}
func (m *Begin) decodeV(d *decoder, proto uint32) {
	m.ReadOnly = d.bool()
	if proto >= 4 {
		m.Trace = d.uvarint()
	} else {
		m.Trace = 0
	}
}

// BeginOK acknowledges Begin; Applied is the replica's applied global
// version at begin time (informational — the GSI snapshot). Trace
// (protocol v4) echoes the transaction's trace id, server-assigned
// when the Begin carried 0.
type BeginOK struct {
	Applied int64
	Trace   uint64
}

func (*BeginOK) msgType() MsgType         { return TBeginOK }
func (m *BeginOK) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *BeginOK) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *BeginOK) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.Applied)
	if proto >= 4 {
		b = appendUvarint(b, m.Trace)
	}
	return b
}
func (m *BeginOK) decodeV(d *decoder, proto uint32) {
	m.Applied = d.varint()
	if proto >= 4 {
		m.Trace = d.uvarint()
	} else {
		m.Trace = 0
	}
}

// Read asks for one row inside the connection's transaction.
type Read struct {
	Table string
	Row   int64
}

func (*Read) msgType() MsgType { return TRead }
func (m *Read) encode(b []byte) []byte {
	b = appendString(b, m.Table)
	return appendVarint(b, m.Row)
}
func (m *Read) decode(d *decoder) {
	m.Table = d.str()
	m.Row = d.varint()
}

// ReadOK returns the visible value; OK is false for absent rows.
type ReadOK struct {
	OK    bool
	Value string
}

func (*ReadOK) msgType() MsgType { return TReadOK }
func (m *ReadOK) encode(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendString(b, m.Value)
}
func (m *ReadOK) decode(d *decoder) {
	m.OK = d.bool()
	m.Value = d.str()
}

// Write stages an update inside the connection's transaction.
type Write struct {
	Table string
	Row   int64
	Value string
}

func (*Write) msgType() MsgType { return TWrite }
func (m *Write) encode(b []byte) []byte {
	b = appendString(b, m.Table)
	b = appendVarint(b, m.Row)
	return appendString(b, m.Value)
}
func (m *Write) decode(d *decoder) {
	m.Table = d.str()
	m.Row = d.varint()
	m.Value = d.str()
}

// WriteOK acknowledges Write or Delete.
type WriteOK struct{}

func (*WriteOK) msgType() MsgType         { return TWriteOK }
func (m *WriteOK) encode(b []byte) []byte { return b }
func (m *WriteOK) decode(*decoder)        {}

// Delete stages a row removal.
type Delete struct {
	Table string
	Row   int64
}

func (*Delete) msgType() MsgType { return TDelete }
func (m *Delete) encode(b []byte) []byte {
	b = appendString(b, m.Table)
	return appendVarint(b, m.Row)
}
func (m *Delete) decode(d *decoder) {
	m.Table = d.str()
	m.Row = d.varint()
}

// Commit finishes the connection's transaction.
type Commit struct{}

func (*Commit) msgType() MsgType         { return TCommit }
func (m *Commit) encode(b []byte) []byte { return b }
func (m *Commit) decode(*decoder)        {}

// CommitOK reports a successful commit. Applied is the replica's
// applied global version when the commit was acknowledged —
// informational only: under asynchronous application it may still lag
// the version the certifier assigned to this transaction.
type CommitOK struct {
	Applied int64
}

func (*CommitOK) msgType() MsgType         { return TCommitOK }
func (m *CommitOK) encode(b []byte) []byte { return appendVarint(b, m.Applied) }
func (m *CommitOK) decode(d *decoder)      { m.Applied = d.varint() }

// CommitAborted reports a certification (write-write conflict) abort;
// the client retries on a fresh snapshot.
type CommitAborted struct {
	ConflictWith int64
}

func (*CommitAborted) msgType() MsgType         { return TCommitAborted }
func (m *CommitAborted) encode(b []byte) []byte { return appendVarint(b, m.ConflictWith) }
func (m *CommitAborted) decode(d *decoder)      { m.ConflictWith = d.varint() }

// Abort discards the connection's transaction.
type Abort struct{}

func (*Abort) msgType() MsgType         { return TAbort }
func (m *Abort) encode(b []byte) []byte { return b }
func (m *Abort) decode(*decoder)        {}

// AbortOK acknowledges Abort.
type AbortOK struct{}

func (*AbortOK) msgType() MsgType         { return TAbortOK }
func (m *AbortOK) encode(b []byte) []byte { return b }
func (m *AbortOK) decode(*decoder)        {}

// Sync asks the replica to apply every writeset committed so far.
type Sync struct{}

func (*Sync) msgType() MsgType         { return TSync }
func (m *Sync) encode(b []byte) []byte { return b }
func (m *Sync) decode(*decoder)        {}

// SyncOK reports the applied version after the sync.
type SyncOK struct {
	Applied int64
}

func (*SyncOK) msgType() MsgType         { return TSyncOK }
func (m *SyncOK) encode(b []byte) []byte { return appendVarint(b, m.Applied) }
func (m *SyncOK) decode(d *decoder)      { m.Applied = d.varint() }

// CreateTable makes an empty table (initial load path).
type CreateTable struct {
	Name string
}

func (*CreateTable) msgType() MsgType         { return TCreateTable }
func (m *CreateTable) encode(b []byte) []byte { return appendString(b, m.Name) }
func (m *CreateTable) decode(d *decoder)      { m.Name = d.str() }

// CreateTableOK acknowledges CreateTable.
type CreateTableOK struct{}

func (*CreateTableOK) msgType() MsgType         { return TCreateTableOK }
func (m *CreateTableOK) encode(b []byte) []byte { return b }
func (m *CreateTableOK) decode(*decoder)        {}

// Load bulk-installs one chunk of rows [Start, Start+len(Values)),
// bypassing concurrency control — the initial load path. Chunks must
// be sent in the same order to every replica so versions stay aligned.
type Load struct {
	Table  string
	Start  int64
	Values []string
}

func (*Load) msgType() MsgType { return TLoad }
func (m *Load) encode(b []byte) []byte {
	b = appendString(b, m.Table)
	b = appendVarint(b, m.Start)
	b = appendUvarint(b, uint64(len(m.Values)))
	for _, v := range m.Values {
		b = appendString(b, v)
	}
	return b
}
func (m *Load) decode(d *decoder) {
	m.Table = d.str()
	m.Start = d.varint()
	n := d.uvarint()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	m.Values = make([]string, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		m.Values = append(m.Values, d.str())
	}
}

// LoadOK acknowledges one Load chunk.
type LoadOK struct{}

func (*LoadOK) msgType() MsgType         { return TLoadOK }
func (m *LoadOK) encode(b []byte) []byte { return b }
func (m *LoadOK) decode(*decoder)        {}

// Dump asks for a full table snapshot (convergence checks).
type Dump struct {
	Table string
}

func (*Dump) msgType() MsgType         { return TDump }
func (m *Dump) encode(b []byte) []byte { return appendString(b, m.Table) }
func (m *Dump) decode(d *decoder)      { m.Table = d.str() }

// DumpOK returns the table contents as parallel row/value slices.
type DumpOK struct {
	Rows   []int64
	Values []string
}

func (*DumpOK) msgType() MsgType { return TDumpOK }
func (m *DumpOK) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(len(m.Rows)))
	for i, r := range m.Rows {
		b = appendVarint(b, r)
		b = appendString(b, m.Values[i])
	}
	return b
}
func (m *DumpOK) decode(d *decoder) {
	n := d.uvarint()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	m.Rows = make([]int64, 0, prealloc(n))
	m.Values = make([]string, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		m.Rows = append(m.Rows, d.varint())
		m.Values = append(m.Values, d.str())
	}
}

// Certify submits a commit-time certification request to the
// certifier host (replica 0 in the mm design). Trace (protocol v4)
// carries the submitting transaction's trace id so the leader's
// certify/paxos/journal/fsync spans stitch to the client's.
type Certify struct {
	Snapshot int64
	WS       writeset.Writeset
	Trace    uint64
}

func (*Certify) msgType() MsgType { return TCertify }
func (m *Certify) encode(b []byte) []byte {
	return m.encodeV(b, ProtoVersion)
}
func (m *Certify) decode(d *decoder) {
	m.decodeV(d, ProtoVersion)
}
func (m *Certify) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.Snapshot)
	b = appendWriteset(b, m.WS)
	if proto >= 4 {
		b = appendUvarint(b, m.Trace)
	}
	return b
}
func (m *Certify) decodeV(d *decoder, proto uint32) {
	m.Snapshot = d.varint()
	m.WS = decodeWriteset(d)
	if proto >= 4 {
		m.Trace = d.uvarint()
	} else {
		m.Trace = 0
	}
}

// CertifyOK carries the certification outcome.
type CertifyOK struct {
	Committed    bool
	Version      int64
	ConflictWith int64
}

func (*CertifyOK) msgType() MsgType { return TCertifyOK }
func (m *CertifyOK) encode(b []byte) []byte {
	b = appendBool(b, m.Committed)
	b = appendVarint(b, m.Version)
	return appendVarint(b, m.ConflictWith)
}
func (m *CertifyOK) decode(d *decoder) {
	m.Committed = d.bool()
	m.Version = d.varint()
	m.ConflictWith = d.varint()
}

// Check is the eager (non-binding) conflict probe of §5.1.
type Check struct {
	Snapshot int64
	WS       writeset.Writeset
}

func (*Check) msgType() MsgType { return TCheck }
func (m *Check) encode(b []byte) []byte {
	b = appendVarint(b, m.Snapshot)
	return appendWriteset(b, m.WS)
}
func (m *Check) decode(d *decoder) {
	m.Snapshot = d.varint()
	m.WS = decodeWriteset(d)
}

// CheckOK reports whether the partial writeset already conflicts.
type CheckOK struct {
	Conflict bool
	With     int64
}

func (*CheckOK) msgType() MsgType { return TCheckOK }
func (m *CheckOK) encode(b []byte) []byte {
	b = appendBool(b, m.Conflict)
	return appendVarint(b, m.With)
}
func (m *CheckOK) decode(d *decoder) {
	m.Conflict = d.bool()
	m.With = d.varint()
}

// FetchSince asks the certifier host (mm) or master (sm) for all
// certified writesets with version > Version. WaitMillis > 0 turns the
// request into a long poll: the server holds it until new records
// arrive or the wait expires, which is how the peer links propagate
// writesets without busy polling.
type FetchSince struct {
	Version    int64
	WaitMillis uint32
	// NoCompress (protocol v5) asks the server to skip DEFLATE on the
	// Records reply body for this fetch — for benchmarking and
	// CPU-bound pullers. Older connections never carry it.
	NoCompress bool
}

func (*FetchSince) msgType() MsgType         { return TFetchSince }
func (m *FetchSince) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *FetchSince) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *FetchSince) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.Version)
	b = appendUvarint(b, uint64(m.WaitMillis))
	if proto >= 5 {
		b = appendBool(b, m.NoCompress)
	}
	return b
}
func (m *FetchSince) decodeV(d *decoder, proto uint32) {
	m.Version = d.varint()
	m.WaitMillis = uint32(d.uvarint())
	if proto >= 5 {
		m.NoCompress = d.bool()
	} else {
		m.NoCompress = false
	}
}

// Record is one certified writeset with its global version. Trace and
// CommitNs (protocol v4) carry the originating transaction's trace id
// and the leader's commit wall-clock (UnixNano), letting every
// replica stitch its apply span onto the transaction's trace and
// measure commit-to-visible replication lag. Both are 0 on v3
// connections or when the leader has tracing disabled.
type Record struct {
	Version  int64
	WS       writeset.Writeset
	Trace    uint64
	CommitNs int64
}

// Records answers FetchSince with an ascending run of records. On
// protocol v5 connections the payload uses the compact propagation
// shape (per-frame table dictionary, delta-encoded versions, optional
// DEFLATE body — see records_v5.go); older connections keep the flat
// per-record shape.
type Records struct {
	Recs []Record
	// Compress asks the encoder to DEFLATE the v5 body. It is
	// sender-side intent, never transmitted: the frame's flags byte
	// records what actually happened (the encoder falls back to the
	// plain body when compression does not pay).
	Compress bool
}

func (*Records) msgType() MsgType { return TRecords }
func (m *Records) encode(b []byte) []byte {
	return m.encodeV(b, ProtoVersion)
}
func (m *Records) decode(d *decoder) {
	m.decodeV(d, ProtoVersion)
}
func (m *Records) encodeV(b []byte, proto uint32) []byte {
	if proto >= 5 {
		return m.encodeV5(b)
	}
	b = appendUvarint(b, uint64(len(m.Recs)))
	for _, r := range m.Recs {
		b = appendVarint(b, r.Version)
		b = appendWriteset(b, r.WS)
		if proto >= 4 {
			b = appendUvarint(b, r.Trace)
			b = appendVarint(b, r.CommitNs)
		}
	}
	return b
}
func (m *Records) decodeV(d *decoder, proto uint32) {
	if proto >= 5 {
		m.decodeV5(d)
		return
	}
	n := d.uvarint()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	m.Recs = make([]Record, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		var r Record
		r.Version = d.varint()
		r.WS = decodeWriteset(d)
		if proto >= 4 {
			r.Trace = d.uvarint()
			r.CommitNs = d.varint()
		}
		m.Recs = append(m.Recs, r)
	}
}

// Member is one cluster member as published by the primary: the
// replica id and the address its server listens on.
type Member struct {
	ID   int64
	Addr string
}

func appendMembers(b []byte, members []Member) []byte {
	b = appendUvarint(b, uint64(len(members)))
	for _, m := range members {
		b = appendVarint(b, m.ID)
		b = appendString(b, m.Addr)
	}
	return b
}

func decodeMembers(d *decoder) []Member {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	out := make([]Member, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		var m Member
		m.ID = d.varint()
		m.Addr = d.str()
		out = append(out, m)
	}
	return out
}

// Join asks the primary to admit a new replica into the cluster
// (protocol v2). Addr is the address the joiner's own server listens
// on, which the primary publishes to clients via Members. The primary
// assigns the replica id, registers a propagation cursor expectation
// (blocking certification-log GC until the joiner starts pulling) and
// bumps the membership epoch.
type Join struct {
	Addr string
}

func (*Join) msgType() MsgType         { return TJoin }
func (m *Join) encode(b []byte) []byte { return appendString(b, m.Addr) }
func (m *Join) decode(d *decoder)      { m.Addr = d.str() }

// JoinOK admits the joiner: its assigned replica id, the membership
// epoch after admission, and the current member list (joiner
// included).
type JoinOK struct {
	ID      int64
	Epoch   int64
	Members []Member
	// Shard map block (protocol v6): which shard group this server
	// belongs to, how many groups partition the keyspace, and the map
	// version clients use to detect a re-partition. ShardCount 0 means
	// unsharded (a pre-v6 server or a standalone deployment).
	ShardID    int64
	ShardCount int64
	MapVersion int64
}

func (*JoinOK) msgType() MsgType         { return TJoinOK }
func (m *JoinOK) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *JoinOK) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *JoinOK) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.ID)
	b = appendVarint(b, m.Epoch)
	b = appendMembers(b, m.Members)
	if proto >= 6 {
		b = appendVarint(b, m.ShardID)
		b = appendVarint(b, m.ShardCount)
		b = appendVarint(b, m.MapVersion)
	}
	return b
}
func (m *JoinOK) decodeV(d *decoder, proto uint32) {
	m.ID = d.varint()
	m.Epoch = d.varint()
	m.Members = decodeMembers(d)
	m.ShardID, m.ShardCount, m.MapVersion = 0, 0, 0
	if proto >= 6 {
		m.ShardID = d.varint()
		m.ShardCount = d.varint()
		m.MapVersion = d.varint()
	}
}

// Leave deregisters replica ID from the cluster (protocol v2): its
// propagation cursor stops gating certification-log GC and clients
// learn the departure through the next Members poll.
type Leave struct {
	ID int64
}

func (*Leave) msgType() MsgType         { return TLeave }
func (m *Leave) encode(b []byte) []byte { return appendVarint(b, m.ID) }
func (m *Leave) decode(d *decoder)      { m.ID = d.varint() }

// LeaveOK acknowledges Leave.
type LeaveOK struct{}

func (*LeaveOK) msgType() MsgType         { return TLeaveOK }
func (m *LeaveOK) encode(b []byte) []byte { return b }
func (m *LeaveOK) decode(*decoder)        {}

// SnapshotReq asks the primary for a consistent full-state snapshot
// (protocol v2): every table's contents at one applied version. The
// snapshot streams as a sequence of SnapshotOK chunks over ONE
// connection — the server pins the whole snapshot on the first
// request and each further SnapshotReq on the same connection fetches
// the next chunk until More is false. The joiner installs the merged
// chunks, then catches up from Version via FetchSince — the
// state-transfer half of the join protocol.
type SnapshotReq struct{}

func (*SnapshotReq) msgType() MsgType         { return TSnapshotReq }
func (m *SnapshotReq) encode(b []byte) []byte { return b }
func (m *SnapshotReq) decode(*decoder)        {}

// TableSnap is one table's full contents inside a snapshot.
type TableSnap struct {
	Name   string
	Rows   []int64
	Values []string
}

// SnapshotOK carries one chunk of the snapshot: the applied version
// the whole snapshot is consistent at, a run of table contents (a
// large table may span several chunks under the same Name), and
// whether more chunks follow. Writesets certified after Version are
// NOT included; the joiner fetches them with FetchSince(Version).
type SnapshotOK struct {
	Version int64
	More    bool
	Tables  []TableSnap
}

func (*SnapshotOK) msgType() MsgType { return TSnapshotOK }
func (m *SnapshotOK) encode(b []byte) []byte {
	b = appendVarint(b, m.Version)
	b = appendBool(b, m.More)
	b = appendUvarint(b, uint64(len(m.Tables)))
	for _, t := range m.Tables {
		b = appendString(b, t.Name)
		b = appendUvarint(b, uint64(len(t.Rows)))
		for i, r := range t.Rows {
			b = appendVarint(b, r)
			b = appendString(b, t.Values[i])
		}
	}
	return b
}
func (m *SnapshotOK) decode(d *decoder) {
	m.Version = d.varint()
	m.More = d.bool()
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return
	}
	m.Tables = make([]TableSnap, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		var t TableSnap
		t.Name = d.str()
		rows := d.uvarint()
		if d.err != nil {
			return
		}
		if rows > uint64(len(d.b)-d.off) {
			d.fail()
			return
		}
		if rows > 0 {
			t.Rows = make([]int64, 0, prealloc(rows))
			t.Values = make([]string, 0, prealloc(rows))
		}
		for j := uint64(0); j < rows; j++ {
			t.Rows = append(t.Rows, d.varint())
			t.Values = append(t.Values, d.str())
		}
		m.Tables = append(m.Tables, t)
	}
}

// Members asks the primary for the current membership (protocol v2).
// Clients poll it to resize their connection pools when replicas join
// or leave; the epoch lets them skip unchanged replies cheaply.
type Members struct{}

func (*Members) msgType() MsgType         { return TMembers }
func (m *Members) encode(b []byte) []byte { return b }
func (m *Members) decode(*decoder)        {}

// MembersOK is the current membership and its epoch (bumped on every
// join or leave).
type MembersOK struct {
	Epoch   int64
	Members []Member
	// Shard map block (protocol v6), mirroring JoinOK: the answering
	// group's shard id, the group count and the map version. Clients
	// poll Members anyway for membership churn, so the shard map rides
	// along for free.
	ShardID    int64
	ShardCount int64
	MapVersion int64
}

func (*MembersOK) msgType() MsgType         { return TMembersOK }
func (m *MembersOK) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *MembersOK) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *MembersOK) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.Epoch)
	b = appendMembers(b, m.Members)
	if proto >= 6 {
		b = appendVarint(b, m.ShardID)
		b = appendVarint(b, m.ShardCount)
		b = appendVarint(b, m.MapVersion)
	}
	return b
}
func (m *MembersOK) decodeV(d *decoder, proto uint32) {
	m.Epoch = d.varint()
	m.Members = decodeMembers(d)
	m.ShardID, m.ShardCount, m.MapVersion = 0, 0, 0
	if proto >= 6 {
		m.ShardID = d.varint()
		m.ShardCount = d.varint()
		m.MapVersion = d.varint()
	}
}

// Stats asks a replica for its cumulative serving counters (protocol
// v2). The elastic controller polls these and differences successive
// samples into a live workload profile.
type Stats struct{}

func (*Stats) msgType() MsgType         { return TStats }
func (m *Stats) encode(b []byte) []byte { return b }
func (m *Stats) decode(*decoder)        {}

// StatsOK carries one replica's cumulative counters: per-class commit
// counts and summed client-visible latencies (nanoseconds), abort
// count, the applied version, the propagation queue depth, and the
// apply stage's cumulative throughput counter and current lag.
// AppliedTotal is monotone, so pollers difference successive samples
// into applied-versions/sec the same way the elastic profiler
// differences commit counts. (Stats consumers — the profiler, the
// autoscaler and the bench watcher — are build-lockstep tools polling
// their own cluster, which is what permits growing this message in
// place.)
type StatsOK struct {
	ReadCommits   int64
	UpdateCommits int64
	Aborts        int64
	ReadNs        int64
	UpdateNs      int64
	Applied       int64
	QueueDepth    int64
	ActiveTxns    int64
	AppliedTotal  int64
	ApplyLag      int64
	// StageCounts / StageNs are the commit-path stage breakdown:
	// cumulative observation counts and summed nanoseconds, indexed
	// by pipeline stage order (certify, paxos, journal, fsync, apply,
	// ack — pipeline.Stage* constants). Zero everywhere when tracing
	// is disabled at the replica.
	StageCounts [6]int64
	StageNs     [6]int64
	// Identity and replication-lag block (added with protocol v4,
	// though the message itself grows in place per the lockstep note
	// above): the answering replica's id, its view of the certifier
	// election epoch and whether it currently leads, and cumulative
	// commit-to-visible replication-lag observations (count, summed
	// nanoseconds, worst single observation).
	ReplicaID int64
	Epoch     int64
	Leading   bool
	LagCount  int64
	LagSumNs  int64
	LagMaxNs  int64
	// ShardID identifies the shard group this replica serves
	// (protocol v6; 0 in unsharded deployments).
	ShardID int64
}

func (*StatsOK) msgType() MsgType         { return TStatsOK }
func (m *StatsOK) encode(b []byte) []byte { return m.encodeV(b, ProtoVersion) }
func (m *StatsOK) decode(d *decoder)      { m.decodeV(d, ProtoVersion) }
func (m *StatsOK) encodeV(b []byte, proto uint32) []byte {
	b = appendVarint(b, m.ReadCommits)
	b = appendVarint(b, m.UpdateCommits)
	b = appendVarint(b, m.Aborts)
	b = appendVarint(b, m.ReadNs)
	b = appendVarint(b, m.UpdateNs)
	b = appendVarint(b, m.Applied)
	b = appendVarint(b, m.QueueDepth)
	b = appendVarint(b, m.ActiveTxns)
	b = appendVarint(b, m.AppliedTotal)
	b = appendVarint(b, m.ApplyLag)
	for _, c := range m.StageCounts {
		b = appendVarint(b, c)
	}
	for _, ns := range m.StageNs {
		b = appendVarint(b, ns)
	}
	b = appendVarint(b, m.ReplicaID)
	b = appendVarint(b, m.Epoch)
	b = appendBool(b, m.Leading)
	b = appendVarint(b, m.LagCount)
	b = appendVarint(b, m.LagSumNs)
	b = appendVarint(b, m.LagMaxNs)
	if proto >= 6 {
		b = appendVarint(b, m.ShardID)
	}
	return b
}
func (m *StatsOK) decodeV(d *decoder, proto uint32) {
	m.ReadCommits = d.varint()
	m.UpdateCommits = d.varint()
	m.Aborts = d.varint()
	m.ReadNs = d.varint()
	m.UpdateNs = d.varint()
	m.Applied = d.varint()
	m.QueueDepth = d.varint()
	m.ActiveTxns = d.varint()
	m.AppliedTotal = d.varint()
	m.ApplyLag = d.varint()
	for i := range m.StageCounts {
		m.StageCounts[i] = d.varint()
	}
	for i := range m.StageNs {
		m.StageNs[i] = d.varint()
	}
	m.ReplicaID = d.varint()
	m.Epoch = d.varint()
	m.Leading = d.bool()
	m.LagCount = d.varint()
	m.LagSumNs = d.varint()
	m.LagMaxNs = d.varint()
	m.ShardID = 0
	if proto >= 6 {
		m.ShardID = d.varint()
	}
}

// PaxosPrepare is phase 1a of the replicated certification log
// (protocol v3), addressed to the acceptor embedded in this server.
type PaxosPrepare struct {
	Round    int64
	Proposer int64
	Slot     int64
}

func (*PaxosPrepare) msgType() MsgType { return TPaxosPrepare }
func (m *PaxosPrepare) encode(b []byte) []byte {
	b = appendVarint(b, m.Round)
	b = appendVarint(b, m.Proposer)
	return appendVarint(b, m.Slot)
}
func (m *PaxosPrepare) decode(d *decoder) {
	m.Round = d.varint()
	m.Proposer = d.varint()
	m.Slot = d.varint()
}

// PaxosPrepareOK answers PaxosPrepare: the acceptor's promise after
// the call and any value it already accepted for the slot.
type PaxosPrepareOK struct {
	OK               bool
	PromisedRound    int64
	PromisedProposer int64
	AcceptedRound    int64
	AcceptedProposer int64
	AcceptedValue    string
	HasAccepted      bool
}

func (*PaxosPrepareOK) msgType() MsgType { return TPaxosPrepareOK }
func (m *PaxosPrepareOK) encode(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendVarint(b, m.PromisedRound)
	b = appendVarint(b, m.PromisedProposer)
	b = appendVarint(b, m.AcceptedRound)
	b = appendVarint(b, m.AcceptedProposer)
	b = appendString(b, m.AcceptedValue)
	return appendBool(b, m.HasAccepted)
}
func (m *PaxosPrepareOK) decode(d *decoder) {
	m.OK = d.bool()
	m.PromisedRound = d.varint()
	m.PromisedProposer = d.varint()
	m.AcceptedRound = d.varint()
	m.AcceptedProposer = d.varint()
	m.AcceptedValue = d.str()
	m.HasAccepted = d.bool()
}

// PaxosAccept is phase 2a: vote for value in slot under the ballot.
type PaxosAccept struct {
	Round    int64
	Proposer int64
	Slot     int64
	Value    string
}

func (*PaxosAccept) msgType() MsgType { return TPaxosAccept }
func (m *PaxosAccept) encode(b []byte) []byte {
	b = appendVarint(b, m.Round)
	b = appendVarint(b, m.Proposer)
	b = appendVarint(b, m.Slot)
	return appendString(b, m.Value)
}
func (m *PaxosAccept) decode(d *decoder) {
	m.Round = d.varint()
	m.Proposer = d.varint()
	m.Slot = d.varint()
	m.Value = d.str()
}

// PaxosAcceptOK answers PaxosAccept.
type PaxosAcceptOK struct {
	OK               bool
	PromisedRound    int64
	PromisedProposer int64
}

func (*PaxosAcceptOK) msgType() MsgType { return TPaxosAcceptOK }
func (m *PaxosAcceptOK) encode(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendVarint(b, m.PromisedRound)
	return appendVarint(b, m.PromisedProposer)
}
func (m *PaxosAcceptOK) decode(d *decoder) {
	m.OK = d.bool()
	m.PromisedRound = d.varint()
	m.PromisedProposer = d.varint()
}

// PaxosLearn asks the acceptor for its status — the first step of a
// leader election.
type PaxosLearn struct{}

func (*PaxosLearn) msgType() MsgType         { return TPaxosLearn }
func (m *PaxosLearn) encode(b []byte) []byte { return b }
func (m *PaxosLearn) decode(*decoder)        {}

// PaxosLearnOK answers PaxosLearn: the highest voted slot (-1 when
// none) and the acceptor's current promise.
type PaxosLearnOK struct {
	MaxSlot          int64
	PromisedRound    int64
	PromisedProposer int64
}

func (*PaxosLearnOK) msgType() MsgType { return TPaxosLearnOK }
func (m *PaxosLearnOK) encode(b []byte) []byte {
	b = appendVarint(b, m.MaxSlot)
	b = appendVarint(b, m.PromisedRound)
	return appendVarint(b, m.PromisedProposer)
}
func (m *PaxosLearnOK) decode(d *decoder) {
	m.MaxSlot = d.varint()
	m.PromisedRound = d.varint()
	m.PromisedProposer = d.varint()
}

// NotLeader is the structured redirect a deposed certifier leader
// answers certification requests with (protocol v3; v2 peers get
// Err{CodeNotLeader}): the paxos id of the node that deposed it, the
// deposing epoch (round of the winning ballot), and that node's
// address when known ("" otherwise — the client falls back to the
// Members protocol).
type NotLeader struct {
	Leader int64
	Epoch  int64
	Addr   string
}

func (*NotLeader) msgType() MsgType { return TNotLeader }
func (m *NotLeader) encode(b []byte) []byte {
	b = appendVarint(b, m.Leader)
	b = appendVarint(b, m.Epoch)
	return appendString(b, m.Addr)
}
func (m *NotLeader) decode(d *decoder) {
	m.Leader = d.varint()
	m.Epoch = d.varint()
	m.Addr = d.str()
}

// PrepareTxn runs the first two-phase-commit phase for one fragment
// of cross-shard transaction TxnID at this shard group (protocol v6):
// certify WS against Snapshot and, on a yes vote, journal the fragment
// in doubt and lock its keys until the decision arrives. Coord is the
// shard group id coordinating the transaction — where a recovering
// participant sends ResolveTxn.
type PrepareTxn struct {
	TxnID    string
	Coord    int64
	Snapshot int64
	WS       writeset.Writeset
}

func (*PrepareTxn) msgType() MsgType { return TPrepareTxn }
func (m *PrepareTxn) encode(b []byte) []byte {
	b = appendString(b, m.TxnID)
	b = appendVarint(b, m.Coord)
	b = appendVarint(b, m.Snapshot)
	return appendWriteset(b, m.WS)
}
func (m *PrepareTxn) decode(d *decoder) {
	m.TxnID = d.str()
	m.Coord = d.varint()
	m.Snapshot = d.varint()
	m.WS = decodeWriteset(d)
}

// PrepareTxnOK answers PrepareTxn. Vote=true is the group's binding
// promise to commit the fragment whenever the decision says so;
// Vote=false reports a certification conflict (ConflictWith is the
// committed version responsible, 0 when the blocker is another
// in-doubt transaction).
type PrepareTxnOK struct {
	Vote         bool
	ConflictWith int64
}

func (*PrepareTxnOK) msgType() MsgType { return TPrepareTxnOK }
func (m *PrepareTxnOK) encode(b []byte) []byte {
	b = appendBool(b, m.Vote)
	return appendVarint(b, m.ConflictWith)
}
func (m *PrepareTxnOK) decode(d *decoder) {
	m.Vote = d.bool()
	m.ConflictWith = d.varint()
}

// DecideTxn delivers the coordinator's decision for a prepared
// transaction to a participant group (protocol v6). Commit routes the
// fragment through the group's ordinary record log; abort releases
// its locks.
type DecideTxn struct {
	TxnID  string
	Commit bool
}

func (*DecideTxn) msgType() MsgType { return TDecideTxn }
func (m *DecideTxn) encode(b []byte) []byte {
	b = appendString(b, m.TxnID)
	return appendBool(b, m.Commit)
}
func (m *DecideTxn) decode(d *decoder) {
	m.TxnID = d.str()
	m.Commit = d.bool()
}

// DecideTxnOK acknowledges DecideTxn with the global version the
// fragment committed at (0 for aborts).
type DecideTxnOK struct {
	Version int64
}

func (*DecideTxnOK) msgType() MsgType         { return TDecideTxnOK }
func (m *DecideTxnOK) encode(b []byte) []byte { return appendVarint(b, m.Version) }
func (m *DecideTxnOK) decode(d *decoder)      { m.Version = d.varint() }

// ResolveTxn asks the coordinator group for the fate of an in-doubt
// transaction (protocol v6). A coordinator with no durable decision
// answers abort — and records that abort durably first (presumed
// abort), so a late commit can never contradict the answer.
type ResolveTxn struct {
	TxnID string
}

func (*ResolveTxn) msgType() MsgType         { return TResolveTxn }
func (m *ResolveTxn) encode(b []byte) []byte { return appendString(b, m.TxnID) }
func (m *ResolveTxn) decode(d *decoder)      { m.TxnID = d.str() }

// ResolveTxnOK answers ResolveTxn.
type ResolveTxnOK struct {
	Commit bool
}

func (*ResolveTxnOK) msgType() MsgType         { return TResolveTxnOK }
func (m *ResolveTxnOK) encode(b []byte) []byte { return appendBool(b, m.Commit) }
func (m *ResolveTxnOK) decode(d *decoder)      { m.Commit = d.bool() }

// ForgetTxn retires a fully acknowledged decision at a group
// (protocol v6): every participant has applied the outcome, so the
// decision record can stop occupying the journal and the decisions
// map.
type ForgetTxn struct {
	TxnID string
}

func (*ForgetTxn) msgType() MsgType         { return TForgetTxn }
func (m *ForgetTxn) encode(b []byte) []byte { return appendString(b, m.TxnID) }
func (m *ForgetTxn) decode(d *decoder)      { m.TxnID = d.str() }

// ForgetTxnOK acknowledges ForgetTxn.
type ForgetTxnOK struct{}

func (*ForgetTxnOK) msgType() MsgType         { return TForgetTxnOK }
func (m *ForgetTxnOK) encode(b []byte) []byte { return b }
func (m *ForgetTxnOK) decode(*decoder)        {}
