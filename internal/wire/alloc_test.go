package wire

import (
	"testing"

	"repro/internal/writeset"
)

// sinkRW discards writes; reads replay one pre-encoded frame forever.
type sinkRW struct {
	frame []byte
	off   int
}

func (s *sinkRW) Write(p []byte) (int, error) { return len(p), nil }
func (s *sinkRW) Read(p []byte) (int, error) {
	if s.off == len(s.frame) {
		s.off = 0
	}
	n := copy(p, s.frame[s.off:])
	s.off += n
	return n, nil
}

// hotWS is a realistic update-transaction writeset for the Write and
// Certify frames.
var hotWS = writeset.New([]writeset.Entry{
	{Key: writeset.Key{Table: "item", Row: 42}, Value: "stock=91 qty=3"},
})

// hotFrames are the commit-path messages a loaded cluster exchanges
// per transaction; their encode path must not allocate.
var hotFrames = []struct {
	name string
	msg  Message
}{
	{"Begin", &Begin{Trace: 7}},
	{"Write", &Write{Table: "item", Row: 42, Value: "stock=91 qty=3"}},
	{"Commit", &Commit{}},
	{"Certify", &Certify{Snapshot: 99, WS: hotWS, Trace: 7}},
	{"FetchSince", &FetchSince{Version: 12, WaitMillis: 250}},
}

// TestHotFrameEncodeAllocs pins the zero-allocation contract on the
// hot-path encoders: after the connection's write buffer has warmed,
// Send must not touch the heap.
func TestHotFrameEncodeAllocs(t *testing.T) {
	for _, tc := range hotFrames {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConn(&sinkRW{})
			if err := c.Send(tc.msg); err != nil { // warm the write buffer
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := c.Send(tc.msg); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s encode: %.2f allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestHotFrameDecodeAllocs pins the decode side. Scalar-only frames
// decode with zero allocations (the read buffer and the message struct
// are both reused). Frames that carry strings or writesets must copy
// them out of the reused buffer — the caller retains them — so their
// floor is the retained data itself, nothing more.
func TestHotFrameDecodeAllocs(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		max  float64 // allocation ceiling; 0 means exactly zero
	}{
		{"Begin", &Begin{Trace: 7}, 0},
		{"BeginOK", &BeginOK{Applied: 12, Trace: 7}, 0},
		{"Commit", &Commit{}, 0},
		{"CommitOK", &CommitOK{Applied: 13}, 0},
		{"FetchSince", &FetchSince{Version: 12, WaitMillis: 250}, 0},
		// Write retains two strings (table, value).
		{"Write", &Write{Table: "item", Row: 42, Value: "stock=91 qty=3"}, 2},
		// Certify retains the writeset: entries slice, writeset
		// internals, and the entry strings.
		{"Certify", &Certify{Snapshot: 99, WS: hotWS, Trace: 7}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &sinkRW{}
			enc := NewConn(sink)
			if err := enc.Send(tc.msg); err != nil {
				t.Fatal(err)
			}
			frame := make([]byte, len(enc.wbuf))
			copy(frame, enc.wbuf)
			c := NewConn(&sinkRW{frame: frame})
			if _, err := c.Recv(); err != nil { // warm rbuf and the hot struct
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := c.Recv(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.max {
				t.Fatalf("%s decode: %.2f allocs/op, want <= %.0f", tc.name, allocs, tc.max)
			}
		})
	}
}

// TestRecvReleasesOversizedBuffer: a giant frame must not pin its
// buffer to the connection — the retained read buffer stays small
// after the spike.
func TestRecvReleasesOversizedBuffer(t *testing.T) {
	big := &Records{Recs: propagationRun(20000)}
	sink := &sinkRW{}
	enc := NewConn(sink)
	if err := enc.Send(big); err != nil {
		t.Fatal(err)
	}
	if len(enc.wbuf) <= recvRetain {
		t.Fatalf("test frame too small (%d bytes) to exercise the pooled path", len(enc.wbuf))
	}
	frame := make([]byte, len(enc.wbuf))
	copy(frame, enc.wbuf)
	c := NewConn(&sinkRW{frame: frame})
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if cap(c.rbuf) > recvRetain {
		t.Fatalf("connection retained a %d-byte read buffer after a large frame (cap %d)",
			cap(c.rbuf), recvRetain)
	}
}

func benchFrame(b *testing.B, msg Message) []byte {
	b.Helper()
	enc := NewConn(&sinkRW{})
	if err := enc.Send(msg); err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, len(enc.wbuf))
	copy(frame, enc.wbuf)
	return frame
}

func BenchmarkHotFrameEncode(b *testing.B) {
	for _, tc := range hotFrames {
		b.Run(tc.name, func(b *testing.B) {
			c := NewConn(&sinkRW{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(tc.msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHotFrameDecode(b *testing.B) {
	for _, tc := range hotFrames {
		b.Run(tc.name, func(b *testing.B) {
			c := NewConn(&sinkRW{frame: benchFrame(b, tc.msg)})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecordsV5 measures the propagation codec itself: encode and
// decode of a 64-record stream, plain and compressed.
func BenchmarkRecordsV5(b *testing.B) {
	recs := propagationRun(64)
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "flate"
		}
		b.Run("encode/"+name, func(b *testing.B) {
			c := NewConn(&sinkRW{})
			msg := &Records{Recs: recs, Compress: compress}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/"+name, func(b *testing.B) {
			c := NewConn(&sinkRW{frame: benchFrame(b, &Records{Recs: recs, Compress: compress})})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
