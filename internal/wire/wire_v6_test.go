package wire

import (
	"reflect"
	"testing"

	"repro/internal/writeset"
)

// TestShardMapV6RoundTrip: the shard-map block on JoinOK/MembersOK and
// the shard id on StatsOK survive a proto-6 connection intact.
func TestShardMapV6RoundTrip(t *testing.T) {
	msgs := []Message{
		&JoinOK{ID: 3, Epoch: 5, Members: []Member{{ID: 0, Addr: "a:1"}},
			ShardID: 2, ShardCount: 4, MapVersion: 9},
		&MembersOK{Epoch: 9, Members: []Member{{ID: 0, Addr: "a:1"}},
			ShardID: 1, ShardCount: 2, MapVersion: 3},
		&StatsOK{ReadCommits: 10, ReplicaID: 2, ShardID: 3},
	}
	for _, m := range msgs {
		got := roundTripAt(t, ProtoVersion, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T mismatch: %+v vs %+v", m, got, m)
		}
	}
}

// TestShardMapDowngradeV5: on a proto-5 connection the shard fields
// are neither sent nor expected — a v5 peer sees the exact v5 shape,
// the fields come back zero, and the connection keeps framing.
func TestShardMapDowngradeV5(t *testing.T) {
	ca, cb, done := pipeConnsAt(t, 5)
	defer done()
	msgs := []Message{
		&JoinOK{ID: 3, Epoch: 5, Members: []Member{{ID: 0, Addr: "a:1"}},
			ShardID: 2, ShardCount: 4, MapVersion: 9},
		&MembersOK{Epoch: 9, ShardID: 1, ShardCount: 2, MapVersion: 3},
		&StatsOK{ReadCommits: 10, ReplicaID: 2, ShardID: 3},
		&Commit{}, // the next frame must still align
	}
	errc := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		switch g := got.(type) {
		case *JoinOK:
			if g.ShardID != 0 || g.ShardCount != 0 || g.MapVersion != 0 {
				t.Fatalf("v5 JoinOK leaked shard fields: %+v", g)
			}
			if g.ID != 3 || g.Epoch != 5 || len(g.Members) != 1 {
				t.Fatalf("v5 JoinOK base fields mangled: %+v", g)
			}
		case *MembersOK:
			if g.ShardID != 0 || g.ShardCount != 0 || g.MapVersion != 0 || g.Epoch != 9 {
				t.Fatalf("v5 MembersOK = %+v", g)
			}
		case *StatsOK:
			if g.ShardID != 0 || g.ReadCommits != 10 || g.ReplicaID != 2 {
				t.Fatalf("v5 StatsOK = %+v", g)
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
}

// TestTwoPCFramesRoundTrip covers the new v6 request/reply pairs.
func TestTwoPCFramesRoundTrip(t *testing.T) {
	ws := writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "item", Row: 7}, Value: "v7"},
		{Key: writeset.Key{Table: "stock", Row: -3}, Delete: true},
	})
	msgs := []Message{
		&PrepareTxn{TxnID: "r0-17-1", Coord: 2, Snapshot: 41, WS: ws},
		&PrepareTxnOK{Vote: true},
		&PrepareTxnOK{Vote: false, ConflictWith: 40},
		&DecideTxn{TxnID: "r0-17-1", Commit: true},
		&DecideTxnOK{Version: 42},
		&ResolveTxn{TxnID: "r0-17-1"},
		&ResolveTxnOK{Commit: false},
		&ForgetTxn{TxnID: "r0-17-1"},
		&ForgetTxnOK{},
	}
	for _, m := range msgs {
		got := roundTripAt(t, ProtoVersion, m)
		if got.msgType() != m.msgType() {
			t.Fatalf("%T came back as %T", m, got)
		}
		if want, ok := m.(*PrepareTxn); ok {
			g := got.(*PrepareTxn)
			if g.TxnID != want.TxnID || g.Coord != want.Coord ||
				g.Snapshot != want.Snapshot || !wsEqual(g.WS, want.WS) {
				t.Fatalf("PrepareTxn mismatch: %+v vs %+v", g, want)
			}
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T mismatch: %+v vs %+v", m, got, m)
		}
	}
}

// TestTwoPCFramesRequireV6 pins the version gate servers enforce.
func TestTwoPCFramesRequireV6(t *testing.T) {
	for _, typ := range []MsgType{TPrepareTxn, TPrepareTxnOK, TDecideTxn,
		TDecideTxnOK, TResolveTxn, TResolveTxnOK, TForgetTxn, TForgetTxnOK} {
		if got := MinProtoFor(typ); got != 6 {
			t.Fatalf("MinProtoFor(%d) = %d, want 6", typ, got)
		}
	}
	// The grown v2 messages must NOT move: the shard block is gated by
	// connection version, not by message type.
	for _, typ := range []MsgType{TJoinOK, TMembersOK, TStatsOK} {
		if got := MinProtoFor(typ); got != 2 {
			t.Fatalf("MinProtoFor(%d) = %d, want 2", typ, got)
		}
	}
}

// FuzzShardMapV6 fuzzes the grown membership replies through full
// frames at v6 and v5, mirroring FuzzRecordsV5.
func FuzzShardMapV6(f *testing.F) {
	f.Add(int64(0), int64(1), "a:1", int64(0), int64(0), int64(0))
	f.Add(int64(3), int64(5), "10.0.0.1:7001", int64(2), int64(4), int64(9))
	f.Add(int64(-1), int64(-7), "", int64(-3), int64(1<<40), int64(-9))
	f.Fuzz(func(t *testing.T, id, epoch int64, addr string, shard, count, mapv int64) {
		m := &JoinOK{ID: id, Epoch: epoch,
			Members: []Member{{ID: id, Addr: addr}},
			ShardID: shard, ShardCount: count, MapVersion: mapv}
		got := roundTripAt(t, ProtoVersion, m).(*JoinOK)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("v6 JoinOK mismatch: %+v vs %+v", got, m)
		}
		old := roundTripAt(t, 5, m).(*JoinOK)
		if old.ShardID != 0 || old.ShardCount != 0 || old.MapVersion != 0 {
			t.Fatalf("v5 JoinOK leaked shard fields: %+v", old)
		}
		if old.ID != id || old.Epoch != epoch {
			t.Fatalf("v5 JoinOK base fields mangled: %+v", old)
		}

		mo := &MembersOK{Epoch: epoch, Members: m.Members,
			ShardID: shard, ShardCount: count, MapVersion: mapv}
		gmo := roundTripAt(t, ProtoVersion, mo).(*MembersOK)
		if !reflect.DeepEqual(gmo, mo) {
			t.Fatalf("v6 MembersOK mismatch: %+v vs %+v", gmo, mo)
		}
	})
}

// FuzzTwoPCFramesV6 fuzzes the prepare/decide codec through full
// frames at the newest protocol.
func FuzzTwoPCFramesV6(f *testing.F) {
	f.Add("t1", int64(0), int64(0), "item", int64(7), "v", false, true, int64(8))
	f.Add("", int64(-2), int64(1<<50), "", int64(-1), "", true, false, int64(0))
	f.Fuzz(func(t *testing.T, id string, coord, snap int64,
		table string, row int64, value string, del, commit bool, version int64) {
		p := &PrepareTxn{TxnID: id, Coord: coord, Snapshot: snap,
			WS: writeset.New([]writeset.Entry{
				{Key: writeset.Key{Table: table, Row: row}, Delete: del, Value: value},
			})}
		gp := roundTripAt(t, ProtoVersion, p).(*PrepareTxn)
		if gp.TxnID != id || gp.Coord != coord || gp.Snapshot != snap || !wsEqual(gp.WS, p.WS) {
			t.Fatalf("PrepareTxn mismatch: %+v vs %+v", gp, p)
		}
		d := &DecideTxn{TxnID: id, Commit: commit}
		if gd := roundTripAt(t, ProtoVersion, d).(*DecideTxn); !reflect.DeepEqual(gd, d) {
			t.Fatalf("DecideTxn mismatch: %+v vs %+v", gd, d)
		}
		dok := &DecideTxnOK{Version: version}
		if gdok := roundTripAt(t, ProtoVersion, dok).(*DecideTxnOK); !reflect.DeepEqual(gdok, dok) {
			t.Fatalf("DecideTxnOK mismatch: %+v vs %+v", gdok, dok)
		}
	})
}
