package wire

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/writeset"
)

// propagationRun builds a Records frame shaped like a real propagation
// stream: n records over a handful of tables, ascending versions,
// values with the repetitive structure TPC-W rows have.
func propagationRun(n int) []Record {
	tables := []string{"item", "orders", "order_line", "shopping_cart"}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Version: int64(1000 + i),
			WS: writeset.New([]writeset.Entry{
				{Key: writeset.Key{Table: tables[i%len(tables)], Row: int64(i * 7)},
					Value: fmt.Sprintf("qty=%d subject=ARTS stock=%d thumb=img/thumb_%d.gif", i, 90-i%10, i)},
				{Key: writeset.Key{Table: tables[(i+1)%len(tables)], Row: int64(i)},
					Delete: i%5 == 0, Value: "total=104.99 status=SHIPPED"},
			}),
			Trace:    uint64(i) << 13,
			CommitNs: int64(1754600000000000000 + i*1000),
		}
	}
	return recs
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Version != w.Version || g.Trace != w.Trace || g.CommitNs != w.CommitNs || !wsEqual(g.WS, w.WS) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestRecordsRoundTripV5 round-trips the compact propagation shape at
// the newest protocol, plain and compressed, including the awkward
// cases: version deltas that run backwards, empty writesets, deletes.
func TestRecordsRoundTripV5(t *testing.T) {
	recs := []Record{
		{Version: 50, WS: writeset.New([]writeset.Entry{
			{Key: writeset.Key{Table: "item", Row: -3}, Value: "x"},
			{Key: writeset.Key{Table: "item", Row: 9}, Delete: true},
		}), Trace: ^uint64(0), CommitNs: -1},
		{Version: 7}, // non-monotonic: negative delta, empty writeset
		{Version: 8, WS: writeset.New([]writeset.Entry{
			{Key: writeset.Key{Table: "orders", Row: 0}, Value: ""},
		})},
	}
	for _, compress := range []bool{false, true} {
		got := roundTripAt(t, ProtoVersion, &Records{Recs: recs, Compress: compress}).(*Records)
		recordsEqual(t, got.Recs, recs)
	}
	if got := roundTripAt(t, ProtoVersion, &Records{}).(*Records); len(got.Recs) != 0 {
		t.Fatalf("empty Records came back with %d records", len(got.Recs))
	}
}

// TestRecordsV5Compresses pins the two sides of the compression
// bargain: a body with real redundancy gets smaller than both its
// plain-v5 and its v4 encoding, and the frame is marked compressed.
func TestRecordsV5Compresses(t *testing.T) {
	recs := propagationRun(200)
	plain := (&Records{Recs: recs}).encodeV(nil, ProtoVersion)
	comp := (&Records{Recs: recs, Compress: true}).encodeV(nil, ProtoVersion)
	v4 := (&Records{Recs: recs}).encodeV(nil, 4)
	if plain[0] != 0 {
		t.Fatalf("plain payload flags = %#x", plain[0])
	}
	if comp[0] != recFlate {
		t.Fatalf("compressed payload flags = %#x, want recFlate", comp[0])
	}
	if len(comp) >= len(plain) {
		t.Fatalf("compression did not shrink: %d -> %d bytes", len(plain), len(comp))
	}
	if len(plain) >= len(v4) {
		t.Fatalf("v5 dictionary+delta shape not smaller than v4: %d vs %d", len(plain), len(v4))
	}
}

// TestRecordsV5CompressionFallback: bodies below compressMin, and
// bodies compression cannot shrink, fall back to the plain shape — the
// Compress intent never grows a frame.
func TestRecordsV5CompressionFallback(t *testing.T) {
	tiny := []Record{{Version: 1, WS: writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "t", Row: 1}, Value: "v"},
	})}}
	if b := (&Records{Recs: tiny, Compress: true}).encodeV(nil, ProtoVersion); b[0] != 0 {
		t.Fatalf("tiny body was compressed (flags %#x)", b[0])
	}
	got := roundTripAt(t, ProtoVersion, &Records{Recs: tiny, Compress: true}).(*Records)
	recordsEqual(t, got.Recs, tiny)
}

// TestRecordsDowngradeV5toV4 proves interop with a v4 peer: on a
// connection negotiated at protocol 4 the Records keep the flat shape
// with trace metadata, FetchSince drops the v5 opt-out silently, and
// the connection keeps framing afterwards.
func TestRecordsDowngradeV5toV4(t *testing.T) {
	recs := propagationRun(8)
	ca, cb, done := pipeConnsAt(t, 4)
	defer done()
	msgs := []Message{
		&FetchSince{Version: 3, WaitMillis: 250, NoCompress: true},
		&Records{Recs: recs, Compress: true}, // intent must be ignored at v4
		&Commit{},                            // the next frame must still align
	}
	errc := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		switch g := got.(type) {
		case *FetchSince:
			if g.NoCompress || g.Version != 3 || g.WaitMillis != 250 {
				t.Fatalf("v4 FetchSince = %+v (NoCompress must be dropped)", g)
			}
		case *Records:
			recordsEqual(t, g.Recs, recs)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
}

// TestFetchSinceNoCompressV5 pins the new field's version gate.
func TestFetchSinceNoCompressV5(t *testing.T) {
	for _, proto := range []uint32{1, 3, 4, ProtoVersion} {
		got := roundTripAt(t, proto, &FetchSince{Version: 11, NoCompress: true}).(*FetchSince)
		want := proto >= 5
		if got.NoCompress != want || got.Version != 11 {
			t.Fatalf("proto %d: FetchSince = %+v, want NoCompress=%v", proto, got, want)
		}
	}
}

// TestRecordsV5RejectsUnknownFlags: a flags byte with bits this decoder
// does not understand is a hard error, not silent misparsing — the
// escape hatch for future codec changes.
func TestRecordsV5RejectsUnknownFlags(t *testing.T) {
	payload := (&Records{Recs: propagationRun(1)}).encodeV(nil, ProtoVersion)
	payload[0] = 0x80
	d := &decoder{b: payload}
	(&Records{}).decodeV(d, ProtoVersion)
	if d.err == nil {
		t.Fatal("unknown flags decoded without error")
	}
}

// TestRecordsV5BadDictIndex: an entry referencing past the table
// dictionary must fail cleanly.
func TestRecordsV5BadDictIndex(t *testing.T) {
	var body []byte
	body = appendUvarint(body, 1) // one record
	body = appendUvarint(body, 0) // empty dictionary
	body = appendVarint(body, 1)  // version
	body = appendUvarint(body, 0) // trace
	body = appendVarint(body, 0)  // commitNs
	body = appendUvarint(body, 1) // one entry
	body = appendUvarint(body, 0) // table index 0 — out of range
	payload := append([]byte{0}, body...)
	d := &decoder{b: payload}
	(&Records{}).decodeV(d, ProtoVersion)
	if d.err == nil {
		t.Fatal("out-of-range dictionary index decoded without error")
	}
}

// TestRecordsV5CompressedTrailing: bytes after a well-formed body
// inside the compressed stream are an error, mirroring the frame-level
// trailing-bytes rule.
func TestRecordsV5CompressedTrailing(t *testing.T) {
	body := appendRecordsBody(nil, propagationRun(20))
	body = append(body, 0xAA) // junk beyond the declared records
	payload, ok := appendFlate(nil, body)
	if !ok {
		t.Skip("junk body did not compress; cannot exercise the path")
	}
	d := &decoder{b: payload}
	(&Records{}).decodeV(d, ProtoVersion)
	if d.err == nil {
		t.Fatal("trailing bytes inside the compressed body decoded without error")
	}
}

// FuzzRecordsV5 fuzzes the delta/dictionary/compression codec through
// full frames at the newest protocol and at v4, mirroring
// FuzzTraceRecordV4 for the new shape.
func FuzzRecordsV5(f *testing.F) {
	f.Add(int64(1), int64(1), uint64(0), int64(0), "item", int64(7), "v", false, false)
	f.Add(int64(-9), int64(-1), ^uint64(0), int64(-5), "", int64(0), "", true, true)
	f.Add(int64(1<<40), int64(3), uint64(77), int64(1<<50), "orders", int64(-2),
		strings.Repeat("stock=91 ", 40), false, true)
	f.Fuzz(func(t *testing.T, v1, delta int64, trace uint64, commitNs int64,
		table string, row int64, value string, del, compress bool) {
		recs := []Record{
			{Version: v1, WS: writeset.New([]writeset.Entry{
				{Key: writeset.Key{Table: table, Row: row}, Delete: del, Value: value},
				{Key: writeset.Key{Table: "fixed"}, Value: value},
			}), Trace: trace, CommitNs: commitNs},
			{Version: v1 + delta, WS: writeset.New([]writeset.Entry{
				{Key: writeset.Key{Table: table, Row: row + 1}, Value: value},
			})},
		}
		got := roundTripAt(t, ProtoVersion, &Records{Recs: recs, Compress: compress}).(*Records)
		recordsEqual(t, got.Recs, recs)

		old := roundTripAt(t, 4, &Records{Recs: recs, Compress: compress}).(*Records)
		recordsEqual(t, old.Recs, recs)
	})
}
