// Package wire implements the length-prefixed binary protocol the
// networked replica servers and their clients speak: transaction
// operations (begin/read/write/delete/commit/abort), bulk loading and
// dumping, remote certification, and writeset propagation
// (FetchSince), the messages the paper's prototypes exchange between
// proxies, the certifier and the load balancer (§5).
//
// Framing is versioned: every connection opens with a Hello carrying a
// 4-byte magic and the protocol version, and the server refuses
// mismatches before any other traffic. Each subsequent frame is
//
//	[4-byte big-endian length] [1-byte message type] [payload]
//
// where length counts the type byte plus the payload and is bounded by
// MaxFrame. Encoding is allocation-conscious: a Conn reuses one read
// and one write buffer, messages append themselves to the write buffer
// in place, and integers use varints so typical transaction frames fit
// in a few dozen bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/writeset"
)

const (
	// ProtoVersion is the newest protocol spoken by this build. Hello
	// exchanges it; the server negotiates down to the client's version
	// as long as it is at least MinProto. Version 2 added the elastic
	// membership messages (Join/Leave/Snapshot/Members/Stats); version
	// 3 adds replicated certification (Paxos Prepare/Accept/Learn
	// frames and the NotLeader redirect); version 4 adds commit-path
	// trace ids on Begin/BeginOK/Certify and trace ids + commit
	// timestamps on propagated Records, so spans stitch across nodes.
	// Version 5 re-frames Records for propagation efficiency — a
	// per-frame table dictionary, delta-encoded versions and an
	// optional DEFLATE-compressed body (see records_v5.go) — and adds
	// a client-side compression opt-out on FetchSince. No new message
	// types: an older peer simply never sees the extra fields or the
	// compact shape (they are used only on new-enough connections).
	// Version 6 adds horizontal partitioning: JoinOK/MembersOK carry
	// the shard map (this group's id, the group count and the map
	// version), StatsOK identifies its shard, and the cross-shard
	// two-phase-commit frames (PrepareTxn/DecideTxn/ResolveTxn/
	// ForgetTxn) let a router coordinate one transaction across
	// several groups. A v5 peer sees none of it — the shard fields are
	// appended only on proto>=6 connections and the 2PC messages are
	// refused below 6.
	ProtoVersion = 6

	// MinProto is the oldest protocol version this build still
	// accepts. A v1 peer can run the full transaction, load and
	// propagation surface; only the membership messages are refused
	// (with a structured Err), so mixed-version clusters degrade
	// cleanly instead of hanging.
	MinProto = 1

	// MaxFrame bounds one frame (type byte + payload) to keep a
	// misbehaving peer from forcing unbounded allocation.
	MaxFrame = 16 << 20
)

// Negotiate returns the protocol version a server speaking
// [MinProto, ProtoVersion] should use with a client that announced
// clientProto, or an error when no common version exists. The result
// is min(clientProto, ProtoVersion).
func Negotiate(clientProto uint32) (uint32, error) {
	if clientProto < MinProto {
		return 0, fmt.Errorf("%w: peer speaks %d, need at least %d",
			ErrVersionMismatch, clientProto, MinProto)
	}
	if clientProto > ProtoVersion {
		return ProtoVersion, nil
	}
	return clientProto, nil
}

// MinProtoFor returns the protocol version a message type requires.
// The membership messages of the elastic subsystem need version 2 and
// the replicated-certification messages need version 3; everything
// else is part of the version-1 surface.
func MinProtoFor(t MsgType) uint32 {
	switch t {
	case TPrepareTxn, TPrepareTxnOK, TDecideTxn, TDecideTxnOK,
		TResolveTxn, TResolveTxnOK, TForgetTxn, TForgetTxnOK:
		return 6
	case TPaxosPrepare, TPaxosPrepareOK, TPaxosAccept, TPaxosAcceptOK,
		TPaxosLearn, TPaxosLearnOK, TNotLeader:
		return 3
	case TJoin, TJoinOK, TLeave, TLeaveOK, TSnapshotReq, TSnapshotOK,
		TMembers, TMembersOK, TStats, TStatsOK:
		return 2
	default:
		return 1
	}
}

// magic opens every Hello payload.
var magic = [4]byte{'R', 'D', 'B', '1'}

var (
	// ErrFrameTooLarge reports a frame above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	// ErrBadMagic reports a handshake from something that does not
	// speak this protocol.
	ErrBadMagic = errors.New("wire: bad magic in handshake")
	// ErrVersionMismatch reports a peer speaking another protocol
	// version.
	ErrVersionMismatch = errors.New("wire: protocol version mismatch")
	// ErrUnknownMessage reports an unrecognized message type byte.
	ErrUnknownMessage = errors.New("wire: unknown message type")
	// ErrTruncated reports a payload shorter than its message needs.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTrailingBytes reports a payload longer than its message, a
	// framing bug or corruption.
	ErrTrailingBytes = errors.New("wire: trailing bytes in payload")
)

// Conn frames messages over an underlying byte stream. It is not safe
// for concurrent use; callers own a connection for the duration of a
// transaction or RPC, which is how the client pool hands them out.
type Conn struct {
	rw    io.ReadWriter
	rbuf  []byte
	wbuf  []byte
	hdr   [4]byte
	proto uint32
	// hot caches one reusable decode target per hot message type so
	// steady-state Recv does not allocate a fresh struct per frame.
	// Indexed by MsgType; only types marked in hotReusable are cached.
	hot [TRecords + 1]Message
	// dec is Recv's decoder. It lives on the Conn because handing a
	// stack decoder to the dynamic decodeV call makes it escape — one
	// heap allocation per received frame.
	dec decoder
}

// NewConn wraps a byte stream (normally a *net.TCPConn). The
// connection assumes ProtoVersion until SetProto records the
// handshake's negotiated version.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, proto: ProtoVersion}
}

// SetProto records the negotiated protocol version; messages whose
// encoding is version-dependent (the versioned interface) encode and
// decode against it. Both ends call it right after Hello/HelloOK.
func (c *Conn) SetProto(v uint32) { c.proto = v }

// Proto returns the connection's negotiated protocol version.
func (c *Conn) Proto() uint32 { return c.proto }

// versioned is implemented by messages whose payload depends on the
// negotiated protocol version. Plain encode/decode remain the
// ProtoVersion shape (used by tests and by callers without a Conn);
// Send/Recv route through the versioned variants.
type versioned interface {
	encodeV(b []byte, proto uint32) []byte
	decodeV(d *decoder, proto uint32)
}

// Send encodes and writes one message as a single frame.
func (c *Conn) Send(m Message) error {
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, 0, 0, 0, 0, byte(m.msgType()))
	if vm, ok := m.(versioned); ok {
		c.wbuf = vm.encodeV(c.wbuf, c.proto)
	} else {
		c.wbuf = m.encode(c.wbuf)
	}
	n := len(c.wbuf) - 4
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(c.wbuf[:4], uint32(n))
	_, err := c.rw.Write(c.wbuf)
	return err
}

// recvRetain bounds the read-buffer capacity a Conn keeps between
// frames. Typical transaction frames are tens of bytes, but bulk
// loads and snapshot chunks approach MaxFrame; keeping such a buffer
// would pin megabytes per connection for its remaining lifetime.
// Frames above the threshold borrow a buffer from a shared pool and
// release it before Recv returns (safe: decoded messages copy every
// retained byte out of the read buffer).
const recvRetain = 64 << 10

// bigRecvPool recycles oversized read buffers across connections.
var bigRecvPool sync.Pool

// grabBig returns a pooled buffer with capacity >= n.
func grabBig(n int) *[]byte {
	if v := bigRecvPool.Get(); v != nil {
		b := v.(*[]byte)
		if cap(*b) >= n {
			return b
		}
	}
	b := make([]byte, n)
	return &b
}

// Recv reads one frame and decodes it into a typed message. The
// returned message owns its variable-size data (strings, slices), but
// hot message structs themselves are reused by the next Recv of the
// same type on this connection — callers must not retain them across
// Recv calls (the request/reply discipline already guarantees this).
func (c *Conn) Recv() (Message, error) {
	if _, err := io.ReadFull(c.rw, c.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.hdr[:])
	if n < 1 {
		return nil, ErrTruncated
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	var buf []byte
	if int(n) <= recvRetain {
		if cap(c.rbuf) < int(n) {
			c.rbuf = make([]byte, n)
		}
		buf = c.rbuf[:n]
	} else {
		pooled := grabBig(int(n))
		buf = (*pooled)[:n]
		defer bigRecvPool.Put(pooled)
	}
	if _, err := io.ReadFull(c.rw, buf); err != nil {
		return nil, err
	}
	m := c.messageFor(MsgType(buf[0]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMessage, buf[0])
	}
	c.dec = decoder{b: buf[1:]}
	d := &c.dec
	if vm, ok := m.(versioned); ok {
		vm.decodeV(d, c.proto)
	} else {
		m.decode(d)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, ErrTrailingBytes
	}
	return m, nil
}

// hotReusable marks the message types whose decode target Recv reuses
// across frames: the per-transaction hot path plus propagation. A
// type qualifies only when no caller retains the struct past its
// processing — the bulk and lockstep replies (Load/Dump/Snapshot/
// Stats/Members/Join) and the paxos frames are excluded because
// callers hold onto them.
var hotReusable = [TRecords + 1]bool{
	TErr: true, TBegin: true, TBeginOK: true, TRead: true, TReadOK: true,
	TWrite: true, TWriteOK: true, TDelete: true, TCommit: true,
	TCommitOK: true, TCommitAborted: true, TAbort: true, TAbortOK: true,
	TSync: true, TSyncOK: true, TCertify: true, TCertifyOK: true,
	TCheck: true, TCheckOK: true, TFetchSince: true, TRecords: true,
}

// messageFor returns the decode target for a type byte: the cached
// hot struct when the type is reusable, a fresh one otherwise.
func (c *Conn) messageFor(t MsgType) Message {
	if int(t) < len(c.hot) && hotReusable[t] {
		if m := c.hot[t]; m != nil {
			return m
		}
		m := newMessage(t)
		c.hot[t] = m
		return m
	}
	return newMessage(t)
}

// decoder consumes a payload with sticky error handling.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// str copies a length-prefixed string out of the payload (the buffer
// is reused, so retained strings must own their bytes).
func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Append helpers used by message encoders.

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendWriteset encodes a writeset: entry count, then per entry the
// table, row, delete flag and value.
func appendWriteset(b []byte, ws writeset.Writeset) []byte {
	b = appendUvarint(b, uint64(len(ws.Entries)))
	for _, e := range ws.Entries {
		b = appendString(b, e.Key.Table)
		b = appendVarint(b, e.Key.Row)
		b = appendBool(b, e.Delete)
		b = appendString(b, e.Value)
	}
	return b
}

// maxPrealloc bounds slice preallocation from attacker-controlled
// element counts: a frame can claim millions of elements while
// holding only a few bytes, and element types are much wider than
// their 1-byte-minimum encodings. Decoders reserve at most this many
// elements up front and let append grow the rest, so a lying count
// fails at the truncated payload instead of amplifying into a huge
// allocation.
const maxPrealloc = 4096

// prealloc returns the capacity to reserve for a claimed count.
func prealloc(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// decodeWriteset is the inverse of appendWriteset; the result carries
// a precomputed key set (writeset.New), ready for certification.
func decodeWriteset(d *decoder) writeset.Writeset {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return writeset.Writeset{}
	}
	if n > uint64(len(d.b)-d.off) { // each entry is >= 1 byte
		d.fail()
		return writeset.Writeset{}
	}
	entries := make([]writeset.Entry, 0, prealloc(n))
	for i := uint64(0); i < n; i++ {
		var e writeset.Entry
		e.Key.Table = d.str()
		e.Key.Row = d.varint()
		e.Delete = d.bool()
		e.Value = d.str()
		if d.err != nil {
			return writeset.Writeset{}
		}
		entries = append(entries, e)
	}
	return writeset.New(entries)
}
