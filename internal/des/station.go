package des

import "repro/internal/stats"

// Station is a FIFO single-server queueing station (a CPU or a disk of
// one replica). Jobs are served one at a time in arrival order; each
// job carries its own service time, which the caller typically draws
// from an exponential distribution to match the queueing model's
// assumptions.
type Station struct {
	Name string

	sim   *Sim
	busy  bool
	queue []job

	// Measurement state. Reset discards the warm-up period.
	util      stats.TimeWeighted
	qlen      stats.TimeWeighted
	completed int64
	busySince Time
	busyTotal Time
	resetAt   Time
}

type job struct {
	service Time
	done    func()
}

// NewStation creates a station bound to the simulator.
func NewStation(sim *Sim, name string) *Station {
	st := &Station{Name: name, sim: sim}
	st.util.Update(sim.Now(), 0)
	st.qlen.Update(sim.Now(), 0)
	return st
}

// Submit enqueues a job requiring the given service time; done runs
// when the job completes. Zero service time still passes through the
// queue (and thus through FIFO ordering) but consumes no server time.
func (st *Station) Submit(service Time, done func()) {
	if service < 0 {
		panic("des: negative service time")
	}
	st.queue = append(st.queue, job{service: service, done: done})
	st.qlen.Update(st.sim.Now(), float64(len(st.queue))+btof(st.busy))
	if !st.busy {
		st.startNext()
	}
}

// startNext pops the queue head and serves it.
func (st *Station) startNext() {
	j := st.queue[0]
	st.queue = st.queue[1:]
	st.busy = true
	st.busySince = st.sim.Now()
	st.util.Update(st.sim.Now(), 1)
	st.sim.After(j.service, func() {
		now := st.sim.Now()
		st.busy = false
		st.busyTotal += now - st.busySince
		st.util.Update(now, 0)
		st.completed++
		st.qlen.Update(now, float64(len(st.queue)))
		if len(st.queue) > 0 {
			st.startNext()
		}
		// Run the completion after the station has advanced so that a
		// continuation resubmitting to this station sees a consistent
		// state.
		j.done()
	})
}

// ResetStats discards measurements gathered so far (warm-up).
func (st *Station) ResetStats() {
	now := st.sim.Now()
	st.util.Reset(now)
	st.qlen.Reset(now)
	st.completed = 0
	st.busyTotal = 0
	st.resetAt = now
	if st.busy {
		st.busySince = now
	}
}

// Utilization returns the fraction of time the server was busy since
// the last reset.
func (st *Station) Utilization() float64 {
	return st.util.Mean(st.sim.Now())
}

// QueueLength returns the time-average number of jobs at the station
// (queued plus in service) since the last reset.
func (st *Station) QueueLength() float64 {
	return st.qlen.Mean(st.sim.Now())
}

// Completed returns the number of jobs finished since the last reset.
func (st *Station) Completed() int64 { return st.completed }

// BusyTime returns the cumulative service time since the last reset,
// counting an in-progress job up to now.
func (st *Station) BusyTime() Time {
	t := st.busyTotal
	if st.busy {
		t += st.sim.Now() - st.busySince
	}
	return t
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
