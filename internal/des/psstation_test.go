package des

import (
	"math"
	"testing"

	"repro/internal/mva"
	"repro/internal/stats"
)

func TestPSSingleJobRunsAtFullRate(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	var done Time = -1
	st.Submit(2, func() { done = s.Now() })
	s.Run(10)
	if math.Abs(done-2) > 1e-9 {
		t.Fatalf("single job finished at %v, want 2", done)
	}
}

func TestPSTwoEqualJobsShare(t *testing.T) {
	// Two jobs of 1s submitted together each run at rate 1/2 and both
	// finish at t=2.
	s := New()
	st := NewPSStation(s, "cpu")
	var t1, t2 Time = -1, -1
	st.Submit(1, func() { t1 = s.Now() })
	st.Submit(1, func() { t2 = s.Now() })
	s.Run(10)
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Fatalf("finish times %v %v, want 2 2", t1, t2)
	}
}

func TestPSShortJobOvertakesLongJob(t *testing.T) {
	// A 10s job is joined by a 0.1s job: under PS the short one exits
	// quickly (0.2s of sharing), unlike FIFO.
	s := New()
	st := NewPSStation(s, "cpu")
	var short Time = -1
	st.Submit(10, func() {})
	s.At(1, func() {
		st.Submit(0.1, func() { short = s.Now() })
	})
	s.Run(100)
	if math.Abs(short-1.2) > 1e-9 {
		t.Fatalf("short job finished at %v, want 1.2", short)
	}
}

func TestPSStaggeredArrivals(t *testing.T) {
	// Job A (2s of work) starts at t=0; job B (2s) arrives at t=1.
	// A runs alone 1s (1s done), then shares: both have work left
	// (A: 1, B: 2); A finishes after 2 more seconds at t=3; B then
	// runs alone its last 1s, finishing at t=4.
	s := New()
	st := NewPSStation(s, "cpu")
	var ta, tb Time
	st.Submit(2, func() { ta = s.Now() })
	s.At(1, func() { st.Submit(2, func() { tb = s.Now() }) })
	s.Run(100)
	if math.Abs(ta-3) > 1e-9 {
		t.Fatalf("A finished at %v, want 3", ta)
	}
	if math.Abs(tb-4) > 1e-9 {
		t.Fatalf("B finished at %v, want 4", tb)
	}
}

func TestPSZeroServiceJob(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	fired := false
	st.Submit(0, func() { fired = true })
	s.Run(1)
	if !fired {
		t.Fatal("zero-service job never completed")
	}
}

func TestPSNegativeServicePanics(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	st.Submit(-1, func() {})
}

func TestPSUtilizationAndQueue(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	st.Submit(2, func() {})
	st.Submit(2, func() {}) // both finish at t=4
	s.Run(8)
	if u := st.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Queue: 2 jobs for 4s out of 8s -> average 1.
	if q := st.QueueLength(); math.Abs(q-1) > 1e-9 {
		t.Fatalf("queue = %v, want 1", q)
	}
	if st.Completed() != 2 {
		t.Fatalf("completed = %d", st.Completed())
	}
}

func TestPSResetStatsKeepsResidents(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	st.Submit(10, func() {})
	s.Run(5)
	st.ResetStats()
	s.Run(9) // the job still has 1s of work left
	// Still busy the whole post-reset window.
	if u := st.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Fatalf("post-reset utilization = %v", u)
	}
	if st.Resident() != 1 {
		t.Fatalf("resident = %d", st.Resident())
	}
}

func TestPSCompletionOrderByRemainingWork(t *testing.T) {
	s := New()
	st := NewPSStation(s, "cpu")
	var order []int
	st.Submit(3, func() { order = append(order, 3) })
	st.Submit(1, func() { order = append(order, 1) })
	st.Submit(2, func() { order = append(order, 2) })
	s.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v", order)
	}
}

func TestPSClosedLoopMatchesMVAPerClass(t *testing.T) {
	// Two job classes with very different demands through one PS
	// station: per-class residence must scale with the class's own
	// demand (R_c = D_c * (1 + Q)), which FIFO would violate. This is
	// the property the simulated prototype relies on to reproduce the
	// model's per-class response times.
	const (
		think   = 1.0
		dShort  = 0.010
		dLong   = 0.080
		clients = 10 // per class
		warm    = 100.0
		measure = 4000.0
	)
	s := New()
	st := NewPSStation(s, "cpu")
	rng := stats.NewRand(77)
	var rtShort, rtLong stats.Welford
	counting := false

	client := func(demand float64, rec *stats.Welford) {
		var cycle func()
		cycle = func() {
			s.After(rng.Exp(think), func() {
				start := s.Now()
				st.Submit(rng.Exp(demand), func() {
					if counting {
						rec.Add(s.Now() - start)
					}
					cycle()
				})
			})
		}
		cycle()
	}
	for i := 0; i < clients; i++ {
		client(dShort, &rtShort)
		client(dLong, &rtLong)
	}
	s.Run(warm)
	counting = true
	st.ResetStats()
	s.Run(warm + measure)

	// The exact oracle is two-class closed MVA (PS is product-form
	// with class-dependent demands; FIFO is not). The measured
	// per-class residence times must match the MVA solution — this is
	// the property the simulated prototype relies on to reproduce the
	// model's per-class response times.
	want := mva.SolveTwoClass(
		[]mva.Center{{Name: "cpu", Kind: mva.Queueing}},
		[2][]float64{{dShort}, {dLong}},
		[2]float64{think, think},
		[2]int{clients, clients},
	)
	if e := math.Abs(rtShort.Mean()-want.Response[0]) / want.Response[0]; e > 0.05 {
		t.Fatalf("short-class residence %.4f vs MVA %.4f (err %.0f%%)",
			rtShort.Mean(), want.Response[0], e*100)
	}
	if e := math.Abs(rtLong.Mean()-want.Response[1]) / want.Response[1]; e > 0.05 {
		t.Fatalf("long-class residence %.4f vs MVA %.4f (err %.0f%%)",
			rtLong.Mean(), want.Response[1], e*100)
	}
}

func TestPSDeterministic(t *testing.T) {
	run := func() (int64, float64) {
		s := New()
		st := NewPSStation(s, "cpu")
		rng := stats.NewRand(3)
		var sum float64
		var cycle func()
		cycle = func() {
			s.After(rng.Exp(0.3), func() {
				st.Submit(rng.Exp(0.05), func() {
					sum += s.Now()
					cycle()
				})
			})
		}
		for i := 0; i < 7; i++ {
			cycle()
		}
		s.Run(300)
		return st.Completed(), sum
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("runs diverged: (%d,%v) vs (%d,%v)", c1, s1, c2, s2)
	}
}
