package des

import (
	"container/heap"

	"repro/internal/stats"
)

// Queue is the common interface of the service stations: FIFO
// (Station) and processor sharing (PSStation).
type Queue interface {
	Submit(service Time, done func())
	ResetStats()
	Utilization() float64
	QueueLength() float64
	Completed() int64
}

var (
	_ Queue = (*Station)(nil)
	_ Queue = (*PSStation)(nil)
)

// PSStation is an egalitarian processor-sharing service station: all n
// resident jobs progress simultaneously at rate 1/n. This is the
// discipline that matches both a time-shared database server and the
// product-form (BCMP) assumptions behind the MVA models — with
// class-dependent service demands, FIFO is not product-form but PS is,
// so the simulated prototype uses PS for its CPU and disk.
//
// The implementation tracks progress in virtual fair-share time: a job
// arriving when the station has delivered `attained` units of
// per-job service finishes when attained reaches arrival-attained plus
// its demand. Between events attained advances at rate 1/n.
type PSStation struct {
	Name string

	sim      *Sim
	attained float64 // virtual per-job service delivered so far
	lastT    Time    // physical time of the last state update
	jobs     psHeap
	seq      uint64 // invalidates stale completion events

	util      stats.TimeWeighted
	qlen      stats.TimeWeighted
	completed int64
}

// psJob is one resident job ordered by virtual finish time.
type psJob struct {
	finish float64 // attained value at which the job completes
	order  uint64  // FIFO tie-break
	done   func()
}

type psHeap []psJob

func (h psHeap) Len() int { return len(h) }
func (h psHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].order < h[j].order
}
func (h psHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *psHeap) Push(x interface{}) { *h = append(*h, x.(psJob)) }
func (h *psHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	*h = old[:n-1]
	return j
}

// NewPSStation creates a processor-sharing station.
func NewPSStation(sim *Sim, name string) *PSStation {
	st := &PSStation{Name: name, sim: sim, lastT: sim.Now()}
	st.util.Update(sim.Now(), 0)
	st.qlen.Update(sim.Now(), 0)
	return st
}

// advance progresses virtual time to the simulator's now.
func (st *PSStation) advance() {
	now := st.sim.Now()
	if n := len(st.jobs); n > 0 && now > st.lastT {
		st.attained += (now - st.lastT) / float64(n)
	}
	st.lastT = now
}

// Submit adds a job with the given total service requirement; done
// runs at completion. Zero-service jobs complete via the event queue
// on the current tick.
func (st *PSStation) Submit(service Time, done func()) {
	if service < 0 {
		panic("des: negative service time")
	}
	st.advance()
	st.seq++
	heap.Push(&st.jobs, psJob{finish: st.attained + service, order: st.seq, done: done})
	st.qlen.Update(st.sim.Now(), float64(len(st.jobs)))
	st.util.Update(st.sim.Now(), 1)
	st.schedule()
}

// schedule arms the next completion event.
func (st *PSStation) schedule() {
	if len(st.jobs) == 0 {
		return
	}
	st.seq++
	mySeq := st.seq
	dt := (st.jobs[0].finish - st.attained) * float64(len(st.jobs))
	if dt < 0 {
		dt = 0
	}
	st.sim.After(dt, func() {
		if st.seq != mySeq {
			return // state changed; a newer event supersedes this one
		}
		st.complete()
	})
}

// complete pops every job whose virtual finish time has been reached.
func (st *PSStation) complete() {
	st.advance()
	const eps = 1e-12
	var finished []func()
	for len(st.jobs) > 0 && st.jobs[0].finish <= st.attained+eps {
		j := heap.Pop(&st.jobs).(psJob)
		finished = append(finished, j.done)
		st.completed++
	}
	now := st.sim.Now()
	st.qlen.Update(now, float64(len(st.jobs)))
	if len(st.jobs) == 0 {
		st.util.Update(now, 0)
	}
	st.schedule()
	for _, done := range finished {
		done()
	}
}

// ResetStats discards measurements gathered so far (warm-up).
func (st *PSStation) ResetStats() {
	now := st.sim.Now()
	st.util.Reset(now)
	st.qlen.Reset(now)
	if len(st.jobs) > 0 {
		st.util.Update(now, 1)
		st.qlen.Update(now, float64(len(st.jobs)))
	}
	st.completed = 0
}

// Utilization returns the busy fraction since the last reset.
func (st *PSStation) Utilization() float64 { return st.util.Mean(st.sim.Now()) }

// QueueLength returns the time-average number of resident jobs.
func (st *PSStation) QueueLength() float64 { return st.qlen.Mean(st.sim.Now()) }

// Completed returns jobs finished since the last reset.
func (st *PSStation) Completed() int64 { return st.completed }

// Resident returns the current number of jobs in service.
func (st *PSStation) Resident() int { return len(st.jobs) }
