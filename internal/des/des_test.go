package des

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(3, func() { order = append(order, 3) })
	s.Run(10)
	if len(order) != 3 || !sort.IntsAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v, want 10", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(4, func() {
		s.After(2, func() { fired = s.Now() })
	})
	s.Run(100)
	if fired != 6 {
		t.Fatalf("After fired at %v, want 6", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	s := New()
	ran := false
	s.At(10, func() { ran = true })
	s.Run(5)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(10)
	if !ran {
		t.Fatal("event at horizon not executed")
	}
}

func TestStepAndExecutedCount(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if !s.Step() || !s.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if s.Step() {
		t.Fatal("Step returned true with no events")
	}
	if s.Executed() != 2 {
		t.Fatalf("Executed = %d", s.Executed())
	}
}

func TestStationServesFIFO(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		st.Submit(1, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("station not FIFO: %v", order)
		}
	}
	if st.Completed() != 5 {
		t.Fatalf("completed = %d", st.Completed())
	}
}

func TestStationSerializesWork(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	var finish []Time
	for i := 0; i < 3; i++ {
		st.Submit(2, func() { finish = append(finish, s.Now()) })
	}
	s.Run(100)
	want := []Time{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestStationUtilization(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	st.Submit(3, func() {})
	s.Run(10)
	// Busy 3 of 10 seconds.
	if got := st.Utilization(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.3", got)
	}
	if math.Abs(st.BusyTime()-3) > 1e-9 {
		t.Fatalf("busy time = %v", st.BusyTime())
	}
}

func TestStationResetStats(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	st.Submit(5, func() {})
	s.Run(5)
	st.ResetStats()
	s.Run(10)
	if st.Utilization() != 0 {
		t.Fatalf("post-reset utilization = %v", st.Utilization())
	}
	if st.Completed() != 0 {
		t.Fatalf("post-reset completed = %d", st.Completed())
	}
}

func TestStationZeroServiceJob(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	done := false
	st.Submit(0, func() { done = true })
	s.Run(1)
	if !done {
		t.Fatal("zero-service job never completed")
	}
}

func TestStationNegativeServicePanics(t *testing.T) {
	s := New()
	st := NewStation(s, "cpu")
	defer func() {
		if recover() == nil {
			t.Fatal("negative service did not panic")
		}
	}()
	st.Submit(-1, func() {})
}

func TestStationContinuationResubmit(t *testing.T) {
	// A job's continuation resubmitting to the same station must work.
	s := New()
	st := NewStation(s, "cpu")
	hops := 0
	var loop func()
	loop = func() {
		hops++
		if hops < 5 {
			st.Submit(1, loop)
		}
	}
	st.Submit(1, loop)
	s.Run(100)
	if hops != 5 {
		t.Fatalf("hops = %d", hops)
	}
	if s.Now() < 5 {
		t.Fatalf("clock = %v, want >= 5", s.Now())
	}
}

// TestClosedLoopMatchesMVA drives a closed machine-repairman system
// and checks the measured throughput against the known exact MVA
// solution; this is the end-to-end validation that the DES kernel and
// the analytical solver describe the same system.
func TestClosedLoopMatchesMVA(t *testing.T) {
	const (
		clients = 20
		demand  = 0.040
		think   = 1.0
		warm    = 50.0
		measure = 2000.0
	)
	s := New()
	st := NewStation(s, "cpu")
	rng := stats.NewRand(42)
	completed := 0
	counting := false

	var cycle func()
	cycle = func() {
		s.After(rng.Exp(think), func() {
			st.Submit(rng.Exp(demand), func() {
				if counting {
					completed++
				}
				cycle()
			})
		})
	}
	for i := 0; i < clients; i++ {
		cycle()
	}
	s.Run(warm)
	counting = true
	st.ResetStats()
	s.Run(warm + measure)

	got := float64(completed) / measure

	// Exact MVA for one queueing center: X(n) solved stepwise.
	q := 0.0
	x := 0.0
	for n := 1; n <= clients; n++ {
		r := demand * (1 + q)
		x = float64(n) / (think + r)
		q = x * r
	}
	if math.Abs(got-x)/x > 0.05 {
		t.Fatalf("measured X = %.2f, MVA predicts %.2f", got, x)
	}
	// Utilization law cross-check.
	if u := st.Utilization(); math.Abs(u-x*demand)/(x*demand) > 0.06 {
		t.Fatalf("utilization %.3f vs utilization law %.3f", u, x*demand)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		s := New()
		st := NewStation(s, "cpu")
		rng := stats.NewRand(7)
		total := 0.0
		var cycle func()
		cycle = func() {
			s.After(rng.Exp(0.5), func() {
				st.Submit(rng.Exp(0.05), func() {
					total += s.Now()
					cycle()
				})
			})
		}
		for i := 0; i < 5; i++ {
			cycle()
		}
		s.Run(500)
		return total, s.Executed()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("runs diverged: (%v,%v) vs (%v,%v)", t1, e1, t2, e2)
	}
}
