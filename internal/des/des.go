// Package des is a deterministic discrete-event simulation kernel.
//
// The experimental validation of the paper compares model predictions
// against a measured system. This repository's measured system is a
// simulated prototype (see internal/cluster) built on this kernel:
// replicas become FIFO service stations, middleware hops become
// delays, and closed-loop clients drive the system in virtual time.
// Everything is single-threaded and seeded, so every experiment is
// exactly reproducible.
//
// The kernel is continuation-passing: a simulated process is a chain
// of closures scheduled with After/At or enqueued on Stations.
package des

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in seconds.
type Time = float64

// event is one scheduled callback. seq breaks ties so that events at
// identical times run in schedule order (deterministic FIFO).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	count  uint64 // events executed
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.count }

// At schedules fn at absolute time t. Scheduling in the past panics:
// it is always a bug in the caller.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now. Negative delays panic.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Step executes the next event and reports whether one existed.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.count++
	e.fn()
	return true
}

// Run executes events until the event queue drains or the next event
// lies beyond the until time. The clock finishes at until if the
// horizon was reached, otherwise at the last event time.
func (s *Sim) Run(until Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }
