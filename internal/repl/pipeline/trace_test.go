package pipeline

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTracerCommitSpanAssembly(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, 0)

	start := time.Now()
	// Certifier sub-stages land before the span opens (the version is
	// assigned inside certification).
	obsv := tr.CertStages()
	obsv("paxos", []int64{7}, 2*time.Millisecond)
	obsv("journal", []int64{7}, time.Millisecond)
	obsv("fsync", []int64{7}, 3*time.Millisecond)

	done := start.Add(10 * time.Millisecond)
	tr.CommitSpan(7, 2, start, done)
	tr.ApplyBatch(6, 7, 500*time.Microsecond, done.Add(time.Millisecond))
	tr.Ack(7, done.Add(2*time.Millisecond))

	spans := tr.Recent()
	if len(spans) != 1 {
		t.Fatalf("got %d recent spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Version != 7 || sp.Kind != "commit" || sp.Keys != 2 {
		t.Errorf("span = %+v", sp)
	}
	// certify = (done-start) - paxos - journal - fsync = 10 - 6 = 4ms
	if got := sp.Stages[StageCertify]; got != 4*time.Millisecond {
		t.Errorf("certify stage = %v, want 4ms", got)
	}
	if sp.Stages[StagePaxos] != 2*time.Millisecond ||
		sp.Stages[StageJournal] != time.Millisecond ||
		sp.Stages[StageFsync] != 3*time.Millisecond {
		t.Errorf("sub-stages = %v", sp.Stages)
	}
	if sp.Stages[StageApply] != 500*time.Microsecond {
		t.Errorf("apply stage = %v, want 500µs", sp.Stages[StageApply])
	}
	if sp.Stages[StageAck] != 2*time.Millisecond {
		t.Errorf("ack stage = %v, want 2ms", sp.Stages[StageAck])
	}
	if got := sp.Total(); got != 12*time.Millisecond {
		t.Errorf("total = %v, want 12ms", got)
	}

	// Every traversed stage shows up in the per-stage histograms.
	counts, nanos := tr.StageTotals()
	for _, st := range []int{StageCertify, StagePaxos, StageJournal, StageFsync, StageApply, StageAck} {
		if counts[st] != 1 {
			t.Errorf("stage %s count = %d, want 1", StageNames[st], counts[st])
		}
		if nanos[st] <= 0 {
			t.Errorf("stage %s ns = %d, want > 0", StageNames[st], nanos[st])
		}
	}
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, name := range StageNames {
		if !strings.Contains(out, `replicadb_stage_latency_seconds_count{stage="`+name+`"} 1`) {
			t.Errorf("exposition missing stage %q:\n%s", name, out)
		}
	}
}

func TestTracerPropagateSpan(t *testing.T) {
	tr := NewTracer(nil, 0)
	fetched := time.Now()
	tr.PropagateSpan(42, 3, fetched)
	end := fetched.Add(4 * time.Millisecond)
	tr.ApplyBatch(40, 45, time.Millisecond, end)

	spans := tr.Recent()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != "propagate" || sp.Version != 42 {
		t.Errorf("span = %+v", sp)
	}
	if sp.Stages[StageApply] != time.Millisecond {
		t.Errorf("apply = %v", sp.Stages[StageApply])
	}
	if sp.Total() != 4*time.Millisecond {
		t.Errorf("total = %v, want 4ms", sp.Total())
	}
	// Apply totals count every record in the batch.
	counts, _ := tr.StageTotals()
	if counts[StageApply] != 5 {
		t.Errorf("apply count = %d, want 5", counts[StageApply])
	}
}

func TestTracerSlowLog(t *testing.T) {
	tr := NewTracer(nil, 10*time.Millisecond)
	base := time.Now()
	// One fast, one slow commit span.
	tr.CommitSpan(1, 1, base, base.Add(time.Millisecond))
	tr.Ack(1, base.Add(2*time.Millisecond))
	tr.CommitSpan(2, 1, base, base.Add(20*time.Millisecond))
	tr.Ack(2, base.Add(25*time.Millisecond))

	slow := tr.Slow()
	if len(slow) != 1 {
		t.Fatalf("got %d slow spans, want 1: %+v", len(slow), slow)
	}
	if slow[0].Version != 2 {
		t.Errorf("slow span version = %d, want 2", slow[0].Version)
	}

	// With nothing over the threshold the endpoint falls back to the
	// slowest recent spans.
	tr2 := NewTracer(nil, time.Hour)
	tr2.CommitSpan(1, 1, base, base.Add(time.Millisecond))
	tr2.Ack(1, base.Add(time.Millisecond))
	tr2.CommitSpan(2, 1, base, base.Add(5*time.Millisecond))
	tr2.Ack(2, base.Add(6*time.Millisecond))
	got := tr2.Slow()
	if len(got) != 2 || got[0].Version != 2 {
		t.Errorf("fallback slow = %+v, want slowest (v2) first", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.CommitSpan(1, 1, time.Now(), time.Now())
	tr.PropagateSpan(1, 1, time.Now())
	tr.ApplyBatch(0, 1, time.Millisecond, time.Now())
	tr.Ack(1, time.Now())
	tr.ObserveStage(StageFsync, time.Millisecond, 1)
	if tr.CertStages() != nil {
		t.Error("nil tracer CertStages should be nil")
	}
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Error("nil tracer rings should be nil")
	}
	c, n := tr.StageTotals()
	if c[0] != 0 || n[0] != 0 {
		t.Error("nil tracer totals should be zero")
	}
}

func TestTracerEvictionBounded(t *testing.T) {
	tr := NewTracer(nil, time.Hour)
	base := time.Now()
	// Open far more spans than capacity without ever acking them.
	for v := int64(1); v <= maxOpen+500; v++ {
		tr.CommitSpan(v, 1, base, base.Add(time.Millisecond))
	}
	tr.mu.Lock()
	open := len(tr.open)
	tr.mu.Unlock()
	if open > maxOpen {
		t.Errorf("open spans = %d, want <= %d", open, maxOpen)
	}
	// Evicted spans were finalized into the recent ring.
	if got := len(tr.Recent()); got != recentCap {
		t.Errorf("recent ring = %d, want %d", got, recentCap)
	}
	// A late ack for an evicted span is harmless.
	tr.Ack(1, base.Add(time.Second))
}

func TestTracerPendingStampsBounded(t *testing.T) {
	tr := NewTracer(nil, time.Hour)
	obsv := tr.CertStages()
	for v := int64(1); v <= maxPending+100; v++ {
		obsv("journal", []int64{v}, time.Microsecond)
	}
	tr.mu.Lock()
	pending := len(tr.pending)
	tr.mu.Unlock()
	if pending > maxPending {
		t.Errorf("pending stamps = %d, want <= %d", pending, maxPending)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(obs.NewRegistry(), 0)
	obsv := tr.CertStages()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := time.Now()
			for i := 0; i < 200; i++ {
				v := int64(w*1000 + i + 1)
				obsv("journal", []int64{v}, time.Microsecond)
				tr.CommitSpan(v, 1, base, base.Add(time.Millisecond))
				tr.ApplyBatch(v-1, v, time.Microsecond, base.Add(2*time.Millisecond))
				tr.Ack(v, base.Add(3*time.Millisecond))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Recent()
			tr.Slow()
			tr.StageTotals()
		}
	}()
	wg.Wait()
	<-done
	counts, _ := tr.StageTotals()
	if counts[StageAck] != 800 {
		t.Errorf("ack count = %d, want 800", counts[StageAck])
	}
}
