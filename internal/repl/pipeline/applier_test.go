package pipeline_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/certifier"
	"repro/internal/repl/pipeline"
	"repro/internal/sidb"
	"repro/internal/stats"
	"repro/internal/writeset"
)

// genRecords certifies a deterministic stream of writesets and returns
// the certified records plus the certifier that produced them. Row
// keys are Zipf-distributed over keyspace rows across tables tables:
// theta near 1 makes writesets collide constantly (high conflict),
// theta 0 with a large keyspace makes them mostly disjoint.
func genRecords(t testing.TB, count, wsLen, keyspace, tables int, theta float64, seed uint64) ([]certifier.Record, *certifier.Certifier) {
	t.Helper()
	cert := certifier.New()
	rng := stats.NewRand(seed)
	zipf := stats.NewZipf(keyspace, theta)
	var recs []certifier.Record
	for len(recs) < count {
		entries := make([]writeset.Entry, 0, wsLen)
		seen := make(map[writeset.Key]bool, wsLen)
		for len(entries) < wsLen {
			k := writeset.Key{
				Table: fmt.Sprintf("t%d", rng.Intn(tables)),
				Row:   int64(zipf.Sample(rng)),
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			entries = append(entries, writeset.Entry{Key: k, Value: fmt.Sprintf("v%d-%d", len(recs), len(entries))})
		}
		// Certify at the latest version so nothing aborts: the conflict
		// structure we want lives in the apply stage, not the certifier.
		out, err := cert.Certify(cert.Version(), writeset.New(entries))
		if err != nil || !out.Committed {
			t.Fatalf("certify: %+v %v", out, err)
		}
		recs = append(recs, certifier.Record{Version: out.Version, Writeset: writeset.New(entries)})
	}
	return recs, cert
}

// applyAll drains recs into a fresh database through an applier with
// the given worker count, in chunks (so batches have interesting
// sizes), and returns the database.
func applyAll(t testing.TB, recs []certifier.Record, workers, chunk int) (*sidb.DB, *pipeline.Applier) {
	t.Helper()
	db := sidb.New()
	ap := pipeline.NewApplier(db, workers)
	for i := 0; i < len(recs); i += chunk {
		end := i + chunk
		if end > len(recs) {
			end = len(recs)
		}
		if n := ap.Apply(recs[i:end]); n != end-i {
			t.Fatalf("applied %d of %d", n, end-i)
		}
	}
	return db, ap
}

func dumpAll(t testing.TB, db *sidb.DB) map[string]map[int64]string {
	t.Helper()
	out := make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		rows, err := db.Dump(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = rows
	}
	return out
}

// TestParallelApplyEquivalence is the reference-equivalence proof the
// parallel applier ships under: on a high-conflict Zipf workload
// (theta 0.95 over 64 rows, so nearly every batch carries chained
// conflicts), a workers=8 applier must produce row-for-row identical
// tables, the same database version and the same applied cursor as
// serial apply — and both must agree with the certifier that produced
// the stream. Run under -race this also proves the worker pool's
// install ordering is properly synchronized.
func TestParallelApplyEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		keyspace int
		theta    float64
	}{
		{"high-conflict-zipf", 64, 0.95},
		{"low-conflict", 1 << 16, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs, cert := genRecords(t, 500, 8, tc.keyspace, 3, tc.theta, 42)
			serialDB, serialAp := applyAll(t, recs, 1, 37)
			parDB, parAp := applyAll(t, recs, 8, 37)

			if got, want := parAp.Applied(), serialAp.Applied(); got != want {
				t.Fatalf("parallel cursor %d, serial %d", got, want)
			}
			if got, want := parAp.Applied(), cert.Version(); got != want {
				t.Fatalf("cursor %d, certifier version %d", got, want)
			}
			if got, want := parDB.Version(), serialDB.Version(); got != want {
				t.Fatalf("parallel db version %d, serial %d", got, want)
			}
			got, want := dumpAll(t, parDB), dumpAll(t, serialDB)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel tables diverge from serial apply:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestParallelApplyConcurrentIngest hammers one applier from many
// goroutines handing it overlapping slices of the same record stream —
// the puller-vs-Sync-handler race the pipeline serializes. Every
// record must apply exactly once and the result must equal serial
// apply.
func TestParallelApplyConcurrentIngest(t *testing.T) {
	recs, _ := genRecords(t, 400, 4, 128, 2, 0.8, 7)
	serialDB, _ := applyAll(t, recs, 1, len(recs))

	db := sidb.New()
	ap := pipeline.NewApplier(db, 8)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine re-submits the whole stream in ragged
			// chunks; duplicates and already-applied prefixes must be
			// skipped, gaps must truncate.
			chunk := 13 + 7*g
			for i := 0; i < len(recs); i += chunk {
				end := i + chunk
				if end > len(recs) {
					end = len(recs)
				}
				ap.Apply(recs[i:end])
			}
		}(g)
	}
	wg.Wait()
	// One final pass closes any gap-truncated tail.
	ap.Apply(recs)

	if got, want := ap.Applied(), int64(len(recs)); got != want {
		t.Fatalf("applied cursor %d, want %d", got, want)
	}
	if total := ap.Stats().Total; total != int64(len(recs)) {
		t.Fatalf("total applied %d, want %d (records must apply exactly once)", total, len(recs))
	}
	if got, want := dumpAll(t, db), dumpAll(t, serialDB); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent ingest diverges from serial apply")
	}
}

// TestApplierGapAndDuplicate pins the version-order gate: duplicates
// are skipped, a gap truncates the run, and the skipped suffix applies
// once the hole is filled.
func TestApplierGapAndDuplicate(t *testing.T) {
	recs, _ := genRecords(t, 10, 2, 1<<10, 1, 0, 3)
	db := sidb.New()
	ap := pipeline.NewApplier(db, 4)

	if n := ap.Apply(recs[:4]); n != 4 {
		t.Fatalf("applied %d, want 4", n)
	}
	// Duplicate prefix: nothing happens.
	if n := ap.Apply(recs[:4]); n != 0 {
		t.Fatalf("duplicate apply installed %d records", n)
	}
	// Gap: versions 6.. cannot apply before 5.
	if n := ap.Apply(recs[5:]); n != 0 {
		t.Fatalf("gapped apply installed %d records", n)
	}
	if lag := ap.Stats().Lag; lag != int64(len(recs)-4) {
		t.Fatalf("lag %d, want %d (observed head minus cursor)", lag, len(recs)-4)
	}
	// Mixed batch with duplicates + the missing version: the dense run
	// drains to the end.
	if n := ap.Apply(recs); n != len(recs)-4 {
		t.Fatalf("fill apply installed %d, want %d", n, len(recs)-4)
	}
	if got := ap.Applied(); got != int64(len(recs)) {
		t.Fatalf("cursor %d, want %d", got, len(recs))
	}
}

// TestApplierJournalOrder proves journaling stays version-ordered
// ahead of the parallel stage: with a journal hook attached, a
// workers=8 batch must journal every writeset in strictly ascending
// version order before any install completes out of order could
// disturb it.
func TestApplierJournalOrder(t *testing.T) {
	recs, _ := genRecords(t, 200, 4, 1<<12, 2, 0, 11)
	db := sidb.New()
	var mu sync.Mutex
	var versions []int64
	db.SetJournal(func(ws writeset.Writeset, version int64) error {
		mu.Lock()
		versions = append(versions, version)
		mu.Unlock()
		return nil
	})
	ap := pipeline.NewApplier(db, 8)
	if n := ap.Apply(recs); n != len(recs) {
		t.Fatalf("applied %d of %d", n, len(recs))
	}
	if len(versions) != len(recs) {
		t.Fatalf("journaled %d writesets, want %d", len(versions), len(recs))
	}
	for i, v := range versions {
		if v != int64(i)+1 {
			t.Fatalf("journal order broken at %d: version %d", i, v)
		}
	}
}

// BenchmarkApplyRecords measures apply throughput (records/sec via
// b.N) at different worker counts on low- and high-conflict mixes.
// The CI smoke step runs it with -benchtime=1x so a regression to
// serial-only apply fails loudly; BENCH_PR5.json records full runs.
func BenchmarkApplyRecords(b *testing.B) {
	const batch = 256
	for _, mix := range []struct {
		name     string
		keyspace int
		theta    float64
	}{
		{"low-conflict", 1 << 16, 0},
		{"high-conflict", 64, 0.95},
	} {
		recs, _ := genRecords(b, 4096, 8, mix.keyspace, 3, mix.theta, 1)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mix.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db := sidb.New()
					ap := pipeline.NewApplier(db, workers)
					b.StartTimer()
					for off := 0; off < len(recs); off += batch {
						end := off + batch
						if end > len(recs) {
							end = len(recs)
						}
						ap.Apply(recs[off:end])
					}
				}
				b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}
