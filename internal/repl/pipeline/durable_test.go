package pipeline_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/repl/pipeline"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// TestMaybeCompactSerializesCaptureAndRewrite pins the fix for the
// concurrent-compaction data loss: cursor journaling runs from both
// the propagation run loop and the wire Sync handlers, so two
// goroutines could capture snapshots out of order and the one holding
// the OLDER capture could rewrite the WAL after its competitor
// compacted with a newer one — dropping the newer snapshot while the
// applies it superseded were already gone. MaybeCompact must hold its
// lock across BOTH the capture and the rewrite: a second caller may
// not start its capture while the first is mid-compaction.
func TestMaybeCompactSerializesCaptureAndRewrite(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	d := pipeline.NewDurability(w, 1) // any growth makes compaction due
	for v := int64(1); v <= 4; v++ {
		if err := w.AppendApply(v, writeset.FromRows("t", v, []string{"x"})); err != nil {
			t.Fatal(err)
		}
	}

	entered := make(chan struct{}) // the first capture has started
	release := make(chan struct{}) // lets the first capture finish
	var captures atomic.Int32

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		d.MaybeCompact(func() (int64, int64, int64, int64, map[string]map[int64]string, error) {
			captures.Add(1)
			close(entered)
			<-release
			return 4, 4, 4, 4, map[string]map[int64]string{"t": {1: "new"}}, nil
		})
	}()
	<-entered

	// The racing caller: its capture would be older (version 2). It must
	// block behind the first compaction, not interleave with it.
	secondDone := make(chan struct{})
	go func() {
		defer close(secondDone)
		d.MaybeCompact(func() (int64, int64, int64, int64, map[string]map[int64]string, error) {
			captures.Add(1)
			return 2, 2, 2, 2, map[string]map[int64]string{"t": {1: "old"}}, nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // give an unserialized capture time to run
	if n := captures.Load(); n != 1 {
		t.Fatalf("second capture ran while the first was mid-compaction (%d captures)", n)
	}
	close(release)
	<-firstDone
	<-secondDone
	w.Close()

	// Whatever the second caller did once unblocked (skip on due(), or a
	// stale rewrite the WAL rejects), the newer snapshot must survive.
	fs.PowerCycle(true)
	_, rec, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapLocal != 4 || rec.Snapshot["t"][1] != "new" {
		t.Fatalf("recovered snapshot local %d %+v, want the newer capture (local 4)", rec.SnapLocal, rec.Snapshot)
	}
}

// TestCreateTableDurableBeforeAck: Durability.Table backs the
// CreateTable acknowledgement, so it must block on the group fsync —
// an acked table creation may not vanish in a power loss.
func TestCreateTableDurableBeforeAck(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	d := pipeline.NewDurability(w, 0)
	if err := d.Table("acked"); err != nil {
		t.Fatal(err)
	}
	w.Close()

	fs.PowerCycle(false) // power loss: unsynced bytes vanish
	_, rec, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 1 || rec.Tables[0] != "acked" {
		t.Fatalf("recovered tables %v, want [acked]", rec.Tables)
	}
}
