package pipeline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Commit-path stages, in pipeline order. The indexes are shared with
// the wire Stats extension, so they are append-only.
const (
	// StageCertify is the certification call as seen by the submitting
	// node: queueing (group-commit batching, lock wait), the conflict
	// check, and — off the certifier host — the network round trip,
	// minus the sub-stages measured separately below.
	StageCertify = iota
	// StagePaxos is the Paxos proposal round(s) that replicate the
	// certification log entry (replicated certifier only).
	StagePaxos
	// StageJournal is the writeset append into the certifier's
	// write-ahead journal, staged under the certification lock.
	StageJournal
	// StageFsync is the group-commit fsync wait that makes the
	// journal entry durable.
	StageFsync
	// StageApply is the conflict-aware installation of the writeset
	// into the local database (batch install time).
	StageApply
	// StageAck is the tail from the certification verdict to the
	// client-visible commit acknowledgement (origin apply when apply
	// is synchronous, plus reply encoding).
	StageAck
	// NumStages is the number of commit-path stages.
	NumStages
)

// StageNames maps stage indexes to their metric label values.
var StageNames = [NumStages]string{"certify", "paxos", "journal", "fsync", "apply", "ack"}

// stageIndex maps the certifier's stage-observer names onto indexes.
var stageIndex = map[string]int{"paxos": StagePaxos, "journal": StageJournal, "fsync": StageFsync}

// Span is the trace record one writeset carries through the commit
// path: wall-clock start (enqueue at the submitting node) plus one
// elapsed duration per stage it traversed. A span is either a commit
// span (certify → ack at the node that ran the transaction) or a
// propagation span (FetchSince → apply on a replica consuming the
// update stream).
type Span struct {
	Version int64     `json:"version"`
	Kind    string    `json:"kind"`            // "commit" or "propagate"
	Keys    int       `json:"keys"`            // writeset entries
	Trace   uint64    `json:"trace,omitempty"` // cross-node trace id (0 when unknown)
	Start   time.Time `json:"start"`
	// Stages holds elapsed nanoseconds per stage, indexed by the
	// Stage* constants; zero means the stage was not traversed (or
	// was not separately measurable at this node).
	Stages [NumStages]time.Duration `json:"stages"`
	End    time.Time                `json:"end"`

	ackStart time.Time // certification verdict time, ack measured from here
}

// Total returns the span's end-to-end duration.
func (s *Span) Total() time.Duration {
	if s.End.IsZero() || s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Tracer assembles commit-path spans and feeds the per-stage latency
// histograms. One Tracer serves one node. All methods are nil-safe:
// a nil *Tracer disables tracing with near-zero overhead, which is
// what the instrumentation-off benchmark configuration uses.
//
// Span assembly is version-keyed. The certifier's sub-stage stamps
// (paxos, journal, fsync) can arrive before the submitting side knows
// its version — the version is assigned inside certification — so
// they are stashed in a bounded pending map and folded into the span
// when it opens. Open spans that never finish (e.g. a certifier-host
// span for a transaction whose ack happens on another node) are
// finalized by eviction.
type Tracer struct {
	slow time.Duration // slow-transaction threshold

	hist [NumStages]*obs.Histogram

	counts [NumStages]atomic.Int64
	nanos  [NumStages]atomic.Int64

	mu        sync.Mutex
	open      map[int64]*Span
	openOrder []int64 // insertion order, for eviction
	pending   map[int64][NumStages]time.Duration
	pendOrder []int64
	recent    spanRing
	slowRing  spanRing

	// meta is the bounded version → cross-node trace metadata map:
	// the trace id the transaction carried on the wire and the
	// certifier leader's commit wall-clock (UnixNano). Written by the
	// certification path (host) or the FetchSince decoder (replicas),
	// read by span assembly and the replication-lag observer.
	meta      map[int64]commitMeta
	metaOrder []int64

	// lagObs, when set, observes commit-to-visible replication lag for
	// every applied version whose commit timestamp is known.
	lagObs func(time.Duration)

	// stallObs, when set, observes any single stage wait at or above
	// the slow threshold — the event journal's fsync-stall feed.
	stallObs func(stage int, d time.Duration)

	// slowObs, when set, observes every finalized span at or above the
	// slow threshold. Called under the tracer lock: the hook must be
	// cheap and must not call back into the Tracer.
	slowObs func(sp Span)

	lagCount atomic.Int64
	lagSumNs atomic.Int64
	lagMaxNs atomic.Int64
}

// commitMeta is a transaction's cross-node identity: its wire trace id
// and the certifier leader's commit wall-clock (UnixNano, 0 unknown).
type commitMeta struct {
	trace    uint64
	commitNs int64
}

const (
	maxOpen    = 4096
	maxPending = 4096
	maxMeta    = 4096
	recentCap  = 256
	slowCap    = 64
	// DefaultSlowTxn is the default slow-transaction threshold.
	DefaultSlowTxn = 50 * time.Millisecond
)

// NewTracer creates a tracer and registers the per-stage latency
// histograms on reg (one histogram per stage, labelled stage=<name>).
// slow <= 0 selects DefaultSlowTxn.
func NewTracer(reg *obs.Registry, slow time.Duration) *Tracer {
	if slow <= 0 {
		slow = DefaultSlowTxn
	}
	t := &Tracer{
		slow:     slow,
		open:     make(map[int64]*Span),
		pending:  make(map[int64][NumStages]time.Duration),
		meta:     make(map[int64]commitMeta),
		recent:   spanRing{buf: make([]*Span, recentCap)},
		slowRing: spanRing{buf: make([]*Span, slowCap)},
	}
	if reg != nil {
		for i := 0; i < NumStages; i++ {
			t.hist[i] = reg.Histogram("replicadb_stage_latency_seconds",
				"Commit-path latency by pipeline stage.",
				nil, obs.L("stage", StageNames[i]))
		}
	}
	return t
}

// observe feeds one stage observation into the histogram and the
// cumulative totals. n is the number of writesets the duration covers
// (group commit and batch apply amortize one wait over many records;
// the totals count every record so windowed means stay per-writeset).
func (t *Tracer) observe(stage int, d time.Duration, n int) {
	if d < 0 {
		d = 0
	}
	if h := t.hist[stage]; h != nil {
		h.ObserveDuration(d)
	}
	t.counts[stage].Add(int64(n))
	t.nanos[stage].Add(int64(d))
	if t.stallObs != nil && d >= t.slow {
		t.stallObs(stage, d)
	}
}

// SetStallObserver installs the per-stage stall hook, fired whenever a
// single stage wait reaches the slow threshold. Install before
// traffic; the Tracer does not synchronize replacement.
func (t *Tracer) SetStallObserver(fn func(stage int, d time.Duration)) {
	if t == nil {
		return
	}
	t.stallObs = fn
}

// SetSlowObserver installs the slow-span hook, fired once per
// finalized span at or above the slow threshold. The hook runs under
// the tracer lock: keep it cheap and do not call back into the Tracer.
func (t *Tracer) SetSlowObserver(fn func(sp Span)) {
	if t == nil {
		return
	}
	t.slowObs = fn
}

// ObserveStage records one stage observation (d covering n writesets)
// without span bookkeeping — for stages reached outside the certifier
// path, like the single-master design's commit fsync wait.
func (t *Tracer) ObserveStage(stage int, d time.Duration, n int) {
	if t == nil || stage < 0 || stage >= NumStages {
		return
	}
	t.observe(stage, d, n)
}

// StageTotals returns the cumulative per-stage observation counts and
// summed nanoseconds — the wire Stats extension's payload.
func (t *Tracer) StageTotals() (counts, nanos [NumStages]int64) {
	if t == nil {
		return
	}
	for i := 0; i < NumStages; i++ {
		counts[i] = t.counts[i].Load()
		nanos[i] = t.nanos[i].Load()
	}
	return
}

// CertStages returns the certifier stage-observer callback feeding
// this tracer, or nil on a nil tracer (tracing disabled).
func (t *Tracer) CertStages() func(stage string, versions []int64, d time.Duration) {
	if t == nil {
		return nil
	}
	return func(stage string, versions []int64, d time.Duration) {
		idx, ok := stageIndex[stage]
		if !ok || len(versions) == 0 {
			return
		}
		t.observe(idx, d, len(versions))
		t.mu.Lock()
		for _, v := range versions {
			if sp := t.open[v]; sp != nil {
				sp.Stages[idx] += d
				continue
			}
			st, ok := t.pending[v]
			if !ok {
				if len(t.pendOrder) >= maxPending {
					delete(t.pending, t.pendOrder[0])
					t.pendOrder = t.pendOrder[1:]
				}
				t.pendOrder = append(t.pendOrder, v)
			}
			st[idx] += d
			t.pending[v] = st
		}
		t.mu.Unlock()
	}
}

// NoteCommitMeta records a version's cross-node trace metadata: the
// trace id the transaction carried and the certifier leader's commit
// wall-clock (UnixNano). Nonzero fields win over zero on merge, so
// the certification path (trace known, timestamp stamped at the
// leader) and the FetchSince decoder (both relayed) compose. The map
// is bounded; span assembly and the lag observer read it.
func (t *Tracer) NoteCommitMeta(version int64, trace uint64, commitNs int64) {
	if t == nil || version <= 0 || (trace == 0 && commitNs == 0) {
		return
	}
	t.mu.Lock()
	m, ok := t.meta[version]
	if !ok {
		if len(t.metaOrder) >= maxMeta {
			delete(t.meta, t.metaOrder[0])
			t.metaOrder = t.metaOrder[1:]
		}
		t.metaOrder = append(t.metaOrder, version)
	}
	if trace != 0 {
		m.trace = trace
	}
	if commitNs != 0 {
		m.commitNs = commitNs
	}
	t.meta[version] = m
	// A span already open for this version (apply racing ahead of the
	// meta arriving is the common order on the host) picks the id up.
	if sp := t.open[version]; sp != nil && sp.Trace == 0 {
		sp.Trace = m.trace
	}
	t.mu.Unlock()
}

// CommitMeta returns a version's recorded trace id and leader commit
// timestamp (zero values when unknown) — the FetchSince reply fill.
func (t *Tracer) CommitMeta(version int64) (trace uint64, commitNs int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	m := t.meta[version]
	t.mu.Unlock()
	return m.trace, m.commitNs
}

// SetLagObserver installs the commit-to-visible replication-lag hook,
// fired once per applied version whose leader commit timestamp is
// known. Install before traffic; the Tracer does not synchronize
// replacement.
func (t *Tracer) SetLagObserver(fn func(time.Duration)) {
	if t == nil {
		return
	}
	t.lagObs = fn
}

// LagTotals returns the cumulative replication-lag observations:
// count, summed nanoseconds, and the worst single observation — the
// wire Stats reply's lag block.
func (t *Tracer) LagTotals() (count, sumNs, maxNs int64) {
	if t == nil {
		return
	}
	return t.lagCount.Load(), t.lagSumNs.Load(), t.lagMaxNs.Load()
}

// observeLag records one commit-to-visible lag observation. Lag is
// measured across machines (leader commit clock vs local apply clock),
// so clock skew can drive it negative; clamp at zero rather than
// poisoning the histogram.
func (t *Tracer) observeLag(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.lagCount.Add(1)
	t.lagSumNs.Add(int64(d))
	for {
		cur := t.lagMaxNs.Load()
		if int64(d) <= cur || t.lagMaxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	if t.lagObs != nil {
		t.lagObs(d)
	}
}

// CommitSpan opens the commit span for a freshly certified writeset:
// start is when the submitting node enqueued the certification
// request, done is when the verdict returned. The measured sub-stages
// stashed by the certifier observer are folded in; the remainder is
// the certify stage. The span stays open for the ack (and, when apply
// runs before the ack, the apply) stamp.
func (t *Tracer) CommitSpan(version int64, keys int, start, done time.Time) {
	if t == nil {
		return
	}
	sp := &Span{Version: version, Kind: "commit", Keys: keys, Start: start, ackStart: done}
	t.mu.Lock()
	sp.Trace = t.meta[version].trace
	if st, ok := t.pending[version]; ok {
		sp.Stages = st
		delete(t.pending, version)
		// pendOrder entry is left behind; eviction skips deleted keys.
	}
	sub := sp.Stages[StagePaxos] + sp.Stages[StageJournal] + sp.Stages[StageFsync]
	certify := done.Sub(start) - sub
	if certify < 0 {
		certify = 0
	}
	sp.Stages[StageCertify] = certify
	t.insertOpenLocked(version, sp)
	t.mu.Unlock()
	t.observe(StageCertify, certify, 1)
}

// PropagateSpan opens a propagation span for one representative
// version of a fetched batch (sampling one span per fetch keeps the
// cost bounded while the apply histogram still sees every batch).
func (t *Tracer) PropagateSpan(version int64, keys int, fetched time.Time) {
	if t == nil {
		return
	}
	sp := &Span{Version: version, Kind: "propagate", Keys: keys, Start: fetched}
	t.mu.Lock()
	sp.Trace = t.meta[version].trace
	if _, exists := t.open[version]; !exists {
		t.insertOpenLocked(version, sp)
	}
	t.mu.Unlock()
}

// insertOpenLocked records an open span, evicting (finalizing) the
// oldest one past capacity.
func (t *Tracer) insertOpenLocked(version int64, sp *Span) {
	if len(t.openOrder) >= maxOpen {
		old := t.openOrder[0]
		t.openOrder = t.openOrder[1:]
		if osp := t.open[old]; osp != nil {
			delete(t.open, old)
			t.finalizeLocked(osp)
		}
	}
	t.open[version] = sp
	t.openOrder = append(t.openOrder, version)
}

// ApplyBatch stamps the apply stage: one batch install of versions
// (from..to] took d. The histogram sees the batch duration once; the
// totals count every record; every open span in the range is stamped
// with the batch duration (the wait any transaction in the batch
// experienced), and propagation spans complete here.
func (t *Tracer) ApplyBatch(from, to int64, d time.Duration, end time.Time) {
	if t == nil || to <= from {
		return
	}
	t.observe(StageApply, d, int(to-from))
	var lags []time.Duration
	t.mu.Lock()
	for v := from + 1; v <= to; v++ {
		if m := t.meta[v]; m.commitNs > 0 {
			// Commit-to-visible replication lag: leader commit clock to
			// local apply completion (cross-machine, clamped in
			// observeLag against clock skew).
			lags = append(lags, end.Sub(time.Unix(0, m.commitNs)))
		}
		sp := t.open[v]
		if sp == nil {
			continue
		}
		if sp.Trace == 0 {
			sp.Trace = t.meta[v].trace
		}
		sp.Stages[StageApply] = d
		if sp.Kind == "propagate" {
			sp.End = end
			t.removeOpenLocked(v)
			t.finalizeLocked(sp)
		}
	}
	t.mu.Unlock()
	for _, lag := range lags {
		t.observeLag(lag)
	}
}

// Ack completes a commit span: the client-visible acknowledgement for
// version was written at end.
func (t *Tracer) Ack(version int64, end time.Time) {
	if t == nil || version <= 0 {
		return
	}
	t.mu.Lock()
	sp := t.open[version]
	if sp == nil || sp.Kind != "commit" {
		t.mu.Unlock()
		return
	}
	ack := end.Sub(sp.ackStart)
	if ack < 0 {
		ack = 0
	}
	sp.Stages[StageAck] = ack
	sp.End = end
	t.removeOpenLocked(version)
	t.finalizeLocked(sp)
	t.mu.Unlock()
	t.observe(StageAck, ack, 1)
}

func (t *Tracer) removeOpenLocked(version int64) {
	delete(t.open, version)
	for i, v := range t.openOrder {
		if v == version {
			t.openOrder = append(t.openOrder[:i], t.openOrder[i+1:]...)
			break
		}
	}
}

// finalizeLocked moves a span into the recent ring (and the slow ring
// past the threshold). Spans evicted without an End get one
// synthesized from their stamps so Total stays meaningful.
func (t *Tracer) finalizeLocked(sp *Span) {
	if sp.End.IsZero() {
		var sum time.Duration
		for _, d := range sp.Stages {
			sum += d
		}
		sp.End = sp.Start.Add(sum)
	}
	t.recent.push(sp)
	if sp.Total() >= t.slow {
		t.slowRing.push(sp)
		if t.slowObs != nil {
			t.slowObs(*sp)
		}
	}
}

// Recent returns the most recently completed spans, newest first.
func (t *Tracer) Recent() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recent.snapshot()
}

// Slow returns recent spans at or above the slow threshold, slowest
// first — the /debug/slowtxns payload. When nothing crossed the
// threshold yet, the slowest recent spans are returned instead so the
// endpoint is useful from the first request.
func (t *Tracer) Slow() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.slowRing.snapshot()
	if len(out) == 0 {
		out = t.recent.snapshot()
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	if len(out) > slowCap {
		out = out[:slowCap]
	}
	return out
}

// SlowThreshold returns the slow-transaction threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// spanRing is a fixed-capacity overwrite ring of completed spans.
type spanRing struct {
	buf  []*Span
	next int
	full bool
}

func (r *spanRing) push(sp *Span) {
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// snapshot returns the ring's spans newest first, copied out.
func (r *spanRing) snapshot() []Span {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, *r.buf[idx])
	}
	return out
}
