// Package pipeline is the shared replication pipeline every engine in
// this repository is built on. A replica — in-process or networked,
// multi-master or single-master, durable or in-memory — moves every
// committed writeset through the same four stages:
//
//	certify → journal → apply → ack/compact
//
// The stages are owned here, once; the engines inject the pieces that
// differ and delete the loops they used to copy-paste:
//
//   - certify: a CertSource is the feed of certified records past a
//     cursor. The mm certifier host injects its local certifier, remote
//     mm replicas inject a wire FetchSince link, the sm master injects
//     its propagation log. HostCert fronts the host-side certifier with
//     group commit, latency observation and long-poll wakeups.
//   - journal: Durability is the write-ahead-log stage — version-ordered
//     appends ahead of apply, group fsync, advisory cursors, and
//     serialized snapshot compaction. Nodes without a WAL simply carry
//     none (the in-memory journal is its absence).
//   - apply: Applier installs certified records into the local sidb
//     database — in version order from the outside, conflict-aware
//     parallel on the inside (see applier.go).
//   - ack/compact: Notify wakes long-polling peers when versions
//     commit; PeerCursors tracks what every peer applied, bounding both
//     certification-log GC and WAL compaction; Puller is the
//     propagation loop that long-polls a primary and feeds the applier.
package pipeline

import (
	"sync"
	"time"

	"repro/internal/certifier"
	"repro/internal/writeset"
)

// CertSource yields every certified record with version > v in
// ascending version order — the propagation feed the apply stage
// drains. The local certifier, the sm propagation log and the wire
// FetchSince client all provide one.
type CertSource interface {
	Since(v int64) []certifier.Record
}

// Notify wakes long-polling peers when new versions commit.
type Notify struct {
	mu     sync.Mutex
	latest int64
	ch     chan struct{} // closed and replaced on every bump
}

// NewNotify returns a Notify with no version published yet.
func NewNotify() *Notify {
	return &Notify{ch: make(chan struct{})}
}

// Bump publishes version v, waking every waiter behind it.
func (n *Notify) Bump(v int64) {
	n.mu.Lock()
	if v > n.latest {
		n.latest = v
		close(n.ch)
		n.ch = make(chan struct{})
	}
	n.mu.Unlock()
}

// WaitBeyond blocks until a version > v has been published, the
// timeout expires, or stop closes (so server shutdown interrupts
// parked long polls instead of waiting out their timers).
func (n *Notify) WaitBeyond(v int64, timeout time.Duration, stop <-chan struct{}) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		n.mu.Lock()
		if n.latest > v {
			n.mu.Unlock()
			return
		}
		ch := n.ch
		n.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return
		case <-stop:
			return
		}
	}
}

// PeerCursors tracks, per peer replica (keyed by the replica id the
// peer announced in its handshake, so reconnects and duplicate
// connections collapse onto one cursor), the version that peer had
// applied when it last long-polled. Once every expected peer has an
// active cursor, the primary can prune writesets everyone has applied
// — minus a safety lag, so certification requests from transactions
// that began a little while ago still find the versions they must be
// compared against (the same snapshot-below-horizon hazard the
// in-process GC has).
type PeerCursors struct {
	// expected returns the number of pullers required before pruning
	// may run; it is a function because elastic membership changes it
	// at runtime. A negative value (unknown cluster size) disables
	// pruning entirely.
	expected func() int
	lag      int64 // retained margin below the horizon

	mu      sync.Mutex
	cursors map[int64]int64
}

// NewPeerCursors tracks a fixed expected peer count; a negative count
// (unknown cluster size) disables pruning entirely.
func NewPeerCursors(expected int, lag int64) *PeerCursors {
	return NewDynamicPeerCursors(func() int { return expected }, lag)
}

// NewDynamicPeerCursors tracks an expected peer count that may change
// (elastic membership).
func NewDynamicPeerCursors(expected func() int, lag int64) *PeerCursors {
	return &PeerCursors{expected: expected, lag: lag, cursors: make(map[int64]int64)}
}

// Update advances a peer's cursor. Negative peer ids (ordinary client
// connections, not peer links) are ignored.
func (p *PeerCursors) Update(peer, v int64) {
	if peer < 0 {
		return
	}
	p.mu.Lock()
	if v > p.cursors[peer] {
		p.cursors[peer] = v
	}
	p.mu.Unlock()
}

// Drop removes a peer's cursor when its connection dies (the next
// long poll re-adds it).
func (p *PeerCursors) Drop(peer int64) {
	if peer < 0 {
		return
	}
	p.mu.Lock()
	delete(p.cursors, peer)
	p.mu.Unlock()
}

// Horizon returns the safe pruning bound given the primary's own
// applied version; ok is false while any expected peer lacks an
// active cursor (a dead or unjoined replica conservatively blocks
// pruning, exactly like the in-process GC).
func (p *PeerCursors) Horizon(own int64) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	expected := p.expected()
	if expected < 0 || len(p.cursors) < expected {
		return 0, false
	}
	h := own
	for _, v := range p.cursors {
		if v < h {
			h = v
		}
	}
	h -= p.lag
	if h <= 0 {
		return 0, false
	}
	return h, true
}

// Puller is the propagation loop shared by every node that pulls
// records from a primary: long-poll for records past the local
// cursor, hand them to the pipeline's apply stage, back off one
// interval on errors (primary unreachable).
type Puller struct {
	// Interval is the long-poll window; it bounds both shutdown
	// latency and the staleness detection of a dead primary.
	Interval time.Duration
	// Cursor returns the version to fetch past (the applier's cursor).
	Cursor func() int64
	// Fetch long-polls the primary for records past v.
	Fetch func(v int64, wait time.Duration) ([]certifier.Record, error)
	// Ingest hands fetched records to the apply/ack stages.
	Ingest func(recs []certifier.Record)
}

// Run executes the loop until stop closes.
func (p *Puller) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		recs, err := p.Fetch(p.Cursor(), p.Interval)
		if err != nil {
			select {
			case <-stop:
				return
			case <-time.After(p.Interval):
			}
			continue
		}
		if len(recs) > 0 {
			p.Ingest(recs)
		}
	}
}

// HostCert is the certification stage on the certifier host: the
// local certifier, optionally behind the group-commit batcher, with
// latency observation and long-poll wakeups. Both local transactions
// and remote Certify requests flow through here, so group commit
// batches across the whole cluster.
type HostCert struct {
	Base    *certifier.Certifier
	Batcher *certifier.Batcher // nil without group commit
	Notify  *Notify
	Observe func(time.Duration) // certification latency hook (may be nil)
	Tracer  *Tracer             // commit-path stage tracer (may be nil)
}

// Certify submits one commit-time certification request, waking
// long-pollers on commit.
func (h *HostCert) Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	return h.CertifyTraced(snapshot, ws, 0)
}

// CertifyTraced is Certify carrying the submitting transaction's
// cross-node trace id (0 for untraced callers). On commit the host
// stamps the authoritative commit wall-clock and records both against
// the assigned version, which is what propagated Records carry to the
// replicas and what the replication-lag observer measures against.
func (h *HostCert) CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	start := time.Now()
	var out certifier.Outcome
	var err error
	if h.Batcher != nil {
		out, err = h.Batcher.Certify(snapshot, ws)
	} else {
		out, err = h.Base.Certify(snapshot, ws)
	}
	if h.Observe != nil {
		h.Observe(time.Since(start))
	}
	if err == nil && out.Committed {
		done := time.Now()
		h.Tracer.NoteCommitMeta(out.Version, trace, done.UnixNano())
		h.Tracer.CommitSpan(out.Version, len(ws.Entries), start, done)
		h.Notify.Bump(out.Version)
	}
	return out, err
}

// Check probes a partial writeset for an already-certain conflict.
func (h *HostCert) Check(snapshot int64, ws writeset.Writeset) (bool, int64) {
	return h.Base.Check(snapshot, ws)
}

// PrepareTxn runs the first 2PC phase for a cross-shard fragment. It
// bypasses the batcher — prepares are rare, lock-holding operations
// that must not be reordered into a commit batch.
func (h *HostCert) PrepareTxn(p certifier.PreparedTxn) (bool, int64, error) {
	start := time.Now()
	vote, with, err := h.Base.Prepare(p)
	if h.Observe != nil {
		h.Observe(time.Since(start))
	}
	return vote, with, err
}

// DecideTxn applies the coordinator's decision; a commit lands in the
// record log, so long-pollers are woken just like an ordinary commit.
func (h *HostCert) DecideTxn(id string, commit bool) (int64, error) {
	version, err := h.Base.Decide(id, commit)
	if err == nil && commit && version > 0 {
		h.Notify.Bump(version)
	}
	return version, err
}

// ResolveTxn answers an in-doubt inquiry (coordinator side).
func (h *HostCert) ResolveTxn(id string) (bool, error) { return h.Base.Resolve(id) }

// ForgetTxn retires a fully acknowledged decision.
func (h *HostCert) ForgetTxn(id string) error { return h.Base.Forget(id) }

// Since implements CertSource.
func (h *HostCert) Since(v int64) []certifier.Record { return h.Base.Since(v) }
