package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certifier"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// Applier is the apply stage of the replication pipeline: it installs
// certified records into the local database strictly in version order
// from the outside — the applied cursor is dense, duplicates are
// skipped and a gap stops the run — while parallelizing the
// installation work on the inside.
//
// Parallelism is conflict-aware: a dependency graph is built over the
// batch using the writesets' precomputed key sets (record j depends on
// the latest earlier record that wrote any of j's rows), and a bounded
// worker pool installs records whose dependencies have retired. Two
// writesets that share no row may install in either order — their row
// version chains are disjoint, so the resulting database state is
// byte-identical to serial apply — and sidb's shard locks let them
// proceed on different cores. Version markers still retire strictly in
// order: the database's version counter and the applied cursor advance
// only once the whole dense run is installed, so Applied()/FetchSince
// cursors, GC horizons and the WAL's version-dense-prefix invariant
// are exactly what a serial applier would produce. Journaling happens
// version-ordered ahead of the parallel stage (sidb.ApplyBatch fires
// the journal hook for the full run before the first install starts).
//
// All mutation of the underlying database on an applying replica must
// flow through one Applier: its lock is what serializes racing apply
// paths (the propagation loop and wire Sync handlers), and Pin/Reset
// give engines the same lock for snapshot pinning and state installs.
type Applier struct {
	db      *sidb.DB
	workers int

	mu      sync.Mutex
	applied int64 // version cursor (global for mm, absolute master version for sm)

	head    atomic.Int64 // newest version observed (fetched or certified)
	total   atomic.Int64 // versions applied since start
	pending atomic.Int64 // records admitted to the in-flight batch, not yet installed

	// applied-versions/sec over a sliding window, sampled on read.
	rateMu    sync.Mutex
	rateAt    time.Time
	rateTotal int64
	rate      float64

	tracer *Tracer // commit-path stage tracer (may be nil)
}

// NewApplier wraps db with an apply stage running the given number of
// workers; workers <= 1 applies serially (identical code path to the
// pre-pipeline engines).
func NewApplier(db *sidb.DB, workers int) *Applier {
	if workers < 1 {
		workers = 1
	}
	return &Applier{db: db, workers: workers}
}

// DB returns the wrapped database.
func (a *Applier) DB() *sidb.DB { return a.db }

// SetTracer attaches the stage tracer; Apply stamps batch install
// times on it. Set once at wiring time, before the applier runs.
func (a *Applier) SetTracer(t *Tracer) { a.tracer = t }

// Workers returns the configured worker count.
func (a *Applier) Workers() int { return a.workers }

// Applied returns the version cursor: every record at or below it has
// been installed.
func (a *Applier) Applied() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// Observe records that versions up to head exist upstream, feeding the
// Lag gauge. Apply observes incoming batches itself; pullers call it
// for fetches that could not apply yet (gaps).
func (a *Applier) Observe(head int64) {
	for {
		cur := a.head.Load()
		if head <= cur || a.head.CompareAndSwap(cur, head) {
			return
		}
	}
}

// Pin runs f under the apply lock with the current applied cursor.
// Nothing installs while f runs, so f can atomically pair the cursor
// with database state — Begin-time snapshot pinning, consistent state
// captures for joiners and WAL compaction.
func (a *Applier) Pin(f func(applied int64)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f(a.applied)
}

// Reset runs f under the apply lock and moves the cursor to the
// version f returns — the bulk-load, snapshot-install and WAL-restore
// paths, which rebuild database state outside the record stream.
func (a *Applier) Reset(f func(applied int64) (int64, error)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, err := f(a.applied)
	if err != nil {
		return err
	}
	a.applied = v
	a.Observe(v)
	return nil
}

// Apply installs already-fetched certified records in version order:
// records at or below the cursor are skipped (duplicates from
// concurrent pulls are harmless) and a gap stops the run (the missing
// versions will arrive through a later pull). It returns the number of
// records applied. An installation failure is a replication invariant
// violation and panics, exactly like the per-engine apply loops it
// replaces.
func (a *Applier) Apply(recs []certifier.Record) int {
	if len(recs) == 0 {
		return 0
	}
	a.Observe(recs[len(recs)-1].Version)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Trim to the dense run starting right after the cursor.
	i := 0
	for i < len(recs) && recs[i].Version <= a.applied {
		i++
	}
	run := recs[i:]
	n := 0
	for n < len(run) && run[n].Version == a.applied+int64(n)+1 {
		n++
	}
	if n == 0 {
		return 0
	}
	run = run[:n]
	wss := make([]writeset.Writeset, n)
	for j, rec := range run {
		wss[j] = rec.Writeset
	}
	a.pending.Store(int64(n))
	defer a.pending.Store(0)
	var sched func(install func(i int))
	if a.workers > 1 && n > 1 {
		sched = a.schedule(wss)
	}
	from := a.applied
	var t0 time.Time
	if a.tracer != nil {
		t0 = time.Now()
	}
	applied, err := a.db.ApplyBatch(wss, sched)
	a.applied += int64(applied)
	a.total.Add(int64(applied))
	if err != nil {
		panic(fmt.Sprintf("pipeline: failed to apply version %d: %v", a.applied+1, err))
	}
	if a.tracer != nil {
		end := time.Now()
		a.tracer.ApplyBatch(from, a.applied, end.Sub(t0), end)
	}
	return applied
}

// schedule builds the conflict-dependency schedule for one batch:
// record j gets an edge from the latest earlier record that wrote any
// row j writes (transitively ordering every pair of conflicting
// records), and the returned function drains the resulting DAG with a
// bounded worker pool. Install order across non-conflicting records is
// unconstrained — they touch disjoint rows. A batch with no edges at
// all (the common low-conflict case) skips the ready-queue machinery
// entirely and stripes the records statically across the workers.
func (a *Applier) schedule(wss []writeset.Writeset) func(install func(i int)) {
	n := len(wss)
	deps := make([]atomic.Int32, n)      // unretired dependencies per record
	dependents := make([][]int32, n)     // edges out: who waits on me
	last := make(map[writeset.Key]int32) // newest earlier writer per row
	mark := make([]int32, n)             // dedupes edges per record (stamped j+1)
	edges := 0
	for j := int32(0); j < int32(n); j++ {
		for _, e := range wss[j].Entries {
			if i, ok := last[e.Key]; ok && i != j && mark[i] != j+1 {
				mark[i] = j + 1
				deps[j].Add(1)
				dependents[i] = append(dependents[i], j)
				edges++
			}
			last[e.Key] = j
		}
	}
	if edges == 0 {
		return func(install func(i int)) {
			workers := a.workers
			if workers > n {
				workers = n
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < n; i += workers {
						install(i)
						a.pending.Add(-1)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	return func(install func(i int)) {
		// Buffered to n, so sends never block and no worker can stall
		// holding an unretired record.
		ready := make(chan int32, n)
		for j := int32(0); j < int32(n); j++ {
			if deps[j].Load() == 0 {
				ready <- j
			}
		}
		var remaining atomic.Int32
		remaining.Store(int32(n))
		workers := a.workers
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ready {
					install(int(j))
					a.pending.Add(-1)
					// Release dependents only after the install returned:
					// that is the ordering guarantee conflicting records
					// rely on.
					for _, d := range dependents[j] {
						if deps[d].Add(-1) == 0 {
							ready <- d
						}
					}
					if remaining.Add(-1) == 0 {
						// Everything installed; no further sends are
						// possible, so closing wakes the other workers.
						close(ready)
					}
				}
			}()
		}
		wg.Wait()
	}
}

// ApplyStats is a point-in-time view of the apply stage, feeding
// /metrics and the wire Stats reply.
type ApplyStats struct {
	Workers int
	Applied int64   // version cursor
	Total   int64   // versions applied since start (monotone)
	Pending int64   // records admitted to the in-flight batch, not yet installed
	Lag     int64   // newest observed version minus the cursor
	Rate    float64 // applied versions/sec over the recent window
}

// Stats snapshots the apply stage.
func (a *Applier) Stats() ApplyStats {
	applied := a.Applied()
	lag := a.head.Load() - applied
	if lag < 0 {
		lag = 0
	}
	return ApplyStats{
		Workers: a.workers,
		Applied: applied,
		Total:   a.total.Load(),
		Pending: a.pending.Load(),
		Lag:     lag,
		Rate:    a.sampleRate(),
	}
}

// sampleRate computes applied versions/sec by differencing the total
// counter between reads at least a second apart.
func (a *Applier) sampleRate() float64 {
	a.rateMu.Lock()
	defer a.rateMu.Unlock()
	now := time.Now()
	total := a.total.Load()
	if a.rateAt.IsZero() {
		a.rateAt, a.rateTotal = now, total
		return 0
	}
	if dt := now.Sub(a.rateAt); dt >= time.Second {
		a.rate = float64(total-a.rateTotal) / dt.Seconds()
		a.rateAt, a.rateTotal = now, total
	}
	return a.rate
}
