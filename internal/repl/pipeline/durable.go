package pipeline

import (
	"sync"
	"sync/atomic"

	"repro/internal/certifier"
	"repro/internal/writeset"
)

// Log is the write-ahead-log surface the journal stage drives;
// *wal.WAL implements it. The interface keeps this package free of a
// wal dependency so the wal package's own tests can drive an Applier
// without an import cycle.
type Log interface {
	// Append stages freshly certified records (the certifier-host
	// journal; see certifier.Journal for the ordering contract).
	Append(recs []certifier.Record) (seq int64, err error)
	// AppendApply journals one writeset of the local apply stream.
	AppendApply(local int64, ws writeset.Writeset) error
	// AppendTable journals a created table.
	AppendTable(name string) error
	// AppendCursor journals the propagation cursor.
	AppendCursor(global int64) error
	// Seq returns the staging sequence; Sync(seq) blocks until
	// everything staged at or before it is durable (group fsync).
	Seq() int64
	Sync(seq int64) error
	// Size returns the live segment size in bytes.
	Size() int64
	// Compact rewrites the segment around a consistent snapshot.
	Compact(base, snapGlobal, snapLocal, keepApplies int64, tables []string, state map[string]map[int64]string) error
	Close() error
}

// Durability is the journal stage a node carries when it runs a
// write-ahead log: version-ordered appends ahead of the apply stage,
// the group fsync acknowledgements gate on, advisory propagation
// cursors, and serialized snapshot compaction.
type Durability struct {
	W            Log
	compactAfter int64
	lastCursor   atomic.Int64
	// OnCompact, when set, observes every compaction attempt with the
	// segment size before and after the rewrite — the event journal's
	// WAL-compaction feed. Set before traffic; not synchronized.
	OnCompact func(sizeBefore, sizeAfter int64)
	// compactMu makes a snapshot capture and the WAL rewrite around it
	// one atomic unit (see MaybeCompact).
	compactMu sync.Mutex
	// lastCompact is the segment size right after the previous
	// compaction attempt: re-attempting before meaningful growth would
	// livelock on full-segment rewrites whenever compaction cannot
	// shrink the log (blocked GC horizon, or a snapshot bigger than
	// the bound).
	lastCompact atomic.Int64
}

// NewDurability wraps a write-ahead log; compactAfter bounds the
// segment size before compaction is due (<= 0 disables compaction).
func NewDurability(w Log, compactAfter int64) *Durability {
	return &Durability{W: w, compactAfter: compactAfter}
}

// ApplyHook returns the sidb journal hook that feeds the local apply
// stream into the WAL. Attach it only after replay, or recovery would
// re-journal its own restoration. With a parallel applier the hook
// still fires in exact version order: sidb.ApplyBatch journals the
// whole run under the commit mutex before the first concurrent
// install starts.
func (d *Durability) ApplyHook() func(ws writeset.Writeset, version int64) error {
	return func(ws writeset.Writeset, version int64) error {
		return d.W.AppendApply(version, ws)
	}
}

// Sync blocks on the group fsync covering everything journaled so far.
func (d *Durability) Sync() error { return d.W.Sync(d.W.Seq()) }

// Table journals a created table and blocks on the group fsync before
// the caller acknowledges: DDL is acked to the client, so like a commit
// it must not evaporate in a power loss.
func (d *Durability) Table(name string) error {
	if err := d.W.AppendTable(name); err != nil {
		return err
	}
	return d.Sync()
}

// Cursor journals the propagation cursor (the global version this
// replica has applied), skipping repeats so an idle poll loop does not
// grow the log. Cursor records are advisory: a crash before the latest
// one costs a re-fetch of already-applied records, which the applier
// tolerates.
func (d *Durability) Cursor(global int64) {
	if d.lastCursor.Swap(global) == global {
		return
	}
	_ = d.W.AppendCursor(global)
}

// due reports whether the segment has outgrown the compaction bound
// AND grown enough since the last attempt to be worth another
// full-segment rewrite (an eighth of the bound), so a compaction that
// cannot shrink the log backs off instead of rewriting it on every
// poll tick.
func (d *Durability) due() bool {
	if d.compactAfter <= 0 {
		return false
	}
	size := d.W.Size()
	return size >= d.compactAfter && size >= d.lastCompact.Load()+d.compactAfter/8
}

// MaybeCompact runs one capture-and-rewrite cycle when the segment has
// outgrown its bound. capture produces a consistent full-state
// snapshot: base bounds which certified records are dropped (on the
// certifier host this is the peer-cursor GC horizon, never past what a
// disconnected replica still needs); snapGlobal/snapLocal position the
// snapshot itself; keepApplies bounds which local applies are dropped
// (the sm master keeps its slave horizon's worth, everyone else drops
// up to the snapshot).
//
// compactMu is held across BOTH the capture and the rewrite, making
// them one atomic unit. Callers race (the propagation run loop and the
// wire Sync handlers both land here), and without the lock a goroutine
// holding an older capture could rewrite the segment after a competitor
// compacted with a newer one: the rewrite drops the newer snapshot
// frame while the applies it superseded are already gone, and a
// retained cursor above the lost versions makes a restart resume
// FetchSince past them — silently losing durably acked commits.
// WAL.Compact rejects stale snapshots as a second line of defense.
func (d *Durability) MaybeCompact(capture func() (base, snapGlobal, snapLocal, keepApplies int64, state map[string]map[int64]string, err error)) {
	if !d.due() {
		return
	}
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if !d.due() {
		return // a racing compaction already rewrote the segment
	}
	base, snapGlobal, snapLocal, keepApplies, state, err := capture()
	if err != nil {
		return
	}
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sizeBefore := d.W.Size()
	_ = d.W.Compact(base, snapGlobal, snapLocal, keepApplies, names, state)
	// Record the post-attempt size whether or not the rewrite shrank
	// (or succeeded at all): due() only re-arms after real growth.
	sizeAfter := d.W.Size()
	d.lastCompact.Store(sizeAfter)
	if d.OnCompact != nil {
		d.OnCompact(sizeBefore, sizeAfter)
	}
}
