// Package repl defines the common surface of the two replicated
// database designs (multi-master in repl/mm, single-master in repl/sm)
// and a workload driver that exercises either through real concurrent
// clients. These are the functional counterparts of the paper's
// prototypes (§5); the performance counterparts live in
// internal/cluster.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// ErrAborted reports a write-write conflict abort; the client should
// retry the transaction, as the paper's servlets do.
var ErrAborted = errors.New("repl: transaction aborted by certification")

// ErrReadOnlyTxn reports a write attempted through a read-only
// transaction handle.
var ErrReadOnlyTxn = errors.New("repl: write on read-only transaction")

// AbortedError is an ErrAborted that carries the newest committed
// version the transaction conflicted with, so the diagnostic survives
// structured channels (like the wire protocol) instead of living only
// in an error string. errors.Is(err, ErrAborted) matches it.
type AbortedError struct {
	ConflictWith int64
}

// Error implements error.
func (e *AbortedError) Error() string {
	if e.ConflictWith > 0 {
		return fmt.Sprintf("%v (conflicts with version %d)", ErrAborted, e.ConflictWith)
	}
	return ErrAborted.Error()
}

// Unwrap makes errors.Is(err, ErrAborted) hold.
func (e *AbortedError) Unwrap() error { return ErrAborted }

// ConflictWith extracts the conflicting version from an abort error
// chain, or 0 when the error does not carry one.
func ConflictWith(err error) int64 {
	var ae *AbortedError
	if errors.As(err, &ae) {
		return ae.ConflictWith
	}
	return 0
}

// UnknownOutcomeError reports a commit whose fate is unknown: the
// transport died after the request may have reached the certifier, so
// the transaction might be durably committed even though no
// acknowledgement arrived. It deliberately does NOT match ErrAborted —
// a driver that retried it blindly could apply the transaction twice
// once commits are durable. Drivers should reconcile (re-read) or
// surface the ambiguity instead.
type UnknownOutcomeError struct {
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *UnknownOutcomeError) Error() string {
	return fmt.Sprintf("repl: commit outcome unknown (connection lost mid-commit): %v", e.Err)
}

// Unwrap exposes the transport failure for errors.Is/As.
func (e *UnknownOutcomeError) Unwrap() error { return e.Err }

// Txn is one client transaction against a replicated system.
type Txn interface {
	// Read returns the visible value of (table, row).
	Read(table string, row int64) (string, bool, error)
	// Write stages an update of (table, row).
	Write(table string, row int64, value string) error
	// Delete stages a row removal.
	Delete(table string, row int64) error
	// Commit finishes the transaction; ErrAborted signals a
	// write-write conflict.
	Commit() error
	// Abort discards the transaction.
	Abort()
}

// System is a replicated database as seen by the load driver.
type System interface {
	// BeginRead starts a read-only transaction (routed to any
	// replica).
	BeginRead() (Txn, error)
	// BeginUpdate starts an update transaction (routed per design:
	// any replica for MM, the master for SM).
	BeginUpdate() (Txn, error)
	// Sync blocks until every replica has applied all writesets
	// committed so far.
	Sync()
	// Replicas returns the number of database replicas.
	Replicas() int
	// TableDump returns a canonical dump of one replica's table
	// contents for convergence checks.
	TableDump(replica int, table string) (map[int64]string, error)
}

// Loader populates tables; both designs implement it.
type Loader interface {
	// CreateTable makes an empty table on every replica.
	CreateTable(name string) error
	// Load fills table rows [0, rows) with value(row) on every
	// replica, bypassing concurrency control (initial load).
	Load(table string, rows int, value func(int64) string) error
}

// LoadCatalog creates and populates every table of a workload catalog
// (scaled down by factor to keep tests fast; factor 1 loads full
// size). Row values are deterministic.
func LoadCatalog(l Loader, cat workload.Catalog, factor int) error {
	if factor < 1 {
		factor = 1
	}
	for _, name := range sortedTables(cat) {
		rows := cat.Tables[name] / factor
		if rows < 10 {
			rows = 10
		}
		if err := l.CreateTable(name); err != nil {
			return err
		}
		if err := l.Load(name, rows, func(r int64) string {
			return fmt.Sprintf("%s-row-%d", name, r)
		}); err != nil {
			return err
		}
	}
	return nil
}

// sortedTables returns catalog table names in deterministic order.
func sortedTables(cat workload.Catalog) []string {
	names := make([]string, 0, len(cat.Tables))
	for n := range cat.Tables {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// DriveResult summarizes a workload run.
type DriveResult struct {
	Commits       int64
	ReadCommits   int64
	UpdateCommits int64
	Aborts        int64 // update attempts that ended in ErrAborted
	Errors        int64 // unexpected errors (should be zero)

	// Unknown counts transactions whose commit outcome is ambiguous
	// (UnknownOutcomeError): the request may have reached the
	// certifier before the connection died or the leader was deposed,
	// so the transaction may or may not be durably committed. A
	// closed-loop driver cannot retry these blindly (double-apply)
	// nor treat them as failures of the system under test — they are
	// the unavoidable residue of killing a replica with commits in
	// flight — so they are reported separately from Errors.
	Unknown int64

	// FirstError samples the first unexpected error a client hit, so
	// a nonzero Errors count is diagnosable instead of a bare number.
	FirstError string

	// ReadLatency and UpdateLatency are client-perceived latency
	// histograms over committed logical transactions per class; an
	// update transaction's latency includes its certification-abort
	// retries, matching what the paper's emulated browsers observe.
	ReadLatency   *stats.Latency
	UpdateLatency *stats.Latency
}

// Drive runs clients concurrent closed-loop clients, each executing
// txnsPerClient committed transactions drawn from the catalog at the
// mix's read/update fractions against sys. Aborted updates are
// retried until they commit. The row space of each template's table is
// assumed loaded via LoadCatalog with the same factor.
func Drive(sys System, cat workload.Catalog, mix workload.Mix, clients, txnsPerClient int, factor int, seed uint64) DriveResult {
	if factor < 1 {
		factor = 1
	}
	res := DriveResult{
		ReadLatency:   stats.NewLatency(),
		UpdateLatency: stats.NewLatency(),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	root := stats.NewRand(seed)
	rngs := make([]*stats.Rand, clients)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	for c := 0; c < clients; c++ {
		rng := rngs[c]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local DriveResult
			readLat, updateLat := stats.NewLatency(), stats.NewLatency()
			for i := 0; i < txnsPerClient; i++ {
				tpl := cat.Pick(mix, rng)
				rows := cat.Tables[tpl.Table] / factor
				if rows < 10 {
					rows = 10
				}
				start := time.Now()
				if err := runTemplate(sys, tpl, rows, rng, &local); err != nil {
					var uo *UnknownOutcomeError
					if errors.As(err, &uo) {
						local.Unknown++
					} else {
						local.Errors++
						if local.FirstError == "" {
							local.FirstError = err.Error()
						}
					}
					continue
				}
				if tpl.ReadOnly {
					readLat.Record(time.Since(start))
				} else {
					updateLat.Record(time.Since(start))
				}
			}
			mu.Lock()
			res.Commits += local.Commits
			res.ReadCommits += local.ReadCommits
			res.UpdateCommits += local.UpdateCommits
			res.Aborts += local.Aborts
			res.Errors += local.Errors
			res.Unknown += local.Unknown
			if res.FirstError == "" {
				res.FirstError = local.FirstError
			}
			res.ReadLatency.Merge(readLat)
			res.UpdateLatency.Merge(updateLat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res
}

// runTemplate executes one logical transaction until it commits.
func runTemplate(sys System, tpl workload.TxnTemplate, rows int, rng *stats.Rand, res *DriveResult) error {
	for {
		var tx Txn
		var err error
		if tpl.ReadOnly {
			tx, err = sys.BeginRead()
		} else {
			tx, err = sys.BeginUpdate()
		}
		if err != nil {
			return err
		}
		aborted := false
		for r := 0; r < tpl.ReadRows; r++ {
			if _, _, err := tx.Read(tpl.Table, int64(rng.Intn(rows))); err != nil {
				tx.Abort()
				if errors.Is(err, ErrAborted) {
					// The replica died or left mid-transaction; the
					// networked driver surfaces that as an abort so the
					// transaction retries on a surviving replica.
					res.Aborts++
					aborted = true
					break
				}
				return err
			}
		}
		if aborted {
			continue
		}
		for w := 0; w < tpl.Writes; w++ {
			row := int64(rng.Intn(rows))
			if err := tx.Write(tpl.Table, row, fmt.Sprintf("%s-%d", tpl.Name, rng.Uint64())); err != nil {
				if errors.Is(err, ErrAborted) {
					// Eager certification killed the transaction early.
					tx.Abort()
					res.Aborts++
					aborted = true
					break
				}
				tx.Abort()
				return err
			}
		}
		if aborted {
			continue
		}
		switch err := tx.Commit(); {
		case err == nil:
			res.Commits++
			if tpl.ReadOnly {
				res.ReadCommits++
			} else {
				res.UpdateCommits++
			}
			return nil
		case errors.Is(err, ErrAborted):
			res.Aborts++
			// Retry with a fresh snapshot.
		default:
			return err
		}
	}
}

// CheckConvergence verifies that all replicas hold identical contents
// for the given tables, returning a descriptive error on divergence.
func CheckConvergence(sys System, tables []string) error {
	sys.Sync()
	for _, table := range tables {
		ref, err := sys.TableDump(0, table)
		if err != nil {
			return err
		}
		for r := 1; r < sys.Replicas(); r++ {
			got, err := sys.TableDump(r, table)
			if err != nil {
				return err
			}
			if len(got) != len(ref) {
				return fmt.Errorf("repl: table %q: replica %d has %d rows, replica 0 has %d",
					table, r, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					return fmt.Errorf("repl: table %q row %d: replica %d=%q, replica 0=%q",
						table, k, r, got[k], v)
				}
			}
		}
	}
	return nil
}
